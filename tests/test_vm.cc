/**
 * @file
 * Unit tests for virtual memory: page tables, TLBs and the blocking
 * page-table walker.
 */

#include <gtest/gtest.h>

#include "mem/ideal_mem.h"
#include "mem/page_table.h"
#include "mem/ptw.h"
#include "mem/tlb.h"

namespace hwgc::mem
{
namespace
{

class PageTableTest : public testing::Test
{
  protected:
    PageTableTest() : table_(mem_, 0x10000, 4 << 20) {}

    PhysMem mem_;
    PageTable table_;
};

TEST_F(PageTableTest, IdentityMapTranslates)
{
    table_.map(0x4000'0000, 0x4000'0000, 4 * pageBytes);
    const auto pa = table_.translate(0x4000'1234);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x4000'1234u);
}

TEST_F(PageTableTest, OffsetMapTranslates)
{
    table_.map(0x1000'0000, 0x2000'0000, pageBytes);
    EXPECT_EQ(table_.translate(0x1000'0abc).value(), 0x2000'0abcu);
}

TEST_F(PageTableTest, UnmappedReturnsNothing)
{
    table_.map(0x4000'0000, 0x4000'0000, pageBytes);
    EXPECT_FALSE(table_.translate(0x5000'0000).has_value());
    EXPECT_FALSE(table_.translate(0x4000'1000).has_value());
}

TEST_F(PageTableTest, WalkExposesThreeLevels)
{
    table_.map(0x4000'0000, 0x4000'0000, pageBytes);
    const auto walk = table_.walk(0x4000'0080);
    EXPECT_TRUE(walk.valid);
    EXPECT_EQ(walk.levels, ptLevels);
    EXPECT_EQ(walk.pa, 0x4000'0080u);
    // The outermost PTE lives in the root page.
    EXPECT_EQ(alignDown(walk.pteAddr[0], pageBytes), table_.root());
    // Distinct table pages per level.
    EXPECT_NE(alignDown(walk.pteAddr[1], pageBytes),
              alignDown(walk.pteAddr[0], pageBytes));
}

TEST_F(PageTableTest, WalkOnUnmappedStopsEarly)
{
    const auto walk = table_.walk(0x7000'0000);
    EXPECT_FALSE(walk.valid);
    EXPECT_EQ(walk.levels, 1u); // Root PTE invalid.
}

TEST_F(PageTableTest, AdjacentPagesShareLeafTable)
{
    table_.map(0x4000'0000, 0x4000'0000, 2 * pageBytes);
    const auto w1 = table_.walk(0x4000'0000);
    const auto w2 = table_.walk(0x4000'1000);
    EXPECT_EQ(alignDown(w1.pteAddr[2], pageBytes),
              alignDown(w2.pteAddr[2], pageBytes));
    EXPECT_EQ(w2.pteAddr[2] - w1.pteAddr[2], wordBytes);
}

TEST_F(PageTableTest, PageAllocationGrows)
{
    const unsigned before = table_.pagesAllocated();
    table_.map(0x4000'0000, 0x4000'0000, pageBytes);
    EXPECT_GT(table_.pagesAllocated(), before);
}

TEST(Tlb, HitAfterInsert)
{
    TlbArray tlb("t", 4);
    EXPECT_FALSE(tlb.lookup(0x1000).has_value());
    tlb.insert(0x1000, 0x20000);
    const auto pa = tlb.lookup(0x1234);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x20234u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEviction)
{
    TlbArray tlb("t", 2);
    tlb.insert(0x1000, 0x1000);
    tlb.insert(0x2000, 0x2000);
    tlb.lookup(0x1000); // Touch: 0x2000 becomes LRU.
    tlb.insert(0x3000, 0x3000);
    EXPECT_TRUE(tlb.lookup(0x1000).has_value());
    EXPECT_FALSE(tlb.lookup(0x2000).has_value());
    EXPECT_TRUE(tlb.lookup(0x3000).has_value());
}

TEST(Tlb, Flush)
{
    TlbArray tlb("t", 4);
    tlb.insert(0x1000, 0x1000);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(0x1000).has_value());
}

TEST(Tlb, ReinsertUpdatesMapping)
{
    TlbArray tlb("t", 4);
    tlb.insert(0x1000, 0x1000);
    tlb.insert(0x1000, 0x9000);
    EXPECT_EQ(tlb.lookup(0x1000).value(), 0x9000u);
}

/** Fixture with a PTW wired through a bus to ideal memory. */
class PtwTest : public testing::Test
{
  protected:
    PtwTest()
        : table_(mem_, 0x10000, 4 << 20),
          ideal_("mem", IdealMemParams{}, mem_),
          bus_("bus", InterconnectParams{}, ideal_)
    {
        table_.map(0x4000'0000, 0x4000'0000, 16 * pageBytes);
        ptw_ = std::make_unique<Ptw>("ptw", PtwParams{}, table_,
                                     makePort());
        bus_.setClientResponder(portId_, ptw_.get());
        ptwPort_ = ptw_->registerRequester(nullptr, "test");
    }

    MemPort *
    makePort()
    {
        port_ = std::make_unique<BusPort>(bus_, nullptr, "ptw");
        portId_ = port_->clientId();
        return port_.get();
    }

    void
    run(Tick cycles)
    {
        for (Tick t = 0; t < cycles; ++t) {
            ptw_->tick(now_);
            bus_.tick(now_);
            ideal_.tick(now_);
            ++now_;
        }
    }

    PhysMem mem_;
    PageTable table_;
    IdealMem ideal_;
    Interconnect bus_;
    std::unique_ptr<BusPort> port_;
    unsigned portId_ = 0;
    std::unique_ptr<Ptw> ptw_;
    unsigned ptwPort_ = 0;
    Tick now_ = 0;
};

TEST_F(PtwTest, WalkResolves)
{
    bool done = false;
    Addr result = 0;
    ptw_->requestWalk(ptwPort_, 0x4000'2abc, now_,
                      [&](bool valid, Addr, Addr pa, unsigned) {
        EXPECT_TRUE(valid);
        result = pa;
        done = true;
    });
    run(200);
    EXPECT_TRUE(done);
    EXPECT_EQ(result, 0x4000'2abcu);
    EXPECT_EQ(ptw_->walksStarted(), 1u);
    EXPECT_EQ(ptw_->pteFetches(), ptLevels);
}

TEST_F(PtwTest, UnmappedWalkReportsInvalid)
{
    bool done = false;
    ptw_->requestWalk(ptwPort_, 0x7000'0000, now_,
                      [&](bool valid, Addr, Addr, unsigned) {
        EXPECT_FALSE(valid);
        done = true;
    });
    run(200);
    EXPECT_TRUE(done);
}

TEST_F(PtwTest, L2TlbShortcutsRepeatWalks)
{
    int walks_done = 0;
    ptw_->requestWalk(ptwPort_, 0x4000'3000, now_,
                      [&](bool, Addr, Addr, unsigned) {
        ++walks_done;
    });
    run(200);
    const auto pte_fetches = ptw_->pteFetches();
    ptw_->requestWalk(ptwPort_, 0x4000'3008, now_,
                      [&](bool, Addr, Addr, unsigned) {
        ++walks_done;
    });
    run(200);
    EXPECT_EQ(walks_done, 2);
    EXPECT_EQ(ptw_->pteFetches(), pte_fetches); // No new PTE reads.
    EXPECT_EQ(ptw_->l2TlbHits(), 1u);
}

TEST_F(PtwTest, WalksSerialize)
{
    // Two walks to distinct pages: the second completes after the
    // first (blocking walker).
    Tick first_done = 0, second_done = 0;
    ptw_->requestWalk(ptwPort_, 0x4000'4000, now_,
                      [&](bool, Addr, Addr, unsigned) {
        first_done = now_;
    });
    ptw_->requestWalk(ptwPort_, 0x4000'5000, now_,
                      [&](bool, Addr, Addr, unsigned) {
        second_done = now_;
    });
    run(500);
    EXPECT_GT(first_done, 0u);
    EXPECT_GT(second_done, first_done);
}

TEST_F(PtwTest, QueueCapacityIsEnforced)
{
    unsigned accepted = 0;
    while (ptw_->canRequest(ptwPort_)) {
        ptw_->requestWalk(ptwPort_,
                          0x4000'0000 + Addr(accepted) * pageBytes, now_,
                          [](bool, Addr, Addr, unsigned) {});
        ++accepted;
    }
    EXPECT_EQ(accepted, PtwParams{}.queueDepth);
    run(5000);
    EXPECT_TRUE(ptw_->canRequest(ptwPort_));
    EXPECT_FALSE(ptw_->busy());
}

} // namespace
} // namespace hwgc::mem
