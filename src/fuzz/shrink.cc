/**
 * @file
 * Schedule shrinking implementation.
 */

#include "shrink.h"

namespace hwgc::fuzz
{

namespace
{

constexpr unsigned maxProbes = 30;

/** Replays a candidate; true if it still diverges. */
bool
stillFails(const Schedule &candidate, const FuzzOptions &options,
           ShrinkStats &stats)
{
    if (stats.probes >= maxProbes) {
        return false; // Budget exhausted: treat as "don't take it".
    }
    ++stats.probes;
    FuzzOptions probe = options;
    probe.writeArtifacts = false;
    return !runSchedule(candidate, probe).ok;
}

} // namespace

Schedule
shrink(const Schedule &schedule, const FuzzOptions &options,
       const FuzzResult &failure, ShrinkStats *stats_out)
{
    ShrinkStats stats;
    stats.originalOps = schedule.ops.size();
    stats.originalLive = schedule.liveObjects;

    Schedule best = schedule;

    // Stage 1 — prefix truncation: nothing after the failing collect
    // can matter, so drop it without probing. (A divergence at op K
    // reproduces from the prefix ending at K by determinism.)
    if (failure.failedOp >= 0 &&
        std::size_t(failure.failedOp) + 1 < best.ops.size()) {
        Schedule candidate = best;
        candidate.ops.resize(std::size_t(failure.failedOp) + 1);
        if (stillFails(candidate, options, stats)) {
            best = std::move(candidate);
        }
    }

    // Stage 2 — ddmin-style op deletion: try removing chunks of the
    // remaining ops, halving the chunk size until single ops. The
    // final collect stays (a schedule must collect to diverge).
    for (std::size_t chunk = std::max<std::size_t>(best.ops.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        bool removed_any = false;
        for (std::size_t start = 0;
             start + 1 < best.ops.size() && stats.probes < maxProbes;) {
            Schedule candidate = best;
            const std::size_t len =
                std::min(chunk, candidate.ops.size() - 1 - start);
            if (len == 0) {
                break;
            }
            candidate.ops.erase(candidate.ops.begin() + start,
                                candidate.ops.begin() + start + len);
            if (candidate.collects() > 0 &&
                stillFails(candidate, options, stats)) {
                best = std::move(candidate);
                removed_any = true;
                // Retry the same position: the next chunk slid here.
            } else {
                start += chunk;
            }
        }
        if (chunk == 1 && !removed_any) {
            break;
        }
    }

    // Stage 3 — heap halving: shrink the graph itself while the
    // divergence survives. Explicit sizes override the seed-derived
    // defaults, so the schedule file stays self-contained.
    {
        Schedule sized = best;
        if (sized.liveObjects == 0) {
            sized.liveObjects = graphParams(sized).liveObjects;
        }
        if (sized.garbageObjects == 0) {
            sized.garbageObjects = graphParams(sized).garbageObjects;
        }
        for (unsigned round = 0;
             round < 4 && stats.probes < maxProbes; ++round) {
            Schedule candidate = sized;
            candidate.liveObjects =
                std::max<std::uint64_t>(candidate.liveObjects / 2, 8);
            candidate.garbageObjects /= 2;
            if (candidate.liveObjects == sized.liveObjects) {
                break;
            }
            if (!stillFails(candidate, options, stats)) {
                break;
            }
            sized = std::move(candidate);
        }
        if (sized.liveObjects != best.liveObjects ||
            sized.garbageObjects != best.garbageObjects) {
            best = std::move(sized);
        }
    }

    stats.finalOps = best.ops.size();
    stats.finalLive = best.liveObjects;
    if (stats_out != nullptr) {
        *stats_out = stats;
    }
    return best;
}

} // namespace hwgc::fuzz
