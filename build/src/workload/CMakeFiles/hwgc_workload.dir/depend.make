# Empty dependencies file for hwgc_workload.
# This may be replaced when dependencies are built.
