
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_sweeper.cc" "src/core/CMakeFiles/hwgc_core.dir/block_sweeper.cc.o" "gcc" "src/core/CMakeFiles/hwgc_core.dir/block_sweeper.cc.o.d"
  "/root/repo/src/core/hwgc_device.cc" "src/core/CMakeFiles/hwgc_core.dir/hwgc_device.cc.o" "gcc" "src/core/CMakeFiles/hwgc_core.dir/hwgc_device.cc.o.d"
  "/root/repo/src/core/mark_queue.cc" "src/core/CMakeFiles/hwgc_core.dir/mark_queue.cc.o" "gcc" "src/core/CMakeFiles/hwgc_core.dir/mark_queue.cc.o.d"
  "/root/repo/src/core/marker.cc" "src/core/CMakeFiles/hwgc_core.dir/marker.cc.o" "gcc" "src/core/CMakeFiles/hwgc_core.dir/marker.cc.o.d"
  "/root/repo/src/core/reclamation_unit.cc" "src/core/CMakeFiles/hwgc_core.dir/reclamation_unit.cc.o" "gcc" "src/core/CMakeFiles/hwgc_core.dir/reclamation_unit.cc.o.d"
  "/root/repo/src/core/root_reader.cc" "src/core/CMakeFiles/hwgc_core.dir/root_reader.cc.o" "gcc" "src/core/CMakeFiles/hwgc_core.dir/root_reader.cc.o.d"
  "/root/repo/src/core/tracer.cc" "src/core/CMakeFiles/hwgc_core.dir/tracer.cc.o" "gcc" "src/core/CMakeFiles/hwgc_core.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/hwgc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hwgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hwgc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
