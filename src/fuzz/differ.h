/**
 * @file
 * The differential fuzz runner (DESIGN.md §11).
 *
 * One schedule is replayed through a matrix of universes — every
 * kernel in {dense, event, parallel×{1,4}} under every configuration
 * of a grid — plus a software-collector witness, all driven through
 * the identical deterministic op sequence. After every collection the
 * runner asserts the paper's core claims:
 *
 *   (a) cross-kernel equality: cycles, device counters and the mark
 *       set are bit-identical across kernels within a configuration,
 *       and the functional outcome (mark digest, objects freed) is
 *       identical across configurations;
 *   (b) HW == SW: the hardware mark set equals the software
 *       collector's reachability closure, object for object
 *       (gc::verifyMarks against the heap oracle, plus counter
 *       equality against the SwCollector witness universe).
 *
 * Any divergence stops the run and — when artifact writing is on —
 * dumps the schedule, a PR-4-style crash checkpoint of the diverged
 * universe, and a one-line replay command.
 */

#ifndef HWGC_FUZZ_DIFFER_H
#define HWGC_FUZZ_DIFFER_H

#include <string>
#include <vector>

#include "fuzz/config_spec.h"
#include "fuzz/schedule.h"
#include "sim/clocked.h"

namespace hwgc::fuzz
{

/** One kernel leg of the differential matrix. */
struct KernelCase
{
    KernelMode mode = KernelMode::Event;
    unsigned threads = 0;
    std::string name;
};

/** The standard matrix: dense, event, parallel@1, parallel@4. */
std::vector<KernelCase> kernelMatrix();

/** Resolves "dense" / "event" / "parallel[@N]"; false if unknown. */
bool kernelCaseFromName(const std::string &name, KernelCase &out);

/** Knobs of one differential run. */
struct FuzzOptions
{
    /** Config grid; empty means quickGrid(). */
    std::vector<ConfigPoint> grid;

    /** Kernel legs; empty means the full kernelMatrix(). */
    std::vector<KernelCase> kernels;

    /** Where divergence artifacts land. */
    std::string artifactDir = ".";

    /** Write .sched/.crash/repro artifacts on divergence. */
    bool writeArtifacts = false;

    /**
     * Fault injection for testing the harness itself: clears one
     * marked object's mark bit after the hardware mark phase of the
     * first collection in the last (config, kernel) universe. The
     * differ must report the divergence; used by tests/test_fuzz.cc
     * and --inject-mark-bug to prove a real mark-bit bug would be
     * caught, dumped and replayable.
     */
    bool injectMarkBug = false;

    /** argv[0] spelling used when composing the repro line. */
    std::string driverName = "fuzz_driver";
};

/** Outcome of one differential run. */
struct FuzzResult
{
    bool ok = true;
    std::string error;      //!< First divergence (empty when ok).
    std::string configName; //!< Grid point that diverged.
    std::string kernelName; //!< Kernel leg that diverged.
    int failedOp = -1;      //!< Index into Schedule::ops, -1 if none.
    std::uint64_t collectsRun = 0; //!< Collections across all legs.

    /** @name Divergence artifacts (writeArtifacts only) @{ */
    std::string schedulePath;
    std::string crashPath;
    std::string reproLine;
    /** @} */
};

/** Replays @p schedule through the full differential matrix. */
FuzzResult runSchedule(const Schedule &schedule,
                       const FuzzOptions &options = {});

} // namespace hwgc::fuzz

#endif // HWGC_FUZZ_DIFFER_H
