/**
 * @file
 * The blocking hardware page-table walker shared by the GC unit's
 * TLBs.
 *
 * The paper's prototype has exactly one blocking PTW backed by an
 * 8 KiB cache ("the PTW is backed by an 8KB cache, to hold the top
 * levels of the page table") and identifies it as a bottleneck:
 * "as the TLB and page table walker are blocking, TLB misses can
 * serialize execution" (§VI-A). This model reproduces that: one walk
 * in progress at a time, per-level PTE fetches issued through a
 * MemPort (either the PTW's private cache, or the shared unit cache
 * in the Fig 18a configuration), and a shared 128-entry L2 TLB
 * consulted before walking.
 *
 * Requesters attach through registered *ports* (registerRequester),
 * each with its own bounded request queue. An issued walk is latched
 * for one cycle (arriveAt = issue + 1) before the walker can pick it
 * up, and the walker starts at most one queued walk per cycle,
 * choosing the oldest arrival and breaking same-cycle ties by port
 * id. Both rules make the pick order a pure function of issue cycles
 * and port ids — never of host scheduling — so the ParallelBsp
 * kernel can place each requester in its own partition and stage
 * cross-partition requests in per-port SPSC rings without changing a
 * single simulated cycle (DESIGN.md §8).
 */

#ifndef HWGC_MEM_PTW_H
#define HWGC_MEM_PTW_H

#include <deque>
#include <functional>
#include <memory>

#include "mem/page_table.h"
#include "mem/port.h"
#include "mem/tlb.h"
#include "sim/clocked.h"
#include "sim/spsc_ring.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** PTW configuration. */
struct PtwParams
{
    unsigned l2TlbEntries = 128;  //!< Shared L2 TLB (paper baseline).
    Tick l2TlbLatency = 2;        //!< L2 TLB hit latency.
    unsigned queueDepth = 16;     //!< Pending walks per requester port.
};

/** Blocking page-table walker with a shared L2 TLB. */
class Ptw : public Clocked, public MemResponder
{
  public:
    /**
     * Completion callback: (valid, va, pa, page_bits). Invalid means
     * the virtual address is unmapped — a configuration error for the
     * GC unit, surfaced to the requester. page_bits is log2 of the
     * mapped page size (12 for 4 KiB pages, 21 for superpages).
     */
    using WalkCallback = std::function<void(bool, Addr, Addr, unsigned)>;

    /**
     * Re-creates a walk callback from its (owner, token) identity when
     * a checkpoint is restored. @p owner is the requesting component's
     * name; @p token is requester-defined (e.g. a slot index).
     */
    using CallbackResolver =
        std::function<WalkCallback(const std::string &owner,
                                   std::uint64_t token)>;

    /**
     * @param port Where PTE fetches are sent (the walker does not own
     *        it). Must be wired so responses come back to this Ptw.
     */
    Ptw(std::string name, const PtwParams &params,
        const PageTable &page_table, MemPort *port);

    /**
     * Attaches a requester and returns its port id for canRequest() /
     * requestWalk(). @p owner is the requesting component (nullptr for
     * harness-driven requests, which then always complete live);
     * @p label is its checkpoint identity — the name handed to the
     * CallbackResolver, conventionally owner->name(). Call during
     * construction, before the first tick.
     */
    unsigned registerRequester(const Clocked *owner, std::string label);

    /** True if port @p port can queue another walk this cycle. */
    bool canRequest(unsigned port) const;

    /**
     * Queues a walk for @p va on @p port at cycle @p now; @p cb fires
     * when it resolves. The walk becomes visible to the walker one
     * cycle later (the issue latch).
     *
     * Callbacks are opaque closures and cannot be serialized, so each
     * request also carries a requester-defined @p token; together with
     * the port's label it forms the identity from which the
     * CallbackResolver re-creates the closure after a checkpoint
     * restore.
     */
    void requestWalk(unsigned port, Addr va, Tick now, WalkCallback cb,
                     std::uint64_t token = 0);

    /** Installs the restore-time (owner, token) -> callback factory. */
    void
    setCallbackResolver(CallbackResolver resolver)
    {
        resolver_ = std::move(resolver);
    }

    // MemResponder interface (PTE fetch completions).
    void onResponse(const MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override;
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void bspCommit(Tick now) override;
    void bspPublish() override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** The shared second-level TLB (flush between phases). */
    TlbArray &l2Tlb() { return l2Tlb_; }

    /**
     * Retargets the walker at another tenant's page table (fleet
     * time-multiplexing). Callers must flush the TLBs and ensure no
     * walk is in flight — this is part of the §VII context switch.
     */
    void setPageTable(const PageTable &page_table);

    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t walksStarted() const { return walks_.value(); }
    std::uint64_t l2TlbHits() const { return l2Hits_.value(); }
    std::uint64_t pteFetches() const { return pteFetches_.value(); }
    /** @} */

    /** Registers the walker's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&walks_);
        g.add(&l2Hits_);
        g.add(&pteFetches_);
    }

  private:
    struct WalkRequest
    {
        Addr va = 0;
        Tick arriveAt = 0;  //!< Issue cycle + 1 (the issue latch).
        WalkCallback cb;
        std::uint64_t token = 0;  //!< Requester-defined (restore identity).
    };

    struct PendingCallback
    {
        Tick readyAt = 0;
        bool valid = false;
        Addr va = 0;
        Addr pa = 0;
        unsigned pageBits = 0;
        WalkCallback cb;
        std::uint64_t token = 0;  //!< Requester-defined (restore identity).
        unsigned port = 0;        //!< Issuing port (owner + restore identity).
    };

    /**
     * One requester attachment. The live queue is only touched by the
     * walker's own partition; cross-partition issues go through the
     * SPSC staging ring (producer: the requester's worker thread,
     * consumer: the commit thread) and publishedSize lets the
     * requester answer canRequest() from last cycle's snapshot.
     */
    struct Port
    {
        const Clocked *owner = nullptr;
        std::string label;
        std::deque<WalkRequest> queue;
        SpscRing<WalkRequest> staged;
        std::size_t publishedSize = 0;
    };

    /** Issues the PTE fetch for the current level if the port has room. */
    void issueLevel(Tick now);

    void finishWalk(bool valid, Addr pa, unsigned page_bits, Tick now);

    bool anyQueued() const;

    /** Rebuilds a callback from its saved identity via the resolver. */
    WalkCallback resolveCallback(const std::string &owner,
                                 std::uint64_t token,
                                 const std::string &origin) const;

    PtwParams params_;
    const PageTable *pageTable_;
    MemPort *port_;
    TlbArray l2Tlb_;

    std::vector<std::unique_ptr<Port>> ports_;
    std::deque<PendingCallback> pendingCallbacks_;
    /** Completions whose requester lives in a foreign partition,
     *  deferred to bspCommit. One ring suffices: the walker's own
     *  partition is the only producer. */
    SpscRing<PendingCallback> stagedCallbacks_;

    // Current walk state.
    bool walking_ = false;
    bool awaitingResponse_ = false;
    WalkRequest current_;
    unsigned currentPort_ = 0;
    PageTable::WalkResult walkPlan_;
    unsigned level_ = 0;

    CallbackResolver resolver_;

    stats::Scalar walks_{"walks"};
    stats::Scalar l2Hits_{"l2TlbHits"};
    stats::Scalar pteFetches_{"pteFetches"};
};

} // namespace hwgc::mem

#endif // HWGC_MEM_PTW_H
