/**
 * @file
 * Fleet mode — multi-device, multi-tenant tail-latency service.
 *
 * The paper sizes one accelerator instance per process and sketches
 * the datacenter story in §VII (context switching, bandwidth
 * throttling, concurrent collection). This bench composes them: a
 * small device array shares one interconnect + DRAM, many tenants
 * with DaCapo-shaped heaps trigger collections stochastically, and a
 * pluggable scheduler decides who collects first when demand exceeds
 * devices. Each tenant's request process (hundreds of thousands of
 * queries, coordinated-omission corrected) is replayed over its
 * measured pause timeline; the figure of merit is per-tenant
 * p50/p99/p99.9 and GC-induced SLO violations per policy.
 *
 *   --devices=N     device array size            (default 2)
 *   --tenants=N     tenant count                 (default 8)
 *   --gc-policy=P   fifo|deadline|overlap|all    (default all)
 *   --kernel=K      dense|event|parallel[@T]     (default event)
 *   --gcs=N         collections per tenant       (default 5)
 *   --queries=N     requests per tenant          (default 250000)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "driver/fleet.h"
#include "workload/dacapo.h"

namespace
{

using namespace hwgc;

bool
argValue(const char *arg, const char *prefix, std::string &out)
{
    const std::size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0) {
        return false;
    }
    out.assign(arg + n);
    return true;
}

std::uint64_t
parseU64(const std::string &text, const char *flag)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    fatal_if(end == nullptr || *end != '\0' || text.empty(),
             "%s: expected a number, got '%s'", flag, text.c_str());
    return v;
}

void
applyKernel(core::HwgcConfig &hwgc, const std::string &name)
{
    if (name == "dense") {
        hwgc.kernel = KernelMode::Dense;
    } else if (name == "event") {
        hwgc.kernel = KernelMode::Event;
    } else if (name.rfind("parallel", 0) == 0) {
        hwgc.kernel = KernelMode::ParallelBsp;
        const std::size_t at = name.find('@');
        if (at != std::string::npos) {
            hwgc.hostThreads = unsigned(
                parseU64(name.substr(at + 1), "--kernel=parallel@"));
        }
    } else {
        fatal("--kernel=%s: expected dense|event|parallel[@T]",
              name.c_str());
    }
}

/**
 * The tenant mix: even slots are latency-sensitive services (small
 * heaps, frequent GCs, tight deadline and SLO), odd slots are batch
 * tenants (the two heaviest DaCapo shapes, infrequent long GCs,
 * loose deadline). The interesting regime is FIFO head-of-line
 * blocking: a latency tenant triggering just after a couple of batch
 * collections waits out multi-ms marks it did not cause.
 */
std::vector<driver::TenantParams>
tenantMix(unsigned tenants, std::uint64_t queries)
{
    const auto latency_shape = workload::dacapoProfile("avrora");
    const workload::BenchmarkProfile batch_shapes[2] = {
        workload::dacapoProfile("pmd"),
        workload::dacapoProfile("xalan"),
    };

    std::vector<driver::TenantParams> mix;
    for (unsigned t = 0; t < tenants; ++t) {
        driver::TenantParams p;
        const bool is_latency = (t % 2) == 0;
        const auto &shape =
            is_latency ? latency_shape : batch_shapes[(t / 2) % 2];
        p.graph = shape.graph;
        p.graph.seed = shape.graph.seed + 7919 * t;
        p.churnPerGC = shape.churnPerGC;
        p.seed = 100 + t;
        p.latency.totalQueries = unsigned(queries);
        // Calibration: one avrora HW collection costs ~3.2M cycles
        // (3.2 ms), pmd ~19M, xalan ~27M (bench/baseline/
        // BENCH_fig15_mark_sweep.json). Periods are set so the fleet
        // runs slightly oversubscribed — ~2.2 device-demand on the
        // default 2 devices — which is exactly the regime where the
        // dispatch policy decides whose tail grows.
        if (is_latency) {
            p.name = "svc" + std::to_string(t);
            p.gcPeriodCycles = 12'000'000; // ~12 ms between triggers.
            p.deadlineMs = 5.0;
            p.sloMs = 10.0; // An unqueued 3.2 ms pause fits; a pause
                            // stuck behind batch marks does not.
            // 50k QPS front-end at ~37% utilization: the baseline
            // latency is tens of microseconds, so anything over the
            // SLO is GC-induced.
            p.latency.issueIntervalMs = 0.02;
            p.latency.serviceMeanMs = 0.005;
            p.latency.serviceJitterMs = 0.005;
        } else {
            p.name = "batch" + std::to_string(t);
            p.gcPeriodCycles = 30'000'000;
            p.deadlineMs = 60.0;
            p.sloMs = 200.0;
            // Throughput-oriented: slower issue rate, longer requests.
            p.latency.issueIntervalMs = 0.2;
            p.latency.serviceMeanMs = 0.1;
            p.latency.serviceJitterMs = 0.1;
            p.latency.totalQueries = unsigned(queries / 10);
        }
        p.latency.seed = 7 + t;
        // Small --queries= runs (CI smokes) would otherwise leave the
        // default warm-up swallowing a batch tenant's whole sample.
        if (p.latency.warmupQueries >= p.latency.totalQueries) {
            p.latency.warmupQueries = p.latency.totalQueries / 10;
        }
        mix.push_back(p);
    }
    return mix;
}

struct PolicyOutcome
{
    driver::GcPolicy policy = driver::GcPolicy::Fifo;
    Tick simCycles = 0;
    std::uint64_t stwCycles = 0;
    std::uint64_t queueCycles = 0;
    std::uint64_t svcViolations = 0;
    std::uint64_t batchViolations = 0;
    double svcWorstP999 = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    telemetry::Session session(argc, argv);
    bench::banner(
        "Fleet: multi-device multi-tenant tail latency (Sec VII)",
        "deadline-aware GC scheduling trims the p99.9 tail FIFO "
        "leaves behind");

    unsigned devices = 2, tenants = 8, gcs = 5;
    std::uint64_t queries = 250'000;
    // --kernel= is a global telemetry flag (Session consumed it from
    // argv already); the fleet SoC builds its devices around a shared
    // System, so the name is applied to every device config here.
    std::string policy_name = "all";
    std::string kernel_name = telemetry::options().kernel.empty()
                                  ? "event"
                                  : telemetry::options().kernel;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (argValue(argv[i], "--gc-policy=", policy_name)) {
            continue;
        }
        if (argValue(argv[i], "--devices=", value)) {
            devices = unsigned(parseU64(value, "--devices"));
        } else if (argValue(argv[i], "--tenants=", value)) {
            tenants = unsigned(parseU64(value, "--tenants"));
        } else if (argValue(argv[i], "--gcs=", value)) {
            gcs = unsigned(parseU64(value, "--gcs"));
        } else if (argValue(argv[i], "--queries=", value)) {
            queries = parseU64(value, "--queries");
        } else {
            fatal("bench_fleet_latency: unknown argument '%s'",
                  argv[i]);
        }
    }

    std::vector<driver::GcPolicy> policies;
    if (policy_name == "all") {
        policies = {driver::GcPolicy::Fifo, driver::GcPolicy::Deadline,
                    driver::GcPolicy::ConcurrentOverlap};
    } else {
        policies = {driver::parseGcPolicy(policy_name)};
    }

    const auto mix = tenantMix(tenants, queries);
    std::printf("  %u device(s), %u tenant(s), %u GCs/tenant, "
                "%llu queries/service tenant, kernel %s\n\n",
                devices, tenants, gcs, (unsigned long long)queries,
                kernel_name.c_str());

    bench::BenchRecord record("fleet_latency");
    bench::HostTimer total_timer;
    std::vector<PolicyOutcome> outcomes;
    double total_sim_cycles = 0.0;

    for (const driver::GcPolicy policy : policies) {
        driver::FleetConfig config;
        applyKernel(config.hwgc, kernel_name);
        config.devices = devices;
        config.policy = policy;
        config.gcsPerTenant = gcs;

        driver::FleetLab lab(config, mix);
        bench::HostTimer timer;
        lab.run();
        const double host_secs = timer.seconds();
        const auto &stats = lab.measure();

        PolicyOutcome out;
        out.policy = policy;
        out.simCycles = lab.now();
        total_sim_cycles += double(lab.now());

        std::printf("  policy %-8s (%llu GCs, %llu cycles)\n",
                    driver::gcPolicyName(policy),
                    (unsigned long long)lab.totalGcs(),
                    (unsigned long long)lab.now());
        std::printf("  %-8s %4s %9s %9s %9s %9s %9s %6s\n", "tenant",
                    "gcs", "stw(ms)", "p50(ms)", "p99(ms)", "p99.9",
                    "max(ms)", "viol");
        for (std::size_t t = 0; t < stats.size(); ++t) {
            const auto &s = stats[t];
            std::printf(
                "  %-8s %4u %9.3f %9.3f %9.3f %9.3f %9.3f %6u\n",
                s.name.c_str(), s.gcs,
                bench::msFromCycles(double(s.stwCycles)), s.p50Ms,
                s.p99Ms, s.p999Ms, s.maxMs, s.sloViolations);
            out.stwCycles += s.stwCycles;
            out.queueCycles += s.queueCycles;
            const bool is_latency = mix[t].name.rfind("svc", 0) == 0;
            if (is_latency) {
                out.svcViolations += s.sloViolations;
                out.svcWorstP999 = std::max(out.svcWorstP999, s.p999Ms);
            } else {
                out.batchViolations += s.sloViolations;
            }
        }
        std::printf("  service-tenant SLO violations: %llu   "
                    "worst p99.9: %.3f ms\n\n",
                    (unsigned long long)out.svcViolations,
                    out.svcWorstP999);
        outcomes.push_back(out);

        const char *pname = driver::gcPolicyName(policy);
        record.metric(std::string(pname) + ".sim_cycles",
                      out.simCycles);
        record.metric(std::string(pname) + ".stw_cycles",
                      out.stwCycles);
        record.metric(std::string(pname) + ".queue_cycles",
                      out.queueCycles);
        record.metric(std::string(pname) + ".svc_slo_violations",
                      out.svcViolations);
        record.metric(std::string(pname) + ".batch_slo_violations",
                      out.batchViolations);
        bench::printKernelSpeed("fleet_latency", pname, host_secs,
                                double(lab.now()));
    }

    const PolicyOutcome *fifo = nullptr, *deadline = nullptr;
    for (const auto &o : outcomes) {
        if (o.policy == driver::GcPolicy::Fifo) {
            fifo = &o;
        }
        if (o.policy == driver::GcPolicy::Deadline) {
            deadline = &o;
        }
    }
    if (fifo != nullptr && deadline != nullptr) {
        std::printf("  deadline vs fifo: service SLO violations "
                    "%llu -> %llu, worst p99.9 %.3f -> %.3f ms\n",
                    (unsigned long long)fifo->svcViolations,
                    (unsigned long long)deadline->svcViolations,
                    fifo->svcWorstP999, deadline->svcWorstP999);
        if (deadline->svcViolations >= fifo->svcViolations) {
            std::printf("  WARNING: deadline policy did not reduce "
                        "service-tenant violations on this config\n");
        }
    }

    record.write(total_timer.seconds());
    session.meta().kernel = kernel_name;
    session.meta().config = "devices=" + std::to_string(devices) +
                            ",tenants=" + std::to_string(tenants) +
                            ",policy=" + policy_name;
    session.meta().simCycles = std::uint64_t(total_sim_cycles);
    session.meta().hostSeconds = total_timer.seconds();
    return 0;
}
