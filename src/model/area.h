/**
 * @file
 * Analytical area model (paper §VI-C / Fig 22).
 *
 * The paper synthesized its Chisel through Synopsys DC with the SAED
 * EDK 32/28 library and reports: the GC unit is 18.5% the area of a
 * Rocket core, "comparable to the area of 64KB of SRAM", with the
 * mark queue dominating the unit. We cannot synthesize RTL, so this
 * model assigns each structure an SRAM-bit cost plus a logic overhead
 * and uses per-KB / per-structure constants calibrated once so the
 * baseline configuration reproduces the paper's headline ratios. The
 * value of the model is that it *scales with the configuration*: a
 * bigger mark queue or more sweepers change the Fig 22 breakdown the
 * way the real synthesis would.
 */

#ifndef HWGC_MODEL_AREA_H
#define HWGC_MODEL_AREA_H

#include <string>
#include <vector>

#include "core/hwgc_config.h"

namespace hwgc::model
{

/** A named area breakdown in mm^2. */
struct AreaBreakdown
{
    std::vector<std::pair<std::string, double>> parts;

    double
    total() const
    {
        double sum = 0.0;
        for (const auto &[name, mm2] : parts) {
            sum += mm2;
        }
        return sum;
    }

    double part(const std::string &name) const;
};

/** Technology / calibration constants (SAED 32/28-flavoured). */
struct AreaParams
{
    /** mm^2 per KiB of SRAM, including array overheads. */
    double sramMm2PerKiB = 0.0105;

    /** mm^2 per KiB of CAM/queue storage (denser control, FF-based,
     *  costlier per bit than SRAM). */
    double queueMm2PerKiB = 0.0550;

    /** mm^2 per TLB entry (CAM cell + comparators). */
    double tlbMm2PerEntry = 0.00045;

    /** Fixed control logic per pipeline unit. */
    double unitLogicMm2 = 0.012;

    /** One block sweeper's state machine. */
    double sweeperMm2 = 0.008;

    /** Crossbar cost per sweeper port (paper: "a large part of the
     *  design is the cross-bar"). */
    double crossbarMm2PerPort = 0.006;

    /** Rocket core logic blocks (DC estimates, Fig 22b "Frontend" /
     *  "Other" are dominated by logic, the caches by SRAM). */
    double rocketFrontendLogicMm2 = 0.55;
    double rocketOtherLogicMm2 = 0.80;
};

/** The area model. */
class AreaModel
{
  public:
    explicit AreaModel(const AreaParams &params = {}) : params_(params) {}

    /** Rocket CPU breakdown (Fig 22b): L2, L1D, frontend, other. */
    AreaBreakdown rocketArea() const;

    /** GC unit breakdown (Fig 22c) for a given configuration. */
    AreaBreakdown hwgcArea(const core::HwgcConfig &config) const;

    /** Unit-to-Rocket area ratio (paper headline: 0.185). */
    double ratio(const core::HwgcConfig &config) const;

    /** SRAM KiB with the same area as the unit (paper: ~64 KiB). */
    double sramEquivalentKiB(const core::HwgcConfig &config) const;

    const AreaParams &params() const { return params_; }

  private:
    AreaParams params_;
};

} // namespace hwgc::model

#endif // HWGC_MODEL_AREA_H
