/**
 * @file
 * A small gem5-flavoured statistics framework.
 *
 * Components own statistics objects registered in named groups; the
 * benches pull values out programmatically and the examples dump
 * human-readable listings. Everything is plain counters — statistics
 * never affect simulated behaviour.
 */

#ifndef HWGC_SIM_STATS_H
#define HWGC_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc::stats
{

/** A named 64-bit counter / gauge. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name) : name_(std::move(name)) {}

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** A fixed set of named sub-counters (e.g. requests per source). */
class Vector
{
  public:
    Vector() = default;
    Vector(std::string name, std::vector<std::string> labels)
        : name_(std::move(name)), labels_(std::move(labels)),
          values_(labels_.size(), 0)
    {}

    void
    add(std::size_t idx, std::uint64_t v = 1)
    {
        panic_if(idx >= values_.size(), "stats::Vector index %zu out of "
                 "range for '%s'", idx, name_.c_str());
        values_[idx] += v;
    }

    void reset() { values_.assign(values_.size(), 0); }

    /** Overwrites one sub-counter (checkpoint restore). */
    void
    setValue(std::size_t idx, std::uint64_t v)
    {
        panic_if(idx >= values_.size(), "stats::Vector index %zu out of "
                 "range for '%s'", idx, name_.c_str());
        values_[idx] = v;
    }

    std::uint64_t value(std::size_t idx) const { return values_.at(idx); }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto v : values_) {
            t += v;
        }
        return t;
    }

    std::size_t size() const { return values_.size(); }
    const std::string &label(std::size_t i) const { return labels_.at(i); }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::string> labels_;
    std::vector<std::uint64_t> values_;
};

/** A sample distribution with mean/min/max and power-of-two buckets. */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(std::string name, unsigned log2_buckets = 32)
        : name_(std::move(name)), buckets_(log2_buckets, 0)
    {}

    /** Records one sample. */
    void
    sample(std::uint64_t v)
    {
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_) {
            min_ = v;
        }
        if (v > max_) {
            max_ = v;
        }
        unsigned b = 0;
        while ((1ULL << (b + 1)) <= v + 1 && b + 1 < buckets_.size()) {
            ++b;
        }
        ++buckets_[b];
    }

    void
    reset()
    {
        count_ = sum_ = min_ = max_ = 0;
        buckets_.assign(buckets_.size(), 0);
    }

    /** Overwrites the full distribution (checkpoint restore). */
    void
    restore(std::uint64_t count, std::uint64_t sum, std::uint64_t min,
            std::uint64_t max, const std::vector<std::uint64_t> &buckets)
    {
        panic_if(buckets.size() != buckets_.size(),
                 "stats::Histogram '%s' bucket count mismatch",
                 name_.c_str());
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
        buckets_ = buckets;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minValue() const { return min_; }
    std::uint64_t maxValue() const { return max_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::vector<std::uint64_t> buckets_;
};

/**
 * Accumulates a value over fixed-width windows of simulated time;
 * used for the Fig 16 bandwidth-over-time traces.
 */
class TimeSeries
{
  public:
    TimeSeries() = default;
    TimeSeries(std::string name, Tick bucket_width)
        : name_(std::move(name)), width_(bucket_width)
    {
        panic_if(width_ == 0, "TimeSeries bucket width must be > 0");
    }

    /** Adds @p v to the bucket containing @p when. */
    void
    record(Tick when, std::uint64_t v)
    {
        const std::size_t idx = when / width_;
        if (idx >= buckets_.size()) {
            buckets_.resize(idx + 1, 0);
        }
        buckets_[idx] += v;
    }

    void reset() { buckets_.clear(); }

    /** Overwrites the bucket contents (checkpoint restore). */
    void setBuckets(std::vector<std::uint64_t> buckets)
    {
        buckets_ = std::move(buckets);
    }

    Tick bucketWidth() const { return width_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    Tick width_ = 1;
    std::vector<std::uint64_t> buckets_;
};

/**
 * A registry of statistics owned by one component; purely a dumping
 * convenience. Pointers must outlive the group. Groups register into
 * the process-wide telemetry::StatsRegistry under dotted paths so the
 * JSON exporter can reach every component (see sim/telemetry.h).
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    void add(const Scalar *s) { scalars_.push_back(s); }
    void add(const Vector *v) { vectors_.push_back(v); }
    void add(const Histogram *h) { histograms_.push_back(h); }
    void add(const TimeSeries *t) { timeSeries_.push_back(t); }

    /** Writes a human-readable listing of all registered stats. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /** @name Introspection (telemetry exporters) @{ */
    const std::vector<const Scalar *> &scalars() const { return scalars_; }
    const std::vector<const Vector *> &vectors() const { return vectors_; }
    const std::vector<const Histogram *> &histograms() const
    {
        return histograms_;
    }
    const std::vector<const TimeSeries *> &timeSeries() const
    {
        return timeSeries_;
    }
    /** @} */

  private:
    std::string name_;
    std::vector<const Scalar *> scalars_;
    std::vector<const Vector *> vectors_;
    std::vector<const Histogram *> histograms_;
    std::vector<const TimeSeries *> timeSeries_;
};

} // namespace hwgc::stats

#endif // HWGC_SIM_STATS_H
