/**
 * @file
 * Reclamation unit implementation.
 */

#include "reclamation_unit.h"

#include "runtime/block_table.h"

namespace hwgc::core
{

using runtime::BlockTableEntry;

ReclamationUnit::ReclamationUnit(std::string name,
                                 const HwgcConfig &config,
                                 mem::MemPort *reader_port,
                                 std::vector<mem::MemPort *> sweeper_ports,
                                 mem::Ptw &ptw)
    : Clocked(std::move(name)), config_(config),
      readerPort_(reader_port), ptw_(ptw),
      readerTlb_(this->name() + ".reader.tlb", 4)
{
    panic_if(readerPort_ == nullptr, "reclamation unit needs a port");
    panic_if(sweeper_ports.size() != config.numSweepers,
             "expected %u sweeper ports, got %zu", config.numSweepers,
             sweeper_ports.size());
    for (unsigned i = 0; i < config.numSweepers; ++i) {
        sweepers_.push_back(std::make_unique<BlockSweeper>(
            this->name() + ".sweeper" + std::to_string(i), config,
            sweeper_ports[i], ptw));
        // The dispatcher is each sweeper's sole work source; the
        // cycle profiler uses the edge to tell starvation from idle.
        sweepers_.back()->setUpstream(this);
    }
    ptwPort_ = ptw_.registerRequester(this, this->name());
}

void
ReclamationUnit::start(Addr block_table_va, std::uint64_t block_count)
{
    panic_if(!done(), "reclamation unit restarted while active");
    tableVa_ = block_table_va;
    nextBlock_ = 0;
    blockCount_ = block_count;
    entryReadPending_ = false;
    entryReady_ = false;
}

bool
ReclamationUnit::done() const
{
    if (nextBlock_ < blockCount_ || entryReadPending_ || entryReady_) {
        return false;
    }
    for (const auto &sweeper : sweepers_) {
        if (!sweeper->drained()) {
            return false;
        }
    }
    return true;
}

void
ReclamationUnit::onResponse(const mem::MemResponse &resp, Tick now)
{
    pokeWakeup();
    (void)now;
    panic_if(!entryReadPending_, "unexpected block-entry response");
    entryReadPending_ = false;
    pendingJob_.entryVa =
        BlockTableEntry::addr(tableVa_, nextBlock_);
    pendingJob_.baseVa = resp.rdata[0];
    pendingJob_.cellBytes = BlockTableEntry::cellBytes(resp.rdata[1]);
    entryReady_ = true;
}

void
ReclamationUnit::tick(Tick now)
{
    // Dispatch a decoded entry to the first idle sweeper.
    if (entryReady_) {
        for (auto &sweeper : sweepers_) {
            if (sweeper->idle()) {
                sweeper->assign(pendingJob_, now);
                entryReady_ = false;
                ++nextBlock_;
                ++dispatched_;
                DPRINTF(now, "Sweep",
                        "%s: block %llu -> %s base=%#llx cell=%u",
                        name().c_str(),
                        (unsigned long long)(nextBlock_ - 1),
                        sweeper->name().c_str(),
                        (unsigned long long)pendingJob_.baseVa,
                        pendingJob_.cellBytes);
                break;
            }
        }
        return;
    }

    if (entryReadPending_ || nextBlock_ >= blockCount_) {
        return;
    }
    if (walkPending_) {
        return; // Blocked on the PTW; don't re-probe the TLB.
    }

    // Fetch the next 32-byte block-table entry.
    const Addr entry_va = BlockTableEntry::addr(tableVa_, nextBlock_);
    std::optional<Addr> pa = readerTlb_.lookup(entry_va);
    if (!pa) {
        if (ptw_.canRequest(ptwPort_)) {
            walkPending_ = true;
            ptw_.requestWalk(ptwPort_, entry_va, now, walkCallback());
        }
        return;
    }

    mem::MemRequest req;
    req.paddr = *pa;
    req.size = BlockTableEntry::words * wordBytes;
    req.op = mem::Op::Read;
    if (!readerPort_->canSend(req)) {
        return;
    }
    readerPort_->send(req, now);
    entryReadPending_ = true;
}

Tick
ReclamationUnit::nextWakeup(Tick now) const
{
    if (entryReady_) {
        for (const auto &sweeper : sweepers_) {
            if (sweeper->idle()) {
                return now; // Dispatch possible.
            }
        }
        // All sweepers busy; one going idle happens inside its tick,
        // after which the kernel re-polls us.
        return maxTick;
    }
    if (entryReadPending_) {
        return maxTick; // Entry read resolves via onResponse.
    }
    if (nextBlock_ < blockCount_) {
        return walkPending_ ? maxTick : now;
    }
    return maxTick; // Draining sweepers only.
}

CycleClass
ReclamationUnit::cycleClass(Tick now) const
{
    (void)now;
    if (done()) {
        return CycleClass::Idle;
    }
    if (entryReady_) {
        for (const auto &sweeper : sweepers_) {
            if (sweeper->idle()) {
                return CycleClass::Busy; // Dispatching this cycle.
            }
        }
        return CycleClass::StallDownstreamFull; // Every sweeper busy.
    }
    if (entryReadPending_) {
        return CycleClass::StallDram; // Block-table entry in flight.
    }
    if (nextBlock_ < blockCount_) {
        if (walkPending_) {
            return CycleClass::StallPtw;
        }
        mem::MemRequest probe;
        probe.size = BlockTableEntry::words * wordBytes;
        return readerPort_->canSend(probe) ? CycleClass::Busy
                                           : CycleClass::StallBus;
    }
    return CycleClass::StallDownstreamFull; // Sweepers still draining.
}

mem::Ptw::WalkCallback
ReclamationUnit::walkCallback()
{
    return [this](bool valid, Addr va, Addr wpa, unsigned page_bits) {
        fatal_if(!valid, "block table unmapped at %#llx",
                 (unsigned long long)va);
        readerTlb_.insert(va, wpa, page_bits);
        walkPending_ = false;
    };
}

void
ReclamationUnit::save(checkpoint::Serializer &ser) const
{
    ser.putU64(tableVa_);
    ser.putU64(nextBlock_);
    ser.putU64(blockCount_);
    ser.putBool(entryReadPending_);
    ser.putBool(entryReady_);
    ser.putU64(pendingJob_.entryVa);
    ser.putU64(pendingJob_.baseVa);
    ser.putU64(pendingJob_.cellBytes);
    ser.putBool(walkPending_);
    checkpoint::putStat(ser, dispatched_);
    readerTlb_.save(ser);
}

void
ReclamationUnit::restore(checkpoint::Deserializer &des)
{
    tableVa_ = des.getU64();
    nextBlock_ = des.getU64();
    blockCount_ = des.getU64();
    entryReadPending_ = des.getBool();
    entryReady_ = des.getBool();
    pendingJob_.entryVa = des.getU64();
    pendingJob_.baseVa = des.getU64();
    pendingJob_.cellBytes = unsigned(des.getU64());
    walkPending_ = des.getBool();
    checkpoint::getStat(des, dispatched_);
    readerTlb_.restore(des);
}

std::uint64_t
ReclamationUnit::cellsFreed() const
{
    std::uint64_t total = 0;
    for (const auto &sweeper : sweepers_) {
        total += sweeper->cellsFreed();
    }
    return total;
}

std::uint64_t
ReclamationUnit::cellsScanned() const
{
    std::uint64_t total = 0;
    for (const auto &sweeper : sweepers_) {
        total += sweeper->cellsScanned();
    }
    return total;
}

void
ReclamationUnit::reset()
{
    panic_if(!done(), "reclamation unit reset while active");
    readerTlb_.flush();
    for (auto &sweeper : sweepers_) {
        sweeper->reset();
    }
}

void
ReclamationUnit::resetStats()
{
    dispatched_.reset();
    readerTlb_.resetStats();
    for (auto &sweeper : sweepers_) {
        sweeper->resetStats();
    }
}

} // namespace hwgc::core
