/**
 * @file
 * Round-robin interconnect implementation.
 */

#include "interconnect.h"

#include <algorithm>

namespace hwgc::mem
{

Interconnect::Interconnect(std::string name,
                           const InterconnectParams &params,
                           MemDevice &downstream)
    : Clocked(std::move(name)), params_(params), downstream_(downstream)
{
    hasFastForward_ = true; // Per-elapsed-cycle counter and tokens.
    hasBspHooks_ = true;    // All boundary traffic is staged.
    downstream_.setResponder(this);
    // One tick stages at most grantsPerCycle grants; the delivery
    // ring starts small and is re-sized (while empty, before any
    // concurrent reader exists) by tick() if a burst of same-cycle
    // responses ever outgrows it.
    stagedGrants_.reserve(params_.grantsPerCycle);
    stagedDeliveries_.reserve(64);
}

unsigned
Interconnect::registerClient(MemResponder *responder, std::string label)
{
    Port port;
    port.responder = responder;
    port.label = std::move(label);
    ports_.push_back(std::move(port));
    portRequests_.emplace_back("requests::" + ports_.back().label);
    portBytes_.emplace_back("bytes::" + ports_.back().label);
    // A client can never stage more sends in one cycle than its queue
    // holds — the staged canAccept() admission check bounds it.
    stagedSends_.emplace_back().reserve(params_.clientQueueDepth);
    publishedSize_.push_back(0);
    clientGroup_.push_back(noGroup);
    return unsigned(ports_.size() - 1);
}

void
Interconnect::setClientGroup(unsigned client, unsigned group)
{
    panic_if(client >= ports_.size(), "unknown client %u", client);
    clientGroup_[client] = group;
    if (group != noGroup && group >= groups_.size()) {
        groups_.resize(group + 1);
    }
}

void
Interconnect::setGroupThrottle(unsigned group, double bytes_per_cycle)
{
    panic_if(group == noGroup, "cannot budget the noGroup sentinel");
    if (group >= groups_.size()) {
        groups_.resize(group + 1);
    }
    groups_[group].rate = bytes_per_cycle;
}

void
Interconnect::setClientResponder(unsigned client, MemResponder *responder)
{
    panic_if(client >= ports_.size(), "unknown client %u", client);
    ports_[client].responder = responder;
}

void
Interconnect::setClientOwner(unsigned client, const Clocked *owner)
{
    panic_if(client >= ports_.size(), "unknown client %u", client);
    ports_[client].owner = owner;
}

bool
Interconnect::canAccept(unsigned client) const
{
    panic_if(client >= ports_.size(), "unknown client %u", client);
    if (bspStagingActive()) {
        // Clients run in another partition than the bus, so they see
        // the queue as of the last commit plus their own staged sends
        // — exactly the occupancy the dense kernel's same-cycle check
        // would see (this cycle's grants only shrink the queue, and a
        // grant can never take a request sent this same cycle). The
        // ring size is producer-exact: the client owns the tail and
        // the head only moves on the quiesced commit thread.
        return publishedSize_[client] + stagedSends_[client].size() <
               params_.clientQueueDepth;
    }
    return ports_[client].requests.size() < params_.clientQueueDepth;
}

void
Interconnect::sendRequest(const MemRequest &req, Tick now)
{
    pokeWakeup(); // A queued request is granted on a later cycle.
    panic_if(req.client >= ports_.size(), "unknown client %u",
             req.client);
    panic_if(!canAccept(req.client), "client %u queue overflow",
             req.client);
    panic_if(!validTransfer(req.paddr, req.size),
             "client %u: invalid transfer addr=%#llx size=%u", req.client,
             (unsigned long long)req.paddr, req.size);
    if (bspStagingActive()) {
        // The sender and the bus are in different partitions: record
        // the send for replay at commit, where it enters the queue at
        // the position and timestamp the dense kernel would have used.
        panic_if(params_.requestLatency == 0,
                 "ParallelBsp requires bus requestLatency >= 1");
        panic_if(!stagedSends_[req.client].push({req, now}),
                 "client %u staged-send ring overflow", req.client);
        detail::noteStagedEvent();
        return;
    }
    Port &port = ports_[req.client];
    port.requests.push_back({req, now + params_.requestLatency});
    ++portRequests_[req.client];
    portBytes_[req.client] += req.size;
    DPRINTF(now, "Bus", "%s: req client=%u %s addr=%#llx size=%u",
            name().c_str(), req.client,
            req.isWrite() ? "write" : "read",
            (unsigned long long)req.paddr, req.size);
}

void
Interconnect::onResponse(const MemResponse &resp, Tick now)
{
    pokeWakeup();
    pendingResponses_.push_back({resp, now + params_.responseLatency});
}

void
Interconnect::tick(Tick now)
{
    ++cycles_;
    bool moved = false;

    // Token-bucket throttle (§VII): tokens accrue per cycle and are
    // spent per granted byte; the bucket is capped at a couple of
    // line transfers so idle periods cannot bank unbounded bursts.
    if (params_.throttleBytesPerCycle > 0.0) {
        throttleTokens_ = std::min(
            throttleTokens_ + params_.throttleBytesPerCycle,
            4.0 * double(lineBytes));
    }
    // Per-group pacing buckets (fleet per-tenant budgets) accrue the
    // same way, each against its own rate.
    for (BudgetGroup &grp : groups_) {
        if (grp.rate > 0.0) {
            grp.tokens = std::min(grp.tokens + grp.rate,
                                  4.0 * double(lineBytes));
        }
    }

    // Round-robin grant of up to grantsPerCycle requests. While
    // staging (ParallelBsp evaluate), the grant *decisions* are made
    // here with the admission check counting the grants already
    // staged this tick, but the sends into the memory device are
    // deferred to bspCommit(). The blanket evaluate-phase predicate
    // (not the partition-relative one) is required: from the bus's
    // own tick the active partition *is* the bus's, yet the grant's
    // side effects land in the memory device and the delivery
    // handlers in client units — either may live anywhere under a
    // fine partitioning.
    const bool staging = bspEvaluatePhase();
    if (staging &&
        stagedDeliveries_.capacity() < pendingResponses_.size()) {
        // Legal (and race-free) because the ring is empty at the top
        // of every evaluate tick and the commit thread only reads it
        // after this worker joins the barrier.
        stagedDeliveries_.reserve(pendingResponses_.size());
    }
    unsigned granted = 0;
    const unsigned n = unsigned(ports_.size());
    for (unsigned i = 0; i < n && granted < params_.grantsPerCycle; ++i) {
        const unsigned idx = (rrNext_ + i) % n;
        Port &port = ports_[idx];
        if (port.requests.empty() ||
            port.requests.front().readyAt > now) {
            continue;
        }
        const MemRequest &req = port.requests.front().req;
        if (staging ? !downstream_.canAcceptBsp(req, stagedMemReads_,
                                                stagedMemWrites_)
                    : !downstream_.canAccept(req)) {
            continue;
        }
        // Budget real DRAM bandwidth: a sub-line request still costs
        // the DRAM a full BL8 burst, so charge line granularity.
        const double cost =
            double(std::max<unsigned>(req.size, lineBytes));
        if (params_.throttleBytesPerCycle > 0.0 &&
            throttleTokens_ < cost) {
            ++throttledGrants_;
            continue; // Out of bandwidth budget this cycle.
        }
        BudgetGroup *grp = portGroup(idx);
        if (grp != nullptr && grp->tokens < cost) {
            ++groupThrottledGrants_;
            continue; // Out of tenant budget this cycle.
        }
        if (params_.throttleBytesPerCycle > 0.0) {
            throttleTokens_ -= cost;
        }
        if (grp != nullptr) {
            grp->tokens -= cost;
        }
        if (staging) {
            panic_if(!stagedGrants_.push({req, now}),
                     "staged-grant ring overflow");
            detail::noteStagedEvent();
            if (req.isWrite()) {
                ++stagedMemWrites_;
            } else {
                ++stagedMemReads_;
            }
        } else {
            downstream_.sendRequest(req, now);
        }
        port.requests.pop_front();
        if (port.owner != nullptr) {
            pokeWakeup(*port.owner); // canAccept() just rose.
        }
        ++granted;
        moved = true;
        rrNext_ = (idx + 1) % n;
    }

    // Deliver due responses (in arrival order). While staging, the
    // handlers run at commit — they mutate client-partition state and
    // may immediately send new requests.
    while (!pendingResponses_.empty() &&
           pendingResponses_.front().readyAt <= now) {
        const MemResponse resp = pendingResponses_.front().resp;
        pendingResponses_.pop_front();
        if (staging) {
            panic_if(!stagedDeliveries_.push(resp),
                     "staged-delivery ring overflow");
            detail::noteStagedEvent();
            moved = true;
            continue;
        }
        Port &port = ports_[resp.req.client];
        if (port.responder != nullptr) {
            port.responder->onResponse(resp, now);
        }
        moved = true;
    }

    if (moved) {
        ++busBusy_;
    }
}

Tick
Interconnect::nextWakeup(Tick now) const
{
    const bool throttling = params_.throttleBytesPerCycle > 0.0;
    if (throttling && throttleTokens_ < 4.0 * double(lineBytes)) {
        // Token accrual must replay cycle by cycle until the bucket
        // saturates at its cap, or the floating-point sum would not
        // stay bit-identical to the dense kernel's.
        return now;
    }
    bool pacing = throttling;
    for (const BudgetGroup &grp : groups_) {
        if (grp.rate <= 0.0) {
            continue;
        }
        pacing = true;
        if (grp.tokens < 4.0 * double(lineBytes)) {
            return now; // Same cycle-exact accrual as the global bucket.
        }
    }
    Tick next = maxTick;
    if (!pendingResponses_.empty()) {
        next = std::min(next, pendingResponses_.front().readyAt);
    }
    for (const auto &port : ports_) {
        if (port.requests.empty()) {
            continue;
        }
        if (pacing) {
            return now; // Grants spend tokens every cycle.
        }
        const auto &front = port.requests.front();
        if (front.readyAt > now) {
            next = std::min(next, front.readyAt);
        } else if (downstream_.canAccept(front.req)) {
            return now;
        }
        // A ready head the downstream cannot accept is blocked: only
        // a downstream tick can free the in-flight slot it needs, and
        // the kernel re-polls all wakeups after every executed cycle,
        // so the blocked port contributes no wakeup of its own.
    }
    return next;
}

CycleClass
Interconnect::cycleClass(Tick now) const
{
    if (!busy()) {
        return CycleClass::Idle;
    }
    const bool throttling = params_.throttleBytesPerCycle > 0.0;
    for (unsigned i = 0; i < unsigned(ports_.size()); ++i) {
        const auto &port = ports_[i];
        if (port.requests.empty()) {
            continue;
        }
        const auto &front = port.requests.front();
        if (front.readyAt > now) {
            continue; // Still traversing the request-latency hops.
        }
        if (!downstream_.canAccept(front.req)) {
            // A ready head the memory device cannot take: the bus is
            // backpressured by DRAM occupancy, the paper's dominant
            // stall under bandwidth pressure (Fig 16).
            return CycleClass::StallDram;
        }
        const double cost =
            double(std::max<unsigned>(front.req.size, lineBytes));
        if (throttling && throttleTokens_ < cost) {
            // Token-starved grant: the residual-bandwidth budget
            // (§VII) is the limiter, i.e. DRAM bandwidth.
            return CycleClass::StallDram;
        }
        const BudgetGroup *grp = portGroup(i);
        if (grp != nullptr && grp->tokens < cost) {
            // Starved by the tenant's pacing budget instead of the
            // global one — still a bandwidth limit.
            return CycleClass::StallDram;
        }
    }
    return CycleClass::Busy; // Traffic moving through the hops.
}

void
Interconnect::fastForward(Tick from, Tick to)
{
    // Cycles elapse (and throttle tokens accrue) even on cycles the
    // kernel did not tick us; nextWakeup() guarantees the bucket is
    // already at its cap whenever that happens, so the clamped
    // accrual below is exact.
    cycles_ += to - from;
    if (params_.throttleBytesPerCycle > 0.0) {
        throttleTokens_ = std::min(
            throttleTokens_ +
                double(to - from) * params_.throttleBytesPerCycle,
            4.0 * double(lineBytes));
    }
    for (BudgetGroup &grp : groups_) {
        if (grp.rate > 0.0) {
            grp.tokens = std::min(grp.tokens + double(to - from) * grp.rate,
                                  4.0 * double(lineBytes));
        }
    }
}

void
Interconnect::bspCommit(Tick now)
{
    // 1. Client sends: in the dense cycle these ran during the client
    //    ticks, before the bus ticked. Replaying them through the
    //    live sendRequest reproduces queue positions, timestamps and
    //    per-client statistics exactly (this cycle's grants already
    //    popped, but a grant can never take a same-cycle send, so the
    //    final queue content is order-independent).
    //    Clients staged concurrently into their own rings, so replay
    //    walks the rings in client-id order — state-identical to any
    //    dense interleaving, because each send lands in its own
    //    per-client queue and bumps only per-client counters.
    StagedReq s;
    for (auto &ring : stagedSends_) {
        while (ring.pop(s)) {
            sendRequest(s.req, s.at);
        }
    }

    // 2. Grants decided by this cycle's tick, in grant order.
    while (stagedGrants_.pop(s)) {
        downstream_.sendRequest(s.req, s.at);
    }
    stagedMemReads_ = 0;
    stagedMemWrites_ = 0;

    // 3. Response deliveries, in arrival order. Handlers may send new
    //    requests live from here — they land after the replayed
    //    sends, just as they would during the dense bus tick.
    MemResponse resp;
    while (stagedDeliveries_.pop(resp)) {
        Port &port = ports_[resp.req.client];
        if (port.responder != nullptr) {
            port.responder->onResponse(resp, now);
        }
    }
}

void
Interconnect::bspPublish()
{
    // End-of-cycle queue occupancy, read by client partitions' staged
    // canAccept() checks throughout the next evaluate phase.
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        publishedSize_[i] = unsigned(ports_[i].requests.size());
    }
}

void
Interconnect::save(checkpoint::Serializer &ser) const
{
    // Checkpoints are taken at inter-cycle boundaries, where BSP
    // staging buffers are empty by the kernel's invariants.
    for (const auto &ring : stagedSends_) {
        panic_if(!ring.empty(), "bus '%s' checkpointed mid-evaluate",
                 name().c_str());
    }
    panic_if(!stagedGrants_.empty() || !stagedDeliveries_.empty(),
             "bus '%s' checkpointed mid-evaluate", name().c_str());
    ser.putU64(ports_.size());
    for (const auto &port : ports_) {
        ser.putU64(port.requests.size());
        for (const auto &tr : port.requests) {
            saveRequest(ser, tr.req);
            ser.putU64(tr.readyAt);
        }
    }
    ser.putU64(pendingResponses_.size());
    for (const auto &tr : pendingResponses_) {
        saveResponse(ser, tr.resp);
        ser.putU64(tr.readyAt);
    }
    ser.putU64(rrNext_);
    ser.putDouble(throttleTokens_);
    // Group budgets are architectural state (the fleet driver programs
    // them per dispatch), so the full mapping travels with the image.
    ser.putU64(groups_.size());
    for (const BudgetGroup &grp : groups_) {
        ser.putDouble(grp.rate);
        ser.putDouble(grp.tokens);
    }
    for (const unsigned g : clientGroup_) {
        ser.putU64(g);
    }
    // Record the actual end-of-cycle occupancy, not the publishedSize_
    // scratch: under the dense/event kernels bspPublish() never runs,
    // so the scratch would be stale (restore() rebuilds its own copy
    // from the queues either way).
    for (const auto &port : ports_) {
        ser.putU64(port.requests.size());
    }
    for (const auto &s : portRequests_) {
        checkpoint::putStat(ser, s);
    }
    for (const auto &s : portBytes_) {
        checkpoint::putStat(ser, s);
    }
    checkpoint::putStat(ser, throttledGrants_);
    checkpoint::putStat(ser, groupThrottledGrants_);
    checkpoint::putStat(ser, busBusy_);
    checkpoint::putStat(ser, cycles_);
}

void
Interconnect::restore(checkpoint::Deserializer &des)
{
    const std::uint64_t num_ports = des.getU64();
    fatal_if(num_ports != ports_.size(),
             "checkpoint '%s': bus '%s' has %llu clients but this "
             "configuration has %zu — topologies differ",
             des.origin().c_str(), name().c_str(),
             (unsigned long long)num_ports, ports_.size());
    for (auto &port : ports_) {
        port.requests.clear();
        const std::uint64_t depth = des.getU64();
        for (std::uint64_t i = 0; i < depth; ++i) {
            TimedReq tr;
            tr.req = restoreRequest(des);
            tr.readyAt = des.getU64();
            port.requests.push_back(tr);
        }
    }
    pendingResponses_.clear();
    const std::uint64_t num_resp = des.getU64();
    for (std::uint64_t i = 0; i < num_resp; ++i) {
        TimedResp tr;
        tr.resp = restoreResponse(des);
        tr.readyAt = des.getU64();
        pendingResponses_.push_back(tr);
    }
    rrNext_ = unsigned(des.getU64());
    throttleTokens_ = des.getDouble();
    groups_.assign(std::size_t(des.getU64()), BudgetGroup{});
    for (BudgetGroup &grp : groups_) {
        grp.rate = des.getDouble();
        grp.tokens = des.getDouble();
    }
    for (unsigned &g : clientGroup_) {
        g = unsigned(des.getU64());
    }
    // The published occupancies are consumed but not trusted: they are
    // BSP-kernel scratch that only bspPublish() maintains, so an image
    // written under the dense or event kernel carries stale values
    // (typically the all-zero initial state). At an inter-cycle
    // boundary published == actual by the publish-every-cycle
    // invariant, so rebuild them from the restored queues — otherwise
    // a ParallelBsp resume admits staged sends into already-full
    // client queues and bspCommit()'s replay overflows.
    for (auto &size : publishedSize_) {
        (void)des.getU64();
        size = 0;
    }
    bspPublish();
    for (auto &s : portRequests_) {
        checkpoint::getStat(des, s);
    }
    for (auto &s : portBytes_) {
        checkpoint::getStat(des, s);
    }
    checkpoint::getStat(des, throttledGrants_);
    checkpoint::getStat(des, groupThrottledGrants_);
    checkpoint::getStat(des, busBusy_);
    checkpoint::getStat(des, cycles_);
}

bool
Interconnect::busy() const
{
    if (!pendingResponses_.empty()) {
        return true;
    }
    for (const auto &port : ports_) {
        if (!port.requests.empty()) {
            return true;
        }
    }
    return false;
}

void
Interconnect::resetStats()
{
    for (auto &s : portRequests_) {
        s.reset();
    }
    for (auto &s : portBytes_) {
        s.reset();
    }
    busBusy_.reset();
    cycles_.reset();
}

void
Interconnect::addStats(stats::Group &g) const
{
    g.add(&busBusy_);
    g.add(&cycles_);
    g.add(&throttledGrants_);
    g.add(&groupThrottledGrants_);
    for (const auto &s : portRequests_) {
        g.add(&s);
    }
    for (const auto &s : portBytes_) {
        g.add(&s);
    }
}

std::uint64_t
Interconnect::clientRequests(unsigned client) const
{
    panic_if(client >= portRequests_.size(), "unknown client %u",
             client);
    return portRequests_[client].value();
}

std::uint64_t
Interconnect::clientBytes(unsigned client) const
{
    panic_if(client >= portBytes_.size(), "unknown client %u", client);
    return portBytes_[client].value();
}

const std::string &
Interconnect::clientLabel(unsigned client) const
{
    return ports_.at(client).label;
}

} // namespace hwgc::mem
