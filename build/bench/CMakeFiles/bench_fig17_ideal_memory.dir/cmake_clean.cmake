file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_ideal_memory.dir/bench_fig17_ideal_memory.cc.o"
  "CMakeFiles/bench_fig17_ideal_memory.dir/bench_fig17_ideal_memory.cc.o.d"
  "bench_fig17_ideal_memory"
  "bench_fig17_ideal_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_ideal_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
