/**
 * @file
 * The TileLink-like on-chip interconnect (system bus).
 *
 * Clients register a response receiver and get back a client id; the
 * bus round-robin arbitrates per-client request queues into the
 * downstream memory device and routes responses back by client id.
 * The paper instruments exactly this port ("our TileLink port is busy
 * 88% of all mark cycles"), so the bus keeps utilization statistics
 * and per-client request/byte counters (Fig 18b).
 */

#ifndef HWGC_MEM_INTERCONNECT_H
#define HWGC_MEM_INTERCONNECT_H

#include <deque>
#include <string>
#include <vector>

#include "mem/mem_device.h"
#include "sim/spsc_ring.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** Interconnect configuration. */
struct InterconnectParams
{
    unsigned clientQueueDepth = 4;  //!< Requests buffered per client.
    unsigned grantsPerCycle = 1;    //!< Channel beats per cycle.
    Tick requestLatency = 6;        //!< Client -> memory hops.
    Tick responseLatency = 6;       //!< Memory -> client hops.

    /**
     * Bandwidth throttle (paper §VII "Bandwidth Throttling"): caps
     * the data granted through this bus to the given bytes/cycle via
     * a token bucket, so a GC unit "only use[s] residual bandwidth"
     * instead of interfering with the application. 0 disables.
     */
    double throttleBytesPerCycle = 0.0;
};

/** Round-robin arbitrated system bus in front of one memory device. */
class Interconnect : public Clocked, public MemResponder
{
  public:
    Interconnect(std::string name, const InterconnectParams &params,
                 MemDevice &downstream);

    /**
     * Registers a client port.
     * @param responder Receiver of this client's responses (may be
     *        nullptr for write-only producers that ignore acks).
     * @param label Stable label used in per-client statistics.
     * @return The client id to place into MemRequest::client.
     */
    unsigned registerClient(MemResponder *responder, std::string label);

    /** Rewires a client's responder (breaks construction cycles). */
    void setClientResponder(unsigned client, MemResponder *responder);

    /**
     * Registers the component whose nextWakeup() polls this client's
     * canAccept(); its cached wakeup is poked when a grant frees a
     * slot in the client's queue (the only event that raises it).
     */
    void setClientOwner(unsigned client, const Clocked *owner);

    /**
     * @name Per-group pacing budgets (fleet mode, §VII extended)
     *
     * The global throttle caps everything moving through the bus; a
     * fleet additionally paces each *tenant* with its own token
     * bucket so one device's GC only uses the bandwidth budget its
     * tenant paid for. Clients are mapped into budget groups (all of
     * one device's ports -> the running tenant's group) and each
     * group with a nonzero rate accrues and spends tokens exactly
     * like the global bucket: accrual capped at four line transfers,
     * grants charged at line granularity, starved grants counted and
     * classed as DRAM stalls. Both buckets must pass for a grant.
     * noGroup (the default) exempts a client from group pacing.
     * @{
     */
    static constexpr unsigned noGroup = ~0u;

    /** Assigns @p client to budget group @p group (or noGroup). */
    void setClientGroup(unsigned client, unsigned group);

    /** Sets group @p group's budget in bytes/cycle (0 = unpaced). */
    void setGroupThrottle(unsigned group, double bytes_per_cycle);

    std::uint64_t groupThrottledGrants() const
    {
        return groupThrottledGrants_.value();
    }
    /** @} */

    /** True if client @p client can enqueue one more request. */
    bool canAccept(unsigned client) const;

    /** Enqueues a request from its client port. */
    void sendRequest(const MemRequest &req, Tick now);

    // MemResponder interface (responses arriving from the device).
    void onResponse(const MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override;
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void fastForward(Tick from, Tick to) override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    // ParallelBsp staging (see DESIGN.md §8). During the evaluate
    // phase the bus runs in its own partition, so every boundary
    // crossing is staged and replayed here in the dense kernel's
    // intra-cycle order: client sends (which preceded the bus tick),
    // then grants into the memory device, then response deliveries
    // (whose handlers may immediately send live — landing after the
    // replayed sends, exactly as in the dense cycle).
    void bspCommit(Tick now) override;
    void bspPublish() override;

    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t clientRequests(unsigned client) const;
    std::uint64_t clientBytes(unsigned client) const;
    const std::string &clientLabel(unsigned client) const;
    unsigned numClients() const { return unsigned(ports_.size()); }
    std::uint64_t busBusyCycles() const { return busBusy_.value(); }
    std::uint64_t observedCycles() const { return cycles_.value(); }
    std::uint64_t throttledGrants() const
    {
        return throttledGrants_.value();
    }
    /** @} */

    /** Registers the bus statistics (incl. per-client counters). */
    void addStats(stats::Group &g) const;

  private:
    struct TimedReq
    {
        MemRequest req;
        Tick readyAt;
    };

    struct TimedResp
    {
        MemResponse resp;
        Tick readyAt;
    };

    struct Port
    {
        MemResponder *responder = nullptr;
        const Clocked *owner = nullptr;
        std::string label;
        std::deque<TimedReq> requests;
    };

    /** A send or grant captured during a ParallelBsp evaluate phase. */
    struct StagedReq
    {
        MemRequest req;
        Tick at;
    };

    InterconnectParams params_;
    MemDevice &downstream_;
    std::vector<Port> ports_;

    /**
     * @name ParallelBsp staging state (empty outside evaluate)
     *
     * Each boundary crossing gets its own SPSC ring: the per-client
     * send rings have exactly one producer (the worker running the
     * client's partition) and the grant/delivery rings are filled by
     * the worker ticking the bus itself; the single consumer is
     * always the commit thread, after the evaluate join. A deque
     * keeps the (non-movable, cache-line-padded) rings at stable
     * addresses while clients keep registering.
     * @{
     */
    std::deque<SpscRing<StagedReq>> stagedSends_; //!< Client -> bus.
    SpscRing<StagedReq> stagedGrants_;            //!< Bus -> memory.
    SpscRing<MemResponse> stagedDeliveries_;      //!< Bus -> client.
    std::vector<unsigned> publishedSize_; //!< Last-commit queue sizes.
    unsigned stagedMemReads_ = 0;  //!< Reads granted this evaluate.
    unsigned stagedMemWrites_ = 0; //!< Writes granted this evaluate.
    /** @} */
    /** Per-client request/byte counters; a deque keeps the Scalars'
     *  addresses stable while clients keep registering, so telemetry
     *  groups may hold pointers into it. */
    std::deque<stats::Scalar> portRequests_;
    std::deque<stats::Scalar> portBytes_;
    std::deque<TimedResp> pendingResponses_;
    unsigned rrNext_ = 0;
    double throttleTokens_ = 0.0;
    stats::Scalar throttledGrants_{"throttledGrants"};

    /** @name Per-group pacing state (see setClientGroup) @{ */
    struct BudgetGroup
    {
        double rate = 0.0;   //!< Bytes/cycle budget (0 = unpaced).
        double tokens = 0.0; //!< Current bucket fill.
    };

    /** The group a port's grants are charged to (noGroup = none). */
    const BudgetGroup *portGroup(unsigned client) const
    {
        const unsigned g = clientGroup_[client];
        return (g != noGroup && g < groups_.size() &&
                groups_[g].rate > 0.0)
            ? &groups_[g]
            : nullptr;
    }
    BudgetGroup *portGroup(unsigned client)
    {
        return const_cast<BudgetGroup *>(
            const_cast<const Interconnect *>(this)->portGroup(client));
    }

    std::vector<BudgetGroup> groups_;
    std::vector<unsigned> clientGroup_; //!< Per client, default noGroup.
    stats::Scalar groupThrottledGrants_{"groupThrottledGrants"};
    /** @} */

    stats::Scalar busBusy_{"busBusyCycles"};
    stats::Scalar cycles_{"cycles"};
};

} // namespace hwgc::mem

#endif // HWGC_MEM_INTERCONNECT_H
