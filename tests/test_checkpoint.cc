/**
 * @file
 * Checkpoint/restore tests: a checkpoint taken at any inter-cycle
 * boundary — mid-mark via --checkpoint-at or after a completed phase —
 * must restore into an identically configured device and finish the
 * run bit-identically (same final cycle count, same full stats-JSON
 * export) under every kernel, and corrupt or mismatched checkpoint
 * files must be rejected with a fatal error, never silently
 * mis-restored.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/hwgc_device.h"
#include "driver/fleet.h"
#include "sim/checkpoint.h"
#include "sim/telemetry.h"
#include "workload/graph_gen.h"

namespace hwgc
{
namespace
{

using core::HwgcConfig;

/** A heap + device built for one shape/seed (same rig as test_hwgc). */
struct Rig
{
    Rig(const workload::GraphParams &graph, const HwgcConfig &config,
        runtime::Layout layout = runtime::Layout::Bidirectional)
        : heap(mem, makeHeapParams(layout)), builder(heap, graph)
    {
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
        device = std::make_unique<core::HwgcDevice>(
            mem, heap.pageTable(), config);
        device->configure(heap);
    }

    static runtime::HeapParams
    makeHeapParams(runtime::Layout layout)
    {
        runtime::HeapParams params;
        params.layout = layout;
        return params;
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    workload::GraphBuilder builder;
    std::unique_ptr<core::HwgcDevice> device;
};

workload::GraphParams
testGraph(std::uint64_t seed, std::uint64_t live = 900)
{
    workload::GraphParams p;
    p.liveObjects = live;
    p.garbageObjects = live / 2;
    p.numRoots = 8;
    p.arrayFraction = 0.15;
    p.seed = seed;
    return p;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** See test_determinism.cc: strip registry instance digits so exports
 *  from different runs become directly comparable strings. */
std::string
normalizeInstanceIds(std::string s)
{
    for (const char *key :
         {"system.hwgc", "system.cpu", "system.fleet"}) {
        const std::size_t klen = std::strlen(key);
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            std::size_t digits = pos + klen;
            std::size_t end = digits;
            while (end < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[end]))) {
                ++end;
            }
            s.replace(digits, end - digits, "#");
            pos = digits + 1;
        }
    }
    return s;
}

std::string
exportStats()
{
    std::ostringstream os;
    telemetry::StatsRegistry::global().exportJson(os, {});
    return normalizeInstanceIds(os.str());
}

void
expectSameStatsJson(const std::string &ref, const std::string &run)
{
    if (ref == run) {
        return;
    }
    std::size_t i = 0;
    while (i < ref.size() && i < run.size() && ref[i] == run[i]) {
        ++i;
    }
    const std::size_t begin = i > 120 ? i - 120 : 0;
    ADD_FAILURE() << "stats JSON diverged at byte " << i << "\n  ref: ..."
                  << ref.substr(begin, 200) << "\n  run: ..."
                  << run.substr(begin, 200);
}

/** Everything a finished run must reproduce after a restore. */
struct FinalState
{
    Tick now = 0;
    Tick markCycles = 0;
    std::uint64_t marked = 0;
    std::uint64_t freed = 0;
    std::string statsJson;
};

/** Runs mark + sweep (resuming mid-phase if the device was restored
 *  there) and folds the run down to what must match. */
FinalState
finishRun(Rig &rig)
{
    const auto mark = rig.device->runMark();
    const auto sweep = rig.device->runSweep();
    FinalState f;
    f.now = rig.device->system().now();
    f.markCycles = mark.cycles;
    f.marked = mark.objectsMarked;
    f.freed = sweep.cellsFreed;
    f.statsJson = exportStats();
    return f;
}

HwgcConfig
withKernel(HwgcConfig config, KernelMode kernel, unsigned threads,
           const char *partition = "", unsigned superstep_max = 0)
{
    config.kernel = kernel;
    config.hostThreads = threads;
    config.hostPartition = partition;
    config.superstepMax = superstep_max;
    return config;
}

/**
 * One rig built, prepared (arm/restore), run to completion, and torn
 * down in its own registry scope: the rig must be destroyed before the
 * next run so its stats groups retire and the next clearRetired()
 * drops them from the export.
 */
template <typename Setup>
FinalState
scopedRun(const workload::GraphParams &graph, const HwgcConfig &config,
          runtime::Layout layout, Setup &&setup)
{
    telemetry::StatsRegistry::global().clearRetired();
    Rig rig(graph, config, layout);
    setup(rig);
    return finishRun(rig);
}

/**
 * The core round-trip: an uninterrupted reference run; then for each
 * kernel a writer run that checkpoints mid-mark (and must match the
 * reference — writing cannot perturb the simulation) and a reader run
 * under a *different* kernel that restores that file and must converge
 * to the same final cycle and statistics.
 */
void
expectMidMarkRoundTrip(const HwgcConfig &config, bool full_matrix,
                       runtime::Layout layout =
                           runtime::Layout::Bidirectional)
{
    const auto graph = testGraph(21);

    const FinalState ref = scopedRun(
        graph, withKernel(config, KernelMode::Dense, 0), layout,
        [](Rig &) {});
    ASSERT_GT(ref.markCycles, 200u) << "graph too small for a mid-mark "
                                       "checkpoint";
    ASSERT_GT(ref.marked, 0u);
    const Tick at = ref.markCycles / 2;

    struct Case
    {
        const char *name;
        KernelMode kernel;
        unsigned threads;
    };
    static constexpr Case cases[] = {
        {"dense", KernelMode::Dense, 0},
        {"event", KernelMode::Event, 0},
        {"parallel-1", KernelMode::ParallelBsp, 1},
        {"parallel-4", KernelMode::ParallelBsp, 4},
    };
    const std::size_t num_cases =
        full_matrix ? std::size(cases) : std::size_t(2);

    for (std::size_t i = 0; i < num_cases; ++i) {
        const Case &save_case = cases[i];
        // Rotating the restore kernel also proves cross-kernel resume:
        // kernel mode is a host knob, not architectural state.
        const Case &load_case = cases[(i + 1) % num_cases];
        const std::string path =
            tmpPath(std::string("midmark-") + save_case.name + ".ckpt");

        {
            SCOPED_TRACE(std::string("save under ") + save_case.name);
            const FinalState run = scopedRun(
                graph,
                withKernel(config, save_case.kernel, save_case.threads),
                layout, [&](Rig &writer) {
                    writer.device->armCheckpoint(path, at);
                });
            EXPECT_EQ(ref.now, run.now);
            EXPECT_EQ(ref.markCycles, run.markCycles);
            EXPECT_EQ(ref.marked, run.marked);
            EXPECT_EQ(ref.freed, run.freed);
            expectSameStatsJson(ref.statsJson, run.statsJson);
        }
        {
            SCOPED_TRACE(std::string("restore under ") + load_case.name +
                         " from " + save_case.name);
            const FinalState run = scopedRun(
                graph,
                withKernel(config, load_case.kernel, load_case.threads),
                layout, [&](Rig &reader) {
                    reader.device->restoreCheckpoint(path);
                    EXPECT_EQ(reader.device->system().now(), at);
                    EXPECT_EQ(reader.device->regs().status,
                              core::MmioRegs::Marking);
                });
            EXPECT_EQ(ref.now, run.now);
            EXPECT_EQ(ref.freed, run.freed);
            expectSameStatsJson(ref.statsJson, run.statsJson);
        }
    }
}

TEST(Checkpoint, MidMarkRoundTripKernelMatrix)
{
    expectMidMarkRoundTrip(HwgcConfig{}, true);
}

TEST(Checkpoint, MidMarkRoundTripSharedCache)
{
    HwgcConfig config;
    config.sharedCache = true;
    expectMidMarkRoundTrip(config, false);
}

TEST(Checkpoint, MidMarkRoundTripIdealMemory)
{
    HwgcConfig config;
    config.memModel = core::MemModel::Ideal;
    expectMidMarkRoundTrip(config, false);
}

TEST(Checkpoint, MidMarkRoundTripSpillPressure)
{
    HwgcConfig config;
    config.markQueueEntries = 32; // Force the spill path.
    expectMidMarkRoundTrip(config, false);
}

/**
 * A checkpoint cycle that lands inside what the batcher would run as
 * one multi-cycle superstep: the run limit must clip the batch at
 * exactly the arming cycle (not at the batch boundary), the written
 * file must match the uninterrupted reference, and a restore under a
 * different partition scheme with batching still on must converge to
 * the same final state.
 */
TEST(Checkpoint, MidSuperstepRoundTrip)
{
    const auto graph = testGraph(23);
    const HwgcConfig config;

    const FinalState ref = scopedRun(
        graph, withKernel(config, KernelMode::Dense, 0),
        runtime::Layout::Bidirectional, [](Rig &) {});
    ASSERT_GT(ref.markCycles, 200u);
    const Tick at = ref.markCycles / 2;
    const std::string path = tmpPath("midsuperstep.ckpt");

    {
        SCOPED_TRACE("save mid-superstep (fine partitions, unbounded "
                     "batching)");
        telemetry::StatsRegistry::global().clearRetired();
        FinalState run;
        std::uint64_t batched = 0;
        {
            Rig writer(graph,
                       withKernel(config, KernelMode::ParallelBsp, 2,
                                  "fine", 0),
                       runtime::Layout::Bidirectional);
            writer.device->armCheckpoint(path, at);
            run = finishRun(writer);
            batched = writer.device->system().bspBatchedCycles();
        }
        EXPECT_GT(batched, 0u)
            << "batching never engaged; the checkpoint was not "
               "mid-superstep";
        EXPECT_EQ(ref.now, run.now);
        EXPECT_EQ(ref.markCycles, run.markCycles);
        EXPECT_EQ(ref.marked, run.marked);
        EXPECT_EQ(ref.freed, run.freed);
        expectSameStatsJson(ref.statsJson, run.statsJson);
    }
    {
        SCOPED_TRACE("restore under cost partitions");
        const FinalState run = scopedRun(
            graph,
            withKernel(config, KernelMode::ParallelBsp, 4, "cost", 0),
            runtime::Layout::Bidirectional, [&](Rig &reader) {
                reader.device->restoreCheckpoint(path);
                EXPECT_EQ(reader.device->system().now(), at);
            });
        EXPECT_EQ(ref.now, run.now);
        EXPECT_EQ(ref.freed, run.freed);
        expectSameStatsJson(ref.statsJson, run.statsJson);
    }
}

// ---------------------------------------------------------------------
// Post-phase checkpoints: --checkpoint-out without --checkpoint-at
// writes after every completed phase; restoring the post-sweep file
// must reproduce the *next* pause exactly (warmed caches and all).
// ---------------------------------------------------------------------

void
runSecondPause(Rig &rig)
{
    rig.heap.clearAllMarks();
    rig.heap.publishRoots();
    rig.device->resetPhaseState();
    rig.device->runMark();
    rig.device->runSweep();
}

TEST(Checkpoint, PhaseCheckpointResumesNextPause)
{
    const auto graph = testGraph(23);
    const std::string path = tmpPath("phase.ckpt");
    const HwgcConfig config;

    Tick pause1_now = 0;
    Tick original_now = 0;
    std::string original_stats;
    {
        telemetry::StatsRegistry::global().clearRetired();
        Rig original(graph, config);
        original.device->armCheckpoint(path);
        const auto pause1 = original.device->collect();
        ASSERT_GT(pause1.cellsFreed, 0u);
        // Freeze the post-pause-1 file before pause 2 overwrites it.
        original.device->armCheckpoint("");
        pause1_now = original.device->system().now();
        runSecondPause(original);
        original_now = original.device->system().now();
        original_stats = exportStats();
    }

    telemetry::StatsRegistry::global().clearRetired();
    Rig restored(graph, config);
    restored.device->restoreCheckpoint(path);
    EXPECT_EQ(restored.device->system().now(), pause1_now);
    EXPECT_EQ(restored.device->regs().status, core::MmioRegs::Idle);
    runSecondPause(restored);
    EXPECT_EQ(restored.device->system().now(), original_now);
    expectSameStatsJson(original_stats, exportStats());
}

// ---------------------------------------------------------------------
// Fleet checkpoints: the whole 2-device fleet — driver queues, shared
// bus + DRAM, every tenant heap — round-trips through one file and
// resumes bit-identically. tests/test_fleet.cc owns the deeper matrix
// (cross-kernel restore, measured-percentile equality); this keeps a
// compact fleet round-trip beside the single-device format tests.
// ---------------------------------------------------------------------

/** A finished fleet run folded down to everything that must match. */
struct FleetFinal
{
    Tick now = 0;
    std::uint64_t totalGcs = 0;
    std::vector<std::uint64_t> perTenant; //!< gcs/stw/queue triples.
    std::string statsJson;
};

FleetFinal
fleetFinal(driver::FleetLab &lab)
{
    FleetFinal f;
    f.now = lab.now();
    f.totalGcs = lab.totalGcs();
    for (const auto &stats : lab.stats()) {
        f.perTenant.push_back(stats.gcs);
        f.perTenant.push_back(stats.stwCycles);
        f.perTenant.push_back(stats.queueCycles);
    }
    f.statsJson = exportStats();
    return f;
}

void
expectSameFleetFinal(const FleetFinal &ref, const FleetFinal &run)
{
    EXPECT_EQ(ref.now, run.now);
    EXPECT_EQ(ref.totalGcs, run.totalGcs);
    EXPECT_EQ(ref.perTenant, run.perTenant);
    expectSameStatsJson(ref.statsJson, run.statsJson);
}

driver::FleetConfig
fleetTestConfig()
{
    driver::FleetConfig config;
    config.devices = 2;
    config.gcsPerTenant = 1;
    return config;
}

std::vector<driver::TenantParams>
fleetTestTenants()
{
    std::vector<driver::TenantParams> tenants(3);
    for (unsigned t = 0; t < tenants.size(); ++t) {
        auto &tenant = tenants[t];
        tenant.name = "t" + std::to_string(t);
        tenant.graph = testGraph(700 + t, 300);
        tenant.gcPeriodCycles = 150'000;
        tenant.seed = 40 + t;
    }
    return tenants;
}

TEST(Checkpoint, FleetMidServiceRoundTrip)
{
    const std::string path = tmpPath("fleet-roundtrip.ckpt");
    const auto config = fleetTestConfig();
    const auto tenants = fleetTestTenants();

    FleetFinal ref;
    {
        telemetry::StatsRegistry::global().clearRetired();
        driver::FleetLab whole(config, tenants);
        whole.run();
        ref = fleetFinal(whole);
    }
    ASSERT_EQ(ref.totalGcs, 3u);

    Tick ckpt_at = 0;
    {
        // Writing the checkpoint must not perturb the writer's run.
        telemetry::StatsRegistry::global().clearRetired();
        driver::FleetLab writer(config, tenants);
        writer.runUntilCycle(200'000);
        ASSERT_FALSE(writer.done()) << "checkpoint after the service "
                                       "horizon tests nothing";
        ckpt_at = writer.now();
        ASSERT_TRUE(writer.writeCheckpoint(path));
        writer.run();
        expectSameFleetFinal(ref, fleetFinal(writer));
    }
    {
        telemetry::StatsRegistry::global().clearRetired();
        driver::FleetLab restored(config, tenants);
        restored.restoreCheckpoint(path);
        EXPECT_EQ(restored.now(), ckpt_at);
        restored.run();
        expectSameFleetFinal(ref, fleetFinal(restored));
    }
}

// ---------------------------------------------------------------------
// File format: the chunk directory is self-describing (the
// heap_inspector post-mortem view), and every corruption mode is a
// fatal error naming the file.
// ---------------------------------------------------------------------

TEST(Checkpoint, ListChunksShowsTopology)
{
    Rig rig(testGraph(3, 64), HwgcConfig{});
    const std::string path = tmpPath("list.ckpt");
    ASSERT_TRUE(rig.device->writeCheckpoint(path));

    const auto chunks = checkpoint::Deserializer::listChunks(path);
    std::vector<std::string> names;
    for (const auto &chunk : chunks) {
        names.push_back(chunk.name);
    }
    ASSERT_GT(names.size(), 6u);
    EXPECT_EQ(names.front(), "config");
    EXPECT_EQ(names[1], "regs");
    EXPECT_EQ(names[2], "kernel");
    EXPECT_EQ(names.back(), "physmem");
    EXPECT_NE(std::find(names.begin(), names.end(), "traceQueue"),
              names.end());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spew(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), std::streamsize(data.size()));
}

/** Writes a small valid checkpoint and returns its bytes. */
std::string
validImage(Rig &rig, const std::string &path)
{
    EXPECT_TRUE(rig.device->writeCheckpoint(path));
    return slurp(path);
}

TEST(CheckpointDeathTest, RejectsBadMagic)
{
    Rig rig(testGraph(5, 64), HwgcConfig{});
    const std::string path = tmpPath("magic.ckpt");
    std::string data = validImage(rig, path);
    data[0] ^= 0x5A;
    spew(path, data);
    EXPECT_EXIT(rig.device->restoreCheckpoint(path),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(CheckpointDeathTest, RejectsWrongFormatVersion)
{
    Rig rig(testGraph(5, 64), HwgcConfig{});
    const std::string path = tmpPath("version.ckpt");
    std::string data = validImage(rig, path);
    data[8] = char(data[8] + 1); // u32 version, little-endian.
    spew(path, data);
    EXPECT_EXIT(rig.device->restoreCheckpoint(path),
                ::testing::ExitedWithCode(1), "format version");
}

TEST(CheckpointDeathTest, RejectsTruncatedFile)
{
    Rig rig(testGraph(5, 64), HwgcConfig{});
    const std::string path = tmpPath("truncated.ckpt");
    const std::string data = validImage(rig, path);
    spew(path, data.substr(0, data.size() / 2));
    EXPECT_EXIT(rig.device->restoreCheckpoint(path),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(CheckpointDeathTest, RejectsTrailingGarbage)
{
    Rig rig(testGraph(5, 64), HwgcConfig{});
    const std::string path = tmpPath("trailing.ckpt");
    const std::string data = validImage(rig, path);
    spew(path, data + std::string(16, '\x7f'));
    EXPECT_EXIT(rig.device->restoreCheckpoint(path),
                ::testing::ExitedWithCode(1), "trailing data");
}

TEST(CheckpointDeathTest, RejectsDifferentConfiguration)
{
    Rig writer(testGraph(5, 64), HwgcConfig{});
    const std::string path = tmpPath("config.ckpt");
    validImage(writer, path);

    HwgcConfig other;
    other.markQueueEntries = 64;
    Rig reader(testGraph(5, 64), other);
    EXPECT_EXIT(reader.device->restoreCheckpoint(path),
                ::testing::ExitedWithCode(1),
                "different device configuration");
}

TEST(CheckpointDeathTest, RejectsMissingFile)
{
    Rig rig(testGraph(5, 64), HwgcConfig{});
    EXPECT_EXIT(rig.device->restoreCheckpoint(tmpPath("nope.ckpt")),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace hwgc
