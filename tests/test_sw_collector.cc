/**
 * @file
 * Tests for the software Mark & Sweep baseline: functional
 * correctness against the reachability oracle across many graph
 * shapes (property-style, parameterized), and cost-model sanity.
 */

#include <gtest/gtest.h>

#include "gc/sw_collector.h"

#include "mem/dram.h"
#include "gc/verifier.h"
#include "workload/graph_gen.h"

namespace hwgc
{
namespace
{

struct SwFixture
{
    explicit SwFixture(const workload::GraphParams &params)
        : heap(mem), builder(heap, params),
          dram("dram", mem::DramParams{}, mem),
          core("core", cpu::CoreParams{}, mem, heap.pageTable(), dram),
          collector(heap, core)
    {
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    workload::GraphBuilder builder;
    mem::Dram dram;
    cpu::CoreModel core;
    gc::SwCollector collector;
};

workload::GraphParams
shapeFor(unsigned topology, std::uint64_t seed)
{
    workload::GraphParams p;
    p.liveObjects = 600;
    p.garbageObjects = 400;
    p.numRoots = 6;
    p.seed = seed;
    switch (topology) {
      case 0: // Trees: no sharing.
        p.shareProb = 0.0;
        break;
      case 1: // Heavy sharing / DAG+cycles.
        p.shareProb = 0.6;
        break;
      case 2: // Array heavy.
        p.arrayFraction = 0.5;
        p.avgArrayLen = 60;
        break;
      case 3: // Long skinny lists.
        p.avgRefs = 1.0;
        p.maxRefs = 2;
        break;
      default: // Mixed default.
        break;
    }
    return p;
}

class SwMarkProperty
    : public testing::TestWithParam<std::tuple<unsigned, std::uint64_t>>
{
};

TEST_P(SwMarkProperty, MarksEqualOracle)
{
    const auto [topology, seed] = GetParam();
    SwFixture fix(shapeFor(topology, seed));
    fix.collector.mark();
    const auto report = gc::verifyMarks(fix.heap);
    EXPECT_TRUE(report.ok) << report.error;
}

TEST_P(SwMarkProperty, SweepSatisfiesInvariants)
{
    const auto [topology, seed] = GetParam();
    SwFixture fix(shapeFor(topology, seed));
    fix.collector.collect();
    const auto report = gc::verifySweptHeap(fix.heap);
    EXPECT_TRUE(report.ok) << report.error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SwMarkProperty,
    testing::Combine(testing::Values(0u, 1u, 2u, 3u, 4u),
                     testing::Values(11ull, 22ull, 33ull)));

TEST(SwCollector, MarkCountMatchesOracle)
{
    SwFixture fix(shapeFor(4, 5));
    const gc::GcResult result = fix.collector.mark();
    EXPECT_EQ(result.objectsMarked, fix.heap.computeReachable().size());
    EXPECT_EQ(result.objectsMarked, fix.heap.countMarked());
}

TEST(SwCollector, RemarkIsIdempotent)
{
    SwFixture fix(shapeFor(4, 6));
    const auto first = fix.collector.mark();
    const auto again = fix.collector.mark();
    EXPECT_EQ(again.objectsMarked, 0u); // Everything already marked.
    EXPECT_EQ(fix.heap.countMarked(), first.objectsMarked);
}

TEST(SwCollector, SweepFreesExactlyTheGarbageCells)
{
    SwFixture fix(shapeFor(4, 7));
    fix.collector.collect();
    const auto reachable = fix.heap.computeReachable();
    const std::uint64_t freed = fix.heap.onAfterSweep();
    EXPECT_GT(freed, 0u);
    // Every remaining registry object is reachable.
    for (const auto &obj : fix.heap.objects()) {
        EXPECT_TRUE(reachable.count(obj.ref));
    }
}

TEST(SwCollector, CyclesAreCollected)
{
    // An unreachable cycle must still be freed (the tracing-vs-
    // refcounting distinction, paper §III-A).
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    const auto root = heap.allocate(1, 0);
    heap.addRoot(root);
    const auto a = heap.allocate(1, 0);
    const auto b = heap.allocate(1, 0);
    heap.setRef(a, 0, b);
    heap.setRef(b, 0, a); // Unreachable 2-cycle.
    heap.publishRoots();

    mem::Dram dram("dram", mem::DramParams{}, mem);
    cpu::CoreModel core("core", cpu::CoreParams{}, mem,
                        heap.pageTable(), dram);
    gc::SwCollector collector(heap, core);
    collector.collect();
    EXPECT_EQ(heap.onAfterSweep(), 2u);
}

TEST(SwCollector, TimeAdvancesWithWork)
{
    SwFixture small(shapeFor(4, 8));
    const auto small_result = small.collector.collect();

    workload::GraphParams big_params = shapeFor(4, 8);
    big_params.liveObjects = 2400;
    big_params.garbageObjects = 1600;
    SwFixture big(big_params);
    const auto big_result = big.collector.collect();

    EXPECT_GT(small_result.markCycles, 0u);
    EXPECT_GT(big_result.markCycles, 2 * small_result.markCycles);
    EXPECT_GT(big_result.sweepCycles, small_result.sweepCycles);
}

TEST(SwCollector, MarkDominatesSweep)
{
    // Paper §IV: "75% of time in a Mark & Sweep collector is spent in
    // the mark phase".
    SwFixture fix(shapeFor(4, 9));
    const auto result = fix.collector.collect();
    EXPECT_GT(result.markCycles, result.sweepCycles);
}

TEST(SwCollector, RefsTracedCountsSlots)
{
    SwFixture fix(shapeFor(0, 10)); // Trees: every slot visited once.
    const auto result = fix.collector.mark();
    std::uint64_t slots = 0;
    const auto reachable = fix.heap.computeReachable();
    for (const auto &obj : fix.heap.objects()) {
        if (reachable.count(obj.ref)) {
            slots += obj.numRefs;
        }
    }
    EXPECT_EQ(result.refsTraced, slots);
}

TEST(SwCollector, BlockSummariesWritten)
{
    SwFixture fix(shapeFor(4, 12));
    fix.collector.collect();
    const auto swept = gc::verifySweptHeap(fix.heap);
    ASSERT_TRUE(swept.ok) << swept.error;
    EXPECT_GT(fix.heap.blocks().size(), 0u);
}

} // namespace
} // namespace hwgc
