# Empty compiler generated dependencies file for bench_fig19_markqueue_size.
# This may be replaced when dependencies are built.
