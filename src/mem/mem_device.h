/**
 * @file
 * Common interface for timing models of memory-side devices (the DRAM
 * controller model and the ideal latency-bandwidth pipe of Fig 17).
 *
 * Devices support two access styles, mirroring gem5:
 *  - timed: requests are queued and a response is delivered to the
 *    registered MemResponder some cycles later (used by the hardware
 *    GC unit's pipelined state machines);
 *  - atomic: the access completes immediately and the device returns
 *    its latency, while still updating bank/bus state and statistics
 *    (used by the execution-driven CPU cost model, which is the only
 *    agent in the system during a stop-the-world pause).
 */

#ifndef HWGC_MEM_MEM_DEVICE_H
#define HWGC_MEM_MEM_DEVICE_H

#include "mem/request.h"
#include "sim/clocked.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** Timing + functional model of a memory-side device. */
class MemDevice : public Clocked
{
  public:
    explicit MemDevice(std::string name) : Clocked(std::move(name)) {}

    /** Registers the single upstream receiver of timed responses. */
    void setResponder(MemResponder *r) { responder_ = r; }

    /** True if a timed request of this kind can be enqueued now. */
    virtual bool canAccept(const MemRequest &req) const = 0;

    /**
     * ParallelBsp-aware admission check, used by the bus while its
     * grants are staged: @p pendingReads / @p pendingWrites count
     * grants the caller staged earlier in the same evaluate phase
     * that this device has not received yet. A device that limits
     * requests in flight must override this and add them to its live
     * counters — the dense kernel's mid-tick sendRequest calls would
     * have bumped those counters between two canAccept checks, and
     * the replay at commit still will. The default is only correct
     * for devices without admission limits.
     */
    virtual bool
    canAcceptBsp(const MemRequest &req, unsigned pendingReads,
                 unsigned pendingWrites) const
    {
        (void)pendingReads;
        (void)pendingWrites;
        return canAccept(req);
    }

    /** Enqueues a timed request; caller must have checked canAccept. */
    virtual void sendRequest(const MemRequest &req, Tick now) = 0;

    /**
     * Performs an atomic access: executes the request functionally,
     * fills @p rdata, updates internal timing state and returns the
     * access latency in cycles.
     */
    virtual Tick accessAtomic(const MemRequest &req, Tick now,
                              std::array<Word, maxReqWords> &rdata) = 0;

    /** Resets statistics between experiment phases. */
    virtual void resetStats() = 0;

    /** Registers this device's statistics into @p g (telemetry). */
    virtual void addStats(stats::Group &g) { (void)g; }

    /**
     * Resets internal timing state (bank/row buffers, bus occupancy
     * timestamps) between experiment phases. Required whenever the
     * requester's time base restarts (the atomic-mode CPU resets its
     * cycle counter per pause); harmless otherwise.
     */
    virtual void resetTimingState() = 0;

  protected:
    MemResponder *responder_ = nullptr;
};

} // namespace hwgc::mem

#endif // HWGC_MEM_MEM_DEVICE_H
