file(REMOVE_RECURSE
  "CMakeFiles/hwgc_driver.dir/concurrent.cc.o"
  "CMakeFiles/hwgc_driver.dir/concurrent.cc.o.d"
  "CMakeFiles/hwgc_driver.dir/gc_lab.cc.o"
  "CMakeFiles/hwgc_driver.dir/gc_lab.cc.o.d"
  "libhwgc_driver.a"
  "libhwgc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
