/**
 * @file
 * Sparse functional physical memory implementation.
 */

#include "phys_mem.h"

namespace hwgc::mem
{

PhysMem::Page &
PhysMem::page(Addr addr)
{
    const std::uint64_t idx = addr / pageBytes;
    auto it = pages_.find(idx);
    if (it == pages_.end()) {
        it = pages_.emplace(idx, std::make_unique<Page>(pageBytes, 0))
                 .first;
    }
    return *it->second;
}

const PhysMem::Page *
PhysMem::pageIfPresent(Addr addr) const
{
    const auto it = pages_.find(addr / pageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

void
PhysMem::checkRange(Addr addr, std::uint64_t len) const
{
    panic_if(addr + len > size_ || addr + len < addr,
             "physical access [%#llx, +%llu) out of range",
             (unsigned long long)addr, (unsigned long long)len);
}

Word
PhysMem::readWord(Addr addr) const
{
    checkRange(addr, wordBytes);
    panic_if(addr % wordBytes != 0, "misaligned word read at %#llx",
             (unsigned long long)addr);
    const Page *p = pageIfPresent(addr);
    if (p == nullptr) {
        return 0;
    }
    Word v;
    std::memcpy(&v, p->data() + addr % pageBytes, wordBytes);
    return v;
}

void
PhysMem::writeWord(Addr addr, Word value)
{
    checkRange(addr, wordBytes);
    panic_if(addr % wordBytes != 0, "misaligned word write at %#llx",
             (unsigned long long)addr);
    std::memcpy(page(addr).data() + addr % pageBytes, &value, wordBytes);
}

Word
PhysMem::fetchOrWord(Addr addr, Word operand)
{
    const Word old = readWord(addr);
    writeWord(addr, old | operand);
    return old;
}

void
PhysMem::readBytes(Addr addr, void *dst, std::uint64_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t off = addr % pageBytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(
            len, pageBytes - off);
        const Page *p = pageIfPresent(addr);
        if (p == nullptr) {
            std::memset(out, 0, chunk);
        } else {
            std::memcpy(out, p->data() + off, chunk);
        }
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
PhysMem::writeBytes(Addr addr, const void *src, std::uint64_t len)
{
    checkRange(addr, len);
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t off = addr % pageBytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(
            len, pageBytes - off);
        std::memcpy(page(addr).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
PhysMem::zero(Addr addr, std::uint64_t len)
{
    checkRange(addr, len);
    while (len > 0) {
        const std::uint64_t off = addr % pageBytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(
            len, pageBytes - off);
        std::memset(page(addr).data() + off, 0, chunk);
        addr += chunk;
        len -= chunk;
    }
}

PhysMem::Snapshot
PhysMem::snapshot() const
{
    Snapshot snap;
    for (const auto &[idx, page] : pages_) {
        snap.pages.emplace(idx, *page);
    }
    return snap;
}

void
PhysMem::restore(const Snapshot &snap)
{
    pages_.clear();
    for (const auto &[idx, data] : snap.pages) {
        pages_.emplace(idx, std::make_unique<Page>(data));
    }
}

void
PhysMem::execute(const MemRequest &req,
                 std::array<Word, maxReqWords> &rdata)
{
    panic_if(!validTransfer(req.paddr, req.size),
             "invalid transfer: addr %#llx size %u",
             (unsigned long long)req.paddr, req.size);
    switch (req.op) {
      case Op::Read:
        for (unsigned i = 0; i < req.words(); ++i) {
            rdata[i] = readWord(req.paddr + i * wordBytes);
        }
        break;
      case Op::Write:
        for (unsigned i = 0; i < req.words(); ++i) {
            writeWord(req.paddr + i * wordBytes, req.wdata[i]);
        }
        break;
      case Op::FetchOr:
        panic_if(req.size != wordBytes, "FetchOr must be 8 bytes");
        rdata[0] = fetchOrWord(req.paddr, req.wdata[0]);
        break;
    }
}

} // namespace hwgc::mem
