/**
 * @file
 * Checkpoint round-trips with the cycle-accounting profiler active
 * (satellite of DESIGN.md §11):
 *
 *  1. Writing a mid-mark checkpoint from a profiled run perturbs
 *     neither the simulation nor the attribution — the writer matches
 *     a reference profiled run bit for bit.
 *  2. A profiled device that *restores* a mid-mark checkpoint observes
 *     exactly the resumed suffix: the accounting identity holds with
 *     `observedCycles == finalCycle - restorePoint`, and no
 *     per-class count exceeds the full run's (the suffix is a slice
 *     of the reference attribution, never an invention).
 *  3. The suffix attribution is bit-identical whichever kernel the
 *     checkpoint restores under — classification is a pure function
 *     of architectural state, and restore cannot break that.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/hwgc_device.h"
#include "sim/cycle_class.h"
#include "sim/profiler.h"
#include "sim/telemetry.h"
#include "workload/graph_gen.h"

namespace hwgc
{
namespace
{

using core::HwgcConfig;

/** Restores the process-global telemetry options on scope exit. */
struct OptionsGuard
{
    telemetry::Options saved = telemetry::options();
    ~OptionsGuard() { telemetry::options() = saved; }
};

/** A heap + device built for one shape/seed (same rig as test_hwgc). */
struct Rig
{
    Rig(const workload::GraphParams &graph, const HwgcConfig &config)
        : heap(mem), builder(heap, graph)
    {
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
        device = std::make_unique<core::HwgcDevice>(
            mem, heap.pageTable(), config);
        device->configure(heap);
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    workload::GraphBuilder builder;
    std::unique_ptr<core::HwgcDevice> device;
};

workload::GraphParams
testGraph(std::uint64_t seed)
{
    workload::GraphParams p;
    p.liveObjects = 900;
    p.garbageObjects = 450;
    p.numRoots = 8;
    p.arrayFraction = 0.15;
    p.seed = seed;
    return p;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

HwgcConfig
withKernel(HwgcConfig config, KernelMode kernel, unsigned threads)
{
    config.kernel = kernel;
    config.hostThreads = threads;
    return config;
}

/** The profiler's full class matrix, flattened for comparison. */
struct Attribution
{
    std::uint64_t observed = 0;
    Tick finalNow = 0;
    Tick markCycles = 0;
    std::uint64_t freed = 0;
    std::vector<std::string> names;
    std::vector<std::array<std::uint64_t, numCycleClasses>> cycles;
};

Attribution
capture(const Rig &rig, const core::HwPhaseResult &mark,
        const core::HwPhaseResult &sweep)
{
    const telemetry::CycleProfiler *prof = rig.device->profiler();
    EXPECT_NE(prof, nullptr);
    Attribution a;
    a.observed = prof->observedCycles();
    a.finalNow = rig.device->system().now();
    a.markCycles = mark.cycles;
    a.freed = sweep.cellsFreed;
    for (std::size_t i = 0; i < prof->numComponents(); ++i) {
        a.names.push_back(prof->componentName(i));
        std::array<std::uint64_t, numCycleClasses> row{};
        for (std::size_t c = 0; c < numCycleClasses; ++c) {
            row[c] = prof->cycles(i, CycleClass(c));
        }
        a.cycles.push_back(row);
        // The accounting identity, for every component, whatever
        // prefix of the run this profiler actually watched.
        EXPECT_EQ(prof->accounted(i), a.observed)
            << "component " << a.names.back();
    }
    return a;
}

/** Builds a rig, lets @p setup arm/restore, runs mark + sweep. */
template <typename Setup>
Attribution
profiledRun(const workload::GraphParams &graph, const HwgcConfig &config,
            Setup &&setup)
{
    telemetry::StatsRegistry::global().clearRetired();
    Rig rig(graph, config);
    setup(rig);
    const auto mark = rig.device->runMark();
    const auto sweep = rig.device->runSweep();
    return capture(rig, mark, sweep);
}

void
expectSameAttribution(const Attribution &want, const Attribution &got)
{
    ASSERT_EQ(want.names.size(), got.names.size());
    EXPECT_EQ(want.observed, got.observed);
    for (std::size_t i = 0; i < want.names.size(); ++i) {
        ASSERT_EQ(want.names[i], got.names[i]);
        for (std::size_t c = 0; c < numCycleClasses; ++c) {
            EXPECT_EQ(want.cycles[i][c], got.cycles[i][c])
                << want.names[i] << "." << cycleClassName(CycleClass(c));
        }
    }
}

void
expectProfiledRoundTrip(const HwgcConfig &config)
{
    OptionsGuard guard;
    telemetry::options().profile = true;
    const auto graph = testGraph(31);

    // Reference: one uninterrupted profiled run (dense kernel).
    const Attribution ref = profiledRun(
        graph, withKernel(config, KernelMode::Dense, 0), [](Rig &) {});
    ASSERT_GT(ref.markCycles, 200u);
    ASSERT_GT(ref.freed, 0u);
    EXPECT_EQ(ref.observed, std::uint64_t(ref.finalNow));
    const Tick at = ref.markCycles / 2;

    // (1) A profiled writer checkpoints mid-mark and still matches
    //     the reference exactly, attribution included.
    const std::string path = tmpPath("profiled-midmark.ckpt");
    const Attribution writer = profiledRun(
        graph, withKernel(config, KernelMode::Dense, 0),
        [&](Rig &rig) { rig.device->armCheckpoint(path, at); });
    EXPECT_EQ(ref.finalNow, writer.finalNow);
    EXPECT_EQ(ref.freed, writer.freed);
    expectSameAttribution(ref, writer);

    // (2) + (3) Restore under every kernel: the restored profiler saw
    //     only the suffix, the identity holds over it, and the suffix
    //     is kernel-independent.
    struct Case
    {
        const char *name;
        KernelMode kernel;
        unsigned threads;
    };
    static constexpr Case cases[] = {
        {"dense", KernelMode::Dense, 0},
        {"event", KernelMode::Event, 0},
        {"parallel-1", KernelMode::ParallelBsp, 1},
        {"parallel-4", KernelMode::ParallelBsp, 4},
    };
    std::unique_ptr<Attribution> suffix_ref;
    for (const Case &c : cases) {
        SCOPED_TRACE(std::string("restore under ") + c.name);
        const Attribution run = profiledRun(
            graph, withKernel(config, c.kernel, c.threads),
            [&](Rig &rig) {
                rig.device->restoreCheckpoint(path);
                EXPECT_EQ(rig.device->system().now(), at);
            });
        // The restored device finishes at the reference's final cycle
        // with the reference's functional outcome...
        EXPECT_EQ(ref.finalNow, run.finalNow);
        EXPECT_EQ(ref.freed, run.freed);
        // ...but its profiler observed exactly the resumed suffix.
        EXPECT_EQ(run.observed, std::uint64_t(ref.finalNow - at));
        // The suffix is a slice of the full attribution: per
        // component and class it can never exceed the reference, and
        // the implied prefix (ref - suffix) adds up to `at` cycles.
        ASSERT_EQ(ref.names.size(), run.names.size());
        for (std::size_t i = 0; i < ref.names.size(); ++i) {
            std::uint64_t prefix_sum = 0;
            for (std::size_t cls = 0; cls < numCycleClasses; ++cls) {
                EXPECT_GE(ref.cycles[i][cls], run.cycles[i][cls])
                    << ref.names[i] << "."
                    << cycleClassName(CycleClass(cls));
                prefix_sum += ref.cycles[i][cls] - run.cycles[i][cls];
            }
            EXPECT_EQ(prefix_sum, std::uint64_t(at)) << ref.names[i];
        }
        if (suffix_ref == nullptr) {
            suffix_ref = std::make_unique<Attribution>(run);
        } else {
            expectSameAttribution(*suffix_ref, run);
        }
    }
}

TEST(ProfilerCheckpoint, MidMarkRoundTripBaseline)
{
    expectProfiledRoundTrip(HwgcConfig{});
}

TEST(ProfilerCheckpoint, MidMarkRoundTripIdealMemory)
{
    HwgcConfig config;
    config.memModel = core::MemModel::Ideal;
    expectProfiledRoundTrip(config);
}

TEST(ProfilerCheckpoint, MidMarkRoundTripSpillPressure)
{
    HwgcConfig config;
    config.markQueueEntries = 32;
    expectProfiledRoundTrip(config);
}

} // namespace
} // namespace hwgc
