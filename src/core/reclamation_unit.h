/**
 * @file
 * The reclamation unit (paper Fig 8): a block-list reader that
 * distributes block descriptors across N parallel block sweepers.
 * "As each unit is negligibly small, a large part of the design is
 * the cross-bar that connects them" — here the crossbar is the
 * dispatch loop plus each sweeper's own memory port.
 */

#ifndef HWGC_CORE_RECLAMATION_UNIT_H
#define HWGC_CORE_RECLAMATION_UNIT_H

#include <memory>
#include <vector>

#include "core/block_sweeper.h"

namespace hwgc::core
{

/** The reclamation unit: block reader + sweeper farm. */
class ReclamationUnit : public Clocked, public mem::MemResponder
{
  public:
    /**
     * @param reader_port Port for block-table entry reads.
     * @param sweeper_ports One port per sweeper (same count as
     *        config.numSweepers).
     */
    ReclamationUnit(std::string name, const HwgcConfig &config,
                    mem::MemPort *reader_port,
                    std::vector<mem::MemPort *> sweeper_ports,
                    mem::Ptw &ptw);

    /** Arms a sweep over @p block_count table entries. */
    void start(Addr block_table_va, std::uint64_t block_count);

    /** True once every block has been swept and all writes acked. */
    bool done() const;

    // MemResponder interface (block-table entry reads).
    void onResponse(const mem::MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override { return !done(); }
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** Re-creates the page-walk completion callback (restore path). */
    mem::Ptw::WalkCallback walkCallback();

    /** The sweepers (registered separately with the System). */
    std::vector<std::unique_ptr<BlockSweeper>> &sweepers()
    {
        return sweepers_;
    }

    void reset();
    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t blocksDispatched() const { return dispatched_.value(); }
    std::uint64_t cellsFreed() const;
    std::uint64_t cellsScanned() const;
    /** @} */

    /** Registers the dispatcher's statistics into @p g (telemetry). */
    void addStats(stats::Group &g) const { g.add(&dispatched_); }

  private:
    HwgcConfig config_;
    mem::MemPort *readerPort_;
    mem::Ptw &ptw_;
    unsigned ptwPort_ = 0; //!< Our requester port on the shared PTW.
    mem::TlbArray readerTlb_;
    std::vector<std::unique_ptr<BlockSweeper>> sweepers_;

    Addr tableVa_ = 0;
    std::uint64_t nextBlock_ = 0;
    std::uint64_t blockCount_ = 0;
    bool entryReadPending_ = false;
    bool entryReady_ = false;
    SweepJob pendingJob_;
    bool walkPending_ = false;

    stats::Scalar dispatched_{"blocksDispatched"};
};

} // namespace hwgc::core

#endif // HWGC_CORE_RECLAMATION_UNIT_H
