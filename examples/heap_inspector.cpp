/**
 * @file
 * Scenario: debugging a runtime/collector integration. Builds a heap,
 * prints its block/size-class census and a reachability summary, runs
 * the hardware GC, and dumps the unit's internal statistics — the
 * software-check workflow the paper used via its swap-in libhwgc
 * debug library (§V-E).
 *
 *   $ ./build/examples/heap_inspector [benchmark]
 *
 * With --profile the run also prints the cycle-accounting bottleneck
 * report (DESIGN.md §10): per component and per GC phase, where its
 * cycles went — busy, a specific stall cause, or idle.
 *
 *   $ ./build/examples/heap_inspector --profile [benchmark]
 *
 * Post-mortem mode: point it at a checkpoint file — typically the
 * "<path>.crash.<pid>" dump the device writes on a fatal error when
 * --checkpoint-out= is armed — and it prints the chunk directory, the
 * device configuration signature, the MMIO/phase state, and the saved
 * kernel clock instead of running a GC.
 *
 *   $ ./build/examples/heap_inspector --post-mortem run.ckpt.crash.1234
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "core/hwgc_device.h"
#include "gc/verifier.h"
#include "sim/checkpoint.h"
#include "sim/stats.h"
#include "workload/dacapo.h"

namespace
{

/** Dumps the self-describing contents of a checkpoint file. */
int
postMortem(const std::string &path)
{
    using hwgc::checkpoint::Deserializer;

    std::printf("=== checkpoint post-mortem: %s ===\n", path.c_str());
    const auto chunks = Deserializer::listChunks(path);
    std::uint64_t total = 0;
    std::printf("chunk directory (%zu chunks):\n", chunks.size());
    for (const auto &chunk : chunks) {
        std::printf("  %-28s %10llu B\n", chunk.name.c_str(),
                    (unsigned long long)chunk.size);
        total += chunk.size;
    }
    std::printf("  %-28s %10llu B\n", "(payload total)",
                (unsigned long long)total);

    // The leading chunks have a fixed layout; decode them.
    Deserializer des = Deserializer::fromFile(path);
    des.beginChunk("config");
    const std::string signature = des.getString();
    des.endChunk();
    std::printf("\ndevice configuration: %s\n", signature.c_str());

    des.beginChunk("regs");
    const std::uint64_t page_table = des.getU64();
    const std::uint64_t hwgc_space = des.getU64();
    const std::uint64_t roots = des.getU64();
    const std::uint64_t block_table = des.getU64();
    const std::uint64_t blocks = des.getU64();
    const std::uint64_t spill_base = des.getU64();
    const std::uint64_t spill_bytes = des.getU64();
    const std::uint64_t status = des.getU64();
    des.endChunk();
    const char *status_name =
        status == hwgc::core::MmioRegs::Marking    ? "Marking"
        : status == hwgc::core::MmioRegs::Sweeping ? "Sweeping"
        : status == hwgc::core::MmioRegs::Idle     ? "Idle"
                                                   : "?";
    std::printf("mmio: status=%s pageTable=%#llx hwgcSpace=%#llx "
                "roots=%llu blockTable=%#llx blocks=%llu "
                "spill=%#llx+%llu\n",
                status_name, (unsigned long long)page_table,
                (unsigned long long)hwgc_space,
                (unsigned long long)roots,
                (unsigned long long)block_table,
                (unsigned long long)blocks,
                (unsigned long long)spill_base,
                (unsigned long long)spill_bytes);

    des.beginChunk("kernel");
    const std::uint64_t now = des.getU64();
    const std::uint64_t executed = des.getU64();
    const std::uint64_t due_mask = des.getU64();
    const std::uint64_t pending = des.getU64();
    for (std::uint64_t i = 0; i < pending; ++i) {
        des.getU64(); // Scheduled-wakeup cycle.
        des.getU64(); // Component index.
    }
    des.endChunk();
    std::printf("kernel: cycle=%llu executed=%llu dueMask=%#llx "
                "scheduledWakeups=%llu\n",
                (unsigned long long)now, (unsigned long long)executed,
                (unsigned long long)due_mask,
                (unsigned long long)pending);
    std::printf("\nresume with --checkpoint-in=%s on an identically "
                "configured run.\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    if (argc > 2 && std::string(argv[1]) == "--post-mortem") {
        return postMortem(argv[2]);
    }
    const std::string bench = argc > 1 ? argv[1] : "luindex";
    const auto profile = workload::dacapoProfile(bench);

    mem::PhysMem phys_mem;
    runtime::Heap heap(phys_mem);
    workload::GraphBuilder builder(heap, profile.graph);
    builder.build();

    // Heap census.
    std::printf("=== heap census: %s ===\n", bench.c_str());
    std::printf("objects: %llu, roots: %zu, allocated: %llu KiB\n",
                (unsigned long long)heap.liveObjects(),
                heap.roots().size(),
                (unsigned long long)(heap.bytesAllocated() / 1024));
    std::map<std::uint32_t, unsigned> blocks_by_class;
    for (const auto &block : heap.blocks()) {
        ++blocks_by_class[block.cellBytes];
    }
    std::printf("blocks by cell size (%zu total):\n",
                heap.blocks().size());
    for (const auto &[cell_bytes, count] : blocks_by_class) {
        std::printf("  %5u B cells: %3u blocks\n", cell_bytes, count);
    }
    std::map<runtime::Space, std::uint64_t> by_space;
    for (const auto &obj : heap.objects()) {
        ++by_space[obj.space];
    }
    std::printf("objects by space: MarkSweep %llu, LOS %llu, "
                "immortal %llu\n",
                (unsigned long long)by_space[runtime::Space::MarkSweep],
                (unsigned long long)by_space[runtime::Space::Los],
                (unsigned long long)by_space[runtime::Space::Immortal]);

    const auto reachable = heap.computeReachable();
    std::printf("reachable (oracle): %zu of %llu (%.1f%%)\n",
                reachable.size(),
                (unsigned long long)heap.liveObjects(),
                100.0 * double(reachable.size()) /
                    double(heap.liveObjects()));

    // Run the unit and dump its statistics.
    core::HwgcConfig config;
    core::HwgcDevice device(phys_mem, heap.pageTable(), config);
    device.configure(heap);
    const auto mark = device.runMark();
    const auto sweep = device.runSweep();

    std::printf("\n=== GC unit run ===\n");
    std::printf("mark: %.3f ms, sweep: %.3f ms\n",
                double(mark.cycles) / 1e6, double(sweep.cycles) / 1e6);

    // Every component registered itself in the global registry when
    // the device was built; dump the whole hierarchy from there
    // (paths look like "system.hwgc0.marker").
    telemetry::StatsRegistry::global().dump(std::cout);

    // Bottleneck attribution (--profile / HWGC_PROFILE).
    if (device.profiler() != nullptr) {
        std::printf("\n");
        device.profiler()->report(stdout);
    }

    // The software check the paper's debug libhwgc performed.
    const auto marks_ok = gc::verifyMarks(heap);
    const auto swept_ok = gc::verifySweptHeap(heap);
    std::printf("\nsoftware check: marks %s, swept heap %s\n",
                marks_ok.ok ? "OK" : marks_ok.error.c_str(),
                swept_ok.ok ? "OK" : swept_ok.error.c_str());
    return marks_ok.ok && swept_ok.ok ? 0 : 1;
}
