/**
 * @file
 * Differential reachability property test: across ~100 randomly
 * generated heap graphs, the accelerator's mark set — computed under
 * the ParallelBsp kernel — must exactly equal the software collector's
 * reachability closure. The graph shape (fan-out, sharing, cycles,
 * arrays, root count) is itself derived from the seed so the sweep
 * covers chains, wide stars, dense DAGs and cyclic tangles alike.
 *
 * Every assertion prints the seed, so a failure reproduces with a
 * one-line unit test.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/hwgc_device.h"
#include "cpu/core_model.h"
#include "gc/sw_collector.h"
#include "mem/ideal_mem.h"
#include "runtime/object_model.h"
#include "workload/graph_gen.h"

namespace hwgc
{
namespace
{

using runtime::ObjRef;
using runtime::StatusWord;

/** Deterministic per-seed graph shape: splitmix64-style mixing so
 *  nearby seeds still produce very different workload shapes. */
workload::GraphParams
shapeFor(std::uint64_t seed)
{
    auto mix = [state = seed + 0x9e3779b97f4a7c15ull]() mutable {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    workload::GraphParams p;
    p.seed = seed;
    p.liveObjects = 200 + mix() % 600;
    p.garbageObjects = mix() % 400;
    p.numRoots = 1 + mix() % 48;
    p.avgRefs = 0.5 + static_cast<double>(mix() % 600) / 100.0;
    p.maxRefs = 4 + mix() % 20;
    p.minRefs = mix() % 2;
    p.arrayFraction = static_cast<double>(mix() % 40) / 100.0;
    p.shareProb = static_cast<double>(mix() % 70) / 100.0;
    p.cycleProb = static_cast<double>(mix() % 30) / 100.0;
    p.largeFraction = static_cast<double>(mix() % 5) / 100.0;
    return p;
}

/** One heap built from the shape, ready to mark. */
struct Rig
{
    explicit Rig(const workload::GraphParams &graph)
        : heap(mem, runtime::HeapParams{}), builder(heap, graph)
    {
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
    }

    std::set<ObjRef>
    markedSet()
    {
        std::set<ObjRef> marked;
        for (const auto &obj : heap.objects()) {
            if (StatusWord::marked(heap.read(obj.ref))) {
                marked.insert(obj.ref);
            }
        }
        return marked;
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    workload::GraphBuilder builder;
};

void
checkSeed(std::uint64_t seed)
{
    const auto graph = shapeFor(seed);
    const std::string tag = "seed=" + std::to_string(seed);

    // Hardware side: mark under the parallel kernel.
    Rig hw(graph);
    core::HwgcConfig config;
    config.kernel = KernelMode::ParallelBsp;
    config.hostThreads = 3; // One worker per partition.
    config.memModel = core::MemModel::Ideal;
    core::HwgcDevice device(hw.mem, hw.heap.pageTable(), config);
    device.configure(hw.heap);
    const auto hw_result = device.runMark();
    const auto hw_marked = hw.markedSet();

    // Software side: the reference collector on an identical heap.
    Rig sw(graph);
    cpu::CoreParams core_params;
    mem::IdealMem sw_mem("cpu.idealmem", {}, sw.mem);
    cpu::CoreModel core("rocket", core_params, sw.mem,
                        sw.heap.pageTable(), sw_mem);
    gc::SwCollector collector(sw.heap, core);
    collector.mark();
    const auto sw_marked = sw.markedSet();

    // Third witness: the heap's own graph-walk closure.
    const auto closure = hw.heap.computeReachable();

    // newlyMarked can overcount: two in-flight marker slots holding
    // the same ref may both read the pre-mark header (no mark-bit
    // cache in this config), so it upper-bounds the distinct set.
    EXPECT_GE(hw_result.objectsMarked, hw_marked.size()) << tag;
    EXPECT_EQ(hw_marked.size(), closure.size()) << tag;
    for (const auto ref : hw_marked) {
        EXPECT_TRUE(closure.count(ref) != 0)
            << tag << ": hw marked unreachable 0x" << std::hex << ref;
    }
    ASSERT_EQ(hw_marked, sw_marked) << tag;
}

TEST(DiffReachability, HundredRandomGraphsUnderParallelKernel)
{
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        checkSeed(seed);
        if (HasFatalFailure()) {
            return;
        }
    }
}

} // namespace
} // namespace hwgc
