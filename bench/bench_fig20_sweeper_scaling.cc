/**
 * @file
 * Fig 20 — scaling the number of block sweepers, reported as speedup
 * relative to the software sweep.
 *
 * The paper: "we scale linearly to 2 sweepers but beyond this point,
 * speed-ups start to reduce. At 8 sweepers, the contention on the
 * memory system starts to outweigh the benefits ... 4 sweepers
 * outperform the CPU by 2-3x".
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 20: block sweeper scaling",
                  "linear to 2 sweepers, flattening by 8; 4 sweepers "
                  "beat the CPU 2-3x");

    std::printf("  %-10s", "benchmark");
    for (unsigned s : {1u, 2u, 3u, 4u, 6u, 8u}) {
        std::printf(" %6u", s);
    }
    std::printf("   (speedup over SW sweep)\n");

    for (const auto &profile : workload::dacapoSuite()) {
        // Software sweep baseline (measured once).
        driver::LabConfig sw_config;
        sw_config.runHw = false;
        driver::GcLab sw_lab(profile, sw_config);
        sw_lab.run(2);
        const double sw_sweep = sw_lab.avgSwSweepCycles();

        std::printf("  %-10s", profile.name.c_str());
        for (unsigned sweepers : {1u, 2u, 3u, 4u, 6u, 8u}) {
            driver::LabConfig config;
            config.runSw = false;
            config.hwgc.numSweepers = sweepers;
            driver::GcLab lab(profile, config);
            lab.run(2); // Capped pauses: design-space sweep.
            std::printf(" %6.2f", sw_sweep / lab.avgHwSweepCycles());
        }
        std::printf("\n");
    }
    return 0;
}
