/**
 * @file
 * Unit tests for workload synthesis: graph generation, benchmark
 * profiles, churn, and the query-latency harness.
 */

#include <gtest/gtest.h>

#include "workload/dacapo.h"
#include "workload/graph_gen.h"
#include "workload/latency.h"

namespace hwgc::workload
{
namespace
{

GraphParams
smallParams(std::uint64_t seed = 5)
{
    GraphParams p;
    p.liveObjects = 800;
    p.garbageObjects = 500;
    p.numRoots = 8;
    p.seed = seed;
    return p;
}

TEST(GraphBuilder, BuildsRequestedObjectCount)
{
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    GraphBuilder builder(heap, smallParams());
    builder.build();
    EXPECT_EQ(heap.objects().size(),
              smallParams().liveObjects + smallParams().garbageObjects);
}

TEST(GraphBuilder, ReachableSetIsRoughlyLiveObjects)
{
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    GraphBuilder builder(heap, smallParams());
    builder.build();
    const auto reachable = heap.computeReachable();
    // Everything allocated in the live phase should be reachable;
    // garbage-phase objects may incidentally reference live ones but
    // not vice versa.
    EXPECT_GE(reachable.size(), smallParams().liveObjects * 9 / 10);
    EXPECT_LT(reachable.size(), heap.objects().size());
}

TEST(GraphBuilder, DeterministicAcrossRuns)
{
    auto run = [] {
        mem::PhysMem mem;
        runtime::Heap heap(mem);
        GraphBuilder builder(heap, smallParams(77));
        builder.build();
        std::vector<runtime::ObjRef> refs;
        for (const auto &obj : heap.objects()) {
            refs.push_back(obj.ref);
        }
        return refs;
    };
    EXPECT_EQ(run(), run());
}

TEST(GraphBuilder, DifferentSeedsDiffer)
{
    auto count_edges = [](std::uint64_t seed) {
        mem::PhysMem mem;
        runtime::Heap heap(mem);
        GraphBuilder builder(heap, smallParams(seed));
        builder.build();
        std::uint64_t nonnull = 0;
        for (const auto &obj : heap.objects()) {
            for (std::uint32_t i = 0; i < obj.numRefs; ++i) {
                nonnull += heap.getRef(obj.ref, i) != runtime::nullRef;
            }
        }
        return nonnull;
    };
    EXPECT_NE(count_edges(1), count_edges(2));
}

TEST(GraphBuilder, HotSetAttractsReferences)
{
    GraphParams p = smallParams();
    p.hotObjects = 8;
    p.hotRefFraction = 0.4;
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    GraphBuilder builder(heap, p);
    builder.build();

    // Count inbound edges to the first 8 (immortal hot) objects.
    std::unordered_set<runtime::ObjRef> hot;
    for (std::size_t i = 0; i < 8; ++i) {
        hot.insert(heap.objects()[i].ref);
    }
    std::uint64_t hot_edges = 0, edges = 0;
    for (const auto &obj : heap.objects()) {
        for (std::uint32_t i = 0; i < obj.numRefs; ++i) {
            const auto t = heap.getRef(obj.ref, i);
            if (t != runtime::nullRef) {
                ++edges;
                hot_edges += hot.count(t);
            }
        }
    }
    EXPECT_GT(double(hot_edges) / double(edges), 0.05);
}

TEST(GraphBuilder, MutateCreatesGarbageAndNewObjects)
{
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    GraphBuilder builder(heap, smallParams());
    builder.build();
    const auto before_objects = heap.objects().size();
    const auto before_reachable = heap.computeReachable().size();
    builder.mutate(0.3);
    EXPECT_GT(heap.objects().size(), before_objects);
    // Churn killed some subtrees: reachable set relative to the
    // (grown) registry shrinks.
    const auto reachable = heap.computeReachable();
    EXPECT_LT(reachable.size(), heap.objects().size());
    (void)before_reachable;
}

TEST(GraphBuilder, ArraysAppearWhenRequested)
{
    GraphParams p = smallParams();
    p.arrayFraction = 0.5;
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    GraphBuilder builder(heap, p);
    builder.build();
    std::uint64_t arrays = 0;
    for (const auto &obj : heap.objects()) {
        arrays += runtime::StatusWord::isArray(heap.read(obj.ref));
    }
    EXPECT_GT(arrays, heap.objects().size() / 10);
}

TEST(Dacapo, SuiteHasSixBenchmarks)
{
    const auto suite = dacapoSuite();
    ASSERT_EQ(suite.size(), 6u);
    const std::vector<std::string> expected = {
        "avrora", "luindex", "lusearch", "pmd", "sunflow", "xalan"};
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(suite[i].name, expected[i]);
    }
}

TEST(Dacapo, ProfileLookup)
{
    EXPECT_EQ(dacapoProfile("pmd").name, "pmd");
    EXPECT_GT(dacapoProfile("xalan").graph.liveObjects,
              dacapoProfile("avrora").graph.liveObjects);
}

TEST(Dacapo, LuindexCarriesTheHotSet)
{
    const auto p = dacapoProfile("luindex");
    EXPECT_EQ(p.graph.hotObjects, 56u); // Fig 21: "the same 56 objects".
    EXPECT_GT(p.graph.hotRefFraction, 0.0);
}

TEST(DacapoDeathTest, UnknownProfile)
{
    EXPECT_EXIT(dacapoProfile("nope"), testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Latency, NoPausesGivesTightTail)
{
    LatencyParams params;
    params.totalQueries = 2000;
    params.warmupQueries = 100;
    const auto result = runLatencyExperiment(params, {}, 0.0);
    EXPECT_EQ(result.samples.size(), 1900u);
    // Service times are a few ms; without pauses p99 ~ p50.
    EXPECT_LT(result.percentile(0.99), 2.0 * result.percentile(0.5) + 1);
}

TEST(Latency, PausesCreateTwoOrderOfMagnitudeTail)
{
    LatencyParams params;
    params.totalQueries = 5000;
    params.warmupQueries = 500;
    // 150 ms pauses every ~1.5 s of mutator time (lusearch-like).
    const auto result = runLatencyExperiment(params, {150.0}, 1500.0);
    EXPECT_GT(result.maxMs(), 50.0 * result.percentile(0.5));
    // Most requests are still fast (the Fig 1b CDF knee).
    EXPECT_LT(result.percentile(0.5), 10.0);
}

TEST(Latency, CoordinatedOmissionCounted)
{
    // A pause longer than the issue interval must delay *queued*
    // queries too: several consecutive samples see inflated latency.
    LatencyParams params;
    params.totalQueries = 3000;
    params.warmupQueries = 100;
    const auto result = runLatencyExperiment(params, {450.0}, 2000.0);
    unsigned slow_streak = 0, best = 0;
    for (const auto &s : result.samples) {
        if (s.latencyMs > 50.0) {
            best = std::max(best, ++slow_streak);
        } else {
            slow_streak = 0;
        }
    }
    EXPECT_GE(best, 3u);
}

TEST(Latency, NearPauseFlagged)
{
    LatencyParams params;
    params.totalQueries = 3000;
    params.warmupQueries = 100;
    const auto result = runLatencyExperiment(params, {100.0}, 900.0);
    bool any_near = false, any_far = false;
    for (const auto &s : result.samples) {
        (s.nearPause ? any_near : any_far) = true;
    }
    EXPECT_TRUE(any_near);
    EXPECT_TRUE(any_far);
}

TEST(Latency, PercentilesMonotone)
{
    LatencyParams params;
    params.totalQueries = 2000;
    params.warmupQueries = 100;
    const auto result = runLatencyExperiment(params, {80.0}, 700.0);
    EXPECT_LE(result.percentile(0.5), result.percentile(0.9));
    EXPECT_LE(result.percentile(0.9), result.percentile(0.999));
    EXPECT_LE(result.percentile(0.999), result.maxMs());
    EXPECT_GT(result.meanMs(), 0.0);
}

} // namespace
} // namespace hwgc::workload
