file(REMOVE_RECURSE
  "CMakeFiles/test_unit_components.dir/test_unit_components.cc.o"
  "CMakeFiles/test_unit_components.dir/test_unit_components.cc.o.d"
  "test_unit_components"
  "test_unit_components.pdb"
  "test_unit_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unit_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
