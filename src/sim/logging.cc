/**
 * @file
 * Implementation of the status/error reporting helpers.
 */

#include "logging.h"

#include <cstdlib>
#include <mutex>
#include <set>
#include <vector>

namespace hwgc
{

bool Debug::anyEnabled_ = false;

namespace
{

std::set<std::string> &
flagSet()
{
    static std::set<std::string> flags;
    return flags;
}

void
vreport(const char *prefix, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

struct CrashHookEntry
{
    unsigned id;
    void (*hook)(void *ctx);
    void *ctx;
};

std::vector<CrashHookEntry> &
crashHooks()
{
    static std::vector<CrashHookEntry> hooks;
    return hooks;
}

unsigned crashHookNextId = 1;

/** Runs every registered crash hook, most recent first. Each entry is
 *  popped before its hook is invoked, so a panic *inside* a hook
 *  cannot recurse into it — the older hooks still get their turn. */
void
runCrashHook()
{
    auto &hooks = crashHooks();
    while (!hooks.empty()) {
        const CrashHookEntry entry = hooks.back();
        hooks.pop_back();
        entry.hook(entry.ctx);
    }
}

} // namespace

unsigned
addCrashHook(void (*hook)(void *ctx), void *ctx)
{
    const unsigned id = crashHookNextId++;
    crashHooks().push_back({id, hook, ctx});
    return id;
}

void
removeCrashHook(unsigned id)
{
    auto &hooks = crashHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->id == id) {
            hooks.erase(it);
            return;
        }
    }
}

void
setCrashHook(void (*hook)(void *ctx), void *ctx)
{
    crashHooks().clear();
    if (hook != nullptr) {
        addCrashHook(hook, ctx);
    }
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    runCrashHook();
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    runCrashHook();
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

void
Debug::enable(const std::string &flag)
{
    flagSet().insert(flag);
    anyEnabled_ = true;
}

void
Debug::disable(const std::string &flag)
{
    flagSet().erase(flag);
    anyEnabled_ = !flagSet().empty();
}

bool
Debug::enabled(const std::string &flag)
{
    return flagSet().count(flag) != 0;
}

void
Debug::parseFlagList(const std::string &list)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
            comma = list.size();
        }
        std::string token = list.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding whitespace.
        const auto begin = token.find_first_not_of(" \t");
        if (begin == std::string::npos) {
            continue;
        }
        const auto end = token.find_last_not_of(" \t");
        token = token.substr(begin, end - begin + 1);
        if (token[0] == '-') {
            disable(token.substr(1));
        } else {
            enable(token);
        }
    }
}

void
Debug::initFromEnv()
{
    if (const char *env = std::getenv("HWGC_DEBUG")) {
        parseFlagList(env);
    }
}

namespace
{

/** Applies HWGC_DEBUG before main() so DPRINTF needs no code edits. */
[[maybe_unused]] const bool debug_env_applied =
    (Debug::initFromEnv(), true);

} // namespace

void
Debug::print(unsigned long long tick, const char *flag,
             const char *fmt, ...)
{
    std::fprintf(stderr, "%10llu: %s: ", tick, flag);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace hwgc
