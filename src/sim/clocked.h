/**
 * @file
 * The simulation kernel: clocked components and the System driver.
 *
 * All timing models are Clocked components registered with a System.
 * One cycle of simulated time is one core clock at 1 GHz (paper
 * Table I). The System runs in one of three kernel modes:
 *
 *  - Dense: the reference kernel. Every component is ticked on every
 *    cycle, exactly like real hardware clocks every flop.
 *  - Event: the fast kernel. Each component publishes the earliest
 *    cycle at which its tick() could have an observable effect
 *    (nextWakeup), the System ticks only the components that are due,
 *    and when nothing is due it fast-forwards the clock straight to
 *    the earliest pending wakeup instead of stepping through the gap.
 *  - ParallelBsp: the host-parallel kernel. Components are statically
 *    partitioned across host worker threads; each simulated cycle is
 *    a parallel evaluate phase (every due partition replays the event
 *    kernel's at-turn pass against last-cycle cross-partition state)
 *    followed by a serial commit phase that drains inter-partition
 *    port traffic in registration order (see DESIGN.md §8).
 *
 * The three modes are cycle-exact equivalents as long as every
 * component honours the wakeup contract documented on
 * Clocked::nextWakeup, and — for ParallelBsp — the partitioning rules
 * documented on System::setPartition (see DESIGN.md, "Simulation
 * kernel" and "Parallel host execution").
 */

#ifndef HWGC_SIM_CLOCKED_H
#define HWGC_SIM_CLOCKED_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/cycle_class.h"
#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc
{

class System;
class ParallelKernel;

namespace checkpoint
{
class Serializer;
class Deserializer;
} // namespace checkpoint

namespace detail
{
/**
 * During a ParallelBsp evaluate phase every worker thread (including
 * the commit thread when it runs a partition inline) redirects
 * System::poke() into its partition-local dirty mask through this
 * pointer, so same-partition pokes stay visible at-turn while
 * cross-partition pokes merge deterministically at commit. Defined in
 * parallel_kernel.cc; null outside an evaluate pass.
 */
extern thread_local std::uint64_t *bspPokeMask;

/**
 * The partition currently being evaluated by this thread (normalized
 * label), or ~0u outside ParallelKernel::runPartition. Lets a callee
 * decide whether an incoming call is same-partition (apply live —
 * at-turn semantics within the partition's registration-ordered pass)
 * or cross-partition (stage for bspCommit). Defined in
 * parallel_kernel.cc.
 */
extern thread_local unsigned bspActivePartition;

/**
 * Count of events staged for bspCommit by this thread during the
 * current runPartition pass. Every staging append bumps it; the
 * kernel folds the per-pass delta into the cycle result so the
 * superstep batcher knows a cycle produced cross-partition traffic
 * and must hand off to the commit phase. Defined in
 * parallel_kernel.cc.
 */
extern thread_local std::uint64_t bspStagedEvents;

/** Staging call sites bump the per-pass staged-event counter. */
inline void
noteStagedEvent()
{
    ++bspStagedEvents;
}
} // namespace detail

/** Kernel selection for System (see file header). */
enum class KernelMode
{
    Dense, //!< Tick every component every cycle (reference kernel).
    Event, //!< Tick only due components; fast-forward idle gaps.
    ParallelBsp, //!< Event semantics, partitions ticked in parallel.
};

/**
 * Passive observer of the kernel's execution, used by the telemetry
 * layer to derive per-component activity spans and to pace interval
 * sampling off the wakeup machinery. Observers only *read* simulator
 * state: attaching one must never change simulated cycles or
 * statistics (tests/test_telemetry.cc enforces this).
 */
class KernelObserver
{
  public:
    virtual ~KernelObserver() = default;

    /**
     * One executed cycle finished. Bit i of @p active_mask is set if
     * component i (in registration order) ticked this cycle (event
     * kernel) or reported busy() (dense kernel).
     */
    virtual void cycleExecuted(Tick now, std::uint64_t active_mask) = 0;

    /** Cycles [from, to) were fast-forwarded with nothing ticking. */
    virtual void fastForwarded(Tick from, Tick to) = 0;
};

/** Base class for anything evaluated once per clock cycle. */
class Clocked
{
    friend class System;

  public:
    /** @param name A unique, human-readable instance name. */
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Evaluates one clock cycle at time @p now. */
    virtual void tick(Tick now) = 0;

    /**
     * Reports whether the component could still make progress.
     * runUntilIdle() stops once every component is idle for a cycle.
     */
    virtual bool busy() const = 0;

    /**
     * Wakeup contract of the event kernel: the earliest cycle >= @p now
     * at which tick() might have any observable effect — state changes,
     * calls into other components, or statistics updates. Cycles before
     * that wakeup may be skipped without ticking this component, so an
     * implementation must be *conservative*: returning a cycle that
     * turns out to be a no-op only costs time, but returning one past
     * the first effective tick diverges from the dense kernel.
     *
     * Return @p now (not now + 1) to be ticked on every cycle, and
     * maxTick when only an external call (onResponse, a new request)
     * can create work — the System re-polls every component after each
     * cycle it actually executes, so cross-component pokes are seen.
     *
     * The default is safe for any component: tick every cycle while
     * busy(), never while idle.
     */
    virtual Tick
    nextWakeup(Tick now) const
    {
        return busy() ? now : maxTick;
    }

    /**
     * Classifies the cycle that just finished at time @p now for the
     * cycle-accounting profiler (DESIGN.md §10). Must be a pure
     * function of end-of-cycle architectural state — identical across
     * all three kernels at every cycle boundary — and must never
     * mutate anything: the profiler is an observer, and enabling it
     * cannot change simulated results.
     *
     * The default covers components without internal stall structure:
     * idle when not busy, busy when due to tick, otherwise waiting on
     * a producer. Components that model backpressure, memory traffic
     * or translation override this wholesale; in particular, any
     * component whose nextWakeup() returns @p now for a dense
     * port-retry loop must classify those retry cycles as the stall
     * they are rather than Busy.
     */
    virtual CycleClass
    cycleClass(Tick now) const
    {
        if (!busy()) {
            return CycleClass::Idle;
        }
        return nextWakeup(now) <= now ? CycleClass::Busy
                                      : CycleClass::StallUpstreamEmpty;
    }

    /**
     * Notification that the event kernel let cycles [from, to) elapse
     * without ticking this component (either a fast-forwarded gap or
     * a single executed cycle on which this component was not due).
     * Only components with per-elapsed-cycle accounting (e.g. the
     * interconnect's cycle counter) need to override this; it must
     * reproduce exactly what the skipped no-op ticks would have done
     * and nothing more. An overrider MUST also set hasFastForward_
     * in its constructor — the kernel skips the virtual call for
     * everyone else (the A/B equivalence tests catch a forgotten
     * flag as a stats divergence).
     */
    virtual void fastForward(Tick from, Tick to)
    {
        (void)from;
        (void)to;
    }

    /** Whether fastForward() is overridden and must be called. */
    bool hasFastForward() const { return hasFastForward_; }

    /**
     * ParallelBsp commit hook, called serially on every component (in
     * registration order) after the parallel evaluate phase of each
     * executed cycle. A component that exchanges same-cycle traffic
     * across partition boundaries stages it during the evaluate phase
     * (see bspStagingActive()) and applies it here, reproducing
     * exactly the intra-cycle order the dense kernel would have used.
     * An overrider MUST set hasBspHooks_ in its constructor — the
     * kernel skips the virtual call for everyone else.
     */
    virtual void bspCommit(Tick now) { (void)now; }

    /**
     * Second serial ParallelBsp pass, after every component's
     * bspCommit() ran: publish end-of-cycle snapshots of state that
     * other partitions read concurrently next cycle (queue occupancy
     * for backpressure checks). Split from bspCommit() because commit
     * handlers of later components may still push traffic into this
     * one. Gated by the same hasBspHooks_ flag.
     */
    virtual void bspPublish() {}

    /** Whether bspCommit()/bspPublish() are overridden. */
    bool hasBspHooks() const { return hasBspHooks_; }

    /**
     * Serializes this component's complete architectural state —
     * registers, queues, in-flight bookkeeping and statistics — into
     * an already-open checkpoint chunk. Only legal at an inter-cycle
     * boundary (never mid-tick). The default implementation panics:
     * every component registered with a checkpointed System must
     * override both save() and restore() (defined in checkpoint.cc).
     */
    virtual void save(checkpoint::Serializer &ser) const;

    /** Restores state written by save(); layout mismatches fatal(). */
    virtual void restore(checkpoint::Deserializer &des);

    const std::string &name() const { return name_; }

  protected:
    /**
     * Marks this component's cached wakeup stale so the event kernel
     * re-polls nextWakeup() on the next cycle it evaluates (see
     * System::declareWakeupInputs). A component with declared wakeup
     * inputs MUST call this from every externally callable method
     * that mutates wakeup-relevant state — onResponse, queue
     * enqueues/dequeues, walk callbacks — since those run inside
     * *other* components' ticks, where the kernel cannot see them.
     * Harmless (and a no-op) outside a System or in dense mode.
     */
    void pokeWakeup();

    /**
     * Invalidates *another* component's cached wakeup. For producers
     * that know exactly which consumer a state change can unblock
     * (e.g. the bus freeing one client's queue slot), this is a
     * precise alternative to a declareWakeupInputs() edge, which
     * would re-poll the consumer after *every* tick of the producer.
     */
    void pokeWakeup(const Clocked &other);

    /**
     * True when a call arriving at this component right now crosses a
     * partition boundary: the owning System is inside a ParallelBsp
     * evaluate phase AND the partition being evaluated on this thread
     * is not this component's own. Externally callable entry points
     * that carry traffic (sendRequest, onResponse, requestWalk,
     * assign) must then stage it for bspCommit() instead of applying
     * it live, and backpressure queries must answer from the last
     * bspPublish() snapshot plus the caller's own staged traffic.
     * Same-partition calls — and all calls in the dense and event
     * kernels and during serial phases — keep the live paths
     * byte-for-byte untouched.
     *
     * Public because shared resources with registered requester ports
     * (the PTW) must evaluate the predicate from the *target's*
     * perspective: a walk callback may only fire live when the
     * requesting component's partition is the one on this thread.
     */
  public:
    bool bspStagingActive() const;

  protected:

    /**
     * True while the owning System is inside a ParallelBsp evaluate
     * phase, regardless of which partition is active. For *outbound*
     * staging decisions taken inside a component's own tick (e.g. the
     * memory devices deferring response delivery to bspCommit): those
     * must stage whenever any parallel evaluation is in flight, since
     * the receiver may live anywhere under a fine partitioning and
     * commit-time delivery is timing-equivalent either way.
     */
    bool bspEvaluatePhase() const;

    /**
     * True when registered with a System in ParallelBsp mode (any
     * phase). For validating mode-specific configuration constraints
     * from entry points (e.g. minimum cross-partition latencies).
     */
    bool inBspSystem() const;

    /** Set by subclasses that override fastForward() (see above). */
    bool hasFastForward_ = false;

    /** Set by subclasses that override bspCommit()/bspPublish(). */
    bool hasBspHooks_ = false;

  private:
    std::string name_;
    System *system_ = nullptr;
    std::size_t sysIndex_ = 0;
};

/**
 * Owns the global clock and the component list. Components are
 * registered by raw pointer and must outlive the System (they are
 * typically members of the owning simulation object).
 */
class System
{
    friend class ParallelKernel;

  public:
    // Both out of line (parallel_kernel.cc): the unique_ptr to the
    // ParallelBsp worker pool needs the complete type to destroy.
    System();
    ~System();

    /** Registers a component; evaluation order is registration order. */
    void
    add(Clocked *c)
    {
        panic_if(c == nullptr, "System::add(nullptr)");
        panic_if(components_.size() >= 64,
                 "System supports at most 64 components");
        panic_if(c->system_ != nullptr,
                 "component '%s' already registered", c->name().c_str());
        panic_if(bsp_ != nullptr, "cannot add components once the "
                 "ParallelBsp worker pool is built");
        c->system_ = this;
        c->sysIndex_ = components_.size();
        components_.push_back(c);
        wake_.push_back(maxTick);
        succ_.push_back(0);
        part_.push_back(0);
    }

    /**
     * Assigns @p c to a ParallelBsp partition (default 0). Partition
     * ids are arbitrary labels; components sharing one are evaluated
     * sequentially in registration order on one worker thread, while
     * distinct partitions evaluate concurrently against last-cycle
     * cross-partition state. Legality is the assigner's contract:
     * components with same-cycle synchronous coupling (value-returning
     * calls into each other's state, same-cycle queue observation)
     * must share a partition, and every cross-partition interaction
     * must be observable no earlier than the next cycle (the kernel
     * rejects declared wakeup edges that would give a later-indexed
     * component same-cycle visibility across partitions). Must be
     * called before the first ParallelBsp cycle runs.
     */
    void
    setPartition(Clocked *c, unsigned partition)
    {
        panic_if(c == nullptr || c->system_ != this,
                 "setPartition() for unregistered component");
        panic_if(bsp_ != nullptr, "cannot repartition once the "
                 "ParallelBsp worker pool is built");
        part_[c->sysIndex_] = partition;
    }

    /** The ParallelBsp partition id assigned to @p c. */
    unsigned
    partitionOf(const Clocked &c) const
    {
        return part_[c.sysIndex_];
    }

    /**
     * Caps the ParallelBsp worker pool (0 = one thread per hardware
     * core). The pool never exceeds the number of distinct partitions;
     * simulated results are bit-identical for every thread count.
     */
    void
    setHostThreads(unsigned threads)
    {
        panic_if(bsp_ != nullptr, "cannot resize the ParallelBsp "
                 "worker pool once it is built");
        hostThreads_ = threads;
    }

    unsigned hostThreads() const { return hostThreads_; }

    /**
     * Caps the cycles one ParallelBsp superstep may batch (see
     * executeCycleBsp): when exactly one partition is due and the
     * wakeup data proves no other partition can fire for K cycles,
     * the kernel executes up to that many cycles inside one
     * fan-out/join round instead of one. 0 leaves the batch unbounded
     * (the proof still bounds it); 1 disables batching. Host-only:
     * simulated results are bit-identical for every value.
     */
    void setSuperstepMax(unsigned max) { superstepMax_ = max; }
    unsigned superstepMax() const { return superstepMax_; }

    /** True while inside a ParallelBsp parallel evaluate phase. */
    bool inBspEvaluate() const { return bspEvaluate_; }

    /**
     * Normalized ParallelBsp partition label of the component with
     * registration index @p idx (0 until the worker pool is built;
     * only consulted during evaluate phases, which imply a built
     * pool). Dense labels are what detail::bspActivePartition holds.
     */
    unsigned
    densePartitionOf(std::size_t idx) const
    {
        return idx < densePart_.size() ? densePart_[idx] : 0;
    }

    /**
     * Reassigns ParallelBsp partitions to workers from measured
     * per-component busy-cycle counts (index = registration order): a
     * greedy longest-processing-time bin-pack over the summed busy
     * cycles of each partition. Host-only — the evaluate/commit
     * semantics are identical for any assignment — so the cost-model
     * partitioner (--host-partition=cost) may call this mid-run.
     * Before the pool exists the request is stashed and applied at
     * pool build. Defined in parallel_kernel.cc.
     */
    void rebalancePartitionWorkers(
        const std::vector<std::uint64_t> &busy_per_component);

    /** @name ParallelBsp host-side execution counters @{
     *
     * Deterministic given (partitioning, thread count, workload):
     * they count simulated scheduling decisions, not host timing, so
     * the bench baselines may compare them exactly. All zero outside
     * ParallelBsp mode.
     */
    std::uint64_t bspSupersteps() const { return bspSupersteps_; }
    std::uint64_t bspBatchedCycles() const { return bspBatchedCycles_; }
    std::uint64_t bspHandshakes() const { return bspHandshakes_; }
    std::uint64_t bspStagedEvents() const { return bspStagedEvents_; }
    /** @} */

    /**
     * Opts @p dst into wakeup caching. By default the event kernel
     * re-polls every component's nextWakeup() on every cycle it
     * executes, because any tick anywhere might have created work for
     * it. A component whose wakeup can only drop when (a) one of the
     * listed @p srcs ticks, or (b) one of its own entry points runs
     * (which must then call pokeWakeup()), can declare that here: its
     * cached wakeup is then reused until one of those events — or its
     * own tick — invalidates it. Transitions that *raise* the wakeup
     * never need declaring; acting on a stale-low value just costs a
     * no-op tick or poll, exactly like a conservative nextWakeup().
     */
    void
    declareWakeupInputs(Clocked *dst,
                        std::initializer_list<Clocked *> srcs)
    {
        panic_if(dst == nullptr || dst->system_ != this,
                 "declareWakeupInputs for unregistered component");
        declared_ |= std::uint64_t(1) << dst->sysIndex_;
        for (Clocked *src : srcs) {
            panic_if(src == nullptr || src->system_ != this,
                     "wakeup input not registered");
            succ_[src->sysIndex_] |= std::uint64_t(1) << dst->sysIndex_;
        }
    }

    /** Invalidates @p c's cached wakeup (see Clocked::pokeWakeup). */
    void
    poke(const Clocked &c)
    {
        const std::uint64_t bit = std::uint64_t(1) << c.sysIndex_;
        // During a ParallelBsp evaluate phase, pokes land in the
        // calling worker's local mask: same-partition pokes stay
        // visible at-turn, cross-partition ones merge at commit.
        if (bspEvaluate_ && detail::bspPokeMask != nullptr) {
            *detail::bspPokeMask |= bit;
            return;
        }
        dirty_ |= bit;
    }

    /** Selects the kernel (callers may switch between runs). */
    void setMode(KernelMode mode) { mode_ = mode; }
    KernelMode mode() const { return mode_; }

    /**
     * Attaches a passive execution observer (nullptr detaches). The
     * observer is consulted only on cycles the kernel actually
     * executes plus fast-forward jumps, so a detached observer costs
     * one pointer compare per executed cycle and an attached one
     * cannot perturb simulated behaviour.
     */
    void setObserver(KernelObserver *observer) { observer_ = observer; }
    KernelObserver *observer() const { return observer_; }

    /**
     * Arms a wall-clock progress watchdog: if a single run call
     * (runUntilIdle / run / runUntilIdleStop) spends more than
     * @p seconds of host time without returning, @p reporter is
     * invoked to dump live diagnostics and the System panics — which
     * also fires the crash hook (logging.h) — instead of hanging
     * silently. The timer restarts at every run entry and the check
     * samples once per 64Ki executed cycles, so the cost is one
     * branch per cycle; @p seconds <= 0 disarms. Host-time-dependent
     * by design: it never alters simulated state, it only decides
     * when to give up on a wedged simulation.
     */
    void
    setWatchdog(double seconds, std::function<void()> reporter = {})
    {
        watchdogSecs_ = seconds;
        watchdogReporter_ = std::move(reporter);
    }

    /** Registered components, in evaluation order. */
    const std::vector<Clocked *> &components() const
    {
        return components_;
    }

    /** Current simulated time in cycles. */
    Tick now() const { return now_; }

    /**
     * Cycles the event kernel actually evaluated (vs. fast-forwarded
     * over). The ratio to now() is the kernel's skip rate.
     */
    std::uint64_t executedCycles() const { return executedCycles_; }

    /**
     * Requests an explicit tick of @p c at cycle @p at, in addition to
     * whatever its nextWakeup() reports. A wakeup scheduled in the
     * past or at the current cycle fires on the next cycle the kernel
     * evaluates — no cycle is lost and nothing is skipped past it.
     * Only meaningful in Event mode (Dense ticks everything anyway).
     */
    void
    schedule(Clocked *c, Tick at)
    {
        panic_if(c == nullptr || c->system_ != this,
                 "schedule() for unregistered component");
        scheduled_.push({std::max(at, now_), c->sysIndex_});
    }

    /**
     * Advances the clock by exactly one cycle, ticking every
     * component, and reports whether any component is still busy (the
     * idle scan rides the same call so runUntilIdle() does not pay a
     * separate per-cycle pre-scan pass).
     */
    bool
    step()
    {
        for (auto *c : components_) {
            c->tick(now_);
        }
        const Tick cycle = now_;
        ++now_;
        ++executedCycles_;
        if (observer_ != nullptr) {
            // The observer needs the full busy mask anyway, so the
            // idle scan rides the mask-building pass.
            std::uint64_t mask = 0;
            for (std::size_t i = 0; i < components_.size(); ++i) {
                if (components_[i]->busy()) {
                    mask |= std::uint64_t(1) << i;
                }
            }
            observer_->cycleExecuted(cycle, mask);
            return mask != 0;
        }
        for (auto *c : components_) {
            if (c->busy()) {
                return true;
            }
        }
        return false;
    }

    /**
     * Runs until every component reports idle, or @p max_cycles have
     * elapsed since the call.
     *
     * @return true if the system went idle, false if the cycle budget
     *         was exhausted (which callers treat as a deadlock bug).
     */
    bool
    runUntilIdle(Tick max_cycles = 2'000'000'000ULL)
    {
        const Tick limit = saturatingLimit(max_cycles);
        if (now_ >= limit) {
            return false;
        }
        if (!anyBusy()) {
            return true;
        }
        // Anything may have been reconfigured between runs (phase
        // starts, resets): every cached wakeup is stale.
        dirty_ = ~std::uint64_t(0);
        watchdogArm();
        return mode_ == KernelMode::Dense ? runUntilIdleDense(limit)
                                          : runUntilIdleEvent(limit);
    }

    /** Runs for exactly @p cycles cycles (idle or not). */
    void
    run(Tick cycles)
    {
        const Tick limit = saturatingLimit(cycles);
        watchdogArm();
        if (mode_ == KernelMode::Dense) {
            while (now_ < limit) {
                step();
                if (watchdogDue()) {
                    watchdogFireIfExpired();
                }
            }
        } else {
            dirty_ = ~std::uint64_t(0);
            runEvent(limit);
        }
    }

    /** Why runUntilIdleStop() returned. */
    enum class StopReason
    {
        Idle,    //!< Every component went idle.
        Budget,  //!< max_cycles elapsed (callers treat as deadlock).
        Stopped, //!< The clock reached stop_at (checkpoint boundary).
    };

    /**
     * runUntilIdle(), but additionally returns control the moment the
     * clock reaches @p stop_at, at a clean inter-cycle boundary. The
     * event/BSP kernels clamp their fast-forward jumps at the stop
     * cycle, so the boundary always exists; because per-cycle
     * fastForward() accounting is additive over adjacent spans and
     * nextWakeup() is pure, the split changes no simulated state — a
     * stopped-and-continued run stays bit-identical to an
     * uninterrupted one. This is the checkpoint-at hook.
     */
    StopReason
    runUntilIdleStop(Tick stop_at, Tick max_cycles = 2'000'000'000ULL)
    {
        if (now_ >= stop_at) {
            return StopReason::Stopped;
        }
        const Tick limit = saturatingLimit(max_cycles);
        if (now_ >= limit) {
            return StopReason::Budget;
        }
        if (!anyBusy()) {
            return StopReason::Idle;
        }
        dirty_ = ~std::uint64_t(0);
        watchdogArm();
        if (mode_ == KernelMode::Dense) {
            while (now_ < limit) {
                if (now_ >= stop_at) {
                    return StopReason::Stopped;
                }
                if (!step()) {
                    return StopReason::Idle;
                }
                if (watchdogDue()) {
                    watchdogFireIfExpired();
                }
            }
            return StopReason::Budget;
        }
        batchLimit_ = std::min(limit, stop_at);
        while (now_ < limit) {
            if (now_ >= stop_at) {
                return StopReason::Stopped;
            }
            const CyclePass pass = passCycle();
            if (watchdogDue()) {
                watchdogFireIfExpired();
            }
            if (pass.ticked) {
                if (!anyBusy()) {
                    return StopReason::Idle;
                }
                continue;
            }
            fastForwardTo(std::min({pass.next, limit, stop_at}));
        }
        return StopReason::Budget;
    }

    /**
     * Serializes the kernel state (clock, executed-cycle count, the
     * scheduled-wakeup queue, the due mask) into an open chunk. The
     * wakeup caches are deliberately *not* serialized: nextWakeup()
     * is a pure function of component state and every run entry point
     * marks all caches stale, so restore() rebuilds them exactly.
     * Kernel mode, host threads and partitions are host-execution
     * knobs, not architectural state — a checkpoint saved under one
     * kernel restores under any other. Defined in checkpoint.cc.
     */
    void save(checkpoint::Serializer &ser) const;

    /** Restores kernel state written by save(). */
    void restore(checkpoint::Deserializer &des);

  private:
    Tick
    saturatingLimit(Tick cycles) const
    {
        return cycles > maxTick - now_ ? maxTick : now_ + cycles;
    }

    bool
    anyBusy() const
    {
        for (auto *c : components_) {
            if (c->busy()) {
                return true;
            }
        }
        return false;
    }

    bool
    runUntilIdleDense(Tick limit)
    {
        while (now_ < limit) {
            if (!step()) {
                return true;
            }
            if (watchdogDue()) {
                watchdogFireIfExpired();
            }
        }
        return false;
    }

    /** Outcome of one event-kernel cycle pass. */
    struct CyclePass
    {
        bool ticked;  //!< At least one component ticked.
        Tick next;    //!< Earliest future wakeup seen (maxTick if
                      //!< ticked — pokes invalidate it anyway).
    };

    /**
     * Executes one cycle in a single pass. Each component's due-ness
     * is evaluated *at its turn* in registration order — not in a
     * separate up-front poll — because a component later in the order
     * must react in the same cycle to work pushed by an earlier one
     * (in the dense kernel its tick simply runs after the poke).
     * Non-due components get the cycle as a fast-forward
     * notification, and their wakeups are folded into a jump target:
     * if the whole pass ticked nothing, no state changed, so that
     * minimum is a safe cycle to fast-forward to. If anything ticked,
     * it may have poked components already passed, so the caller must
     * run the next cycle normally rather than jump.
     *
     * Wakeup caching: a component that declared its wakeup inputs is
     * only re-polled while its dirty bit is set — a tick of its own,
     * a tick of a declared input, or an explicit pokeWakeup() sets
     * it; otherwise its cached absolute wakeup stands. Dirty bits set
     * by a tick apply immediately, so a later component in the same
     * pass sees the poke at its turn, exactly like the uncached path.
     * Undeclared components are re-polled every executed cycle.
     */
    /** Moves all scheduled wakeups that are due into the due mask. */
    void
    collectDue()
    {
        while (!scheduled_.empty() && scheduled_.top().first <= now_) {
            dueMask_ |= std::uint64_t(1) << scheduled_.top().second;
            scheduled_.pop();
        }
    }

    /** One cycle under the selected non-dense kernel. */
    CyclePass
    passCycle()
    {
        return mode_ == KernelMode::ParallelBsp ? executeCycleBsp()
                                                : executeCycle();
    }

    /**
     * One ParallelBsp cycle: a parallel evaluate phase over the due
     * partitions, then the serial commit/transfer sequence. Defined in
     * parallel_kernel.cc (it drives the worker pool); builds the pool
     * on first use.
     */
    CyclePass executeCycleBsp();

    CyclePass
    executeCycle()
    {
        collectDue();
        bool ticked = false;
        std::uint64_t tickedMask = 0;
        Tick next = maxTick;
        for (std::size_t i = 0; i < components_.size(); ++i) {
            const std::uint64_t bit = std::uint64_t(1) << i;
            Tick w;
            if ((dueMask_ & bit) != 0) {
                dueMask_ &= ~bit;
                w = now_;
            } else if ((dirty_ & bit) != 0 || (declared_ & bit) == 0) {
                w = components_[i]->nextWakeup(now_);
                wake_[i] = w;
                dirty_ &= ~bit;
            } else {
                w = wake_[i];
            }
            if (w <= now_) {
                components_[i]->tick(now_);
                ticked = true;
                tickedMask |= bit;
                dirty_ |= succ_[i] | bit;
            } else {
                if (components_[i]->hasFastForward()) {
                    components_[i]->fastForward(now_, now_ + 1);
                }
                next = std::min(next, w);
            }
        }
        const Tick cycle = now_;
        ++now_;
        ++executedCycles_;
        if (observer_ != nullptr) {
            observer_->cycleExecuted(cycle, tickedMask);
        }
        if (!scheduled_.empty()) {
            next = std::min(next, scheduled_.top().first);
        }
        return {ticked, next};
    }

    /** Jumps the clock to @p target, notifying every component of the
     *  skipped span so per-cycle accounting stays exact. */
    void
    fastForwardTo(Tick target)
    {
        if (target <= now_) {
            return;
        }
        // The jump target was folded from wakeups read at each
        // component's turn in the pass — but a later component's
        // per-cycle fastForward() handler may have poked an earlier
        // one, lowering a wakeup the fold already captured. Those
        // pokes are exactly the dirty bits set since the poll, so
        // re-poll every stale component and clamp the jump before
        // committing it. Bits stay set: the next executed pass
        // re-polls (and clears) them through the normal path.
        const std::uint64_t registered =
            components_.size() >= 64
                ? ~std::uint64_t(0)
                : (std::uint64_t(1) << components_.size()) - 1;
        for (std::uint64_t stale = dirty_ & registered; stale != 0;
             stale &= stale - 1) {
            const auto i = std::size_t(__builtin_ctzll(stale));
            target = std::min(target,
                              components_[i]->nextWakeup(now_));
        }
        if (target <= now_) {
            return; // A poked component is due now: no jump at all.
        }
        for (auto *c : components_) {
            if (c->hasFastForward()) {
                c->fastForward(now_, target);
            }
        }
        if (observer_ != nullptr) {
            observer_->fastForwarded(now_, target);
        }
        now_ = target;
    }

    bool
    runUntilIdleEvent(Tick limit)
    {
        batchLimit_ = limit;
        while (now_ < limit) {
            const CyclePass pass = passCycle();
            if (watchdogDue()) {
                watchdogFireIfExpired();
            }
            if (pass.ticked) {
                if (!anyBusy()) {
                    return true;
                }
                continue;
            }
            // An empty cycle while busy: jump to the next wakeup (or
            // the budget limit — if every wakeup is maxTick while
            // components stay busy, that is the same deadlock the
            // dense kernel would step through as no-ops).
            fastForwardTo(std::min(pass.next, limit));
        }
        return false;
    }

    void
    runEvent(Tick limit)
    {
        batchLimit_ = limit;
        while (now_ < limit) {
            const CyclePass pass = passCycle();
            if (watchdogDue()) {
                watchdogFireIfExpired();
            }
            if (!pass.ticked) {
                fastForwardTo(std::min(pass.next, limit));
            }
        }
    }

    /** Restarts the watchdog timer (each public run entry point). */
    void
    watchdogArm()
    {
        if (watchdogSecs_ > 0) {
            watchdogStart_ = std::chrono::steady_clock::now();
        }
    }

    /** Cheap per-cycle gate: sample host time every 64Ki cycles. */
    bool
    watchdogDue() const
    {
        return watchdogSecs_ > 0 && (executedCycles_ & 0xFFFF) == 0;
    }

    void
    watchdogFireIfExpired()
    {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - watchdogStart_)
                .count();
        if (elapsed < watchdogSecs_) {
            return;
        }
        if (watchdogReporter_) {
            watchdogReporter_();
        }
        panic("watchdog: run made no completion progress for %.1f host "
              "seconds (cycle %llu, %llu executed); aborting wedged "
              "simulation",
              elapsed, static_cast<unsigned long long>(now_),
              static_cast<unsigned long long>(executedCycles_));
    }

    Tick now_ = 0;
    std::uint64_t executedCycles_ = 0;
    KernelMode mode_ = KernelMode::Event;
    KernelObserver *observer_ = nullptr;
    std::vector<Clocked *> components_;
    std::vector<Tick> wake_; //!< Cached absolute wakeups (event mode).
    std::vector<std::uint64_t> succ_; //!< Per-src mask of dependents.
    std::vector<unsigned> part_; //!< ParallelBsp partition labels.
    std::vector<unsigned> densePart_; //!< Normalized labels (pool-built).
    std::uint64_t dueMask_ = 0; //!< Scheduled-wakeup due components.
    std::uint64_t declared_ = 0; //!< Components with declared inputs.
    std::uint64_t dirty_ = ~std::uint64_t(0); //!< Stale wakeup caches.
    unsigned hostThreads_ = 0; //!< ParallelBsp pool cap (0 = auto).
    unsigned superstepMax_ = 0; //!< Batch cap (0 = unbounded, 1 = off).
    Tick batchLimit_ = maxTick; //!< Run-loop clamp seen by the batcher.
    std::vector<std::uint64_t> pendingWorkerCost_; //!< Pre-pool stash.
    std::uint64_t bspSupersteps_ = 0; //!< Fan-out/join rounds run.
    std::uint64_t bspBatchedCycles_ = 0; //!< Extra cycles per round.
    std::uint64_t bspHandshakes_ = 0; //!< Worker signal/ack round trips.
    std::uint64_t bspStagedEvents_ = 0; //!< Cross-partition hand-offs.
    double watchdogSecs_ = 0; //!< Progress watchdog limit (0 = off).
    std::function<void()> watchdogReporter_; //!< Pre-abort dump hook.
    std::chrono::steady_clock::time_point watchdogStart_;
    bool bspEvaluate_ = false; //!< Inside a parallel evaluate phase.
    std::unique_ptr<ParallelKernel> bsp_; //!< Lazily built worker pool.

    /** Explicitly scheduled (cycle, component index) wakeups. */
    using ScheduledTick = std::pair<Tick, std::size_t>;
    std::priority_queue<ScheduledTick, std::vector<ScheduledTick>,
                        std::greater<ScheduledTick>>
        scheduled_;
};

inline void
Clocked::pokeWakeup()
{
    if (system_ != nullptr) {
        system_->poke(*this);
    }
}

inline void
Clocked::pokeWakeup(const Clocked &other)
{
    if (other.system_ != nullptr) {
        other.system_->poke(other);
    }
}

inline bool
Clocked::bspStagingActive() const
{
    return system_ != nullptr && system_->inBspEvaluate() &&
        detail::bspActivePartition !=
            system_->densePartitionOf(sysIndex_);
}

inline bool
Clocked::bspEvaluatePhase() const
{
    return system_ != nullptr && system_->inBspEvaluate();
}

inline bool
Clocked::inBspSystem() const
{
    return system_ != nullptr &&
        system_->mode() == KernelMode::ParallelBsp;
}

} // namespace hwgc

#endif // HWGC_SIM_CLOCKED_H
