/**
 * @file
 * Seed-corpus regression test (DESIGN.md §11): every committed
 * schedule in tests/corpus/ replays green through the full
 * differential matrix. When a fuzz divergence is fixed, its minimized
 * .sched repro gets committed here, and this test keeps the bug dead
 * forever.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/differ.h"

#ifndef HWGC_CORPUS_DIR
#error "HWGC_CORPUS_DIR must point at tests/corpus/"
#endif

namespace hwgc
{
namespace
{

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(HWGC_CORPUS_DIR)) {
        if (entry.path().extension() == ".sched") {
            files.push_back(entry.path().string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, CorpusIsPresent)
{
    // The committed corpus covers all four shape families; an empty
    // directory means the test silently checks nothing.
    EXPECT_GE(corpusFiles().size(), 4u);
}

TEST(FuzzCorpus, EveryScheduleReplaysGreenThroughTheMatrix)
{
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        fuzz::Schedule schedule;
        std::string err;
        ASSERT_TRUE(fuzz::loadFile(path, schedule, &err)) << err;
        ASSERT_GE(schedule.collects(), 1u);

        const fuzz::FuzzResult result = fuzz::runSchedule(schedule);
        EXPECT_TRUE(result.ok) << result.error;
        EXPECT_GT(result.collectsRun, 0u);
    }
}

} // namespace
} // namespace hwgc
