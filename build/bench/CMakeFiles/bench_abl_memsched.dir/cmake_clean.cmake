file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_memsched.dir/bench_abl_memsched.cc.o"
  "CMakeFiles/bench_abl_memsched.dir/bench_abl_memsched.cc.o.d"
  "bench_abl_memsched"
  "bench_abl_memsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_memsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
