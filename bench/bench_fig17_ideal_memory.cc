/**
 * @file
 * Fig 17 — GC performance with a 1-cycle-latency, 8 GB/s
 * latency-bandwidth pipe instead of the DDR3 model.
 *
 * The paper: "we outperform the CPU by an average of 9.0x on the mark
 * phase", the TileLink port is "busy 88% of all mark cycles", and a
 * request enters the memory system "every 8.66 cycles".
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 17: 1-cycle DRAM / 8 GB/s pipe",
                  "mark speedup rises to ~9x; port busy 88%");

    driver::LabConfig config;
    config.hwgc.memModel = core::MemModel::Ideal;

    std::vector<double> mark_ratios, sweep_ratios;
    std::printf("  %-10s %12s %12s %8s | %12s %8s\n", "benchmark",
                "CPU mark", "unit mark", "speedup", "cyc/request",
                "port");
    for (const auto &profile : workload::dacapoSuite()) {
        driver::GcLab lab(profile, config);
        lab.run();
        const double sw = lab.avgSwMarkCycles();
        const double hw = lab.avgHwMarkCycles();
        mark_ratios.push_back(sw / hw);
        sweep_ratios.push_back(lab.avgSwSweepCycles() /
                               lab.avgHwSweepCycles());

        // Request spacing and port utilization over the last pause.
        const auto &last = lab.results().back();
        const double requests =
            double(last.hw.tracerRequests) +
            double(lab.device().marker().marksIssued());
        const double cyc_per_req = requests > 0
            ? double(last.hwMarkCycles + last.hwSweepCycles) / requests
            : 0.0;
        const double port_busy = last.hw.busCycles > 0
            ? double(last.hw.busBusyCycles) / double(last.hw.busCycles)
            : 0.0;
        std::printf("  %-10s %9.3f ms %9.3f ms %7.2fx | %12.2f %7.0f%%\n",
                    profile.name.c_str(), bench::msFromCycles(sw),
                    bench::msFromCycles(hw), sw / hw, cyc_per_req,
                    port_busy * 100.0);
    }
    std::printf("  geomean mark speedup:  %.2fx\n",
                bench::geomean(mark_ratios));
    std::printf("  geomean sweep speedup: %.2fx (2 sweepers; see "
                "Fig 20 for scaling)\n",
                bench::geomean(sweep_ratios));
    return 0;
}
