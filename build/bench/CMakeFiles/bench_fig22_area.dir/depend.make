# Empty dependencies file for bench_fig22_area.
# This may be replaced when dependencies are built.
