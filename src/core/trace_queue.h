/**
 * @file
 * The tracer queue decoupling marker and tracer (paper §IV-A idea II,
 * Fig 7): "our traversal unit consists of a pipeline with a marker
 * and a tracer connected via a tracer queue. If a long object is
 * being examined by the tracer, the marker continues operating and
 * the queue fills up."
 */

#ifndef HWGC_CORE_TRACE_QUEUE_H
#define HWGC_CORE_TRACE_QUEUE_H

#include <deque>

#include "sim/checkpoint.h"
#include "sim/logging.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hwgc::core
{

/** A newly marked object awaiting reference tracing. */
struct TraceEntry
{
    Addr ref = 0;               //!< Status-word VA.
    std::uint32_t numRefs = 0;  //!< Outbound reference count.
};

/** Bounded FIFO between marker (producer) and tracer (consumer). */
class TraceQueue
{
  public:
    explicit TraceQueue(unsigned capacity) : capacity_(capacity)
    {
        panic_if(capacity_ == 0, "tracer queue needs capacity");
    }

    bool canPush() const { return q_.size() < capacity_; }

    void
    push(const TraceEntry &e)
    {
        panic_if(!canPush(), "tracer queue overflow");
        q_.push_back(e);
        if (q_.size() > maxDepth_.value()) {
            maxDepth_.set(q_.size());
        }
    }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }

    TraceEntry
    pop()
    {
        panic_if(q_.empty(), "tracer queue underflow");
        const TraceEntry e = q_.front();
        q_.pop_front();
        return e;
    }

    void clear() { q_.clear(); }

    std::uint64_t maxDepth() const { return maxDepth_.value(); }
    void resetStats() { maxDepth_.reset(); }

    /** Registers the queue's statistics into @p g (telemetry). */
    void addStats(stats::Group &g) const { g.add(&maxDepth_); }

    void
    save(checkpoint::Serializer &ser) const
    {
        ser.putU64(q_.size());
        for (const auto &e : q_) {
            ser.putU64(e.ref);
            ser.putU64(e.numRefs);
        }
        checkpoint::putStat(ser, maxDepth_);
    }

    void
    restore(checkpoint::Deserializer &des)
    {
        const std::uint64_t count = des.getU64();
        fatal_if(count > capacity_,
                 "checkpoint '%s': trace queue holds %llu entries but "
                 "has capacity %u — configurations differ",
                 des.origin().c_str(), (unsigned long long)count,
                 capacity_);
        q_.clear();
        for (std::uint64_t i = 0; i < count; ++i) {
            TraceEntry e;
            e.ref = des.getU64();
            e.numRefs = std::uint32_t(des.getU64());
            q_.push_back(e);
        }
        checkpoint::getStat(des, maxDepth_);
    }

  private:
    unsigned capacity_;
    std::deque<TraceEntry> q_;
    stats::Scalar maxDepth_{"maxDepth"};
};

} // namespace hwgc::core

#endif // HWGC_CORE_TRACE_QUEUE_H
