/**
 * @file
 * Implementation of the status/error reporting helpers.
 */

#include "logging.h"

#include <cstdlib>
#include <mutex>
#include <set>

namespace hwgc
{

bool Debug::anyEnabled_ = false;

namespace
{

std::set<std::string> &
flagSet()
{
    static std::set<std::string> flags;
    return flags;
}

void
vreport(const char *prefix, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

void (*crashHook)(void *ctx) = nullptr;
void *crashHookCtx = nullptr;

/** Runs the crash hook at most once (clears it first, so a failure
 *  inside the hook falls straight through to termination). */
void
runCrashHook()
{
    if (crashHook == nullptr) {
        return;
    }
    void (*hook)(void *) = crashHook;
    void *ctx = crashHookCtx;
    crashHook = nullptr;
    crashHookCtx = nullptr;
    hook(ctx);
}

} // namespace

void
setCrashHook(void (*hook)(void *ctx), void *ctx)
{
    crashHook = hook;
    crashHookCtx = ctx;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    runCrashHook();
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    runCrashHook();
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

void
Debug::enable(const std::string &flag)
{
    flagSet().insert(flag);
    anyEnabled_ = true;
}

void
Debug::disable(const std::string &flag)
{
    flagSet().erase(flag);
    anyEnabled_ = !flagSet().empty();
}

bool
Debug::enabled(const std::string &flag)
{
    return flagSet().count(flag) != 0;
}

void
Debug::parseFlagList(const std::string &list)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
            comma = list.size();
        }
        std::string token = list.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding whitespace.
        const auto begin = token.find_first_not_of(" \t");
        if (begin == std::string::npos) {
            continue;
        }
        const auto end = token.find_last_not_of(" \t");
        token = token.substr(begin, end - begin + 1);
        if (token[0] == '-') {
            disable(token.substr(1));
        } else {
            enable(token);
        }
    }
}

void
Debug::initFromEnv()
{
    if (const char *env = std::getenv("HWGC_DEBUG")) {
        parseFlagList(env);
    }
}

namespace
{

/** Applies HWGC_DEBUG before main() so DPRINTF needs no code edits. */
[[maybe_unused]] const bool debug_env_applied =
    (Debug::initFromEnv(), true);

} // namespace

void
Debug::print(unsigned long long tick, const char *flag,
             const char *fmt, ...)
{
    std::fprintf(stderr, "%10llu: %s: ", tick, flag);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace hwgc
