/**
 * @file
 * Fundamental simulator-wide types and bit-manipulation helpers.
 *
 * The simulated machine is a 64-bit RISC-V-like SoC clocked at 1 GHz
 * (paper Table I), so one Tick equals one core cycle equals one
 * nanosecond everywhere in the code base.
 */

#ifndef HWGC_SIM_TYPES_H
#define HWGC_SIM_TYPES_H

#include <cstdint>
#include <limits>

namespace hwgc
{

/** A physical or virtual memory address. */
using Addr = std::uint64_t;

/** Simulated time in core clock cycles (1 GHz, so 1 Tick == 1 ns). */
using Tick = std::uint64_t;

/** A 64-bit machine word, the unit of all heap metadata. */
using Word = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Bytes per machine word. */
constexpr unsigned wordBytes = 8;

/** Bytes per cache line / maximum interconnect transfer (TileLink). */
constexpr unsigned lineBytes = 64;

/** Bytes per smallest page (Sv39-style 4 KiB pages). */
constexpr unsigned pageBytes = 4096;

/** Core clock frequency in Hz (Table I: 1 GHz). */
constexpr double coreClockHz = 1e9;

/** Checks whether @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Rounds @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Rounds @p v up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Extracts bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~0ULL : ((1ULL << len) - 1));
}

/** Inserts @p field into bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
insertBits(std::uint64_t v, unsigned lo, unsigned len, std::uint64_t field)
{
    const std::uint64_t mask =
        ((len >= 64) ? ~0ULL : ((1ULL << len) - 1)) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

} // namespace hwgc

#endif // HWGC_SIM_TYPES_H
