# Empty compiler generated dependencies file for test_hwgc.
# This may be replaced when dependencies are built.
