/**
 * @file
 * Unit tests for the ParallelBsp staging ring (sim/spsc_ring.h): FIFO
 * order, power-of-two sizing, overflow backpressure (push() returning
 * false, never silently dropping), index wraparound, and the
 * single-producer/single-consumer hand-off under real threads.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sim/spsc_ring.h"

namespace hwgc
{
namespace
{

TEST(SpscRing, FifoOrder)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(ring.push(i));
    }
    EXPECT_EQ(ring.size(), 5u);
    int out = -1;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(ring.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(6).capacity(), 8u);
    EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
}

TEST(SpscRing, OverflowBackpressure)
{
    // A full ring must refuse the push — the staging call sites turn
    // that refusal into a panic because their capacity is sized from
    // the same config bound that gates admission (canAccept /
    // canRequest), so a false here means the model leaked traffic
    // past its own backpressure.
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(ring.push(i));
    }
    EXPECT_FALSE(ring.push(99));
    EXPECT_EQ(ring.size(), 4u);

    // Draining one slot re-admits exactly one item.
    int out = -1;
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(ring.push(4));
    EXPECT_FALSE(ring.push(5));
}

TEST(SpscRing, WrapAroundKeepsOrder)
{
    SpscRing<std::uint64_t> ring(4);
    std::uint64_t next_in = 0;
    std::uint64_t next_out = 0;
    // Many more operations than slots: the 32-bit indices wrap the
    // mask thousands of times.
    for (int round = 0; round < 10000; ++round) {
        EXPECT_TRUE(ring.push(next_in++));
        EXPECT_TRUE(ring.push(next_in++));
        std::uint64_t out = 0;
        EXPECT_TRUE(ring.pop(out));
        EXPECT_EQ(out, next_out++);
        EXPECT_TRUE(ring.pop(out));
        EXPECT_EQ(out, next_out++);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ReserveWhileNonEmptyPanics)
{
    SpscRing<int> ring(4);
    ASSERT_TRUE(ring.push(1));
    EXPECT_DEATH(ring.reserve(8), "non-empty");
}

TEST(SpscRing, TwoThreadHandoff)
{
    // One producer, one consumer, a ring much smaller than the item
    // count: every item must arrive exactly once, in order, with the
    // consumer spinning through empty reads and the producer through
    // full ones. (This is the pattern TSan checks in CI.)
    // Yield instead of spinning hot: on a single-core host a hot
    // spin only runs down the scheduler quantum before the other
    // side can make progress.
    constexpr std::uint64_t kItems = 20000;
    SpscRing<std::uint64_t> ring(16);

    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kItems;) {
            if (ring.push(i)) {
                ++i;
            } else {
                std::this_thread::yield();
            }
        }
    });

    std::uint64_t expected = 0;
    while (expected < kItems) {
        std::uint64_t out = 0;
        if (ring.pop(out)) {
            ASSERT_EQ(out, expected);
            ++expected;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

} // namespace
} // namespace hwgc
