/**
 * @file
 * Google-benchmark microbenchmarks for the hot simulator primitives:
 * these guard the simulator's own performance (wall-clock per
 * simulated cycle), not the paper's results.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench_util.h"
#include "core/hwgc_device.h"
#include "core/mark_queue.h"
#include "mem/dram.h"
#include "mem/ideal_mem.h"
#include "runtime/heap.h"
#include "sim/random.h"
#include "workload/graph_gen.h"

namespace
{

using namespace hwgc;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.next());
    }
}
BENCHMARK(BM_RngNext);

void
BM_PhysMemWordRoundTrip(benchmark::State &state)
{
    mem::PhysMem mem;
    Rng rng(2);
    for (auto _ : state) {
        const Addr addr = alignDown(rng.below(1 << 26), 8);
        mem.writeWord(addr, addr);
        benchmark::DoNotOptimize(mem.readWord(addr));
    }
}
BENCHMARK(BM_PhysMemWordRoundTrip);

void
BM_DramAtomicAccess(benchmark::State &state)
{
    mem::PhysMem mem;
    mem::Dram dram("d", mem::DramParams{}, mem);
    Rng rng(3);
    std::array<Word, mem::maxReqWords> scratch{};
    Tick now = 0;
    for (auto _ : state) {
        mem::MemRequest req;
        req.paddr = alignDown(rng.below(1 << 26), 64);
        req.size = 64;
        req.op = mem::Op::Read;
        req.timingOnly = true;
        benchmark::DoNotOptimize(dram.accessAtomic(req, now, scratch));
        now += 100;
    }
}
BENCHMARK(BM_DramAtomicAccess);

void
BM_HeapAllocate(benchmark::State &state)
{
    auto mem = std::make_unique<mem::PhysMem>();
    auto heap = std::make_unique<runtime::Heap>(*mem);
    std::uint64_t count = 0;
    for (auto _ : state) {
        if (++count == 2'000'000) { // Stay inside the 256 MiB reserve.
            state.PauseTiming();
            heap.reset();
            mem = std::make_unique<mem::PhysMem>();
            heap = std::make_unique<runtime::Heap>(*mem);
            count = 0;
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(heap->allocate(3, 4));
    }
}
BENCHMARK(BM_HeapAllocate);

void
BM_GraphBuild(benchmark::State &state)
{
    for (auto _ : state) {
        mem::PhysMem mem;
        runtime::Heap heap(mem);
        workload::GraphParams params;
        params.liveObjects = std::uint64_t(state.range(0));
        params.garbageObjects = params.liveObjects / 2;
        params.seed = 9;
        workload::GraphBuilder builder(heap, params);
        builder.build();
        benchmark::DoNotOptimize(heap.objects().size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void
BM_ReachabilityOracle(benchmark::State &state)
{
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    workload::GraphParams params;
    params.liveObjects = 10000;
    params.garbageObjects = 5000;
    params.seed = 10;
    workload::GraphBuilder builder(heap, params);
    builder.build();
    for (auto _ : state) {
        benchmark::DoNotOptimize(heap.computeReachable().size());
    }
}
BENCHMARK(BM_ReachabilityOracle);

void
BM_MarkQueueOnChip(benchmark::State &state)
{
    mem::PhysMem mem;
    mem::IdealMem ideal("m", mem::IdealMemParams{}, mem);
    mem::Interconnect bus("bus", mem::InterconnectParams{}, ideal);
    mem::BusPort port(bus, nullptr, "spill");
    core::HwgcConfig config;
    core::MarkQueue queue("q", config, &port, 0x6000'0000, 4 << 20);
    bus.setClientResponder(port.clientId(), &queue);
    for (auto _ : state) {
        queue.enqueue(0x1000'0000);
        benchmark::DoNotOptimize(queue.dequeue());
    }
}
BENCHMARK(BM_MarkQueueOnChip);

/**
 * Device-level kernel A/B/C: run the same full GC pause under the
 * dense, event and parallel kernels, timing host wall-clock of the
 * simulation only (heap and graph construction excluded). All kernels
 * must deliver the same simulated cycle count; the event kernel must
 * beat dense and the parallel kernel reports its speedup over event.
 * @p include_dense skips the (slow) dense reference for the
 * large-heap configuration, where the event kernel is the baseline.
 */
double
runKernelAb(const char *label, const workload::GraphParams &graph,
            bench::BenchRecord &record, bool include_dense = true,
            unsigned parallel_threads = 4)
{
    struct Run
    {
        double hostSeconds = 0.0;
        Tick simCycles = 0;
        std::uint64_t executed = 0;
        std::uint64_t marked = 0;
    };
    auto run_one = [&graph](KernelMode kernel, unsigned threads) {
        mem::PhysMem mem;
        runtime::Heap heap(mem);
        workload::GraphBuilder builder(heap, graph);
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
        core::HwgcConfig config;
        config.kernel = kernel;
        config.hostThreads = threads;
        core::HwgcDevice device(mem, heap.pageTable(), config);
        device.configure(heap);
        bench::HostTimer timer;
        const core::HwPhaseResult result = device.collect();
        Run r;
        r.hostSeconds = timer.seconds();
        r.simCycles = result.cycles;
        r.executed = device.system().executedCycles();
        r.marked = result.objectsMarked;
        return r;
    };
    // Best of three per kernel: each run rebuilds an identical heap,
    // so sim results are deterministic and only host time varies.
    auto best_of = [&run_one](KernelMode kernel, unsigned threads = 0) {
        Run best = run_one(kernel, threads);
        for (int i = 0; i < 2; ++i) {
            const Run r = run_one(kernel, threads);
            if (r.hostSeconds < best.hostSeconds) {
                best = r;
            }
        }
        return best;
    };
    auto check_same = [](const char *label_a, const Run &a,
                         const char *label_b, const Run &b) {
        if (a.simCycles != b.simCycles || a.marked != b.marked) {
            std::fprintf(stderr,
                         "kernel A/B diverged: %s %llu cycles / %llu "
                         "marked, %s %llu cycles / %llu marked\n",
                         label_a, (unsigned long long)a.simCycles,
                         (unsigned long long)a.marked, label_b,
                         (unsigned long long)b.simCycles,
                         (unsigned long long)b.marked);
            std::exit(1);
        }
    };

    const Run event = best_of(KernelMode::Event);
    // parallel@1 runs every partition inline on the commit thread:
    // it isolates the kernel's intrinsic overhead (staging + commit
    // replay) from the cross-thread handshake, and is the honest
    // number on hosts without spare cores.
    const Run parallel1 = best_of(KernelMode::ParallelBsp, 1);
    const Run parallel =
        best_of(KernelMode::ParallelBsp, parallel_threads);
    check_same("event", event, "parallel", parallel);
    check_same("parallel-1", parallel1, "parallel", parallel);
    if (include_dense) {
        const Run dense = best_of(KernelMode::Dense);
        check_same("dense", dense, "event", event);
        bench::printKernelSpeed(label, "dense", dense.hostSeconds,
                                double(dense.simCycles));
        const double speedup = dense.hostSeconds / event.hostSeconds;
        std::printf("%s: event-kernel host speedup %.2fx "
                    "(evaluated %llu of %llu cycles, %.1f%%)\n",
                    label, speedup, (unsigned long long)event.executed,
                    (unsigned long long)dense.executed,
                    100.0 * double(event.executed) /
                        double(dense.executed));
    }
    // Deterministic cross-PR record: the kernels are checked
    // identical above, so the event run's numbers are canonical.
    const char *slash = std::strrchr(label, '/');
    const std::string key = slash != nullptr ? slash + 1 : label;
    record.metric(key + ".sim_cycles", std::uint64_t(event.simCycles));
    record.metric(key + ".event_executed", event.executed);
    record.metric(key + ".marked", event.marked);

    bench::printKernelSpeed(label, "event", event.hostSeconds,
                            double(event.simCycles));
    bench::printKernelSpeed(label, "parallel", parallel1.hostSeconds,
                            double(parallel1.simCycles), 1);
    bench::printKernelSpeed(label, "parallel", parallel.hostSeconds,
                            double(parallel.simCycles),
                            parallel_threads);
    const double par_speedup = event.hostSeconds / parallel.hostSeconds;
    std::printf("%s: parallel-kernel host speedup vs event: %.2fx at "
                "1 thread, %.2fx at %u threads (%u host cores)\n",
                label, event.hostSeconds / parallel1.hostSeconds,
                par_speedup, parallel_threads,
                std::thread::hardware_concurrency());
    return par_speedup;
}

void
runKernelAbSuite()
{
    // Perf-trajectory record (BENCH_micro.json via --bench-out=).
    // Attribution stays empty here on purpose: attaching the profiler
    // would slow the very kernel loops this suite wall-clocks.
    bench::BenchRecord record("micro");
    bench::HostTimer suite_timer;
    // Latency-bound: one root, a pointer chain, no arrays — the
    // tracer chases dependent DRAM accesses one at a time and the
    // machine idles for tens of cycles per hop. This is the shape
    // the event kernel exists for.
    workload::GraphParams chain;
    chain.liveObjects = 20000;
    chain.garbageObjects = 2000;
    chain.numRoots = 1;
    chain.avgRefs = 1.0;
    chain.maxRefs = 1;
    chain.minRefs = 1; // Exactly one ref each: a single 20k-deep chain.
    chain.arrayFraction = 0.0;
    chain.shareProb = 0.0;
    chain.localityBias = 0.0;
    chain.seed = 17;
    runKernelAb("bench_micro/latency", chain, record);

    // Throughput-bound: wide graph, 32 roots, full marker MLP keeps
    // the memory system saturated, so few cycles are skippable and
    // the event kernel only has its lower bookkeeping to offer.
    workload::GraphParams wide;
    wide.liveObjects = 30000;
    wide.garbageObjects = 15000;
    wide.numRoots = 32;
    wide.seed = 13;
    runKernelAb("bench_micro/throughput", wide, record);

    // Large heap: the parallel kernel's target shape — enough live
    // work per simulated cycle that the per-cycle fan-out/join cost
    // amortizes. Dense would dominate the wall clock here, so the
    // event kernel is the baseline.
    workload::GraphParams large;
    large.liveObjects = 120000;
    large.garbageObjects = 60000;
    large.numRoots = 64;
    large.seed = 29;
    runKernelAb("bench_micro/large-heap", large, record,
                /*include_dense=*/false);

    record.write(suite_timer.seconds());
}

} // namespace

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    runKernelAbSuite();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
