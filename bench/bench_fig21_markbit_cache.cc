/**
 * @file
 * Fig 21 — the mark-bit cache: (a) per-object access frequencies in
 * luindex's 8th GC, (b) the effect of small filter caches on mark
 * memory requests.
 *
 * The paper: "about 10% of mark operations access the same 56
 * objects" and "the largest gain per area can be achieved with a
 * small cache (<64 elements)", with little effect on overall mark
 * time at DDR3 bandwidth.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 21: mark-bit cache",
                  "56 hot objects ~10% of accesses; tiny cache filters"
                  " them");

    const auto profile = workload::dacapoProfile("luindex");

    // (a) Access frequencies at the 8th GC (profiled in the marker).
    driver::LabConfig profile_config;
    profile_config.runSw = false;
    driver::GcLab lab(profile, profile_config);
    lab.device().marker().setProfileTargets(true);
    lab.run(); // 8 pauses; reset clears the profile between pauses,
               // so the surviving map belongs to the 8th GC.

    std::vector<std::uint64_t> counts;
    std::uint64_t total_accesses = 0;
    for (const auto &[ref, count] : lab.device().marker()
                                        .targetProfile()) {
        counts.push_back(count);
        total_accesses += count;
    }
    std::sort(counts.rbegin(), counts.rend());

    std::printf("\n  (a) 8th GC of luindex: %zu distinct objects, "
                "%llu mark accesses\n",
                counts.size(), (unsigned long long)total_accesses);
    std::uint64_t top56 = 0;
    for (std::size_t i = 0; i < counts.size() && i < 56; ++i) {
        top56 += counts[i];
    }
    std::printf("  top 56 objects account for %.1f%% of accesses\n",
                100.0 * double(top56) / double(total_accesses));
    std::printf("  access-count histogram (objects per bucket):\n");
    const std::vector<std::uint64_t> edges = {1, 2, 4, 8, 16, 32, 64,
                                              128, 256, 1024};
    for (std::size_t e = 0; e < edges.size(); ++e) {
        const std::uint64_t lo = e == 0 ? 1 : edges[e - 1] + 1;
        const std::uint64_t hi = edges[e];
        const auto n = std::count_if(counts.begin(), counts.end(),
                                     [lo, hi](std::uint64_t c) {
            return c >= lo && c <= hi;
        });
        std::printf("  %5llu..%-5llu accesses: %8lld objects\n",
                    (unsigned long long)lo, (unsigned long long)hi,
                    (long long)n);
    }

    // (b) Filter effectiveness across cache sizes.
    std::printf("\n  (b) mark memory requests vs cache size\n");
    std::printf("  %-8s %14s %14s %12s %10s\n", "entries",
                "mark reqs", "filtered", "reqs/ref", "mark time");
    for (const unsigned entries : {0u, 64u, 105u, 128u, 256u}) {
        driver::LabConfig config;
        config.runSw = false;
        config.hwgc.markBitCacheEntries = entries;
        driver::GcLab sweep_lab(profile, config);
        sweep_lab.run(2); // Capped pauses: design-space sweep.
        std::uint64_t refs = 0;
        for (const auto &r : sweep_lab.results()) {
            refs += r.hw.tracerRequests;
        }
        const auto &marker = sweep_lab.device().marker();
        const double reqs = double(marker.marksIssued());
        std::printf("  %-8u %14.0f %14llu %12.3f %7.3f ms\n", entries,
                    reqs,
                    (unsigned long long)marker.markCacheHits(),
                    refs > 0 ? reqs / double(refs) : 0.0,
                    bench::msFromCycles(sweep_lab.avgHwMarkCycles()));
    }
    return 0;
}
