file(REMOVE_RECURSE
  "CMakeFiles/latency_service.dir/latency_service.cpp.o"
  "CMakeFiles/latency_service.dir/latency_service.cpp.o.d"
  "latency_service"
  "latency_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
