# Empty compiler generated dependencies file for hwgc_cpu.
# This may be replaced when dependencies are built.
