/**
 * @file
 * The reader that streams the published root set into the mark queue
 * at the start of a traversal (paper Fig 5 / §V-C: "At the beginning
 * of a GC, a reader copies all references from the hwgc-space into
 * the mark queue").
 */

#ifndef HWGC_CORE_ROOT_READER_H
#define HWGC_CORE_ROOT_READER_H

#include <deque>

#include "core/hwgc_config.h"
#include "core/mark_queue.h"
#include "mem/ptw.h"
#include "mem/tlb.h"

namespace hwgc::core
{

/** Streams hwgc-space roots into the mark queue. */
class RootReader : public Clocked, public mem::MemResponder
{
  public:
    RootReader(std::string name, const HwgcConfig &config,
               MarkQueue &mark_queue, mem::MemPort *port,
               mem::Ptw &ptw);

    /** Arms the reader for a root array of @p count references. */
    void start(Addr base_va, std::uint64_t count);

    /**
     * Grows the region while the reader runs. This is the concurrent
     * write-barrier channel of paper §IV-D: mutators append
     * overwritten references to the same region used to communicate
     * the roots, and "the traversal unit writes all references that
     * are written into this region to the mark queue".
     */
    void extend(std::uint64_t count);

    /** True once every root reached the mark queue. */
    bool done() const;

    // MemResponder interface.
    void onResponse(const mem::MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override { return !done(); }
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** Re-creates the page-walk completion callback (restore path). */
    mem::Ptw::WalkCallback walkCallback();

    void reset();

    std::uint64_t rootsRead() const { return rootsRead_.value(); }

    /**
     * The cycle the reader first finished the armed region (0 while
     * still streaming). Telemetry uses this as the root-scan phase
     * boundary inside the mark span.
     */
    Tick doneAt() const { return doneAt_; }

    /** Registers the reader's statistics into @p g (telemetry). */
    void addStats(stats::Group &g) const { g.add(&rootsRead_); }

  private:
    /** Records the first completion cycle (observational only). */
    void
    noteDone(Tick now)
    {
        if (doneAt_ == 0 && end_ != 0 && done()) {
            doneAt_ = now;
        }
    }

    HwgcConfig config_;
    MarkQueue &markQueue_;
    mem::MemPort *port_;
    mem::Ptw &ptw_;
    unsigned ptwPort_ = 0; //!< Our requester port on the shared PTW.
    mem::TlbArray tlb_;

    Addr base_ = 0;
    Addr cursor_ = 0;
    Addr end_ = 0;
    unsigned inFlight_ = 0;
    std::deque<Addr> pending_;

    bool walkPending_ = false;
    Tick doneAt_ = 0;

    stats::Scalar rootsRead_{"rootsRead"};
};

} // namespace hwgc::core

#endif // HWGC_CORE_ROOT_READER_H
