# Empty compiler generated dependencies file for bench_abl_layout.
# This may be replaced when dependencies are built.
