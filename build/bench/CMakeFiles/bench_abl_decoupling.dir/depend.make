# Empty dependencies file for bench_abl_decoupling.
# This may be replaced when dependencies are built.
