/**
 * @file
 * Heap invariant checking shared by tests and the debug tooling.
 *
 * The paper debugged its unit by swapping libhwgc for "a version that
 * performs software checks of the hardware unit" (§V-E); these
 * functions are that checker.
 */

#ifndef HWGC_GC_VERIFIER_H
#define HWGC_GC_VERIFIER_H

#include <string>

#include "runtime/heap.h"

namespace hwgc::gc
{

/** Outcome of one verification pass. */
struct VerifyReport
{
    bool ok = true;
    std::string error;       //!< First violation found (empty if ok).
    std::uint64_t checked = 0;
};

/**
 * Checks that the set of mark bits equals the reachability oracle:
 * every reachable object marked, every unreachable object unmarked.
 */
VerifyReport verifyMarks(const runtime::Heap &heap);

/**
 * Checks free-list well-formedness for every MarkSweep block: links
 * stay inside their block, land on cell boundaries, never point at
 * live cells and never cycle.
 */
VerifyReport verifyFreeLists(const runtime::Heap &heap);

/**
 * Post-sweep invariant: every cell of every block is either a marked
 * live object or on its block's free list, and the block-table
 * summaries match.
 */
VerifyReport verifySweptHeap(const runtime::Heap &heap);

} // namespace hwgc::gc

#endif // HWGC_GC_VERIFIER_H
