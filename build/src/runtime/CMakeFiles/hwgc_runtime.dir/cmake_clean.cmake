file(REMOVE_RECURSE
  "CMakeFiles/hwgc_runtime.dir/heap.cc.o"
  "CMakeFiles/hwgc_runtime.dir/heap.cc.o.d"
  "libhwgc_runtime.a"
  "libhwgc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
