/**
 * @file
 * Pluggable GC scheduling policies for fleet mode.
 *
 * A fleet time-multiplexes a few accelerator devices across many
 * tenant heaps; when more tenants want a collection than there are
 * free devices, the scheduler decides who goes first. The policy is
 * pure and deterministic — it looks only at the pending queue and the
 * current cycle — so every kernel replays the same dispatch order and
 * the fleet stays bit-identical across dense/event/parallel runs.
 */

#ifndef HWGC_DRIVER_GC_SCHEDULER_H
#define HWGC_DRIVER_GC_SCHEDULER_H

#include <memory>
#include <string>
#include <vector>

#include "sim/types.h"

namespace hwgc::driver
{

/** The scheduling policies bench_fleet_latency compares. */
enum class GcPolicy
{
    /** Dispatch in trigger order, ties broken by tenant id. */
    Fifo,
    /** Earliest-deadline-first: tightest SLO budget goes first. */
    Deadline,
    /**
     * Earliest-deadline-first dispatch, with the mark phase run
     * concurrently with the mutator (paper §VI-E): only the sweep
     * handoff is stop-the-world, so the tenant's pause window starts
     * at sweep start rather than at the trigger.
     */
    ConcurrentOverlap,
};

/** One tenant's outstanding collection request. */
struct GcRequest
{
    unsigned tenant = 0;
    Tick triggerAt = 0; //!< Cycle the heap filled and the world stopped.
    Tick deadline = 0;  //!< triggerAt + the tenant's SLO budget.
};

/** Picks which pending request a freed device should serve next. */
class GcScheduler
{
  public:
    virtual ~GcScheduler() = default;

    /**
     * Index into @p pending of the request to dispatch. @p pending is
     * non-empty and kept in trigger order by the caller; @p now is the
     * current cycle. Must be a pure function of its arguments.
     */
    virtual std::size_t pick(const std::vector<GcRequest> &pending,
                             Tick now) const = 0;

    /** True if the mark phase overlaps the mutator (only the sweep
     *  handoff counts toward the tenant's stop-the-world window). */
    virtual bool concurrentMark() const { return false; }

    virtual GcPolicy policy() const = 0;
    virtual const char *name() const = 0;
};

/** Instantiates the scheduler for @p policy. */
std::unique_ptr<GcScheduler> makeScheduler(GcPolicy policy);

/** Parses "fifo" / "deadline" / "overlap" (fatal on anything else). */
GcPolicy parseGcPolicy(const std::string &text);

/** The canonical CLI spelling of @p policy. */
const char *gcPolicyName(GcPolicy policy);

} // namespace hwgc::driver

#endif // HWGC_DRIVER_GC_SCHEDULER_H
