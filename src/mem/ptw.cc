/**
 * @file
 * Blocking page-table walker implementation.
 */

#include "ptw.h"

#include <algorithm>

#include "sim/checkpoint.h"

namespace hwgc::mem
{

Ptw::Ptw(std::string name, const PtwParams &params,
         const PageTable &page_table, MemPort *port)
    : Clocked(std::move(name)), params_(params), pageTable_(&page_table),
      port_(port), l2Tlb_(this->name() + ".l2tlb", params.l2TlbEntries)
{
    panic_if(port_ == nullptr, "PTW needs a memory port");
    hasBspHooks_ = true;
}

unsigned
Ptw::registerRequester(const Clocked *owner, std::string label)
{
    auto p = std::make_unique<Port>();
    p->owner = owner;
    p->label = std::move(label);
    // A requester can never have more than queueDepth walks staged in
    // one cycle — it is bounded by its own canRequest() checks.
    p->staged.reserve(params_.queueDepth);
    ports_.push_back(std::move(p));
    // Worst case every outstanding completion targets a foreign
    // partition and comes due on the same cycle.
    stagedCallbacks_.reserve(ports_.size() * params_.queueDepth);
    return unsigned(ports_.size() - 1);
}

bool
Ptw::canRequest(unsigned port) const
{
    const Port &p = *ports_[port];
    if (bspStagingActive()) {
        // Foreign-partition view: last cycle's published occupancy
        // plus what this requester itself staged this cycle — exactly
        // the live queue size it would have seen ticking before the
        // walker in the serial pass.
        return p.publishedSize + p.staged.size() < params_.queueDepth;
    }
    return p.queue.size() < params_.queueDepth;
}

void
Ptw::requestWalk(unsigned port, Addr va, Tick now, WalkCallback cb,
                 std::uint64_t token)
{
    panic_if(!canRequest(port), "PTW '%s' port '%s': queue overflow",
             name().c_str(), ports_[port]->label.c_str());
    pokeWakeup(); // The latched walk becomes visible next cycle.
    Port &p = *ports_[port];
    WalkRequest r{va, now + 1, std::move(cb), token};
    if (bspStagingActive()) {
        panic_if(!p.staged.push(r),
                 "PTW '%s' port '%s': staging ring overflow",
                 name().c_str(), p.label.c_str());
        detail::noteStagedEvent();
        return;
    }
    p.queue.push_back(std::move(r));
}

void
Ptw::issueLevel(Tick now)
{
    MemRequest req;
    req.paddr = alignDown(walkPlan_.pteAddr[level_], wordBytes);
    req.size = wordBytes;
    req.op = Op::Read;
    req.tag = level_;
    if (port_->canSend(req)) {
        port_->send(req, now);
        ++pteFetches_;
        awaitingResponse_ = true;
    }
}

void
Ptw::finishWalk(bool valid, Addr pa, unsigned page_bits, Tick now)
{
    if (valid) {
        l2Tlb_.insert(current_.va, pa, page_bits);
    }
    pendingCallbacks_.push_back({now + 1, valid, current_.va, pa,
                                 page_bits, std::move(current_.cb),
                                 current_.token, currentPort_});
    walking_ = false;
    awaitingResponse_ = false;
}

void
Ptw::onResponse(const MemResponse &resp, Tick now)
{
    pokeWakeup();
    panic_if(!walking_ || !awaitingResponse_,
             "PTW response without a walk in progress");
    panic_if(resp.req.tag != level_, "PTW response level mismatch");
    awaitingResponse_ = false;
    ++level_;
    if (level_ >= walkPlan_.levels) {
        finishWalk(walkPlan_.valid, walkPlan_.pa, walkPlan_.pageBits,
                   now);
    }
}

void
Ptw::tick(Tick now)
{
    // Fire due callbacks; completions whose requester is being
    // evaluated in a foreign partition right now are deferred to
    // bspCommit (same-cycle delivery either way).
    while (!pendingCallbacks_.empty() &&
           pendingCallbacks_.front().readyAt <= now) {
        PendingCallback pc = std::move(pendingCallbacks_.front());
        pendingCallbacks_.pop_front();
        const Clocked *owner = ports_[pc.port]->owner;
        if (owner != nullptr && owner->bspStagingActive()) {
            panic_if(!stagedCallbacks_.push(pc),
                     "PTW '%s': callback staging ring overflow",
                     name().c_str());
            detail::noteStagedEvent();
        } else {
            pc.cb(pc.valid, pc.va, pc.pa, pc.pageBits);
        }
    }

    if (walking_) {
        if (!awaitingResponse_ && level_ < walkPlan_.levels) {
            issueLevel(now); // Retry if the port was full last cycle.
        }
        return;
    }

    // Start at most one queued walk: oldest arrival wins, same-cycle
    // arrivals break by port id. Both keys are placement-independent,
    // which is what keeps fine partitionings bit-identical.
    unsigned best = ~0u;
    Tick best_at = maxTick;
    for (unsigned i = 0; i < ports_.size(); ++i) {
        const auto &q = ports_[i]->queue;
        if (!q.empty() && q.front().arriveAt <= now &&
            q.front().arriveAt < best_at) {
            best = i;
            best_at = q.front().arriveAt;
        }
    }
    if (best == ~0u) {
        return;
    }

    Port &p = *ports_[best];
    current_ = std::move(p.queue.front());
    currentPort_ = best;
    p.queue.pop_front();
    if (const auto hit = l2Tlb_.lookupEntry(current_.va)) {
        ++l2Hits_;
        pendingCallbacks_.push_back({now + params_.l2TlbLatency, true,
                                     current_.va, hit->first,
                                     hit->second,
                                     std::move(current_.cb),
                                     current_.token, currentPort_});
        return;
    }
    ++walks_;
    DPRINTF(now, "PTW", "%s: walk va=%#llx", name().c_str(),
            (unsigned long long)current_.va);
    walkPlan_ = pageTable_->walk(current_.va);
    level_ = 0;
    walking_ = true;
    issueLevel(now);
}

void
Ptw::bspCommit(Tick now)
{
    (void)now;
    // Replay cross-partition walk requests. Each ring holds one
    // requester's issues in order; the arriveAt latch already carries
    // the issue cycle, so replay order across ports is immaterial.
    for (auto &pp : ports_) {
        WalkRequest r;
        while (pp->staged.pop(r)) {
            pokeWakeup();
            panic_if(pp->queue.size() >= params_.queueDepth,
                     "PTW '%s' port '%s': queue overflow at commit",
                     name().c_str(), pp->label.c_str());
            pp->queue.push_back(std::move(r));
        }
    }
    PendingCallback pc;
    while (stagedCallbacks_.pop(pc)) {
        pc.cb(pc.valid, pc.va, pc.pa, pc.pageBits);
    }
}

void
Ptw::bspPublish()
{
    for (auto &pp : ports_) {
        pp->publishedSize = pp->queue.size();
    }
}

bool
Ptw::anyQueued() const
{
    for (const auto &pp : ports_) {
        if (!pp->queue.empty()) {
            return true;
        }
    }
    return false;
}

bool
Ptw::busy() const
{
    return walking_ || !pendingCallbacks_.empty() || anyQueued();
}

Tick
Ptw::nextWakeup(Tick now) const
{
    Tick next = maxTick;
    if (!pendingCallbacks_.empty()) {
        next = pendingCallbacks_.front().readyAt;
    }
    if (walking_) {
        if (!awaitingResponse_ && level_ < walkPlan_.levels) {
            return now; // Port-full retry of the current level.
        }
        return next; // Waiting on a PTE fetch response.
    }
    for (const auto &pp : ports_) {
        if (!pp->queue.empty()) {
            next = std::min(next,
                            std::max(pp->queue.front().arriveAt, now));
        }
    }
    return next;
}

CycleClass
Ptw::cycleClass(Tick now) const
{
    (void)now;
    if (!busy()) {
        return CycleClass::Idle;
    }
    if (walking_) {
        if (awaitingResponse_) {
            return CycleClass::StallDram; // PTE fetch in flight.
        }
        if (level_ < walkPlan_.levels) {
            MemRequest probe;
            probe.size = wordBytes;
            return port_->canSend(probe) ? CycleClass::Busy
                                         : CycleClass::StallBus;
        }
    }
    // Latching or starting a queued walk, or delivering completion
    // callbacks after their modeled latency: the walker itself is
    // doing the work.
    return CycleClass::Busy;
}

void
Ptw::setPageTable(const PageTable &page_table)
{
    panic_if(walking_ || anyQueued() || !pendingCallbacks_.empty(),
             "ptw retargeted with a walk in flight");
    pageTable_ = &page_table;
}

Ptw::WalkCallback
Ptw::resolveCallback(const std::string &owner, std::uint64_t token,
                     const std::string &origin) const
{
    fatal_if(!resolver_,
             "checkpoint '%s': PTW '%s' has in-flight walks but no "
             "callback resolver is installed",
             origin.c_str(), name().c_str());
    WalkCallback cb = resolver_(owner, token);
    fatal_if(!cb,
             "checkpoint '%s': PTW '%s' cannot re-create the walk "
             "callback for owner '%s' token %llu",
             origin.c_str(), name().c_str(), owner.c_str(),
             (unsigned long long)token);
    return cb;
}

void
Ptw::save(checkpoint::Serializer &ser) const
{
    ser.putU64(ports_.size());
    for (const auto &pp : ports_) {
        panic_if(!pp->staged.empty(),
                 "PTW '%s': checkpoint with staged walk requests",
                 name().c_str());
        panic_if(!pp->queue.empty() && pp->label.empty(),
                 "PTW '%s': cannot checkpoint walk requests issued "
                 "through an unlabelled port",
                 name().c_str());
        ser.putString(pp->label);
        ser.putU64(pp->queue.size());
        for (const auto &r : pp->queue) {
            ser.putU64(r.va);
            ser.putU64(r.arriveAt);
            ser.putU64(r.token);
        }
    }
    panic_if(!stagedCallbacks_.empty(),
             "PTW '%s': checkpoint with staged walk callbacks",
             name().c_str());
    ser.putU64(pendingCallbacks_.size());
    for (const auto &pc : pendingCallbacks_) {
        panic_if(ports_[pc.port]->label.empty(),
                 "PTW '%s': cannot checkpoint a walk callback issued "
                 "through an unlabelled port",
                 name().c_str());
        ser.putU64(pc.readyAt);
        ser.putBool(pc.valid);
        ser.putU64(pc.va);
        ser.putU64(pc.pa);
        ser.putU64(pc.pageBits);
        ser.putU64(pc.port);
        ser.putU64(pc.token);
    }
    ser.putBool(walking_);
    ser.putBool(awaitingResponse_);
    if (walking_) {
        panic_if(ports_[currentPort_]->label.empty(),
                 "PTW '%s': cannot checkpoint the current walk: it was "
                 "issued through an unlabelled port",
                 name().c_str());
        ser.putU64(current_.va);
        ser.putU64(currentPort_);
        ser.putU64(current_.token);
        ser.putBool(walkPlan_.valid);
        ser.putU64(walkPlan_.pa);
        for (const Addr a : walkPlan_.pteAddr) {
            ser.putU64(a);
        }
        ser.putU64(walkPlan_.levels);
        ser.putU64(walkPlan_.pageBits);
        ser.putU64(level_);
    }
    checkpoint::putStat(ser, walks_);
    checkpoint::putStat(ser, l2Hits_);
    checkpoint::putStat(ser, pteFetches_);
    l2Tlb_.save(ser);
}

void
Ptw::restore(checkpoint::Deserializer &des)
{
    const std::uint64_t num_ports = des.getU64();
    fatal_if(num_ports != ports_.size(),
             "checkpoint '%s': PTW '%s' has %zu requester ports, "
             "checkpoint has %llu",
             des.origin().c_str(), name().c_str(), ports_.size(),
             (unsigned long long)num_ports);
    for (auto &pp : ports_) {
        const std::string label = des.getString();
        fatal_if(label != pp->label,
                 "checkpoint '%s': PTW '%s' port label mismatch "
                 "('%s' vs '%s')",
                 des.origin().c_str(), name().c_str(), label.c_str(),
                 pp->label.c_str());
        pp->queue.clear();
        pp->publishedSize = 0;
        const std::uint64_t num_queued = des.getU64();
        for (std::uint64_t i = 0; i < num_queued; ++i) {
            WalkRequest r;
            r.va = des.getU64();
            r.arriveAt = des.getU64();
            r.token = des.getU64();
            r.cb = resolveCallback(pp->label, r.token, des.origin());
            pp->queue.push_back(std::move(r));
        }
    }
    pendingCallbacks_.clear();
    const std::uint64_t num_pending = des.getU64();
    for (std::uint64_t i = 0; i < num_pending; ++i) {
        PendingCallback pc;
        pc.readyAt = des.getU64();
        pc.valid = des.getBool();
        pc.va = des.getU64();
        pc.pa = des.getU64();
        pc.pageBits = unsigned(des.getU64());
        pc.port = unsigned(des.getU64());
        pc.token = des.getU64();
        fatal_if(pc.port >= ports_.size(),
                 "checkpoint '%s': PTW '%s' callback references "
                 "port %u of %zu",
                 des.origin().c_str(), name().c_str(), pc.port,
                 ports_.size());
        pc.cb = resolveCallback(ports_[pc.port]->label, pc.token,
                                des.origin());
        pendingCallbacks_.push_back(std::move(pc));
    }
    walking_ = des.getBool();
    awaitingResponse_ = des.getBool();
    current_ = {};
    currentPort_ = 0;
    walkPlan_ = {};
    level_ = 0;
    if (walking_) {
        current_.va = des.getU64();
        currentPort_ = unsigned(des.getU64());
        current_.token = des.getU64();
        fatal_if(currentPort_ >= ports_.size(),
                 "checkpoint '%s': PTW '%s' current walk references "
                 "port %u of %zu",
                 des.origin().c_str(), name().c_str(), currentPort_,
                 ports_.size());
        current_.cb = resolveCallback(ports_[currentPort_]->label,
                                      current_.token, des.origin());
        walkPlan_.valid = des.getBool();
        walkPlan_.pa = des.getU64();
        for (auto &a : walkPlan_.pteAddr) {
            a = des.getU64();
        }
        walkPlan_.levels = unsigned(des.getU64());
        walkPlan_.pageBits = unsigned(des.getU64());
        level_ = unsigned(des.getU64());
    }
    checkpoint::getStat(des, walks_);
    checkpoint::getStat(des, l2Hits_);
    checkpoint::getStat(des, pteFetches_);
    l2Tlb_.restore(des);
    bspPublish(); // Rebuild the foreign-partition occupancy snapshot.
}

void
Ptw::resetStats()
{
    walks_.reset();
    l2Hits_.reset();
    pteFetches_.reset();
    l2Tlb_.resetStats();
}

} // namespace hwgc::mem
