file(REMOVE_RECURSE
  "CMakeFiles/test_lab.dir/test_lab.cc.o"
  "CMakeFiles/test_lab.dir/test_lab.cc.o.d"
  "test_lab"
  "test_lab.pdb"
  "test_lab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
