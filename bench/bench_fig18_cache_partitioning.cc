/**
 * @file
 * Fig 18 — traversal-unit memory requests under the shared-cache
 * design vs the partitioned design.
 *
 * The paper: in the shared design "2/3 of requests to the cache are
 * from the page-table walker ... effectively drowning out requests by
 * other units"; after partitioning, "marker and tracer now dominate"
 * the requests that reach the memory system.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

namespace
{

void
printShare(const char *label, std::uint64_t value, std::uint64_t total)
{
    std::printf("  %-12s %12llu  (%5.1f%%)\n", label,
                (unsigned long long)value,
                total > 0 ? 100.0 * double(value) / double(total) : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 18: shared vs partitioned unit caches",
                  "PTW dominates the shared cache; partitioning fixes it");

    const auto profile = workload::dacapoProfile("avrora");

    // (a) The original shared 16 KiB cache design.
    driver::LabConfig shared_config;
    shared_config.hwgc.sharedCache = true;
    shared_config.runSw = false;
    driver::GcLab shared_lab(profile, shared_config);
    shared_lab.run();
    auto *cache = shared_lab.device().sharedCache();

    std::printf("\n  (a) Shared 16 KiB cache: requests by source\n");
    std::uint64_t total = 0;
    for (unsigned i = 0; i < cache->numPorts(); ++i) {
        total += cache->portRequests(i);
    }
    for (unsigned i = 0; i < cache->numPorts(); ++i) {
        printShare(cache->portLabel(i).c_str(), cache->portRequests(i),
                   total);
    }
    const double shared_mark =
        bench::msFromCycles(shared_lab.avgHwMarkCycles());

    // (b) The partitioned design: requests reaching the memory system.
    driver::LabConfig part_config;
    part_config.runSw = false;
    driver::GcLab part_lab(profile, part_config);
    part_lab.run();
    auto &bus = part_lab.device().bus();

    std::printf("\n  (b) Partitioned: memory-system requests by source\n");
    total = 0;
    for (unsigned i = 0; i < bus.numClients(); ++i) {
        total += bus.clientRequests(i);
    }
    for (unsigned i = 0; i < bus.numClients(); ++i) {
        printShare(bus.clientLabel(i).c_str(), bus.clientRequests(i),
                   total);
    }
    const double part_mark =
        bench::msFromCycles(part_lab.avgHwMarkCycles());

    std::printf("\n  mark time: shared %.3f ms, partitioned %.3f ms "
                "(%.2fx better)\n",
                shared_mark, part_mark, shared_mark / part_mark);
    return 0;
}
