/**
 * @file
 * Fig 19 — mark-queue size trade-offs: spilled memory requests and
 * mark time across queue sizes, for tracer-queue sizes 128 and 8 and
 * with reference compression.
 *
 * The paper: spilling shrinks with queue size but "accounts for only
 * ~2% of memory requests"; overall mark performance is almost flat
 * ("we can therefore make the queue very small (e.g., 2 KB) without
 * sacrificing performance"); compression "reduces spilling by a
 * factor of 2".
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

namespace
{

struct Variant
{
    const char *label;
    unsigned tracerQueue;
    bool compress;
};

} // namespace

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 19: mark queue size trade-offs",
                  "spilling ~2% of requests; performance flat; "
                  "compression halves spilling");

    const auto profile = workload::dacapoProfile("avrora");
    // Paper x-axis: 2, 4, 18, 130 KB (sizes include inQ/outQ; one
    // uncompressed entry is 8 bytes).
    const std::vector<std::pair<const char *, unsigned>> sizes = {
        {"2KB", 128}, {"4KB", 384}, {"18KB", 2176}, {"130KB", 16512},
    };
    const std::vector<Variant> variants = {
        {"TQ=128", 128, false},
        {"TQ=8", 8, false},
        {"Comp.", 128, true},
    };

    for (const auto &variant : variants) {
        std::printf("\n  series %s\n", variant.label);
        std::printf("  %-7s %14s %14s %12s %10s\n", "size",
                    "spill reqs", "total reqs", "spill share",
                    "mark time");
        for (const auto &[label, entries] : sizes) {
            driver::LabConfig config;
            config.runSw = false;
            config.hwgc.markQueueEntries = entries;
            config.hwgc.tracerQueueEntries = variant.tracerQueue;
            config.hwgc.compressRefs = variant.compress;
            driver::GcLab lab(profile, config);
            lab.run(2); // Capped pauses: design-space sweep.

            std::uint64_t spill = 0, total = 0;
            double mark_cycles = 0.0;
            for (const auto &r : lab.results()) {
                spill += r.hw.spillWrites + r.hw.spillReads;
                total += r.hw.dramReads + r.hw.dramWrites;
                mark_cycles += double(r.hwMarkCycles);
            }
            mark_cycles /= double(lab.results().size());
            std::printf("  %-7s %14llu %14llu %11.2f%% %7.3f ms\n",
                        label, (unsigned long long)spill,
                        (unsigned long long)total,
                        total > 0 ? 100.0 * double(spill) / double(total)
                                  : 0.0,
                        bench::msFromCycles(mark_cycles));
        }
    }
    return 0;
}
