/**
 * @file
 * Schedule minimization (DESIGN.md §11).
 *
 * Given a diverging schedule, shrink it to a smaller one that still
 * diverges: first truncate everything after the failing collection
 * (the prefix step), then greedily delete earlier ops chunk-by-chunk
 * (ddmin-style bisection), then halve the heap sizes while the
 * failure survives. Every probe is a full deterministic replay of a
 * candidate schedule through the same differential matrix, so the
 * minimized repro is exact, not probabilistic.
 */

#ifndef HWGC_FUZZ_SHRINK_H
#define HWGC_FUZZ_SHRINK_H

#include "fuzz/differ.h"

namespace hwgc::fuzz
{

/** Bookkeeping from one shrink run. */
struct ShrinkStats
{
    unsigned probes = 0;        //!< Candidate replays attempted.
    std::size_t originalOps = 0;
    std::size_t finalOps = 0;
    std::uint64_t originalLive = 0;
    std::uint64_t finalLive = 0;
};

/**
 * Minimizes @p schedule, which must diverge under @p options (the
 * caller already observed @p failure from it). Probes are bounded
 * (~30 replays) and artifact writing is suppressed during probing;
 * the returned schedule is guaranteed to still diverge.
 */
Schedule shrink(const Schedule &schedule, const FuzzOptions &options,
                const FuzzResult &failure,
                ShrinkStats *stats = nullptr);

} // namespace hwgc::fuzz

#endif // HWGC_FUZZ_SHRINK_H
