# Empty compiler generated dependencies file for bench_fig17_ideal_memory.
# This may be replaced when dependencies are built.
