file(REMOVE_RECURSE
  "libhwgc_gc.a"
)
