/**
 * @file
 * End-to-end smoke: both collectors on a small profile, oracle-
 * verified, with identical results.
 */

#include <gtest/gtest.h>

#include "driver/gc_lab.h"
#include "gc/verifier.h"

namespace hwgc
{
namespace
{

TEST(Smoke, BothCollectorsAgreeAndVerify)
{
    driver::LabConfig config;
    config.verify = true;
    driver::GcLab lab(workload::smokeProfile(), config);
    const auto &results = lab.run();
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_GT(r.swMarkCycles, 0u);
        EXPECT_GT(r.swSweepCycles, 0u);
        EXPECT_GT(r.hwMarkCycles, 0u);
        EXPECT_GT(r.hwSweepCycles, 0u);
        EXPECT_GT(r.objectsMarked, 0u);
    }
}

TEST(Smoke, HwIsFasterThanSwOnMark)
{
    driver::GcLab lab(workload::smokeProfile());
    lab.run();
    EXPECT_LT(lab.avgHwMarkCycles(), lab.avgSwMarkCycles());
}

} // namespace
} // namespace hwgc
