# Empty compiler generated dependencies file for hwgc_driver.
# This may be replaced when dependencies are built.
