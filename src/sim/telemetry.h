/**
 * @file
 * The unified telemetry layer (DESIGN.md §7).
 *
 * Three cooperating pieces turn the simulator's per-component
 * stats::Groups into machine-readable output:
 *
 *  - StatsRegistry: a process-wide hierarchy of stats::Groups keyed by
 *    dotted path ("system.hwgc0.marker"). Components register at
 *    construction and retire their final values at destruction, so a
 *    JSON export covers every component that ever lived, regardless
 *    of C++ destruction order. Supports periodic interval snapshots
 *    with delta semantics for plotting long runs over time.
 *
 *  - TraceWriter: a streaming Chrome trace-event (chrome://tracing /
 *    Perfetto) emitter. GC phase spans, per-component busy/idle
 *    activity spans and counter tracks all land on one timeline whose
 *    timebase is simulated cycles (1 cycle = 1 ns at the 1 GHz core
 *    clock, displayed as microseconds).
 *
 *  - SystemTracer: a KernelObserver gluing the two to the simulation
 *    kernel — it derives activity spans from which components the
 *    event kernel actually ticked (busy() in dense mode), samples
 *    registered counters, and paces registry snapshots.
 *
 * Everything is observational: enabling any of it must not change
 * simulated cycles or statistics (tests/test_telemetry.cc runs an
 * A/B to enforce this), and when disabled the only residual cost is a
 * null-pointer compare per executed kernel cycle, mirroring the
 * DPRINTF anyEnabled() guard.
 */

#ifndef HWGC_SIM_TELEMETRY_H
#define HWGC_SIM_TELEMETRY_H

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/clocked.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hwgc::telemetry
{

/**
 * JSON string escaping shared by every JSON emitter in the tree:
 * quotes, backslashes and all control characters (bytes < 0x20 become
 * \uXXXX), so user-supplied names (partition labels, stat paths)
 * can never break an export.
 */
std::string jsonEscape(const std::string &s);

/**
 * Validated parse of a ParallelBsp worker-thread count (the
 * --host-threads= / HWGC_HOST_THREADS / HWGC_CONFIG paths). Returns
 * @p fallback with a warning on unparseable or trailing-garbage
 * input; an explicit "0" is clamped to 1 with a warning (a
 * zero-thread worker pool cannot run — omit the option entirely for
 * auto-sizing). @p source names the option in the warnings.
 */
unsigned parseHostThreads(const char *text, const char *source,
                          unsigned fallback);

/**
 * Process-wide telemetry + kernel options, settable from the CLI
 * (--stats-json=, --trace-out=, --stats-interval=, --debug-flags=,
 * --host-threads=, --host-partition=, --checkpoint-in=,
 * --checkpoint-out=, --checkpoint-at=, --profile, --watchdog-secs=,
 * --bench-out=), the environment (HWGC_STATS_JSON, HWGC_TRACE_OUT,
 * HWGC_STATS_INTERVAL, HWGC_DEBUG, HWGC_HOST_THREADS,
 * HWGC_HOST_PARTITION, HWGC_CHECKPOINT_IN, HWGC_CHECKPOINT_OUT,
 * HWGC_CHECKPOINT_AT, HWGC_PROFILE, HWGC_WATCHDOG_SECS,
 * HWGC_BENCH_OUT) or directly by tests.
 */
struct Options
{
    std::string statsJson;  //!< Stats JSON path ("" off, "-" stdout).
    std::string traceOut;   //!< Chrome trace path ("" off).
    Tick statsInterval = 0; //!< Snapshot/counter period (0 off).

    /** @name Checkpointing (see sim/checkpoint.h, DESIGN.md §9) @{ */

    /** Checkpoint to restore when the device is configured ("" off). */
    std::string checkpointIn;

    /**
     * Checkpoint file to write ("" off). Arming this also installs a
     * crash hook: on panic()/fatal() the device writes
     * "<path>.crash.<pid>" plus a "<path>.crash.<pid>.stats.json"
     * registry dump for post-mortem inspection
     * (examples/heap_inspector). The pid suffix keeps concurrent
     * workers' artifacts collision-free.
     */
    std::string checkpointOut;

    /**
     * Device cycle at which to write the checkpoint. 0 means "after
     * every completed GC pause" (the warmup-reuse mode: the file
     * always holds the latest post-sweep state).
     */
    Tick checkpointAt = 0;
    /** @} */

    /**
     * ParallelBsp worker threads (0 = one per hardware core). Applied
     * by HwgcDevice when HwgcConfig::hostThreads is 0; simulated
     * results are bit-identical for every value, only host wall-clock
     * changes.
     */
    unsigned hostThreads = 0;

    /**
     * Simulation kernel override: "", "dense", "event" or "parallel"
     * (--kernel= / HWGC_KERNEL). "" keeps each driver's configured
     * HwgcConfig::kernel. All three kernels are bit-identical in
     * simulated cycles and statistics; this picks the host execution
     * strategy for binaries whose config the user cannot reach
     * (examples, benches).
     */
    std::string kernel;

    /**
     * ParallelBsp partition scheme: "", "fine", "cost" or
     * "name=P[,name=P...]" (see HwgcConfig::hostPartition).
     */
    std::string hostPartition;

    /**
     * ParallelBsp superstep batch cap (see HwgcConfig::superstepMax).
     * 0 leaves batches bounded only by the no-cross-edge proof; 1
     * disables batching. Host-only knob.
     */
    unsigned superstepMax = 0;

    /**
     * Cycle-accounting profiler (DESIGN.md §10): every component
     * classifies each executed cycle (busy / stall cause / idle), and
     * the bottleneck report lands in the stats JSON, the trace's
     * counter tracks, and heap_inspector --profile. Observational:
     * simulated cycles and core statistics are bit-identical either
     * way (tests/test_profiler.cc).
     */
    bool profile = false;

    /**
     * Progress watchdog: if a single System::run*() call makes no
     * forward progress for this many host seconds, dump the live
     * bottleneck report + stats JSON to stderr and abort (0 off).
     * Catches wedged simulations — a deadlocked model otherwise spins
     * silently forever.
     */
    double watchdogSecs = 0.0;

    /**
     * Directory for canonical per-bench BENCH_<name>.json result
     * files ("" off). scripts/bench_compare.py diffs two such
     * directories; bench/baseline/ holds the committed reference.
     */
    std::string benchOut;
};

/** The mutable global options instance. */
Options &options();

/** Applies HWGC_STATS_JSON / HWGC_TRACE_OUT / HWGC_STATS_INTERVAL. */
void applyEnv();

/**
 * Parses and strips the telemetry arguments from @p argv, leaving
 * everything else (including argv[0]) for the caller. Unrecognized
 * arguments are untouched. Recognized forms: --stats-json=PATH,
 * --trace-out=PATH, --stats-interval=N, --debug-flags=LIST.
 */
void parseArgs(int &argc, char **argv);

/** Run metadata embedded in every JSON export. */
struct RunMetadata
{
    std::string binary;       //!< argv[0] (or a caller-chosen name).
    std::string kernel;       //!< "event" / "dense" / "".
    std::string config;       //!< Free-form configuration summary.
    std::uint64_t seed = 0;
    std::uint64_t simCycles = 0;
    double hostSeconds = 0.0;
    /** Additional key/value pairs, exported verbatim. */
    std::vector<std::pair<std::string, std::string>> extra;
};

/**
 * The process-wide hierarchical statistics registry.
 *
 * Paths are dotted ("system.hwgc0.marker.tlb"); add() uniquifies a
 * colliding path by appending "#N". remove() retires the group's
 * *values* (not the pointer) so exports after a component's death
 * still cover it.
 */
class StatsRegistry
{
  public:
    static StatsRegistry &global();

    /**
     * Registers @p group under @p path (uniquified against *live*
     * groups on collision). A retired group at the chosen path is
     * superseded — its stale values drop out of future exports —
     * which is what device churn wants: the slot's current occupant
     * represents the path, and re-registering does not grow the
     * export or shift the path with an ever-increasing "#N" suffix.
     * @return The path actually used — pass it to remove().
     */
    std::string add(const std::string &path, const stats::Group *group);

    /**
     * Unregisters @p path, retiring the group's current values. Also
     * drops the path's interval-delta baselines, so a later
     * re-registration at the same path starts its deltas from zero
     * instead of inheriting the dead component's running totals
     * (which rendered as a large negative delta).
     */
    void remove(const std::string &path);

    /**
     * Reserves a fresh instance prefix: "system.hwgc" becomes
     * "system.hwgc0", then "system.hwgc1", ... Prefixes never repeat
     * within a process, so two live devices cannot collide.
     */
    std::string uniquePrefix(const std::string &base);

    /**
     * Claims the *specific* prefix "<base><n>" and bumps the counter
     * past it, so later uniquePrefix() calls cannot hand it out
     * again. Checkpoint restore uses this to pin each restored
     * device to the index it had when the image was written —
     * without it the counter restarts at 0 in the new process and
     * stats paths drift between the saver and the restorer.
     */
    std::string indexedPrefix(const std::string &base, unsigned n);

    /** Live groups, sorted by path. */
    const std::map<std::string, const stats::Group *> &groups() const
    {
        return groups_;
    }

    /** Human-readable listing of every live group, sorted by path. */
    void dump(std::ostream &os) const;

    /** @name Interval snapshots (delta semantics) @{ */

    /**
     * Records one snapshot row at simulated time @p now: for every
     * registered Scalar, the delta since the previous snapshot (or
     * since registration). Only non-zero deltas are stored, so idle
     * components cost nothing. Deltas are signed — a stats reset
     * between snapshots shows up as a negative delta.
     */
    void snapshot(Tick now);

    std::size_t numSnapshots() const { return snapshots_.size(); }
    void clearSnapshots();
    /** @} */

    /**
     * Writes the full JSON export: metadata, every live and retired
     * group (scalars, vectors, histograms, time series), and the
     * interval snapshot rows.
     */
    void exportJson(std::ostream &os, const RunMetadata &meta) const;

    /** exportJson() to a file, or stdout when @p path is "-". */
    void exportJsonFile(const std::string &path,
                        const RunMetadata &meta) const;

    /** Drops retired groups and snapshots (test isolation). */
    void clearRetired();

  private:
    StatsRegistry() = default;

    /** Erases the interval-delta baselines under "<path>.". */
    void dropSnapshotBaselines(const std::string &path);

    struct SnapshotRow
    {
        Tick tick;
        std::vector<std::pair<std::string, std::int64_t>> deltas;
    };

    /** A group serialized to plain values (for retirement). */
    struct RetiredGroup
    {
        std::string json; //!< Pre-rendered group JSON object body.
    };

    std::map<std::string, const stats::Group *> groups_;
    std::map<std::string, RetiredGroup> retired_;
    std::map<std::string, unsigned> prefixCounters_;
    std::vector<SnapshotRow> snapshots_;
    std::map<std::string, std::uint64_t> snapshotPrev_;
};

/**
 * Streaming Chrome trace-event writer. Events are written as they are
 * emitted (JSON array format, loadable by chrome://tracing and
 * Perfetto); close() finalizes the array. All timestamps are in
 * simulated cycles and exported as microseconds (1 cycle = 1 ns).
 */
class TraceWriter
{
  public:
    static TraceWriter &global();

    /** Opens @p path for writing and enables the writer. */
    void open(const std::string &path);

    bool enabled() const { return out_ != nullptr; }

    /** Finalizes and closes the file; further emits are no-ops. */
    void close();

    /** A complete ("X") span on the named track. */
    void completeSpan(const std::string &track, const std::string &name,
                      Tick begin, Tick end);

    /** A counter ("C") sample; each @p name is its own track. */
    void counter(const std::string &name, Tick when, double value);

    /** An instant ("i") event on the named track. */
    void instant(const std::string &track, const std::string &name,
                 Tick when);

    std::uint64_t eventsWritten() const { return events_; }

  private:
    TraceWriter() = default;

    /** Track name -> tid, emitting thread_name metadata on first use. */
    unsigned trackId(const std::string &track);

    void emitPrefix();

    std::FILE *out_ = nullptr;
    std::string path_; //!< Open file's path (error reporting).
    std::uint64_t events_ = 0;
    std::map<std::string, unsigned> tracks_;
};

/**
 * The KernelObserver bridging a System to the telemetry sinks:
 *
 *  - activity spans: contiguous runs of executed ticks per component
 *    (gaps up to mergeGap cycles are coalesced to bound event count);
 *  - counter tracks: registered samplers evaluated every
 *    counterInterval executed cycles and at fast-forward boundaries;
 *  - registry snapshots: StatsRegistry::snapshot() paced at
 *    options().statsInterval cycles.
 *
 * The tracer only reads state through const accessors; it never calls
 * into components.
 */
class SystemTracer : public KernelObserver
{
  public:
    /**
     * @param component_names Names in System registration order
     *        (index == bit position of the activity mask).
     * @param track_prefix Prepended to every track/counter name so
     *        multiple instrumented systems stay distinguishable.
     */
    SystemTracer(std::vector<std::string> component_names,
                 std::string track_prefix);

    /** Registers a sampled counter track (absolute value). */
    void addCounter(std::string name, std::function<double()> sample);

    /**
     * Registers a rate counter: emits (cur - prev) / elapsed cycles,
     * clamped at zero (stat resets between samples read as idle).
     */
    void addRateCounter(std::string name,
                        std::function<double()> cumulative);

    // KernelObserver interface.
    void cycleExecuted(Tick now, std::uint64_t active_mask) override;
    void fastForwarded(Tick from, Tick to) override;

    /** Closes all open activity spans at @p now (phase boundaries). */
    void flush(Tick now);

  private:
    /** Activity gaps up to this many cycles merge into one span. */
    static constexpr Tick mergeGap = 32;

    struct Span
    {
        bool open = false;
        Tick start = 0;
        Tick lastActive = 0;
    };

    struct Counter
    {
        std::string name;
        std::function<double()> sample;
        bool rate = false;
        double prev = 0.0;
        Tick prevTick = 0;
    };

    void sampleCounters(Tick now);
    void maybeSample(Tick now);

    std::vector<std::string> names_;
    std::string prefix_;
    std::vector<Span> spans_;
    std::vector<Counter> counters_;
    Tick counterInterval_ = 0;
    Tick nextSample_ = 0;
    Tick snapshotInterval_ = 0;
    Tick nextSnapshot_ = 0;
};

/**
 * RAII telemetry session for bench/example main()s:
 *
 *   int main(int argc, char **argv) {
 *       telemetry::Session session(argc, argv);  // parses CLI + env
 *       ... build labs, run ...
 *       session.finish();  // export stats JSON, close the trace
 *   }
 *
 * finish() is idempotent and also runs from the destructor; calling
 * it explicitly before the simulation objects go out of scope exports
 * live values instead of retired ones (both are complete).
 */
class Session
{
  public:
    /** Parses environment and argv (stripping telemetry arguments). */
    Session(int &argc, char **argv);

    /** Environment-only variant for argument-less binaries. */
    explicit Session(std::string binary_name);

    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Metadata exported with the stats JSON; fill in what you know. */
    RunMetadata &meta() { return meta_; }

    /** Exports the stats JSON (if requested) and closes the trace. */
    void finish();

  private:
    void start();

    RunMetadata meta_;
    double startSeconds_ = 0.0;
    bool finished_ = false;
};

} // namespace hwgc::telemetry

#endif // HWGC_SIM_TELEMETRY_H
