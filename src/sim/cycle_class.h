/**
 * @file
 * The cycle-accounting taxonomy (DESIGN.md §10).
 *
 * Every Clocked component classifies each elapsed cycle into exactly
 * one of these classes, so the accounting identity
 *
 *     busy + Σ stalls + idle == total cycles
 *
 * holds per component by construction. Classification is a *pure
 * function of end-of-cycle architectural state* — never of kernel
 * internals like the active mask (whose semantics differ between the
 * dense and event kernels) — so all three kernels attribute every
 * cycle identically and enabling the profiler cannot perturb the
 * simulation.
 */

#ifndef HWGC_SIM_CYCLE_CLASS_H
#define HWGC_SIM_CYCLE_CLASS_H

#include <cstddef>

namespace hwgc
{

/** Where one component-cycle went (see file header). */
enum class CycleClass : unsigned
{
    Busy = 0,            //!< Did (or could do) observable work.
    StallDownstreamFull, //!< Output queue/buffer/consumer full.
    StallUpstreamEmpty,  //!< Ready, but the producer feeding this
                         //!< component holds/creates all its work.
    StallDram,           //!< Waiting on memory latency or bandwidth.
    StallBus,            //!< Interconnect port back-pressure.
    StallPtw,            //!< Waiting on an address translation.
    StallMarkbit,        //!< Mark-bit status-word round trips (the
                         //!< traffic the mark-bit cache filters).
    StallBarrier,        //!< Pipeline-coupling serialization (the
                         //!< coupled-tracer ablation).
    Idle,                //!< No work anywhere for this component.
};

/** Number of classes (array sizing). */
inline constexpr std::size_t numCycleClasses =
    std::size_t(CycleClass::Idle) + 1;

/** Stable lower-case name ("busy", "stallDram", ...). */
inline const char *
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::Busy: return "busy";
      case CycleClass::StallDownstreamFull: return "stallDownstreamFull";
      case CycleClass::StallUpstreamEmpty: return "stallUpstreamEmpty";
      case CycleClass::StallDram: return "stallDram";
      case CycleClass::StallBus: return "stallBus";
      case CycleClass::StallPtw: return "stallPtw";
      case CycleClass::StallMarkbit: return "stallMarkbit";
      case CycleClass::StallBarrier: return "stallBarrier";
      case CycleClass::Idle: return "idle";
    }
    return "?";
}

/** True for the seven stall classes (not busy, not idle). */
inline bool
isStallClass(CycleClass c)
{
    return c != CycleClass::Busy && c != CycleClass::Idle;
}

} // namespace hwgc

#endif // HWGC_SIM_CYCLE_CLASS_H
