/**
 * @file
 * Edge-case and failure-injection tests for the whole stack: trivial
 * heaps, degenerate root sets, maximal objects, and the error paths
 * that must fail loudly rather than corrupt the heap.
 */

#include <gtest/gtest.h>

#include "core/hwgc_device.h"
#include "cpu/core_model.h"
#include "gc/sw_collector.h"
#include "gc/verifier.h"
#include "mem/dram.h"
#include "runtime/heap_layout.h"

namespace hwgc
{
namespace
{

using runtime::HeapLayout;
using runtime::ObjRef;
using runtime::Space;
using runtime::StatusWord;

struct MiniRig
{
    MiniRig() : heap(mem) {}

    void
    runHw()
    {
        heap.publishRoots();
        device = std::make_unique<core::HwgcDevice>(
            mem, heap.pageTable(), core::HwgcConfig{});
        device->configure(heap);
        device->collect();
    }

    void
    runSw()
    {
        heap.publishRoots();
        dram = std::make_unique<mem::Dram>("d", mem::DramParams{}, mem);
        core = std::make_unique<cpu::CoreModel>(
            "c", cpu::CoreParams{}, mem, heap.pageTable(), *dram);
        collector = std::make_unique<gc::SwCollector>(heap, *core);
        collector->collect();
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    std::unique_ptr<core::HwgcDevice> device;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<cpu::CoreModel> core;
    std::unique_ptr<gc::SwCollector> collector;
};

TEST(EdgeCases, EmptyHeapNoRoots)
{
    MiniRig rig;
    rig.heap.allocate(0, 0); // One garbage object, zero roots.
    rig.runHw();
    EXPECT_EQ(rig.heap.countMarked(), 0u);
    const auto swept = gc::verifySweptHeap(rig.heap);
    EXPECT_TRUE(swept.ok) << swept.error;
    EXPECT_EQ(rig.heap.onAfterSweep(), 1u);
}

TEST(EdgeCases, SingleRootObject)
{
    MiniRig rig;
    const ObjRef obj = rig.heap.allocate(0, 2);
    rig.heap.addRoot(obj);
    rig.runHw();
    EXPECT_EQ(rig.heap.countMarked(), 1u);
    EXPECT_EQ(rig.heap.onAfterSweep(), 0u);
}

TEST(EdgeCases, DuplicateRoots)
{
    MiniRig rig;
    const ObjRef obj = rig.heap.allocate(1, 0);
    for (int i = 0; i < 9; ++i) {
        rig.heap.addRoot(obj); // Root count not a multiple of 8.
    }
    rig.runHw();
    EXPECT_EQ(rig.heap.countMarked(), 1u);
}

TEST(EdgeCases, NullRootsInTheRegion)
{
    MiniRig rig;
    const ObjRef obj = rig.heap.allocate(0, 0);
    rig.heap.addRoot(runtime::nullRef);
    rig.heap.addRoot(obj);
    rig.heap.addRoot(runtime::nullRef);
    rig.runHw();
    EXPECT_EQ(rig.heap.countMarked(), 1u);
}

TEST(EdgeCases, SelfReferencingObject)
{
    MiniRig rig;
    const ObjRef obj = rig.heap.allocate(1, 0);
    rig.heap.setRef(obj, 0, obj);
    rig.heap.addRoot(obj);
    rig.runHw();
    EXPECT_EQ(rig.heap.countMarked(), 1u);
}

TEST(EdgeCases, MaximalArrayInLos)
{
    MiniRig rig;
    // Bigger than the largest size class: lands in the LOS but is
    // traced like any object.
    const ObjRef big = rig.heap.allocate(3000, 0, Space::MarkSweep,
                                         0, true);
    EXPECT_GE(big, HeapLayout::losBase);
    const ObjRef child = rig.heap.allocate(0, 0);
    rig.heap.setRef(big, 2999, child);
    rig.heap.addRoot(big);
    rig.runHw();
    EXPECT_TRUE(StatusWord::marked(rig.heap.read(child)));
}

TEST(EdgeCases, DeepChainDoesNotOverflowAnything)
{
    MiniRig rig;
    ObjRef head = rig.heap.allocate(1, 0);
    rig.heap.addRoot(head);
    ObjRef tail = head;
    for (int i = 0; i < 20000; ++i) {
        const ObjRef next = rig.heap.allocate(1, 0);
        rig.heap.setRef(tail, 0, next);
        tail = next;
    }
    rig.runHw();
    EXPECT_EQ(rig.heap.countMarked(), 20001u);
    const auto marks = gc::verifyMarks(rig.heap);
    EXPECT_TRUE(marks.ok) << marks.error;
}

TEST(EdgeCases, WideFanoutObject)
{
    MiniRig rig;
    const unsigned fan = 900;
    const ObjRef hub = rig.heap.allocate(fan, 0, Space::MarkSweep, 0,
                                         true);
    for (unsigned i = 0; i < fan; ++i) {
        rig.heap.setRef(hub, i, rig.heap.allocate(0, 0));
    }
    rig.heap.addRoot(hub);
    rig.runHw();
    EXPECT_EQ(rig.heap.countMarked(), fan + 1u);
}

TEST(EdgeCases, SwHandlesTheSameEdgeCases)
{
    MiniRig rig;
    const ObjRef obj = rig.heap.allocate(1, 0);
    rig.heap.setRef(obj, 0, obj);
    rig.heap.addRoot(obj);
    rig.heap.addRoot(runtime::nullRef);
    rig.runSw();
    EXPECT_EQ(rig.heap.countMarked(), 1u);
    const auto swept = gc::verifySweptHeap(rig.heap);
    EXPECT_TRUE(swept.ok) << swept.error;
}

TEST(EdgeCases, RerunAfterFullReclaim)
{
    // Collect a heap down to nothing, then allocate and collect again.
    MiniRig rig;
    rig.heap.allocate(2, 2);
    rig.heap.allocate(0, 1);
    rig.runHw();
    EXPECT_EQ(rig.heap.onAfterSweep(), 2u);

    const ObjRef obj = rig.heap.allocate(0, 0);
    rig.heap.addRoot(obj);
    rig.heap.clearAllMarks();
    rig.heap.publishRoots();
    rig.device->resetPhaseState();
    rig.device->resetStats();
    rig.device->configure(rig.heap);
    rig.device->collect();
    EXPECT_EQ(rig.heap.countMarked(), 1u);
}

TEST(EdgeCasesDeathTest, UnmappedReferenceIsFatal)
{
    // A corrupted reference outside any mapped region must be caught
    // by the unit's PTW, not silently mistranslated.
    MiniRig rig;
    const ObjRef obj = rig.heap.allocate(1, 0);
    rig.heap.setRef(obj, 0, 0x7abc'def0);
    rig.heap.addRoot(obj);
    rig.heap.publishRoots();
    core::HwgcDevice device(rig.mem, rig.heap.pageTable(),
                            core::HwgcConfig{});
    device.configure(rig.heap);
    EXPECT_EXIT(device.runMark(), testing::ExitedWithCode(1),
                "unmapped");
}

TEST(EdgeCasesDeathTest, MarkingAFreeCellIsFatal)
{
    // A dangling reference to a freed cell must trip the marker's
    // live-header check.
    MiniRig rig;
    const ObjRef holder = rig.heap.allocate(1, 0);
    const ObjRef victim = rig.heap.allocate(0, 0);
    rig.heap.setRef(holder, 0, victim);
    rig.heap.addRoot(holder);
    // Corrupt: free the victim's cell behind the runtime's back.
    rig.heap.write(runtime::ObjectModel::cellFromRef(victim, 0),
                   runtime::CellStart::makeFree(0));
    rig.heap.write(victim, 0); // Dead status word.
    rig.heap.publishRoots();
    core::HwgcDevice device(rig.mem, rig.heap.pageTable(),
                            core::HwgcConfig{});
    device.configure(rig.heap);
    EXPECT_DEATH(device.runMark(), "non-live header");
}

} // namespace
} // namespace hwgc
