# Empty compiler generated dependencies file for bench_fig20_sweeper_scaling.
# This may be replaced when dependencies are built.
