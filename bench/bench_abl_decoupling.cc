/**
 * @file
 * Ablation — the traversal unit's pipelining ideas (paper §IV-A
 * ideas II and III): decoupled marker/tracer vs a coupled engine, and
 * untagged tracing vs a tag-slot-limited tracer.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Ablation: decoupling and untagged tracing",
                  "both ideas are needed for the unit's bandwidth");

    std::printf("  %-10s %12s %12s %12s %12s\n", "benchmark",
                "baseline", "coupled", "tagged(4)", "tagged(16)");
    for (const auto &profile : workload::dacapoSuite()) {
        auto run = [&profile](bool decoupled, unsigned tag_slots) {
            driver::LabConfig config;
            config.runSw = false;
            config.hwgc.decoupledTracer = decoupled;
            config.hwgc.tracerTagSlots = tag_slots;
            driver::GcLab lab(profile, config);
            lab.run(2);
            return bench::msFromCycles(lab.avgHwMarkCycles());
        };
        const double base = run(true, 0);
        const double coupled = run(false, 0);
        const double tagged4 = run(true, 4);
        const double tagged16 = run(true, 16);
        std::printf("  %-10s %9.3f ms %9.3f ms %9.3f ms %9.3f ms\n",
                    profile.name.c_str(), base, coupled, tagged4,
                    tagged16);
        std::printf("  %-10s %12s %10.2fx %10.2fx %10.2fx\n", "", "",
                    coupled / base, tagged4 / base, tagged16 / base);
    }
    return 0;
}
