file(REMOVE_RECURSE
  "CMakeFiles/test_sw_collector.dir/test_sw_collector.cc.o"
  "CMakeFiles/test_sw_collector.dir/test_sw_collector.cc.o.d"
  "test_sw_collector"
  "test_sw_collector.pdb"
  "test_sw_collector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sw_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
