file(REMOVE_RECURSE
  "CMakeFiles/hwgc_workload.dir/dacapo.cc.o"
  "CMakeFiles/hwgc_workload.dir/dacapo.cc.o.d"
  "CMakeFiles/hwgc_workload.dir/graph_gen.cc.o"
  "CMakeFiles/hwgc_workload.dir/graph_gen.cc.o.d"
  "CMakeFiles/hwgc_workload.dir/latency.cc.o"
  "CMakeFiles/hwgc_workload.dir/latency.cc.o.d"
  "libhwgc_workload.a"
  "libhwgc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
