/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All randomness in the repository flows from explicitly named 64-bit
 * seeds through this generator (SplitMix64 for seeding, xoshiro256**
 * for the stream), so every experiment is bit-reproducible across
 * platforms — no std::random_device, no wall clock.
 */

#ifndef HWGC_SIM_RANDOM_H
#define HWGC_SIM_RANDOM_H

#include <cstdint>
#include <vector>

#include "sim/logging.h"

namespace hwgc
{

/** A small, fast, fully deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seeds the stream from a single 64-bit value via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Returns the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Debiased via rejection from the top of the range.
        const std::uint64_t limit = ~0ULL - (~0ULL % bound);
        std::uint64_t v;
        do {
            v = next();
        } while (v > limit);
        return v % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(lo > hi, "Rng::range: lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish discrete sample in [0, max] with mean roughly
     * @p mean; used for reference-degree and payload-size draws.
     */
    std::uint64_t
    geometric(double mean, std::uint64_t max)
    {
        if (mean <= 0.0) {
            return 0;
        }
        const double p = 1.0 / (mean + 1.0);
        std::uint64_t k = 0;
        while (k < max && !chance(p)) {
            ++k;
        }
        return k;
    }

    /**
     * Zipf-like sample over [0, n) with exponent @p s, computed by
     * inverse transform over a precomputed CDF owned by the caller.
     */
    std::size_t
    indexFromCdf(const std::vector<double> &cdf)
    {
        panic_if(cdf.empty(), "Rng::indexFromCdf: empty CDF");
        const double u = uniform() * cdf.back();
        std::size_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf[mid] < u) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

    /** @name Checkpointing accessors for the four state words @{ */
    std::uint64_t
    stateWord(unsigned i) const
    {
        panic_if(i >= 4, "Rng::stateWord(%u)", i);
        return state_[i];
    }

    void
    setStateWord(unsigned i, std::uint64_t v)
    {
        panic_if(i >= 4, "Rng::setStateWord(%u)", i);
        state_[i] = v;
    }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace hwgc

#endif // HWGC_SIM_RANDOM_H
