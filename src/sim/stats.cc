/**
 * @file
 * Statistics dumping.
 */

#include "stats.h"

#include <algorithm>
#include <iomanip>

namespace hwgc::stats
{

void
Group::dump(std::ostream &os) const
{
    os << "---------- " << name_ << " ----------\n";
    for (const auto *s : scalars_) {
        os << std::left << std::setw(40) << s->name() << " "
           << s->value() << "\n";
    }
    for (const auto *v : vectors_) {
        for (std::size_t i = 0; i < v->size(); ++i) {
            os << std::left << std::setw(40)
               << (v->name() + "::" + v->label(i)) << " " << v->value(i)
               << "\n";
        }
        os << std::left << std::setw(40) << (v->name() + "::total") << " "
           << v->total() << "\n";
    }
    for (const auto *h : histograms_) {
        os << std::left << std::setw(40) << (h->name() + "::count") << " "
           << h->count() << "\n";
        os << std::left << std::setw(40) << (h->name() + "::mean") << " "
           << h->mean() << "\n";
        os << std::left << std::setw(40) << (h->name() + "::min") << " "
           << h->minValue() << "\n";
        os << std::left << std::setw(40) << (h->name() + "::max") << " "
           << h->maxValue() << "\n";
    }
    for (const auto *t : timeSeries_) {
        std::uint64_t total = 0;
        std::uint64_t peak = 0;
        for (const auto v : t->buckets()) {
            total += v;
            peak = std::max(peak, v);
        }
        os << std::left << std::setw(40) << (t->name() + "::bucketWidth")
           << " " << t->bucketWidth() << "\n";
        os << std::left << std::setw(40) << (t->name() + "::buckets")
           << " " << t->buckets().size() << "\n";
        os << std::left << std::setw(40) << (t->name() + "::total") << " "
           << total << "\n";
        os << std::left << std::setw(40) << (t->name() + "::peak") << " "
           << peak << "\n";
    }
}

} // namespace hwgc::stats
