/**
 * @file
 * Unit tests for the object encoding (status words, cell-start words,
 * geometry) and the size-class table.
 */

#include <gtest/gtest.h>

#include "runtime/object_model.h"
#include "runtime/block_table.h"
#include "runtime/size_class.h"

namespace hwgc::runtime
{
namespace
{

TEST(StatusWord, RoundTrip)
{
    const Word w = StatusWord::make(13, 0x2a, false);
    EXPECT_FALSE(StatusWord::marked(w));
    EXPECT_TRUE(StatusWord::live(w));
    EXPECT_FALSE(StatusWord::isArray(w));
    EXPECT_EQ(StatusWord::numRefs(w), 13u);
    EXPECT_EQ(StatusWord::typeId(w), 0x2au);
}

TEST(StatusWord, ArrayFlagSetsMsbOfRefsField)
{
    // Paper §V-A: "for arrays, we set the MSB of these 32 bits to 1".
    const Word w = StatusWord::make(100, 1, true);
    EXPECT_TRUE(StatusWord::isArray(w));
    EXPECT_NE(w & StatusWord::arrayFlagMsb, 0u);
    EXPECT_EQ(StatusWord::numRefs(w), 100u); // Count unperturbed.
}

TEST(StatusWord, MarkViaFetchOr)
{
    Word w = StatusWord::make(5, 0, false);
    const Word old = w;
    w |= StatusWord::markBit;
    EXPECT_FALSE(StatusWord::marked(old));
    EXPECT_TRUE(StatusWord::marked(w));
    EXPECT_EQ(StatusWord::numRefs(w), 5u); // Single fetch-or keeps #REFS.
}

TEST(StatusWordDeathTest, TooManyRefs)
{
    EXPECT_DEATH(StatusWord::make(1U << 31, 0, false),
                 "too many references");
}

TEST(CellStart, LiveRoundTrip)
{
    const Word w = CellStart::makeLive(42);
    EXPECT_TRUE(CellStart::isLive(w));
    EXPECT_EQ(CellStart::numRefs(w), 42u);
}

TEST(CellStart, FreeRoundTrip)
{
    const Word w = CellStart::makeFree(0x1234'5678'9ab0);
    EXPECT_FALSE(CellStart::isLive(w));
    EXPECT_EQ(CellStart::nextFree(w), 0x1234'5678'9ab0u);
}

TEST(CellStart, NullLinkTerminatesList)
{
    const Word w = CellStart::makeFree(0);
    EXPECT_FALSE(CellStart::isLive(w));
    EXPECT_EQ(CellStart::nextFree(w), 0u);
}

TEST(CellStartDeathTest, MisalignedLink)
{
    EXPECT_DEATH(CellStart::makeFree(0x1001), "aligned");
}

TEST(ObjectModel, GeometryRoundTrip)
{
    const Addr cell = 0x1000'0000;
    for (std::uint32_t n : {0u, 1u, 7u, 100u}) {
        const ObjRef ref = ObjectModel::refFromCell(cell, n);
        EXPECT_EQ(ObjectModel::cellFromRef(ref, n), cell);
        EXPECT_EQ(ObjectModel::refsBase(ref, n),
                  ref - Addr(n) * wordBytes);
        // The reference section sits between cell start and header.
        EXPECT_EQ(ObjectModel::refsBase(ref, n), cell + wordBytes);
    }
}

TEST(ObjectModel, SlotAddresses)
{
    const ObjRef ref = ObjectModel::refFromCell(0x1000, 4);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ObjectModel::refSlotAddr(ref, 4, i),
                  0x1008 + Addr(i) * 8);
    }
    EXPECT_EQ(ObjectModel::payloadBase(ref), ref + 8);
}

TEST(ObjectModelDeathTest, SlotOutOfRange)
{
    const ObjRef ref = ObjectModel::refFromCell(0x1000, 2);
    EXPECT_DEATH(ObjectModel::refSlotAddr(ref, 2, 2), "out of range");
}

TEST(ObjectModel, SizeWords)
{
    // start word + refs + header + payload.
    EXPECT_EQ(ObjectModel::sizeWords(0, 0), 2u);
    EXPECT_EQ(ObjectModel::sizeWords(3, 5), 10u);
}

TEST(SizeClasses, Monotone)
{
    for (unsigned i = 1; i < SizeClasses::count; ++i) {
        EXPECT_GT(SizeClasses::cellBytes[i], SizeClasses::cellBytes[i - 1]);
    }
}

TEST(SizeClasses, ClassForFits)
{
    for (std::uint64_t bytes : {1ull, 16ull, 17ull, 100ull, 8192ull}) {
        const unsigned cls = SizeClasses::classFor(bytes);
        ASSERT_LT(cls, SizeClasses::count);
        EXPECT_GE(SizeClasses::bytesFor(cls), bytes);
        if (cls > 0) {
            EXPECT_LT(SizeClasses::cellBytes[cls - 1], bytes);
        }
    }
}

TEST(SizeClasses, OversizeGoesToLos)
{
    EXPECT_EQ(SizeClasses::classFor(SizeClasses::maxCellBytes + 1),
              SizeClasses::count);
}

TEST(BlockTable, GeometryRoundTrip)
{
    const Word g = BlockTableEntry::makeGeometry(192, 6);
    EXPECT_EQ(BlockTableEntry::cellBytes(g), 192u);
    EXPECT_EQ(BlockTableEntry::sizeClass(g), 6u);
}

TEST(BlockTable, SummaryRoundTrip)
{
    const Word s = BlockTableEntry::makeSummary(85, true);
    EXPECT_EQ(BlockTableEntry::freeCells(s), 85u);
    EXPECT_TRUE(BlockTableEntry::hasLive(s));
    const Word s2 = BlockTableEntry::makeSummary(0, false);
    EXPECT_EQ(BlockTableEntry::freeCells(s2), 0u);
    EXPECT_FALSE(BlockTableEntry::hasLive(s2));
}

TEST(BlockTable, EntryAddressStride)
{
    EXPECT_EQ(BlockTableEntry::addr(0x1000, 0), 0x1000u);
    EXPECT_EQ(BlockTableEntry::addr(0x1000, 1), 0x1020u);
    EXPECT_EQ(BlockTableEntry::addr(0x1000, 10), 0x1140u);
}

} // namespace
} // namespace hwgc::runtime
