file(REMOVE_RECURSE
  "CMakeFiles/hwgc_cpu.dir/core_model.cc.o"
  "CMakeFiles/hwgc_cpu.dir/core_model.cc.o.d"
  "libhwgc_cpu.a"
  "libhwgc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
