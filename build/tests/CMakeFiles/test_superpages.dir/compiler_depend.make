# Empty compiler generated dependencies file for test_superpages.
# This may be replaced when dependencies are built.
