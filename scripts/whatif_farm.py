#!/usr/bin/env python3
"""Checkpoint-fork what-if farm (DESIGN.md SS11).

Snapshot one warm heap, then fork it across a grid of accelerator
configurations in parallel worker processes: every worker restores the
same farm snapshot (fuzz_driver --farm-run), runs one measured GC
pause under its own configuration with --stats-json/--profile
telemetry, and the farm aggregates every result plus the profiler's
bottleneck attribution into a single comparison report
(report.json + report.md).

Because heap construction and warmup are paid once instead of once per
grid point, the farm's wall-clock beats the cold rerun it replaces;
--compare-cold measures that directly by also running every grid point
cold (build + warm + measure) and reporting the speedup.

Usage:
    scripts/whatif_farm.py --out-dir=/tmp/farm [--seed=42] [--jobs=8]
    scripts/whatif_farm.py --out-dir=/tmp/farm --compare-cold
    scripts/whatif_farm.py --out-dir=/tmp/farm \
        --configs 'tiny=mq=32;wide=mq=2048'
"""

import argparse
import concurrent.futures
import json
import subprocess
import sys
import time
from pathlib import Path

# The builtin grid: mark-queue capacity x MSHR budget x bandwidth cap,
# 3 x 2 x 2 = 12 design points bracketing the paper's sweeps (Fig 19
# queue sizing, Fig 16 bandwidth sensitivity).
BUILTIN_GRID = [
    (f"mq{mq}-mshr{mshrs}-{'bw' + str(bw) if bw else 'nobw'}",
     f"mq={mq},mshrs={mshrs}" + (f",bw={bw}" if bw else ""))
    for mq in (1024, 128, 32)
    for mshrs in (2, 8)
    for bw in (0, 2)
]

STALL_KEYS = ("stallDownstreamFull", "stallUpstreamEmpty", "stallDram",
              "stallBus", "stallPtw", "stallMarkbit", "stallBarrier")


def run(cmd, log_path):
    """Runs one worker, teeing stdout/stderr to a log file."""
    start = time.monotonic()
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    Path(log_path).write_text(proc.stdout)
    return proc.returncode, time.monotonic() - start


def profiler_attribution(stats_path):
    """Sums the cycle-accounting classes across every component's
    'total' vector and names the dominant stall class."""
    try:
        groups = json.loads(Path(stats_path).read_text())["groups"]
    except (OSError, ValueError, KeyError):
        return None
    classes = {}
    per_component = {}
    for path, group in groups.items():
        if ".profile." not in path:
            continue
        vec = group.get("vectors", {}).get("total")
        if not vec:
            continue
        labels = vec["labels"]
        component = path.split(".profile.", 1)[1]
        stalls = {k: v for k, v in labels.items()
                  if k in STALL_KEYS and v > 0}
        if stalls:
            top = max(stalls, key=stalls.get)
            per_component[component] = {"class": top,
                                        "cycles": stalls[top]}
        for k, v in labels.items():
            classes[k] = classes.get(k, 0) + v
    if not classes:
        return None
    stall_total = {k: classes.get(k, 0) for k in STALL_KEYS}
    top = max(stall_total, key=stall_total.get)
    return {
        "classes": classes,
        "topStallClass": top if stall_total[top] > 0 else None,
        "topStallCycles": stall_total[top],
        "perComponentTopStall": per_component,
    }


def parse_configs(spec):
    configs = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            sys.exit(f"whatif_farm: bad config entry '{entry}' "
                     "(want label=spec)")
        label, config = entry.split("=", 1)
        configs.append((label, config))
    return configs


def farm_worker(args, out_dir, snapshot, label, spec, cold):
    """Builds the command line for one grid point."""
    tag = ("cold-" if cold else "") + label
    result = out_dir / f"{tag}.json"
    cmd = [args.driver]
    if cold:
        cmd += [f"--farm-cold", f"--seed={args.seed}",
                f"--pauses={args.pauses}"]
        if args.live:
            cmd.append(f"--live={args.live}")
    else:
        cmd.append(f"--farm-run={snapshot}")
    cmd += [f"--config={spec}", f"--label={label}",
            f"--result-json={result}",
            f"--stats-json={out_dir / (tag + '.stats.json')}",
            "--profile"]
    return tag, cmd, result


def render_markdown(report):
    lines = [
        "# What-if farm report",
        "",
        f"Snapshot: seed {report['snapshot']['seed']}, "
        f"{report['snapshot']['warmPauses']} warm pauses, "
        f"{report['snapshot']['liveObjects']} live objects "
        f"({report['snapshot']['hostSeconds']:.1f} s to build once).",
        "",
        "| config | spec | GC cycles | vs best | marked | freed "
        "| top bottleneck | setup ms | pause ms |",
        "|---|---|---:|---:|---:|---:|---|---:|---:|",
    ]
    runs = sorted(report["configs"], key=lambda r: r["gcCycles"])
    best = runs[0]["gcCycles"] if runs else 1
    for r in runs:
        prof = r.get("profiler") or {}
        top = prof.get("topStallClass") or "-"
        lines.append(
            f"| {r['label']} | `{r['config']}` | {r['gcCycles']} "
            f"| {r['gcCycles'] / best:.2f}x | {r['markedCount']} "
            f"| {r['freedObjects']} | {top} "
            f"| {r['setupHostMs']:.0f} | {r['pauseHostMs']:.0f} |")
    if report.get("coldCompare"):
        cc = report["coldCompare"]
        lines += [
            "",
            f"Cold-rerun control: farm {cc['farmWallSeconds']:.1f} s "
            f"(incl. snapshot) vs cold {cc['coldWallSeconds']:.1f} s "
            f"-> {cc['speedup']:.2f}x; functional outcomes "
            + ("**identical**." if cc["functionalMatch"]
               else "**DIVERGED** (investigate!)."),
        ]
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="Fork one warm-heap snapshot across a config grid.")
    parser.add_argument("--driver",
                        default="build/examples/fuzz_driver",
                        help="fuzz_driver binary")
    parser.add_argument("--out-dir", required=True, type=Path)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--pauses", type=int, default=3)
    parser.add_argument("--live", type=int, default=0,
                        help="live-object override for the workload")
    parser.add_argument("--jobs", type=int, default=8,
                        help="parallel worker processes")
    parser.add_argument("--configs", default=None,
                        help="'label=spec;label=spec' grid override")
    parser.add_argument("--compare-cold", action="store_true",
                        help="also run every point cold and report "
                             "the farm's wall-clock speedup")
    args = parser.parse_args()

    if not Path(args.driver).exists():
        sys.exit(f"whatif_farm: driver '{args.driver}' not found "
                 "(build first, or pass --driver)")
    grid = parse_configs(args.configs) if args.configs else BUILTIN_GRID
    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)

    # Phase 1 — snapshot once.
    farm_start = time.monotonic()
    snapshot = out_dir / "warm.farm"
    snap_cmd = [args.driver, f"--farm-snapshot={snapshot}",
                f"--seed={args.seed}", f"--pauses={args.pauses}"]
    if args.live:
        snap_cmd.append(f"--live={args.live}")
    code, snap_seconds = run(snap_cmd, out_dir / "snapshot.log")
    if code != 0:
        sys.exit(f"whatif_farm: snapshot failed (rc={code}), see "
                 f"{out_dir / 'snapshot.log'}")
    print(f"snapshot: {snapshot} ({snap_seconds:.1f} s)")

    # Phase 2 — fork it across the grid in parallel workers.
    def launch(jobs):
        results = {}
        with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
            futures = {
                pool.submit(run, cmd, out_dir / f"{tag}.log"): (tag, path)
                for tag, cmd, path in jobs
            }
            for future in concurrent.futures.as_completed(futures):
                tag, path = futures[future]
                code, seconds = future.result()
                results[tag] = (code, seconds, path)
                status = "ok" if code == 0 else f"FAILED rc={code}"
                print(f"  {tag}: {status} ({seconds:.1f} s)")
        return results

    print(f"farm: {len(grid)} configs x {args.jobs} workers")
    warm_results = launch([
        farm_worker(args, out_dir, snapshot, label, spec, cold=False)
        for label, spec in grid
    ])
    farm_seconds = time.monotonic() - farm_start

    failed = [t for t, (code, _, _) in warm_results.items() if code != 0]
    if failed:
        sys.exit(f"whatif_farm: workers failed: {', '.join(sorted(failed))}")

    # Phase 3 — aggregate results + profiler attribution.
    configs = []
    snap_meta = {"seed": args.seed, "warmPauses": args.pauses,
                 "liveObjects": 0, "hostSeconds": snap_seconds}
    for label, spec in grid:
        _, _, path = warm_results[label]
        record = json.loads(Path(path).read_text())
        record["profiler"] = profiler_attribution(
            out_dir / f"{label}.stats.json")
        record["workerWallSeconds"] = warm_results[label][1]
        snap_meta["liveObjects"] = record["snapshotLiveObjects"]
        configs.append(record)

    report = {"snapshot": snap_meta, "configs": configs}

    # Optional control: the same grid, every point cold.
    if args.compare_cold:
        print(f"cold control: {len(grid)} configs")
        cold_start = time.monotonic()
        cold_results = launch([
            farm_worker(args, out_dir, snapshot, label, spec, cold=True)
            for label, spec in grid
        ])
        cold_seconds = time.monotonic() - cold_start
        functional_match = True
        for label, _ in grid:
            code, _, path = cold_results[f"cold-{label}"]
            if code != 0:
                functional_match = False
                continue
            cold_rec = json.loads(Path(path).read_text())
            warm_rec = next(c for c in configs if c["label"] == label)
            for key in ("markCycles", "sweepCycles", "markDigest",
                        "markedCount", "freedObjects", "liveAfter"):
                if cold_rec[key] != warm_rec[key]:
                    functional_match = False
                    print(f"  MISMATCH {label}.{key}: "
                          f"cold {cold_rec[key]} != farm {warm_rec[key]}")
        report["coldCompare"] = {
            "farmWallSeconds": farm_seconds,
            "coldWallSeconds": cold_seconds,
            "speedup": cold_seconds / max(farm_seconds, 1e-9),
            "functionalMatch": functional_match,
        }

    (out_dir / "report.json").write_text(
        json.dumps(report, indent=2) + "\n")
    (out_dir / "report.md").write_text(render_markdown(report))
    print(f"report: {out_dir / 'report.json'}, {out_dir / 'report.md'}")

    best = min(configs, key=lambda r: r["gcCycles"])
    worst = max(configs, key=lambda r: r["gcCycles"])
    print(f"best {best['label']} ({best['gcCycles']} cycles), worst "
          f"{worst['label']} ({worst['gcCycles']} cycles, "
          f"{worst['gcCycles'] / best['gcCycles']:.2f}x)")
    if args.compare_cold:
        cc = report["coldCompare"]
        print(f"farm {cc['farmWallSeconds']:.1f} s vs cold "
              f"{cc['coldWallSeconds']:.1f} s -> {cc['speedup']:.2f}x, "
              f"functional outcomes "
              f"{'identical' if cc['functionalMatch'] else 'DIVERGED'}")
        if not cc["functionalMatch"]:
            sys.exit(1)
    return 0


if __name__ == "__main__":
    sys.exit(main())
