file(REMOVE_RECURSE
  "CMakeFiles/hwgc_gc.dir/sw_collector.cc.o"
  "CMakeFiles/hwgc_gc.dir/sw_collector.cc.o.d"
  "CMakeFiles/hwgc_gc.dir/verifier.cc.o"
  "CMakeFiles/hwgc_gc.dir/verifier.cc.o.d"
  "libhwgc_gc.a"
  "libhwgc_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
