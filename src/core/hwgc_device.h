/**
 * @file
 * The complete GC accelerator device: traversal unit + reclamation
 * unit + their memory-side plumbing, behind an MMIO-register façade.
 *
 * This is the integration point the paper's Fig 10 describes: the
 * Linux driver writes the process's page-table base and the unit's
 * configuration (hwgc-space, block list, spill region, size classes)
 * into memory-mapped registers, launches a GC phase, and polls a
 * status register. The device owns its own simulated SoC memory side
 * (interconnect + DRAM or ideal pipe) because the unit runs during a
 * stop-the-world pause — the CPU's only traffic is polling MMIO,
 * which does not touch DRAM.
 */

#ifndef HWGC_CORE_HWGC_DEVICE_H
#define HWGC_CORE_HWGC_DEVICE_H

#include <memory>

#include "core/mark_queue.h"
#include "core/marker.h"
#include "core/reclamation_unit.h"
#include "core/root_reader.h"
#include "core/tracer.h"
#include "mem/timed_cache.h"
#include "runtime/heap.h"
#include "sim/checkpoint.h"
#include "sim/profiler.h"
#include "sim/telemetry.h"

namespace hwgc::core
{

/**
 * Shared-SoC context for fleet assembly (DESIGN.md §12): when a
 * device is instantiated into a fleet it joins an externally owned
 * System and shares one Interconnect + memory device with its peer
 * devices instead of building a private memory side. The fleet
 * driver owns kernel mode, partitions for the shared components,
 * telemetry for the shared bus/memory, checkpoint arming and the
 * watchdog; the device only contributes its unit components.
 */
struct SocContext
{
    System *system = nullptr;         //!< Shared kernel/clock.
    mem::Interconnect *bus = nullptr; //!< Shared interconnect.
    mem::MemDevice *memory = nullptr; //!< Shared DRAM / ideal pipe.
    mem::Dram *dram = nullptr;        //!< Non-null when DRAM-backed.
    std::string namePrefix;           //!< Component prefix, "hwgc0.".
    std::string statsPrefix;          //!< Stats prefix, "system.hwgc0".
    unsigned unitPartition = 0;       //!< BSP partition for the units.
};

/** The device's memory-mapped register file (driver interface). */
struct MmioRegs
{
    Addr pageTableBase = 0;  //!< satp analogue.
    Addr hwgcSpaceBase = 0;  //!< Root region VA.
    std::uint64_t rootCount = 0;
    Addr blockTableBase = 0; //!< Block descriptor list VA.
    std::uint64_t blockCount = 0;
    Addr spillBase = 0;      //!< Spill region PA.
    std::uint64_t spillBytes = 0;

    /** Status register values polled by the runtime (§IV-C). */
    enum Status : std::uint64_t { Idle = 0, Marking = 1, Sweeping = 2 };
    std::uint64_t status = Idle;
};

/** Result of one accelerator phase. */
struct HwPhaseResult
{
    Tick cycles = 0;
    std::uint64_t objectsMarked = 0;
    std::uint64_t refsTraced = 0;
    std::uint64_t cellsFreed = 0;
};

/** The assembled accelerator. */
class HwgcDevice
{
  public:
    /**
     * @param page_table The process page table the PTW walks (the
     *        driver writes its base into the MMIO registers).
     */
    HwgcDevice(mem::PhysMem &mem, const mem::PageTable &page_table,
               const HwgcConfig &config);

    /**
     * Fleet-mode constructor: the device registers its units into
     * @p soc's shared System and sends memory traffic through the
     * shared bus. configure() can retarget it at any tenant heap in
     * the shared PhysMem (time-multiplexing, §VII).
     */
    HwgcDevice(mem::PhysMem &mem, const mem::PageTable &page_table,
               const HwgcConfig &config, const SocContext &soc);

    ~HwgcDevice();

    /** Driver helper: programs the registers from the heap's state. */
    void configure(const runtime::Heap &heap);

    /** Raw register access (the driver path of Fig 10). */
    MmioRegs &regs() { return regs_; }

    /** Runs the mark phase to completion; returns its cycle count. */
    HwPhaseResult runMark();

    /** Runs the sweep phase to completion. */
    HwPhaseResult runSweep();

    /** Runs mark then sweep. */
    HwPhaseResult collect();

    /**
     * @name Split phase control (fleet mode)
     *
     * runMark()/runSweep() drive the device's own System until the
     * phase drains. A fleet interleaves many devices on one shared
     * System, so the driver launches a phase, steps the shared clock
     * itself, polls the done predicate at scheduling boundaries, and
     * then collects the result. startMark()/startSweep() are no-ops
     * when the phase is already in flight (checkpoint resume).
     * @{
     */
    void startMark();
    bool markDone() const;
    HwPhaseResult finishMark();
    void startSweep();
    bool sweepDone() const;
    HwPhaseResult finishSweep();
    /** @} */

    /**
     * Fleet wiring hook: declares the deferred wakeup edges against
     * the shared bus (they need the bus registered in the shared
     * System, which happens after device construction). Called once
     * per device by the fleet driver; owned-SoC devices declare the
     * same edges in their constructor.
     */
    void declareSharedBusEdges();

    /** True when this device joined an external (fleet) SoC. */
    bool external() const { return external_; }

    /** The unit components this device registered into the System. */
    const std::vector<Clocked *> &ownComponents() const
    {
        return ownComponents_;
    }

    /**
     * Flushes all unit-internal state (TLBs, caches, filters) —
     * called between GC pauses; the real device is context-switched
     * the same way (§VII "Context Switching").
     */
    void resetPhaseState();

    /** Resets every statistic in the device and its memory side. */
    void resetStats();

    /**
     * @name Checkpointing (DESIGN.md §9)
     *
     * A checkpoint captures the complete architectural state of the
     * device and its memory side at an inter-cycle boundary: the MMIO
     * registers and phase status, the kernel clock, every registered
     * component's queues/registers/statistics, the trace queue, and
     * the functional memory image. Restoring into an identically
     * configured device resumes the run bit-identically — same final
     * cycle count, same statistics — under any of the three kernels
     * (kernel mode and host threading are host knobs, not state).
     * @{
     */

    /** Serializes the full device state into @p ser. */
    void saveCheckpoint(checkpoint::Serializer &ser) const;

    /** Restores state written by saveCheckpoint(); mismatch fatals. */
    void restoreCheckpoint(checkpoint::Deserializer &des);

    /** saveCheckpoint() to @p path; returns false (warn) on I/O error. */
    bool writeCheckpoint(const std::string &path) const;

    /** restoreCheckpoint() from @p path; unreadable/corrupt fatals. */
    void restoreCheckpoint(const std::string &path);

    /**
     * Arms checkpoint output: the device writes @p path after every
     * completed GC phase, or — when @p at is nonzero — once, at the
     * first inter-cycle boundary at or after device cycle @p at (even
     * mid-phase). Arming also installs a crash hook that dumps
     * "<path>.crash.<pid>" plus "<path>.crash.<pid>.stats.json" on
     * any panic()/fatal() for post-mortem inspection
     * (examples/heap_inspector); the pid suffix keeps artifacts from
     * parallel fuzz/farm workers collision-free.
     * configure() arms automatically from --checkpoint-out= /
     * HWGC_CHECKPOINT_OUT; an empty @p path disarms.
     */
    void armCheckpoint(const std::string &path, Tick at = 0);
    /** @} */

    /** @name Component access for benches and tests @{ */
    Marker &marker() { return *marker_; }
    Tracer &tracer() { return *tracer_; }
    MarkQueue &markQueue() { return *markQueue_; }
    TraceQueue &traceQueue() { return *traceQueue_; }
    RootReader &rootReader() { return *rootReader_; }
    ReclamationUnit &reclamation() { return *reclamation_; }
    mem::Interconnect &bus() { return *busPtr_; }
    mem::MemDevice &memory() { return *memPtr_; }
    mem::Ptw &ptw() { return *ptw_; }
    mem::Dram *dram() { return dramPtr_; }
    mem::TimedCache *sharedCache() { return sharedCache_.get(); }
    mem::TimedCache *ptwCache() { return ptwCache_.get(); }
    const HwgcConfig &config() const { return config_; }
    System &system() { return *sys_; }
    /** @} */

    /**
     * Architectural configuration fingerprint embedded in every
     * checkpoint. Deliberately excludes the kernel mode and host
     * threading/partition knobs: those change host execution only, so
     * a checkpoint saved under one kernel restores under any other.
     */
    std::string configSignature() const;

    /**
     * The dotted path this device's stats groups registered under in
     * the global telemetry::StatsRegistry ("system.hwgc0", ...). Also
     * the track prefix of its trace-event timeline.
     */
    const std::string &statsPrefix() const { return statsPrefix_; }

    /**
     * The cycle-accounting profiler, or nullptr unless
     * telemetry::options().profile was set before construction
     * (--profile / HWGC_PROFILE). See DESIGN.md §10.
     */
    telemetry::CycleProfiler *profiler() { return profiler_.get(); }

  private:
    /** Steps the system until the given phase-done predicate holds
     *  and the memory side has drained, pausing at an armed
     *  --checkpoint-at= boundary to write the checkpoint. */
    Tick runUntil(const char *phase);

    /** Shared assembly path behind both public constructors. */
    HwgcDevice(mem::PhysMem &mem, const mem::PageTable &page_table,
               const HwgcConfig &config, const SocContext *soc);

    /** Installs the PTW's (owner, token) -> walk-callback factory. */
    void installWalkResolver();

    /** Writes the armed checkpoint after a completed phase. */
    void writePhaseCheckpoint();

    /** The panic()/fatal() hook target (see armCheckpoint()). */
    static void crashHook(void *ctx);
    void writeCrashDump();

    /** Watchdog reporter: live bottleneck report + stats to stderr. */
    void writeWatchdogReport();

    HwgcConfig config_;
    mem::PhysMem &mem_;
    const mem::PageTable &pageTable_;
    MmioRegs regs_;

    /** @name SoC plumbing: owned (classic) or shared (fleet) @{ */
    bool external_ = false;
    std::string namePrefix_;     //!< Prepended to component names.
    unsigned unitPartition_ = 0; //!< BSP partition for the units.
    std::unique_ptr<System> ownSystem_;
    System *sys_ = nullptr;
    std::unique_ptr<mem::MemDevice> memory_;
    mem::MemDevice *memPtr_ = nullptr;
    mem::Dram *dramPtr_ = nullptr;
    std::unique_ptr<mem::Interconnect> bus_;
    mem::Interconnect *busPtr_ = nullptr;
    std::vector<Clocked *> ownComponents_;
    /** @} */
    std::unique_ptr<mem::TimedCache> sharedCache_; //!< Fig 18a mode.
    std::unique_ptr<mem::TimedCache> ptwCache_;    //!< Partitioned.
    std::unique_ptr<mem::Ptw> ptw_;

    std::vector<std::unique_ptr<mem::BusPort>> busPorts_;
    mem::MemPort *markerPort_ = nullptr;
    mem::MemPort *tracerPort_ = nullptr;
    mem::MemPort *spillPort_ = nullptr;
    mem::MemPort *readerPort_ = nullptr;
    mem::MemPort *blockReaderPort_ = nullptr;
    std::vector<mem::MemPort *> sweeperPorts_;

    std::unique_ptr<MarkQueue> markQueue_;
    std::unique_ptr<TraceQueue> traceQueue_;
    std::unique_ptr<Marker> marker_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<RootReader> rootReader_;
    std::unique_ptr<ReclamationUnit> reclamation_;

    /** Registers every component's stats under statsPrefix_ and
     *  attaches the kernel observer when telemetry is active. */
    void registerTelemetry();

    /** ParallelBsp wiring: partition-scheme resolution ("", "fine",
     *  "cost" or explicit name=P), atom-cohesion validation,
     *  worker-thread and superstep-cap resolution. */
    void configurePartitions();

    /** Feeds the cost sampler's measurements into the kernel's LPT
     *  re-pack at the end of a warm-up phase (--host-partition=cost);
     *  after the sweep-phase rebalance the sampler detaches. */
    void rebalanceFromSampler(bool final_phase);

    std::string statsPrefix_;
    std::vector<std::unique_ptr<stats::Group>> statGroups_;
    std::vector<std::string> statPaths_;
    std::unique_ptr<telemetry::SystemTracer> sysTracer_;
    std::unique_ptr<telemetry::CycleProfiler> profiler_;

    /** @name Cost-model partitioning (--host-partition=cost) @{ */
    bool costPartition_ = false;      //!< Scheme "cost" selected.
    std::unique_ptr<KernelObserver> costSampler_; //!< Warm-up counts.
    bool costMarkRebalanced_ = false; //!< First-mark re-pack done.
    /** @} */

    /** @name Armed checkpoint output (see armCheckpoint()) @{ */
    std::string checkpointOut_;
    Tick checkpointAt_ = 0;
    bool checkpointAtDone_ = false;
    unsigned crashHookId_ = 0; //!< addCrashHook() id (0 = not armed).
    /** @} */
};

} // namespace hwgc::core

#endif // HWGC_CORE_HWGC_DEVICE_H
