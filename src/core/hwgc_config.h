/**
 * @file
 * Configuration of the GC accelerator (paper §IV/§V design space).
 *
 * Defaults are the paper's baseline design point (§VI-A): a 1,024
 * entry mark queue, 16 marker request slots, 2 block sweepers,
 * 32-entry unit TLBs with a 128-entry shared L2 TLB, partitioned
 * caches, no reference compression and no mark-bit cache (those are
 * the Fig 19/Fig 21 design-space knobs).
 */

#ifndef HWGC_CORE_HWGC_CONFIG_H
#define HWGC_CORE_HWGC_CONFIG_H

#include <string>

#include "mem/dram.h"
#include "mem/ideal_mem.h"
#include "mem/ptw.h"
#include "mem/timed_cache.h"
#include "runtime/object_model.h"
#include "sim/clocked.h"
#include "sim/types.h"

namespace hwgc::core
{

/** Memory-system model selection (Fig 15 vs Fig 17). */
enum class MemModel
{
    Ddr3,  //!< Table I DDR3-2000 timing model.
    Ideal, //!< 1-cycle / 8 GB/s latency-bandwidth pipe.
};

/** Full accelerator + memory-side configuration. */
struct HwgcConfig
{
    /** @name Traversal unit @{ */
    unsigned markQueueEntries = 1024; //!< Main on-chip queue (refs).
    unsigned spillQueueEntries = 64;  //!< inQ and outQ each (Fig 12).
    unsigned spillThrottle = 48;      //!< outQ level that halts tracer.
    bool compressRefs = false;        //!< 32-bit packing (§V-C).
    unsigned markerSlots = 16;        //!< Marker request slots.

    /**
     * References parked while their (serialized, blocking-PTW) walk
     * completes; the marker keeps issuing TLB-hitting references
     * under up to this many outstanding misses. 0 fully serializes
     * the marker behind every TLB miss.
     */
    unsigned markerWalkWaiters = 4;
    unsigned markBitCacheEntries = 0; //!< Fig 21 filter (0 = off).
    unsigned tracerQueueEntries = 128;
    unsigned tracerPendingRefs = 64;  //!< Response buffer backpressure.
    unsigned unitTlbEntries = 32;
    runtime::Layout layout = runtime::Layout::Bidirectional;

    /**
     * Couples the tracer to the marker (ablation of §IV-A idea II):
     * the tracer only works while the marker has no requests in
     * flight, modeling a single sequential mark-then-copy engine.
     */
    bool decoupledTracer = true;

    /**
     * Tags tracer requests (ablation of §IV-A idea III): limits the
     * tracer to this many in-flight requests as if it kept per-request
     * state like the marker. 0 = untagged/unlimited (the paper design).
     */
    unsigned tracerTagSlots = 0;
    /** @} */

    /** @name Reclamation unit @{ */
    unsigned numSweepers = 2;
    unsigned sweeperTlbEntries = 8;
    /** @} */

    /** @name Memory side @{ */
    bool sharedCache = false; //!< Fig 18a single 16 KiB cache design.
    mem::TimedCacheParams sharedCacheParams{16 * 1024, 4, 2, 4, 4, 8};
    mem::TimedCacheParams ptwCacheParams{8 * 1024, 4, 2, 1, 4, 8};
    mem::PtwParams ptw;
    MemModel memModel = MemModel::Ddr3;
    mem::DramParams dram;
    mem::IdealMemParams ideal;
    mem::InterconnectParams bus;
    /** @} */

    /**
     * Simulation kernel driving the device's System. Event mode skips
     * idle cycles and is cycle-exact with Dense (test_event_kernel
     * asserts this); Dense remains as the reference for A/B runs.
     * ParallelBsp keeps the event semantics but evaluates component
     * partitions on host worker threads (bit-identical to both,
     * tests/test_determinism.cc asserts the full matrix).
     */
    KernelMode kernel = KernelMode::Event;

    /**
     * ParallelBsp host worker threads. 0 defers to the
     * --host-threads= flag / HWGC_HOST_THREADS, and failing those one
     * thread per hardware core. Simulated results are bit-identical
     * for every value; only host wall-clock changes.
     */
    unsigned hostThreads = 0;

    /**
     * ParallelBsp partition scheme. Three forms:
     *  - "" defers to --host-partition= / HWGC_HOST_PARTITION, and
     *    failing those the coarse affinity heuristic (units=0, bus=1,
     *    memory=2).
     *  - "fine" gives every same-cycle-coupled component group (atom)
     *    its own partition: the traversal unit, the reclamation
     *    dispatcher, each block sweeper, the PTW (+ its cache), the
     *    bus and the memory device.
     *  - "cost" starts from "fine" and, after a warm-up sampling
     *    window (the first mark and sweep phases), re-packs the
     *    partitions onto worker threads by a greedy LPT bin-pack over
     *    each component's measured busy cycles.
     *  - "name=P[,name=P...]" places named components explicitly
     *    (e.g. "bus=0,dram=0" to co-locate the memory side with the
     *    traversal unit). Components of one atom must share a
     *    partition — they exchange same-cycle state and may not split.
     * Simulated results are bit-identical for every value.
     */
    std::string hostPartition;

    /**
     * ParallelBsp superstep batch cap: when the event kernel's wakeup
     * data proves only one partition can run and no cross-partition
     * event can fire, the kernel executes up to this many cycles per
     * fan-out/join round. 0 defers to --superstep-max= /
     * HWGC_SUPERSTEP_MAX, and failing those leaves the batch length
     * bounded only by the no-cross-edge proof; 1 disables batching.
     * Host-only: simulated results are bit-identical for every value.
     */
    unsigned superstepMax = 0;

    /**
     * SoC shape requested from drivers that can instantiate a device
     * array (the fuzz differ, fuzz_driver --config=devices=N): values
     * above 1 build that many fleet-mode devices behind one shared
     * interconnect + memory and spread the work across them. A
     * directly constructed HwgcDevice models exactly one instance and
     * ignores this; FleetLab sizes its array from FleetConfig::devices
     * instead.
     */
    unsigned devices = 1;
};

} // namespace hwgc::core

#endif // HWGC_CORE_HWGC_CONFIG_H
