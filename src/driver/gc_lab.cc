/**
 * @file
 * Experiment harness implementation.
 */

#include "gc_lab.h"

#include "gc/verifier.h"

namespace hwgc::driver
{

GcLab::GcLab(const workload::BenchmarkProfile &profile,
             const LabConfig &config)
    : profile_(profile), config_(config)
{
    heap_ = std::make_unique<runtime::Heap>(mem_, config_.heap);
    builder_ = std::make_unique<workload::GraphBuilder>(*heap_,
                                                        profile_.graph);
    builder_->build();

    // CPU-side memory device (same model class as the unit's, so the
    // comparison is apples to apples).
    if (config_.hwgc.memModel == core::MemModel::Ddr3) {
        auto dram = std::make_unique<mem::Dram>("cpu.dram",
                                                config_.hwgc.dram, mem_);
        cpuDramPtr_ = dram.get();
        cpuMemory_ = std::move(dram);
    } else {
        cpuMemory_ = std::make_unique<mem::IdealMem>(
            "cpu.idealmem", config_.hwgc.ideal, mem_);
    }
    core_ = std::make_unique<cpu::CoreModel>(
        "rocket", config_.core, mem_, heap_->pageTable(), *cpuMemory_);
    swCollector_ = std::make_unique<gc::SwCollector>(*heap_, *core_);

    device_ = std::make_unique<core::HwgcDevice>(
        mem_, heap_->pageTable(), config_.hwgc);

    // Register the CPU baseline's stats beside the device's.
    auto &registry = telemetry::StatsRegistry::global();
    const std::string prefix = registry.uniquePrefix("system.cpu");
    auto addGroup = [&](const std::string &sub) -> stats::Group & {
        statGroups_.push_back(std::make_unique<stats::Group>(sub));
        statPaths_.push_back(registry.add(prefix + "." + sub,
                                          statGroups_.back().get()));
        return *statGroups_.back();
    };
    core_->addStats(addGroup("core"));
    core_->l1d().addStats(addGroup("core.l1d"));
    core_->l2().addStats(addGroup("core.l2"));
    core_->dtlb().addStats(addGroup("core.dtlb"));
    cpuMemory_->addStats(addGroup("memory"));
}

GcLab::~GcLab()
{
    auto &registry = telemetry::StatsRegistry::global();
    for (const std::string &path : statPaths_) {
        registry.remove(path);
    }
}

PauseResult
GcLab::runOnePause()
{
    PauseResult result;

    heap_->clearAllMarks();
    heap_->publishRoots();
    result.liveObjects = heap_->liveObjects();
    result.blocks = heap_->blocks().size();

    // A snapshot is only needed to replay the pause on both engines.
    mem::PhysMem::Snapshot snap;
    if (config_.runSw && config_.runHw) {
        snap = mem_.snapshot();
    }

    if (config_.runSw) {
        core_->resetCycles();
        core_->resetStats();
        core_->flushMicroarchState();
        cpuMemory_->resetStats();
        cpuMemory_->resetTimingState();
        const gc::GcResult sw = swCollector_->collect();
        result.swMarkCycles = sw.markCycles;
        result.swSweepCycles = sw.sweepCycles;
        result.objectsMarked = sw.objectsMarked;
        result.cellsFreed = sw.cellsFreed;
        if (cpuDramPtr_ != nullptr) {
            result.swDramBytes = cpuDramPtr_->bytesRead().value() +
                cpuDramPtr_->bytesWritten().value();
            result.swDramReads = cpuDramPtr_->numReads().value();
            result.swDramWrites = cpuDramPtr_->numWrites().value();
            result.swDramActivates = cpuDramPtr_->numActivates().value();
        }
        if (config_.verify) {
            const auto marks = gc::verifyMarks(*heap_);
            panic_if(!marks.ok, "SW mark verification: %s",
                     marks.error.c_str());
            const auto swept = gc::verifySweptHeap(*heap_);
            panic_if(!swept.ok, "SW sweep verification: %s",
                     swept.error.c_str());
        }
        if (config_.runHw) {
            mem_.restore(snap); // Replay the same pause on the unit.
        }
    }

    if (config_.runHw) {
        device_->resetPhaseState();
        device_->resetStats();
        device_->configure(*heap_);
        const core::HwPhaseResult mark = device_->runMark();
        const core::HwPhaseResult sweep = device_->runSweep();
        result.hwMarkCycles = mark.cycles;
        result.hwSweepCycles = sweep.cycles;
        result.objectsMarked = mark.objectsMarked;
        result.cellsFreed = sweep.cellsFreed;

        HwCounters &hw = result.hw;
        hw.tracerRequests = device_->tracer().requestsIssued();
        hw.spillWrites = device_->markQueue().spillWriteRequests();
        hw.spillReads = device_->markQueue().spillReadRequests();
        hw.entriesSpilled = device_->markQueue().entriesSpilled();
        hw.markerTlbMisses = device_->marker().tlb().misses();
        hw.tracerTlbMisses = device_->tracer().tlb().misses();
        hw.ptwWalks = device_->ptw().walksStarted();
        hw.markCacheHits = device_->marker().markCacheHits();
        hw.busBusyCycles = device_->bus().busBusyCycles();
        hw.busCycles = device_->bus().observedCycles();
        if (device_->dram() != nullptr) {
            hw.dramBytes = device_->dram()->bytesRead().value() +
                device_->dram()->bytesWritten().value();
            hw.dramReads = device_->dram()->numReads().value();
            hw.dramWrites = device_->dram()->numWrites().value();
            hw.dramActivates = device_->dram()->numActivates().value();
        }

        if (config_.verify) {
            const auto marks = gc::verifyMarks(*heap_);
            panic_if(!marks.ok, "HW mark verification: %s",
                     marks.error.c_str());
            const auto swept = gc::verifySweptHeap(*heap_);
            panic_if(!swept.ok, "HW sweep verification: %s",
                     swept.error.c_str());
        }
    }

    panic_if(!config_.runSw && !config_.runHw,
             "lab configured to run neither collector");

    // The mutator continues from whichever collector ran last.
    heap_->onAfterSweep();
    builder_->mutate(profile_.churnPerGC);
    return result;
}

const std::vector<PauseResult> &
GcLab::run()
{
    return run(profile_.numGCs);
}

const std::vector<PauseResult> &
GcLab::run(unsigned pauses)
{
    for (unsigned i = 0; i < pauses; ++i) {
        results_.push_back(runOnePause());
    }
    return results_;
}

namespace
{

double
average(const std::vector<PauseResult> &results, Tick PauseResult::*field)
{
    if (results.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const auto &r : results) {
        sum += double(r.*field);
    }
    return sum / double(results.size());
}

} // namespace

double
GcLab::avgSwMarkCycles() const
{
    return average(results_, &PauseResult::swMarkCycles);
}

double
GcLab::avgSwSweepCycles() const
{
    return average(results_, &PauseResult::swSweepCycles);
}

double
GcLab::avgHwMarkCycles() const
{
    return average(results_, &PauseResult::hwMarkCycles);
}

double
GcLab::avgHwSweepCycles() const
{
    return average(results_, &PauseResult::hwSweepCycles);
}

} // namespace hwgc::driver
