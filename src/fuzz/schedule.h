/**
 * @file
 * Fuzz schedules: seeded mutate/collect interleavings over generated
 * heaps (DESIGN.md §11).
 *
 * A schedule is the complete deterministic recipe for one fuzz case:
 * which heap to build (a shape family plus size overrides, all
 * derived from the seed) and the exact sequence of mutator churn and
 * GC pauses to drive it through. Schedules serialize to a small
 * line-oriented text format so divergence repros can be committed to
 * tests/corpus/ and replayed byte-identically forever.
 */

#ifndef HWGC_FUZZ_SCHEDULE_H
#define HWGC_FUZZ_SCHEDULE_H

#include <string>
#include <vector>

#include "workload/graph_gen.h"

namespace hwgc::fuzz
{

/**
 * Heap shape families. Random draws a fully mixed shape from the
 * seed (the test_diff_reachability style); the rest are adversarial
 * presets targeting specific accelerator weak points.
 */
enum class Shape
{
    Random,     //!< Seed-mixed fan-out/sharing/cycles/arrays.
    Chain,      //!< One deep pointer chain (serializes the marker).
    SpillStorm, //!< Array-heavy wide graph (overflows the mark queue).
    Sparse,     //!< Padded sparse layout (thrashes the unit TLBs).
};

const char *shapeName(Shape shape);

/** Parses a shapeName() string; false (and @p out untouched) if unknown. */
bool shapeFromName(const std::string &name, Shape &out);

/** One step of the mutator/GC interleaving. */
struct Op
{
    enum class Kind
    {
        Mutate,  //!< builder.mutate(churnPermille / 1000.0).
        Collect, //!< Full stop-the-world pause (mark + sweep).
    };

    Kind kind = Kind::Collect;
    unsigned churnPermille = 0; //!< Mutate only; 0..1000.
};

/** A complete fuzz case. */
struct Schedule
{
    std::uint64_t seed = 0;
    Shape shape = Shape::Random;

    /** Size overrides; 0 means "derived from the seed". */
    std::uint64_t liveObjects = 0;
    std::uint64_t garbageObjects = 0;

    std::vector<Op> ops;

    /** Number of Collect ops (how many pauses the case runs). */
    unsigned collects() const;
};

/**
 * Derives the full schedule for @p seed: shape family, sizes, and a
 * 2–3 pause interleaving with varying churn. Pure function of the
 * seed (splitmix64 mixing), so "--seeds=0:200" names 200 exact cases.
 */
Schedule generate(std::uint64_t seed);

/** Expands a schedule into the GraphParams that build its heap. */
workload::GraphParams graphParams(const Schedule &schedule);

/** @name Text round-trip (the tests/corpus/ *.sched format) @{ */
std::string toText(const Schedule &schedule);
bool fromText(const std::string &text, Schedule &out, std::string *err);
bool loadFile(const std::string &path, Schedule &out, std::string *err);
bool saveFile(const std::string &path, const Schedule &schedule);
/** @} */

} // namespace hwgc::fuzz

#endif // HWGC_FUZZ_SCHEDULE_H
