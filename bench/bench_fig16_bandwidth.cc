/**
 * @file
 * Fig 16 — memory bandwidth over time during the last GC pause of
 * avrora, CPU vs GC unit, based on 64B-line-equivalent traffic.
 *
 * The paper: "our unit is more effective at exploiting memory
 * bandwidth, particularly during the mark phase".
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 16: memory bandwidth, last avrora GC pause",
                  "the unit sustains much higher DRAM bandwidth");

    const auto profile = workload::dacapoProfile("avrora");
    driver::GcLab lab(profile);
    lab.run(); // Stats reset per pause: series hold the last pause.

    const auto &sw_series = lab.cpuDram()->bandwidth();
    const auto &hw_series = lab.device().dram()->bandwidth();
    const double bucket_us = double(sw_series.bucketWidth()) / 1000.0;

    auto print_series = [bucket_us](const char *name,
                                    const stats::TimeSeries &series) {
        std::printf("\n  %s (GB/s per %.0f us bucket):\n", name,
                    bucket_us);
        // The series is indexed by absolute simulated time; trim the
        // leading/trailing idle so the pause itself is displayed.
        const auto &buckets = series.buckets();
        std::size_t first = 0, last = buckets.size();
        while (first < buckets.size() && buckets[first] == 0) {
            ++first;
        }
        while (last > first && buckets[last - 1] == 0) {
            --last;
        }
        double peak = 0.0, total_bytes = 0.0;
        for (std::size_t i = first; i < last; ++i) {
            const double gbps =
                double(buckets[i]) / double(series.bucketWidth());
            peak = std::max(peak, gbps);
            total_bytes += double(buckets[i]);
            if (i - first < 40) { // First 40 buckets of the pause.
                std::printf("  %8.1f us %8.3f GB/s |%s\n",
                            double(i - first) * bucket_us, gbps,
                            std::string(unsigned(gbps * 12), '#')
                                .c_str());
            }
        }
        const double span =
            double(last - first) * double(series.bucketWidth());
        std::printf("  ... %zu active buckets; avg %.3f GB/s, peak "
                    "%.3f GB/s\n",
                    last - first, span > 0 ? total_bytes / span : 0.0,
                    peak);
    };

    print_series("Rocket CPU", sw_series);
    print_series("GC Unit", hw_series);

    const auto &last = lab.results().back();
    std::printf("\n  pause durations: CPU %.3f ms, unit %.3f ms\n",
                bench::msFromCycles(
                    double(last.swMarkCycles + last.swSweepCycles)),
                bench::msFromCycles(
                    double(last.hwMarkCycles + last.hwSweepCycles)));

    session.meta().kernel =
        lab.device().config().kernel == KernelMode::Event ? "event"
                                                          : "dense";
    session.meta().config = "dacapo:avrora";
    session.meta().simCycles = lab.device().system().now();
    session.finish(); // Export while the lab is still alive.
    return 0;
}
