/**
 * @file
 * What-if farm snapshots (DESIGN.md §11).
 *
 * A farm snapshot is the *device-independent* sibling of the PR-4
 * device checkpoint: it captures a warm heap — the functional memory
 * image plus the runtime's and graph builder's view of it — without
 * any accelerator state, so one snapshot forks into simulations of
 * arbitrarily different accelerator configurations. That is exactly
 * what a device checkpoint cannot do (its config signature pins the
 * architecture), and it is what lets whatif_farm.py amortize heap
 * construction across a 12+ point config grid: build and churn once,
 * restore everywhere, run one measured pause per grid point.
 *
 * File layout (standard chunked checkpoint container, see
 * sim/checkpoint.h):
 *
 *   chunk "farm"        version, seed, warm pauses, live count, ...
 *   chunk "graphparams" full GraphParams (reconstructs the builder)
 *   chunk "heap"        Heap::save (runtime view)
 *   chunk "builder"     GraphBuilder::save (RNG + candidate lists)
 *   chunk "physmem"     functional memory image
 */

#ifndef HWGC_FUZZ_FARM_H
#define HWGC_FUZZ_FARM_H

#include <memory>
#include <string>

#include "workload/graph_gen.h"

namespace hwgc::fuzz
{

/** Provenance carried inside a farm snapshot. */
struct FarmMeta
{
    std::uint64_t seed = 0;       //!< Workload seed.
    std::uint64_t warmPauses = 0; //!< GC pauses run before snapshot.
    std::uint64_t liveObjects = 0;
    std::uint64_t bytesAllocated = 0;
};

/** A warm heap reconstructed from (or about to become) a snapshot. */
struct FarmUniverse
{
    FarmMeta meta;
    workload::GraphParams params;
    std::unique_ptr<mem::PhysMem> mem;
    std::unique_ptr<runtime::Heap> heap;
    std::unique_ptr<workload::GraphBuilder> builder;
};

/** Serializes a warm heap; fatal() on I/O failure. */
void saveFarmSnapshot(const std::string &path, const FarmMeta &meta,
                      const workload::GraphParams &params,
                      const runtime::Heap &heap,
                      const workload::GraphBuilder &builder,
                      const mem::PhysMem &mem);

/**
 * Reconstructs the warm heap from @p path into a fresh universe. The
 * caller then builds a device of *any* configuration over
 * universe.heap and runs measured pauses; corrupt or mismatched
 * snapshots fatal() with the offending chunk named.
 */
FarmUniverse loadFarmSnapshot(const std::string &path);

} // namespace hwgc::fuzz

#endif // HWGC_FUZZ_FARM_H
