
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/sw_collector.cc" "src/gc/CMakeFiles/hwgc_gc.dir/sw_collector.cc.o" "gcc" "src/gc/CMakeFiles/hwgc_gc.dir/sw_collector.cc.o.d"
  "/root/repo/src/gc/verifier.cc" "src/gc/CMakeFiles/hwgc_gc.dir/verifier.cc.o" "gcc" "src/gc/CMakeFiles/hwgc_gc.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/hwgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hwgc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hwgc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hwgc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
