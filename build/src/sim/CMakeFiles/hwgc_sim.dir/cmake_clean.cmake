file(REMOVE_RECURSE
  "CMakeFiles/hwgc_sim.dir/logging.cc.o"
  "CMakeFiles/hwgc_sim.dir/logging.cc.o.d"
  "CMakeFiles/hwgc_sim.dir/stats.cc.o"
  "CMakeFiles/hwgc_sim.dir/stats.cc.o.d"
  "libhwgc_sim.a"
  "libhwgc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
