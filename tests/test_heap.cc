/**
 * @file
 * Unit tests for the managed heap: allocation, block formatting,
 * roots, the reachability oracle and post-sweep resynchronization.
 */

#include <gtest/gtest.h>

#include "runtime/block_table.h"
#include "runtime/heap.h"

namespace hwgc::runtime
{
namespace
{

class HeapTest : public testing::Test
{
  protected:
    mem::PhysMem mem_;
    Heap heap_{mem_};
};

TEST_F(HeapTest, AllocateWritesObjectImage)
{
    const ObjRef ref = heap_.allocate(3, 2, Space::MarkSweep, 9, false);
    const Word hdr = heap_.read(ref);
    EXPECT_TRUE(StatusWord::live(hdr));
    EXPECT_FALSE(StatusWord::marked(hdr));
    EXPECT_EQ(StatusWord::numRefs(hdr), 3u);
    EXPECT_EQ(StatusWord::typeId(hdr), 9u);

    const Addr cell = ObjectModel::cellFromRef(ref, 3);
    const Word w0 = heap_.read(cell);
    EXPECT_TRUE(CellStart::isLive(w0));
    EXPECT_EQ(CellStart::numRefs(w0), 3u);
    for (std::uint32_t i = 0; i < 3; ++i) {
        EXPECT_EQ(heap_.getRef(ref, i), nullRef);
    }
}

TEST_F(HeapTest, SetGetRef)
{
    const ObjRef a = heap_.allocate(2, 0);
    const ObjRef b = heap_.allocate(0, 1);
    heap_.setRef(a, 1, b);
    EXPECT_EQ(heap_.getRef(a, 1), b);
    EXPECT_EQ(heap_.getRef(a, 0), nullRef);
}

TEST_F(HeapTest, AllocationUsesSizeClasses)
{
    const ObjRef small = heap_.allocate(0, 0); // 16 bytes -> class 0.
    const ObjRef big = heap_.allocate(20, 20); // 336 bytes -> 384.
    ASSERT_EQ(heap_.blocks().size(), 2u);
    const auto &blocks = heap_.blocks();
    EXPECT_EQ(blocks[0].cellBytes, 16u);
    EXPECT_EQ(blocks[1].cellBytes, 384u);
    (void)small;
    (void)big;
}

TEST_F(HeapTest, CellsComeFromTheSameBlockUntilFull)
{
    const std::uint64_t cells_per_block = blockBytes / 16;
    for (std::uint64_t i = 0; i < cells_per_block; ++i) {
        heap_.allocate(0, 0);
    }
    EXPECT_EQ(heap_.blocks().size(), 1u);
    heap_.allocate(0, 0);
    EXPECT_EQ(heap_.blocks().size(), 2u);
}

TEST_F(HeapTest, BlockTableEntryWritten)
{
    heap_.allocate(0, 0);
    const Addr entry = heap_.blockTableEntryAddr(0);
    EXPECT_EQ(heap_.read(entry), heap_.blocks()[0].base);
    const Word geom = heap_.read(entry + wordBytes);
    EXPECT_EQ(BlockTableEntry::cellBytes(geom), 16u);
    // Free head advanced past the allocated cell.
    const Addr head = heap_.read(entry + 2 * wordBytes);
    EXPECT_EQ(head, heap_.blocks()[0].base + 16);
}

TEST_F(HeapTest, FreshBlockFreeListIsChained)
{
    heap_.allocate(0, 0);
    const auto &block = heap_.blocks()[0];
    // Walk the remainder of the free list.
    Addr cursor = heap_.read(heap_.blockTableEntryAddr(0) +
                             2 * wordBytes);
    std::uint64_t length = 0;
    while (cursor != nullRef) {
        const Word w0 = heap_.read(cursor);
        EXPECT_FALSE(CellStart::isLive(w0));
        cursor = CellStart::nextFree(w0);
        ++length;
    }
    EXPECT_EQ(length, blockBytes / block.cellBytes - 1);
}

TEST_F(HeapTest, OversizeObjectGoesToLos)
{
    const ObjRef big = heap_.allocate(2000, 0);
    EXPECT_GE(big, HeapLayout::losBase);
    EXPECT_EQ(heap_.objects().back().space, Space::Los);
    EXPECT_EQ(heap_.blocks().size(), 0u);
}

TEST_F(HeapTest, ImmortalAllocation)
{
    const ObjRef obj = heap_.allocate(1, 1, Space::Immortal);
    EXPECT_GE(obj, HeapLayout::immortalBase);
    EXPECT_EQ(heap_.numRefs(obj), 1u);
}

TEST_F(HeapTest, RootsPublishToHwgcSpace)
{
    const ObjRef a = heap_.allocate(0, 0);
    const ObjRef b = heap_.allocate(0, 0);
    heap_.addRoot(a);
    heap_.addRoot(b);
    heap_.publishRoots();
    EXPECT_EQ(heap_.publishedRootCount(), 2u);
    EXPECT_EQ(heap_.read(HeapLayout::hwgcSpaceBase), a);
    EXPECT_EQ(heap_.read(HeapLayout::hwgcSpaceBase + 8), b);
}

TEST_F(HeapTest, ReachabilityOracle)
{
    const ObjRef root = heap_.allocate(2, 0);
    const ObjRef child = heap_.allocate(1, 0);
    const ObjRef grandchild = heap_.allocate(0, 0);
    const ObjRef orphan = heap_.allocate(0, 0);
    heap_.setRef(root, 0, child);
    heap_.setRef(child, 0, grandchild);
    heap_.addRoot(root);

    const auto reachable = heap_.computeReachable();
    EXPECT_EQ(reachable.size(), 3u);
    EXPECT_TRUE(reachable.count(root));
    EXPECT_TRUE(reachable.count(child));
    EXPECT_TRUE(reachable.count(grandchild));
    EXPECT_FALSE(reachable.count(orphan));
}

TEST_F(HeapTest, OracleHandlesCycles)
{
    const ObjRef a = heap_.allocate(1, 0);
    const ObjRef b = heap_.allocate(1, 0);
    heap_.setRef(a, 0, b);
    heap_.setRef(b, 0, a);
    heap_.addRoot(a);
    EXPECT_EQ(heap_.computeReachable().size(), 2u);
}

TEST_F(HeapTest, MarkBookkeeping)
{
    const ObjRef a = heap_.allocate(0, 0);
    heap_.allocate(0, 0);
    EXPECT_EQ(heap_.countMarked(), 0u);
    heap_.write(a, heap_.read(a) | StatusWord::markBit);
    EXPECT_EQ(heap_.countMarked(), 1u);
    heap_.clearAllMarks();
    EXPECT_EQ(heap_.countMarked(), 0u);
}

TEST_F(HeapTest, OnAfterSweepPrunesFreedCells)
{
    const ObjRef keep = heap_.allocate(0, 0);
    const ObjRef drop = heap_.allocate(0, 0);
    // Simulate a sweep: mark `keep`, free `drop`'s cell.
    heap_.write(keep, heap_.read(keep) | StatusWord::markBit);
    heap_.write(ObjectModel::cellFromRef(drop, 0), CellStart::makeFree(0));
    EXPECT_EQ(heap_.onAfterSweep(), 1u);
    ASSERT_EQ(heap_.objects().size(), 1u);
    EXPECT_EQ(heap_.objects()[0].ref, keep);
}

TEST_F(HeapTest, OnAfterSweepPrunesUnmarkedImmortal)
{
    const ObjRef live = heap_.allocate(0, 0, Space::Immortal);
    heap_.allocate(0, 0, Space::Immortal); // Dead: never marked.
    heap_.write(live, heap_.read(live) | StatusWord::markBit);
    EXPECT_EQ(heap_.onAfterSweep(), 1u);
    ASSERT_EQ(heap_.objects().size(), 1u);
    EXPECT_EQ(heap_.objects()[0].ref, live);
}

TEST_F(HeapTest, FreedCellsAreReused)
{
    const ObjRef a = heap_.allocate(0, 0);
    const Addr cell = ObjectModel::cellFromRef(a, 0);
    // Free it behind the runtime's back (as a sweep would).
    heap_.write(cell, CellStart::makeFree(
        heap_.read(heap_.blockTableEntryAddr(0) + 2 * wordBytes)));
    heap_.write(heap_.blockTableEntryAddr(0) + 2 * wordBytes, cell);
    heap_.onAfterSweep();
    const ObjRef b = heap_.allocate(0, 0);
    EXPECT_EQ(ObjectModel::cellFromRef(b, 0), cell);
}

TEST_F(HeapTest, ObjectBytesDependsOnLayout)
{
    mem::PhysMem mem2;
    HeapParams tib;
    tib.layout = Layout::Tib;
    Heap tib_heap(mem2, tib);
    EXPECT_EQ(heap_.objectBytes(2, 3), (2 + 2 + 3) * 8u);
    EXPECT_EQ(tib_heap.objectBytes(2, 3), (2 + 2 + 3 + 1) * 8u);
}

TEST_F(HeapTest, TibLayoutWritesTibPointer)
{
    mem::PhysMem mem2;
    HeapParams params;
    params.layout = Layout::Tib;
    Heap tib_heap(mem2, params);
    const ObjRef obj = tib_heap.allocate(1, 0, Space::MarkSweep, 7);
    const Word tib_ptr = tib_heap.read(obj + wordBytes);
    EXPECT_GE(tib_ptr, HeapLayout::immortalBase);
}

TEST_F(HeapTest, PageTableCoversHeapRegions)
{
    heap_.allocate(0, 0); // Carves a block, mapping its pages.
    const auto &pt = heap_.pageTable();
    EXPECT_TRUE(pt.translate(heap_.blocks()[0].base).has_value());
    EXPECT_TRUE(pt.translate(HeapLayout::hwgcSpaceBase).has_value());
    EXPECT_TRUE(pt.translate(HeapLayout::blockTableBase).has_value());
    EXPECT_TRUE(pt.translate(HeapLayout::losBase).has_value());
    EXPECT_TRUE(pt.translate(HeapLayout::immortalBase).has_value());
}

TEST_F(HeapTest, BytesAllocatedGrows)
{
    EXPECT_EQ(heap_.bytesAllocated(), 0u);
    heap_.allocate(0, 0);
    EXPECT_EQ(heap_.bytesAllocated(), 16u); // One 16-byte cell.
}

} // namespace
} // namespace hwgc::runtime
