/**
 * @file
 * Ideal latency-bandwidth pipe implementation.
 */

#include "ideal_mem.h"

#include <algorithm>

#include "mem/request.h"
#include "sim/checkpoint.h"

namespace hwgc::mem
{

IdealMem::IdealMem(std::string name, const IdealMemParams &params,
                   PhysMem &mem)
    : MemDevice(std::move(name)), params_(params), mem_(mem),
      bandwidth_("bandwidth", params.bandwidthBucket)
{
    hasBspHooks_ = true; // Deliveries are staged in ParallelBsp mode.
    stagedDeliveries_.reserve(params_.maxInFlight);
}

bool
IdealMem::canAccept(const MemRequest &) const
{
    return inFlight_ < params_.maxInFlight;
}

bool
IdealMem::canAcceptBsp(const MemRequest &, unsigned pendingReads,
                       unsigned pendingWrites) const
{
    return inFlight_ + pendingReads + pendingWrites <
           params_.maxInFlight;
}

Tick
IdealMem::serviceAccess(const MemRequest &req, Tick now)
{
    const Tick burst = params_.perRequestOverhead + std::max<Tick>(
        1, Tick(double(req.size) / params_.busBytesPerCycle + 0.999));
    const Tick start = std::max(now + params_.latency, busFreeAt_);
    busFreeAt_ = start + burst;
    ++numRequests_;
    bytesMoved_ += req.size;
    bandwidth_.record(start + burst, req.size);
    return start + burst;
}

void
IdealMem::sendRequest(const MemRequest &req, Tick now)
{
    pokeWakeup();
    panic_if(!canAccept(req), "IdealMem overflow");
    ++inFlight_;
    completions_.push({serviceAccess(req, now), req});
}

void
IdealMem::tick(Tick now)
{
    // Delivery side effects cross partition boundaries in ParallelBsp
    // mode (PhysMem access, the in-flight counter the bus polls, the
    // upstream onResponse): stage them for bspCommit(). Blanket
    // evaluate-phase predicate — from our own tick the active
    // partition is ours, yet the responder may live anywhere.
    const bool staging = bspEvaluatePhase();
    while (!completions_.empty() && completions_.top().at <= now) {
        const Completion c = completions_.top();
        completions_.pop();
        if (staging) {
            panic_if(!stagedDeliveries_.push(c.req),
                     "IdealMem staged-delivery ring overflow");
            detail::noteStagedEvent();
            continue;
        }
        MemResponse resp;
        resp.req = c.req;
        resp.completed = now;
        if (!c.req.timingOnly) {
            mem_.execute(c.req, resp.rdata);
        }
        panic_if(inFlight_ == 0, "in-flight underflow");
        --inFlight_;
        panic_if(responder_ == nullptr, "IdealMem has no responder");
        responder_->onResponse(resp, now);
    }
}

void
IdealMem::bspCommit(Tick now)
{
    MemRequest req;
    while (stagedDeliveries_.pop(req)) {
        MemResponse resp;
        resp.req = req;
        resp.completed = now;
        if (!req.timingOnly) {
            mem_.execute(req, resp.rdata);
        }
        panic_if(inFlight_ == 0, "in-flight underflow");
        --inFlight_;
        panic_if(responder_ == nullptr, "IdealMem has no responder");
        responder_->onResponse(resp, now);
    }
}

bool
IdealMem::busy() const
{
    return !completions_.empty();
}

Tick
IdealMem::accessAtomic(const MemRequest &req, Tick now,
                       std::array<Word, maxReqWords> &rdata)
{
    const Tick done = serviceAccess(req, now);
    if (!req.timingOnly) {
        mem_.execute(req, rdata);
    }
    return done - now;
}

void
IdealMem::save(checkpoint::Serializer &ser) const
{
    // Checkpoints are only taken at inter-cycle boundaries, where the
    // ParallelBsp staging buffer has been committed and cleared.
    panic_if(!stagedDeliveries_.empty(),
             "memory '%s' checkpointed mid-evaluate", name().c_str());
    ser.putU64(busFreeAt_);
    ser.putU64(inFlight_);
    // Drain a copy of the priority queue so completions serialize in
    // deterministic (time-sorted) order, not heap order.
    auto completions = completions_;
    ser.putU64(completions.size());
    while (!completions.empty()) {
        const Completion &c = completions.top();
        ser.putU64(c.at);
        saveRequest(ser, c.req);
        completions.pop();
    }
    checkpoint::putStat(ser, numRequests_);
    checkpoint::putStat(ser, bytesMoved_);
    checkpoint::putStat(ser, bandwidth_);
}

void
IdealMem::restore(checkpoint::Deserializer &des)
{
    panic_if(!stagedDeliveries_.empty(),
             "memory '%s' restored mid-evaluate", name().c_str());
    busFreeAt_ = des.getU64();
    inFlight_ = unsigned(des.getU64());
    completions_ = {};
    const std::uint64_t num_completions = des.getU64();
    for (std::uint64_t i = 0; i < num_completions; ++i) {
        Completion c;
        c.at = des.getU64();
        c.req = restoreRequest(des);
        completions_.push(c);
    }
    checkpoint::getStat(des, numRequests_);
    checkpoint::getStat(des, bytesMoved_);
    checkpoint::getStat(des, bandwidth_);
}

void
IdealMem::resetStats()
{
    numRequests_.reset();
    bytesMoved_.reset();
    bandwidth_.reset();
}

} // namespace hwgc::mem
