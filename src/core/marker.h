/**
 * @file
 * The marker pipeline stage (paper Fig 13).
 *
 * "Instead of using a cache with MSHRs, we manage our own requests,
 * as they are identical and unordered": the marker holds a small tag
 * table of in-flight mark operations (16 slots in the baseline). For
 * each reference dequeued from the mark queue it translates through
 * its private TLB (walks serialize through the shared blocking PTW),
 * issues an 8-byte read of the status word, and on the response
 * issues the write-back that sets the mark bit and frees the slot —
 * eliding the write-back if the object was already marked. Newly
 * marked objects with outbound references enter the tracer queue.
 *
 * An optional mark-bit cache of recently marked references filters
 * repeat marks of hot objects before they cost a memory round trip
 * (paper §V-C / Fig 21).
 */

#ifndef HWGC_CORE_MARKER_H
#define HWGC_CORE_MARKER_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/hwgc_config.h"
#include "core/mark_queue.h"
#include "core/trace_queue.h"
#include "mem/ptw.h"
#include "mem/tlb.h"

namespace hwgc::core
{

/** Small fully-associative LRU set of recently marked references. */
class MarkBitCache
{
  public:
    explicit MarkBitCache(unsigned entries) : entries_(entries) {}

    bool enabled() const { return entries_ != 0; }

    /** True if @p ref was marked recently (filters the request). */
    bool
    contains(Addr ref)
    {
        for (auto &e : slots_) {
            if (e.first == ref) {
                e.second = ++useCounter_;
                return true;
            }
        }
        return false;
    }

    void
    insert(Addr ref)
    {
        if (!enabled()) {
            return;
        }
        if (slots_.size() < entries_) {
            slots_.emplace_back(ref, ++useCounter_);
            return;
        }
        auto *lru = &slots_.front();
        for (auto &e : slots_) {
            if (e.second < lru->second) {
                lru = &e;
            }
        }
        *lru = {ref, ++useCounter_};
    }

    void clear() { slots_.clear(); }

    void
    save(checkpoint::Serializer &ser) const
    {
        ser.putU64(useCounter_);
        ser.putU64(slots_.size());
        for (const auto &e : slots_) {
            ser.putU64(e.first);
            ser.putU64(e.second);
        }
    }

    void
    restore(checkpoint::Deserializer &des)
    {
        useCounter_ = des.getU64();
        const std::uint64_t count = des.getU64();
        fatal_if(count > entries_,
                 "checkpoint '%s': mark-bit cache holds %llu entries "
                 "but has capacity %u — configurations differ",
                 des.origin().c_str(), (unsigned long long)count,
                 entries_);
        slots_.clear();
        slots_.reserve(std::size_t(count));
        for (std::uint64_t i = 0; i < count; ++i) {
            const Addr ref = des.getU64();
            const std::uint64_t use = des.getU64();
            slots_.emplace_back(ref, use);
        }
    }

  private:
    unsigned entries_;
    std::vector<std::pair<Addr, std::uint64_t>> slots_;
    std::uint64_t useCounter_ = 0;
};

/** The marker. */
class Marker : public Clocked, public mem::MemResponder
{
  public:
    Marker(std::string name, const HwgcConfig &config,
           MarkQueue &mark_queue, TraceQueue &trace_queue,
           mem::MemPort *port, mem::Ptw &ptw);

    /** True when no reference is held, in flight or half-finished. */
    bool idle() const;

    // MemResponder interface.
    void onResponse(const mem::MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override { return !idle(); }
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void fastForward(Tick from, Tick to) override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /**
     * Re-creates the page-walk completion callback for walk-waiter
     * slot @p token (used by the PTW callback resolver on restore).
     */
    mem::Ptw::WalkCallback walkCallback(std::uint64_t token);

    /** In-flight mark reads (for the coupled-tracer ablation). */
    unsigned inFlight() const { return inFlightReads_; }

    /** Drops TLB/cache state between phases. */
    void reset();

    void resetStats();

    /**
     * Enables per-object access profiling (Fig 21a). Expensive;
     * off by default.
     */
    void setProfileTargets(bool on) { profileTargets_ = on; }

    /** @name Statistics @{ */
    std::uint64_t marksIssued() const { return marksIssued_.value(); }
    std::uint64_t alreadyMarked() const { return alreadyMarked_.value(); }
    std::uint64_t newlyMarked() const { return newlyMarked_.value(); }
    std::uint64_t writebacksElided() const
    {
        return writebacksElided_.value();
    }
    std::uint64_t markCacheHits() const { return markCacheHits_.value(); }
    std::uint64_t tlbMissStalls() const { return tlbMissStalls_.value(); }
    const mem::TlbArray &tlb() const { return tlb_; }
    const std::unordered_map<Addr, std::uint64_t> &
    targetProfile() const
    {
        return targetProfile_;
    }
    /** @} */

    /** Registers the marker's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&marksIssued_);
        g.add(&alreadyMarked_);
        g.add(&newlyMarked_);
        g.add(&writebacksElided_);
        g.add(&markCacheHits_);
        g.add(&tlbMissStalls_);
    }

  private:
    enum class SlotState : std::uint8_t
    {
        Free,
        AwaitRead,  //!< Status-word read in flight.
        Finish,     //!< Needs write-back and/or tracer push.
    };

    struct Slot
    {
        SlotState state = SlotState::Free;
        Addr ref = 0;   //!< Virtual address (for the tracer).
        Addr paddr = 0; //!< Translated status-word address.
        Word newHeader = 0;
        bool needWriteback = false;
        bool needTracePush = false;
        std::uint32_t numRefs = 0;
    };

    /** Tries to finish half-done slots (write-backs, tracer pushes). */
    void finishSlots(Tick now);

    /** Tries to start one new mark operation. */
    void issue(Tick now);

    int findFreeSlot() const;

    HwgcConfig config_;
    MarkQueue &markQueue_;
    TraceQueue &traceQueue_;
    mem::MemPort *port_;
    mem::Ptw &ptw_;
    unsigned ptwPort_ = 0; //!< Our requester port on the shared PTW.
    mem::TlbArray tlb_;
    MarkBitCache markBitCache_;

    std::vector<Slot> slots_;
    unsigned inFlightReads_ = 0;

    /** A dequeued reference parked while its page walk completes. */
    struct WalkWaiter
    {
        bool valid = false;
        bool walkRequested = false;
        bool ready = false;
        Addr ref = 0;
        Addr pa = 0;
    };

    /** Sends the status-word read for @p ref; false if port full. */
    bool issueRead(Addr ref, Addr pa, Tick now);

    std::vector<WalkWaiter> waiters_;
    unsigned waitersActive_ = 0;

    bool profileTargets_ = false;
    std::unordered_map<Addr, std::uint64_t> targetProfile_;

    stats::Scalar marksIssued_{"marksIssued"};
    stats::Scalar alreadyMarked_{"alreadyMarked"};
    stats::Scalar newlyMarked_{"newlyMarked"};
    stats::Scalar writebacksElided_{"writebacksElided"};
    stats::Scalar markCacheHits_{"markCacheHits"};
    stats::Scalar tlbMissStalls_{"tlbMissStalls"};
};

} // namespace hwgc::core

#endif // HWGC_CORE_MARKER_H
