/**
 * @file
 * Concurrent marking harness implementation.
 */

#include "concurrent.h"

#include "runtime/heap_layout.h"

namespace hwgc::driver
{

using runtime::HeapLayout;
using runtime::ObjRef;
using runtime::StatusWord;

ConcurrentMarkLab::ConcurrentMarkLab(runtime::Heap &heap,
                                     workload::GraphBuilder &builder,
                                     core::HwgcDevice &device,
                                     const ConcurrentParams &params)
    : heap_(heap), builder_(builder), device_(device), params_(params),
      rng_(params.seed)
{
}

void
ConcurrentMarkLab::logBarrier(ObjRef ref)
{
    if (ref == runtime::nullRef) {
        return;
    }
    fatal_if((regionCount_ + 1) * wordBytes > HeapLayout::hwgcSpaceSize,
             "barrier log overflowed hwgc-space");
    heap_.write(heap_.hwgcSpaceBase() + regionCount_ * wordBytes, ref);
    ++regionCount_;
    ++barrierEntries_;
    device_.rootReader().extend(regionCount_);
}

void
ConcurrentMarkLab::mutateOnce()
{
    if (mutatorView_.empty()) {
        return;
    }

    if (rng_.chance(params_.allocFraction)) {
        // Allocate (black, if configured) and attach to a random
        // object the mutator holds.
        const ObjRef fresh = heap_.allocate(
            std::uint32_t(rng_.range(0, 4)),
            std::uint32_t(rng_.range(0, 6)));
        mutatorView_.push_back(fresh);
        const ObjRef anchor =
            mutatorView_[rng_.below(mutatorView_.size())];
        const std::uint32_t n = heap_.numRefs(anchor);
        if (n > 0) {
            const std::uint32_t slot = std::uint32_t(rng_.below(n));
            const ObjRef old = heap_.getRef(anchor, slot);
            if (params_.useWriteBarrier) {
                logBarrier(old);
            }
            heap_.setRef(anchor, slot, fresh);
        }
        return;
    }

    // Move a reference: the Fig 3 pattern — load a reference into a
    // "register", remove it from its old location, store it
    // elsewhere. Without the barrier this can hide the target from
    // the concurrent traversal.
    const ObjRef src = mutatorView_[rng_.below(mutatorView_.size())];
    const std::uint32_t src_refs = heap_.numRefs(src);
    if (src_refs == 0) {
        return;
    }
    const std::uint32_t src_slot = std::uint32_t(rng_.below(src_refs));
    const ObjRef moved = heap_.getRef(src, src_slot); // "register"
    if (params_.useWriteBarrier) {
        logBarrier(moved); // Old value of the slot being overwritten.
    }
    heap_.setRef(src, src_slot, runtime::nullRef);

    const ObjRef dst = mutatorView_[rng_.below(mutatorView_.size())];
    const std::uint32_t dst_refs = heap_.numRefs(dst);
    if (dst_refs > 0 && moved != runtime::nullRef) {
        const std::uint32_t dst_slot =
            std::uint32_t(rng_.below(dst_refs));
        if (params_.useWriteBarrier) {
            logBarrier(heap_.getRef(dst, dst_slot));
        }
        heap_.setRef(dst, dst_slot, moved);
    }
}

ConcurrentResult
ConcurrentMarkLab::run()
{
    ConcurrentResult result;

    heap_.publishRoots();
    regionCount_ = heap_.publishedRootCount();
    heap_.setAllocateBlack(params_.allocateBlack);

    // The snapshot the collector must preserve.
    const auto snapshot = heap_.computeReachable();
    result.startReachable = snapshot.size();

    // The mutator can only act on objects it can reach — exactly the
    // snapshot (plus its own new allocations, added as it goes). A
    // reference to an unreachable object cannot exist in real code.
    mutatorView_.clear();
    for (const auto &obj : heap_.objects()) {
        if (snapshot.count(obj.ref) != 0) {
            mutatorView_.push_back(obj.ref);
        }
    }

    device_.configure(heap_);
    device_.regs().rootCount = regionCount_;
    device_.rootReader().start(heap_.hwgcSpaceBase(), regionCount_);

    auto &system = device_.system();
    const Tick start = system.now();
    std::uint64_t remaining = params_.totalMutations;
    while (true) {
        system.run(params_.epochCycles);
        if (remaining > 0) {
            for (unsigned i = 0;
                 i < params_.mutationsPerEpoch && remaining > 0; ++i) {
                mutateOnce();
                --remaining;
            }
        } else if (!device_.rootReader().busy() &&
                   device_.marker().idle() && device_.tracer().idle() &&
                   device_.markQueue().empty()) {
            // Mutator quiesced and the traversal drained.
            const bool idle = system.runUntilIdle(10'000'000);
            panic_if(!idle, "concurrent mark failed to drain");
            break;
        }
        panic_if(system.now() - start > 4'000'000'000ULL,
                 "concurrent mark diverged");
    }
    result.markCycles = system.now() - start;
    result.mutations = params_.totalMutations - remaining;
    result.barrierEntries = barrierEntries_;

    telemetry::TraceWriter &tw = telemetry::TraceWriter::global();
    if (tw.enabled()) {
        tw.completeSpan(device_.statsPrefix(), "concurrentMark", start,
                        system.now());
        tw.counter(device_.statsPrefix() + ".barrierEntries",
                   system.now(), double(barrierEntries_));
    }

    heap_.setAllocateBlack(false);

    // Snapshot invariant: everything reachable at the start is marked.
    for (const ObjRef ref : snapshot) {
        if (!StatusWord::marked(heap_.read(ref))) {
            ++result.lostObjects;
        }
    }
    result.markedAtEnd = heap_.countMarked();
    const auto end_reachable = heap_.computeReachable();
    std::uint64_t marked_unreachable = 0;
    for (const auto &obj : heap_.objects()) {
        if (StatusWord::marked(heap_.read(obj.ref)) &&
            end_reachable.count(obj.ref) == 0) {
            ++marked_unreachable;
        }
    }
    result.floatingGarbage = marked_unreachable;
    return result;
}

} // namespace hwgc::driver
