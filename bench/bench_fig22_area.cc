/**
 * @file
 * Fig 22 — area estimates: total (Rocket vs GC unit), Rocket CPU
 * breakdown, and GC unit breakdown.
 *
 * The paper: "our GC unit is 18.5% the size of the CPU, most of which
 * is taken by the mark queue. This is comparable to the area of 64KB
 * of SRAM."
 */

#include <cstdio>

#include "bench_util.h"
#include "model/area.h"

namespace
{

void
printBreakdown(const char *title,
               const hwgc::model::AreaBreakdown &area)
{
    std::printf("\n  %s (total %.3f mm^2)\n", title, area.total());
    for (const auto &[name, mm2] : area.parts) {
        std::printf("  %-12s %8.3f mm^2  (%5.1f%%)\n", name.c_str(),
                    mm2, 100.0 * mm2 / area.total());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 22: area (Synopsys-DC-style estimates)",
                  "unit = 18.5% of Rocket, ~64 KiB of SRAM");

    const model::AreaModel area;
    const core::HwgcConfig config;

    const auto rocket = area.rocketArea();
    const auto unit = area.hwgcArea(config);
    std::printf("  (a) Total: Rocket %.3f mm^2, GC unit %.3f mm^2 "
                "-> %.1f%%\n",
                rocket.total(), unit.total(),
                100.0 * area.ratio(config));
    std::printf("      SRAM-equivalent of the unit: %.1f KiB\n",
                area.sramEquivalentKiB(config));

    printBreakdown("(b) Rocket CPU", rocket);
    printBreakdown("(c) GC unit (baseline config)", unit);

    // Sensitivity: how the Fig 19 mark-queue points move the total.
    std::printf("\n  mark-queue sensitivity:\n");
    for (const auto &[label, entries] :
         std::vector<std::pair<const char *, unsigned>>{
             {"2KB", 128}, {"4KB", 384}, {"18KB", 2176},
             {"130KB", 16512}}) {
        core::HwgcConfig c;
        c.markQueueEntries = entries;
        std::printf("  queue %-6s -> unit %.3f mm^2 (%.1f%% of "
                    "Rocket)\n",
                    label, area.hwgcArea(c).total(),
                    100.0 * area.ratio(c));
    }
    return 0;
}
