/**
 * @file
 * DaCapo-inspired benchmark profiles.
 *
 * The paper evaluates "the subset of DaCapo benchmarks that runs on
 * our version of JikesRVM": avrora, luindex, lusearch, pmd, sunflow,
 * xalan, each on the small input with a 200 MB heap cap. We cannot
 * run the Java benchmarks, so each profile is a synthetic heap shape
 * whose live-set size, degree distribution and churn are chosen so
 * the *relative* mark/sweep behaviour across benchmarks resembles
 * Fig 15 (pmd and xalan heaviest, avrora/sunflow lightest) while
 * staying laptop-scale. luindex carries the Fig 21 hot set ("56
 * objects account for 10% of accesses", measured at its 8th GC).
 */

#ifndef HWGC_WORKLOAD_DACAPO_H
#define HWGC_WORKLOAD_DACAPO_H

#include <string>
#include <vector>

#include "workload/graph_gen.h"

namespace hwgc::workload
{

/** One benchmark's workload description. */
struct BenchmarkProfile
{
    std::string name;
    GraphParams graph;
    unsigned numGCs = 4;      //!< GC pauses during the run.
    double churnPerGC = 0.3;  //!< Live-set turnover between pauses.

    /**
     * Modeled mutator time between consecutive pauses in
     * milliseconds, used only for Fig 1a's "% of CPU time in GC" and
     * Fig 1b's timeline (the simulator measures pause times; it does
     * not execute Java application code).
     */
    double mutatorMsPerGC = 20.0;
};

/** The six-benchmark suite used throughout the evaluation. */
std::vector<BenchmarkProfile> dacapoSuite();

/** Looks up one profile by name (fatal if unknown). */
BenchmarkProfile dacapoProfile(const std::string &name);

/** A tiny profile for fast smoke tests and the quickstart example. */
BenchmarkProfile smokeProfile();

} // namespace hwgc::workload

#endif // HWGC_WORKLOAD_DACAPO_H
