/**
 * @file
 * The functional backing store for simulated physical memory.
 *
 * Storage is sparse at page granularity so a 2 GiB physical address
 * space (Table I) costs only what is actually touched. All functional
 * state in the simulation — heap objects, page tables, free lists, the
 * spill region — lives in here, which is what lets us prove that the
 * hardware and software collectors compute identical results.
 */

#ifndef HWGC_MEM_PHYS_MEM_H
#define HWGC_MEM_PHYS_MEM_H

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/request.h"
#include "sim/types.h"

namespace hwgc::mem
{

/** Sparse functional physical memory; zero-filled on first touch. */
class PhysMem
{
  public:
    /** @param size Size of the physical address space in bytes. */
    explicit PhysMem(std::uint64_t size = 2ULL << 30) : size_(size) {}

    std::uint64_t size() const { return size_; }

    /** Reads one naturally aligned 64-bit word. */
    Word readWord(Addr addr) const;

    /** Writes one naturally aligned 64-bit word. */
    void writeWord(Addr addr, Word value);

    /**
     * Atomically ORs @p operand into the word at @p addr.
     * @return The previous value (the fetch-or the marker relies on).
     */
    Word fetchOrWord(Addr addr, Word operand);

    /** Reads @p len bytes into @p dst. */
    void readBytes(Addr addr, void *dst, std::uint64_t len) const;

    /** Writes @p len bytes from @p src. */
    void writeBytes(Addr addr, const void *src, std::uint64_t len);

    /** Zero-fills a byte range. */
    void zero(Addr addr, std::uint64_t len);

    /**
     * Functionally executes a request message, filling @p rdata for
     * reads/fetch-ors. Used by the memory devices at completion time.
     */
    void execute(const MemRequest &req,
                 std::array<Word, maxReqWords> &rdata);

    /** Number of distinct pages touched so far (for tests/telemetry). */
    std::size_t pagesTouched() const { return pages_.size(); }

    /** An opaque copy of all touched pages. */
    struct Snapshot
    {
        std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
            pages;
    };

    /**
     * Captures the full functional state. Used to replay the exact
     * same GC pause on both the software and hardware collectors.
     */
    Snapshot snapshot() const;

    /** Restores a previously captured snapshot. */
    void restore(const Snapshot &snap);

  private:
    using Page = std::vector<std::uint8_t>;

    Page &page(Addr addr);
    const Page *pageIfPresent(Addr addr) const;
    void checkRange(Addr addr, std::uint64_t len) const;

    std::uint64_t size_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace hwgc::mem

#endif // HWGC_MEM_PHYS_MEM_H
