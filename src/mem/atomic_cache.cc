/**
 * @file
 * Atomic cache implementation.
 */

#include "atomic_cache.h"

namespace hwgc::mem
{

AtomicCache::AtomicCache(std::string name,
                         const AtomicCacheParams &params,
                         AtomicCache *next, MemDevice *memory)
    : name_(std::move(name)), params_(params),
      tags_(params.sizeBytes, params.assoc), next_(next), memory_(memory)
{
    panic_if(next_ == nullptr && memory_ == nullptr,
             "cache '%s' has no downstream", name_.c_str());
}

Tick
AtomicCache::chargeDownstream(Addr line_addr, bool is_write, Tick now)
{
    if (next_ != nullptr) {
        return next_->access(line_addr, lineBytes, is_write, now);
    }
    MemRequest req;
    req.paddr = line_addr;
    req.size = lineBytes;
    req.op = is_write ? Op::Write : Op::Read;
    req.timingOnly = true;
    std::array<Word, maxReqWords> scratch{};
    return memory_->accessAtomic(req, now, scratch);
}

Tick
AtomicCache::accessLine(Addr line_addr, bool is_write, Tick now)
{
    if (tags_.access(line_addr)) {
        ++hits_;
        if (is_write) {
            tags_.markDirty(line_addr);
        }
        return params_.hitLatency;
    }

    ++misses_;
    Tick latency = params_.hitLatency;
    const CacheTags::Victim victim = tags_.insert(line_addr, is_write);
    if (victim.valid && victim.dirty) {
        ++writebacks_;
        // Dirty evictions are buffered in real designs; charge the
        // downstream for the traffic but not the requester's latency.
        chargeDownstream(victim.lineAddr, true, now);
    }
    latency += chargeDownstream(line_addr, false, now + latency);
    return latency;
}

Tick
AtomicCache::access(Addr addr, unsigned size, bool is_write, Tick now)
{
    panic_if(size == 0, "zero-size access");
    const Addr first = alignDown(addr, lineBytes);
    const Addr last = alignDown(addr + size - 1, lineBytes);
    Tick latency = 0;
    for (Addr line = first; line <= last; line += lineBytes) {
        latency += accessLine(line, is_write, now + latency);
    }
    return latency;
}

void
AtomicCache::flush()
{
    tags_.flush();
}

void
AtomicCache::save(checkpoint::Serializer &ser) const
{
    tags_.save(ser);
    checkpoint::putStat(ser, hits_);
    checkpoint::putStat(ser, misses_);
    checkpoint::putStat(ser, writebacks_);
}

void
AtomicCache::restore(checkpoint::Deserializer &des)
{
    tags_.restore(des);
    checkpoint::getStat(des, hits_);
    checkpoint::getStat(des, misses_);
    checkpoint::getStat(des, writebacks_);
}

void
AtomicCache::resetStats()
{
    hits_.reset();
    misses_.reset();
    writebacks_.reset();
}

} // namespace hwgc::mem
