/**
 * @file
 * Schedule generation and text round-trip.
 */

#include "schedule.h"

#include <cstdio>
#include <sstream>

#include "sim/logging.h"

namespace hwgc::fuzz
{

namespace
{

/** splitmix64 stream, the same mixing test_diff_reachability uses. */
struct Mix
{
    explicit Mix(std::uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ULL)
    {
    }

    std::uint64_t
    operator()()
    {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state;
};

} // namespace

const char *
shapeName(Shape shape)
{
    switch (shape) {
      case Shape::Random: return "random";
      case Shape::Chain: return "chain";
      case Shape::SpillStorm: return "spillstorm";
      case Shape::Sparse: return "sparse";
    }
    return "?";
}

bool
shapeFromName(const std::string &name, Shape &out)
{
    for (const Shape shape : {Shape::Random, Shape::Chain,
                              Shape::SpillStorm, Shape::Sparse}) {
        if (name == shapeName(shape)) {
            out = shape;
            return true;
        }
    }
    return false;
}

unsigned
Schedule::collects() const
{
    unsigned n = 0;
    for (const Op &op : ops) {
        if (op.kind == Op::Kind::Collect) {
            ++n;
        }
    }
    return n;
}

Schedule
generate(std::uint64_t seed)
{
    Mix mix(seed);
    Schedule schedule;
    schedule.seed = seed;

    // Mostly random shapes with a steady diet of adversarial ones.
    const std::uint64_t pick = mix() % 8;
    schedule.shape = pick == 5 ? Shape::Chain
        : pick == 6            ? Shape::SpillStorm
        : pick == 7            ? Shape::Sparse
                               : Shape::Random;

    switch (schedule.shape) {
      case Shape::Random:
        schedule.liveObjects = 200 + mix() % 600;
        schedule.garbageObjects = mix() % 400;
        break;
      case Shape::Chain:
        schedule.liveObjects = 300 + mix() % 700;
        schedule.garbageObjects = 0;
        break;
      case Shape::SpillStorm:
        schedule.liveObjects = 200 + mix() % 300;
        schedule.garbageObjects = mix() % 200;
        break;
      case Shape::Sparse:
        schedule.liveObjects = 150 + mix() % 250;
        schedule.garbageObjects = mix() % 150;
        break;
    }

    // 2–3 pauses with 0–2 mutate steps in between: enough churn to
    // exercise sweep → reallocate → re-mark across every universe
    // while keeping one seed cheap enough for a 200-seed CI sweep.
    const unsigned pauses = 2 + unsigned(mix() % 2);
    for (unsigned p = 0; p < pauses; ++p) {
        if (p > 0) {
            const unsigned mutates = unsigned(mix() % 3);
            for (unsigned m = 0; m < mutates; ++m) {
                Op op;
                op.kind = Op::Kind::Mutate;
                op.churnPermille = 50 + unsigned(mix() % 350);
                schedule.ops.push_back(op);
            }
        }
        schedule.ops.push_back({Op::Kind::Collect, 0});
    }
    return schedule;
}

workload::GraphParams
graphParams(const Schedule &schedule)
{
    Mix mix(schedule.seed * 0x5851f42d4c957f2dULL + 1);
    workload::GraphParams p;
    p.seed = schedule.seed;

    switch (schedule.shape) {
      case Shape::Random:
        p.numRoots = 1 + unsigned(mix() % 48);
        p.avgRefs = 0.5 + double(mix() % 600) / 100.0;
        p.maxRefs = 4 + std::uint32_t(mix() % 20);
        p.minRefs = std::uint32_t(mix() % 2);
        p.arrayFraction = double(mix() % 40) / 100.0;
        p.shareProb = double(mix() % 70) / 100.0;
        p.cycleProb = double(mix() % 30) / 100.0;
        p.largeFraction = double(mix() % 5) / 100.0;
        break;
      case Shape::Chain:
        // A single root and out-degree exactly 1 everywhere: the
        // build walks one pointer chain liveObjects deep, leaving the
        // marker no parallelism to mine.
        p.numRoots = 1;
        p.minRefs = 1;
        p.maxRefs = 1;
        p.avgRefs = 1.0;
        p.avgPayloadWords = 2.0;
        p.maxPayloadWords = 4;
        p.arrayFraction = 0.0;
        p.shareProb = 0.0;
        p.cycleProb = 0.0;
        p.largeFraction = 0.0;
        break;
      case Shape::SpillStorm:
        // Array-heavy breadth: each array dumps up to maxArrayLen
        // references at once, overflowing small mark queues into the
        // spill path.
        p.numRoots = 4 + unsigned(mix() % 8);
        p.minRefs = 1;
        p.avgRefs = 2.0;
        p.maxRefs = 8;
        p.arrayFraction = 0.5;
        p.avgArrayLen = 48.0;
        p.maxArrayLen = 256;
        p.shareProb = 0.2;
        p.largeFraction = 0.02;
        break;
      case Shape::Sparse:
        // Dead padding after every allocation spreads the live set
        // across many pages; maxPayloadWords doubles as pad size.
        p.numRoots = 2 + unsigned(mix() % 14);
        p.avgRefs = 2.0 + double(mix() % 200) / 100.0;
        p.maxRefs = 8;
        p.maxPayloadWords = 32;
        p.arrayFraction = 0.1;
        p.shareProb = 0.3;
        p.sparsePadObjects = 3 + (mix() % 4);
        break;
    }

    if (schedule.liveObjects != 0) {
        p.liveObjects = schedule.liveObjects;
    }
    p.garbageObjects = schedule.garbageObjects;
    return p;
}

std::string
toText(const Schedule &schedule)
{
    std::ostringstream os;
    os << "# hwgc_fuzz schedule\n";
    os << "version 1\n";
    os << "seed " << schedule.seed << "\n";
    os << "shape " << shapeName(schedule.shape) << "\n";
    os << "live " << schedule.liveObjects << "\n";
    os << "garbage " << schedule.garbageObjects << "\n";
    for (const Op &op : schedule.ops) {
        if (op.kind == Op::Kind::Mutate) {
            os << "mutate " << op.churnPermille << "\n";
        } else {
            os << "collect\n";
        }
    }
    return os.str();
}

bool
fromText(const std::string &text, Schedule &out, std::string *err)
{
    const auto fail = [err](unsigned line, const std::string &what) {
        if (err != nullptr) {
            *err = "line " + std::to_string(line) + ": " + what;
        }
        return false;
    };

    Schedule schedule;
    bool saw_version = false;
    std::istringstream is(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Strip comments and whitespace-only lines.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.resize(hash);
        }
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key)) {
            continue;
        }
        if (key == "version") {
            std::uint64_t v = 0;
            if (!(ls >> v) || v != 1) {
                return fail(lineno, "unsupported schedule version");
            }
            saw_version = true;
        } else if (key == "seed") {
            if (!(ls >> schedule.seed)) {
                return fail(lineno, "bad seed");
            }
        } else if (key == "shape") {
            std::string name;
            if (!(ls >> name) || !shapeFromName(name, schedule.shape)) {
                return fail(lineno, "unknown shape '" + name + "'");
            }
        } else if (key == "live") {
            if (!(ls >> schedule.liveObjects)) {
                return fail(lineno, "bad live count");
            }
        } else if (key == "garbage") {
            if (!(ls >> schedule.garbageObjects)) {
                return fail(lineno, "bad garbage count");
            }
        } else if (key == "mutate") {
            Op op;
            op.kind = Op::Kind::Mutate;
            if (!(ls >> op.churnPermille) || op.churnPermille > 1000) {
                return fail(lineno, "bad mutate churn (permille 0..1000)");
            }
            schedule.ops.push_back(op);
        } else if (key == "collect") {
            schedule.ops.push_back({Op::Kind::Collect, 0});
        } else {
            return fail(lineno, "unknown keyword '" + key + "'");
        }
        std::string extra;
        if (ls >> extra) {
            return fail(lineno, "trailing token '" + extra + "'");
        }
    }
    if (!saw_version) {
        return fail(0, "missing 'version 1' header");
    }
    if (schedule.collects() == 0) {
        return fail(0, "schedule has no collect op");
    }
    out = std::move(schedule);
    return true;
}

bool
loadFile(const std::string &path, Schedule &out, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (err != nullptr) {
            *err = "cannot open '" + path + "'";
        }
        return false;
    }
    std::string text;
    char block[4096];
    std::size_t n;
    while ((n = std::fread(block, 1, sizeof(block), f)) > 0) {
        text.append(block, n);
    }
    std::fclose(f);
    if (!fromText(text, out, err)) {
        if (err != nullptr) {
            *err = path + ": " + *err;
        }
        return false;
    }
    return true;
}

bool
saveFile(const std::string &path, const Schedule &schedule)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        warn("fuzz: cannot write schedule '%s'", path.c_str());
        return false;
    }
    const std::string text = toText(schedule);
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
}

} // namespace hwgc::fuzz
