file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_decoupling.dir/bench_abl_decoupling.cc.o"
  "CMakeFiles/bench_abl_decoupling.dir/bench_abl_decoupling.cc.o.d"
  "bench_abl_decoupling"
  "bench_abl_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
