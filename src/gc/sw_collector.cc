/**
 * @file
 * Software Mark & Sweep implementation.
 *
 * Branch call-site ids are stable small constants so the 2-bit
 * predictor model behaves like real per-PC predictors.
 */

#include "sw_collector.h"

#include "runtime/block_table.h"
#include "runtime/heap_layout.h"
#include "runtime/object_model.h"

namespace hwgc::gc
{

using runtime::BlockTableEntry;
using runtime::CellStart;
using runtime::ObjectModel;
using runtime::ObjRef;
using runtime::StatusWord;

namespace
{

/** Branch predictor call sites in the collector's inner loops. */
enum BranchSite : unsigned
{
    siteQueueEmpty = 1,
    siteAlreadyMarked,
    siteRefNull,
    siteHasRefs,
    siteCellLive,
    siteCellMarked,
    siteQueueWrap,
};

} // namespace

SwCollector::SwCollector(runtime::Heap &heap, cpu::CoreModel &core)
    : heap_(heap), core_(core)
{
}

GcResult
SwCollector::mark()
{
    GcResult result;
    const Tick start = core_.cycles();

    const Addr qbase = heap_.swQueueBase();
    const std::uint64_t qcap = heap_.swQueueSize() / wordBytes;
    std::uint64_t head = 0; // Pop index (in words).
    std::uint64_t tail = 0; // Push index.

    // Root scan: stream the published roots into the mark queue.
    const std::uint64_t num_roots = heap_.publishedRootCount();
    for (std::uint64_t i = 0; i < num_roots; ++i) {
        const Word root =
            core_.load(heap_.hwgcSpaceBase() + i * wordBytes);
        core_.branch(siteRefNull, root == runtime::nullRef);
        if (root != runtime::nullRef) {
            core_.store(qbase + (tail % qcap) * wordBytes, root);
            ++tail;
            core_.chargeOps(1); // Index update.
        }
    }

    // Breadth-first traversal.
    while (true) {
        core_.branch(siteQueueEmpty, head == tail);
        if (head == tail) {
            break;
        }
        const ObjRef ref =
            core_.load(qbase + (head % qcap) * wordBytes);
        ++head;
        core_.chargeOps(2); // Index update + wrap check.

        // Mark test: load, test, store (the C collector's fast path).
        const Word hdr = core_.load(ref);
        const bool marked = StatusWord::marked(hdr);
        core_.branch(siteAlreadyMarked, marked);
        if (marked) {
            continue;
        }
        core_.store(ref, hdr | StatusWord::markBit);
        ++result.objectsMarked;

        const std::uint32_t n = StatusWord::numRefs(hdr);
        core_.chargeOps(2); // Extract #REFS, compute slot base.
        core_.branch(siteHasRefs, n != 0);
        const Addr slots = ObjectModel::refsBase(ref, n);
        for (std::uint32_t i = 0; i < n; ++i) {
            const Word target = core_.load(slots + Addr(i) * wordBytes);
            ++result.refsTraced;
            core_.branch(siteRefNull, target == runtime::nullRef);
            core_.chargeOps(1); // Loop index.
            if (target != runtime::nullRef) {
                fatal_if(tail - head >= qcap,
                         "software mark queue overflow");
                core_.store(qbase + (tail % qcap) * wordBytes, target);
                ++tail;
                core_.chargeOps(1);
            }
        }
    }

    result.markCycles = core_.cycles() - start;
    return result;
}

GcResult
SwCollector::sweep()
{
    GcResult result;
    const Tick start = core_.cycles();

    const Addr table = heap_.blockTableBase();
    const std::size_t num_blocks = heap_.blocks().size();
    for (std::size_t b = 0; b < num_blocks; ++b) {
        const Addr entry = BlockTableEntry::addr(table, b);
        const Addr base = core_.load(entry);
        const Word geom = core_.load(entry + wordBytes);
        const std::uint32_t cell_bytes = BlockTableEntry::cellBytes(geom);
        const std::uint64_t cells = runtime::blockBytes / cell_bytes;
        core_.chargeOps(4); // Geometry decode, loop setup.

        // Ascending scan; free cells are relinked in ascending order.
        Addr free_head = runtime::nullRef;
        Addr prev_free = runtime::nullRef;
        std::uint32_t free_cells = 0;
        bool has_live = false;

        for (std::uint64_t c = 0; c < cells; ++c) {
            const Addr cell = base + c * cell_bytes;
            const Word w0 = core_.load(cell);
            core_.chargeOps(2); // Address increment + decode.
            const bool live_cell = CellStart::isLive(w0);
            core_.branch(siteCellLive, live_cell);

            bool reclaim;
            if (live_cell) {
                const std::uint32_t n = CellStart::numRefs(w0);
                const Addr hdr_addr = ObjectModel::refFromCell(cell, n);
                const Word hdr = core_.load(hdr_addr);
                core_.chargeOps(2);
                const bool marked = StatusWord::marked(hdr);
                core_.branch(siteCellMarked, marked);
                reclaim = !marked; // Live but unreachable -> free it.
                if (marked) {
                    has_live = true;
                }
            } else {
                reclaim = true; // Already-free cell: relink it.
            }

            if (reclaim) {
                core_.store(cell, CellStart::makeFree(runtime::nullRef));
                if (prev_free != runtime::nullRef) {
                    core_.store(prev_free, CellStart::makeFree(cell));
                } else {
                    free_head = cell;
                    core_.chargeOps(1);
                }
                prev_free = cell;
                ++free_cells;
                ++result.cellsFreed;
            }
        }

        core_.store(entry + 2 * wordBytes, free_head);
        core_.store(entry + 3 * wordBytes,
                    BlockTableEntry::makeSummary(free_cells, has_live));
        ++result.blocksSwept;
    }

    result.sweepCycles = core_.cycles() - start;
    return result;
}

GcResult
SwCollector::collect()
{
    GcResult result = mark();
    const GcResult swept = sweep();
    result.sweepCycles = swept.sweepCycles;
    result.cellsFreed = swept.cellsFreed;
    result.blocksSwept = swept.blocksSwept;
    return result;
}

} // namespace hwgc::gc
