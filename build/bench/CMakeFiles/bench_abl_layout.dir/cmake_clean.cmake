file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_layout.dir/bench_abl_layout.cc.o"
  "CMakeFiles/bench_abl_layout.dir/bench_abl_layout.cc.o.d"
  "bench_abl_layout"
  "bench_abl_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
