file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_area.dir/bench_fig22_area.cc.o"
  "CMakeFiles/bench_fig22_area.dir/bench_fig22_area.cc.o.d"
  "bench_fig22_area"
  "bench_fig22_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
