/**
 * @file
 * A set-associative tag array with true-LRU replacement.
 *
 * Data never lives in the timing models (simulated PhysMem is the
 * single functional source of truth), so every cache in the system —
 * CPU L1/L2, the PTW cache, the traversal unit's shared cache — is a
 * tag array plus timing rules layered on top of this class.
 */

#ifndef HWGC_MEM_CACHE_TAGS_H
#define HWGC_MEM_CACHE_TAGS_H

#include <cstdint>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc::mem
{

/** Set-associative, true-LRU tag array over 64-byte lines. */
class CacheTags
{
  public:
    /**
     * @param size_bytes Total capacity; must be a multiple of
     *        assoc * line size.
     * @param assoc Associativity (ways per set).
     */
    CacheTags(std::uint64_t size_bytes, unsigned assoc)
        : assoc_(assoc),
          numSets_(unsigned(size_bytes / (std::uint64_t(assoc)
                                          * lineBytes))),
          ways_(std::size_t(numSets_) * assoc)
    {
        panic_if(assoc_ == 0, "associativity must be > 0");
        panic_if(numSets_ == 0 || !isPowerOf2(numSets_),
                 "cache sets must be a non-zero power of two "
                 "(size=%llu assoc=%u)",
                 (unsigned long long)size_bytes, assoc);
    }

    /** Result of evicting a way on insert. */
    struct Victim
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
    };

    /** Probes for the line containing @p addr, updating LRU on hit. */
    bool
    access(Addr addr)
    {
        Way *w = find(addr);
        if (w == nullptr) {
            return false;
        }
        w->lastUse = ++useCounter_;
        return true;
    }

    /** Probes without touching replacement state. */
    bool
    probe(Addr addr) const
    {
        return const_cast<CacheTags *>(this)->find(addr) != nullptr;
    }

    /** Marks the line containing @p addr dirty; false if absent. */
    bool
    markDirty(Addr addr)
    {
        Way *w = find(addr);
        if (w == nullptr) {
            return false;
        }
        w->dirty = true;
        w->lastUse = ++useCounter_;
        return true;
    }

    /**
     * Installs the line containing @p addr, evicting the LRU way of
     * its set if necessary.
     */
    Victim
    insert(Addr addr, bool dirty = false)
    {
        const Addr line = alignDown(addr, lineBytes);
        const unsigned set = setIndex(addr);
        Way *slot = nullptr;
        for (unsigned i = 0; i < assoc_; ++i) {
            Way &w = ways_[std::size_t(set) * assoc_ + i];
            if (!w.valid) {
                slot = &w;
                break;
            }
            if (slot == nullptr || w.lastUse < slot->lastUse) {
                slot = &w;
            }
        }
        Victim victim;
        if (slot->valid) {
            victim.valid = true;
            victim.dirty = slot->dirty;
            victim.lineAddr = slot->lineAddr;
        }
        slot->valid = true;
        slot->dirty = dirty;
        slot->lineAddr = line;
        slot->lastUse = ++useCounter_;
        return victim;
    }

    /** Invalidates everything. */
    void
    flush()
    {
        for (auto &w : ways_) {
            w = Way{};
        }
    }

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** Serializes the full tag array (geometry-checked on restore). */
    void
    save(checkpoint::Serializer &ser) const
    {
        ser.putU64(useCounter_);
        ser.putU64(ways_.size());
        for (const auto &w : ways_) {
            ser.putBool(w.valid);
            ser.putBool(w.dirty);
            ser.putU64(w.lineAddr);
            ser.putU64(w.lastUse);
        }
    }

    void
    restore(checkpoint::Deserializer &des)
    {
        useCounter_ = des.getU64();
        const std::uint64_t count = des.getU64();
        fatal_if(count != ways_.size(),
                 "checkpoint '%s': cache tag array has %llu ways but "
                 "this configuration has %zu — sizes differ",
                 des.origin().c_str(), (unsigned long long)count,
                 ways_.size());
        for (auto &w : ways_) {
            w.valid = des.getBool();
            w.dirty = des.getBool();
            w.lineAddr = des.getU64();
            w.lastUse = des.getU64();
        }
    }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr lineAddr = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned
    setIndex(Addr addr) const
    {
        return unsigned((addr / lineBytes) & (numSets_ - 1));
    }

    Way *
    find(Addr addr)
    {
        const Addr line = alignDown(addr, lineBytes);
        const unsigned set = setIndex(addr);
        for (unsigned i = 0; i < assoc_; ++i) {
            Way &w = ways_[std::size_t(set) * assoc_ + i];
            if (w.valid && w.lineAddr == line) {
                return &w;
            }
        }
        return nullptr;
    }

    unsigned assoc_;
    unsigned numSets_;
    std::vector<Way> ways_;
    std::uint64_t useCounter_ = 0;
};

} // namespace hwgc::mem

#endif // HWGC_MEM_CACHE_TAGS_H
