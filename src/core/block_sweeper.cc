/**
 * @file
 * Block sweeper implementation.
 *
 * The free list is built ascending with exactly one store per free
 * cell: when a free cell is discovered, the previous free cell's
 * start word is linked to it; the final free cell is terminated when
 * the block ends. The software sweep uses the identical scheme so the
 * two implementations produce bit-identical memory.
 */

#include "block_sweeper.h"

#include <algorithm>

#include "runtime/block_table.h"
#include "runtime/heap_layout.h"
#include "runtime/object_model.h"

namespace hwgc::core
{

using runtime::BlockTableEntry;
using runtime::CellStart;
using runtime::ObjectModel;
using runtime::StatusWord;

BlockSweeper::BlockSweeper(std::string name, const HwgcConfig &config,
                           mem::MemPort *port, mem::Ptw &ptw)
    : Clocked(std::move(name)), config_(config), port_(port), ptw_(ptw),
      tlb_(this->name() + ".tlb", config.sweeperTlbEntries)
{
    panic_if(port_ == nullptr, "sweeper needs a memory port");
    hasBspHooks_ = true;
    stagedAssign_.reserve(1);
    ptwPort_ = ptw_.registerRequester(this, this->name());
}

bool
BlockSweeper::idle() const
{
    if (bspStagingActive()) {
        // Foreign-partition view (the dispatcher): last cycle's
        // published state minus what the dispatcher itself staged this
        // cycle — the same answer the serial dispatcher-before-sweeper
        // tick order produces.
        return publishedIdle_ && stagedAssign_.empty();
    }
    return !active_ && !inboxValid_;
}

bool
BlockSweeper::drained() const
{
    if (bspStagingActive()) {
        return publishedDrained_ && stagedAssign_.empty();
    }
    return !active_ && !inboxValid_ && writesInFlight_ == 0;
}

void
BlockSweeper::assign(const SweepJob &job, Tick now)
{
    panic_if(!idle(), "sweeper double assignment");
    panic_if(job.cellBytes == 0 || job.cellBytes > runtime::blockBytes,
             "bad cell size %u", job.cellBytes);
    pokeWakeup(); // Assigned work restarts the state machine.
    if (bspStagingActive()) {
        panic_if(!stagedAssign_.push({job, now}),
                 "sweeper '%s': assign staging ring overflow",
                 name().c_str());
        detail::noteStagedEvent();
        return;
    }
    inboxJob_ = job;
    inboxAt_ = now;
    inboxValid_ = true;
}

void
BlockSweeper::activate()
{
    panic_if(active_, "sweeper activated while active");
    job_ = inboxJob_;
    inboxValid_ = false;
    active_ = true;
    cellIndex_ = 0;
    numCells_ = runtime::blockBytes / job_.cellBytes;
    step_ = Step::CellStartWord;
    freeHead_ = prevFree_ = 0;
    freeCells_ = 0;
    hasLive_ = false;
    for (auto &line : lines_) {
        line.valid = false;
    }
}

void
BlockSweeper::bspCommit(Tick now)
{
    (void)now;
    StagedAssign sa;
    while (stagedAssign_.pop(sa)) {
        pokeWakeup();
        panic_if(active_ || inboxValid_,
                 "sweeper staged double assignment");
        inboxJob_ = sa.job;
        inboxAt_ = sa.at;
        inboxValid_ = true;
    }
}

void
BlockSweeper::bspPublish()
{
    publishedIdle_ = !active_ && !inboxValid_;
    publishedDrained_ = publishedIdle_ && writesInFlight_ == 0;
}

std::optional<Addr>
BlockSweeper::translate(Addr va, Tick now)
{
    if (walkPending_) {
        return std::nullopt; // Blocked on the PTW; don't re-probe.
    }
    if (const auto pa = tlb_.lookup(va)) {
        return *pa;
    }
    if (ptw_.canRequest(ptwPort_)) {
        walkPending_ = true;
        ptw_.requestWalk(ptwPort_, va, now, walkCallback());
    }
    return std::nullopt;
}

mem::Ptw::WalkCallback
BlockSweeper::walkCallback()
{
    return [this](bool valid, Addr wva, Addr wpa, unsigned page_bits) {
        fatal_if(!valid, "sweeper touched unmapped VA %#llx",
                 (unsigned long long)wva);
        tlb_.insert(wva, wpa, page_bits);
        walkPending_ = false;
    };
}

std::optional<Word>
BlockSweeper::readWord(Addr va, Tick now)
{
    const Addr line_va = alignDown(va, lineBytes);
    for (auto &line : lines_) {
        if (line.valid && line.lineVa == line_va) {
            line.lastUse = ++useCounter_;
            return line.data[(va - line_va) / wordBytes];
        }
    }
    if (lineFillPending_) {
        return std::nullopt; // One outstanding fill at a time.
    }
    const auto pa = translate(line_va, now);
    if (!pa) {
        return std::nullopt;
    }
    mem::MemRequest req;
    req.paddr = *pa;
    req.size = lineBytes;
    req.op = mem::Op::Read;
    if (!port_->canSend(req)) {
        return std::nullopt;
    }
    port_->send(req, now);
    ++lineFetches_;
    lineFillPending_ = true;
    lineFillVa_ = line_va;
    return std::nullopt;
}

bool
BlockSweeper::writeWord(Addr va, Word value, Tick now)
{
    const auto pa = translate(va, now);
    if (!pa) {
        return false;
    }
    mem::MemRequest req;
    req.paddr = *pa;
    req.size = wordBytes;
    req.op = mem::Op::Write;
    req.wdata[0] = value;
    if (!port_->canSend(req)) {
        return false;
    }
    port_->send(req, now);
    ++writesInFlight_;
    return true;
}

void
BlockSweeper::onResponse(const mem::MemResponse &resp, Tick now)
{
    pokeWakeup();
    (void)now;
    if (resp.req.isWrite()) {
        panic_if(writesInFlight_ == 0, "sweeper write ack underflow");
        --writesInFlight_;
        return;
    }
    panic_if(!lineFillPending_, "unexpected sweeper line fill");
    LineBuf *victim = &lines_[0];
    for (auto &line : lines_) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->lineVa = lineFillVa_;
    victim->data = resp.rdata;
    victim->lastUse = ++useCounter_;
    lineFillPending_ = false;
}

void
BlockSweeper::finishBlock(Tick now)
{
    if (step_ == Step::FinishLink) {
        if (prevFree_ != 0) {
            if (!writeWord(prevFree_, CellStart::makeFree(0), now)) {
                return;
            }
        }
        step_ = Step::FinishTable;
        return;
    }

    // Head + summary as one aligned 16-byte store (entry words 2..3).
    const Addr dest = job_.entryVa + 2 * wordBytes;
    const auto pa = translate(dest, now);
    if (!pa) {
        return;
    }
    mem::MemRequest req;
    req.paddr = *pa;
    req.size = 16;
    req.op = mem::Op::Write;
    req.wdata[0] = freeHead_;
    req.wdata[1] = BlockTableEntry::makeSummary(freeCells_, hasLive_);
    if (!port_->canSend(req)) {
        return;
    }
    port_->send(req, now);
    ++writesInFlight_;
    ++blocks_;
    active_ = false;
}

void
BlockSweeper::tick(Tick now)
{
    if (inboxValid_ && now > inboxAt_) {
        activate(); // The one-cycle dispatch latch expired.
    }
    if (!active_) {
        return;
    }
    if (step_ == Step::FinishLink || step_ == Step::FinishTable) {
        finishBlock(now);
        return;
    }
    if (cellIndex_ >= numCells_) {
        step_ = Step::FinishLink;
        return;
    }

    const Addr cell = job_.baseVa + cellIndex_ * job_.cellBytes;

    if (step_ == Step::CellStartWord) {
        const auto w0 = readWord(cell, now);
        if (!w0) {
            return;
        }
        if (CellStart::isLive(*w0)) {
            curNumRefs_ = CellStart::numRefs(*w0);
            step_ = Step::HeaderWord;
            return;
        }
        // Already-free cell: relink it into the new list.
        if (prevFree_ != 0 &&
            !writeWord(prevFree_, CellStart::makeFree(cell), now)) {
            return; // Retry next cycle.
        }
        if (prevFree_ == 0) {
            freeHead_ = cell;
        }
        prevFree_ = cell;
        ++freeCells_;
        ++freed_;
        ++cells_;
        ++cellIndex_;
        step_ = Step::CellStartWord;
        return;
    }

    // Step::HeaderWord — classify via tag/mark bits (paper Fig 11).
    const Addr hdr = ObjectModel::refFromCell(cell, curNumRefs_);
    const auto header = readWord(hdr, now);
    if (!header) {
        return;
    }
    panic_if(!StatusWord::live(*header),
             "live cell %#llx has a dead status word",
             (unsigned long long)cell);
    if (StatusWord::marked(*header)) {
        hasLive_ = true; // Reachable: skip to the next cell.
    } else {
        // Live but unreachable: add to the free list.
        if (prevFree_ != 0 &&
            !writeWord(prevFree_, CellStart::makeFree(cell), now)) {
            return;
        }
        if (prevFree_ == 0) {
            freeHead_ = cell;
        }
        prevFree_ = cell;
        ++freeCells_;
        ++freed_;
    }
    ++cells_;
    ++cellIndex_;
    step_ = Step::CellStartWord;
}

Tick
BlockSweeper::nextWakeup(Tick now) const
{
    if (!active_) {
        if (inboxValid_) {
            // The latched job activates the cycle after dispatch.
            return std::max(inboxAt_ + 1, now);
        }
        return maxTick; // Write acks arrive via onResponse.
    }
    if (walkPending_ || lineFillPending_) {
        // The state machine is strictly sequential: it is blocked on
        // this walk/fill and every tick until it resolves is a no-op
        // (modulo line-buffer LRU touches, which cannot change the
        // victim choice — see DESIGN.md).
        return maxTick;
    }
    return now;
}

CycleClass
BlockSweeper::cycleClass(Tick now) const
{
    (void)now;
    if (!active_) {
        if (inboxValid_) {
            return CycleClass::Busy; // Latched dispatch activating.
        }
        if (writesInFlight_ != 0) {
            return CycleClass::StallDram; // Write acks draining.
        }
        return upstream_ != nullptr && upstream_->busy()
                   ? CycleClass::StallUpstreamEmpty
                   : CycleClass::Idle;
    }
    if (walkPending_) {
        return CycleClass::StallPtw;
    }
    if (lineFillPending_) {
        return CycleClass::StallDram; // Streaming line fill.
    }
    // The state machine runs every cycle here; progress hinges on the
    // memory port accepting its reads/writes.
    mem::MemRequest probe;
    probe.size = wordBytes;
    return port_->canSend(probe) ? CycleClass::Busy
                                 : CycleClass::StallBus;
}

void
BlockSweeper::save(checkpoint::Serializer &ser) const
{
    panic_if(!stagedAssign_.empty(),
             "sweeper '%s': checkpoint with a staged assign",
             name().c_str());
    ser.putBool(active_);
    ser.putU64(job_.entryVa);
    ser.putU64(job_.baseVa);
    ser.putU64(job_.cellBytes);
    ser.putBool(inboxValid_);
    ser.putU64(inboxAt_);
    ser.putU64(inboxJob_.entryVa);
    ser.putU64(inboxJob_.baseVa);
    ser.putU64(inboxJob_.cellBytes);
    ser.putU64(cellIndex_);
    ser.putU64(numCells_);
    ser.putU64(std::uint64_t(step_));
    ser.putU64(curNumRefs_);
    ser.putU64(freeHead_);
    ser.putU64(prevFree_);
    ser.putU64(freeCells_);
    ser.putBool(hasLive_);
    ser.putBool(pendingLink_);
    ser.putU64(pendingLinkTarget_);
    for (const auto &line : lines_) {
        ser.putBool(line.valid);
        ser.putU64(line.lineVa);
        for (const Word w : line.data) {
            ser.putU64(w);
        }
        ser.putU64(line.lastUse);
    }
    ser.putU64(useCounter_);
    ser.putBool(lineFillPending_);
    ser.putU64(lineFillVa_);
    ser.putU64(writesInFlight_);
    ser.putBool(walkPending_);
    checkpoint::putStat(ser, blocks_);
    checkpoint::putStat(ser, cells_);
    checkpoint::putStat(ser, freed_);
    checkpoint::putStat(ser, lineFetches_);
    tlb_.save(ser);
}

void
BlockSweeper::restore(checkpoint::Deserializer &des)
{
    active_ = des.getBool();
    job_.entryVa = des.getU64();
    job_.baseVa = des.getU64();
    job_.cellBytes = std::uint32_t(des.getU64());
    inboxValid_ = des.getBool();
    inboxAt_ = des.getU64();
    inboxJob_.entryVa = des.getU64();
    inboxJob_.baseVa = des.getU64();
    inboxJob_.cellBytes = std::uint32_t(des.getU64());
    cellIndex_ = des.getU64();
    numCells_ = des.getU64();
    step_ = Step(des.getU64());
    curNumRefs_ = std::uint32_t(des.getU64());
    freeHead_ = des.getU64();
    prevFree_ = des.getU64();
    freeCells_ = std::uint32_t(des.getU64());
    hasLive_ = des.getBool();
    pendingLink_ = des.getBool();
    pendingLinkTarget_ = des.getU64();
    for (auto &line : lines_) {
        line.valid = des.getBool();
        line.lineVa = des.getU64();
        for (auto &w : line.data) {
            w = des.getU64();
        }
        line.lastUse = des.getU64();
    }
    useCounter_ = des.getU64();
    lineFillPending_ = des.getBool();
    lineFillVa_ = des.getU64();
    writesInFlight_ = unsigned(des.getU64());
    walkPending_ = des.getBool();
    checkpoint::getStat(des, blocks_);
    checkpoint::getStat(des, cells_);
    checkpoint::getStat(des, freed_);
    checkpoint::getStat(des, lineFetches_);
    tlb_.restore(des);
    bspPublish(); // Rebuild the foreign-partition snapshot.
}

void
BlockSweeper::reset()
{
    panic_if(busy(), "sweeper reset while active");
    tlb_.flush();
    for (auto &line : lines_) {
        line.valid = false;
    }
}

void
BlockSweeper::resetStats()
{
    blocks_.reset();
    cells_.reset();
    freed_.reset();
    lineFetches_.reset();
    tlb_.resetStats();
}

} // namespace hwgc::core
