# Empty compiler generated dependencies file for bench_abl_memsched.
# This may be replaced when dependencies are built.
