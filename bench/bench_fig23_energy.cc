/**
 * @file
 * Fig 23 — power and energy per benchmark, CPU vs GC unit, from
 * DRAM-level activity counters (the Micron-calculator methodology).
 *
 * The paper: "Due to its higher bandwidth, the GC Unit's DRAM power
 * is much higher, but the overall energy is still lower" (by 14.5%
 * in their results).
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"
#include "model/power.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 23: power and energy",
                  "unit draws more DRAM power but ~14.5% less energy");

    const model::PowerModel power;
    const core::HwgcConfig unit_config;

    std::printf("  %-10s | %9s %9s | %9s %9s | %8s\n", "benchmark",
                "CPU mW", "unit mW", "CPU mJ", "unit mJ", "saving");
    double total_cpu_mj = 0.0, total_hw_mj = 0.0;
    for (const auto &profile : workload::dacapoSuite()) {
        driver::GcLab lab(profile);
        lab.run();

        // Aggregate DRAM activity over every pause of the run.
        model::DramActivity cpu_act, hw_act;
        for (const auto &r : lab.results()) {
            cpu_act.bytes += r.swDramBytes;
            cpu_act.reads += r.swDramReads;
            cpu_act.writes += r.swDramWrites;
            cpu_act.activates += r.swDramActivates;
            cpu_act.cycles += r.swMarkCycles + r.swSweepCycles;
            hw_act.bytes += r.hw.dramBytes;
            hw_act.reads += r.hw.dramReads;
            hw_act.writes += r.hw.dramWrites;
            hw_act.activates += r.hw.dramActivates;
            hw_act.cycles += r.hwMarkCycles + r.hwSweepCycles;
        }

        const auto cpu = power.cpuEnergy(cpu_act);
        const auto hw = power.hwgcEnergy(hw_act, unit_config);
        total_cpu_mj += cpu.energyMj();
        total_hw_mj += hw.energyMj();
        std::printf("  %-10s | %9.1f %9.1f | %9.3f %9.3f | %6.1f%%\n",
                    profile.name.c_str(), cpu.totalPowerMw(),
                    hw.totalPowerMw(), cpu.energyMj(), hw.energyMj(),
                    100.0 * (1.0 - hw.energyMj() / cpu.energyMj()));
        std::printf("  %-10s |   (DRAM-only power: CPU %.1f mW, "
                    "unit %.1f mW)\n",
                    "", cpu.dramPowerMw, hw.dramPowerMw);
    }
    std::printf("\n  suite energy saving: %.1f%%\n",
                100.0 * (1.0 - total_hw_mj / total_cpu_mj));
    return 0;
}
