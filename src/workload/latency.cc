/**
 * @file
 * Query-latency harness implementation.
 */

#include "latency.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace hwgc::workload
{

double
LatencyResult::percentile(double q) const
{
    panic_if(samples.empty(), "no latency samples");
    std::vector<double> sorted;
    sorted.reserve(samples.size());
    for (const auto &s : samples) {
        sorted.push_back(s.latencyMs);
    }
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * double(sorted.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
LatencyResult::meanMs() const
{
    double sum = 0.0;
    for (const auto &s : samples) {
        sum += s.latencyMs;
    }
    return samples.empty() ? 0.0 : sum / double(samples.size());
}

double
LatencyResult::maxMs() const
{
    double m = 0.0;
    for (const auto &s : samples) {
        m = std::max(m, s.latencyMs);
    }
    return m;
}

LatencyResult
runLatencyExperiment(const LatencyParams &params,
                     const std::vector<double> &pause_durations_ms,
                     double mutator_ms_between_gcs)
{
    panic_if(params.warmupQueries >= params.totalQueries,
             "warm-up swallows every query");

    // Lay out the pause timeline for the whole run: mutator period,
    // pause, mutator period, pause, ... cycling the measured pauses.
    const double run_ms =
        params.issueIntervalMs * double(params.totalQueries) + 1000.0;
    struct Pause { double start, end; };
    std::vector<Pause> pauses;
    if (!pause_durations_ms.empty() && mutator_ms_between_gcs > 0.0) {
        double t = mutator_ms_between_gcs;
        std::size_t i = 0;
        while (t < run_ms) {
            const double d = pause_durations_ms[i %
                                                pause_durations_ms.size()];
            pauses.push_back({t, t + d});
            t += d + mutator_ms_between_gcs;
            ++i;
        }
    }

    Rng rng(params.seed);
    LatencyResult result;
    result.samples.reserve(params.totalQueries - params.warmupQueries);

    double server_free = 0.0;
    std::size_t pause_cursor = 0;
    for (unsigned q = 0; q < params.totalQueries; ++q) {
        const double issue = params.issueIntervalMs * double(q);
        double start = std::max(issue, server_free);
        bool near_pause = false;

        // Service is preempted by any pause it overlaps: the whole
        // process (including the serving thread) stops.
        double service = params.serviceMeanMs +
            rng.uniform() * params.serviceJitterMs;
        while (pause_cursor < pauses.size() &&
               pauses[pause_cursor].end <= start) {
            ++pause_cursor;
        }
        std::size_t pc = pause_cursor;
        double done = start + service;
        while (pc < pauses.size() && pauses[pc].start < done) {
            near_pause = true;
            done += pauses[pc].end - pauses[pc].start;
            ++pc;
        }
        server_free = done;

        if (q >= params.warmupQueries) {
            result.samples.push_back({issue, done - issue, near_pause});
        }
    }
    return result;
}

} // namespace hwgc::workload
