file(REMOVE_RECURSE
  "libhwgc_cpu.a"
)
