# Empty compiler generated dependencies file for hwgc_gc.
# This may be replaced when dependencies are built.
