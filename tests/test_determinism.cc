/**
 * @file
 * Determinism tests: the simulator must be bit-reproducible — same
 * seeds, same cycle counts, same statistics — across runs and across
 * configurations that should not affect results. This is what makes
 * every number in EXPERIMENTS.md reproducible.
 */

#include <gtest/gtest.h>

#include "driver/gc_lab.h"

namespace hwgc
{
namespace
{

struct RunSignature
{
    Tick hwMark = 0;
    Tick hwSweep = 0;
    std::uint64_t marked = 0;
    std::uint64_t freed = 0;
    std::uint64_t tracerRequests = 0;
    std::uint64_t spilled = 0;
    std::uint64_t dramBytes = 0;

    bool
    operator==(const RunSignature &o) const
    {
        return hwMark == o.hwMark && hwSweep == o.hwSweep &&
            marked == o.marked && freed == o.freed &&
            tracerRequests == o.tracerRequests &&
            spilled == o.spilled && dramBytes == o.dramBytes;
    }
};

RunSignature
signatureFor(const core::HwgcConfig &config, std::uint64_t seed)
{
    auto profile = workload::smokeProfile();
    profile.graph.seed = seed;
    driver::LabConfig lab_config;
    lab_config.runSw = false;
    lab_config.hwgc = config;
    driver::GcLab lab(profile, lab_config);
    lab.run();
    const auto &last = lab.results().back();
    RunSignature sig;
    sig.hwMark = last.hwMarkCycles;
    sig.hwSweep = last.hwSweepCycles;
    sig.marked = last.objectsMarked;
    sig.freed = last.cellsFreed;
    sig.tracerRequests = last.hw.tracerRequests;
    sig.spilled = last.hw.entriesSpilled;
    sig.dramBytes = last.hw.dramBytes;
    return sig;
}

TEST(Determinism, IdenticalRunsAreCycleIdentical)
{
    const auto a = signatureFor(core::HwgcConfig{}, 7);
    const auto b = signatureFor(core::HwgcConfig{}, 7);
    EXPECT_TRUE(a == b);
}

TEST(Determinism, SeedsChangeTheRun)
{
    const auto a = signatureFor(core::HwgcConfig{}, 7);
    const auto b = signatureFor(core::HwgcConfig{}, 8);
    EXPECT_FALSE(a == b);
}

TEST(Determinism, IdealMemoryRunsAreReproducible)
{
    core::HwgcConfig config;
    config.memModel = core::MemModel::Ideal;
    const auto a = signatureFor(config, 9);
    const auto b = signatureFor(config, 9);
    EXPECT_TRUE(a == b);
}

TEST(Determinism, SharedCacheRunsAreReproducible)
{
    core::HwgcConfig config;
    config.sharedCache = true;
    const auto a = signatureFor(config, 10);
    const auto b = signatureFor(config, 10);
    EXPECT_TRUE(a == b);
}

TEST(Determinism, SwSideIsReproducibleToo)
{
    auto run = [] {
        driver::LabConfig config;
        config.runHw = false;
        driver::GcLab lab(workload::smokeProfile(), config);
        lab.run();
        return std::pair{lab.results().back().swMarkCycles,
                         lab.results().back().swSweepCycles};
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace hwgc
