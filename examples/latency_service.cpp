/**
 * @file
 * Scenario: a latency-sensitive search service (the paper's lusearch
 * motivation, Fig 1b). We measure GC pauses on the CPU and on the
 * accelerator, then replay both pause distributions through the
 * query-latency harness to show what the accelerator does to tail
 * latency — and what a pause-free concurrent collector built on the
 * unit (paper §IV-D) could achieve.
 *
 *   $ ./build/examples/latency_service [benchmark]
 */

#include <cstdio>
#include <string>

#include "driver/gc_lab.h"
#include "workload/latency.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    const std::string bench = argc > 1 ? argv[1] : "lusearch";
    const auto profile = workload::dacapoProfile(bench);

    std::printf("measuring GC pauses for '%s' on both engines...\n",
                bench.c_str());
    driver::GcLab lab(profile);
    std::vector<double> cpu_pauses, unit_pauses;
    for (const auto &r : lab.run()) {
        cpu_pauses.push_back(
            double(r.swMarkCycles + r.swSweepCycles) / 1e6);
        unit_pauses.push_back(
            double(r.hwMarkCycles + r.hwSweepCycles) / 1e6);
    }
    std::printf("  CPU pauses (ms): ");
    for (const double p : cpu_pauses) {
        std::printf("%.2f ", p);
    }
    std::printf("\n  unit pauses (ms):");
    for (const double p : unit_pauses) {
        std::printf(" %.2f", p);
    }
    std::printf("\n\n");

    workload::LatencyParams params;
    const auto on_cpu = workload::runLatencyExperiment(
        params, cpu_pauses, profile.mutatorMsPerGC);
    const auto on_unit = workload::runLatencyExperiment(
        params, unit_pauses, profile.mutatorMsPerGC);
    // A concurrent collector built on the unit (paper §IV-D) removes
    // the stop-the-world pause entirely; queries only see barrier
    // overhead, approximated as a service-time tax (ZGC targets <15%
    // slow-down; paper §III-B).
    workload::LatencyParams concurrent = params;
    concurrent.serviceMeanMs *= 1.15;
    const auto pause_free =
        workload::runLatencyExperiment(concurrent, {}, 0.0);

    std::printf("query latency at %0.f QPS "
                "(%u queries, coordinated omission):\n",
                1000.0 / params.issueIntervalMs, params.totalQueries);
    std::printf("  %-10s %12s %12s %14s\n", "quantile",
                "stop-the-world", "accelerator", "concurrent+unit");
    for (const double q : {0.50, 0.90, 0.99, 0.999}) {
        std::printf("  p%-9g %9.2f ms %9.2f ms %11.2f ms\n", q * 100,
                    on_cpu.percentile(q), on_unit.percentile(q),
                    pause_free.percentile(q));
    }
    std::printf("  %-10s %9.2f ms %9.2f ms %11.2f ms\n", "max",
                on_cpu.maxMs(), on_unit.maxMs(), pause_free.maxMs());

    std::printf("\ntail (max/median): CPU %.0fx, unit %.0fx, "
                "concurrent %.1fx\n",
                on_cpu.maxMs() / on_cpu.percentile(0.5),
                on_unit.maxMs() / on_unit.percentile(0.5),
                pause_free.maxMs() / pause_free.percentile(0.5));
    return 0;
}
