/**
 * @file
 * Tests for concurrent marking (paper §IV-D): the snapshot invariant
 * under the write barrier, the Fig 3 hidden-object race without it,
 * and black allocation.
 */

#include <gtest/gtest.h>

#include "driver/concurrent.h"
#include "runtime/heap_layout.h"

namespace hwgc
{
namespace
{

using runtime::HeapLayout;
using runtime::ObjRef;
using runtime::StatusWord;

struct ConcurrentRig
{
    explicit ConcurrentRig(std::uint64_t seed, std::uint64_t live = 800)
        : heap(mem), builder(heap, graphFor(seed, live)),
          device(mem, heap.pageTable(), core::HwgcConfig{})
    {
        builder.build();
        heap.clearAllMarks();
    }

    static workload::GraphParams
    graphFor(std::uint64_t seed, std::uint64_t live)
    {
        workload::GraphParams p;
        p.liveObjects = live;
        p.garbageObjects = live / 2;
        p.numRoots = 8;
        p.seed = seed;
        return p;
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    workload::GraphBuilder builder;
    core::HwgcDevice device;
};

class ConcurrentProperty : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConcurrentProperty, SnapshotInvariantHoldsWithBarrier)
{
    ConcurrentRig rig(GetParam());
    driver::ConcurrentParams params;
    params.seed = GetParam() * 13 + 1;
    driver::ConcurrentMarkLab lab(rig.heap, rig.builder, rig.device,
                                  params);
    const auto result = lab.run();
    EXPECT_EQ(result.lostObjects, 0u)
        << "objects reachable at mark start were not marked";
    EXPECT_GT(result.mutations, 0u);
    EXPECT_GT(result.barrierEntries, 0u);
    EXPECT_GE(result.markedAtEnd, result.startReachable);
}

TEST_P(ConcurrentProperty, SweepAfterConcurrentMarkIsSafe)
{
    ConcurrentRig rig(GetParam() + 1000);
    driver::ConcurrentParams params;
    params.seed = GetParam() * 7 + 3;
    driver::ConcurrentMarkLab lab(rig.heap, rig.builder, rig.device,
                                  params);
    lab.run();
    rig.device.runSweep();
    rig.heap.onAfterSweep();
    // Every object reachable now must have survived.
    for (const ObjRef ref : rig.heap.computeReachable()) {
        bool found = false;
        for (const auto &obj : rig.heap.objects()) {
            if (obj.ref == ref) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "reachable object swept";
        if (!found) {
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentProperty,
                         testing::Values(1ull, 2ull, 3ull, 4ull));

TEST(Concurrent, Fig3RaceLosesObjectsWithoutBarrier)
{
    // Deterministically reproduce the paper's Fig 3: a reference is
    // loaded into a register and removed from its old location before
    // the traversal visits it, then stored into an already-visited
    // object. Without a write barrier the BFS never sees the target.
    mem::PhysMem mem;
    runtime::Heap heap(mem);

    // visited <- root slot 0 (marked early);
    // chain of delay objects -> holder -> hidden (visited late).
    const ObjRef root = heap.allocate(2, 0);
    const ObjRef visited = heap.allocate(1, 0);
    heap.addRoot(root);
    heap.setRef(root, 0, visited);
    ObjRef tail = root; // Build a long chain on slot 1.
    ObjRef sentinel = root; // Link #20: marked long after `visited`
                            // has been traced (the chain serializes).
    for (int i = 0; i < 400; ++i) {
        const ObjRef link = heap.allocate(1, 0);
        heap.setRef(tail, tail == root ? 1 : 0, link);
        tail = link;
        if (i == 20) {
            sentinel = link;
        }
    }
    const ObjRef holder = heap.allocate(1, 0);
    heap.setRef(tail, 0, holder);
    const ObjRef hidden = heap.allocate(0, 4);
    heap.setRef(holder, 0, hidden);
    heap.publishRoots();
    heap.clearAllMarks();

    core::HwgcDevice device(mem, heap.pageTable(), core::HwgcConfig{});
    device.configure(heap);
    device.rootReader().start(HeapLayout::hwgcSpaceBase,
                              heap.publishedRootCount());
    auto &system = device.system();

    // Run until the chain has passed the sentinel: `visited` was
    // marked *and traced* long before, but `holder` is still pending.
    while (!StatusWord::marked(heap.read(sentinel))) {
        system.step();
    }
    ASSERT_TRUE(StatusWord::marked(heap.read(visited)));
    ASSERT_FALSE(StatusWord::marked(heap.read(hidden)));

    // The racy mutation, without a barrier.
    heap.setRef(holder, 0, runtime::nullRef);
    heap.setRef(visited, 0, hidden);

    ASSERT_TRUE(system.runUntilIdle());
    // The object is still reachable (visited -> hidden) but unmarked:
    // the Fig 3 lost-object race.
    EXPECT_TRUE(heap.computeReachable().count(hidden));
    EXPECT_FALSE(StatusWord::marked(heap.read(hidden)));
}

TEST(Concurrent, Fig3RaceFixedByBarrier)
{
    // Same schedule, but the mutator logs the overwritten value into
    // the root region (paper §IV-D write barrier).
    mem::PhysMem mem;
    runtime::Heap heap(mem);

    const ObjRef root = heap.allocate(2, 0);
    const ObjRef visited = heap.allocate(1, 0);
    heap.addRoot(root);
    heap.setRef(root, 0, visited);
    ObjRef tail = root; // Build a long chain on slot 1.
    ObjRef sentinel = root; // Link #20: marked long after `visited`
                            // has been traced (the chain serializes).
    for (int i = 0; i < 400; ++i) {
        const ObjRef link = heap.allocate(1, 0);
        heap.setRef(tail, tail == root ? 1 : 0, link);
        tail = link;
        if (i == 20) {
            sentinel = link;
        }
    }
    const ObjRef holder = heap.allocate(1, 0);
    heap.setRef(tail, 0, holder);
    const ObjRef hidden = heap.allocate(0, 4);
    heap.setRef(holder, 0, hidden);
    heap.publishRoots();
    heap.clearAllMarks();

    core::HwgcDevice device(mem, heap.pageTable(), core::HwgcConfig{});
    device.configure(heap);
    std::uint64_t region = heap.publishedRootCount();
    device.rootReader().start(HeapLayout::hwgcSpaceBase, region);
    auto &system = device.system();
    while (!StatusWord::marked(heap.read(sentinel))) {
        system.step();
    }

    // Barrier: log the old value of every overwritten slot.
    heap.write(HeapLayout::hwgcSpaceBase + region * wordBytes,
               heap.getRef(holder, 0)); // = hidden
    device.rootReader().extend(++region);
    heap.setRef(holder, 0, runtime::nullRef);

    heap.write(HeapLayout::hwgcSpaceBase + region * wordBytes,
               heap.getRef(visited, 0)); // Old value (null is fine).
    device.rootReader().extend(++region);
    heap.setRef(visited, 0, hidden);

    ASSERT_TRUE(system.runUntilIdle());
    EXPECT_TRUE(StatusWord::marked(heap.read(hidden)));
}

TEST(Concurrent, BlackAllocationKeepsNewObjects)
{
    ConcurrentRig rig(55);
    driver::ConcurrentParams params;
    params.allocFraction = 0.8; // Allocation heavy.
    params.seed = 56;
    driver::ConcurrentMarkLab lab(rig.heap, rig.builder, rig.device,
                                  params);
    const auto result = lab.run();
    EXPECT_EQ(result.lostObjects, 0u);
    rig.device.runSweep();
    // onAfterSweep must not prune the black-allocated objects that
    // are still attached to live anchors.
    rig.heap.onAfterSweep();
    for (const ObjRef ref : rig.heap.computeReachable()) {
        bool found = false;
        for (const auto &obj : rig.heap.objects()) {
            if (obj.ref == ref) {
                found = true;
                break;
            }
        }
        ASSERT_TRUE(found);
    }
}

TEST(Concurrent, FloatingGarbageIsBounded)
{
    ConcurrentRig rig(66);
    driver::ConcurrentParams params;
    params.seed = 67;
    driver::ConcurrentMarkLab lab(rig.heap, rig.builder, rig.device,
                                  params);
    const auto result = lab.run();
    // The snapshot retains garbage created during the mark, but it
    // cannot exceed the mutation volume (plus black allocations).
    EXPECT_LE(result.floatingGarbage,
              result.mutations * 2 + result.barrierEntries);
}

TEST(Concurrent, MoreChurnMeansMoreBarrierTraffic)
{
    auto run_with = [](std::uint64_t mutations) {
        ConcurrentRig rig(77, 600);
        driver::ConcurrentParams params;
        params.totalMutations = mutations;
        params.seed = 78;
        driver::ConcurrentMarkLab lab(rig.heap, rig.builder,
                                      rig.device, params);
        return lab.run().barrierEntries;
    };
    EXPECT_LT(run_with(200), run_with(1200));
}

} // namespace
} // namespace hwgc
