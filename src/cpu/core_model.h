/**
 * @file
 * The execution-driven in-order core cost model (the "Rocket CPU"
 * baseline of every figure).
 *
 * The software collector performs its real, functional work against
 * simulated memory and charges time through this model: one cycle per
 * issued instruction (single-issue in-order), loads/stores through an
 * L1D + shared L2 hierarchy (16 KiB / 256 KiB, Table I), address
 * translation through a 32-entry TLB with page-table walks charged
 * through the L2, and a branch predictor whose mispredicts cost a
 * pipeline redirect.
 *
 * Two properties make this a fair model of the paper's baseline:
 *  - an in-order core blocks on load use almost immediately, so
 *    memory-level parallelism is ~1 (the paper: the CPU "is limited
 *    by the size of the load-store queue and instruction window",
 *    and BOOM beat Rocket by only ~12% on heap traversals);
 *  - all cost constants live here, fixed across every experiment.
 */

#ifndef HWGC_CPU_CORE_MODEL_H
#define HWGC_CPU_CORE_MODEL_H

#include <unordered_map>

#include "mem/atomic_cache.h"
#include "mem/page_table.h"
#include "mem/phys_mem.h"
#include "mem/tlb.h"
#include "sim/stats.h"

namespace hwgc::cpu
{

/** Core cost-model configuration (Table I values). */
struct CoreParams
{
    mem::AtomicCacheParams l1d{16 * 1024, 4, 2};
    mem::AtomicCacheParams l2{256 * 1024, 8, 12};
    unsigned dtlbEntries = 32;
    Tick branchMispredictPenalty = 3;

    /**
     * Stores retire through a store buffer without stalling the
     * pipeline (their miss traffic still reaches the caches/DRAM);
     * loads block on use. This is how Rocket behaves and is what
     * keeps the CPU baseline honest.
     */
    bool nonBlockingStores = true;
};

/** The in-order core model: functional access + cycle charging. */
class CoreModel
{
  public:
    CoreModel(std::string name, const CoreParams &params,
              mem::PhysMem &mem, const mem::PageTable &page_table,
              mem::MemDevice &memory);

    /** @name Charged functional accesses (virtual addresses) @{ */
    Word load(Addr va);
    void store(Addr va, Word value);

    /** Atomic fetch-or (RISC-V amoor.d): returns the old value. */
    Word amoFetchOr(Addr va, Word operand);
    /** @} */

    /** Charges @p n single-cycle (ALU/compare/predicted-branch) ops. */
    void chargeOps(unsigned n) { cycles_ += n; instrs_ += n; }

    /**
     * Resolves a conditional branch at call-site @p site with actual
     * outcome @p taken through a per-site 2-bit predictor, charging
     * the redirect penalty on mispredicts. Deterministic.
     */
    void branch(unsigned site, bool taken);

    /** @name Time accounting @{ */
    Tick cycles() const { return cycles_; }
    void resetCycles() { cycles_ = 0; }
    /** @} */

    /** Drops cache/TLB/predictor state (cold start between phases). */
    void flushMicroarchState();

    /** @name Checkpointing (caches, TLB, predictor, counters) @{ */
    void save(checkpoint::Serializer &ser) const;
    void restore(checkpoint::Deserializer &des);
    /** @} */

    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t instructions() const { return instrs_.value(); }
    std::uint64_t branchMispredicts() const { return mispredicts_.value(); }
    const mem::AtomicCache &l1d() const { return l1d_; }
    const mem::AtomicCache &l2() const { return l2_; }
    const mem::TlbArray &dtlb() const { return dtlb_; }
    /** @} */

    /** Registers the core's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&instrs_);
        g.add(&mispredicts_);
        g.add(&loads_);
        g.add(&stores_);
    }

  private:
    /** Translates @p va, charging TLB hit or a walk through the L2. */
    Addr translate(Addr va);

    CoreParams params_;
    mem::PhysMem &mem_;
    const mem::PageTable &pageTable_;
    mem::AtomicCache l2_;
    mem::AtomicCache l1d_;
    mem::TlbArray dtlb_;

    Tick cycles_ = 0;
    std::unordered_map<unsigned, std::uint8_t> predictor_;

    stats::Scalar instrs_{"instructions"};
    stats::Scalar mispredicts_{"branchMispredicts"};
    stats::Scalar loads_{"loads"};
    stats::Scalar stores_{"stores"};
};

} // namespace hwgc::cpu

#endif // HWGC_CPU_CORE_MODEL_H
