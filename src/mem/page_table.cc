/**
 * @file
 * Page-table construction and functional walking.
 */

#include "page_table.h"

#include "sim/logging.h"

namespace hwgc::mem
{

PageTable::PageTable(PhysMem &mem, Addr table_region,
                     Addr table_region_size)
    : mem_(mem), regionBase_(table_region), regionSize_(table_region_size)
{
    panic_if(table_region % pageBytes != 0,
             "page-table region must be page aligned");
    root_ = allocTablePage();
}

Addr
PageTable::allocTablePage()
{
    panic_if((pagesUsed_ + 1ULL) * pageBytes > regionSize_,
             "page-table region exhausted (%u pages)", pagesUsed_);
    const Addr page = regionBase_ + Addr(pagesUsed_) * pageBytes;
    ++pagesUsed_;
    mem_.zero(page, pageBytes);
    return page;
}

unsigned
PageTable::vpn(Addr va, unsigned level)
{
    // level 0 is the outermost (root) level; each index is 9 bits.
    const unsigned shift = 12 + 9 * (ptLevels - 1 - level);
    return unsigned((va >> shift) & 0x1ff);
}

void
PageTable::map(Addr va, Addr pa, std::uint64_t len)
{
    panic_if(va % pageBytes != 0 || pa % pageBytes != 0 ||
             len % pageBytes != 0,
             "map arguments must be page aligned");
    for (std::uint64_t off = 0; off < len; off += pageBytes) {
        Addr table = root_;
        for (unsigned level = 0; level < ptLevels - 1; ++level) {
            const Addr pte_addr =
                table + Addr(vpn(va + off, level)) * wordBytes;
            Word pte = mem_.readWord(pte_addr);
            if (!Pte::valid(pte)) {
                const Addr next = allocTablePage();
                pte = Pte::make(next, false);
                mem_.writeWord(pte_addr, pte);
            }
            panic_if(Pte::leaf(pte), "remapping over a leaf PTE");
            table = Pte::physAddr(pte);
        }
        const Addr leaf_addr =
            table + Addr(vpn(va + off, ptLevels - 1)) * wordBytes;
        mem_.writeWord(leaf_addr, Pte::make(pa + off, true));
    }
}

void
PageTable::mapSuper(Addr va, Addr pa, std::uint64_t len)
{
    const std::uint64_t super = leafPageBytes(ptLevels - 2);
    panic_if(va % super != 0 || pa % super != 0 || len % super != 0,
             "mapSuper arguments must be superpage aligned");
    for (std::uint64_t off = 0; off < len; off += super) {
        Addr table = root_;
        for (unsigned level = 0; level < ptLevels - 2; ++level) {
            const Addr pte_addr =
                table + Addr(vpn(va + off, level)) * wordBytes;
            Word pte = mem_.readWord(pte_addr);
            if (!Pte::valid(pte)) {
                const Addr next = allocTablePage();
                pte = Pte::make(next, false);
                mem_.writeWord(pte_addr, pte);
            }
            panic_if(Pte::leaf(pte), "remapping over a leaf PTE");
            table = Pte::physAddr(pte);
        }
        const Addr leaf_addr =
            table + Addr(vpn(va + off, ptLevels - 2)) * wordBytes;
        mem_.writeWord(leaf_addr, Pte::make(pa + off, true));
    }
}

PageTable::WalkResult
PageTable::walk(Addr va) const
{
    WalkResult result;
    Addr table = root_;
    for (unsigned level = 0; level < ptLevels; ++level) {
        const Addr pte_addr = table + Addr(vpn(va, level)) * wordBytes;
        result.pteAddr[level] = pte_addr;
        result.levels = level + 1;
        const Word pte = mem_.readWord(pte_addr);
        if (!Pte::valid(pte)) {
            return result;
        }
        if (Pte::leaf(pte)) {
            const std::uint64_t page = leafPageBytes(level);
            result.valid = true;
            result.pa = Pte::physAddr(pte) + (va & (page - 1));
            result.pageBits = log2i(page);
            return result;
        }
        table = Pte::physAddr(pte);
    }
    return result; // Ran out of levels without a leaf: invalid.
}

std::optional<Addr>
PageTable::translate(Addr va) const
{
    const WalkResult r = walk(va);
    if (!r.valid) {
        return std::nullopt;
    }
    return r.pa;
}

} // namespace hwgc::mem
