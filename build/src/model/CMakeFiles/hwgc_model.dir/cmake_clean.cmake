file(REMOVE_RECURSE
  "CMakeFiles/hwgc_model.dir/area.cc.o"
  "CMakeFiles/hwgc_model.dir/area.cc.o.d"
  "CMakeFiles/hwgc_model.dir/power.cc.o"
  "CMakeFiles/hwgc_model.dir/power.cc.o.d"
  "libhwgc_model.a"
  "libhwgc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
