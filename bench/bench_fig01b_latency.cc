/**
 * @file
 * Fig 1b — CDF of query latencies in lusearch at 10 QPS over 10K
 * queries (1K warm-up discarded), with coordinated omission.
 *
 * The paper: "in the absence of GC, most requests complete in a short
 * amount of time, but GC pauses introduce stragglers that can be two
 * orders of magnitude longer than the average request".
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"
#include "workload/latency.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 1b: lusearch query-latency CDF",
                  "GC stragglers 2 orders of magnitude over the median");

    // Measure real pause durations with the software collector.
    const auto profile = workload::dacapoProfile("lusearch");
    driver::LabConfig config;
    config.runHw = false;
    driver::GcLab lab(profile, config);
    std::vector<double> pause_ms;
    for (const auto &r : lab.run()) {
        pause_ms.push_back(bench::msFromCycles(
            double(r.swMarkCycles + r.swSweepCycles)));
    }

    workload::LatencyParams params;
    const auto with_gc = workload::runLatencyExperiment(
        params, pause_ms, profile.mutatorMsPerGC);
    const auto no_gc = workload::runLatencyExperiment(params, {}, 0.0);

    std::printf("  measured SW pauses (ms):");
    for (const double p : pause_ms) {
        std::printf(" %.2f", p);
    }
    std::printf("\n\n  %-12s %12s %12s\n", "quantile", "no GC",
                "with GC");
    for (const double q : {0.50, 0.90, 0.99, 0.999, 0.9999}) {
        std::printf("  p%-11g %9.2f ms %9.2f ms\n", q * 100.0,
                    no_gc.percentile(q), with_gc.percentile(q));
    }
    std::printf("  %-12s %9.2f ms %9.2f ms\n", "max", no_gc.maxMs(),
                with_gc.maxMs());

    unsigned near = 0;
    for (const auto &s : with_gc.samples) {
        near += s.nearPause;
    }
    std::printf("\n  tail/median with GC: %.0fx\n",
                with_gc.maxMs() / with_gc.percentile(0.5));
    std::printf("  queries near a pause: %u of %zu (%.2f%%)\n", near,
                with_gc.samples.size(),
                100.0 * near / double(with_gc.samples.size()));
    return 0;
}
