/**
 * @file
 * Shared quantile-helper tests. The benches used to compute
 * percentiles with ad-hoc index arithmetic; the p99.9 of a
 * sub-1000-sample vector indexed one past the end. Every bench now
 * routes through workload/quantile.h, and these tests pin the edge
 * cases that bit.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bench_util.h"
#include "workload/latency.h"
#include "workload/quantile.h"

namespace hwgc
{
namespace
{

std::vector<double>
iota(unsigned n)
{
    std::vector<double> v;
    for (unsigned i = 1; i <= n; ++i) {
        v.push_back(double(i));
    }
    return v;
}

TEST(Quantile, P999OfTenSamplesIsTheMaxNotOutOfRange)
{
    // The regression: nearest-rank p99.9 of 10 samples computed index
    // ceil(0.999 * 10) = 10 into a 10-element array.
    const auto v = iota(10);
    EXPECT_DOUBLE_EQ(workload::nearestRankSorted(v, 0.999), 10.0);
    EXPECT_DOUBLE_EQ(workload::quantileSorted(v, 0.999), 9.991);
}

TEST(Quantile, SingleSampleAnswersEveryQuantile)
{
    const std::vector<double> v = {42.0};
    for (const double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
        EXPECT_DOUBLE_EQ(workload::quantileSorted(v, q), 42.0);
        EXPECT_DOUBLE_EQ(workload::nearestRankSorted(v, q), 42.0);
    }
}

TEST(Quantile, EndpointsAreMinAndMax)
{
    const auto v = iota(100);
    EXPECT_DOUBLE_EQ(workload::quantileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(workload::quantileSorted(v, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(workload::nearestRankSorted(v, 1.0), 100.0);
    // q=0 conventionally returns the smallest sample.
    EXPECT_DOUBLE_EQ(workload::nearestRankSorted(v, 0.0), 1.0);
}

TEST(Quantile, InterpolatesBetweenAdjacentRanks)
{
    const std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(workload::quantileSorted(v, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(workload::quantileSorted(v, 0.25), 2.5);
}

TEST(Quantile, NearestRankMatchesTheTextbookDefinition)
{
    const auto v = iota(100);
    EXPECT_DOUBLE_EQ(workload::nearestRankSorted(v, 0.50), 50.0);
    EXPECT_DOUBLE_EQ(workload::nearestRankSorted(v, 0.99), 99.0);
    EXPECT_DOUBLE_EQ(workload::nearestRankSorted(v, 0.999), 100.0);
}

TEST(Quantile, UnsortedOverloadSortsACopy)
{
    std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
    EXPECT_DOUBLE_EQ(workload::quantile(v, 0.5), 5.0);
    // The caller's vector is taken by value: still unsorted here.
    EXPECT_DOUBLE_EQ(v[0], 9.0);
}

TEST(QuantileDeathTest, EmptyAndOutOfRangeInputsPanic)
{
    const std::vector<double> empty;
    const std::vector<double> one = {1.0};
    EXPECT_DEATH(workload::quantileSorted(empty, 0.5), "empty");
    EXPECT_DEATH(workload::nearestRankSorted(empty, 0.5), "empty");
    EXPECT_DEATH(workload::quantileSorted(one, -0.1), "quantile");
    EXPECT_DEATH(workload::quantileSorted(one, 1.1), "quantile");
}

TEST(Quantile, LatencyResultPercentileUsesTheSharedHelper)
{
    workload::LatencyResult r;
    for (unsigned i = 1; i <= 10; ++i) {
        r.samples.push_back({double(i), double(i), false});
    }
    // Ten samples, p99.9: in range, near the max.
    EXPECT_NEAR(r.percentile(0.999), 9.991, 1e-9);
    EXPECT_DOUBLE_EQ(r.percentile(1.0), 10.0);
}

// ---------------------------------------------------------------------
// runLatencyTimeline: the fleet replays a request process over
// measured pause windows tiled across the issue horizon.
// ---------------------------------------------------------------------

workload::LatencyParams
tinyParams()
{
    workload::LatencyParams p;
    p.issueIntervalMs = 1.0;
    p.totalQueries = 2000;
    p.warmupQueries = 100;
    p.serviceMeanMs = 0.1;
    p.serviceJitterMs = 0.0;
    return p;
}

TEST(LatencyTimeline, NoWindowsMatchesAPauseFreeRun)
{
    const auto a = workload::runLatencyTimeline(tinyParams(), {}, 50.0);
    const auto b = workload::runLatencyExperiment(tinyParams(), {}, 0.0);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    EXPECT_DOUBLE_EQ(a.percentile(0.999), b.percentile(0.999));
}

TEST(LatencyTimeline, PausesInflateTheTail)
{
    const std::vector<workload::PauseWindow> windows = {
        {10.0, 14.0}, {30.0, 31.0}};
    const auto with = workload::runLatencyTimeline(tinyParams(),
                                                   windows, 50.0);
    const auto without =
        workload::runLatencyTimeline(tinyParams(), {}, 50.0);
    EXPECT_GT(with.percentile(0.999), without.percentile(0.999) + 1.0);
    // The 4 ms pause recurs every 50 ms: ~8% of queries stall on it,
    // so the median is untouched (modulo issue-clock rounding).
    EXPECT_NEAR(with.percentile(0.5), without.percentile(0.5), 1e-6);
}

TEST(LatencyTimelineDeathTest, RejectsMalformedWindows)
{
    const auto params = tinyParams();
    EXPECT_DEATH(workload::runLatencyTimeline(
                     params, {{10.0, 14.0}, {12.0, 15.0}}, 50.0),
                 "overlap");
    EXPECT_DEATH(workload::runLatencyTimeline(params, {{45.0, 55.0}},
                                              50.0),
                 "period");
}

} // namespace
} // namespace hwgc
