/**
 * @file
 * Deterministic checkpoint/restore of simulator state (DESIGN.md §9).
 *
 * A checkpoint is a single file holding the complete architectural
 * state of a simulation at an inter-cycle boundary: every Clocked
 * component's registers, queues and statistics, the kernel's clock and
 * scheduled wakeups, and the functional memory image. The format is
 * self-describing and versioned so that a stale, truncated or
 * mismatched file fails loudly instead of silently mis-restoring:
 *
 *   file   := magic[8] version:u32 chunk*
 *   chunk  := nameLen:u32 name[nameLen] payloadLen:u64 payload
 *
 * All integers are little-endian and fixed-width; doubles are
 * bit-cast to u64. Components write one chunk each (named by their
 * instance name); the reader asserts every chunk name and every chunk
 * length, so any drift between the saving and restoring topology — a
 * different config, an added field, a reordered component — is a
 * fatal() with a precise message, never a corrupted resume.
 *
 * Determinism argument: serialization only happens between cycles
 * (never mid-tick), where every kernel's transient state (BSP staging
 * buffers, the event kernel's due mask) is provably empty, and the
 * wakeup caches need no serialization at all because nextWakeup() is
 * a pure function of component state and the kernel re-polls every
 * component when a run (re)starts. A restored run is therefore
 * bit-identical — cycle counts and statistics — to the uninterrupted
 * one, under any of the three kernels.
 */

#ifndef HWGC_SIM_CHECKPOINT_H
#define HWGC_SIM_CHECKPOINT_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "sim/logging.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace hwgc::checkpoint
{

/** Format magic and version; bump the version on any layout change. */
inline constexpr char magic[8] = {'H', 'W', 'G', 'C',
                                  'C', 'K', 'P', 'T'};
inline constexpr std::uint32_t formatVersion = 1;

/** Serializes state into the chunked checkpoint image. */
class Serializer
{
  public:
    Serializer()
    {
        buf_.append(magic, sizeof(magic));
        rawU32(formatVersion);
    }

    /** Opens a named chunk; every put must happen inside one. */
    void
    beginChunk(const std::string &name)
    {
        panic_if(chunkStart_ != npos, "checkpoint: nested chunk '%s'",
                 name.c_str());
        rawU32(std::uint32_t(name.size()));
        buf_.append(name);
        chunkStart_ = buf_.size();
        rawU64(0); // Placeholder, patched by endChunk().
    }

    /** Closes the current chunk, patching its payload length. */
    void
    endChunk()
    {
        panic_if(chunkStart_ == npos,
                 "checkpoint: endChunk() outside a chunk");
        const std::uint64_t len = buf_.size() - chunkStart_ - 8;
        for (unsigned i = 0; i < 8; ++i) {
            buf_[chunkStart_ + i] = char((len >> (8 * i)) & 0xff);
        }
        chunkStart_ = npos;
    }

    void
    putU64(std::uint64_t v)
    {
        panic_if(chunkStart_ == npos,
                 "checkpoint: put outside a chunk");
        rawU64(v);
    }

    void putI64(std::int64_t v) { putU64(std::uint64_t(v)); }
    void putBool(bool v) { putU64(v ? 1 : 0); }

    void
    putDouble(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        putU64(bits);
    }

    void
    putString(const std::string &s)
    {
        putU64(s.size());
        buf_.append(s);
    }

    void
    putBytes(const void *data, std::size_t len)
    {
        putU64(len);
        buf_.append(static_cast<const char *>(data), len);
    }

    /** The complete file image (header + all closed chunks). */
    const std::string &
    image() const
    {
        panic_if(chunkStart_ != npos,
                 "checkpoint: image() with an open chunk");
        return buf_;
    }

    /**
     * Writes the image to @p path. Returns false (with a warning)
     * on I/O failure — the crash-dump path must not fatal() again
     * while already handling a fatal error.
     */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        if (f == nullptr) {
            warn("checkpoint: cannot open '%s' for writing",
                 path.c_str());
            return false;
        }
        const std::string &data = image();
        const std::size_t written =
            std::fwrite(data.data(), 1, data.size(), f);
        std::fclose(f);
        if (written != data.size()) {
            warn("checkpoint: short write to '%s'", path.c_str());
            return false;
        }
        return true;
    }

  private:
    static constexpr std::size_t npos = std::size_t(-1);

    void
    rawU32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i) {
            buf_.push_back(char((v >> (8 * i)) & 0xff));
        }
    }

    void
    rawU64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            buf_.push_back(char((v >> (8 * i)) & 0xff));
        }
    }

    std::string buf_;
    std::size_t chunkStart_ = npos;
};

/**
 * Reads a checkpoint image back. Every accessor validates bounds and
 * every structural mismatch (magic, version, chunk name, chunk
 * length) is a fatal() naming the offending file — a corrupt
 * checkpoint is rejected, never silently mis-restored.
 */
class Deserializer
{
  public:
    /** Parses @p data as a checkpoint image (header validated). */
    explicit Deserializer(std::string data, std::string origin = "<memory>")
        : buf_(std::move(data)), origin_(std::move(origin))
    {
        fatal_if(buf_.size() < sizeof(magic) + 4,
                 "checkpoint '%s': truncated header (%zu bytes)",
                 origin_.c_str(), buf_.size());
        fatal_if(std::memcmp(buf_.data(), magic, sizeof(magic)) != 0,
                 "checkpoint '%s': bad magic — not a checkpoint file",
                 origin_.c_str());
        pos_ = sizeof(magic);
        const std::uint32_t version = rawU32();
        fatal_if(version != formatVersion,
                 "checkpoint '%s': format version %u, expected %u",
                 origin_.c_str(), version, formatVersion);
    }

    /** Loads and parses @p path; fatal() if unreadable. */
    static Deserializer
    fromFile(const std::string &path)
    {
        return Deserializer(readFileOrDie(path), path);
    }

    /**
     * Opens the next chunk, asserting it is named @p expect. The
     * topology that wrote the file and the one restoring it must
     * agree on component names and order — a mismatch means a
     * different configuration and is fatal.
     */
    void
    beginChunk(const std::string &expect)
    {
        fatal_if(chunkEnd_ != npos,
                 "checkpoint '%s': beginChunk('%s') inside chunk",
                 origin_.c_str(), expect.c_str());
        fatal_if(atEnd(), "checkpoint '%s': expected chunk '%s' but "
                 "the file ends — truncated or mismatched topology",
                 origin_.c_str(), expect.c_str());
        const std::string name = chunkName();
        fatal_if(name != expect,
                 "checkpoint '%s': expected chunk '%s', found '%s' — "
                 "the saving and restoring configurations differ",
                 origin_.c_str(), expect.c_str(), name.c_str());
        const std::uint64_t len = rawU64();
        fatal_if(len > buf_.size() - pos_,
                 "checkpoint '%s': chunk '%s' claims %llu bytes but "
                 "only %zu remain — truncated file",
                 origin_.c_str(), name.c_str(),
                 (unsigned long long)len, buf_.size() - pos_);
        chunkEnd_ = pos_ + len;
    }

    /** Closes the current chunk; trailing unread bytes are fatal. */
    void
    endChunk()
    {
        fatal_if(chunkEnd_ == npos,
                 "checkpoint '%s': endChunk() outside a chunk",
                 origin_.c_str());
        fatal_if(pos_ != chunkEnd_,
                 "checkpoint '%s': %llu unread bytes at chunk end — "
                 "serialization layout mismatch", origin_.c_str(),
                 (unsigned long long)(chunkEnd_ - pos_));
        chunkEnd_ = npos;
    }

    std::uint64_t
    getU64()
    {
        fatal_if(chunkEnd_ == npos,
                 "checkpoint '%s': get outside a chunk",
                 origin_.c_str());
        fatal_if(pos_ + 8 > chunkEnd_,
                 "checkpoint '%s': read past chunk end",
                 origin_.c_str());
        return rawU64();
    }

    std::int64_t getI64() { return std::int64_t(getU64()); }
    bool getBool() { return getU64() != 0; }

    double
    getDouble()
    {
        const std::uint64_t bits = getU64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    getString()
    {
        const std::uint64_t len = getU64();
        fatal_if(pos_ + len > chunkEnd_,
                 "checkpoint '%s': string runs past chunk end",
                 origin_.c_str());
        std::string s = buf_.substr(pos_, len);
        pos_ += len;
        return s;
    }

    /** Reads a byte blob; its recorded length must equal @p len. */
    void
    getBytes(void *dst, std::size_t len)
    {
        const std::uint64_t stored = getU64();
        fatal_if(stored != len,
                 "checkpoint '%s': byte blob of %llu bytes where %zu "
                 "were expected", origin_.c_str(),
                 (unsigned long long)stored, len);
        fatal_if(pos_ + len > chunkEnd_,
                 "checkpoint '%s': blob runs past chunk end",
                 origin_.c_str());
        std::memcpy(dst, buf_.data() + pos_, len);
        pos_ += len;
    }

    bool atEnd() const { return pos_ >= buf_.size(); }

    /**
     * Name of the next chunk without consuming it, or "" at end of
     * file. Lets readers of multi-consumer images (the farm snapshot)
     * branch on what was saved instead of hard-coding one topology.
     */
    std::string
    peekChunkName()
    {
        fatal_if(chunkEnd_ != npos,
                 "checkpoint '%s': peekChunkName() inside a chunk",
                 origin_.c_str());
        if (atEnd()) {
            return "";
        }
        const std::size_t saved = pos_;
        std::string name = chunkName();
        pos_ = saved;
        return name;
    }

    /** Skips the next chunk wholesale (bounds still validated). */
    void
    skipChunk()
    {
        fatal_if(chunkEnd_ != npos,
                 "checkpoint '%s': skipChunk() inside a chunk",
                 origin_.c_str());
        fatal_if(atEnd(), "checkpoint '%s': skipChunk() at end of file",
                 origin_.c_str());
        const std::string name = chunkName();
        const std::uint64_t len = rawU64();
        fatal_if(len > buf_.size() - pos_,
                 "checkpoint '%s': chunk '%s' truncated",
                 origin_.c_str(), name.c_str());
        pos_ += len;
    }

    const std::string &origin() const { return origin_; }

    /** Directory entry for post-mortem inspection (heap_inspector). */
    struct ChunkInfo
    {
        std::string name;
        std::uint64_t size = 0;
    };

    /** Lists every chunk in @p path without restoring anything. */
    static std::vector<ChunkInfo>
    listChunks(const std::string &path)
    {
        Deserializer des = fromFile(path);
        std::vector<ChunkInfo> chunks;
        while (!des.atEnd()) {
            ChunkInfo info;
            info.name = des.chunkName();
            info.size = des.rawU64();
            fatal_if(info.size > des.buf_.size() - des.pos_,
                     "checkpoint '%s': chunk '%s' truncated",
                     path.c_str(), info.name.c_str());
            des.pos_ += info.size;
            chunks.push_back(std::move(info));
        }
        return chunks;
    }

  private:
    static constexpr std::size_t npos = std::size_t(-1);

    static std::string
    readFileOrDie(const std::string &path)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        fatal_if(f == nullptr, "checkpoint: cannot open '%s'",
                 path.c_str());
        std::string data;
        char block[65536];
        std::size_t n;
        while ((n = std::fread(block, 1, sizeof(block), f)) > 0) {
            data.append(block, n);
        }
        std::fclose(f);
        return data;
    }

    std::uint32_t
    rawU32()
    {
        fatal_if(pos_ + 4 > buf_.size(),
                 "checkpoint '%s': truncated file", origin_.c_str());
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i) {
            v |= std::uint32_t(std::uint8_t(buf_[pos_ + i])) << (8 * i);
        }
        pos_ += 4;
        return v;
    }

    std::uint64_t
    rawU64()
    {
        fatal_if(pos_ + 8 > buf_.size(),
                 "checkpoint '%s': truncated file", origin_.c_str());
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i) {
            v |= std::uint64_t(std::uint8_t(buf_[pos_ + i])) << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    std::string
    chunkName()
    {
        const std::uint32_t len = rawU32();
        fatal_if(pos_ + len > buf_.size(),
                 "checkpoint '%s': chunk name runs past end of file",
                 origin_.c_str());
        std::string name = buf_.substr(pos_, len);
        pos_ += len;
        return name;
    }

    std::string buf_;
    std::string origin_;
    std::size_t pos_ = 0;
    std::size_t chunkEnd_ = npos;
};

/** @name Statistics serialization helpers @{ */

inline void
putStat(Serializer &ser, const stats::Scalar &s)
{
    ser.putU64(s.value());
}

inline void
getStat(Deserializer &des, stats::Scalar &s)
{
    s.set(des.getU64());
}

inline void
putStat(Serializer &ser, const stats::Vector &v)
{
    ser.putU64(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        ser.putU64(v.value(i));
    }
}

inline void
getStat(Deserializer &des, stats::Vector &v)
{
    const std::uint64_t n = des.getU64();
    fatal_if(n != v.size(), "checkpoint '%s': stats::Vector '%s' has "
             "%zu entries, file has %llu", des.origin().c_str(),
             v.name().c_str(), v.size(), (unsigned long long)n);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v.setValue(i, des.getU64());
    }
}

inline void
putStat(Serializer &ser, const stats::Histogram &h)
{
    ser.putU64(h.count());
    ser.putU64(h.sum());
    ser.putU64(h.minValue());
    ser.putU64(h.maxValue());
    ser.putU64(h.buckets().size());
    for (const std::uint64_t b : h.buckets()) {
        ser.putU64(b);
    }
}

inline void
getStat(Deserializer &des, stats::Histogram &h)
{
    const std::uint64_t count = des.getU64();
    const std::uint64_t sum = des.getU64();
    const std::uint64_t min = des.getU64();
    const std::uint64_t max = des.getU64();
    const std::uint64_t n = des.getU64();
    fatal_if(n != h.buckets().size(),
             "checkpoint '%s': stats::Histogram '%s' has %zu buckets, "
             "file has %llu", des.origin().c_str(), h.name().c_str(),
             h.buckets().size(), (unsigned long long)n);
    std::vector<std::uint64_t> buckets(n);
    for (auto &b : buckets) {
        b = des.getU64();
    }
    h.restore(count, sum, min, max, buckets);
}

inline void
putStat(Serializer &ser, const stats::TimeSeries &t)
{
    ser.putU64(t.buckets().size());
    for (const std::uint64_t b : t.buckets()) {
        ser.putU64(b);
    }
}

inline void
getStat(Deserializer &des, stats::TimeSeries &t)
{
    std::vector<std::uint64_t> buckets(des.getU64());
    for (auto &b : buckets) {
        b = des.getU64();
    }
    t.setBuckets(std::move(buckets));
}

/** @} */

/** @name RNG stream serialization @{ */

inline void
putRng(Serializer &ser, const Rng &rng)
{
    for (unsigned i = 0; i < 4; ++i) {
        ser.putU64(rng.stateWord(i));
    }
}

inline void
getRng(Deserializer &des, Rng &rng)
{
    for (unsigned i = 0; i < 4; ++i) {
        rng.setStateWord(i, des.getU64());
    }
}

/** @} */

/**
 * @name Functional-memory image serialization
 *
 * Shared by the device checkpoint and the farm snapshot: pages are
 * written sorted so the file is byte-stable (PhysMem iterates an
 * unordered map). Templated on the memory type to keep sim/ free of a
 * mem/ dependency; any type with size(), snapshot() and
 * restore(Snapshot) works.
 * @{
 */

template <typename PhysMemT>
void
putPhysMem(Serializer &ser, const PhysMemT &mem)
{
    const auto snap = mem.snapshot();
    std::vector<std::uint64_t> page_nums;
    page_nums.reserve(snap.pages.size());
    for (const auto &[num, data] : snap.pages) {
        page_nums.push_back(num);
    }
    std::sort(page_nums.begin(), page_nums.end());
    ser.putU64(mem.size());
    ser.putU64(page_nums.size());
    for (const std::uint64_t num : page_nums) {
        const auto &data = snap.pages.at(num);
        ser.putU64(num);
        ser.putU64(data.size());
        ser.putBytes(data.data(), data.size());
    }
}

template <typename PhysMemT>
void
getPhysMem(Deserializer &des, PhysMemT &mem)
{
    const std::uint64_t mem_size = des.getU64();
    fatal_if(mem_size != mem.size(),
             "checkpoint '%s': physical memory is %llu bytes but this "
             "configuration has %llu — configurations differ",
             des.origin().c_str(), (unsigned long long)mem_size,
             (unsigned long long)mem.size());
    typename PhysMemT::Snapshot snap;
    const std::uint64_t num_pages = des.getU64();
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        const std::uint64_t num = des.getU64();
        const std::uint64_t bytes = des.getU64();
        std::vector<std::uint8_t> data(bytes);
        des.getBytes(data.data(), data.size());
        snap.pages.emplace(num, std::move(data));
    }
    mem.restore(snap);
}

/** @} */

/**
 * Collision-safe crash-artifact base: "<out>.crash.<pid>[.<tag>]".
 * Parallel fuzz/farm workers and --watchdog-secs panics all dump
 * through this path, so artifacts from concurrent processes (and a
 * caller-supplied tag such as the fuzz seed) never clobber each other.
 */
inline std::string
crashArtifactBase(const std::string &out, const std::string &tag = "")
{
    std::string base = out + ".crash." + std::to_string(::getpid());
    if (!tag.empty()) {
        base += "." + tag;
    }
    return base;
}

} // namespace hwgc::checkpoint

#endif // HWGC_SIM_CHECKPOINT_H
