/**
 * @file
 * Blocking page-table walker implementation.
 */

#include "ptw.h"

namespace hwgc::mem
{

Ptw::Ptw(std::string name, const PtwParams &params,
         const PageTable &page_table, MemPort *port)
    : Clocked(std::move(name)), params_(params), pageTable_(page_table),
      port_(port), l2Tlb_(this->name() + ".l2tlb", params.l2TlbEntries)
{
    panic_if(port_ == nullptr, "PTW needs a memory port");
}

void
Ptw::requestWalk(Addr va, WalkCallback cb)
{
    pokeWakeup(); // A queued walk can start on the next cycle.
    panic_if(!canRequest(), "PTW queue overflow");
    queue_.push_back({va, std::move(cb)});
}

void
Ptw::issueLevel(Tick now)
{
    MemRequest req;
    req.paddr = alignDown(walkPlan_.pteAddr[level_], wordBytes);
    req.size = wordBytes;
    req.op = Op::Read;
    req.tag = level_;
    if (port_->canSend(req)) {
        port_->send(req, now);
        ++pteFetches_;
        awaitingResponse_ = true;
    }
}

void
Ptw::finishWalk(bool valid, Addr pa, unsigned page_bits, Tick now)
{
    if (valid) {
        l2Tlb_.insert(current_.va, pa, page_bits);
    }
    pendingCallbacks_.push_back({now + 1, valid, current_.va, pa,
                                 page_bits, std::move(current_.cb)});
    walking_ = false;
    awaitingResponse_ = false;
}

void
Ptw::onResponse(const MemResponse &resp, Tick now)
{
    pokeWakeup();
    panic_if(!walking_ || !awaitingResponse_,
             "PTW response without a walk in progress");
    panic_if(resp.req.tag != level_, "PTW response level mismatch");
    awaitingResponse_ = false;
    ++level_;
    if (level_ >= walkPlan_.levels) {
        finishWalk(walkPlan_.valid, walkPlan_.pa, walkPlan_.pageBits,
                   now);
    }
}

void
Ptw::tick(Tick now)
{
    // Fire due callbacks.
    while (!pendingCallbacks_.empty() &&
           pendingCallbacks_.front().readyAt <= now) {
        PendingCallback pc = std::move(pendingCallbacks_.front());
        pendingCallbacks_.pop_front();
        pc.cb(pc.valid, pc.va, pc.pa, pc.pageBits);
    }

    if (walking_) {
        if (!awaitingResponse_ && level_ < walkPlan_.levels) {
            issueLevel(now); // Retry if the port was full last cycle.
        }
        return;
    }

    if (queue_.empty()) {
        return;
    }

    // Start the next walk; the L2 TLB shortcuts the full walk.
    current_ = std::move(queue_.front());
    queue_.pop_front();
    if (const auto hit = l2Tlb_.lookupEntry(current_.va)) {
        ++l2Hits_;
        pendingCallbacks_.push_back({now + params_.l2TlbLatency, true,
                                     current_.va, hit->first,
                                     hit->second,
                                     std::move(current_.cb)});
        return;
    }
    ++walks_;
    DPRINTF(now, "PTW", "%s: walk va=%#llx", name().c_str(),
            (unsigned long long)current_.va);
    walkPlan_ = pageTable_.walk(current_.va);
    level_ = 0;
    walking_ = true;
    issueLevel(now);
}

bool
Ptw::busy() const
{
    return walking_ || !queue_.empty() || !pendingCallbacks_.empty();
}

Tick
Ptw::nextWakeup(Tick now) const
{
    Tick next = maxTick;
    if (!pendingCallbacks_.empty()) {
        next = pendingCallbacks_.front().readyAt;
    }
    if (walking_) {
        if (!awaitingResponse_ && level_ < walkPlan_.levels) {
            return now; // Port-full retry of the current level.
        }
        return next; // Waiting on a PTE fetch response.
    }
    if (!queue_.empty()) {
        return now; // A new walk can start.
    }
    return next;
}

void
Ptw::resetStats()
{
    walks_.reset();
    l2Hits_.reset();
    pteFetches_.reset();
    l2Tlb_.resetStats();
}

} // namespace hwgc::mem
