file(REMOVE_RECURSE
  "libhwgc_model.a"
)
