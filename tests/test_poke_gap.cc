/**
 * @file
 * Regression test for wakeups lowered *during* an event-kernel cycle
 * by another component's per-cycle fastForward() handler.
 *
 * The kernel folds each component's nextWakeup() into a fast-forward
 * jump target at that component's turn in the pass. A later
 * component's per-cycle fastForward() accounting may then poke an
 * earlier component, lowering a wakeup the fold already captured; the
 * jump must be clamped to the re-polled wakeup or the poked component
 * ticks late and the event kernel diverges from the dense one.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/clocked.h"

namespace hwgc
{
namespace
{

/** Idles at maxTick until woken, then ticks once at its wake cycle. */
class Sleeper : public Clocked
{
  public:
    Sleeper() : Clocked("sleeper") {}

    void
    wake(Tick at)
    {
        wakeAt_ = at;
        pokeWakeup();
    }

    void
    tick(Tick now) override
    {
        if (!done_ && now >= wakeAt_) {
            tickedAt_ = now;
            done_ = true;
        }
    }

    bool busy() const override { return !done_; }
    Tick nextWakeup(Tick) const override { return wakeAt_; }

    Tick tickedAt() const { return tickedAt_; }

  private:
    Tick wakeAt_ = maxTick;
    Tick tickedAt_ = 0;
    bool done_ = false;
};

/**
 * Wakes the sleeper for cycle @c wakeCycle + 1 when cycle @c wakeCycle
 * elapses — in its tick under the dense kernel, in its per-cycle
 * fastForward() accounting under the event kernel (its nextWakeup
 * deliberately reports only the far-future tick, like a component
 * whose skipped cycles carry side accounting).
 */
class Gapper : public Clocked
{
  public:
    static constexpr Tick wakeCycle = 11;
    static constexpr Tick farWakeup = 30;

    explicit Gapper(Sleeper &sleeper) : Clocked("gapper"),
        sleeper_(sleeper)
    {
        hasFastForward_ = true;
    }

    void
    tick(Tick now) override
    {
        if (now == wakeCycle) {
            fire();
        }
    }

    void
    fastForward(Tick from, Tick to) override
    {
        if (from <= wakeCycle && wakeCycle < to) {
            fire();
        }
    }

    bool busy() const override { return !fired_; }

    Tick
    nextWakeup(Tick) const override
    {
        return fired_ ? maxTick : farWakeup;
    }

  private:
    void
    fire()
    {
        if (!fired_) {
            sleeper_.wake(wakeCycle + 1);
            fired_ = true;
        }
    }

    Sleeper &sleeper_;
    bool fired_ = false;
};

/** Ticks once at cycle 10 so cycle 11 runs as an executed pass (the
 *  per-cycle fastForward path) instead of inside one long jump. */
class Ticker : public Clocked
{
  public:
    Ticker() : Clocked("ticker") {}

    void
    tick(Tick now) override
    {
        if (now >= 10) {
            done_ = true;
        }
    }

    bool busy() const override { return !done_; }

    Tick
    nextWakeup(Tick now) const override
    {
        return done_ ? maxTick : std::max<Tick>(now, 10);
    }

  private:
    bool done_ = false;
};

Tick
runKernel(KernelMode mode, Tick *final_now)
{
    System system;
    system.setMode(mode);
    Sleeper sleeper;
    Gapper gapper(sleeper);
    Ticker ticker;
    system.add(&sleeper);
    system.add(&gapper);
    system.add(&ticker);
    EXPECT_TRUE(system.runUntilIdle(1000));
    *final_now = system.now();
    return sleeper.tickedAt();
}

TEST(PokeGap, FastForwardPokeIsNotJumpedOver)
{
    Tick dense_now = 0;
    const Tick dense_ticked = runKernel(KernelMode::Dense, &dense_now);
    EXPECT_EQ(dense_ticked, Gapper::wakeCycle + 1);

    Tick event_now = 0;
    const Tick event_ticked = runKernel(KernelMode::Event, &event_now);
    EXPECT_EQ(event_ticked, dense_ticked);
    EXPECT_EQ(event_now, dense_now);
}

} // namespace
} // namespace hwgc
