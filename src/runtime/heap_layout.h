/**
 * @file
 * The simulated process's address-space layout.
 *
 * Heap regions are identity-mapped (VA == PA) through real page
 * tables, mirroring the paper's setup where the JVM maps the entire
 * DRAM address space (§VII "Page faults"); identity keeps functional
 * access simple while the GC unit still pays for translation through
 * its TLBs and page-table walker. The spill region and page tables
 * are physical-only: the paper's driver allocates the spill region in
 * physical memory ("This region has to be contiguous in physical
 * memory and we currently allocate a static 4MB range").
 */

#ifndef HWGC_RUNTIME_HEAP_LAYOUT_H
#define HWGC_RUNTIME_HEAP_LAYOUT_H

#include "sim/types.h"

namespace hwgc::runtime
{

/** Fixed region bases/sizes within the 2 GiB physical space. */
struct HeapLayout
{
    /** Page-table pages (physical only). */
    static constexpr Addr pageTableBase = 0x0010'0000;
    static constexpr std::uint64_t pageTableSize = 16ULL << 20;

    /** Block descriptor table (VA-mapped; read by the sweepers). */
    static constexpr Addr blockTableBase = 0x0200'0000;
    static constexpr std::uint64_t blockTableSize = 4ULL << 20;

    /** hwgc-space: the root region visible to the GC unit (§V-A). */
    static constexpr Addr hwgcSpaceBase = 0x0300'0000;
    static constexpr std::uint64_t hwgcSpaceSize = 4ULL << 20;

    /** The software collector's in-memory mark queue (VA-mapped). */
    static constexpr Addr swQueueBase = 0x0800'0000;
    static constexpr std::uint64_t swQueueSize = 32ULL << 20;

    /** MarkSweep space: size-classed blocks (the reclaimed space). */
    static constexpr Addr markSweepBase = 0x1000'0000;

    /** Large object space (traced, not reclaimed by the unit). */
    static constexpr Addr losBase = 0x4000'0000;

    /** Immortal space: statics / VM structures (traced, never freed). */
    static constexpr Addr immortalBase = 0x5000'0000;

    /** Mark-queue spill region (physical only, default 4 MB, §V-E). */
    static constexpr Addr spillBase = 0x6000'0000;
    static constexpr std::uint64_t spillSize = 4ULL << 20;
};

/** Size of one MarkSweep block. Scaled from JikesRVM's 64 KiB to
 *  16 KiB so the scaled-down heaps still contain enough blocks to
 *  exercise sweeper parallelism (Fig 20). */
constexpr std::uint64_t blockBytes = 16 * 1024;

/** Words per block-table entry: base, geometry, free head, summary. */
constexpr unsigned blockTableEntryWords = 4;

} // namespace hwgc::runtime

#endif // HWGC_RUNTIME_HEAP_LAYOUT_H
