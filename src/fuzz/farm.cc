/**
 * @file
 * Farm snapshot serialization.
 */

#include "farm.h"

#include "sim/logging.h"

namespace hwgc::fuzz
{

namespace
{

constexpr std::uint64_t farmVersion = 1;

} // namespace

void
saveFarmSnapshot(const std::string &path, const FarmMeta &meta,
                 const workload::GraphParams &params,
                 const runtime::Heap &heap,
                 const workload::GraphBuilder &builder,
                 const mem::PhysMem &mem)
{
    checkpoint::Serializer ser;

    ser.beginChunk("farm");
    ser.putU64(farmVersion);
    ser.putU64(meta.seed);
    ser.putU64(meta.warmPauses);
    ser.putU64(meta.liveObjects);
    ser.putU64(meta.bytesAllocated);
    ser.putU64(mem.size());
    ser.endChunk();

    ser.beginChunk("graphparams");
    workload::putGraphParams(ser, params);
    ser.endChunk();

    ser.beginChunk("heap");
    heap.save(ser);
    ser.endChunk();

    ser.beginChunk("builder");
    builder.save(ser);
    ser.endChunk();

    ser.beginChunk("physmem");
    checkpoint::putPhysMem(ser, mem);
    ser.endChunk();

    ser.writeFile(path);
}

FarmUniverse
loadFarmSnapshot(const std::string &path)
{
    checkpoint::Deserializer des = checkpoint::Deserializer::fromFile(path);
    FarmUniverse u;

    des.beginChunk("farm");
    const std::uint64_t version = des.getU64();
    fatal_if(version != farmVersion,
             "farm snapshot '%s': unsupported version %llu", path.c_str(),
             static_cast<unsigned long long>(version));
    u.meta.seed = des.getU64();
    u.meta.warmPauses = des.getU64();
    u.meta.liveObjects = des.getU64();
    u.meta.bytesAllocated = des.getU64();
    const std::uint64_t memBytes = des.getU64();
    des.endChunk();

    des.beginChunk("graphparams");
    u.params = workload::getGraphParams(des);
    des.endChunk();

    // Construct the universe before touching the image: the Heap
    // constructor maps the metadata regions and formats memory, all of
    // which the physmem chunk (restored last) overwrites with the
    // snapshotted bytes — including the page-table entries the
    // restored pagesAllocated count refers to.
    u.mem = std::make_unique<mem::PhysMem>(memBytes);
    u.heap = std::make_unique<runtime::Heap>(*u.mem);
    u.builder =
        std::make_unique<workload::GraphBuilder>(*u.heap, u.params);

    des.beginChunk("heap");
    u.heap->restore(des);
    des.endChunk();

    des.beginChunk("builder");
    u.builder->restore(des);
    des.endChunk();

    des.beginChunk("physmem");
    checkpoint::getPhysMem(des, *u.mem);
    des.endChunk();

    return u;
}

} // namespace hwgc::fuzz
