/**
 * @file
 * A timed, multi-ported, non-blocking cache model.
 *
 * This models the traversal unit's original shared 16 KiB cache
 * (paper §V-C / Fig 18a): all unit components compete for a single
 * lookup port per cycle, and misses occupy a limited set of MSHRs.
 * The same model, sized at 8 KiB with a private port, is the PTW
 * cache of the partitioned design.
 *
 * The cache is tags-only: functional execution of a request happens
 * inside the cache exactly once, at service time, while line fills and
 * write-backs travel downstream as timing-only traffic.
 */

#ifndef HWGC_MEM_TIMED_CACHE_H
#define HWGC_MEM_TIMED_CACHE_H

#include <deque>
#include <memory>
#include <vector>

#include "mem/cache_tags.h"
#include "mem/phys_mem.h"
#include "mem/port.h"
#include "sim/clocked.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** Timed cache configuration. */
struct TimedCacheParams
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 4;
    Tick hitLatency = 2;
    unsigned mshrs = 4;            //!< Outstanding line fills.
    unsigned portQueueDepth = 4;   //!< Requests buffered per port.
    unsigned writebackDepth = 8;   //!< Buffered dirty evictions.
};

/** Multi-ported tags-only cache with MSHRs. */
class TimedCache : public Clocked, public MemResponder
{
  public:
    /**
     * @param bus Downstream interconnect (fills/write-backs go here
     *        through a private client port labelled "<name>.fill").
     */
    TimedCache(std::string name, const TimedCacheParams &params,
               PhysMem &mem, Interconnect &bus);
    ~TimedCache() override; // Out of line: UpstreamPort is incomplete.

    /**
     * Adds an upstream port. The returned port is owned by the cache.
     * @param responder Receiver of completions (nullptr to discard).
     */
    MemPort *addPort(MemResponder *responder, std::string label);

    /** Rewires an upstream port's responder. */
    void setPortResponder(MemPort *port, MemResponder *responder);

    /**
     * Registers the component whose nextWakeup() polls this port's
     * canSend(); its cached wakeup is poked when the lookup stage
     * pops the port's queue (the only event that raises canSend).
     */
    void setPortOwner(MemPort *port, const Clocked *owner);

    // MemResponder interface (fill responses from downstream).
    void onResponse(const MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override;
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t portRequests(unsigned port) const;
    const std::string &portLabel(unsigned port) const;
    unsigned numPorts() const { return unsigned(ports_.size()); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    /** @} */

    /** Occupied MSHRs right now (telemetry counter track). */
    unsigned
    mshrsInUse() const
    {
        unsigned n = 0;
        for (const auto &m : mshrs_) {
            n += m.valid ? 1 : 0;
        }
        return n;
    }

    /** Registers the cache's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&hits_);
        g.add(&misses_);
        g.add(&writebacks_);
    }

  private:
    struct UpstreamPort;

    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = 0;
        std::vector<std::pair<unsigned, MemRequest>> targets;
    };

    struct DueResponse
    {
        MemResponse resp;
        unsigned port;
        Tick readyAt;
    };

    /** Functionally executes and schedules the upstream response. */
    void complete(const MemRequest &req, unsigned port, Tick now);

    /** Installs a line, queueing a write-back if the victim is dirty. */
    void installLine(Addr line_addr);

    TimedCacheParams params_;
    PhysMem &mem_;
    CacheTags tags_;
    std::unique_ptr<BusPort> fillPort_;
    std::vector<std::unique_ptr<UpstreamPort>> ports_;
    std::vector<Mshr> mshrs_;
    std::deque<Addr> writebackQueue_;
    std::deque<DueResponse> dueResponses_;
    unsigned rrNext_ = 0;
    unsigned outstandingWritebacks_ = 0;

    stats::Scalar hits_{"hits"};
    stats::Scalar misses_{"misses"};
    stats::Scalar writebacks_{"writebacks"};
};

} // namespace hwgc::mem

#endif // HWGC_MEM_TIMED_CACHE_H
