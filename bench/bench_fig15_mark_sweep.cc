/**
 * @file
 * Fig 15 — GC performance, Rocket CPU vs GC unit, per benchmark.
 *
 * The paper: "On average, the GC Unit outperforms the CPU by a factor
 * of 4.2x for mark and 1.9x for sweep" (baseline: 2 sweepers, 1,024
 * entry mark queue, 16 marker slots, 32-entry TLBs, 128-entry L2 TLB,
 * DDR3-2000 with FR-FCFS).
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 15: GC performance (CPU vs GC unit)",
                  "mark 4.2x, sweep 1.9x on average");

    // Profile every lab so the BENCH record carries the suite-wide
    // cycle attribution; profiling is observational, so the reported
    // cycle counts are unchanged (tests/test_profiler.cc).
    telemetry::options().profile = true;
    bench::BenchRecord record("fig15_mark_sweep");
    bench::HostTimer suite_timer;

    std::vector<double> mark_ratios, sweep_ratios;
    std::printf("  (a) Mark phase\n");
    std::printf("  %-10s %13s %13s %8s\n", "benchmark", "Rocket CPU",
                "GC Unit", "speedup");

    struct Row
    {
        std::string name;
        double sw_mark, hw_mark, sw_sweep, hw_sweep;
    };
    std::vector<Row> rows;
    for (const auto &profile : workload::dacapoSuite()) {
        driver::GcLab lab(profile);
        lab.run();
        Row r;
        r.name = profile.name;
        r.sw_mark = bench::msFromCycles(lab.avgSwMarkCycles());
        r.hw_mark = bench::msFromCycles(lab.avgHwMarkCycles());
        r.sw_sweep = bench::msFromCycles(lab.avgSwSweepCycles());
        r.hw_sweep = bench::msFromCycles(lab.avgHwSweepCycles());
        rows.push_back(r);
        std::uint64_t totals[4] = {0, 0, 0, 0};
        for (const auto &pause : lab.results()) {
            totals[0] += pause.swMarkCycles;
            totals[1] += pause.swSweepCycles;
            totals[2] += pause.hwMarkCycles;
            totals[3] += pause.hwSweepCycles;
        }
        record.metric(r.name + ".sw_mark_cycles", totals[0]);
        record.metric(r.name + ".sw_sweep_cycles", totals[1]);
        record.metric(r.name + ".hw_mark_cycles", totals[2]);
        record.metric(r.name + ".hw_sweep_cycles", totals[3]);
        record.addAttribution(*lab.device().profiler());
        std::printf("  %-10s %10.3f ms %10.3f ms %7.2fx\n",
                    r.name.c_str(), r.sw_mark, r.hw_mark,
                    r.sw_mark / r.hw_mark);
        mark_ratios.push_back(r.sw_mark / r.hw_mark);
    }
    std::printf("  %-10s %27s %7.2fx\n", "geomean", "",
                bench::geomean(mark_ratios));

    std::printf("\n  (b) Sweep phase\n");
    std::printf("  %-10s %13s %13s %8s\n", "benchmark", "Rocket CPU",
                "GC Unit", "speedup");
    for (const auto &r : rows) {
        std::printf("  %-10s %10.3f ms %10.3f ms %7.2fx\n",
                    r.name.c_str(), r.sw_sweep, r.hw_sweep,
                    r.sw_sweep / r.hw_sweep);
        sweep_ratios.push_back(r.sw_sweep / r.hw_sweep);
    }
    std::printf("  %-10s %27s %7.2fx\n", "geomean", "",
                bench::geomean(sweep_ratios));

    std::printf("\n  mark share of SW GC time:\n");
    for (const auto &r : rows) {
        std::printf("  %-10s %6.1f%%\n", r.name.c_str(),
                    100.0 * r.sw_mark / (r.sw_mark + r.sw_sweep));
    }

    record.write(suite_timer.seconds());
    return 0;
}
