file(REMOVE_RECURSE
  "CMakeFiles/concurrent_gc.dir/concurrent_gc.cpp.o"
  "CMakeFiles/concurrent_gc.dir/concurrent_gc.cpp.o.d"
  "concurrent_gc"
  "concurrent_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
