/**
 * @file
 * Fleet mode: several accelerator devices time-multiplexed across
 * many tenant heaps behind one shared interconnect and DRAM.
 *
 * The paper sizes the unit so "a single GC accelerator instance"
 * serves a process, and sketches the datacenter deployment in §VII:
 * context switching between processes, bandwidth throttling so GC
 * traffic "only use[s] residual bandwidth", and concurrent collection
 * to hide the mark phase. FleetLab composes those pieces into a
 * multi-tenant tail-latency service: each tenant owns a heap (a
 * disjoint stride of one shared PhysMem), a DaCapo-style profile and
 * a stochastic GC trigger process; a small array of devices shares
 * one Interconnect + memory device; a pluggable GcScheduler decides
 * dispatch order when demand exceeds devices; and per-tenant bus
 * budget groups pace each device at the bandwidth its running tenant
 * paid for.
 *
 * The service loop advances the one shared System in fixed quanta and
 * makes every driver-level decision (trigger, dispatch, phase
 * transition, completion) only at quantum boundaries. Decisions are
 * therefore pure functions of simulated state at deterministic
 * cycles, which keeps the whole fleet bit-identical across the
 * dense/event/parallel kernels — at the cost of quantum-resolution
 * timestamps on phase transitions (DESIGN.md §12).
 */

#ifndef HWGC_DRIVER_FLEET_H
#define HWGC_DRIVER_FLEET_H

#include <memory>
#include <string>
#include <vector>

#include "core/hwgc_device.h"
#include "driver/gc_scheduler.h"
#include "workload/graph_gen.h"
#include "workload/latency.h"

namespace hwgc::driver
{

/** One tenant: a heap, a workload, an SLO, and a bandwidth budget. */
struct TenantParams
{
    std::string name = "tenant";
    workload::GraphParams graph; //!< Heap shape (per-tenant seed!).
    double churnPerGC = 0.3;     //!< Live-set turnover between GCs.

    /** Mean cycles between GC triggers (heap-full events). */
    Tick gcPeriodCycles = 2'000'000;

    /**
     * SLO threshold for the tenant's request latencies: a post-run
     * sample above this many ms counts as a violation.
     */
    double sloMs = 5.0;

    /**
     * Deadline budget for the tenant's collections (EDF key): a
     * request triggered at T carries deadline T + deadlineMs. Tight
     * for latency-sensitive tenants, loose for batch.
     */
    double deadlineMs = 2.0;

    /**
     * Per-tenant bus bandwidth budget in bytes/cycle while one of the
     * fleet's devices collects this tenant (§VII bandwidth
     * throttling, per-group buckets). 0 = unpaced.
     */
    double paceBytesPerCycle = 0.0;

    /** Request process driven over the measured pause timeline. */
    workload::LatencyParams latency;

    std::uint64_t seed = 1; //!< Trigger-jitter RNG seed.
};

/** Fleet-wide configuration. */
struct FleetConfig
{
    core::HwgcConfig hwgc;     //!< Every device runs this config.
    runtime::HeapParams heap;  //!< Per-tenant heap shape (addrBase is
                               //!< assigned by the fleet).
    unsigned devices = 2;
    GcPolicy policy = GcPolicy::Fifo;
    Tick quantum = 1024;       //!< Scheduling-decision granularity.
    unsigned gcsPerTenant = 4; //!< Service horizon per tenant.

    /** Address stride between tenant heaps in the shared PhysMem. */
    std::uint64_t tenantStride = 2ULL << 30;
};

/** Per-tenant results of a completed fleet run. */
struct TenantStats
{
    std::string name;
    unsigned gcs = 0;
    Tick stwCycles = 0;   //!< Total stop-the-world cycles.
    Tick queueCycles = 0; //!< Trigger-to-dispatch waiting cycles.

    /** Stop-the-world windows on the fleet timeline, in ms. */
    std::vector<workload::PauseWindow> pausesMs;

    /** Filled by measure(). @{ */
    workload::LatencyResult latency;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double p999Ms = 0.0;
    double maxMs = 0.0;
    unsigned sloViolations = 0;
    /** @} */
};

/** The fleet harness. */
class FleetLab
{
  public:
    FleetLab(const FleetConfig &config,
             const std::vector<TenantParams> &tenants);
    ~FleetLab();

    /** Services the fleet until every tenant completed its GCs. */
    void run();

    /**
     * run(), but hands control back once the shared clock reaches
     * @p stop_at (at a quantum boundary) — the checkpoint hook. The
     * split run is bit-identical to an uninterrupted one.
     */
    void runUntilCycle(Tick stop_at);

    /** True once every tenant completed gcsPerTenant collections. */
    bool done() const;

    /**
     * Replays each tenant's request process over its measured pause
     * timeline (tiled to the full issue horizon) and fills the
     * latency percentiles and SLO-violation counts. Call after run().
     */
    const std::vector<TenantStats> &measure();

    /** Per-tenant results so far (pause data valid during the run). */
    const std::vector<TenantStats> &stats() const { return stats_; }

    /** @name Component access @{ */
    System &system() { return sys_; }
    Tick now() const { return sys_.now(); }
    unsigned numDevices() const { return unsigned(devices_.size()); }
    unsigned numTenants() const { return unsigned(tenants_.size()); }
    core::HwgcDevice &device(unsigned i) { return *devices_[i].device; }
    runtime::Heap &heap(unsigned t) { return *tenants_[t].heap; }
    mem::Interconnect &bus() { return *bus_; }
    mem::MemDevice &memory() { return *memory_; }
    const GcScheduler &scheduler() const { return *scheduler_; }
    std::uint64_t totalGcs() const;
    /** @} */

    /**
     * @name Checkpointing (DESIGN.md §12)
     *
     * Captures the whole fleet at an inter-cycle boundary: driver
     * state (trigger schedule, pending queue, per-device assignment
     * and MMIO registers, pause windows), the shared kernel, every
     * component, every tenant's runtime heap view and builder RNG,
     * and the functional memory image once. Restore into an
     * identically configured FleetLab resumes bit-identically under
     * any kernel. Only legal between runUntilCycle() slices.
     * @{
     */
    void saveCheckpoint(checkpoint::Serializer &ser) const;
    void restoreCheckpoint(checkpoint::Deserializer &des);
    bool writeCheckpoint(const std::string &path) const;
    void restoreCheckpoint(const std::string &path);
    /** @} */

    /** Configuration fingerprint embedded in fleet checkpoints. */
    std::string configSignature() const;

  private:
    static constexpr unsigned noTenant = ~0u;

    /** Per-tenant runtime state. */
    struct Tenant
    {
        TenantParams params;
        std::unique_ptr<runtime::Heap> heap;
        std::unique_ptr<workload::GraphBuilder> builder;
        Rng rng{1};
        Tick nextTriggerAt = 0;
        unsigned gcsDone = 0;
        bool queued = false;  //!< In the pending queue.
        bool running = false; //!< A device is collecting this heap.
        std::vector<std::pair<Tick, Tick>> pauseCycles;
    };

    /** Per-device runtime state. */
    struct Device
    {
        std::unique_ptr<core::HwgcDevice> device;
        unsigned firstClient = 0; //!< Bus client-id range [first,
        unsigned numClients = 0;  //!< first+num) of this device.
        unsigned tenant = noTenant;
        unsigned phase = 0; //!< 0 idle, 1 marking, 2 sweeping.
        Tick triggerAt = 0;
        Tick dispatchAt = 0;
        Tick sweepStartAt = 0;
    };

    /** One pass of driver decisions at the current cycle. */
    void pollCompletions();
    void enqueueTriggers();
    void dispatchIdle();

    void dispatch(Device &dev, const GcRequest &req);
    void completeGc(Device &dev);

    /** Earliest next trigger among unfinished, un-queued tenants. */
    Tick nextTriggerTime() const;

    /** True while any device has a phase in flight. */
    bool anyPhaseInFlight() const;

    /** Draws the next trigger gap for @p t (25% jitter). */
    Tick drawPeriod(Tenant &t);

    FleetConfig config_;
    std::unique_ptr<GcScheduler> scheduler_;

    mem::PhysMem mem_;
    System sys_;
    std::unique_ptr<mem::MemDevice> memory_;
    mem::Dram *dramPtr_ = nullptr;
    std::unique_ptr<mem::Interconnect> bus_;

    std::vector<Tenant> tenants_;
    std::vector<Device> devices_;
    std::vector<GcRequest> pending_; //!< Kept in trigger order.

    std::vector<TenantStats> stats_;
    bool measured_ = false;

    /** Shared bus/memory telemetry (the devices register their own). */
    std::vector<std::unique_ptr<stats::Group>> statGroups_;
    std::vector<std::string> statPaths_;
};

} // namespace hwgc::driver

#endif // HWGC_DRIVER_FLEET_H
