/**
 * @file
 * The tracer pipeline stage (paper Fig 14, §IV-A idea III).
 *
 * The tracer walks each newly marked object's reference section and
 * copies the references into the mark queue. Because "the order in
 * which references are added to the mark queue does not affect
 * correctness", it keeps no per-request state: it issues untagged
 * reads as fast as the memory system accepts them and enqueues
 * response words in arrival order. The request generator issues the
 * largest naturally aligned transfers (8/16/32/64 B) that tile the
 * reference section — e.g. 15 references at 0x1a18 become transfers
 * of 8, 32, 64, 16 bytes — and re-translates at page boundaries.
 *
 * Two ablation knobs model the paper's design claims: a coupled mode
 * (tracer only runs while the marker is drained — removing idea II)
 * and a tagged mode (bounded in-flight requests — removing idea III).
 * The conventional-layout (TIB) mode models Fig 6a: a dependent
 * tibPtr load, a TIB metadata load, per-8-slot offset-word loads, and
 * scattered single-word reference reads.
 */

#ifndef HWGC_CORE_TRACER_H
#define HWGC_CORE_TRACER_H

#include <deque>
#include <optional>

#include "core/hwgc_config.h"
#include "core/mark_queue.h"
#include "core/marker.h"
#include "core/trace_queue.h"

namespace hwgc::core
{

/** The tracer. */
class Tracer : public Clocked, public mem::MemResponder
{
  public:
    Tracer(std::string name, const HwgcConfig &config,
           TraceQueue &trace_queue, MarkQueue &mark_queue,
           mem::MemPort *port, mem::Ptw &ptw);

    /** Wires the marker for the coupled-pipeline ablation. */
    void setMarker(const Marker *marker) { marker_ = marker; }

    /** True when no object, request or buffered reference remains. */
    bool idle() const;

    // MemResponder interface.
    void onResponse(const mem::MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override { return !idle(); }
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void fastForward(Tick from, Tick to) override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** Re-creates the page-walk completion callback (restore path). */
    mem::Ptw::WalkCallback walkCallback();

    void reset();
    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t requestsIssued() const { return requests_.value(); }
    std::uint64_t bytesRequested() const { return bytesRequested_.value(); }
    std::uint64_t refsEnqueued() const { return refsEnqueued_.value(); }
    std::uint64_t nullRefsDropped() const { return nullsDropped_.value(); }
    std::uint64_t objectsTraced() const { return objects_.value(); }
    std::uint64_t pageCrossings() const { return pageCrossings_.value(); }
    std::uint64_t throttledCycles() const { return throttled_.value(); }
    std::uint64_t tibExtraReads() const { return tibReads_.value(); }
    const mem::TlbArray &tlb() const { return tlb_; }
    /** @} */

    /** Registers the tracer's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&requests_);
        g.add(&bytesRequested_);
        g.add(&refsEnqueued_);
        g.add(&nullsDropped_);
        g.add(&objects_);
        g.add(&pageCrossings_);
        g.add(&throttled_);
        g.add(&tibReads_);
    }

    /**
     * Computes the next transfer size for a cursor at @p addr with
     * @p remaining bytes left: the largest of {64,32,16,8} that is
     * naturally aligned at @p addr and fits. Exposed for unit tests
     * (the paper's 15-references example).
     */
    static unsigned nextTransferSize(Addr addr, std::uint64_t remaining);

  private:
    /** Request kinds encoded in the (otherwise unused) tag field. */
    enum ReqKind : std::uint64_t
    {
        kindRefData = 0, //!< Response words are reference slots.
        kindTibPtr = 1,  //!< Response word is the TIB pointer.
        kindTibMeta = 2, //!< TIB metadata / offset words (discarded).
    };

    /** The object currently being walked. */
    struct Active
    {
        Addr ref = 0;       //!< Status-word VA.
        Addr cursor = 0;    //!< Next reference-slot VA to request.
        Addr end = 0;       //!< One past the last slot (== ref).
        std::uint32_t numRefs = 0;
        std::uint32_t slotsIssued = 0;
        std::uint32_t nextOffsetGroup = 0; //!< TIB offset words read.
        // TIB-mode sub-state.
        bool needTibPtr = false;
        bool awaitTibPtr = false;
        bool needTibMeta = false;
        bool awaitTibMeta = false;
        Addr tibAddr = 0;
    };

    /** Translates @p va, stalling on the blocking PTW if needed.
     *  @return The physical address, or nullopt while walking. */
    std::optional<Addr> translate(Addr va, Tick now);

    /** Returns true if issuing is currently allowed. */
    bool mayIssue() const;

    void issue(Tick now);
    void drainPendingRefs();

    HwgcConfig config_;
    TraceQueue &traceQueue_;
    MarkQueue &markQueue_;
    mem::MemPort *port_;
    mem::Ptw &ptw_;
    unsigned ptwPort_ = 0; //!< Our requester port on the shared PTW.
    mem::TlbArray tlb_;
    const Marker *marker_ = nullptr;

    std::optional<Active> active_;
    unsigned inFlight_ = 0;        //!< Outstanding requests (counted,
                                   //!< not tagged).
    std::deque<Addr> pendingRefs_; //!< Response refs awaiting enqueue.

    bool walkPending_ = false;
    bool walkDone_ = false;
    Addr walkPa_ = 0;
    Addr walkVa_ = 0;

    stats::Scalar requests_{"requests"};
    stats::Scalar bytesRequested_{"bytesRequested"};
    stats::Scalar refsEnqueued_{"refsEnqueued"};
    stats::Scalar nullsDropped_{"nullRefsDropped"};
    stats::Scalar objects_{"objectsTraced"};
    stats::Scalar pageCrossings_{"pageCrossings"};
    stats::Scalar throttled_{"throttledCycles"};
    stats::Scalar tibReads_{"tibExtraReads"};
};

} // namespace hwgc::core

#endif // HWGC_CORE_TRACER_H
