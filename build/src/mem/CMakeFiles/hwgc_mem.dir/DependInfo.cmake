
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/atomic_cache.cc" "src/mem/CMakeFiles/hwgc_mem.dir/atomic_cache.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/atomic_cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/hwgc_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/ideal_mem.cc" "src/mem/CMakeFiles/hwgc_mem.dir/ideal_mem.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/ideal_mem.cc.o.d"
  "/root/repo/src/mem/interconnect.cc" "src/mem/CMakeFiles/hwgc_mem.dir/interconnect.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/interconnect.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/hwgc_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/page_table.cc.o.d"
  "/root/repo/src/mem/phys_mem.cc" "src/mem/CMakeFiles/hwgc_mem.dir/phys_mem.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/phys_mem.cc.o.d"
  "/root/repo/src/mem/ptw.cc" "src/mem/CMakeFiles/hwgc_mem.dir/ptw.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/ptw.cc.o.d"
  "/root/repo/src/mem/timed_cache.cc" "src/mem/CMakeFiles/hwgc_mem.dir/timed_cache.cc.o" "gcc" "src/mem/CMakeFiles/hwgc_mem.dir/timed_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hwgc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
