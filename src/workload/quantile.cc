/**
 * @file
 * Quantile helper implementation.
 */

#include "quantile.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace hwgc::workload
{

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    panic_if(sorted.empty(), "quantile of an empty sample set");
    panic_if(q < 0.0 || q > 1.0, "quantile %g outside [0, 1]", q);
    const double pos = q * double(sorted.size() - 1);
    std::size_t lo = std::size_t(pos);
    if (lo >= sorted.size()) {
        lo = sorted.size() - 1; // q == 1.0 under FP round-up.
    }
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
quantile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    return quantileSorted(values, q);
}

double
nearestRankSorted(const std::vector<double> &sorted, double q)
{
    panic_if(sorted.empty(), "quantile of an empty sample set");
    panic_if(q < 0.0 || q > 1.0, "quantile %g outside [0, 1]", q);
    const double rank = std::ceil(q * double(sorted.size()));
    std::size_t idx = rank <= 1.0 ? 0 : std::size_t(rank) - 1;
    if (idx >= sorted.size()) {
        idx = sorted.size() - 1;
    }
    return sorted[idx];
}

} // namespace hwgc::workload
