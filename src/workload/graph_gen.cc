/**
 * @file
 * Heap-graph synthesis implementation.
 */

#include "graph_gen.h"

#include <algorithm>
#include <unordered_set>

namespace hwgc::workload
{

using runtime::ObjRef;
using runtime::Space;

GraphBuilder::GraphBuilder(runtime::Heap &heap,
                           const GraphParams &params)
    : heap_(heap), params_(params), rng_(params.seed)
{
}

void
putGraphParams(checkpoint::Serializer &ser, const GraphParams &p)
{
    ser.putU64(p.liveObjects);
    ser.putU64(p.garbageObjects);
    ser.putU64(p.numRoots);
    ser.putDouble(p.avgRefs);
    ser.putU64(p.maxRefs);
    ser.putU64(p.minRefs);
    ser.putDouble(p.avgPayloadWords);
    ser.putU64(p.maxPayloadWords);
    ser.putDouble(p.arrayFraction);
    ser.putDouble(p.avgArrayLen);
    ser.putU64(p.maxArrayLen);
    ser.putDouble(p.largeFraction);
    ser.putDouble(p.shareProb);
    ser.putDouble(p.cycleProb);
    ser.putDouble(p.localityBias);
    ser.putU64(p.localityWindow);
    ser.putU64(p.hotObjects);
    ser.putDouble(p.hotRefFraction);
    ser.putU64(p.sparsePadObjects);
    ser.putU64(p.seed);
}

GraphParams
getGraphParams(checkpoint::Deserializer &des)
{
    GraphParams p;
    p.liveObjects = des.getU64();
    p.garbageObjects = des.getU64();
    p.numRoots = unsigned(des.getU64());
    p.avgRefs = des.getDouble();
    p.maxRefs = std::uint32_t(des.getU64());
    p.minRefs = std::uint32_t(des.getU64());
    p.avgPayloadWords = des.getDouble();
    p.maxPayloadWords = std::uint32_t(des.getU64());
    p.arrayFraction = des.getDouble();
    p.avgArrayLen = des.getDouble();
    p.maxArrayLen = std::uint32_t(des.getU64());
    p.largeFraction = des.getDouble();
    p.shareProb = des.getDouble();
    p.cycleProb = des.getDouble();
    p.localityBias = des.getDouble();
    p.localityWindow = std::size_t(des.getU64());
    p.hotObjects = des.getU64();
    p.hotRefFraction = des.getDouble();
    p.sparsePadObjects = des.getU64();
    p.seed = des.getU64();
    return p;
}

void
GraphBuilder::save(checkpoint::Serializer &ser) const
{
    ser.putU64(params_.seed);
    checkpoint::putRng(ser, rng_);
    ser.putU64(built_);
    ser.putU64(liveSet_.size());
    for (const ObjRef ref : liveSet_) {
        ser.putU64(ref);
    }
    ser.putU64(hotSet_.size());
    for (const ObjRef ref : hotSet_) {
        ser.putU64(ref);
    }
}

void
GraphBuilder::restore(checkpoint::Deserializer &des)
{
    fatal_if(des.getU64() != params_.seed,
             "builder snapshot '%s' was taken under a different seed",
             des.origin().c_str());
    checkpoint::getRng(des, rng_);
    built_ = des.getU64();
    liveSet_.clear();
    const std::uint64_t live = des.getU64();
    liveSet_.reserve(live);
    for (std::uint64_t i = 0; i < live; ++i) {
        liveSet_.push_back(des.getU64());
    }
    hotSet_.clear();
    const std::uint64_t hot = des.getU64();
    hotSet_.reserve(hot);
    for (std::uint64_t i = 0; i < hot; ++i) {
        hotSet_.push_back(des.getU64());
    }
}

ObjRef
GraphBuilder::allocateOne(bool allow_array)
{
    const bool is_array =
        allow_array && rng_.chance(params_.arrayFraction);
    std::uint32_t num_refs;
    std::uint32_t payload;
    if (is_array) {
        num_refs = std::uint32_t(std::max<std::uint64_t>(
            1, rng_.geometric(params_.avgArrayLen, params_.maxArrayLen)));
        payload = 0;
    } else {
        num_refs = std::uint32_t(std::max<std::uint64_t>(
            params_.minRefs,
            rng_.geometric(params_.avgRefs, params_.maxRefs)));
        payload = std::uint32_t(rng_.geometric(
            params_.avgPayloadWords, params_.maxPayloadWords));
    }
    const Space space = rng_.chance(params_.largeFraction)
        ? Space::Los : Space::MarkSweep;
    const std::uint16_t type_id =
        std::uint16_t(rng_.below(256) | (is_array ? 0x100 : 0));
    ++built_;
    const ObjRef ref =
        heap_.allocate(num_refs, payload, space, type_id, is_array);
    // Sparse-layout padding: dead filler after every real allocation
    // spreads consecutive objects across pages (TLB-thrash shape).
    // Pads are never wired, so they die at the first sweep and leave
    // persistent holes; they do not count toward the live target.
    for (std::uint64_t i = 0; i < params_.sparsePadObjects; ++i) {
        heap_.allocate(0, params_.maxPayloadWords, Space::MarkSweep,
                       0x3FF, false);
    }
    return ref;
}

ObjRef
GraphBuilder::pickExisting()
{
    if (!hotSet_.empty() && rng_.chance(params_.hotRefFraction)) {
        return hotSet_[rng_.below(hotSet_.size())];
    }
    if (liveSet_.empty()) {
        return runtime::nullRef;
    }
    if (rng_.chance(params_.localityBias)) {
        const std::size_t window =
            std::min(params_.localityWindow, liveSet_.size());
        return liveSet_[liveSet_.size() - 1 - rng_.below(window)];
    }
    return liveSet_[rng_.below(liveSet_.size())];
}

void
GraphBuilder::wireRefs(ObjRef obj, std::vector<ObjRef> &frontier)
{
    const std::uint32_t n = heap_.numRefs(obj);
    for (std::uint32_t slot = 0; slot < n; ++slot) {
        if (built_ < params_.liveObjects &&
            !rng_.chance(params_.shareProb)) {
            const ObjRef child = allocateOne(true);
            liveSet_.push_back(child);
            frontier.push_back(child);
            heap_.setRef(obj, slot, child);
        } else {
            // Share an existing object; cycles arise naturally since
            // ancestors are in the live set, and are forced
            // occasionally to guarantee cyclic structure.
            ObjRef target = pickExisting();
            if (target == runtime::nullRef || rng_.chance(0.1)) {
                // Leave some slots null, as real heaps have.
                target = runtime::nullRef;
            }
            heap_.setRef(obj, slot, target);
        }
    }
}

void
GraphBuilder::build()
{
    // Hot set: a few heavily shared objects (class/type metadata in
    // real heaps), allocated first in the immortal space.
    for (std::uint64_t i = 0; i < params_.hotObjects; ++i) {
        const ObjRef hot = heap_.allocate(
            2, 4, Space::Immortal, std::uint16_t(0x200 + i), false);
        hotSet_.push_back(hot);
        liveSet_.push_back(hot);
        ++built_;
    }

    // Roots and the reachable graph, breadth-first.
    std::vector<ObjRef> frontier;
    for (unsigned i = 0; i < params_.numRoots; ++i) {
        const ObjRef root = allocateOne(false);
        heap_.addRoot(root);
        liveSet_.push_back(root);
        frontier.push_back(root);
    }
    std::size_t cursor = 0;
    while (built_ < params_.liveObjects) {
        if (cursor >= frontier.size()) {
            // Frontier exhausted: attach a fresh subtree to a root.
            const ObjRef extra = allocateOne(true);
            liveSet_.push_back(extra);
            frontier.push_back(extra);
            const ObjRef anchor =
                liveSet_[rng_.below(liveSet_.size())];
            const std::uint32_t n = heap_.numRefs(anchor);
            if (n > 0) {
                heap_.setRef(anchor, rng_.below(n), extra);
            } else {
                heap_.addRoot(extra);
            }
        }
        wireRefs(frontier[cursor], frontier);
        ++cursor;
    }
    // Wire any frontier tail that got created but not yet filled.
    for (; cursor < frontier.size(); ++cursor) {
        const ObjRef obj = frontier[cursor];
        const std::uint32_t n = heap_.numRefs(obj);
        for (std::uint32_t slot = 0; slot < n; ++slot) {
            heap_.setRef(obj, slot, pickExisting());
        }
    }

    // Unreachable garbage: objects wired only among themselves and
    // into the live set (dead -> live edges are legal and common).
    std::vector<ObjRef> garbage;
    garbage.reserve(params_.garbageObjects);
    for (std::uint64_t i = 0; i < params_.garbageObjects; ++i) {
        garbage.push_back(allocateOne(true));
    }
    for (const ObjRef obj : garbage) {
        const std::uint32_t n = heap_.numRefs(obj);
        for (std::uint32_t slot = 0; slot < n; ++slot) {
            if (!garbage.empty() && rng_.chance(0.5)) {
                heap_.setRef(obj, slot,
                             garbage[rng_.below(garbage.size())]);
            } else {
                heap_.setRef(obj, slot, pickExisting());
            }
        }
    }

    heap_.publishRoots();
}

void
GraphBuilder::mutate(double churn)
{
    // Rebuild the live candidate list from the surviving registry,
    // and drop hot-set members that did not survive (wiring an edge
    // to a dead object would resurrect dangling references).
    liveSet_.clear();
    std::unordered_set<runtime::ObjRef> survivors;
    for (const auto &info : heap_.objects()) {
        liveSet_.push_back(info.ref);
        survivors.insert(info.ref);
    }
    std::erase_if(hotSet_, [&survivors](runtime::ObjRef ref) {
        return survivors.count(ref) == 0;
    });
    if (liveSet_.empty()) {
        return;
    }

    const std::uint64_t turnover =
        std::uint64_t(double(liveSet_.size()) * churn);

    // Drop edges: turns subtrees into garbage. Sharing means many
    // severed edges have surviving alternate paths, so cut more edges
    // than we allocate replacements — proportionally more for
    // heavily shared graphs — and apply negative feedback against
    // the profile's target live-set size so pauses stay steady-state
    // across GC cycles instead of ratcheting upward.
    const double pressure = std::max(
        0.5, double(liveSet_.size()) /
                 double(std::max<std::uint64_t>(1,
                                                params_.liveObjects)));
    const std::uint64_t cuts = std::uint64_t(
        2.0 * double(turnover) * pressure * pressure /
        (1.0 - params_.shareProb));
    const std::uint64_t allocs =
        std::uint64_t(double(turnover) / pressure);
    for (std::uint64_t i = 0; i < cuts; ++i) {
        const ObjRef victim = liveSet_[rng_.below(liveSet_.size())];
        const std::uint32_t n = heap_.numRefs(victim);
        if (n > 0) {
            heap_.setRef(victim, rng_.below(n), runtime::nullRef);
        }
    }

    // Allocate replacements attached to random survivors; objects
    // whose anchor has no reference slots are immediate garbage, as
    // in real allocation-heavy phases.
    for (std::uint64_t i = 0; i < allocs; ++i) {
        const ObjRef fresh = allocateOne(true);
        const std::uint32_t fn = heap_.numRefs(fresh);
        for (std::uint32_t slot = 0; slot < fn; ++slot) {
            if (rng_.chance(params_.shareProb)) {
                heap_.setRef(fresh, slot, pickExisting());
            }
        }
        for (unsigned attempt = 0; attempt < 4; ++attempt) {
            const ObjRef anchor =
                liveSet_[rng_.below(liveSet_.size())];
            const std::uint32_t n = heap_.numRefs(anchor);
            if (n > 0) {
                heap_.setRef(anchor, rng_.below(n), fresh);
                liveSet_.push_back(fresh);
                break;
            }
        }
    }

    heap_.publishRoots();
}

} // namespace hwgc::workload
