/**
 * @file
 * Tests for interconnect bandwidth throttling (paper §VII).
 */

#include <gtest/gtest.h>

#include "core/hwgc_device.h"
#include "gc/verifier.h"
#include "workload/graph_gen.h"

namespace hwgc
{
namespace
{

struct ThrottleRig
{
    explicit ThrottleRig(double bytes_per_cycle)
        : heap(mem), builder(heap, graph())
    {
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
        core::HwgcConfig config;
        config.bus.throttleBytesPerCycle = bytes_per_cycle;
        device = std::make_unique<core::HwgcDevice>(
            mem, heap.pageTable(), config);
        device->configure(heap);
    }

    static workload::GraphParams
    graph()
    {
        workload::GraphParams p;
        p.liveObjects = 1200;
        p.garbageObjects = 700;
        p.seed = 91;
        return p;
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    workload::GraphBuilder builder;
    std::unique_ptr<core::HwgcDevice> device;
};

TEST(Throttle, ResultsUnchangedUnderThrottle)
{
    ThrottleRig rig(1.0);
    rig.device->collect();
    const auto marks = gc::verifyMarks(rig.heap);
    EXPECT_TRUE(marks.ok) << marks.error;
    const auto swept = gc::verifySweptHeap(rig.heap);
    EXPECT_TRUE(swept.ok) << swept.error;
}

TEST(Throttle, TighterCapsAreMonotonicallySlower)
{
    Tick previous = 0;
    for (const double cap : {0.0, 4.0, 1.0}) {
        ThrottleRig rig(cap);
        const auto result = rig.device->runMark();
        if (previous != 0) {
            EXPECT_GE(result.cycles, previous) << "cap " << cap;
        }
        previous = result.cycles;
    }
}

TEST(Throttle, MeasuredBandwidthStaysUnderCap)
{
    const double cap = 1.0; // 1 byte/cycle = 1 GB/s at 1 GHz.
    ThrottleRig rig(cap);
    const auto result = rig.device->collect();
    const double bytes =
        double(rig.device->dram()->bytesRead().value() +
               rig.device->dram()->bytesWritten().value());
    const double bytes_per_cycle = bytes / double(result.cycles);
    // The token bucket allows small bursts; allow 10% slack.
    EXPECT_LE(bytes_per_cycle, cap * 1.10);
}

TEST(Throttle, ThrottledGrantsCounted)
{
    ThrottleRig tight(0.5);
    tight.device->runMark();
    EXPECT_GT(tight.device->bus().throttledGrants(), 0u);

    ThrottleRig open(0.0);
    open.device->runMark();
    EXPECT_EQ(open.device->bus().throttledGrants(), 0u);
}

} // namespace
} // namespace hwgc
