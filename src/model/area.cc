/**
 * @file
 * Area model implementation.
 */

#include "area.h"

#include "sim/logging.h"

namespace hwgc::model
{

double
AreaBreakdown::part(const std::string &name) const
{
    for (const auto &[n, mm2] : parts) {
        if (n == name) {
            return mm2;
        }
    }
    fatal("no area part named '%s'", name.c_str());
}

AreaBreakdown
AreaModel::rocketArea() const
{
    AreaBreakdown area;
    // Table I: 256 KiB L2, 16 KiB I$, 16 KiB D$. Tag overhead ~6%.
    const double tag_overhead = 1.06;
    area.parts.emplace_back(
        "L2 Cache", 256.0 * params_.sramMm2PerKiB * tag_overhead);
    area.parts.emplace_back(
        "L1 DCache", 16.0 * params_.sramMm2PerKiB * tag_overhead +
        0.05 /* LSU logic */);
    area.parts.emplace_back(
        "Frontend", 16.0 * params_.sramMm2PerKiB * tag_overhead +
        params_.rocketFrontendLogicMm2);
    area.parts.emplace_back("Other", params_.rocketOtherLogicMm2);
    return area;
}

AreaBreakdown
AreaModel::hwgcArea(const core::HwgcConfig &config) const
{
    AreaBreakdown area;

    // Mark queue: main queue SRAM budget is markQueueEntries 64-bit
    // slots (compression packs more references into the same bits),
    // plus inQ/outQ and the spill state machine.
    const double mq_kib =
        double(config.markQueueEntries) * 8.0 / 1024.0 +
        double(2 * config.spillQueueEntries) * 8.0 / 1024.0;
    area.parts.emplace_back(
        "Mark Q.", mq_kib * params_.queueMm2PerKiB +
        params_.unitLogicMm2);

    // Tracer: tracer queue (ref + count = 12 B/entry), TLB, generator.
    const double tq_kib =
        double(config.tracerQueueEntries) * 12.0 / 1024.0;
    area.parts.emplace_back(
        "Tracer", tq_kib * params_.queueMm2PerKiB +
        double(config.unitTlbEntries) * params_.tlbMm2PerEntry +
        params_.unitLogicMm2);

    // Marker: request slots (tag + address = 16 B), TLB, mark-bit
    // cache, control.
    const double slots_kib = double(config.markerSlots) * 16.0 / 1024.0;
    const double mbc_kib =
        double(config.markBitCacheEntries) * 8.0 / 1024.0;
    area.parts.emplace_back(
        "Marker", (slots_kib + mbc_kib) * params_.queueMm2PerKiB +
        double(config.unitTlbEntries) * params_.tlbMm2PerEntry +
        params_.unitLogicMm2);

    // PTW: its cache (8 KiB in the partitioned design, or a share of
    // the unit cache in the shared design) plus the L2 TLB.
    const double ptw_cache_kib = config.sharedCache
        ? double(config.sharedCacheParams.sizeBytes) / 1024.0
        : double(config.ptwCacheParams.sizeBytes) / 1024.0;
    area.parts.emplace_back(
        "PTW", ptw_cache_kib * params_.sramMm2PerKiB +
        double(config.ptw.l2TlbEntries) * params_.tlbMm2PerEntry +
        params_.unitLogicMm2);

    // Sweepers + their crossbar.
    area.parts.emplace_back(
        "Sweeper",
        double(config.numSweepers) *
            (params_.sweeperMm2 + params_.crossbarMm2PerPort +
             double(config.sweeperTlbEntries) * params_.tlbMm2PerEntry));

    // MMIO registers, TileLink adapters, glue.
    area.parts.emplace_back("Other", 2.0 * params_.unitLogicMm2);
    return area;
}

double
AreaModel::ratio(const core::HwgcConfig &config) const
{
    return hwgcArea(config).total() / rocketArea().total();
}

double
AreaModel::sramEquivalentKiB(const core::HwgcConfig &config) const
{
    return hwgcArea(config).total() / params_.sramMm2PerKiB;
}

} // namespace hwgc::model
