/**
 * @file
 * Focused unit tests for individual traversal/reclamation components
 * driven in isolation: the trace queue, the root reader, and a single
 * block sweeper.
 */

#include <gtest/gtest.h>

#include "core/block_sweeper.h"
#include "core/hwgc_device.h"
#include "core/trace_queue.h"
#include "gc/verifier.h"
#include "runtime/block_table.h"
#include "runtime/heap.h"

namespace hwgc
{
namespace
{

using runtime::BlockTableEntry;
using runtime::CellStart;
using runtime::HeapLayout;
using runtime::ObjRef;
using runtime::ObjectModel;
using runtime::StatusWord;

TEST(TraceQueue, FifoAndCapacity)
{
    core::TraceQueue q(3);
    EXPECT_TRUE(q.empty());
    q.push({0x100, 1});
    q.push({0x200, 2});
    q.push({0x300, 3});
    EXPECT_FALSE(q.canPush());
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().ref, 0x100u);
    EXPECT_TRUE(q.canPush());
    EXPECT_EQ(q.pop().numRefs, 2u);
    EXPECT_EQ(q.maxDepth(), 3u);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(TraceQueueDeathTest, OverflowUnderflow)
{
    core::TraceQueue q(1);
    q.push({1, 1});
    EXPECT_DEATH(q.push({2, 2}), "overflow");
    q.pop();
    EXPECT_DEATH(q.pop(), "underflow");
}

/** Device-level fixture whose heap we craft by hand. */
struct CraftRig
{
    CraftRig() : heap(mem) {}

    core::HwgcDevice &
    device()
    {
        if (!device_) {
            heap.publishRoots();
            device_ = std::make_unique<core::HwgcDevice>(
                mem, heap.pageTable(), core::HwgcConfig{});
            device_->configure(heap);
        }
        return *device_;
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    std::unique_ptr<core::HwgcDevice> device_;
};

TEST(RootReader, StreamsExactlyTheRegion)
{
    CraftRig rig;
    std::vector<ObjRef> objs;
    for (int i = 0; i < 21; ++i) { // Not a multiple of any burst.
        objs.push_back(rig.heap.allocate(0, 0));
        rig.heap.addRoot(objs.back());
    }
    const auto result = rig.device().runMark();
    EXPECT_EQ(rig.device().rootReader().rootsRead(), 21u);
    EXPECT_EQ(result.objectsMarked, 21u);
}

TEST(RootReader, ExtendWhileRunning)
{
    CraftRig rig;
    const ObjRef a = rig.heap.allocate(0, 0);
    const ObjRef b = rig.heap.allocate(0, 0);
    rig.heap.addRoot(a);
    auto &dev = rig.device();
    dev.rootReader().start(HeapLayout::hwgcSpaceBase, 1);
    dev.system().run(50);
    // Mutator-style append: write then extend.
    rig.heap.write(HeapLayout::hwgcSpaceBase + 8, b);
    dev.rootReader().extend(2);
    ASSERT_TRUE(dev.system().runUntilIdle());
    EXPECT_TRUE(StatusWord::marked(rig.heap.read(a)));
    EXPECT_TRUE(StatusWord::marked(rig.heap.read(b)));
}

/** Runs one sweeper over one hand-crafted block. */
struct SweeperRig
{
    SweeperRig() : heap(mem) {}

    /** Sweeps block 0 of the heap with a standalone sweeper. */
    void
    sweepBlockZero()
    {
        device = std::make_unique<core::HwgcDevice>(
            mem, heap.pageTable(), core::HwgcConfig{});
        device->configure(heap);
        auto &sweeper = *device->reclamation().sweepers()[0];
        core::SweepJob job;
        job.entryVa = heap.blockTableEntryAddr(0);
        job.baseVa = heap.blocks()[0].base;
        job.cellBytes = heap.blocks()[0].cellBytes;
        sweeper.assign(job, 0);
        ASSERT_TRUE(device->system().runUntilIdle());
        ASSERT_TRUE(sweeper.drained());
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    std::unique_ptr<core::HwgcDevice> device;
};

TEST(BlockSweeper, FreesUnmarkedKeepsMarked)
{
    SweeperRig rig;
    const ObjRef keep = rig.heap.allocate(0, 0);
    const ObjRef drop = rig.heap.allocate(0, 0);
    rig.heap.write(keep, rig.heap.read(keep) | StatusWord::markBit);
    rig.sweepBlockZero();

    EXPECT_TRUE(CellStart::isLive(
        rig.heap.read(ObjectModel::cellFromRef(keep, 0))));
    EXPECT_FALSE(CellStart::isLive(
        rig.heap.read(ObjectModel::cellFromRef(drop, 0))));
    const auto lists = gc::verifyFreeLists(rig.heap);
    EXPECT_TRUE(lists.ok) << lists.error;
}

TEST(BlockSweeper, SummaryCountsAndHasLive)
{
    SweeperRig rig;
    const ObjRef keep = rig.heap.allocate(0, 0);
    rig.heap.allocate(0, 0); // Garbage.
    rig.heap.write(keep, rig.heap.read(keep) | StatusWord::markBit);
    rig.sweepBlockZero();

    const Word summary =
        rig.heap.read(rig.heap.blockTableEntryAddr(0) + 3 * wordBytes);
    const std::uint64_t cells =
        runtime::blockBytes / rig.heap.blocks()[0].cellBytes;
    EXPECT_EQ(BlockTableEntry::freeCells(summary), cells - 1);
    EXPECT_TRUE(BlockTableEntry::hasLive(summary));
}

TEST(BlockSweeper, AllDeadBlockIsFullyFree)
{
    SweeperRig rig;
    rig.heap.allocate(0, 0);
    rig.heap.allocate(0, 0);
    rig.sweepBlockZero();

    const Word summary =
        rig.heap.read(rig.heap.blockTableEntryAddr(0) + 3 * wordBytes);
    const std::uint64_t cells =
        runtime::blockBytes / rig.heap.blocks()[0].cellBytes;
    EXPECT_EQ(BlockTableEntry::freeCells(summary), cells);
    EXPECT_FALSE(BlockTableEntry::hasLive(summary));

    // The free list must chain every cell in ascending order.
    Addr cursor =
        rig.heap.read(rig.heap.blockTableEntryAddr(0) + 2 * wordBytes);
    Addr previous = 0;
    std::uint64_t length = 0;
    while (cursor != 0) {
        EXPECT_GT(cursor, previous);
        previous = cursor;
        cursor = CellStart::nextFree(rig.heap.read(cursor));
        ++length;
    }
    EXPECT_EQ(length, cells);
}

TEST(BlockSweeper, LargeCellsSkipPayload)
{
    SweeperRig rig;
    // 8 KiB cells: two per block; the sweeper must not stream the
    // whole block to classify two cells.
    const ObjRef big = rig.heap.allocate(10, 900);
    rig.heap.write(big, rig.heap.read(big) | StatusWord::markBit);
    ASSERT_EQ(rig.heap.blocks()[0].cellBytes, 8192u);
    rig.sweepBlockZero();
    auto &sweeper = *rig.device->reclamation().sweepers()[0];
    EXPECT_EQ(sweeper.cellsScanned(), 2u);
    // Two cells x (start + header) words at most: a handful of lines,
    // not 16 KiB / 64 B = 256.
    EXPECT_LE(sweeper.lineFetches(), 8u);
}

TEST(BlockSweeper, StatsAccumulate)
{
    SweeperRig rig;
    rig.heap.allocate(0, 0);
    rig.sweepBlockZero();
    auto &sweeper = *rig.device->reclamation().sweepers()[0];
    EXPECT_EQ(sweeper.blocksSwept(), 1u);
    EXPECT_GT(sweeper.cellsFreed(), 0u);
    sweeper.resetStats();
    EXPECT_EQ(sweeper.blocksSwept(), 0u);
}

TEST(MarkBitCacheUnit, LruBehaviour)
{
    core::MarkBitCache cache(2);
    EXPECT_TRUE(cache.enabled());
    cache.insert(0x100);
    cache.insert(0x200);
    EXPECT_TRUE(cache.contains(0x100)); // Touch: 0x200 becomes LRU.
    cache.insert(0x300);
    EXPECT_TRUE(cache.contains(0x100));
    EXPECT_FALSE(cache.contains(0x200));
    EXPECT_TRUE(cache.contains(0x300));
    cache.clear();
    EXPECT_FALSE(cache.contains(0x100));
}

TEST(MarkBitCacheUnit, DisabledCacheInsertsNothing)
{
    core::MarkBitCache cache(0);
    EXPECT_FALSE(cache.enabled());
    cache.insert(0x100);
    EXPECT_FALSE(cache.contains(0x100));
}

} // namespace
} // namespace hwgc
