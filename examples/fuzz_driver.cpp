/**
 * @file
 * Differential fuzzing + what-if farm driver (DESIGN.md §11).
 *
 * Fuzz modes:
 *
 *   $ fuzz_driver --seeds=0:200 [--grid=quick|full] [--artifact-dir=D]
 *       Generate a schedule per seed and replay each through the
 *       kernel × config differential matrix. Any divergence writes
 *       the schedule, a crash checkpoint and a one-line repro, then
 *       gets shrunk to a minimal reproducer. Exit 1 on divergence.
 *
 *   $ fuzz_driver --schedule=F [--config=SPEC] [--kernel=K]
 *       Replay one saved schedule (the repro path). --config/--kernel
 *       narrow the matrix to the diverging universe.
 *
 *   --inject-mark-bug   Deliberately corrupt one mark bit in the last
 *                       universe — proves the harness catches, dumps
 *                       and reproduces a real mark-set bug.
 *
 * Farm modes (driven by scripts/whatif_farm.py):
 *
 *   $ fuzz_driver --farm-snapshot=S --seed=N [--pauses=P] [--live=L]
 *       Build a heap, churn it through P warm pauses, snapshot it.
 *
 *   $ fuzz_driver --farm-run=S --config=SPEC --label=NAME \
 *                 --result-json=R.json
 *       Fork the snapshot into one configuration: restore, run one
 *       measured pause, write the result record.
 *
 *   $ fuzz_driver --farm-cold --seed=N --config=SPEC ...
 *       The control: rebuild + re-warm from scratch instead of
 *       restoring, so the farm's speedup is measurable.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/hwgc_device.h"
#include "fuzz/differ.h"
#include "fuzz/farm.h"
#include "fuzz/shrink.h"
#include "gc/verifier.h"
#include "sim/telemetry.h"

namespace
{

using namespace hwgc;

double
hostSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Matches --key=value arguments. */
bool
argValue(const char *arg, const char *key, std::string &out)
{
    const std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) == 0) {
        out = arg + len;
        return true;
    }
    return false;
}

std::uint64_t
parseU64(const std::string &text, const char *what)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || text.empty()) {
        std::fprintf(stderr, "fuzz_driver: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

/** Everything one measured pause produces for the farm report. */
struct PauseRecord
{
    core::HwPhaseResult mark;
    core::HwPhaseResult sweep;
    std::uint64_t markedCount = 0;
    std::uint64_t markDigest = 0;
    std::uint64_t freedObjects = 0;
    std::uint64_t liveAfter = 0;
};

/** One stop-the-world pause through the standard driver sequence. */
PauseRecord
runPause(runtime::Heap &heap, core::HwgcDevice &device)
{
    heap.clearAllMarks();
    heap.publishRoots();
    device.resetPhaseState();
    device.resetStats();
    device.configure(heap);

    PauseRecord rec;
    rec.mark = device.runMark();
    rec.markedCount = heap.countMarked();
    rec.markDigest = gc::markSetDigest(heap);
    const auto marks_ok = gc::verifyMarks(heap);
    if (!marks_ok.ok) {
        std::fprintf(stderr, "fuzz_driver: mark verification failed: %s\n",
                     marks_ok.error.c_str());
        std::exit(1);
    }
    rec.sweep = device.runSweep();
    rec.freedObjects = heap.onAfterSweep();
    rec.liveAfter = heap.liveObjects();
    return rec;
}

/** Builds + warms a fresh universe the way --farm-snapshot does. */
fuzz::FarmUniverse
buildWarmUniverse(std::uint64_t seed, std::uint64_t pauses,
                  std::uint64_t live, std::uint64_t garbage,
                  unsigned churn_permille)
{
    fuzz::FarmUniverse u;
    u.params.seed = seed;
    if (live != 0) {
        u.params.liveObjects = live;
    }
    if (garbage != 0) {
        u.params.garbageObjects = garbage;
    }
    u.mem = std::make_unique<mem::PhysMem>();
    u.heap = std::make_unique<runtime::Heap>(*u.mem);
    u.builder = std::make_unique<workload::GraphBuilder>(*u.heap, u.params);
    u.builder->build();

    // Warm pauses always run the baseline configuration: the snapshot
    // must be identical no matter which grid point later forks it.
    core::HwgcDevice device(*u.mem, u.heap->pageTable(),
                            core::HwgcConfig{});
    for (std::uint64_t p = 0; p < pauses; ++p) {
        runPause(*u.heap, device);
        u.builder->mutate(double(churn_permille) / 1000.0);
    }

    u.meta.seed = seed;
    u.meta.warmPauses = pauses;
    u.meta.liveObjects = u.heap->liveObjects();
    u.meta.bytesAllocated = u.heap->bytesAllocated();
    return u;
}

void
writeResultJson(const std::string &path, const std::string &label,
                const std::string &mode, const std::string &spec,
                const fuzz::FarmMeta &meta, const PauseRecord &rec,
                double setup_ms, double pause_ms)
{
    std::FILE *f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "fuzz_driver: cannot write '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    const auto u64 = [](std::uint64_t v) {
        return std::to_string(v);
    };
    std::fprintf(f,
                 "{\n"
                 "  \"label\": \"%s\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"config\": \"%s\",\n"
                 "  \"seed\": %s,\n"
                 "  \"warmPauses\": %s,\n"
                 "  \"snapshotLiveObjects\": %s,\n"
                 "  \"markCycles\": %s,\n"
                 "  \"sweepCycles\": %s,\n"
                 "  \"gcCycles\": %s,\n"
                 "  \"objectsMarked\": %s,\n"
                 "  \"refsTraced\": %s,\n"
                 "  \"cellsFreed\": %s,\n"
                 "  \"markedCount\": %s,\n"
                 "  \"markDigest\": \"0x%016llx\",\n"
                 "  \"freedObjects\": %s,\n"
                 "  \"liveAfter\": %s,\n"
                 "  \"setupHostMs\": %.3f,\n"
                 "  \"pauseHostMs\": %.3f,\n"
                 "  \"totalHostMs\": %.3f\n"
                 "}\n",
                 telemetry::jsonEscape(label).c_str(), mode.c_str(),
                 telemetry::jsonEscape(spec).c_str(), u64(meta.seed).c_str(),
                 u64(meta.warmPauses).c_str(),
                 u64(meta.liveObjects).c_str(),
                 u64(rec.mark.cycles).c_str(), u64(rec.sweep.cycles).c_str(),
                 u64(rec.mark.cycles + rec.sweep.cycles).c_str(),
                 u64(rec.mark.objectsMarked).c_str(),
                 u64(rec.mark.refsTraced).c_str(),
                 u64(rec.sweep.cellsFreed).c_str(),
                 u64(rec.markedCount).c_str(),
                 (unsigned long long)rec.markDigest,
                 u64(rec.freedObjects).c_str(), u64(rec.liveAfter).c_str(),
                 setup_ms, pause_ms, setup_ms + pause_ms);
    if (f != stdout) {
        std::fclose(f);
    }
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: fuzz_driver --seeds=A:B [--grid=quick|full]\n"
        "                   [--artifact-dir=D] [--no-shrink]\n"
        "       fuzz_driver --schedule=F [--config=SPEC] [--kernel=K]\n"
        "       fuzz_driver --farm-snapshot=S --seed=N [--pauses=P]\n"
        "                   [--live=L] [--garbage=G] [--churn=PERMILLE]\n"
        "       fuzz_driver --farm-run=S --config=SPEC --label=NAME\n"
        "                   [--kernel=K] [--result-json=R]\n"
        "       fuzz_driver --farm-cold --seed=N --config=SPEC ...\n"
        "       (--inject-mark-bug corrupts one mark bit, for testing\n"
        "        that the harness catches real bugs)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::Session session(argc, argv);

    std::string seeds_range, schedule_path, config_spec, kernel_name;
    std::string grid_name = "quick", artifact_dir = ".";
    std::string farm_snapshot, farm_run, label = "run", result_json;
    std::uint64_t seed = 1, pauses = 3, live = 0, garbage = 0;
    unsigned churn_permille = 300;
    bool farm_cold = false, inject = false, do_shrink = true;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string value;
        if (argValue(arg, "--seeds=", seeds_range) ||
            argValue(arg, "--schedule=", schedule_path) ||
            argValue(arg, "--config=", config_spec) ||
            argValue(arg, "--kernel=", kernel_name) ||
            argValue(arg, "--grid=", grid_name) ||
            argValue(arg, "--artifact-dir=", artifact_dir) ||
            argValue(arg, "--farm-snapshot=", farm_snapshot) ||
            argValue(arg, "--farm-run=", farm_run) ||
            argValue(arg, "--label=", label) ||
            argValue(arg, "--result-json=", result_json)) {
            continue;
        }
        if (argValue(arg, "--seed=", value)) {
            seed = parseU64(value, "--seed");
        } else if (argValue(arg, "--pauses=", value)) {
            pauses = parseU64(value, "--pauses");
        } else if (argValue(arg, "--live=", value)) {
            live = parseU64(value, "--live");
        } else if (argValue(arg, "--garbage=", value)) {
            garbage = parseU64(value, "--garbage");
        } else if (argValue(arg, "--churn=", value)) {
            churn_permille = unsigned(parseU64(value, "--churn"));
        } else if (std::strcmp(arg, "--farm-cold") == 0) {
            farm_cold = true;
        } else if (std::strcmp(arg, "--inject-mark-bug") == 0) {
            inject = true;
        } else if (std::strcmp(arg, "--no-shrink") == 0) {
            do_shrink = false;
        } else {
            std::fprintf(stderr, "fuzz_driver: unknown argument '%s'\n",
                         arg);
            usage();
            return 2;
        }
    }

    session.meta().binary = "fuzz_driver";
    session.meta().seed = seed;
    session.meta().config = config_spec;

    // ---- Farm: snapshot a warm heap ------------------------------------
    if (!farm_snapshot.empty()) {
        const double t0 = hostSeconds();
        fuzz::FarmUniverse u = buildWarmUniverse(seed, pauses, live,
                                                 garbage, churn_permille);
        fuzz::saveFarmSnapshot(farm_snapshot, u.meta, u.params, *u.heap,
                               *u.builder, *u.mem);
        std::printf("farm snapshot: seed %llu, %llu warm pauses, %llu "
                    "live objects, %.0f ms -> %s\n",
                    (unsigned long long)seed, (unsigned long long)pauses,
                    (unsigned long long)u.meta.liveObjects,
                    (hostSeconds() - t0) * 1e3, farm_snapshot.c_str());
        return 0;
    }

    // ---- Farm: one measured pause (forked or cold) ---------------------
    if (!farm_run.empty() || farm_cold) {
        core::HwgcConfig config;
        std::string spec_err;
        if (!fuzz::applyConfigSpec(config, config_spec, &spec_err)) {
            std::fprintf(stderr, "fuzz_driver: %s\n", spec_err.c_str());
            return 2;
        }
        if (!kernel_name.empty()) {
            fuzz::KernelCase kc;
            if (!fuzz::kernelCaseFromName(kernel_name, kc)) {
                std::fprintf(stderr, "fuzz_driver: unknown kernel '%s'\n",
                             kernel_name.c_str());
                return 2;
            }
            config.kernel = kc.mode;
            if (kc.threads != 0) {
                config.hostThreads = kc.threads;
            }
        }

        const double t0 = hostSeconds();
        fuzz::FarmUniverse u =
            farm_cold ? buildWarmUniverse(seed, pauses, live, garbage,
                                          churn_permille)
                      : fuzz::loadFarmSnapshot(farm_run);
        const double t1 = hostSeconds();

        core::HwgcDevice device(*u.mem, u.heap->pageTable(), config);
        const PauseRecord rec = runPause(*u.heap, device);
        const double t2 = hostSeconds();

        session.meta().seed = u.meta.seed;
        session.meta().simCycles = rec.mark.cycles + rec.sweep.cycles;
        std::printf("%s [%s]: mark %llu + sweep %llu cycles, "
                    "%llu marked, %llu freed (setup %.0f ms, "
                    "pause %.0f ms)\n",
                    farm_cold ? "farm-cold" : "farm-run", label.c_str(),
                    (unsigned long long)rec.mark.cycles,
                    (unsigned long long)rec.sweep.cycles,
                    (unsigned long long)rec.markedCount,
                    (unsigned long long)rec.freedObjects,
                    (t1 - t0) * 1e3, (t2 - t1) * 1e3);
        if (!result_json.empty()) {
            writeResultJson(result_json, label,
                            farm_cold ? "cold" : "farm", config_spec,
                            u.meta, rec, (t1 - t0) * 1e3,
                            (t2 - t1) * 1e3);
        }
        return 0;
    }

    // ---- Fuzz: build the matrix options --------------------------------
    fuzz::FuzzOptions options;
    options.artifactDir = artifact_dir;
    options.writeArtifacts = true;
    options.injectMarkBug = inject;
    options.driverName = argv[0];
    if (grid_name == "full") {
        options.grid = fuzz::fullGrid();
    } else if (grid_name != "quick") {
        std::fprintf(stderr, "fuzz_driver: unknown grid '%s'\n",
                     grid_name.c_str());
        return 2;
    }
    if (!config_spec.empty() && config_spec != "default") {
        options.grid = {{"cli", config_spec}};
    }
    if (!kernel_name.empty()) {
        fuzz::KernelCase kc;
        if (!fuzz::kernelCaseFromName(kernel_name, kc)) {
            std::fprintf(stderr, "fuzz_driver: unknown kernel '%s'\n",
                         kernel_name.c_str());
            return 2;
        }
        options.kernels = {kc};
    }

    const auto report = [&](const fuzz::Schedule &schedule,
                            const fuzz::FuzzResult &result,
                            bool shrink_this) {
        std::printf("DIVERGENCE: %s\n", result.error.c_str());
        if (!result.schedulePath.empty()) {
            std::printf("  schedule:   %s\n", result.schedulePath.c_str());
        }
        if (!result.crashPath.empty()) {
            std::printf("  checkpoint: %s\n", result.crashPath.c_str());
        }
        if (!result.reproLine.empty()) {
            std::printf("  repro:      %s\n", result.reproLine.c_str());
        }
        if (!do_shrink || !shrink_this) {
            return;
        }
        fuzz::ShrinkStats stats;
        const fuzz::Schedule minimized =
            fuzz::shrink(schedule, options, result, &stats);
        const std::string min_path = artifact_dir + "/fuzz-seed" +
            std::to_string(schedule.seed) + ".min.sched";
        fuzz::saveFile(min_path, minimized);
        std::printf("  shrunk:     %zu -> %zu ops, %llu -> %llu live "
                    "(%u probes): %s\n",
                    stats.originalOps, stats.finalOps,
                    (unsigned long long)stats.originalLive,
                    (unsigned long long)stats.finalLive, stats.probes,
                    min_path.c_str());
    };

    // ---- Fuzz: replay one schedule file --------------------------------
    if (!schedule_path.empty()) {
        fuzz::Schedule schedule;
        std::string error;
        if (!fuzz::loadFile(schedule_path, schedule, &error)) {
            std::fprintf(stderr, "fuzz_driver: %s\n", error.c_str());
            return 2;
        }
        const fuzz::FuzzResult result = fuzz::runSchedule(schedule, options);
        if (!result.ok) {
            report(schedule, result, true);
            return 1;
        }
        std::printf("ok: %s (%llu collects across the matrix)\n",
                    schedule_path.c_str(),
                    (unsigned long long)result.collectsRun);
        return 0;
    }

    // ---- Fuzz: seed-range sweep ----------------------------------------
    if (seeds_range.empty()) {
        usage();
        return 2;
    }
    const std::size_t colon = seeds_range.find(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr, "fuzz_driver: --seeds wants A:B, got '%s'\n",
                     seeds_range.c_str());
        return 2;
    }
    const std::uint64_t first =
        parseU64(seeds_range.substr(0, colon), "--seeds");
    const std::uint64_t last =
        parseU64(seeds_range.substr(colon + 1), "--seeds");
    if (last <= first) {
        std::fprintf(stderr, "fuzz_driver: empty seed range %llu:%llu\n",
                     (unsigned long long)first, (unsigned long long)last);
        return 2;
    }

    const double t0 = hostSeconds();
    std::uint64_t failures = 0, collects = 0;
    bool shrunk_one = false;
    for (std::uint64_t s = first; s < last; ++s) {
        const fuzz::Schedule schedule = fuzz::generate(s);
        const fuzz::FuzzResult result = fuzz::runSchedule(schedule, options);
        collects += result.collectsRun;
        if (!result.ok) {
            ++failures;
            // Only the first divergence is shrunk: shrinking replays
            // the full matrix ~30 times, and one minimal repro is
            // enough to start debugging.
            report(schedule, result, !shrunk_one);
            shrunk_one = true;
        }
        if ((s - first + 1) % 50 == 0) {
            std::printf("... %llu/%llu seeds, %llu collects, "
                        "%llu divergences (%.0f s)\n",
                        (unsigned long long)(s - first + 1),
                        (unsigned long long)(last - first),
                        (unsigned long long)collects,
                        (unsigned long long)failures, hostSeconds() - t0);
        }
    }
    std::printf("fuzz: %llu seeds, %llu collects, %llu divergences "
                "(%.0f s)\n",
                (unsigned long long)(last - first),
                (unsigned long long)collects, (unsigned long long)failures,
                hostSeconds() - t0);
    return failures == 0 ? 0 : 1;
}
