file(REMOVE_RECURSE
  "CMakeFiles/hwgc_core.dir/block_sweeper.cc.o"
  "CMakeFiles/hwgc_core.dir/block_sweeper.cc.o.d"
  "CMakeFiles/hwgc_core.dir/hwgc_device.cc.o"
  "CMakeFiles/hwgc_core.dir/hwgc_device.cc.o.d"
  "CMakeFiles/hwgc_core.dir/mark_queue.cc.o"
  "CMakeFiles/hwgc_core.dir/mark_queue.cc.o.d"
  "CMakeFiles/hwgc_core.dir/marker.cc.o"
  "CMakeFiles/hwgc_core.dir/marker.cc.o.d"
  "CMakeFiles/hwgc_core.dir/reclamation_unit.cc.o"
  "CMakeFiles/hwgc_core.dir/reclamation_unit.cc.o.d"
  "CMakeFiles/hwgc_core.dir/root_reader.cc.o"
  "CMakeFiles/hwgc_core.dir/root_reader.cc.o.d"
  "CMakeFiles/hwgc_core.dir/tracer.cc.o"
  "CMakeFiles/hwgc_core.dir/tracer.cc.o.d"
  "libhwgc_core.a"
  "libhwgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
