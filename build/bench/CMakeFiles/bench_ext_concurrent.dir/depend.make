# Empty dependencies file for bench_ext_concurrent.
# This may be replaced when dependencies are built.
