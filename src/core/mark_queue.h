/**
 * @file
 * The mark queue with memory spilling (paper Fig 12) and reference
 * compression (§V-C).
 *
 * The main on-chip queue Q holds references between the tracer
 * (producer) and marker (consumer). When Q fills, entries divert to
 * outQ, whose contents a small state machine writes to a physical
 * spill region in 64-byte granules; when Q drains, spilled entries
 * stream back through inQ. outQ->inQ copies bypass memory when the
 * spill region is empty, and spill *writes* have priority over reads
 * ("By prioritizing memory requests from outQ, we avoid deadlock").
 * When outQ passes a fill threshold, throttle() tells the tracer to
 * stop issuing requests.
 *
 * With compression enabled, references are packed to 32 bits before
 * entering the queue (heap VAs are < 2^35 and 8-byte aligned, so
 * ref >> 3 fits), doubling effective queue capacity and halving
 * spill traffic — the Fig 19 "Comp." series.
 */

#ifndef HWGC_CORE_MARK_QUEUE_H
#define HWGC_CORE_MARK_QUEUE_H

#include <deque>

#include "core/hwgc_config.h"
#include "mem/port.h"
#include "sim/clocked.h"
#include "sim/stats.h"

namespace hwgc::core
{

/** The spilling mark queue. */
class MarkQueue : public Clocked, public mem::MemResponder
{
  public:
    /**
     * @param port Memory port for spill traffic (physical addresses).
     * @param spill_base Base of the spill region (physical).
     * @param spill_bytes Capacity of the spill region.
     */
    MarkQueue(std::string name, const HwgcConfig &config,
              mem::MemPort *port, Addr spill_base,
              std::uint64_t spill_bytes);

    /** True if a reference can be accepted this cycle. */
    bool canEnqueue() const;

    /** Enqueues a reference (Q if space, else outQ). */
    void enqueue(Addr ref);

    /**
     * Registers the dequeuing component (the marker). Its cached
     * wakeup is poked whenever entries become dequeueable outside the
     * kernel's view: on enqueue() (called from the producers' ticks)
     * and when a spill read refills inQ (a response callback).
     */
    void setConsumer(const Clocked *consumer) { consumer_ = consumer; }

    /** True if a reference is available (Q, then inQ). */
    bool canDequeue() const;

    /** Dequeues the next reference. */
    Addr dequeue();

    /** Tracer back-pressure signal (outQ past its threshold). */
    bool throttle() const;

    /** True when no entry exists anywhere (incl. spill in flight). */
    bool empty() const;

    /** Total entries currently queued anywhere. */
    std::uint64_t depth() const;

    // MemResponder interface (spill read/write completions).
    void onResponse(const mem::MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override;
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** Drops all state between GC phases. */
    void reset();

    /**
     * Retargets the spill region (fleet time-multiplexing across
     * tenant heaps). Only legal while the queue is empty with no
     * spill traffic in flight — part of the §VII context switch.
     */
    void
    setSpillRegion(Addr spill_base, std::uint64_t spill_bytes)
    {
        panic_if(!empty() || writeInFlight_ || readInFlight_,
                 "mark queue retargeted while non-empty");
        spillBase_ = spill_base;
        spillCapacityEntries_ = spill_bytes / entryBytes();
    }

    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t spillWriteRequests() const { return spillWrites_.value(); }
    std::uint64_t spillReadRequests() const { return spillReads_.value(); }
    std::uint64_t entriesSpilled() const { return entriesSpilled_.value(); }
    std::uint64_t maxDepth() const { return maxDepth_.value(); }
    std::uint64_t peakSpillBytes() const { return peakSpill_.value(); }
    /** @} */

    /** Registers the queue's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&spillWrites_);
        g.add(&spillReads_);
        g.add(&entriesSpilled_);
        g.add(&maxDepth_);
        g.add(&peakSpill_);
    }

  private:
    /** Bytes per packed reference in the queue and spill region. */
    unsigned entryBytes() const { return config_.compressRefs ? 4 : 8; }

    /** Entries per 64-byte spill granule. */
    unsigned granuleEntries() const { return lineBytes / entryBytes(); }

    Word pack(Addr ref) const;
    Addr unpack(Word packed) const;

    void noteDepth();

    HwgcConfig config_;
    mem::MemPort *port_;
    const Clocked *consumer_ = nullptr;
    Addr spillBase_;
    std::uint64_t spillCapacityEntries_;

    std::deque<Word> q_;    //!< Main on-chip queue (packed refs).
    std::deque<Word> outQ_; //!< Spill-out staging.
    std::deque<Word> inQ_;  //!< Spill-in staging.

    std::uint64_t spillHead_ = 0; //!< Read cursor (entries).
    std::uint64_t spillTail_ = 0; //!< Write cursor (entries).
    bool writeInFlight_ = false;
    bool readInFlight_ = false;

    stats::Scalar spillWrites_{"spillWrites"};
    stats::Scalar spillReads_{"spillReads"};
    stats::Scalar entriesSpilled_{"entriesSpilled"};
    stats::Scalar maxDepth_{"maxDepth"};
    stats::Scalar peakSpill_{"peakSpillBytes"};
};

} // namespace hwgc::core

#endif // HWGC_CORE_MARK_QUEUE_H
