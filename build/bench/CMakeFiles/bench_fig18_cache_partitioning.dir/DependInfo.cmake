
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_cache_partitioning.cc" "bench/CMakeFiles/bench_fig18_cache_partitioning.dir/bench_fig18_cache_partitioning.cc.o" "gcc" "bench/CMakeFiles/bench_fig18_cache_partitioning.dir/bench_fig18_cache_partitioning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/hwgc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hwgc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/hwgc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hwgc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hwgc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hwgc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hwgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hwgc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hwgc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
