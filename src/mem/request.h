/**
 * @file
 * Memory request/response messages exchanged over the TileLink-like
 * interconnect.
 *
 * Transfers are 8..64 bytes, naturally aligned, matching the paper's
 * description of the RocketChip system bus ("Our interconnect supports
 * transfer sizes from 8 to 64B, but they have to be aligned").
 * FetchOr models the atomic fetch-or the marker uses to set the mark
 * bit and read back the status word in a single memory operation.
 */

#ifndef HWGC_MEM_REQUEST_H
#define HWGC_MEM_REQUEST_H

#include <array>
#include <cstdint>

#include "sim/checkpoint.h"
#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc::mem
{

/** Operation carried by a memory request. */
enum class Op : std::uint8_t
{
    Read,     //!< Get: returns size bytes.
    Write,    //!< Put: writes size bytes.
    FetchOr,  //!< 8-byte atomic fetch-or; returns the old word.
};

/** Maximum words per transfer (64 B line / 8 B words). */
constexpr unsigned maxReqWords = lineBytes / wordBytes;

/** Validates a TileLink-like size/alignment combination. */
inline bool
validTransfer(Addr addr, unsigned size)
{
    return (size == 8 || size == 16 || size == 32 || size == 64) &&
        (addr % size) == 0;
}

/**
 * A request message. Write data (and fetch-or operand) travels with
 * the request; responses carry read data. `client` identifies the
 * issuing port on the interconnect, `tag` is opaque to everything but
 * the issuer.
 */
struct MemRequest
{
    Addr paddr = 0;
    unsigned size = 8;
    Op op = Op::Read;
    unsigned client = 0;
    std::uint64_t tag = 0;

    /**
     * Timing-only requests (cache line fills and write-backs issued by
     * tags-only cache models) move bytes for timing purposes but are
     * not executed functionally — the issuing cache performs the
     * functional access against PhysMem itself, exactly once.
     */
    bool timingOnly = false;

    std::array<Word, maxReqWords> wdata{};

    unsigned words() const { return size / wordBytes; }
    bool isWrite() const { return op == Op::Write; }
};

/** A response message; `rdata` is valid for Read and FetchOr. */
struct MemResponse
{
    MemRequest req;
    std::array<Word, maxReqWords> rdata{};
    Tick completed = 0;
};

/** @name Checkpoint serialization of request/response messages @{ */

inline void
saveRequest(checkpoint::Serializer &ser, const MemRequest &req)
{
    ser.putU64(req.paddr);
    ser.putU64(req.size);
    ser.putU64(std::uint64_t(req.op));
    ser.putU64(req.client);
    ser.putU64(req.tag);
    ser.putBool(req.timingOnly);
    for (const Word w : req.wdata) {
        ser.putU64(w);
    }
}

inline MemRequest
restoreRequest(checkpoint::Deserializer &des)
{
    MemRequest req;
    req.paddr = des.getU64();
    req.size = unsigned(des.getU64());
    req.op = Op(des.getU64());
    req.client = unsigned(des.getU64());
    req.tag = des.getU64();
    req.timingOnly = des.getBool();
    for (auto &w : req.wdata) {
        w = des.getU64();
    }
    return req;
}

inline void
saveResponse(checkpoint::Serializer &ser, const MemResponse &resp)
{
    saveRequest(ser, resp.req);
    for (const Word w : resp.rdata) {
        ser.putU64(w);
    }
    ser.putU64(resp.completed);
}

inline MemResponse
restoreResponse(checkpoint::Deserializer &des)
{
    MemResponse resp;
    resp.req = restoreRequest(des);
    for (auto &w : resp.rdata) {
        w = des.getU64();
    }
    resp.completed = des.getU64();
    return resp;
}

/** @} */

/** Receiver interface for responses coming back from the memory side. */
class MemResponder
{
  public:
    virtual ~MemResponder() = default;

    /** Delivers one completed response at time @p now. */
    virtual void onResponse(const MemResponse &resp, Tick now) = 0;
};

} // namespace hwgc::mem

#endif // HWGC_MEM_REQUEST_H
