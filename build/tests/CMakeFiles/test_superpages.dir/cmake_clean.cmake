file(REMOVE_RECURSE
  "CMakeFiles/test_superpages.dir/test_superpages.cc.o"
  "CMakeFiles/test_superpages.dir/test_superpages.cc.o.d"
  "test_superpages"
  "test_superpages.pdb"
  "test_superpages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_superpages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
