/**
 * @file
 * Worker pool and static partition schedule for the ParallelBsp
 * kernel (see clocked.h for the mode overview and DESIGN.md §8 for
 * the determinism argument).
 *
 * The kernel follows the bulk-synchronous shape of partitioned RTL
 * simulators (Manticore, GSIM): components are statically assigned to
 * partitions, each executed simulated cycle runs a parallel
 * *evaluate* phase in which every dispatched partition replays the
 * event kernel's at-turn pass over its own components against
 * last-cycle cross-partition state, and a serial *commit* phase
 * drains the staged inter-partition traffic in registration order.
 * Because the partition→work mapping is static, per-boundary FIFOs
 * preserve order, the commit runs in a fixed order on one thread,
 * and worker-local poke masks merge by a commutative OR over a fixed
 * partition set, the simulated results are bit-identical to the
 * dense and event kernels for any worker count and any scheduling.
 */

#ifndef HWGC_SIM_PARALLEL_KERNEL_H
#define HWGC_SIM_PARALLEL_KERNEL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/clocked.h"
#include "sim/types.h"

namespace hwgc
{

/**
 * Owns the worker threads and the partition schedule of a System in
 * ParallelBsp mode. Built lazily by System::executeCycleBsp() on the
 * first executed cycle (so all setPartition()/setHostThreads() calls
 * made during wiring are seen), destroyed with the System.
 */
class ParallelKernel
{
    friend class System;

  public:
    explicit ParallelKernel(System &sys);
    ~ParallelKernel();

    ParallelKernel(const ParallelKernel &) = delete;
    ParallelKernel &operator=(const ParallelKernel &) = delete;

    /** Distinct partitions after label normalisation. */
    unsigned numPartitions() const
    {
        return unsigned(partComps_.size());
    }

    /** Worker threads actually used (main thread included). */
    unsigned numWorkers() const { return numWorkers_; }

  private:
    /**
     * Evaluate-phase result of one partition for one cycle. Padded to
     * a cache line: adjacent partitions are written by different
     * workers every executed cycle.
     */
    struct alignas(64) Pass
    {
        std::uint64_t ticked = 0;   //!< Members that ticked.
        std::uint64_t newDirty = 0; //!< Pokes + successor invalidations.
        Tick next = maxTick; //!< Min wakeup among non-due members.
        std::uint64_t stagedEvents = 0; //!< Cross-partition hand-offs
                                        //!< staged during the pass.
    };

    /**
     * One worker thread's mailbox. The commit thread publishes a
     * partition mask in @c work and bumps @c req; the worker runs the
     * partitions and echoes the generation into @c ack. Sleeping
     * workers park on the condition variable after a bounded spin;
     * the seq_cst @c sleeping flag is the Dekker handshake that makes
     * the notify impossible to lose.
     */
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> req{0};
        std::atomic<std::uint64_t> ack{0};
        std::atomic<bool> sleeping{false};
        std::uint64_t work = 0; //!< Partition mask; written before req.
        std::mutex m;
        std::condition_variable cv;
        std::thread thread;
    };

    /**
     * Runs the evaluate phase for the partitions in @p dispatch
     * (a mask of partition indices): remote workers are signalled,
     * the calling thread runs worker slot 0's share inline, and the
     * call returns once every dispatched partition's Pass is stored.
     * With one dispatched partition (or one worker) everything runs
     * inline and no signalling happens at all.
     */
    void evaluate(std::uint64_t dispatch);

    /** The event kernel's at-turn pass over one partition. */
    Pass runPartition(unsigned p);

    /**
     * Reassigns partitions to workers by a greedy LPT bin-pack over
     * @p busy_per_component (indexed by registration order): the
     * heaviest partition goes to the least-loaded worker, ties broken
     * by partition index so the schedule is deterministic. Host-only;
     * see System::rebalancePartitionWorkers.
     */
    void rebalance(const std::vector<std::uint64_t> &busy_per_component);

    void workerLoop(unsigned slot);
    void signal(Slot &s);
    void awaitAck(Slot &s);

    System &sys_;
    unsigned numWorkers_ = 1;
    std::atomic<bool> stop_{false};

    /** Busy-wait iterations spent in a PAUSE hint before yielding the
     *  core, and total iterations before a worker parks on its
     *  condition variable. Both collapse to near zero when the pool
     *  is oversubscribed (workers ≥ host cores): spinning there only
     *  steals the core the partner needs. */
    unsigned pauseIters_ = 512;
    unsigned parkAfter_ = 1 << 16;

    /** Registration-order component indices per partition. */
    std::vector<std::vector<std::size_t>> partComps_;
    /** Component bitmask per partition. */
    std::vector<std::uint64_t> partMask_;
    /** Worker slot evaluating each partition (default p mod workers;
     *  rewritten by the cost-model rebalance). */
    std::vector<unsigned> partWorker_;

    /** Per-partition evaluate inputs, seeded by the commit thread. */
    std::vector<std::uint64_t> dueLocal_;
    std::vector<std::uint64_t> dirtyLocal_;
    /** Per-partition evaluate outputs. */
    std::vector<Pass> pass_;

    /** Scratch: partition mask assigned to each worker this round. */
    std::vector<std::uint64_t> workerWork_;

    /** Slot 0 is the calling thread and never starts a std::thread. */
    std::vector<std::unique_ptr<Slot>> slots_;
};

} // namespace hwgc

#endif // HWGC_SIM_PARALLEL_KERNEL_H
