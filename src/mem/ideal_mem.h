/**
 * @file
 * The latency-bandwidth pipe memory model of paper §VI-A ("Potential
 * Performance"): a fixed access latency (1 cycle in the paper) and a
 * shared data bus with a configurable byte/cycle bandwidth (8 GB/s =
 * 8 bytes per 1 GHz cycle). Small requests occupy the bus only for
 * their own size, which is why the unit can exceed the 64B-granule
 * request rate ("one request every 8.66 cycles") while consuming less
 * data bandwidth.
 */

#ifndef HWGC_MEM_IDEAL_MEM_H
#define HWGC_MEM_IDEAL_MEM_H

#include <queue>

#include "mem/mem_device.h"
#include "mem/phys_mem.h"
#include "sim/spsc_ring.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** Configuration of the ideal pipe. */
struct IdealMemParams
{
    Tick latency = 1;              //!< Fixed access latency (cycles).
    double busBytesPerCycle = 8.0; //!< 8 GB/s at 1 GHz.
    unsigned maxInFlight = 256;    //!< Generous request window.
    Tick bandwidthBucket = 10000;  //!< Fig 16-style trace bucket.

    /**
     * Channel occupancy per message beyond the data beats. The
     * paper's port sustained ~one request per 8.66 cycles even for
     * sub-line requests — TileLink messages cost header beats, not
     * just data beats.
     */
    Tick perRequestOverhead = 2;
};

/** Fixed-latency, bandwidth-limited memory device. */
class IdealMem : public MemDevice
{
  public:
    IdealMem(std::string name, const IdealMemParams &params,
             PhysMem &mem);

    bool canAccept(const MemRequest &req) const override;
    bool canAcceptBsp(const MemRequest &req, unsigned pendingReads,
                      unsigned pendingWrites) const override;
    void sendRequest(const MemRequest &req, Tick now) override;
    Tick accessAtomic(const MemRequest &req, Tick now,
                      std::array<Word, maxReqWords> &rdata) override;
    void resetStats() override;
    void resetTimingState() override { busFreeAt_ = 0; }

    void tick(Tick now) override;
    bool busy() const override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** ParallelBsp: applies deliveries staged by this cycle's tick
     *  (same scheme as Dram::bspCommit, see there). */
    void bspCommit(Tick now) override;

    Tick
    nextWakeup(Tick) const override
    {
        return completions_.empty() ? maxTick : completions_.top().at;
    }

    /**
     * The pipe is the endpoint of the memory system: any in-flight
     * access means it is doing its job, so the default (which would
     * report latency waits as upstream starvation) does not apply.
     */
    CycleClass
    cycleClass(Tick) const override
    {
        return busy() ? CycleClass::Busy : CycleClass::Idle;
    }

    /** @name Statistics @{ */
    const stats::Scalar &numRequests() const { return numRequests_; }
    const stats::Scalar &bytesMoved() const { return bytesMoved_; }
    const stats::TimeSeries &bandwidth() const { return bandwidth_; }
    /** @} */

    void
    addStats(stats::Group &g) override
    {
        g.add(&numRequests_);
        g.add(&bytesMoved_);
        g.add(&bandwidth_);
    }

  private:
    struct Completion
    {
        Tick at;
        MemRequest req;
        bool operator>(const Completion &o) const { return at > o.at; }
    };

    Tick serviceAccess(const MemRequest &req, Tick now);

    IdealMemParams params_;
    PhysMem &mem_;
    Tick busFreeAt_ = 0;
    unsigned inFlight_ = 0;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> completions_;

    /** Completions retired during a ParallelBsp evaluate tick. SPSC:
     *  the worker ticking the pipe produces, the commit thread
     *  consumes after the join; sized to the in-flight window. */
    SpscRing<MemRequest> stagedDeliveries_;

    stats::Scalar numRequests_{"numRequests"};
    stats::Scalar bytesMoved_{"bytesMoved"};
    stats::TimeSeries bandwidth_;
};

} // namespace hwgc::mem

#endif // HWGC_MEM_IDEAL_MEM_H
