# Empty dependencies file for hwgc_model.
# This may be replaced when dependencies are built.
