/**
 * @file
 * Heap invariant checker implementation.
 */

#include "verifier.h"

#include <sstream>
#include <unordered_set>

#include "runtime/block_table.h"
#include "runtime/object_model.h"

namespace hwgc::gc
{

using runtime::BlockTableEntry;
using runtime::CellStart;
using runtime::ObjectModel;
using runtime::StatusWord;

namespace
{

VerifyReport
fail(std::string message)
{
    VerifyReport report;
    report.ok = false;
    report.error = std::move(message);
    return report;
}

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << std::hex << "0x" << a;
    return os.str();
}

} // namespace

VerifyReport
verifyMarks(const runtime::Heap &heap)
{
    VerifyReport report;
    const auto reachable = heap.computeReachable();
    auto &mem = const_cast<runtime::Heap &>(heap);
    for (const auto &obj : heap.objects()) {
        const bool marked = StatusWord::marked(mem.read(obj.ref));
        const bool should = reachable.count(obj.ref) != 0;
        if (marked != should) {
            return fail("object " + hex(obj.ref) + (should
                        ? " reachable but unmarked"
                        : " unreachable but marked"));
        }
        ++report.checked;
    }
    return report;
}

std::uint64_t
markSetDigest(const runtime::Heap &heap)
{
    // XOR of splitmix64-mixed refs: order-independent, and a single
    // flipped mark bit flips ~32 digest bits.
    std::uint64_t digest = 0;
    auto &mem = const_cast<runtime::Heap &>(heap);
    for (const auto &obj : heap.objects()) {
        if (!StatusWord::marked(mem.read(obj.ref))) {
            continue;
        }
        std::uint64_t z = obj.ref + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        digest ^= z ^ (z >> 31);
    }
    return digest;
}

VerifyReport
diffMarks(const runtime::Heap &heap, const runtime::Heap &other)
{
    VerifyReport report;
    auto &a = const_cast<runtime::Heap &>(heap);
    auto &b = const_cast<runtime::Heap &>(other);
    std::unordered_set<runtime::ObjRef> b_marked;
    for (const auto &obj : other.objects()) {
        if (StatusWord::marked(b.read(obj.ref))) {
            b_marked.insert(obj.ref);
        }
    }
    for (const auto &obj : heap.objects()) {
        const bool here = StatusWord::marked(a.read(obj.ref));
        const bool there = b_marked.count(obj.ref) != 0;
        if (here != there) {
            return fail("object " + hex(obj.ref) +
                        (here ? " marked here but not in the other heap"
                              : " marked in the other heap but not here"));
        }
        ++report.checked;
    }
    return report;
}

VerifyReport
verifyFreeLists(const runtime::Heap &heap)
{
    VerifyReport report;
    auto &mem = const_cast<runtime::Heap &>(heap);
    const Addr table = heap.blockTableBase();
    for (std::size_t b = 0; b < heap.blocks().size(); ++b) {
        const auto &info = heap.blocks()[b];
        const Addr entry = BlockTableEntry::addr(table, b);
        const std::uint64_t cells = runtime::blockBytes / info.cellBytes;
        Addr cursor = mem.read(entry + 2 * wordBytes);
        std::uint64_t length = 0;
        while (cursor != runtime::nullRef) {
            if (cursor < info.base ||
                cursor >= info.base + runtime::blockBytes) {
                return fail("free link " + hex(cursor) +
                            " escapes block " + hex(info.base));
            }
            if ((cursor - info.base) % info.cellBytes != 0) {
                return fail("free link " + hex(cursor) +
                            " not on a cell boundary");
            }
            const Word w0 = mem.read(cursor);
            if (CellStart::isLive(w0)) {
                return fail("live cell " + hex(cursor) +
                            " on a free list");
            }
            if (++length > cells) {
                return fail("free list of block " + hex(info.base) +
                            " cycles");
            }
            cursor = CellStart::nextFree(w0);
        }
        ++report.checked;
    }
    return report;
}

VerifyReport
verifySweptHeap(const runtime::Heap &heap)
{
    VerifyReport lists = verifyFreeLists(heap);
    if (!lists.ok) {
        return lists;
    }

    VerifyReport report;
    auto &mem = const_cast<runtime::Heap &>(heap);
    const Addr table = heap.blockTableBase();
    for (std::size_t b = 0; b < heap.blocks().size(); ++b) {
        const auto &info = heap.blocks()[b];
        const Addr entry = BlockTableEntry::addr(table, b);
        const std::uint64_t cells = runtime::blockBytes / info.cellBytes;

        // Gather the free set.
        std::unordered_set<Addr> free_cells;
        Addr cursor = mem.read(entry + 2 * wordBytes);
        while (cursor != runtime::nullRef) {
            free_cells.insert(cursor);
            cursor = CellStart::nextFree(mem.read(cursor));
        }

        bool has_live = false;
        for (std::uint64_t c = 0; c < cells; ++c) {
            const Addr cell = info.base + c * info.cellBytes;
            const Word w0 = mem.read(cell);
            if (CellStart::isLive(w0)) {
                const std::uint32_t n = CellStart::numRefs(w0);
                const Word hdr =
                    mem.read(ObjectModel::refFromCell(cell, n));
                if (!StatusWord::marked(hdr)) {
                    return fail("unmarked live cell " + hex(cell) +
                                " survived the sweep");
                }
                has_live = true;
            } else if (free_cells.count(cell) == 0) {
                return fail("free cell " + hex(cell) +
                            " missing from its free list");
            }
            ++report.checked;
        }

        const Word summary = mem.read(entry + 3 * wordBytes);
        if (BlockTableEntry::freeCells(summary) != free_cells.size()) {
            return fail("block " + hex(info.base) +
                        " summary free-count mismatch");
        }
        if (BlockTableEntry::hasLive(summary) != has_live) {
            return fail("block " + hex(info.base) +
                        " summary has-live mismatch");
        }
    }
    return report;
}

} // namespace hwgc::gc
