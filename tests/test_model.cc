/**
 * @file
 * Tests for the area and power/energy models (Fig 22 / Fig 23).
 */

#include <gtest/gtest.h>

#include "model/area.h"
#include "model/power.h"

namespace hwgc::model
{
namespace
{

TEST(Area, RocketBreakdownShape)
{
    AreaModel model;
    const auto rocket = model.rocketArea();
    ASSERT_EQ(rocket.parts.size(), 4u);
    // Fig 22b: the 256 KiB L2 dominates the core.
    EXPECT_GT(rocket.part("L2 Cache"), rocket.part("L1 DCache"));
    EXPECT_GT(rocket.part("L2 Cache"), rocket.part("Frontend"));
    for (const auto &[name, mm2] : rocket.parts) {
        EXPECT_GT(mm2, 0.0) << name;
    }
}

TEST(Area, HeadlineRatio)
{
    // Paper §VI-C: "our GC unit is 18.5% the size of the CPU".
    AreaModel model;
    const double ratio = model.ratio(core::HwgcConfig{});
    EXPECT_GT(ratio, 0.13);
    EXPECT_LT(ratio, 0.24);
}

TEST(Area, SramEquivalent)
{
    // "comparable to the area of 64KB of SRAM".
    AreaModel model;
    const double kib = model.sramEquivalentKiB(core::HwgcConfig{});
    EXPECT_GT(kib, 40.0);
    EXPECT_LT(kib, 110.0);
}

TEST(Area, MarkQueueDominatesTheUnit)
{
    // Fig 22c: "most of which is taken by the mark queue".
    AreaModel model;
    const auto unit = model.hwgcArea(core::HwgcConfig{});
    const double mq = unit.part("Mark Q.");
    for (const auto &[name, mm2] : unit.parts) {
        if (name != "Mark Q.") {
            EXPECT_GT(mq, mm2) << name;
        }
    }
}

TEST(Area, ScalesWithMarkQueueSize)
{
    AreaModel model;
    core::HwgcConfig small;
    small.markQueueEntries = 256;
    core::HwgcConfig big;
    big.markQueueEntries = 16384; // The Fig 19 "130 KB" point.
    EXPECT_GT(model.hwgcArea(big).part("Mark Q."),
              4.0 * model.hwgcArea(small).part("Mark Q."));
}

TEST(Area, ScalesWithSweepers)
{
    AreaModel model;
    core::HwgcConfig two;
    core::HwgcConfig eight;
    eight.numSweepers = 8;
    EXPECT_GT(model.hwgcArea(eight).part("Sweeper"),
              3.0 * model.hwgcArea(two).part("Sweeper"));
}

TEST(Area, MarkBitCacheAddsMarkerArea)
{
    AreaModel model;
    core::HwgcConfig without;
    core::HwgcConfig with;
    with.markBitCacheEntries = 256;
    EXPECT_GT(model.hwgcArea(with).part("Marker"),
              model.hwgcArea(without).part("Marker"));
}

TEST(AreaDeathTest, UnknownPartExits)
{
    AreaModel model;
    const auto rocket = model.rocketArea();
    EXPECT_EXIT((void)rocket.part("Caboose"),
                testing::ExitedWithCode(1), "no area part");
}

DramActivity
activity(std::uint64_t bytes, Tick cycles)
{
    DramActivity a;
    a.bytes = bytes;
    a.reads = bytes / 64;
    a.writes = bytes / 640;
    a.activates = bytes / 128;
    a.cycles = cycles;
    return a;
}

TEST(Power, DramPowerGrowsWithBandwidth)
{
    PowerModel model;
    const double low = model.dramPowerMw(activity(1 << 20, 10'000'000));
    const double high = model.dramPowerMw(activity(32 << 20, 10'000'000));
    EXPECT_GT(high, low);
    EXPECT_GE(low, model.params().dramBackgroundMw);
}

TEST(Power, IdleIntervalIsBackgroundOnly)
{
    PowerModel model;
    EXPECT_DOUBLE_EQ(model.dramPowerMw(DramActivity{}),
                     PowerParams{}.dramBackgroundMw);
}

TEST(Power, UnitPowerBelowRocketPower)
{
    PowerModel model;
    EXPECT_LT(model.unitPowerMw(core::HwgcConfig{}),
              model.params().rocketCoreMw);
}

TEST(Power, Fig23Shape)
{
    // The unit finishes the same job in ~1/3 the time while moving
    // the same bytes: its DRAM *power* is higher but total *energy*
    // lower (paper: 14.5% better overall).
    PowerModel model;
    const std::uint64_t bytes = 100 << 20;
    const DramActivity cpu_act = activity(bytes, 300'000'000);
    const DramActivity hw_act = activity(bytes, 100'000'000);
    const EnergyReport cpu = model.cpuEnergy(cpu_act);
    const EnergyReport hw = model.hwgcEnergy(hw_act,
                                             core::HwgcConfig{});
    EXPECT_GT(hw.dramPowerMw, cpu.dramPowerMw);
    EXPECT_LT(hw.energyMj(), cpu.energyMj());
}

TEST(Power, EnergyScalesWithTime)
{
    PowerModel model;
    const EnergyReport brief = model.cpuEnergy(activity(1 << 20,
                                                        1'000'000));
    const EnergyReport lengthy = model.cpuEnergy(activity(1 << 20,
                                                          10'000'000));
    EXPECT_GT(lengthy.energyMj(), brief.energyMj());
}

} // namespace
} // namespace hwgc::model
