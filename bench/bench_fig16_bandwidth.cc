/**
 * @file
 * Fig 16 — memory bandwidth over time during the last GC pause of
 * avrora, CPU vs GC unit, based on 64B-line-equivalent traffic.
 *
 * The paper: "our unit is more effective at exploiting memory
 * bandwidth, particularly during the mark phase".
 *
 * The second half sweeps the unit's bus bandwidth cap downwards and
 * checks the cycle-accounting profiler's attribution against the
 * paper's narrative: as bandwidth shrinks, the top mark-phase stall
 * cause must become DRAM bandwidth (the sweep exits nonzero if it
 * does not — the attribution is deterministic).
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 16: memory bandwidth, last avrora GC pause",
                  "the unit sustains much higher DRAM bandwidth");

    // Profile all runs: observational, so the bandwidth series and
    // cycle counts below are unchanged by it.
    telemetry::options().profile = true;
    bench::BenchRecord record("fig16_bandwidth");
    bench::HostTimer suite_timer;

    const auto profile = workload::dacapoProfile("avrora");
    driver::GcLab lab(profile);
    lab.run(); // Stats reset per pause: series hold the last pause.

    const auto &sw_series = lab.cpuDram()->bandwidth();
    const auto &hw_series = lab.device().dram()->bandwidth();
    const double bucket_us = double(sw_series.bucketWidth()) / 1000.0;

    auto print_series = [bucket_us](const char *name,
                                    const stats::TimeSeries &series) {
        std::printf("\n  %s (GB/s per %.0f us bucket):\n", name,
                    bucket_us);
        // The series is indexed by absolute simulated time; trim the
        // leading/trailing idle so the pause itself is displayed.
        const auto &buckets = series.buckets();
        std::size_t first = 0, last = buckets.size();
        while (first < buckets.size() && buckets[first] == 0) {
            ++first;
        }
        while (last > first && buckets[last - 1] == 0) {
            --last;
        }
        double peak = 0.0, total_bytes = 0.0;
        for (std::size_t i = first; i < last; ++i) {
            const double gbps =
                double(buckets[i]) / double(series.bucketWidth());
            peak = std::max(peak, gbps);
            total_bytes += double(buckets[i]);
            if (i - first < 40) { // First 40 buckets of the pause.
                std::printf("  %8.1f us %8.3f GB/s |%s\n",
                            double(i - first) * bucket_us, gbps,
                            std::string(unsigned(gbps * 12), '#')
                                .c_str());
            }
        }
        const double span =
            double(last - first) * double(series.bucketWidth());
        std::printf("  ... %zu active buckets; avg %.3f GB/s, peak "
                    "%.3f GB/s\n",
                    last - first, span > 0 ? total_bytes / span : 0.0,
                    peak);
    };

    print_series("Rocket CPU", sw_series);
    print_series("GC Unit", hw_series);

    const auto &last = lab.results().back();
    std::printf("\n  pause durations: CPU %.3f ms, unit %.3f ms\n",
                bench::msFromCycles(
                    double(last.swMarkCycles + last.swSweepCycles)),
                bench::msFromCycles(
                    double(last.hwMarkCycles + last.hwSweepCycles)));

    record.metric("hw_mark_cycles", std::uint64_t(last.hwMarkCycles));
    record.metric("hw_sweep_cycles", std::uint64_t(last.hwSweepCycles));
    record.metric("hw_dram_bytes", last.hw.dramBytes);
    record.addAttribution(*lab.device().profiler());

    // Bandwidth sweep: cap the unit's bus (1 B/cycle = 1 GB/s at the
    // 1 GHz clock) and watch the attribution follow the bottleneck.
    std::printf("\n  bandwidth sweep (mark-phase top stall cause):\n");
    std::printf("  %-12s %12s %20s\n", "cap (GB/s)", "mark",
                "top stall cause");
    bool low_end_is_dram = false;
    double lowest_cap = 0.0;
    for (const double cap : {0.0, 4.0, 1.0, 0.25}) {
        driver::LabConfig sweep_config;
        sweep_config.runSw = false;
        sweep_config.hwgc.bus.throttleBytesPerCycle = cap;
        driver::GcLab sweep_lab(profile, sweep_config);
        sweep_lab.run(2);
        const telemetry::CycleProfiler &prof =
            *sweep_lab.device().profiler();
        const CycleClass top = prof.topStallClass("mark");
        if (cap == 0.0) {
            std::printf("  %-12s", "unlimited");
        } else {
            std::printf("  %-12.2f", cap);
        }
        std::printf(" %9.3f ms %20s\n",
                    bench::msFromCycles(sweep_lab.avgHwMarkCycles()),
                    cycleClassName(top));
        char key[48];
        std::snprintf(key, sizeof key, "sweep.cap_%g.mark_cycles", cap);
        std::uint64_t mark_total = 0;
        for (const auto &pause : sweep_lab.results()) {
            mark_total += pause.hwMarkCycles;
        }
        record.metric(key, mark_total);
        if (cap != 0.0 && (lowest_cap == 0.0 || cap < lowest_cap)) {
            lowest_cap = cap;
            low_end_is_dram = top == CycleClass::StallDram;
        }
    }
    if (!low_end_is_dram) {
        std::fprintf(stderr,
                     "FAIL: at the %.2f GB/s cap the top mark-phase "
                     "stall cause is not DRAM bandwidth\n", lowest_cap);
        return 1;
    }
    std::printf("  (low-bandwidth end correctly attributes the mark "
                "phase to DRAM-bandwidth stalls)\n");

    record.write(suite_timer.seconds());

    session.meta().kernel =
        lab.device().config().kernel == KernelMode::Event ? "event"
                                                          : "dense";
    session.meta().config = "dacapo:avrora";
    session.meta().simCycles = lab.device().system().now();
    session.finish(); // Export while the lab is still alive.
    return 0;
}
