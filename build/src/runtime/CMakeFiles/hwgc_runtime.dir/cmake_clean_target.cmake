file(REMOVE_RECURSE
  "libhwgc_runtime.a"
)
