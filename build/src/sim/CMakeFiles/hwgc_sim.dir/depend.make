# Empty dependencies file for hwgc_sim.
# This may be replaced when dependencies are built.
