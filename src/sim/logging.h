/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform, plus
 * cheap compile-out-able debug tracing guarded by named debug flags.
 *
 * Semantics follow the gem5 coding style document:
 *  - panic():  an internal simulator bug; aborts.
 *  - fatal():  a user/configuration error; exits cleanly with code 1.
 *  - warn():   functionality that may be incorrect but continues.
 *  - inform(): neutral status output.
 */

#ifndef HWGC_SIM_LOGGING_H
#define HWGC_SIM_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <string>

namespace hwgc
{

/** Terminates the process after reporting an internal simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Terminates the process after reporting a user/configuration error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Registers a hook invoked after the error message is printed but
 * before the process terminates, on any panic() or fatal(). Used by
 * the checkpoint layer to write an automatic crash dump for
 * post-mortem inspection. Any number of hooks may be registered (one
 * per armed device in a fleet); all of them run, most recent first.
 * Each hook is removed from the registry before it is invoked, so a
 * failure *inside* a hook cannot recurse into it — the remaining
 * hooks still run for their own sessions.
 * @return An id to pass to removeCrashHook().
 */
unsigned addCrashHook(void (*hook)(void *ctx), void *ctx);

/** Unregisters a hook by the id addCrashHook() returned (no-op if it
 *  already ran or was removed). */
void removeCrashHook(unsigned id);

/**
 * Legacy single-hook interface: installs @p hook as the only
 * registered hook (clearing all others); nullptr uninstalls all.
 */
void setCrashHook(void (*hook)(void *ctx), void *ctx);

/** Prints a warning; the simulation continues. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Prints a neutral status message. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Debug-trace control. Flags are registered lazily by name; tracing is
 * globally off by default so the hot path is a single branch.
 */
class Debug
{
  public:
    /** Enables tracing for a named flag (e.g. "Marker", "DRAM"). */
    static void enable(const std::string &flag);

    /** Disables tracing for a named flag. */
    static void disable(const std::string &flag);

    /** Returns true if the named flag is enabled. */
    static bool enabled(const std::string &flag);

    /**
     * Parses a comma-separated flag list ("Marker,DRAM,-Bus"): a bare
     * name enables the flag, a '-' prefix disables it. This is the
     * HWGC_DEBUG environment-variable syntax, applied automatically at
     * process startup so tracing needs no code edits; callers may also
     * invoke it directly (the --debug-flags= CLI path).
     */
    static void parseFlagList(const std::string &list);

    /** Applies the HWGC_DEBUG environment variable (idempotent). */
    static void initFromEnv();

    /** True if any flag at all is enabled (hot-path guard). */
    static bool anyEnabled() { return anyEnabled_; }

    /** Prints one trace line: "tick: flag: message". */
    static void print(unsigned long long tick, const char *flag,
                      const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

  private:
    static bool anyEnabled_;
};

} // namespace hwgc

#define panic(...) ::hwgc::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::hwgc::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::hwgc::warnImpl(__VA_ARGS__)
#define inform(...) ::hwgc::informImpl(__VA_ARGS__)

/** Asserts an invariant that indicates a simulator bug when violated. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            ::hwgc::panicImpl(__FILE__, __LINE__, __VA_ARGS__);           \
        }                                                                 \
    } while (0)

/** Reports a user error when the condition holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            ::hwgc::fatalImpl(__FILE__, __LINE__, __VA_ARGS__);           \
        }                                                                 \
    } while (0)

/** Cheap guarded trace printf; @p tick is the current cycle. */
#define DPRINTF(tick, flag, ...)                                          \
    do {                                                                  \
        if (::hwgc::Debug::anyEnabled() &&                                \
            ::hwgc::Debug::enabled(flag)) {                               \
            ::hwgc::Debug::print((tick), (flag), __VA_ARGS__);            \
        }                                                                 \
    } while (0)

#endif // HWGC_SIM_LOGGING_H
