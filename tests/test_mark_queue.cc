/**
 * @file
 * Tests for the spilling mark queue (paper Fig 12) including the
 * compression scheme and the partial-granule regression that once
 * deadlocked the traversal.
 */

#include <gtest/gtest.h>

#include "core/mark_queue.h"
#include "mem/ideal_mem.h"
#include "runtime/heap_layout.h"

namespace hwgc::core
{
namespace
{

/** Plumbing: queue -> bus -> ideal memory, manually clocked. */
struct QueueRig
{
    explicit QueueRig(HwgcConfig config)
        : ideal("mem", mem::IdealMemParams{}, mem),
          bus("bus", mem::InterconnectParams{}, ideal),
          port(bus, nullptr, "spill"),
          queue("mq", config, &port, runtime::HeapLayout::spillBase,
                runtime::HeapLayout::spillSize)
    {
        bus.setClientResponder(port.clientId(), &queue);
    }

    void
    run(Tick cycles)
    {
        for (Tick t = 0; t < cycles; ++t) {
            queue.tick(now);
            bus.tick(now);
            ideal.tick(now);
            ++now;
        }
    }

    mem::PhysMem mem;
    mem::IdealMem ideal;
    mem::Interconnect bus;
    mem::BusPort port;
    MarkQueue queue;
    Tick now = 0;
};

HwgcConfig
tinyQueueConfig(bool compress = false)
{
    HwgcConfig config;
    config.markQueueEntries = 16;
    // inQ/outQ must hold one spill granule (8 plain / 16 compressed).
    config.spillQueueEntries = compress ? 16 : 8;
    config.spillThrottle = compress ? 12 : 6;
    config.compressRefs = compress;
    return config;
}

TEST(MarkQueue, FifoWithinOnChipCapacity)
{
    QueueRig rig(tinyQueueConfig());
    for (Addr i = 1; i <= 10; ++i) {
        ASSERT_TRUE(rig.queue.canEnqueue());
        rig.queue.enqueue(i * 8);
    }
    for (Addr i = 1; i <= 10; ++i) {
        ASSERT_TRUE(rig.queue.canDequeue());
        EXPECT_EQ(rig.queue.dequeue(), i * 8);
    }
    EXPECT_TRUE(rig.queue.empty());
}

TEST(MarkQueue, OverflowDivertsToOutQ)
{
    QueueRig rig(tinyQueueConfig());
    for (Addr i = 0; i < 16 + 4; ++i) {
        ASSERT_TRUE(rig.queue.canEnqueue());
        rig.queue.enqueue(0x1000 + i * 8);
    }
    EXPECT_EQ(rig.queue.depth(), 20u);
    EXPECT_FALSE(rig.queue.empty());
}

TEST(MarkQueue, SpillRoundTripPreservesEntries)
{
    QueueRig rig(tinyQueueConfig());
    const unsigned total = 64;
    std::set<Addr> sent;
    unsigned enqueued = 0;
    std::multiset<Addr> received;
    // Interleave producing and ticking so spills flow.
    while (enqueued < total || !rig.queue.empty()) {
        if (enqueued < total && rig.queue.canEnqueue()) {
            const Addr ref = 0x2000 + Addr(enqueued) * 8;
            rig.queue.enqueue(ref);
            sent.insert(ref);
            ++enqueued;
        }
        // Drain slowly to force queue pressure.
        if (rig.now % 7 == 0 && rig.queue.canDequeue()) {
            received.insert(rig.queue.dequeue());
        }
        rig.run(1);
        ASSERT_LT(rig.now, 100000u) << "queue failed to drain";
    }
    EXPECT_EQ(received.size(), sent.size());
    for (const Addr ref : sent) {
        EXPECT_EQ(received.count(ref), 1u) << std::hex << ref;
    }
    EXPECT_GT(rig.queue.spillWriteRequests(), 0u);
    EXPECT_EQ(rig.queue.spillWriteRequests(),
              rig.queue.spillReadRequests());
}

TEST(MarkQueue, PartialGranuleDoesNotDeadlock)
{
    // Regression: entries stranded in outQ (fewer than one granule)
    // while the spill region holds data used to deadlock the queue.
    QueueRig rig(tinyQueueConfig());
    // Fill on-chip queue + enough outQ entries to spill granules,
    // plus a partial remainder.
    unsigned enqueued = 0;
    while (rig.queue.canEnqueue() && enqueued < 16 + 8) {
        rig.queue.enqueue(0x4000 + Addr(enqueued) * 8);
        ++enqueued;
    }
    rig.run(100); // Let the granule spill; a remainder may linger.
    // Now drain everything.
    unsigned drained = 0;
    while (drained < enqueued) {
        if (rig.queue.canDequeue()) {
            rig.queue.dequeue();
            ++drained;
        }
        rig.run(1);
        ASSERT_LT(rig.now, 100000u) << "deadlock draining the queue";
    }
    rig.run(100);
    EXPECT_TRUE(rig.queue.empty());
}

TEST(MarkQueue, CompressionRoundTrips)
{
    QueueRig rig(tinyQueueConfig(true));
    std::vector<Addr> refs;
    for (unsigned i = 0; i < 48; ++i) {
        refs.push_back(0x1000'0000 + Addr(i) * 24);
    }
    std::multiset<Addr> received;
    std::size_t cursor = 0;
    while (cursor < refs.size() || !rig.queue.empty()) {
        if (cursor < refs.size() && rig.queue.canEnqueue()) {
            rig.queue.enqueue(refs[cursor++]);
        }
        if (rig.now % 5 == 0 && rig.queue.canDequeue()) {
            received.insert(rig.queue.dequeue());
        }
        rig.run(1);
        ASSERT_LT(rig.now, 100000u);
    }
    for (const Addr ref : refs) {
        EXPECT_EQ(received.count(ref), 1u) << std::hex << ref;
    }
}

TEST(MarkQueue, CompressionDoublesCapacityAndHalvesSpill)
{
    // Same SRAM budget: compressed queue holds twice the entries
    // before spilling, and each spill granule carries twice as many.
    QueueRig plain(tinyQueueConfig(false));
    QueueRig comp(tinyQueueConfig(true));
    for (unsigned i = 0; i < 64; ++i) {
        const Addr ref = 0x1000'0000 + Addr(i) * 8;
        if (plain.queue.canEnqueue()) {
            plain.queue.enqueue(ref);
        }
        if (comp.queue.canEnqueue()) {
            comp.queue.enqueue(ref);
        }
        plain.run(2);
        comp.run(2);
    }
    plain.run(200);
    comp.run(200);
    EXPECT_LT(comp.queue.spillWriteRequests(),
              plain.queue.spillWriteRequests());
}

TEST(MarkQueue, ThrottleAssertsAtFillLevel)
{
    QueueRig rig(tinyQueueConfig());
    EXPECT_FALSE(rig.queue.throttle());
    // Fill the on-chip queue then outQ past the threshold without
    // ticking (so nothing spills).
    for (unsigned i = 0; i < 16 + 6; ++i) {
        rig.queue.enqueue(0x8000 + Addr(i) * 8);
    }
    EXPECT_TRUE(rig.queue.throttle());
}

TEST(MarkQueue, DepthTracksAllStores)
{
    QueueRig rig(tinyQueueConfig());
    for (unsigned i = 0; i < 20; ++i) {
        rig.queue.enqueue(0x9000 + Addr(i) * 8);
    }
    EXPECT_EQ(rig.queue.depth(), 20u);
    rig.run(50); // Some entries spill to memory; depth is unchanged.
    EXPECT_EQ(rig.queue.depth(), 20u);
    rig.queue.dequeue();
    EXPECT_EQ(rig.queue.depth(), 19u);
    EXPECT_GE(rig.queue.maxDepth(), 20u);
}

TEST(MarkQueue, ResetClearsState)
{
    QueueRig rig(tinyQueueConfig());
    for (unsigned i = 0; i < 10; ++i) {
        rig.queue.enqueue(0xa000 + Addr(i) * 8);
    }
    rig.run(200); // Ensure no spill traffic is in flight.
    rig.queue.reset();
    EXPECT_TRUE(rig.queue.empty());
    EXPECT_FALSE(rig.queue.canDequeue());
}

TEST(MarkQueueDeathTest, CompressingWideAddressPanics)
{
    QueueRig rig(tinyQueueConfig(true));
    EXPECT_DEATH(rig.queue.enqueue(1ULL << 40), "not compressible");
}

TEST(MarkQueueDeathTest, UnderflowPanics)
{
    QueueRig rig(tinyQueueConfig());
    EXPECT_DEATH(rig.queue.dequeue(), "underflow");
}

} // namespace
} // namespace hwgc::core
