/**
 * @file
 * Heap invariant checking shared by tests and the debug tooling.
 *
 * The paper debugged its unit by swapping libhwgc for "a version that
 * performs software checks of the hardware unit" (§V-E); these
 * functions are that checker.
 */

#ifndef HWGC_GC_VERIFIER_H
#define HWGC_GC_VERIFIER_H

#include <string>

#include "runtime/heap.h"

namespace hwgc::gc
{

/** Outcome of one verification pass. */
struct VerifyReport
{
    bool ok = true;
    std::string error;       //!< First violation found (empty if ok).
    std::uint64_t checked = 0;
};

/**
 * Checks that the set of mark bits equals the reachability oracle:
 * every reachable object marked, every unreachable object unmarked.
 */
VerifyReport verifyMarks(const runtime::Heap &heap);

/**
 * Checks free-list well-formedness for every MarkSweep block: links
 * stay inside their block, land on cell boundaries, never point at
 * live cells and never cycle.
 */
VerifyReport verifyFreeLists(const runtime::Heap &heap);

/**
 * Post-sweep invariant: every cell of every block is either a marked
 * live object or on its block's free list, and the block-table
 * summaries match.
 */
VerifyReport verifySweptHeap(const runtime::Heap &heap);

/**
 * Order-independent digest of the marked object set: XOR of a mixed
 * hash of every marked reference. Two heaps that evolved through the
 * same deterministic operation sequence have identical object
 * addresses, so digest equality is mark-set equality; the fuzz differ
 * compares it across kernels and configurations without shipping the
 * full set around.
 */
std::uint64_t markSetDigest(const runtime::Heap &heap);

/**
 * Explains a digest mismatch: compares @p heap's marked set against
 * @p other's and names the first reference marked in exactly one of
 * them. Both heaps must hold the same object population.
 */
VerifyReport diffMarks(const runtime::Heap &heap,
                       const runtime::Heap &other);

} // namespace hwgc::gc

#endif // HWGC_GC_VERIFIER_H
