/**
 * @file
 * Shared formatting and aggregation helpers for the per-figure bench
 * binaries. Every bench prints the rows/series its paper figure
 * reports, in plain text, so EXPERIMENTS.md can quote them directly.
 */

#ifndef HWGC_BENCH_BENCH_UTIL_H
#define HWGC_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/telemetry.h"
#include "sim/types.h"

namespace hwgc::bench
{

/** Milliseconds of simulated time for a cycle count (1 GHz clock). */
inline double
msFromCycles(double cycles)
{
    return cycles / 1e6;
}

/** Geometric mean of a list of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (const double v : values) {
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

/** Prints a banner naming the figure being reproduced. */
inline void
banner(const char *figure, const char *claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", figure);
    std::printf("  paper: %s\n", claim);
    std::printf("==============================================================\n");
}

/** Wall-clock stopwatch for host-side simulation-speed reporting. */
class HostTimer
{
  public:
    HostTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last restart()). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Emits one JSON line of simulation-speed reporting — host wall-clock
 * and simulated-cycles-per-host-second (MIPS-style) — so the perf
 * trajectory (BENCH_*.json) can track kernel speed across PRs.
 * @p host_threads is the worker count the kernel ran with (1 for the
 * single-threaded dense/event kernels).
 */
inline void
printKernelSpeed(const char *bench, const char *kernel,
                 double host_seconds, double sim_cycles,
                 unsigned host_threads = 1)
{
    const double rate =
        host_seconds > 0.0 ? sim_cycles / host_seconds : 0.0;
    // Bench and kernel labels can carry user-supplied text (partition
    // specs, config summaries); escape them so the line stays JSON.
    std::printf("{\"bench\":\"%s\",\"kernel\":\"%s\","
                "\"host_threads\":%u,"
                "\"host_seconds\":%.6f,\"sim_cycles\":%.0f,"
                "\"cycles_per_host_second\":%.0f}\n",
                telemetry::jsonEscape(bench).c_str(),
                telemetry::jsonEscape(kernel).c_str(),
                host_threads, host_seconds, sim_cycles, rate);
}

/**
 * Warmup-reuse hook: if --checkpoint-in=/HWGC_CHECKPOINT_IN names a
 * checkpoint, restores it into @p device and returns true — the
 * caller can then skip re-simulating whatever the checkpoint already
 * covers (warmup pauses, a long mark prefix). Pairs with
 * --checkpoint-out=, which makes the device write a checkpoint after
 * every completed pause (or at --checkpoint-at=<cycle>).
 */
template <typename Device>
inline bool
restoreCheckpointIfRequested(Device &device)
{
    const std::string &path = telemetry::options().checkpointIn;
    if (path.empty()) {
        return false;
    }
    device.restoreCheckpoint(path);
    return true;
}

/** Prints one row of a two-column-per-engine table. */
inline void
row(const std::string &label, double a, double b,
    const char *unit = "ms")
{
    std::printf("  %-10s %10.3f %-4s %10.3f %-4s  (ratio %5.2fx)\n",
                label.c_str(), a, unit, b, unit, b != 0.0 ? a / b : 0.0);
}

} // namespace hwgc::bench

#endif // HWGC_BENCH_BENCH_UTIL_H
