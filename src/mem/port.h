/**
 * @file
 * The request-side port abstraction used by the traversal and
 * reclamation units.
 *
 * A unit sends requests through a MemPort without knowing whether the
 * port leads directly to the system interconnect (the partitioned
 * design of Fig 18b) or into a shared cache (the initial design of
 * Fig 18a). Responses come back through the MemResponder the port was
 * constructed with.
 */

#ifndef HWGC_MEM_PORT_H
#define HWGC_MEM_PORT_H

#include "mem/interconnect.h"
#include "mem/request.h"

namespace hwgc::mem
{

/** A place to send timed memory requests to. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** True if one more request can be sent this cycle. */
    virtual bool canSend(const MemRequest &req) const = 0;

    /** Sends a request; caller must have checked canSend. */
    virtual void send(MemRequest req, Tick now) = 0;
};

/** A port wired directly to an Interconnect client slot. */
class BusPort : public MemPort
{
  public:
    /**
     * @param bus The interconnect to attach to.
     * @param responder Receiver of responses (nullptr to discard).
     * @param label Per-client statistics label on the bus.
     */
    BusPort(Interconnect &bus, MemResponder *responder, std::string label)
        : bus_(bus), client_(bus.registerClient(responder,
                                                std::move(label)))
    {
    }

    bool
    canSend(const MemRequest &) const override
    {
        return bus_.canAccept(client_);
    }

    void
    send(MemRequest req, Tick now) override
    {
        req.client = client_;
        bus_.sendRequest(req, now);
    }

    /** The interconnect client id (for per-client stats lookups). */
    unsigned clientId() const { return client_; }

  private:
    Interconnect &bus_;
    unsigned client_;
};

} // namespace hwgc::mem

#endif // HWGC_MEM_PORT_H
