/**
 * @file
 * Top-down cycle-accounting profiler (DESIGN.md §10).
 *
 * A CycleProfiler is a KernelObserver that, for every cycle the
 * kernel executes or fast-forwards over, asks each registered
 * component to classify where that cycle went
 * (Clocked::cycleClass()) and accrues the answer into per-component
 * stats::Vectors — one for the whole run plus one per GC phase. The
 * accounting identity
 *
 *     busy + Σ stalls + idle == observed cycles
 *
 * holds per component by construction: every observed cycle is
 * classified exactly once (fast-forward gaps classify once at the gap
 * start and weight by the gap width, which is exact because component
 * state is frozen across a gap).
 *
 * Everything here is observational. Classification reads const state
 * only, the accrued vectors live outside save()/restore() and the
 * config signature, and the profiler chains to any previously
 * attached observer — so profiling on/off is bit-identical in cycles,
 * checkpoints and core statistics (tests/test_profiler.cc enforces
 * this).
 */

#ifndef HWGC_SIM_PROFILER_H
#define HWGC_SIM_PROFILER_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/clocked.h"
#include "sim/cycle_class.h"
#include "sim/stats.h"

namespace hwgc::telemetry
{

/** See file header. */
class CycleProfiler : public KernelObserver
{
  public:
    /**
     * Snapshots @p system's current component list (all components
     * must already be registered) and registers one stats group per
     * component under "<stats_prefix>.profile.<component>", so the
     * attribution lands in the normal stats-JSON export. The same
     * prefix names the Perfetto counter tracks.
     */
    CycleProfiler(System &system, std::string stats_prefix);
    ~CycleProfiler() override;

    CycleProfiler(const CycleProfiler &) = delete;
    CycleProfiler &operator=(const CycleProfiler &) = delete;

    /**
     * Forwards every observer callback to @p chain after accounting.
     * System holds a single observer slot; this keeps the activity
     * tracer working while the profiler is attached.
     */
    void setChain(KernelObserver *chain) { chain_ = chain; }

    // KernelObserver interface.
    void cycleExecuted(Tick now, std::uint64_t active_mask) override;
    void fastForwarded(Tick from, Tick to) override;

    /** @name Phase attribution
     * Called by the device at GC phase boundaries ("rootScan",
     * "mark", "sweep"). Cycles outside any phase accrue only into
     * the per-run totals. Also emits the per-class Perfetto counter
     * tracks (0 at phase start, the phase's aggregate at phase end),
     * giving the weighted flamegraph-style timeline view. @{ */
    void beginPhase(const std::string &name);
    void endPhase();
    /** @} */

    /**
     * Human-readable bottleneck report: per phase and for the whole
     * run, the aggregated class mix plus each component's top stall
     * causes. @p top_n bounds the stall classes listed per line.
     */
    void report(std::FILE *out, std::size_t top_n = 3) const;

    /** @name Programmatic access (tests, benches) @{ */

    std::size_t numComponents() const { return comps_.size(); }
    const std::string &componentName(std::size_t i) const;

    /** Whole-run cycles of class @p c for component @p i. */
    std::uint64_t cycles(std::size_t i, CycleClass c) const;

    /** Whole-run cycles component @p i accounted across all classes
     *  (the identity says this equals observedCycles()). */
    std::uint64_t accounted(std::size_t i) const;

    /** Cycles this profiler observed (executed + fast-forwarded). */
    std::uint64_t observedCycles() const { return observed_; }

    /** Whole-run cycles of class @p c summed over all components. */
    std::uint64_t aggregate(CycleClass c) const;

    /** Like aggregate(), restricted to phase @p phase (0 if the
     *  phase never ran). */
    std::uint64_t phaseAggregate(const std::string &phase,
                                 CycleClass c) const;

    /** The stall class with the most whole-run aggregated cycles
     *  (ties resolve to the lower enum value). */
    CycleClass topStallClass() const;

    /** topStallClass() restricted to phase @p phase. */
    CycleClass topStallClass(const std::string &phase) const;

    /** Phase names in first-use order. */
    const std::vector<std::string> &phases() const { return phaseNames_; }
    /** @} */

    /** @name Per-partition aggregation
     * Components grouped by their ParallelBsp partition id (snapshot
     * at construction; every component shares partition 0 outside
     * ParallelBsp mode). The aggregates land in the stats-JSON export
     * under "<prefix>.profile.partition.<id>" and feed the partition
     * load section of report() — the input to judging whether a
     * --host-partition scheme (or the cost model's re-pack) balanced
     * the workers. @{ */

    std::size_t numPartitions() const { return parts_.size(); }

    /** The partition id of slot @p i (ids need not be dense). */
    unsigned partitionId(std::size_t i) const;

    /** Whole-run cycles of class @p c summed over partition slot
     *  @p i's components. */
    std::uint64_t partitionCycles(std::size_t i, CycleClass c) const;

    /**
     * Load imbalance across partitions: max per-partition busy cycles
     * over mean per-partition busy cycles (1.0 = perfectly balanced,
     * and also the degenerate single-partition / no-busy answer).
     */
    double partitionLoadImbalance() const;
    /** @} */

  private:
    struct PerComponent
    {
        const Clocked *clocked;
        stats::Group group{"profile"};
        stats::Vector total;
        /** One vector per entry of phaseNames_, same order. Owned
         *  behind unique_ptr: the group keeps raw pointers. */
        std::vector<std::unique_ptr<stats::Vector>> phase;
        std::string registryPath;
        std::size_t partSlot; //!< Index into parts_.
    };

    struct PerPartition
    {
        unsigned id; //!< ParallelBsp partition id (not dense).
        stats::Group group{"profile"};
        stats::Vector total;
        std::vector<const Clocked *> members;
        std::string registryPath;
    };

    /** Classifies every component once and accrues @p weight. */
    void accrue(Tick now, std::uint64_t weight);

    /** aggregate() over phase @p phase_idx (-1 = whole run). */
    std::uint64_t aggregateIn(int phase_idx, CycleClass c) const;
    int phaseIndex(const std::string &name) const;
    CycleClass topStallIn(int phase_idx) const;

    System &system_;
    std::string prefix_;
    std::vector<PerComponent> comps_;
    std::vector<PerPartition> parts_;
    std::vector<std::string> phaseNames_;
    int currentPhase_ = -1; //!< Index into phaseNames_, -1 = none.
    std::uint64_t observed_ = 0;
    KernelObserver *chain_ = nullptr;
};

} // namespace hwgc::telemetry

#endif // HWGC_SIM_PROFILER_H
