/**
 * @file
 * Deterministic heap-graph synthesis.
 *
 * The paper evaluates on DaCapo benchmarks whose GC behaviour is a
 * function of heap *shape*: live-set size, out-degree distribution,
 * sharing (DAG edges), cycles, array fraction, object sizes, and a
 * small set of very hot objects (Fig 21a: "about 10% of mark
 * operations access the same 56 objects"). GraphBuilder constructs
 * heaps with controlled values for each of these, and mutates them
 * between GC pauses to model allocation churn.
 */

#ifndef HWGC_WORKLOAD_GRAPH_GEN_H
#define HWGC_WORKLOAD_GRAPH_GEN_H

#include <vector>

#include "runtime/heap.h"
#include "sim/checkpoint.h"
#include "sim/random.h"

namespace hwgc::workload
{

/** Shape parameters of a synthetic heap graph. */
struct GraphParams
{
    std::uint64_t liveObjects = 10000;   //!< Reachable objects.
    std::uint64_t garbageObjects = 6000; //!< Unreachable objects.
    unsigned numRoots = 64;              //!< Root count (stacks etc.).

    double avgRefs = 3.0;      //!< Mean out-degree of plain objects.
    std::uint32_t maxRefs = 12;
    std::uint32_t minRefs = 0; //!< Out-degree floor (1 = no leaves).
    double avgPayloadWords = 4.0; //!< Mean non-reference payload.
    std::uint32_t maxPayloadWords = 24;

    double arrayFraction = 0.1;  //!< Fraction that are ref arrays.
    double avgArrayLen = 24.0;
    std::uint32_t maxArrayLen = 256;
    double largeFraction = 0.01; //!< Fraction allocated in the LOS.

    double shareProb = 0.25; //!< P(edge targets an existing object).
    double cycleProb = 0.05; //!< P(shared edge creates a back edge).

    /**
     * Real heaps exhibit allocation-order locality: most references
     * point at objects allocated nearby in time, which live on nearby
     * pages (the generational hypothesis). With this probability a
     * shared edge targets one of the most recently allocated
     * `localityWindow` objects instead of a uniformly random one.
     * Both collectors benefit identically (TLB/cache locality).
     */
    double localityBias = 0.85;
    std::size_t localityWindow = 256;

    std::uint64_t hotObjects = 0;  //!< Size of the hot set (Fig 21).
    double hotRefFraction = 0.0;   //!< P(shared edge targets hot set).

    /**
     * Adversarial sparse layout: allocate this many dead padding
     * objects (payload-only, maxPayloadWords each) after every real
     * allocation. Live objects end up spread thinly across many more
     * pages than their count suggests, thrashing the unit TLBs and
     * the mark-bit locality the accelerator otherwise enjoys. The
     * pads are unreachable, so the first sweep turns them into
     * free-list holes and the sparseness persists.
     */
    std::uint64_t sparsePadObjects = 0;

    std::uint64_t seed = 1;
};

/** @name GraphParams serialization (farm snapshots) @{ */
void putGraphParams(checkpoint::Serializer &ser, const GraphParams &p);
GraphParams getGraphParams(checkpoint::Deserializer &des);
/** @} */

/** Builds and churns a heap graph matching a GraphParams shape. */
class GraphBuilder
{
  public:
    GraphBuilder(runtime::Heap &heap, const GraphParams &params);

    /**
     * Allocates the full graph (live + garbage), wires references,
     * registers roots and publishes them to hwgc-space.
     */
    void build();

    /**
     * Models mutator activity between two GC pauses: drops a fraction
     * of edges (creating garbage), rewires others, and allocates new
     * objects attached to survivors.
     *
     * @param churn Fraction of the live set turned over (0..1).
     */
    void mutate(double churn);

    /** Objects created so far (live + garbage, pre-sweep). */
    std::uint64_t objectsBuilt() const { return built_; }

    /**
     * @name Builder-state serialization (farm snapshots)
     *
     * Captures the RNG stream and the live/hot candidate lists so a
     * restored builder continues mutate() bit-identically to the one
     * that was snapshotted. restore() must run on a builder
     * constructed with the same GraphParams (seed-checked) over a
     * heap whose state was restored from the same snapshot.
     * @{
     */
    void save(checkpoint::Serializer &ser) const;
    void restore(checkpoint::Deserializer &des);
    /** @} */

  private:
    /** Allocates one object with shape drawn from the parameters. */
    runtime::ObjRef allocateOne(bool allow_array);

    /** Picks a reference target among existing objects (hot-biased). */
    runtime::ObjRef pickExisting();

    /** Fills every reference slot of @p obj. */
    void wireRefs(runtime::ObjRef obj,
                  std::vector<runtime::ObjRef> &frontier);

    runtime::Heap &heap_;
    GraphParams params_;
    Rng rng_;
    std::vector<runtime::ObjRef> liveSet_;  //!< Candidates for sharing.
    std::vector<runtime::ObjRef> hotSet_;
    std::uint64_t built_ = 0;
};

} // namespace hwgc::workload

#endif // HWGC_WORKLOAD_GRAPH_GEN_H
