/**
 * @file
 * Table I — the RocketChip/SoC configuration used by every
 * experiment. Prints the simulator's actual defaults so drift between
 * documentation and code is impossible.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/hwgc_config.h"
#include "cpu/core_model.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Table I: RocketChip Configuration",
                  "Rocket in-order CPU @ 1 GHz, DDR3-2000 memory");

    const cpu::CoreParams core;
    std::printf("Processor (Rocket in-order CPU @ %.0f MHz)\n",
                coreClockHz / 1e6);
    std::printf("  L1 DCache            %llu KiB, %u-way, %llu-cycle hit\n",
                (unsigned long long)(core.l1d.sizeBytes / 1024),
                core.l1d.assoc, (unsigned long long)core.l1d.hitLatency);
    std::printf("  L2 Cache             %llu KiB, %u-way, %llu-cycle hit\n",
                (unsigned long long)(core.l2.sizeBytes / 1024),
                core.l2.assoc, (unsigned long long)core.l2.hitLatency);
    std::printf("  DTLB                 %u entries (%u KiB reach)\n",
                core.dtlbEntries, core.dtlbEntries * 4);
    std::printf("  Branch mispredict    %llu cycles\n",
                (unsigned long long)core.branchMispredictPenalty);

    const core::HwgcConfig hwgc;
    std::printf("\nMemory model (2 GiB single rank, DDR3-2000)\n");
    std::printf("  Scheduler            FR-FCFS (%u/%u reads/writes in flight)\n",
                hwgc.dram.maxReads, hwgc.dram.maxWrites);
    std::printf("  Page policy          open-page, %u banks, %llu B rows\n",
                hwgc.dram.banks,
                (unsigned long long)hwgc.dram.rowBytes);
    std::printf("  DRAM latencies (ns)  %llu-%llu-%llu-%llu\n",
                (unsigned long long)hwgc.dram.tCAS,
                (unsigned long long)hwgc.dram.tRCD,
                (unsigned long long)hwgc.dram.tRP,
                (unsigned long long)hwgc.dram.tRAS);
    std::printf("  Peak bus bandwidth   %.0f GB/s\n",
                hwgc.dram.busBytesPerCycle);

    std::printf("\nGC unit baseline (paper Sec VI-A)\n");
    std::printf("  Mark queue           %u entries\n",
                hwgc.markQueueEntries);
    std::printf("  Marker slots         %u\n", hwgc.markerSlots);
    std::printf("  Tracer queue         %u entries\n",
                hwgc.tracerQueueEntries);
    std::printf("  Unit TLBs            %u entries each\n",
                hwgc.unitTlbEntries);
    std::printf("  Shared L2 TLB        %u entries\n",
                hwgc.ptw.l2TlbEntries);
    std::printf("  PTW cache            %llu KiB\n",
                (unsigned long long)(hwgc.ptwCacheParams.sizeBytes /
                                     1024));
    std::printf("  Block sweepers       %u\n", hwgc.numSweepers);
    return 0;
}
