/**
 * @file
 * Unit tests for the tag array, the atomic cache hierarchy and the
 * timed multi-ported cache.
 */

#include <gtest/gtest.h>

#include "mem/atomic_cache.h"
#include "mem/ideal_mem.h"
#include "mem/timed_cache.h"

namespace hwgc::mem
{
namespace
{

TEST(CacheTags, HitAfterInsert)
{
    CacheTags tags(1024, 2);
    EXPECT_FALSE(tags.access(0x1000));
    tags.insert(0x1000);
    EXPECT_TRUE(tags.access(0x1000));
    EXPECT_TRUE(tags.access(0x1038)); // Same 64B line.
    EXPECT_FALSE(tags.access(0x1040)); // Next line.
}

TEST(CacheTags, LruEviction)
{
    // 2 sets x 2 ways of 64B lines = 256 bytes.
    CacheTags tags(256, 2);
    // Three lines mapping to set 0 (stride = 2 * 64).
    tags.insert(0x0);
    tags.insert(0x80);
    EXPECT_TRUE(tags.access(0x0)); // Touch: 0x80 becomes LRU.
    const auto victim = tags.insert(0x100);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.lineAddr, 0x80u);
    EXPECT_TRUE(tags.access(0x0));
    EXPECT_FALSE(tags.access(0x80));
}

TEST(CacheTags, DirtyVictim)
{
    CacheTags tags(256, 2);
    tags.insert(0x0);
    EXPECT_TRUE(tags.markDirty(0x0));
    EXPECT_FALSE(tags.markDirty(0x4000)); // Absent.
    // Direct-mapped 256B cache: 4 sets, so lines 0x0 and 0x100 share
    // set 0; evicting a dirty line surfaces its dirtiness.
    CacheTags t2(256, 1);
    t2.insert(0x0, true);
    const auto v = t2.insert(0x100);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.lineAddr, 0x0u);
}

TEST(CacheTags, ProbeDoesNotTouchLru)
{
    CacheTags tags(256, 2);
    tags.insert(0x0);
    tags.insert(0x80);
    EXPECT_TRUE(tags.probe(0x0)); // No LRU update: 0x0 stays LRU.
    const auto victim = tags.insert(0x100);
    EXPECT_EQ(victim.lineAddr, 0x0u);
}

TEST(CacheTags, Flush)
{
    CacheTags tags(1024, 2);
    tags.insert(0x1000);
    tags.flush();
    EXPECT_FALSE(tags.access(0x1000));
}

TEST(CacheTagsDeathTest, BadGeometry)
{
    EXPECT_DEATH(CacheTags(100, 3), "power of two");
}

class AtomicCacheTest : public testing::Test
{
  protected:
    AtomicCacheTest() : ideal_("mem", idealParams(), mem_) {}

    static IdealMemParams
    idealParams()
    {
        IdealMemParams p;
        p.latency = 50;
        p.perRequestOverhead = 0;
        return p;
    }

    PhysMem mem_;
    IdealMem ideal_;
};

TEST_F(AtomicCacheTest, MissThenHit)
{
    AtomicCache cache("l1", {1024, 2, 2}, nullptr, &ideal_);
    const Tick miss = cache.access(0x1000, 8, false, 0);
    const Tick hit = cache.access(0x1008, 8, false, 1000);
    EXPECT_GT(miss, 50u);
    EXPECT_EQ(hit, 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(AtomicCacheTest, TwoLevelHierarchy)
{
    AtomicCache l2("l2", {4096, 4, 12}, nullptr, &ideal_);
    AtomicCache l1("l1", {1024, 2, 2}, &l2, nullptr);
    const Tick cold = l1.access(0x2000, 8, false, 0);
    EXPECT_GT(cold, 12u); // Paid L2 + memory.
    // Evict 0x2000 from the 2-way L1 set without exceeding the 4-way
    // L2 set (set-conflict stride of the 1 KiB L1 is 1024).
    l1.access(0x2000 + 1024, 8, false, 1000);
    l1.access(0x2000 + 2048, 8, false, 2000);
    const Tick l2_hit = l1.access(0x2000, 8, false, 50000);
    EXPECT_GE(l2_hit, 12u);
    EXPECT_LT(l2_hit, cold);
}

TEST_F(AtomicCacheTest, DirtyEvictionChargesDownstreamTraffic)
{
    AtomicCache cache("l1", {128, 1, 2}, nullptr, &ideal_);
    cache.access(0x0, 8, true, 0); // Dirty line in set 0.
    const auto before = ideal_.bytesMoved().value();
    cache.access(0x80, 8, false, 1000); // Evicts dirty 0x0.
    const auto moved = ideal_.bytesMoved().value() - before;
    EXPECT_EQ(moved, 2u * lineBytes); // Write-back + fill.
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST_F(AtomicCacheTest, MultiLineAccessTouchesAllLines)
{
    AtomicCache cache("l1", {4096, 4, 2}, nullptr, &ideal_);
    cache.access(0x1000, 8, false, 0);
    // A 64B access starting mid-line spans two lines.
    cache.access(0x1020, 64, false, 1000);
    EXPECT_TRUE(cache.hits() >= 1);
    EXPECT_EQ(cache.misses(), 2u); // 0x1000 line + 0x1040 line.
}

TEST_F(AtomicCacheTest, FlushForcesMisses)
{
    AtomicCache cache("l1", {1024, 2, 2}, nullptr, &ideal_);
    cache.access(0x1000, 8, false, 0);
    cache.flush();
    cache.access(0x1000, 8, false, 1000);
    EXPECT_EQ(cache.misses(), 2u);
}

/** Fixture wiring a timed cache to an ideal memory via a bus. */
class TimedCacheTest : public testing::Test
{
  protected:
    TimedCacheTest()
        : ideal_("mem", IdealMemParams{}, mem_),
          bus_("bus", InterconnectParams{}, ideal_),
          cache_("cache", TimedCacheParams{1024, 2, 2, 2, 4, 8}, mem_,
                 bus_)
    {
    }

    void
    run(Tick cycles)
    {
        for (Tick t = 0; t < cycles; ++t) {
            cache_.tick(now_);
            bus_.tick(now_);
            ideal_.tick(now_);
            ++now_;
        }
    }

    PhysMem mem_;
    IdealMem ideal_;
    Interconnect bus_;
    TimedCache cache_;
    Tick now_ = 0;
};

class Collector : public MemResponder
{
  public:
    void
    onResponse(const MemResponse &resp, Tick now) override
    {
        responses.push_back(resp);
        lastTick = now;
    }

    std::vector<MemResponse> responses;
    Tick lastTick = 0;
};

TEST_F(TimedCacheTest, MissFillsThenHits)
{
    Collector c;
    MemPort *port = cache_.addPort(&c, "p");
    mem_.writeWord(0x1000, 5);

    MemRequest req;
    req.paddr = 0x1000;
    req.size = 8;
    req.op = Op::Read;
    port->send(req, now_);
    run(100);
    ASSERT_EQ(c.responses.size(), 1u);
    EXPECT_EQ(c.responses[0].rdata[0], 5u);
    EXPECT_EQ(cache_.misses(), 1u);

    const Tick before = now_;
    port->send(req, now_);
    run(20);
    ASSERT_EQ(c.responses.size(), 2u);
    EXPECT_EQ(cache_.hits(), 1u);
    EXPECT_LE(c.lastTick - before, 10u);
}

TEST_F(TimedCacheTest, WritesExecuteFunctionally)
{
    Collector c;
    MemPort *port = cache_.addPort(&c, "p");
    MemRequest req;
    req.paddr = 0x2000;
    req.size = 8;
    req.op = Op::Write;
    req.wdata[0] = 321;
    port->send(req, now_);
    run(100);
    EXPECT_EQ(mem_.readWord(0x2000), 321u);
}

TEST_F(TimedCacheTest, MshrMergesSameLine)
{
    Collector c;
    MemPort *port = cache_.addPort(&c, "p");
    MemRequest a;
    a.paddr = 0x3000;
    a.size = 8;
    a.op = Op::Read;
    MemRequest b = a;
    b.paddr = 0x3008; // Same line.
    port->send(a, now_);
    port->send(b, now_);
    run(100);
    EXPECT_EQ(c.responses.size(), 2u);
    EXPECT_EQ(cache_.misses(), 1u); // One fill served both.
}

TEST_F(TimedCacheTest, PortStatsTrackRequests)
{
    Collector c;
    MemPort *p0 = cache_.addPort(&c, "alpha");
    MemPort *p1 = cache_.addPort(&c, "beta");
    MemRequest req;
    req.paddr = 0x4000;
    req.size = 8;
    req.op = Op::Read;
    p0->send(req, now_);
    p0->send(req, now_);
    p1->send(req, now_);
    run(100);
    EXPECT_EQ(cache_.portRequests(0), 2u);
    EXPECT_EQ(cache_.portRequests(1), 1u);
    EXPECT_EQ(cache_.portLabel(0), "alpha");
}

TEST_F(TimedCacheTest, DirtyEvictionEmitsWriteback)
{
    Collector c;
    MemPort *port = cache_.addPort(&c, "p");
    // Dirty a line, then march over its set to evict it (2 ways,
    // 8 sets for 1024B/2-way; set stride = 8 * 64 = 512).
    MemRequest w;
    w.paddr = 0x0;
    w.size = 8;
    w.op = Op::Write;
    w.wdata[0] = 1;
    port->send(w, now_);
    run(50);
    for (Addr a = 512; a <= 1024; a += 512) {
        MemRequest r;
        r.paddr = a;
        r.size = 8;
        r.op = Op::Read;
        port->send(r, now_);
        run(50);
    }
    EXPECT_EQ(cache_.writebacks(), 1u);
    run(200);
    EXPECT_FALSE(cache_.busy());
}

} // namespace
} // namespace hwgc::mem
