file(REMOVE_RECURSE
  "libhwgc_driver.a"
)
