# Empty dependencies file for heap_inspector.
# This may be replaced when dependencies are built.
