/**
 * @file
 * Managed heap implementation.
 */

#include "heap.h"

#include <deque>

#include "runtime/block_table.h"

namespace hwgc::runtime
{

Heap::Heap(mem::PhysMem &mem, const HeapParams &params)
    : mem_(mem), params_(params),
      pageTable_(mem, params.addrBase + HeapLayout::pageTableBase,
                 HeapLayout::pageTableSize),
      msBump_(params.addrBase + HeapLayout::markSweepBase),
      losBump_(params.addrBase + HeapLayout::losBase),
      immortalBump_(params.addrBase + HeapLayout::immortalBase)
{
    // Metadata and bump spaces are mapped eagerly; MarkSweep blocks
    // are mapped as they are carved (superpage mode maps the whole
    // reserve up front instead — real superpage heaps are contiguous
    // reservations).
    mapIdentity(blockTableBase(), HeapLayout::blockTableSize);
    mapIdentity(hwgcSpaceBase(), HeapLayout::hwgcSpaceSize);
    mapIdentity(swQueueBase(), HeapLayout::swQueueSize);
    mapIdentity(losBase(), params_.losReserve);
    mapIdentity(immortalBase(), params_.immortalReserve);
    if (params_.useSuperpages) {
        mapIdentity(markSweepBase(), params_.markSweepReserve);
    }
}

void
Heap::mapIdentity(Addr base, std::uint64_t len)
{
    if (params_.useSuperpages) {
        constexpr std::uint64_t super = 2ULL << 20;
        pageTable_.mapSuper(base, base, alignUp(len, super));
    } else {
        pageTable_.map(base, base, alignUp(len, pageBytes));
    }
}

std::uint64_t
Heap::objectBytes(std::uint32_t num_refs,
                  std::uint32_t payload_words) const
{
    const std::uint32_t extra =
        (params_.layout == Layout::Tib) ? 1 : 0;
    return ObjectModel::sizeWords(num_refs, payload_words + extra) *
        wordBytes;
}

std::size_t
Heap::newBlock(unsigned cls)
{
    const std::uint64_t used = msBump_ - markSweepBase();
    fatal_if(used + blockBytes > params_.markSweepReserve,
             "MarkSweep space exhausted (%llu blocks)",
             (unsigned long long)blocks_.size());
    fatal_if((blocks_.size() + 1) * BlockTableEntry::words * wordBytes >
             HeapLayout::blockTableSize, "block table exhausted");

    const Addr base = msBump_;
    msBump_ += blockBytes;
    if (!params_.useSuperpages) {
        mapIdentity(base, blockBytes); // Superpage mode premaps all.
    }

    const std::uint32_t cell_bytes = SizeClasses::bytesFor(cls);
    const std::uint64_t cells = blockBytes / cell_bytes;

    // Format the free list through all cells, ascending.
    for (std::uint64_t i = 0; i < cells; ++i) {
        const Addr cell = base + i * cell_bytes;
        const Addr next =
            (i + 1 < cells) ? cell + cell_bytes : nullRef;
        mem_.writeWord(cell, CellStart::makeFree(next));
    }

    const std::size_t idx = blocks_.size();
    blocks_.push_back({base, cell_bytes, cls});
    classes_[cls].blockIdx.push_back(idx);

    const Addr entry = BlockTableEntry::addr(blockTableBase(), idx);
    mem_.writeWord(entry, base);
    mem_.writeWord(entry + wordBytes,
                   BlockTableEntry::makeGeometry(cell_bytes, cls));
    mem_.writeWord(entry + 2 * wordBytes, base); // Free head: 1st cell.
    mem_.writeWord(entry + 3 * wordBytes,
                   BlockTableEntry::makeSummary(std::uint32_t(cells),
                                                false));
    return idx;
}

Addr
Heap::popFreeCell(unsigned cls)
{
    ClassState &state = classes_[cls];
    while (state.cursor < state.blockIdx.size()) {
        const std::size_t idx = state.blockIdx[state.cursor];
        const Addr head_addr =
            BlockTableEntry::addr(blockTableBase(), idx) + 2 * wordBytes;
        const Addr head = mem_.readWord(head_addr);
        if (head != nullRef) {
            const Word link = mem_.readWord(head);
            panic_if(CellStart::isLive(link),
                     "free-list head %#llx is a live cell",
                     (unsigned long long)head);
            mem_.writeWord(head_addr, CellStart::nextFree(link));
            return head;
        }
        ++state.cursor;
    }
    const std::size_t idx = newBlock(cls);
    const Addr head_addr =
        BlockTableEntry::addr(blockTableBase(), idx) + 2 * wordBytes;
    const Addr head = mem_.readWord(head_addr);
    const Word link = mem_.readWord(head);
    mem_.writeWord(head_addr, CellStart::nextFree(link));
    // Point the cursor at the fresh block for subsequent allocations.
    state.cursor = state.blockIdx.size() - 1;
    return head;
}

ObjRef
Heap::formatObject(Addr cell, std::uint32_t num_refs,
                   std::uint32_t payload_words, std::uint16_t type_id,
                   bool is_array)
{
    mem_.writeWord(cell, CellStart::makeLive(num_refs));
    for (std::uint32_t i = 0; i < num_refs; ++i) {
        mem_.writeWord(cell + (1ULL + i) * wordBytes, nullRef);
    }
    const ObjRef ref = ObjectModel::refFromCell(cell, num_refs);
    Word header = StatusWord::make(num_refs, type_id, is_array);
    if (allocateBlack_) {
        header |= StatusWord::markBit;
    }
    mem_.writeWord(ref, header);
    const std::uint32_t extra =
        (params_.layout == Layout::Tib) ? 1 : 0;
    for (std::uint32_t i = 0; i < payload_words + extra; ++i) {
        mem_.writeWord(ref + (1ULL + i) * wordBytes, 0);
    }
    if (params_.layout == Layout::Tib) {
        // Conventional layout keeps type metadata behind a TIB pointer
        // (Fig 6a). Point the first hidden word at a per-type TIB in
        // the immortal space; the tracer's TIB-mode path reads it to
        // model the extra accesses the bidirectional layout removes.
        const Addr tib = immortalBase() +
            (Addr(type_id) % 1024) * lineBytes;
        mem_.writeWord(ref + wordBytes, tib);
    }
    return ref;
}

ObjRef
Heap::allocate(std::uint32_t num_refs, std::uint32_t payload_words,
               Space space, std::uint16_t type_id, bool is_array)
{
    const std::uint64_t bytes = objectBytes(num_refs, payload_words);
    Addr cell = 0;

    switch (space) {
      case Space::MarkSweep: {
        unsigned cls = SizeClasses::classFor(bytes);
        if (cls >= SizeClasses::count) {
            space = Space::Los; // Too big: fall through to the LOS.
        } else {
            cell = popFreeCell(cls);
            bytesAllocated_ += SizeClasses::bytesFor(cls);
        }
        break;
      }
      case Space::Los:
      case Space::Immortal:
        break;
    }

    if (cell == 0 && space == Space::Los) {
        const Addr base = alignUp(losBump_, 16);
        fatal_if(base + bytes > losBase() + params_.losReserve,
                 "large object space exhausted");
        losBump_ = base + bytes;
        bytesAllocated_ += bytes;
        cell = base;
    } else if (cell == 0 && space == Space::Immortal) {
        const Addr base = alignUp(immortalBump_, 16);
        fatal_if(base + bytes >
                 immortalBase() + params_.immortalReserve,
                 "immortal space exhausted");
        immortalBump_ = base + bytes;
        bytesAllocated_ += bytes;
        cell = base;
    }

    const ObjRef ref =
        formatObject(cell, num_refs, payload_words, type_id, is_array);
    objects_.push_back({ref, cell, num_refs, payload_words, space});
    return ref;
}

void
Heap::setRef(ObjRef obj, std::uint32_t slot, ObjRef target)
{
    const std::uint32_t n = numRefs(obj);
    mem_.writeWord(ObjectModel::refSlotAddr(obj, n, slot), target);
}

ObjRef
Heap::getRef(ObjRef obj, std::uint32_t slot) const
{
    const std::uint32_t n = numRefs(obj);
    return mem_.readWord(ObjectModel::refSlotAddr(obj, n, slot));
}

std::uint32_t
Heap::numRefs(ObjRef obj) const
{
    return StatusWord::numRefs(mem_.readWord(obj));
}

void
Heap::addRoot(ObjRef ref)
{
    roots_.push_back(ref);
}

void
Heap::clearRoots()
{
    roots_.clear();
    publishedRoots_ = 0;
}

void
Heap::publishRoots()
{
    fatal_if(roots_.size() * wordBytes > HeapLayout::hwgcSpaceSize,
             "hwgc-space too small for %zu roots", roots_.size());
    for (std::size_t i = 0; i < roots_.size(); ++i) {
        mem_.writeWord(hwgcSpaceBase() + i * wordBytes, roots_[i]);
    }
    publishedRoots_ = roots_.size();
}

Addr
Heap::blockTableEntryAddr(std::size_t idx) const
{
    return BlockTableEntry::addr(blockTableBase(), idx);
}

std::unordered_set<ObjRef>
Heap::computeReachable() const
{
    std::unordered_set<ObjRef> reachable;
    std::deque<ObjRef> frontier;
    for (const ObjRef root : roots_) {
        if (root != nullRef && reachable.insert(root).second) {
            frontier.push_back(root);
        }
    }
    while (!frontier.empty()) {
        const ObjRef obj = frontier.front();
        frontier.pop_front();
        const std::uint32_t n = StatusWord::numRefs(mem_.readWord(obj));
        for (std::uint32_t i = 0; i < n; ++i) {
            const ObjRef target =
                mem_.readWord(ObjectModel::refSlotAddr(obj, n, i));
            if (target != nullRef && reachable.insert(target).second) {
                frontier.push_back(target);
            }
        }
    }
    return reachable;
}

void
Heap::clearAllMarks()
{
    for (const ObjInfo &obj : objects_) {
        const Word hdr = mem_.readWord(obj.ref);
        if (StatusWord::marked(hdr)) {
            mem_.writeWord(obj.ref, hdr & ~StatusWord::markBit);
        }
    }
}

std::uint64_t
Heap::countMarked() const
{
    std::uint64_t count = 0;
    for (const ObjInfo &obj : objects_) {
        if (StatusWord::marked(mem_.readWord(obj.ref))) {
            ++count;
        }
    }
    return count;
}

void
Heap::save(checkpoint::Serializer &ser) const
{
    // Parameter fingerprint first: a snapshot taken under different
    // heap geometry must fail loudly before any state parsing.
    ser.putU64(params_.markSweepReserve);
    ser.putU64(params_.losReserve);
    ser.putU64(params_.immortalReserve);
    ser.putU64(std::uint64_t(params_.layout));
    ser.putBool(params_.useSuperpages);
    ser.putU64(params_.addrBase);

    ser.putU64(pageTable_.pagesAllocated());

    ser.putU64(blocks_.size());
    for (const BlockInfo &block : blocks_) {
        ser.putU64(block.base);
        ser.putU64(block.cellBytes);
        ser.putU64(block.sizeClass);
    }
    for (const ClassState &state : classes_) {
        ser.putU64(state.blockIdx.size());
        for (const std::size_t idx : state.blockIdx) {
            ser.putU64(idx);
        }
        ser.putU64(state.cursor);
    }
    ser.putU64(msBump_);
    ser.putU64(losBump_);
    ser.putU64(immortalBump_);

    ser.putU64(roots_.size());
    for (const ObjRef root : roots_) {
        ser.putU64(root);
    }
    ser.putU64(publishedRoots_);

    ser.putU64(objects_.size());
    for (const ObjInfo &obj : objects_) {
        ser.putU64(obj.ref);
        ser.putU64(obj.cell);
        ser.putU64(obj.numRefs);
        ser.putU64(obj.payloadWords);
        ser.putU64(std::uint64_t(obj.space));
    }
    ser.putU64(bytesAllocated_);
    ser.putBool(allocateBlack_);
}

void
Heap::restore(checkpoint::Deserializer &des)
{
    fatal_if(des.getU64() != params_.markSweepReserve ||
             des.getU64() != params_.losReserve ||
             des.getU64() != params_.immortalReserve ||
             des.getU64() != std::uint64_t(params_.layout) ||
             des.getBool() != params_.useSuperpages ||
             des.getU64() != params_.addrBase,
             "heap snapshot '%s' was taken under different HeapParams",
             des.origin().c_str());

    // The tables themselves arrive with the PhysMem image; only the
    // bump allocator's count is runtime-side state.
    pageTable_.restorePagesAllocated(unsigned(des.getU64()));

    blocks_.clear();
    const std::uint64_t num_blocks = des.getU64();
    blocks_.reserve(num_blocks);
    for (std::uint64_t i = 0; i < num_blocks; ++i) {
        BlockInfo block;
        block.base = des.getU64();
        block.cellBytes = std::uint32_t(des.getU64());
        block.sizeClass = unsigned(des.getU64());
        blocks_.push_back(block);
    }
    for (ClassState &state : classes_) {
        state.blockIdx.clear();
        const std::uint64_t n = des.getU64();
        state.blockIdx.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t idx = des.getU64();
            fatal_if(idx >= blocks_.size(),
                     "heap snapshot '%s': class block index %llu out "
                     "of range", des.origin().c_str(),
                     (unsigned long long)idx);
            state.blockIdx.push_back(std::size_t(idx));
        }
        state.cursor = std::size_t(des.getU64());
    }
    msBump_ = des.getU64();
    losBump_ = des.getU64();
    immortalBump_ = des.getU64();

    roots_.clear();
    const std::uint64_t num_roots = des.getU64();
    roots_.reserve(num_roots);
    for (std::uint64_t i = 0; i < num_roots; ++i) {
        roots_.push_back(des.getU64());
    }
    publishedRoots_ = des.getU64();

    objects_.clear();
    const std::uint64_t num_objects = des.getU64();
    objects_.reserve(num_objects);
    for (std::uint64_t i = 0; i < num_objects; ++i) {
        ObjInfo obj;
        obj.ref = des.getU64();
        obj.cell = des.getU64();
        obj.numRefs = std::uint32_t(des.getU64());
        obj.payloadWords = std::uint32_t(des.getU64());
        obj.space = Space(des.getU64());
        objects_.push_back(obj);
    }
    bytesAllocated_ = des.getU64();
    allocateBlack_ = des.getBool();
}

std::uint64_t
Heap::onAfterSweep()
{
    // Must run after a sweep and *before* clearAllMarks(): LOS and
    // immortal objects are pruned by their (still-set) mark bits.
    std::uint64_t freed = 0;
    std::vector<ObjInfo> survivors;
    survivors.reserve(objects_.size());
    for (const ObjInfo &obj : objects_) {
        // A swept cell's start word became a free-list link (LSB 0).
        if (obj.space == Space::MarkSweep &&
            !CellStart::isLive(mem_.readWord(obj.cell))) {
            ++freed;
            continue;
        }
        // Unreachable LOS/immortal objects keep their storage (the
        // unit does not reclaim those spaces; JikesRVM manages them)
        // but leave the runtime's object table: letting the mutator
        // wire new edges to a dead object would resurrect dangling
        // references into reallocated MarkSweep cells.
        if (obj.space != Space::MarkSweep &&
            !StatusWord::marked(mem_.readWord(obj.ref))) {
            ++freed;
            continue;
        }
        survivors.push_back(obj);
    }
    objects_ = std::move(survivors);
    // Freed cells may be anywhere: restart every class's block scan.
    for (auto &state : classes_) {
        state.cursor = 0;
    }
    return freed;
}

} // namespace hwgc::runtime
