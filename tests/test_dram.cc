/**
 * @file
 * Unit tests for the DRAM controller timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram.h"

namespace hwgc::mem
{
namespace
{

MemRequest
read(Addr addr, unsigned size = 8)
{
    MemRequest req;
    req.paddr = addr;
    req.size = size;
    req.op = Op::Read;
    return req;
}

MemRequest
write(Addr addr, unsigned size = 8)
{
    MemRequest req;
    req.paddr = addr;
    req.size = size;
    req.op = Op::Write;
    return req;
}

/** Atomic-mode latency of one request against a fresh device. */
Tick
atomicLatency(Dram &dram, const MemRequest &req, Tick now)
{
    std::array<Word, maxReqWords> scratch{};
    return dram.accessAtomic(req, now, scratch);
}

class DramTest : public testing::Test
{
  protected:
    DramParams params_;
    PhysMem mem_;
};

TEST_F(DramTest, RowHitFasterThanRowMiss)
{
    Dram dram("d", params_, mem_);
    const Tick first = atomicLatency(dram, read(0x0), 0);
    // Same row: only CAS + burst.
    const Tick hit = atomicLatency(dram, read(0x40), 1000);
    // Same bank, different row: precharge + activate + CAS.
    const Tick miss = atomicLatency(
        dram, read(params_.rowBytes * params_.banks), 2000);
    EXPECT_LT(hit, first);
    EXPECT_LT(hit, miss);
    EXPECT_GE(miss, params_.tRP + params_.tRCD + params_.tCAS);
}

TEST_F(DramTest, ClosedPagePolicyHasNoRowHits)
{
    params_.pagePolicy = DramParams::PagePolicy::Closed;
    Dram dram("d", params_, mem_);
    atomicLatency(dram, read(0x0), 0);
    atomicLatency(dram, read(0x40), 1000);
    EXPECT_EQ(dram.rowHits().value(), 0u);
    EXPECT_EQ(dram.rowMisses().value(), 2u);
}

TEST_F(DramTest, BanksOverlap)
{
    Dram dram("d", params_, mem_);
    // Two requests to different banks at the same time should not
    // serialize their bank timing (only share the data bus).
    atomicLatency(dram, read(0), 0);
    const Tick other_bank = atomicLatency(
        dram, read(params_.rowBytes), 0);
    const Tick same_bank = atomicLatency(dram, read(0x80), 0);
    EXPECT_LE(other_bank, same_bank + params_.tCAS);
}

TEST_F(DramTest, InFlightCaps)
{
    Dram dram("d", params_, mem_);
    unsigned reads = 0;
    while (dram.canAccept(read(Addr(reads) * 64))) {
        dram.sendRequest(read(Addr(reads) * 64), 0);
        ++reads;
    }
    EXPECT_EQ(reads, params_.maxReads);
    unsigned writes = 0;
    while (dram.canAccept(write(0x100000 + Addr(writes) * 64))) {
        dram.sendRequest(write(0x100000 + Addr(writes) * 64), 0);
        ++writes;
    }
    EXPECT_EQ(writes, params_.maxWrites);
}

/** Collects responses for the timed tests. */
class Collector : public MemResponder
{
  public:
    void
    onResponse(const MemResponse &resp, Tick now) override
    {
        responses.push_back(resp);
        lastTick = now;
    }

    std::vector<MemResponse> responses;
    Tick lastTick = 0;
};

TEST_F(DramTest, TimedRequestsComplete)
{
    Dram dram("d", params_, mem_);
    Collector collector;
    dram.setResponder(&collector);
    mem_.writeWord(0x1000, 77);

    dram.sendRequest(read(0x1000), 0);
    for (Tick t = 0; t < 1000 && collector.responses.empty(); ++t) {
        dram.tick(t);
    }
    ASSERT_EQ(collector.responses.size(), 1u);
    EXPECT_EQ(collector.responses[0].rdata[0], 77u);
    EXPECT_FALSE(dram.busy());
}

TEST_F(DramTest, TimedWriteExecutesFunctionally)
{
    Dram dram("d", params_, mem_);
    Collector collector;
    dram.setResponder(&collector);

    MemRequest req = write(0x2000);
    req.wdata[0] = 1234;
    dram.sendRequest(req, 0);
    for (Tick t = 0; t < 1000 && collector.responses.empty(); ++t) {
        dram.tick(t);
    }
    EXPECT_EQ(mem_.readWord(0x2000), 1234u);
}

TEST_F(DramTest, TimingOnlyRequestSkipsFunctionalWrite)
{
    Dram dram("d", params_, mem_);
    Collector collector;
    dram.setResponder(&collector);
    mem_.writeWord(0x3000, 55);

    MemRequest req = write(0x3000);
    req.wdata[0] = 99;
    req.timingOnly = true;
    dram.sendRequest(req, 0);
    for (Tick t = 0; t < 1000 && collector.responses.empty(); ++t) {
        dram.tick(t);
    }
    EXPECT_EQ(mem_.readWord(0x3000), 55u); // Untouched.
}

TEST_F(DramTest, FrFcfsPrefersRowHits)
{
    // Queue a row miss (different row, same bank) then a row hit;
    // FR-FCFS should complete the hit first.
    Dram dram("d", params_, mem_);
    Collector collector;
    dram.setResponder(&collector);

    atomicLatency(dram, read(0x0), 0); // Open row 0 of bank 0.
    const Addr miss_addr = params_.rowBytes * params_.banks; // Bank 0.
    MemRequest miss = read(miss_addr);
    miss.tag = 1;
    MemRequest hit = read(0x40);
    hit.tag = 2;
    dram.sendRequest(miss, 100);
    dram.sendRequest(hit, 100);
    for (Tick t = 100; t < 2000 && collector.responses.size() < 2; ++t) {
        dram.tick(t);
    }
    ASSERT_EQ(collector.responses.size(), 2u);
    EXPECT_EQ(collector.responses[0].req.tag, 2u);
    EXPECT_EQ(collector.responses[1].req.tag, 1u);
}

TEST_F(DramTest, FifoPreservesOrder)
{
    params_.scheduler = DramParams::Scheduler::Fifo;
    Dram dram("d", params_, mem_);
    Collector collector;
    dram.setResponder(&collector);

    atomicLatency(dram, read(0x0), 0);
    MemRequest miss = read(params_.rowBytes * params_.banks);
    miss.tag = 1;
    MemRequest hit = read(0x40);
    hit.tag = 2;
    dram.sendRequest(miss, 100);
    dram.sendRequest(hit, 100);
    for (Tick t = 100; t < 2000 && collector.responses.size() < 2; ++t) {
        dram.tick(t);
    }
    ASSERT_EQ(collector.responses.size(), 2u);
    EXPECT_EQ(collector.responses[0].req.tag, 1u);
}

TEST_F(DramTest, BandwidthTimeSeriesRecordsBytes)
{
    Dram dram("d", params_, mem_);
    atomicLatency(dram, read(0x0, 64), 0);
    atomicLatency(dram, read(0x1000, 64), 100);
    std::uint64_t total = 0;
    for (auto b : dram.bandwidth().buckets()) {
        total += b;
    }
    EXPECT_EQ(total, 128u);
    EXPECT_EQ(dram.bytesRead().value(), 128u);
}

TEST_F(DramTest, StatsReset)
{
    Dram dram("d", params_, mem_);
    atomicLatency(dram, read(0x0), 0);
    EXPECT_GT(dram.numReads().value(), 0u);
    dram.resetStats();
    EXPECT_EQ(dram.numReads().value(), 0u);
    EXPECT_EQ(dram.rowMisses().value(), 0u);
    EXPECT_EQ(dram.latency().count(), 0u);
}

TEST_F(DramTest, LargerBurstsOccupyBusLonger)
{
    Dram dram("d", params_, mem_);
    const Tick small = atomicLatency(dram, read(0x0, 8), 0);
    dram.resetBankState();
    const Tick big = atomicLatency(dram, read(0x0, 64), 100000);
    EXPECT_GT(big, small);
}

} // namespace
} // namespace hwgc::mem
