file(REMOVE_RECURSE
  "CMakeFiles/test_hwgc.dir/test_hwgc.cc.o"
  "CMakeFiles/test_hwgc.dir/test_hwgc.cc.o.d"
  "test_hwgc"
  "test_hwgc.pdb"
  "test_hwgc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
