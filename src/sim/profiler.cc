#include "sim/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <utility>

#include "sim/telemetry.h"

namespace hwgc::telemetry
{
namespace
{

std::vector<std::string>
classLabels()
{
    std::vector<std::string> labels;
    labels.reserve(numCycleClasses);
    for (std::size_t c = 0; c < numCycleClasses; ++c) {
        labels.emplace_back(cycleClassName(CycleClass(c)));
    }
    return labels;
}

} // namespace

CycleProfiler::CycleProfiler(System &system, std::string stats_prefix)
    : system_(system), prefix_(std::move(stats_prefix))
{
    auto &registry = StatsRegistry::global();
    const auto labels = classLabels();
    // reserve() up front: the registry and each group hold pointers
    // into the elements, so the vectors must never reallocate.
    comps_.reserve(system_.components().size());
    parts_.reserve(system_.components().size());
    for (const Clocked *c : system_.components()) {
        comps_.emplace_back();
        auto &pc = comps_.back();
        pc.clocked = c;
        pc.total = stats::Vector("total", labels);
        pc.group.add(&pc.total);
        pc.registryPath =
            registry.add(prefix_ + ".profile." + c->name(), &pc.group);

        // Group by ParallelBsp partition id (all 0 outside that
        // mode). Partitions are fixed before telemetry attaches;
        // only the worker packing may change later.
        const unsigned part = system_.partitionOf(*c);
        std::size_t slot = parts_.size();
        for (std::size_t p = 0; p < parts_.size(); ++p) {
            if (parts_[p].id == part) {
                slot = p;
                break;
            }
        }
        if (slot == parts_.size()) {
            parts_.emplace_back();
            auto &pp = parts_.back();
            pp.id = part;
            pp.total = stats::Vector("total", labels);
            pp.group.add(&pp.total);
            pp.registryPath = registry.add(
                prefix_ + ".profile.partition." + std::to_string(part),
                &pp.group);
        }
        parts_[slot].members.push_back(c);
        pc.partSlot = slot;
    }
}

CycleProfiler::~CycleProfiler()
{
    auto &registry = StatsRegistry::global();
    for (const auto &pc : comps_) {
        registry.remove(pc.registryPath);
    }
    for (const auto &pp : parts_) {
        registry.remove(pp.registryPath);
    }
}

void
CycleProfiler::accrue(Tick now, std::uint64_t weight)
{
    observed_ += weight;
    for (auto &pc : comps_) {
        const auto cls = std::size_t(pc.clocked->cycleClass(now));
        pc.total.add(cls, weight);
        parts_[pc.partSlot].total.add(cls, weight);
        if (currentPhase_ >= 0) {
            pc.phase[std::size_t(currentPhase_)]->add(cls, weight);
        }
    }
}

void
CycleProfiler::cycleExecuted(Tick now, std::uint64_t active_mask)
{
    accrue(now, 1);
    if (chain_ != nullptr) {
        chain_->cycleExecuted(now, active_mask);
    }
}

void
CycleProfiler::fastForwarded(Tick from, Tick to)
{
    // Component state is frozen across the gap (nothing ticked), so
    // one classification at the gap start, weighted by its width, is
    // exactly what per-cycle classification would have produced.
    accrue(from, to - from);
    if (chain_ != nullptr) {
        chain_->fastForwarded(from, to);
    }
}

void
CycleProfiler::beginPhase(const std::string &name)
{
    int idx = phaseIndex(name);
    if (idx < 0) {
        // First time this phase runs: give every component a vector.
        // Re-entering an existing phase (later GC pauses, resumed
        // checkpoints) accrues into the same vectors, so per-phase
        // attribution is cumulative over the run.
        idx = int(phaseNames_.size());
        phaseNames_.push_back(name);
        const auto labels = classLabels();
        for (auto &pc : comps_) {
            pc.phase.push_back(
                std::make_unique<stats::Vector>(name, labels));
            pc.group.add(pc.phase.back().get());
        }
    }
    currentPhase_ = idx;
    auto &tw = TraceWriter::global();
    if (tw.enabled()) {
        // Zero-sample every class track at the phase start so each
        // phase renders as a ramp up to its aggregate in the trace.
        for (std::size_t c = 0; c < numCycleClasses; ++c) {
            tw.counter(prefix_ + ".profile." +
                           cycleClassName(CycleClass(c)),
                       system_.now(), 0.0);
        }
    }
}

void
CycleProfiler::endPhase()
{
    if (currentPhase_ < 0) {
        return;
    }
    auto &tw = TraceWriter::global();
    if (tw.enabled()) {
        for (std::size_t c = 0; c < numCycleClasses; ++c) {
            tw.counter(
                prefix_ + ".profile." + cycleClassName(CycleClass(c)),
                system_.now(),
                double(aggregateIn(currentPhase_, CycleClass(c))));
        }
    }
    currentPhase_ = -1;
}

const std::string &
CycleProfiler::componentName(std::size_t i) const
{
    return comps_.at(i).clocked->name();
}

std::uint64_t
CycleProfiler::cycles(std::size_t i, CycleClass c) const
{
    return comps_.at(i).total.value(std::size_t(c));
}

std::uint64_t
CycleProfiler::accounted(std::size_t i) const
{
    return comps_.at(i).total.total();
}

std::uint64_t
CycleProfiler::aggregate(CycleClass c) const
{
    return aggregateIn(-1, c);
}

std::uint64_t
CycleProfiler::phaseAggregate(const std::string &phase,
                              CycleClass c) const
{
    const int idx = phaseIndex(phase);
    return idx < 0 ? 0 : aggregateIn(idx, c);
}

CycleClass
CycleProfiler::topStallClass() const
{
    return topStallIn(-1);
}

CycleClass
CycleProfiler::topStallClass(const std::string &phase) const
{
    // An unknown phase falls back to the whole-run answer.
    return topStallIn(phaseIndex(phase));
}

std::uint64_t
CycleProfiler::aggregateIn(int phase_idx, CycleClass c) const
{
    std::uint64_t sum = 0;
    for (const auto &pc : comps_) {
        const stats::Vector &v =
            phase_idx < 0 ? pc.total : *pc.phase[std::size_t(phase_idx)];
        sum += v.value(std::size_t(c));
    }
    return sum;
}

int
CycleProfiler::phaseIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < phaseNames_.size(); ++i) {
        if (phaseNames_[i] == name) {
            return int(i);
        }
    }
    return -1;
}

unsigned
CycleProfiler::partitionId(std::size_t i) const
{
    return parts_.at(i).id;
}

std::uint64_t
CycleProfiler::partitionCycles(std::size_t i, CycleClass c) const
{
    return parts_.at(i).total.value(std::size_t(c));
}

double
CycleProfiler::partitionLoadImbalance() const
{
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    for (const auto &pp : parts_) {
        const std::uint64_t busy =
            pp.total.value(std::size_t(CycleClass::Busy));
        max = std::max(max, busy);
        sum += busy;
    }
    if (sum == 0 || parts_.empty()) {
        return 1.0;
    }
    const double mean = double(sum) / double(parts_.size());
    return double(max) / mean;
}

CycleClass
CycleProfiler::topStallIn(int phase_idx) const
{
    CycleClass best = CycleClass::StallDownstreamFull;
    std::uint64_t bestCount = 0;
    for (std::size_t c = 0; c < numCycleClasses; ++c) {
        const auto cls = CycleClass(c);
        if (!isStallClass(cls)) {
            continue;
        }
        const std::uint64_t n = aggregateIn(phase_idx, cls);
        if (n > bestCount) { // Strict: ties keep the lower enum value.
            best = cls;
            bestCount = n;
        }
    }
    return best;
}

void
CycleProfiler::report(std::FILE *out, std::size_t top_n) const
{
    std::fprintf(out,
                 "cycle accounting: %s (%" PRIu64
                 " cycles observed, %zu components)\n",
                 prefix_.c_str(), observed_, comps_.size());

    const auto printLine = [&](const std::string &label,
                               const std::uint64_t (
                                   &counts)[numCycleClasses]) {
        std::uint64_t total = 0;
        for (std::size_t c = 0; c < numCycleClasses; ++c) {
            total += counts[c];
        }
        if (total == 0) {
            std::fprintf(out, "    %-18s (no cycles)\n", label.c_str());
            return;
        }
        const auto pct = [total](std::uint64_t n) {
            return 100.0 * double(n) / double(total);
        };
        std::fprintf(out, "    %-18s busy %5.1f%%  idle %5.1f%%  stalls:",
                     label.c_str(),
                     pct(counts[std::size_t(CycleClass::Busy)]),
                     pct(counts[std::size_t(CycleClass::Idle)]));
        std::vector<std::pair<std::uint64_t, std::size_t>> stalls;
        for (std::size_t c = 0; c < numCycleClasses; ++c) {
            if (isStallClass(CycleClass(c)) && counts[c] != 0) {
                stalls.emplace_back(counts[c], c);
            }
        }
        std::sort(stalls.begin(), stalls.end(),
                  [](const auto &a, const auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        if (stalls.empty()) {
            std::fprintf(out, " none");
        }
        for (std::size_t i = 0; i < stalls.size() && i < top_n; ++i) {
            std::fprintf(out, " %s %.1f%%",
                         cycleClassName(CycleClass(stalls[i].second)),
                         pct(stalls[i].first));
        }
        std::fprintf(out, "\n");
    };

    for (int p = -1; p < int(phaseNames_.size()); ++p) {
        std::fprintf(out, "  [%s]\n",
                     p < 0 ? "run total" : phaseNames_[p].c_str());
        std::uint64_t agg[numCycleClasses] = {};
        for (const auto &pc : comps_) {
            const stats::Vector &v =
                p < 0 ? pc.total : *pc.phase[std::size_t(p)];
            for (std::size_t c = 0; c < numCycleClasses; ++c) {
                agg[c] += v.value(c);
            }
        }
        printLine("(aggregated)", agg);
        for (const auto &pc : comps_) {
            const stats::Vector &v =
                p < 0 ? pc.total : *pc.phase[std::size_t(p)];
            std::uint64_t row[numCycleClasses];
            for (std::size_t c = 0; c < numCycleClasses; ++c) {
                row[c] = v.value(c);
            }
            printLine(pc.clocked->name(), row);
        }
    }

    // Partition load: is the ParallelBsp work spread evenly? Busy
    // cycles are what a worker actually computes; everything else it
    // spends classifying or parked at the barrier.
    if (parts_.size() > 1) {
        std::fprintf(out, "  [partition load] (%zu partitions)\n",
                     parts_.size());
        std::uint64_t busySum = 0;
        for (const auto &pp : parts_) {
            busySum += pp.total.value(std::size_t(CycleClass::Busy));
        }
        for (const auto &pp : parts_) {
            const std::uint64_t busy =
                pp.total.value(std::size_t(CycleClass::Busy));
            std::fprintf(out,
                         "    partition %-3u busy %12" PRIu64
                         " (%5.1f%% of busy)  members:",
                         pp.id, busy,
                         busySum == 0
                             ? 0.0
                             : 100.0 * double(busy) / double(busySum));
            for (const Clocked *c : pp.members) {
                std::fprintf(out, " %s", c->name().c_str());
            }
            std::fprintf(out, "\n");
        }
        std::fprintf(out,
                     "    load imbalance (max/mean busy): %.2fx\n",
                     partitionLoadImbalance());
    }
}

} // namespace hwgc::telemetry
