/**
 * @file
 * Marker implementation.
 */

#include "marker.h"

#include <algorithm>

#include "runtime/object_model.h"

namespace hwgc::core
{

using runtime::StatusWord;

Marker::Marker(std::string name, const HwgcConfig &config,
               MarkQueue &mark_queue, TraceQueue &trace_queue,
               mem::MemPort *port, mem::Ptw &ptw)
    : Clocked(std::move(name)), config_(config), markQueue_(mark_queue),
      traceQueue_(trace_queue), port_(port), ptw_(ptw),
      tlb_(this->name() + ".tlb", config.unitTlbEntries),
      markBitCache_(config.markBitCacheEntries),
      slots_(config.markerSlots),
      waiters_(std::max(1u, config.markerWalkWaiters))
{
    hasFastForward_ = true; // Accrues tlbMissStalls over skipped spans.
    panic_if(port_ == nullptr, "marker needs a memory port");
    panic_if(config_.markerSlots == 0, "marker needs request slots");
    ptwPort_ = ptw_.registerRequester(this, this->name());
}

bool
Marker::idle() const
{
    if (waitersActive_ != 0) {
        return false;
    }
    for (const auto &slot : slots_) {
        if (slot.state != SlotState::Free) {
            return false;
        }
    }
    return true;
}

int
Marker::findFreeSlot() const
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].state == SlotState::Free) {
            return int(i);
        }
    }
    return -1;
}

void
Marker::onResponse(const mem::MemResponse &resp, Tick now)
{
    pokeWakeup();
    (void)now;
    if (resp.req.isWrite()) {
        return; // Write-back ack; the slot was already released.
    }
    panic_if(resp.req.tag >= slots_.size(), "bad marker tag");
    Slot &slot = slots_[resp.req.tag];
    panic_if(slot.state != SlotState::AwaitRead,
             "marker response for idle slot");
    panic_if(inFlightReads_ == 0, "marker in-flight underflow");
    --inFlightReads_;

    const Word old_header = resp.rdata[0];
    panic_if(!StatusWord::live(old_header),
             "marker read a non-live header at %#llx",
             (unsigned long long)slot.ref);

    if (StatusWord::marked(old_header)) {
        // Already marked: elide the write-back, free the slot. Still
        // remember the reference — the cache filters *recently
        // accessed* objects (paper §V-C), and hot objects are mostly
        // seen via repeat accesses.
        markBitCache_.insert(slot.ref);
        ++alreadyMarked_;
        ++writebacksElided_;
        slot.state = SlotState::Free;
        return;
    }

    ++newlyMarked_;
    slot.newHeader = old_header | StatusWord::markBit;
    slot.needWriteback = true;
    slot.numRefs = StatusWord::numRefs(old_header);
    slot.needTracePush = slot.numRefs > 0;
    slot.state = SlotState::Finish;
    markBitCache_.insert(slot.ref);
}

void
Marker::finishSlots(Tick now)
{
    for (auto &slot : slots_) {
        if (slot.state != SlotState::Finish) {
            continue;
        }
        if (slot.needWriteback) {
            mem::MemRequest wb;
            wb.paddr = slot.paddr;
            wb.size = wordBytes;
            wb.op = mem::Op::Write;
            wb.wdata[0] = slot.newHeader;
            wb.tag = std::uint64_t(&slot - slots_.data());
            if (!port_->canSend(wb)) {
                continue;
            }
            port_->send(wb, now);
            slot.needWriteback = false;
        }
        if (slot.needTracePush) {
            if (!traceQueue_.canPush()) {
                continue;
            }
            traceQueue_.push({slot.ref, slot.numRefs});
            slot.needTracePush = false;
        }
        slot.state = SlotState::Free;
    }
}

bool
Marker::issueRead(Addr ref, Addr pa, Tick now)
{
    const int idx = findFreeSlot();
    if (idx < 0) {
        return false;
    }
    mem::MemRequest req;
    req.paddr = pa;
    req.size = wordBytes;
    req.op = mem::Op::Read;
    req.tag = std::uint64_t(idx);
    if (!port_->canSend(req)) {
        return false;
    }
    Slot &slot = slots_[idx];
    slot.state = SlotState::AwaitRead;
    slot.ref = ref;
    slot.paddr = pa;
    port_->send(req, now);
    ++inFlightReads_;
    ++marksIssued_;
    DPRINTF(now, "Marker", "%s: mark read ref=%#llx pa=%#llx slot=%d",
            name().c_str(), (unsigned long long)ref,
            (unsigned long long)pa, idx);
    return true;
}

void
Marker::issue(Tick now)
{
    // Ready walk waiters have priority (their references are oldest).
    for (auto &waiter : waiters_) {
        if (waiter.valid && waiter.ready) {
            if (issueRead(waiter.ref, waiter.pa, now)) {
                waiter.valid = false;
                --waitersActive_;
            }
            return; // One issue per cycle.
        }
    }

    if (!markQueue_.canDequeue()) {
        return;
    }
    // Hit-under-miss: keep issuing TLB hits while up to N misses walk;
    // a full waiter station stalls the marker (the Fig 17/§VI-A TLB
    // serialization bottleneck).
    if (waitersActive_ >= waiters_.size()) {
        ++tlbMissStalls_;
        return;
    }
    if (findFreeSlot() < 0) {
        return;
    }
    mem::MemRequest probe;
    probe.size = wordBytes;
    if (!port_->canSend(probe)) {
        return;
    }

    const Addr ref = markQueue_.dequeue();
    if (profileTargets_) {
        ++targetProfile_[ref];
    }
    if (markBitCache_.enabled() && markBitCache_.contains(ref)) {
        ++markCacheHits_;
        return; // Filtered: known recently marked.
    }

    if (const auto pa = tlb_.lookup(ref)) {
        const bool sent = issueRead(ref, *pa, now);
        panic_if(!sent, "marker issue failed after resource check");
        return;
    }

    // TLB miss: park the reference and request a (serialized) walk.
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
        WalkWaiter &waiter = waiters_[i];
        if (waiter.valid) {
            continue;
        }
        waiter.valid = true;
        waiter.walkRequested = false;
        waiter.ready = false;
        waiter.ref = ref;
        ++waitersActive_;
        break;
    }
}

mem::Ptw::WalkCallback
Marker::walkCallback(std::uint64_t token)
{
    const std::size_t i = std::size_t(token);
    panic_if(i >= waiters_.size(), "bad marker walk token %llu",
             (unsigned long long)token);
    return [this, i](bool valid, Addr va, Addr pa, unsigned page_bits) {
        fatal_if(!valid, "GC unit touched unmapped VA %#llx",
                 (unsigned long long)va);
        tlb_.insert(va, pa, page_bits);
        WalkWaiter &w = waiters_[i];
        panic_if(!w.valid || w.ready, "stale marker walk callback");
        w.pa = pa;
        w.ready = true;
    };
}

void
Marker::tick(Tick now)
{
    finishSlots(now);

    // Launch walks for parked references as the PTW frees up.
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
        WalkWaiter &waiter = waiters_[i];
        if (!waiter.valid || waiter.walkRequested || waiter.ready ||
            !ptw_.canRequest(ptwPort_)) {
            continue;
        }
        waiter.walkRequested = true;
        ptw_.requestWalk(ptwPort_, waiter.ref, now, walkCallback(i), i);
    }

    issue(now);
}

Tick
Marker::nextWakeup(Tick now) const
{
    // Every issue path needs the memory port; probe it once. While it
    // is full, retry ticks are no-ops: the port drains inside a
    // bus/cache tick and every executed cycle re-polls all wakeups.
    mem::MemRequest probe;
    probe.size = wordBytes;
    const bool can_send = port_->canSend(probe);

    for (const auto &slot : slots_) {
        if (slot.state != SlotState::Finish) {
            continue;
        }
        if (slot.needWriteback) {
            if (can_send) {
                return now; // Write-back can retire.
            }
            continue; // Blocked on the port.
        }
        if (!slot.needTracePush || traceQueue_.canPush()) {
            return now; // Trace push (or plain free) can retire.
        }
        // Otherwise blocked on trace-queue space (a tracer tick pops).
    }
    const bool slot_free = findFreeSlot() >= 0;
    for (const auto &waiter : waiters_) {
        if (!waiter.valid) {
            continue;
        }
        if (waiter.ready) {
            if (slot_free && can_send) {
                return now; // Parked reference can issue.
            }
            continue; // Blocked on a slot or the port.
        }
        if (!waiter.walkRequested && ptw_.canRequest(ptwPort_)) {
            return now; // A walk can be launched.
        }
    }
    if (markQueue_.canDequeue() && waitersActive_ < waiters_.size() &&
        slot_free && can_send) {
        // Note this fires even when the marker itself is idle: the
        // mark queue's entries are pulled from here. The waiters-full
        // TLB stall is *not* a wakeup — tlbMissStalls accrues in
        // fastForward() and the unblocking walk callback runs inside
        // a PTW tick, which re-polls every component.
        return now;
    }
    // Remaining states (reads in flight, walks pending, stalls on the
    // port / slots / waiter station / trace queue) progress only
    // through other components' ticks or response callbacks.
    return maxTick;
}

CycleClass
Marker::cycleClass(Tick now) const
{
    if (nextWakeup(now) <= now) {
        return CycleClass::Busy;
    }
    // Not due: attribute the stall, most-downstream blockage first.
    // Each branch mirrors one "continue" in nextWakeup(): whatever
    // kept that wakeup from firing is what this cycle waited on.
    const bool slot_free = findFreeSlot() >= 0;
    for (const auto &slot : slots_) {
        if (slot.state != SlotState::Finish) {
            continue;
        }
        // A finish slot that could retire would be due; it is blocked
        // on the memory port (write-back) or the trace queue (push).
        return slot.needWriteback ? CycleClass::StallBus
                                  : CycleClass::StallDownstreamFull;
    }
    for (const auto &waiter : waiters_) {
        if (waiter.valid && waiter.ready) {
            // A translated reference that cannot issue: every slot is
            // held by an in-flight status-word read, or the port is
            // full.
            return slot_free ? CycleClass::StallBus
                             : CycleClass::StallMarkbit;
        }
    }
    if (markQueue_.canDequeue()) {
        if (waitersActive_ >= waiters_.size()) {
            return CycleClass::StallPtw; // TLB-walk serialization.
        }
        if (!slot_free) {
            return CycleClass::StallMarkbit;
        }
        return CycleClass::StallBus; // Port full (else it were due).
    }
    if (waitersActive_ != 0) {
        return CycleClass::StallPtw; // Walks pending or in flight.
    }
    if (inFlightReads_ != 0) {
        return CycleClass::StallMarkbit; // Status-word reads in flight.
    }
    return markQueue_.empty() ? CycleClass::Idle
                              : CycleClass::StallUpstreamEmpty;
}

void
Marker::fastForward(Tick from, Tick to)
{
    // The dense kernel counts one TLB-miss stall per cycle the marker
    // spends with dequeueable work but a full walk-waiter station.
    // That state is frozen across cycles the kernel skips us (only
    // ticks mutate it), so the skipped span accrues in one step —
    // unless a ready waiter is parked: dense ticks stop at the ready
    // waiter before the stall check and count nothing.
    if (!markQueue_.canDequeue() || waitersActive_ < waiters_.size()) {
        return;
    }
    for (const auto &waiter : waiters_) {
        if (waiter.valid && waiter.ready) {
            return;
        }
    }
    tlbMissStalls_ += to - from;
}

void
Marker::save(checkpoint::Serializer &ser) const
{
    ser.putU64(slots_.size());
    for (const auto &slot : slots_) {
        ser.putU64(std::uint64_t(slot.state));
        ser.putU64(slot.ref);
        ser.putU64(slot.paddr);
        ser.putU64(slot.newHeader);
        ser.putBool(slot.needWriteback);
        ser.putBool(slot.needTracePush);
        ser.putU64(slot.numRefs);
    }
    ser.putU64(inFlightReads_);
    ser.putU64(waiters_.size());
    for (const auto &waiter : waiters_) {
        ser.putBool(waiter.valid);
        ser.putBool(waiter.walkRequested);
        ser.putBool(waiter.ready);
        ser.putU64(waiter.ref);
        ser.putU64(waiter.pa);
    }
    ser.putU64(waitersActive_);
    markBitCache_.save(ser);
    ser.putBool(profileTargets_);
    // Unordered-map iteration order is nondeterministic; sort so the
    // checkpoint image is byte-stable for a given simulator state.
    std::vector<std::pair<Addr, std::uint64_t>> profile(
        targetProfile_.begin(), targetProfile_.end());
    std::sort(profile.begin(), profile.end());
    ser.putU64(profile.size());
    for (const auto &[ref, count] : profile) {
        ser.putU64(ref);
        ser.putU64(count);
    }
    checkpoint::putStat(ser, marksIssued_);
    checkpoint::putStat(ser, alreadyMarked_);
    checkpoint::putStat(ser, newlyMarked_);
    checkpoint::putStat(ser, writebacksElided_);
    checkpoint::putStat(ser, markCacheHits_);
    checkpoint::putStat(ser, tlbMissStalls_);
    tlb_.save(ser);
}

void
Marker::restore(checkpoint::Deserializer &des)
{
    const std::uint64_t num_slots = des.getU64();
    fatal_if(num_slots != slots_.size(),
             "checkpoint '%s': marker has %llu slots but this "
             "configuration has %zu — configurations differ",
             des.origin().c_str(), (unsigned long long)num_slots,
             slots_.size());
    for (auto &slot : slots_) {
        slot.state = SlotState(des.getU64());
        slot.ref = des.getU64();
        slot.paddr = des.getU64();
        slot.newHeader = des.getU64();
        slot.needWriteback = des.getBool();
        slot.needTracePush = des.getBool();
        slot.numRefs = std::uint32_t(des.getU64());
    }
    inFlightReads_ = unsigned(des.getU64());
    const std::uint64_t num_waiters = des.getU64();
    fatal_if(num_waiters != waiters_.size(),
             "checkpoint '%s': marker has %llu walk waiters but this "
             "configuration has %zu — configurations differ",
             des.origin().c_str(), (unsigned long long)num_waiters,
             waiters_.size());
    for (auto &waiter : waiters_) {
        waiter.valid = des.getBool();
        waiter.walkRequested = des.getBool();
        waiter.ready = des.getBool();
        waiter.ref = des.getU64();
        waiter.pa = des.getU64();
    }
    waitersActive_ = unsigned(des.getU64());
    markBitCache_.restore(des);
    profileTargets_ = des.getBool();
    targetProfile_.clear();
    const std::uint64_t profile_size = des.getU64();
    for (std::uint64_t i = 0; i < profile_size; ++i) {
        const Addr ref = des.getU64();
        targetProfile_[ref] = des.getU64();
    }
    checkpoint::getStat(des, marksIssued_);
    checkpoint::getStat(des, alreadyMarked_);
    checkpoint::getStat(des, newlyMarked_);
    checkpoint::getStat(des, writebacksElided_);
    checkpoint::getStat(des, markCacheHits_);
    checkpoint::getStat(des, tlbMissStalls_);
    tlb_.restore(des);
}

void
Marker::reset()
{
    panic_if(!idle(), "marker reset while active");
    tlb_.flush();
    markBitCache_.clear();
    targetProfile_.clear();
}

void
Marker::resetStats()
{
    marksIssued_.reset();
    alreadyMarked_.reset();
    newlyMarked_.reset();
    writebacksElided_.reset();
    markCacheHits_.reset();
    tlbMissStalls_.reset();
    tlb_.resetStats();
}

} // namespace hwgc::core
