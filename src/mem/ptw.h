/**
 * @file
 * The blocking hardware page-table walker shared by the GC unit's
 * TLBs.
 *
 * The paper's prototype has exactly one blocking PTW backed by an
 * 8 KiB cache ("the PTW is backed by an 8KB cache, to hold the top
 * levels of the page table") and identifies it as a bottleneck:
 * "as the TLB and page table walker are blocking, TLB misses can
 * serialize execution" (§VI-A). This model reproduces that: one walk
 * in progress at a time, per-level PTE fetches issued through a
 * MemPort (either the PTW's private cache, or the shared unit cache
 * in the Fig 18a configuration), and a shared 128-entry L2 TLB
 * consulted before walking.
 */

#ifndef HWGC_MEM_PTW_H
#define HWGC_MEM_PTW_H

#include <deque>
#include <functional>

#include "mem/page_table.h"
#include "mem/port.h"
#include "mem/tlb.h"
#include "sim/clocked.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** PTW configuration. */
struct PtwParams
{
    unsigned l2TlbEntries = 128;  //!< Shared L2 TLB (paper baseline).
    Tick l2TlbLatency = 2;        //!< L2 TLB hit latency.
    unsigned queueDepth = 16;     //!< Pending walk requests.
};

/** Blocking page-table walker with a shared L2 TLB. */
class Ptw : public Clocked, public MemResponder
{
  public:
    /**
     * Completion callback: (valid, va, pa, page_bits). Invalid means
     * the virtual address is unmapped — a configuration error for the
     * GC unit, surfaced to the requester. page_bits is log2 of the
     * mapped page size (12 for 4 KiB pages, 21 for superpages).
     */
    using WalkCallback = std::function<void(bool, Addr, Addr, unsigned)>;

    /**
     * Re-creates a walk callback from its (owner, token) identity when
     * a checkpoint is restored. @p owner is the requesting component's
     * name; @p token is requester-defined (e.g. a slot index).
     */
    using CallbackResolver =
        std::function<WalkCallback(const std::string &owner,
                                   std::uint64_t token)>;

    /**
     * @param port Where PTE fetches are sent (the walker does not own
     *        it). Must be wired so responses come back to this Ptw.
     */
    Ptw(std::string name, const PtwParams &params,
        const PageTable &page_table, MemPort *port);

    /** True if another walk request can be queued. */
    bool canRequest() const { return queue_.size() < params_.queueDepth; }

    /**
     * Queues a walk for @p va; @p cb fires when it resolves.
     *
     * Callbacks are opaque closures and cannot be serialized, so each
     * request also carries its identity — the requester's component
     * name (@p owner) plus a requester-defined @p token — from which
     * the CallbackResolver re-creates the closure after a checkpoint
     * restore. Requests without an owner work normally but make the
     * containing system un-checkpointable while in flight.
     */
    void requestWalk(Addr va, WalkCallback cb, std::string owner = {},
                     std::uint64_t token = 0);

    /** Installs the restore-time (owner, token) -> callback factory. */
    void
    setCallbackResolver(CallbackResolver resolver)
    {
        resolver_ = std::move(resolver);
    }

    // MemResponder interface (PTE fetch completions).
    void onResponse(const MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override;
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** The shared second-level TLB (flush between phases). */
    TlbArray &l2Tlb() { return l2Tlb_; }

    /**
     * Retargets the walker at another tenant's page table (fleet
     * time-multiplexing). Callers must flush the TLBs and ensure no
     * walk is in flight — this is part of the §VII context switch.
     */
    void
    setPageTable(const PageTable &page_table)
    {
        panic_if(walking_ || !queue_.empty(),
                 "ptw retargeted with a walk in flight");
        pageTable_ = &page_table;
    }

    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t walksStarted() const { return walks_.value(); }
    std::uint64_t l2TlbHits() const { return l2Hits_.value(); }
    std::uint64_t pteFetches() const { return pteFetches_.value(); }
    /** @} */

    /** Registers the walker's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&walks_);
        g.add(&l2Hits_);
        g.add(&pteFetches_);
    }

  private:
    struct WalkRequest
    {
        Addr va = 0;
        WalkCallback cb;
        std::string owner;        //!< Requester name (restore identity).
        std::uint64_t token = 0;  //!< Requester-defined (restore identity).
    };

    struct PendingCallback
    {
        Tick readyAt;
        bool valid;
        Addr va;
        Addr pa;
        unsigned pageBits;
        WalkCallback cb;
        std::string owner;
        std::uint64_t token = 0;
    };

    /** Issues the PTE fetch for the current level if the port has room. */
    void issueLevel(Tick now);

    void finishWalk(bool valid, Addr pa, unsigned page_bits, Tick now);

    /** Rebuilds a callback from its saved identity via the resolver. */
    WalkCallback resolveCallback(const std::string &owner,
                                 std::uint64_t token,
                                 const std::string &origin) const;

    PtwParams params_;
    const PageTable *pageTable_;
    MemPort *port_;
    TlbArray l2Tlb_;

    std::deque<WalkRequest> queue_;
    std::deque<PendingCallback> pendingCallbacks_;

    // Current walk state.
    bool walking_ = false;
    bool awaitingResponse_ = false;
    WalkRequest current_;
    PageTable::WalkResult walkPlan_;
    unsigned level_ = 0;

    CallbackResolver resolver_;

    stats::Scalar walks_{"walks"};
    stats::Scalar l2Hits_{"l2TlbHits"};
    stats::Scalar pteFetches_{"pteFetches"};
};

} // namespace hwgc::mem

#endif // HWGC_MEM_PTW_H
