#!/usr/bin/env python3
"""Compare two directories of BENCH_<name>.json perf records.

Usage: bench_compare.py BASELINE_DIR NEW_DIR

Each record (written by the bench binaries under --bench-out=, schema
in bench/bench_util.h) carries deterministic integer metrics
(simulated cycles, counts) plus the profiler's per-phase cycle-class
attribution, and an advisory host wall-clock.

Exit status is nonzero if any metric or attribution entry differs
(simulation is deterministic, so the compare is exact), or if a
baseline record is missing from NEW_DIR. Host wall-clock changes and
records present only in NEW_DIR produce warnings, never failures —
wall clock depends on the machine, and a brand-new bench has no
baseline yet.
"""

import argparse
import json
import sys
from pathlib import Path

# Relative host-seconds drift above which a warning is printed.
HOST_WARN_RATIO = 0.25


def load_records(directory):
    records = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        with open(path) as f:
            data = json.load(f)
        if data.get("schema") != 1:
            sys.exit(f"error: {path}: unsupported schema "
                     f"{data.get('schema')!r}")
        records[data["bench"]] = data
    return records


def flatten_attribution(record):
    """{phase: {class: cycles}} -> {(phase, class): cycles}."""
    flat = {}
    for phase, classes in record.get("attribution", {}).items():
        for cls, cycles in classes.items():
            flat[(phase, cls)] = cycles
    return flat


def compare_record(name, base, new):
    failures = []
    base_metrics = base.get("metrics", {})
    new_metrics = new.get("metrics", {})
    for label in sorted(set(base_metrics) | set(new_metrics)):
        old_v = base_metrics.get(label)
        new_v = new_metrics.get(label)
        if old_v != new_v:
            failures.append(
                f"{name}: metric '{label}': baseline {old_v} != new {new_v}")

    base_attr = flatten_attribution(base)
    new_attr = flatten_attribution(new)
    for key in sorted(set(base_attr) | set(new_attr)):
        old_v = base_attr.get(key, 0)
        new_v = new_attr.get(key, 0)
        if old_v != new_v:
            phase, cls = key
            failures.append(f"{name}: attribution {phase}/{cls}: "
                            f"baseline {old_v} != new {new_v}")

    old_host = base.get("host_seconds", 0.0)
    new_host = new.get("host_seconds", 0.0)
    if old_host > 0 and new_host > 0:
        ratio = new_host / old_host
        if abs(ratio - 1.0) > HOST_WARN_RATIO:
            print(f"warning: {name}: host wall-clock {old_host:.2f}s -> "
                  f"{new_host:.2f}s ({ratio:.2f}x); advisory only")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="committed bench/baseline dir")
    parser.add_argument("new", help="freshly produced --bench-out dir")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    new = load_records(args.new)
    if not baseline:
        sys.exit(f"error: no BENCH_*.json records in {args.baseline}")

    failures = []
    for name in sorted(baseline):
        if name not in new:
            failures.append(f"{name}: record missing from {args.new} "
                            "(bench not run or failed to write)")
            continue
        failures.extend(compare_record(name, baseline[name], new[name]))
    for name in sorted(set(new) - set(baseline)):
        print(f"warning: {name}: new record has no baseline; commit "
              f"{args.new}/BENCH_{name}.json to bench/baseline/")

    if failures:
        print(f"\n{len(failures)} deterministic difference(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        print("\nIf the change is intended, refresh the baselines: "
              "run each bench with --bench-out=bench/baseline and "
              "commit the result.")
        return 1
    print(f"bench_compare: {len(baseline)} record(s) match baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
