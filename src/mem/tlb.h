/**
 * @file
 * A fully-associative, LRU TLB array (lookup structure only).
 *
 * The traversal unit's marker and tracer each own a 32-entry TLB and
 * share a 128-entry L2 TLB and a blocking page-table walker (paper
 * §VI-A: "the TLB and page table walker are blocking, TLB misses can
 * serialize execution"). Timing — stalling on walks — is applied by
 * the owning component; this class only resolves hits/misses.
 */

#ifndef HWGC_MEM_TLB_H
#define HWGC_MEM_TLB_H

#include <optional>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hwgc::mem
{

/** Fully-associative translation lookaside buffer. */
class TlbArray
{
  public:
    /**
     * @param name Statistics name.
     * @param entries Capacity (32 for unit TLBs, 128 for shared L2).
     */
    TlbArray(std::string name, unsigned entries)
        : name_(std::move(name)), entries_(entries)
    {
        panic_if(entries_ == 0, "TLB needs at least one entry");
    }

    /** Looks up @p va; returns the translated PA on a hit. Entries
     *  may cover 4 KiB pages or 2 MiB superpages (paper §VII). */
    std::optional<Addr>
    lookup(Addr va)
    {
        for (auto &e : slots_) {
            const Addr mask = (Addr(1) << e.pageBits) - 1;
            if ((va & ~mask) == e.vpage) {
                e.lastUse = ++useCounter_;
                ++hits_;
                return e.ppage + (va & mask);
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Installs a translation, evicting LRU if full. */
    void
    insert(Addr va, Addr pa, unsigned page_bits = 12)
    {
        const Addr mask = (Addr(1) << page_bits) - 1;
        const Addr vpage = va & ~mask;
        const Addr ppage = pa & ~mask;
        for (auto &e : slots_) {
            if (e.vpage == vpage && e.pageBits == page_bits) {
                e.ppage = ppage;
                e.lastUse = ++useCounter_;
                return;
            }
        }
        if (slots_.size() < entries_) {
            slots_.push_back({vpage, ppage, page_bits, ++useCounter_});
            return;
        }
        Entry *lru = &slots_.front();
        for (auto &e : slots_) {
            if (e.lastUse < lru->lastUse) {
                lru = &e;
            }
        }
        *lru = {vpage, ppage, page_bits, ++useCounter_};
    }

    /** Like lookup(), but also reports the matching entry's page
     *  size (needed to propagate superpage reach between TLB levels). */
    std::optional<std::pair<Addr, unsigned>>
    lookupEntry(Addr va)
    {
        for (auto &e : slots_) {
            const Addr mask = (Addr(1) << e.pageBits) - 1;
            if ((va & ~mask) == e.vpage) {
                e.lastUse = ++useCounter_;
                ++hits_;
                return std::make_pair(e.ppage + (va & mask),
                                      e.pageBits);
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Drops all translations. */
    void flush() { slots_.clear(); }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Registers this TLB's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&hits_);
        g.add(&misses_);
    }

    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

    const std::string &name() const { return name_; }

    /** Serializes the translation array and hit/miss statistics. */
    void
    save(checkpoint::Serializer &ser) const
    {
        ser.putU64(useCounter_);
        ser.putU64(slots_.size());
        for (const auto &e : slots_) {
            ser.putU64(e.vpage);
            ser.putU64(e.ppage);
            ser.putU64(e.pageBits);
            ser.putU64(e.lastUse);
        }
        checkpoint::putStat(ser, hits_);
        checkpoint::putStat(ser, misses_);
    }

    void
    restore(checkpoint::Deserializer &des)
    {
        useCounter_ = des.getU64();
        const std::uint64_t count = des.getU64();
        fatal_if(count > entries_,
                 "checkpoint '%s': TLB '%s' holds %llu entries but has "
                 "capacity %u — configurations differ",
                 des.origin().c_str(), name_.c_str(),
                 (unsigned long long)count, entries_);
        slots_.clear();
        slots_.reserve(std::size_t(count));
        for (std::uint64_t i = 0; i < count; ++i) {
            Entry e;
            e.vpage = des.getU64();
            e.ppage = des.getU64();
            e.pageBits = unsigned(des.getU64());
            e.lastUse = des.getU64();
            slots_.push_back(e);
        }
        checkpoint::getStat(des, hits_);
        checkpoint::getStat(des, misses_);
    }

  private:
    struct Entry
    {
        Addr vpage = 0;
        Addr ppage = 0;
        unsigned pageBits = 12;
        std::uint64_t lastUse = 0;
    };

    std::string name_;
    unsigned entries_;
    std::vector<Entry> slots_;
    std::uint64_t useCounter_ = 0;

    stats::Scalar hits_{"hits"};
    stats::Scalar misses_{"misses"};
};

} // namespace hwgc::mem

#endif // HWGC_MEM_TLB_H
