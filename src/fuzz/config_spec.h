/**
 * @file
 * Textual accelerator-configuration specs ("mq=32,mshrs=2,mem=ideal")
 * shared by the fuzz differ's config grid, the fuzz_driver CLI, and
 * the what-if farm's worker protocol (DESIGN.md §11). A spec names
 * only the knobs it changes; everything else keeps the paper's
 * baseline design point from HwgcConfig's defaults.
 */

#ifndef HWGC_FUZZ_CONFIG_SPEC_H
#define HWGC_FUZZ_CONFIG_SPEC_H

#include <string>
#include <vector>

#include "core/hwgc_config.h"

namespace hwgc::fuzz
{

/**
 * Applies a comma-separated "key=value,..." spec onto @p config.
 * Keys: mq, spillq, throttle, comp, slots, waiters, mbc, tq, pend,
 * utlb, sweep, stlb, shared, mshrs, ptwmshrs, mem (ddr3|ideal), bw
 * (bus throttle bytes/cycle, 0 = off), kernel (dense|event|parallel),
 * threads, devices (fleet-shape device array size, >= 1). An empty
 * spec is valid and changes nothing.
 * @return false (with a message in @p err) on any unknown key or
 *         malformed value; @p config may be partially updated then.
 */
bool applyConfigSpec(core::HwgcConfig &config, const std::string &spec,
                     std::string *err);

/** A named grid point. */
struct ConfigPoint
{
    std::string name;
    std::string spec;
};

/**
 * The CI-speed grid: the baseline design point plus a small-queue
 * point that forces mark-queue spills, both on the ideal memory
 * model so 200 seeds stay inside a smoke-test budget.
 */
std::vector<ConfigPoint> quickGrid();

/**
 * The thorough grid: quick plus DDR3 timing, bandwidth caps, MSHR
 * starvation, a shared-cache point and compressed references.
 */
std::vector<ConfigPoint> fullGrid();

} // namespace hwgc::fuzz

#endif // HWGC_FUZZ_CONFIG_SPEC_H
