# Empty dependencies file for bench_ext_superpages.
# This may be replaced when dependencies are built.
