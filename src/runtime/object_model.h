/**
 * @file
 * The heap object encoding, bit-compatible in spirit with the paper's
 * JikesRVM integration (Fig 11) and bidirectional layout (Fig 6b).
 *
 * A cell inside a size-classed block is laid out as:
 *
 *     cell[0]          cell-start word (replicated #REFS, or free link)
 *     cell[1 .. n]     n = #REFS reference slots
 *     cell[n+1]        status word — object references point HERE
 *     cell[n+2 ..]     non-reference payload words
 *
 * Key property (paper §IV-A idea II): because the status word encodes
 * both the mark bit and #REFS, the marker can mark an object and learn
 * the number of outbound references with a single atomic fetch-or.
 * The reference slots sit contiguously below the header (bidirectional
 * layout, idea I), so the tracer copies them with unit-stride reads.
 * The cell-start word replicates #REFS so the reclamation unit can
 * scan blocks linearly (paper §V-A: "we also replicate the reference
 * count at the beginning of the array").
 */

#ifndef HWGC_RUNTIME_OBJECT_MODEL_H
#define HWGC_RUNTIME_OBJECT_MODEL_H

#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc::runtime
{

/** An object reference: the virtual address of the status word. */
using ObjRef = Addr;

/** The null reference. */
constexpr ObjRef nullRef = 0;

/** Object layout strategies (Fig 6). */
enum class Layout
{
    Bidirectional, //!< Paper's co-designed layout (Fig 6b).
    Tib,           //!< Conventional TIB-based layout (Fig 6a), for
                   //!< the layout ablation.
};

/** Status-word (header) encoding. */
struct StatusWord
{
    static constexpr Word markBit = 1ULL << 0;
    static constexpr Word tagBit = 1ULL << 1;  //!< 1 for any live cell.
    static constexpr Word arrayBit = 1ULL << 2;
    static constexpr unsigned typeIdShift = 8;
    static constexpr unsigned typeIdWidth = 16;
    static constexpr unsigned numRefsShift = 32;
    static constexpr unsigned numRefsWidth = 31;
    static constexpr Word arrayFlagMsb = 1ULL << 63; //!< MSB of the
                                                     //!< 32-bit #REFS
                                                     //!< field (paper).

    /** Builds an unmarked live status word. */
    static Word
    make(std::uint32_t num_refs, std::uint16_t type_id, bool is_array)
    {
        panic_if(num_refs >= (1U << 31), "too many references");
        Word w = tagBit;
        if (is_array) {
            w |= arrayBit | arrayFlagMsb;
        }
        w |= Word(type_id) << typeIdShift;
        w |= Word(num_refs) << numRefsShift;
        return w;
    }

    static bool marked(Word w) { return (w & markBit) != 0; }
    static bool live(Word w) { return (w & tagBit) != 0; }
    static bool isArray(Word w) { return (w & arrayBit) != 0; }

    static std::uint32_t
    numRefs(Word w)
    {
        return std::uint32_t(bits(w, numRefsShift, numRefsWidth));
    }

    static std::uint16_t
    typeId(Word w)
    {
        return std::uint16_t(bits(w, typeIdShift, typeIdWidth));
    }
};

/** Cell-start word encoding (paper Fig 11, "#REFS | 101"). */
struct CellStart
{
    static constexpr Word liveBits = 0b101; //!< LSB=1 marks live cells.
    static constexpr Word liveMask = 0b111;

    /** Cell-start word of a live object. */
    static Word
    makeLive(std::uint32_t num_refs)
    {
        return (Word(num_refs) << 3) | liveBits;
    }

    /** Cell-start word of a free cell: link to the next free cell. */
    static Word
    makeFree(Addr next_cell)
    {
        panic_if((next_cell & liveMask) != 0,
                 "free-list link must be 8-byte aligned");
        return next_cell;
    }

    /** LSB=1 means a live object with bidirectional layout. */
    static bool isLive(Word w) { return (w & 1ULL) != 0; }

    static std::uint32_t numRefs(Word w) { return std::uint32_t(w >> 3); }
    static Addr nextFree(Word w) { return w & ~liveMask; }
};

/** Geometry helpers tying references, cells and slots together. */
struct ObjectModel
{
    /** Words a live object occupies: start + refs + header + payload. */
    static std::uint64_t
    sizeWords(std::uint32_t num_refs, std::uint32_t payload_words)
    {
        return 2ULL + num_refs + payload_words;
    }

    /** Status-word address for an object whose cell starts at @p cell. */
    static ObjRef
    refFromCell(Addr cell, std::uint32_t num_refs)
    {
        return cell + (1ULL + num_refs) * wordBytes;
    }

    /** Cell base address recovered from a reference. */
    static Addr
    cellFromRef(ObjRef ref, std::uint32_t num_refs)
    {
        return ref - (1ULL + num_refs) * wordBytes;
    }

    /** Base of the reference-slot section (paper: [hdr - 8n, hdr)). */
    static Addr
    refsBase(ObjRef ref, std::uint32_t num_refs)
    {
        return ref - Addr(num_refs) * wordBytes;
    }

    /** Address of reference slot @p slot (0-based). */
    static Addr
    refSlotAddr(ObjRef ref, std::uint32_t num_refs, std::uint32_t slot)
    {
        panic_if(slot >= num_refs, "reference slot out of range");
        return refsBase(ref, num_refs) + Addr(slot) * wordBytes;
    }

    /** First payload word (after the header). */
    static Addr
    payloadBase(ObjRef ref)
    {
        return ref + wordBytes;
    }
};

} // namespace hwgc::runtime

#endif // HWGC_RUNTIME_OBJECT_MODEL_H
