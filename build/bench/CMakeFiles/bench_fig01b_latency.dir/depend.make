# Empty dependencies file for bench_fig01b_latency.
# This may be replaced when dependencies are built.
