/**
 * @file
 * Unit tests for the simulation kernel: types, logging flags, RNG,
 * statistics, and the clocked system driver.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/clocked.h"
#include "sim/logging.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hwgc
{
namespace
{

TEST(Types, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(Types, Alignment)
{
    EXPECT_EQ(alignDown(0x1a1f, 8), 0x1a18u);
    EXPECT_EQ(alignUp(0x1a1f, 8), 0x1a20u);
    EXPECT_EQ(alignDown(0x1000, 4096), 0x1000u);
    EXPECT_EQ(alignUp(0x1001, 4096), 0x2000u);
    EXPECT_EQ(alignUp(0, 64), 0u);
}

TEST(Types, Log2AndDivCeil)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(divCeil(1, 64), 1u);
}

TEST(Types, BitsExtractInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
    const std::uint64_t v = insertBits(0, 8, 8, 0xab);
    EXPECT_EQ(v, 0xab00u);
    EXPECT_EQ(insertBits(v, 8, 8, 0xcd), 0xcd00u);
}

TEST(Logging, DebugFlags)
{
    EXPECT_FALSE(Debug::enabled("TestFlag"));
    Debug::enable("TestFlag");
    EXPECT_TRUE(Debug::enabled("TestFlag"));
    EXPECT_TRUE(Debug::anyEnabled());
    Debug::disable("TestFlag");
    EXPECT_FALSE(Debug::enabled("TestFlag"));
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("user error"), testing::ExitedWithCode(1),
                "user error");
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff_seed_diff = false;
    for (int i = 0; i < 1000; ++i) {
        const auto va = a.next();
        if (va != b.next()) {
            all_equal = false;
        }
        if (va != c.next()) {
            any_diff_seed_diff = true;
        }
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += double(rng.geometric(3.0, 1000));
    }
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricZeroMean)
{
    Rng rng(1);
    EXPECT_EQ(rng.geometric(0.0, 10), 0u);
}

TEST(Rng, GeometricRespectsMax)
{
    Rng rng(15);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_LE(rng.geometric(50.0, 8), 8u);
    }
}

TEST(Rng, IndexFromCdf)
{
    Rng rng(17);
    const std::vector<double> cdf = {0.1, 0.2, 1.0};
    std::array<int, 3> counts{};
    for (int i = 0; i < 30000; ++i) {
        ++counts[rng.indexFromCdf(cdf)];
    }
    EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[2] / 30000.0, 0.8, 0.02);
}

TEST(Stats, ScalarBasics)
{
    stats::Scalar s("s");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
    s.set(42);
    EXPECT_EQ(s.value(), 42u);
}

TEST(Stats, VectorBasics)
{
    stats::Vector v("v", {"a", "b", "c"});
    v.add(0);
    v.add(1, 10);
    v.add(2, 3);
    EXPECT_EQ(v.value(0), 1u);
    EXPECT_EQ(v.value(1), 10u);
    EXPECT_EQ(v.total(), 14u);
    EXPECT_EQ(v.label(2), "c");
    v.reset();
    EXPECT_EQ(v.total(), 0u);
}

TEST(StatsDeathTest, VectorOutOfRange)
{
    stats::Vector v("v", {"a"});
    EXPECT_DEATH(v.add(1), "out of range");
}

TEST(Stats, HistogramMoments)
{
    stats::Histogram h("h");
    h.sample(1);
    h.sample(3);
    h.sample(8);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 12u);
    EXPECT_EQ(h.minValue(), 1u);
    EXPECT_EQ(h.maxValue(), 8u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h("h", 8);
    h.sample(0);
    h.sample(1000000); // Clamped into the last bucket.
    std::uint64_t total = 0;
    for (auto b : h.buckets()) {
        total += b;
    }
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Stats, TimeSeries)
{
    stats::TimeSeries ts("ts", 100);
    ts.record(5, 10);
    ts.record(99, 10);
    ts.record(100, 7);
    ts.record(950, 1);
    ASSERT_EQ(ts.buckets().size(), 10u);
    EXPECT_EQ(ts.buckets()[0], 20u);
    EXPECT_EQ(ts.buckets()[1], 7u);
    EXPECT_EQ(ts.buckets()[9], 1u);
}

TEST(Stats, GroupDump)
{
    stats::Scalar s("myScalar");
    s += 3;
    stats::Vector v("myVector", {"x"});
    v.add(0, 2);
    stats::Histogram h("myHist");
    h.sample(4);
    stats::Group g("grp");
    g.add(&s);
    g.add(&v);
    g.add(&h);
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("myScalar"), std::string::npos);
    EXPECT_NE(out.find("myVector::x"), std::string::npos);
    EXPECT_NE(out.find("myHist::mean"), std::string::npos);
}

/** A component that counts its ticks and goes idle after N. */
class Counter : public Clocked
{
  public:
    Counter(std::string name, Tick limit)
        : Clocked(std::move(name)), limit_(limit)
    {
    }

    void tick(Tick) override
    {
        if (count_ < limit_) {
            ++count_;
        }
    }

    bool busy() const override { return count_ < limit_; }

    Tick count() const { return count_; }

  private:
    Tick limit_;
    Tick count_ = 0;
};

TEST(System, StepAdvancesAllComponents)
{
    System sys;
    Counter a("a", 100), b("b", 100);
    sys.add(&a);
    sys.add(&b);
    sys.run(10);
    EXPECT_EQ(sys.now(), 10u);
    EXPECT_EQ(a.count(), 10u);
    EXPECT_EQ(b.count(), 10u);
}

TEST(System, RunUntilIdleStopsWhenAllIdle)
{
    System sys;
    Counter a("a", 5), b("b", 12);
    sys.add(&a);
    sys.add(&b);
    EXPECT_TRUE(sys.runUntilIdle(1000));
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(b.count(), 12u);
    EXPECT_LE(sys.now(), 13u);
}

TEST(System, RunUntilIdleBudgetExhausts)
{
    System sys;
    Counter never("never", maxTick);
    sys.add(&never);
    EXPECT_FALSE(sys.runUntilIdle(50));
    EXPECT_EQ(sys.now(), 50u);
}

} // namespace
} // namespace hwgc
