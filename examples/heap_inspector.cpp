/**
 * @file
 * Scenario: debugging a runtime/collector integration. Builds a heap,
 * prints its block/size-class census and a reachability summary, runs
 * the hardware GC, and dumps the unit's internal statistics — the
 * software-check workflow the paper used via its swap-in libhwgc
 * debug library (§V-E).
 *
 *   $ ./build/examples/heap_inspector [benchmark]
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "core/hwgc_device.h"
#include "gc/verifier.h"
#include "sim/stats.h"
#include "workload/dacapo.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    const std::string bench = argc > 1 ? argv[1] : "luindex";
    const auto profile = workload::dacapoProfile(bench);

    mem::PhysMem phys_mem;
    runtime::Heap heap(phys_mem);
    workload::GraphBuilder builder(heap, profile.graph);
    builder.build();

    // Heap census.
    std::printf("=== heap census: %s ===\n", bench.c_str());
    std::printf("objects: %llu, roots: %zu, allocated: %llu KiB\n",
                (unsigned long long)heap.liveObjects(),
                heap.roots().size(),
                (unsigned long long)(heap.bytesAllocated() / 1024));
    std::map<std::uint32_t, unsigned> blocks_by_class;
    for (const auto &block : heap.blocks()) {
        ++blocks_by_class[block.cellBytes];
    }
    std::printf("blocks by cell size (%zu total):\n",
                heap.blocks().size());
    for (const auto &[cell_bytes, count] : blocks_by_class) {
        std::printf("  %5u B cells: %3u blocks\n", cell_bytes, count);
    }
    std::map<runtime::Space, std::uint64_t> by_space;
    for (const auto &obj : heap.objects()) {
        ++by_space[obj.space];
    }
    std::printf("objects by space: MarkSweep %llu, LOS %llu, "
                "immortal %llu\n",
                (unsigned long long)by_space[runtime::Space::MarkSweep],
                (unsigned long long)by_space[runtime::Space::Los],
                (unsigned long long)by_space[runtime::Space::Immortal]);

    const auto reachable = heap.computeReachable();
    std::printf("reachable (oracle): %zu of %llu (%.1f%%)\n",
                reachable.size(),
                (unsigned long long)heap.liveObjects(),
                100.0 * double(reachable.size()) /
                    double(heap.liveObjects()));

    // Run the unit and dump its statistics.
    core::HwgcConfig config;
    core::HwgcDevice device(phys_mem, heap.pageTable(), config);
    device.configure(heap);
    const auto mark = device.runMark();
    const auto sweep = device.runSweep();

    std::printf("\n=== GC unit run ===\n");
    std::printf("mark: %.3f ms, sweep: %.3f ms\n",
                double(mark.cycles) / 1e6, double(sweep.cycles) / 1e6);

    // Every component registered itself in the global registry when
    // the device was built; dump the whole hierarchy from there
    // (paths look like "system.hwgc0.marker").
    telemetry::StatsRegistry::global().dump(std::cout);

    // The software check the paper's debug libhwgc performed.
    const auto marks_ok = gc::verifyMarks(heap);
    const auto swept_ok = gc::verifySweptHeap(heap);
    std::printf("\nsoftware check: marks %s, swept heap %s\n",
                marks_ok.ok ? "OK" : marks_ok.error.c_str(),
                swept_ok.ok ? "OK" : swept_ok.error.c_str());
    return marks_ok.ok && swept_ok.ok ? 0 : 1;
}
