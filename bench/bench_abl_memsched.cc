/**
 * @file
 * Ablation — memory-access-scheduler sensitivity (paper §VI-A:
 * "our performance was significantly improved changing from FIFO MAS
 * to FR-FCFS and increasing the maximum number of outstanding reads
 * from 8 to 16", while "Rocket was insensitive to the configuration").
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Ablation: memory access scheduler",
                  "FR-FCFS + 16 reads in flight matter for the unit, "
                  "not for Rocket");

    const auto profile = workload::dacapoProfile("avrora");

    struct Variant
    {
        const char *label;
        mem::DramParams::Scheduler sched;
        unsigned maxReads;
    };
    const std::vector<Variant> variants = {
        {"FR-FCFS/16", mem::DramParams::Scheduler::FrFcfs, 16},
        {"FR-FCFS/8", mem::DramParams::Scheduler::FrFcfs, 8},
        {"FIFO/16", mem::DramParams::Scheduler::Fifo, 16},
        {"FIFO/8", mem::DramParams::Scheduler::Fifo, 8},
    };

    std::printf("  %-12s %14s %14s\n", "config", "CPU mark",
                "unit mark");
    for (const auto &v : variants) {
        driver::LabConfig config;
        config.hwgc.dram.scheduler = v.sched;
        config.hwgc.dram.maxReads = v.maxReads;
        driver::GcLab lab(profile, config);
        lab.run(3);
        std::printf("  %-12s %11.3f ms %11.3f ms\n", v.label,
                    bench::msFromCycles(lab.avgSwMarkCycles()),
                    bench::msFromCycles(lab.avgHwMarkCycles()));
    }
    return 0;
}
