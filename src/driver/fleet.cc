/**
 * @file
 * Fleet harness implementation (see fleet.h and DESIGN.md §12).
 */

#include "fleet.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "mem/dram.h"
#include "mem/ideal_mem.h"
#include "mem/interconnect.h"
#include "workload/quantile.h"

namespace hwgc::driver
{

namespace
{

/** True when every unit component of @p dev reports idle. A phase is
 *  only treated as complete once the done predicate holds AND the
 *  device's own components drained — a unit with responses still in
 *  flight must not be context-switched under its pending traffic. */
bool
unitsIdle(const core::HwgcDevice &dev)
{
    for (const Clocked *c : dev.ownComponents()) {
        if (c->busy()) {
            return false;
        }
    }
    return true;
}

/** Cycles for a millisecond budget at the 1 GHz core clock. */
Tick
cyclesFromMs(double ms)
{
    return Tick(ms * 1e6);
}

} // namespace

FleetLab::FleetLab(const FleetConfig &config,
                   const std::vector<TenantParams> &tenants)
    : config_(config),
      scheduler_(makeScheduler(config.policy)),
      mem_(config.tenantStride * std::max<std::size_t>(tenants.size(), 1))
{
    fatal_if(config_.devices == 0, "fleet needs at least one device");
    fatal_if(tenants.empty(), "fleet needs at least one tenant");
    fatal_if(config_.quantum == 0, "fleet quantum must be nonzero");
    // Compressed references pack VA>>3 into 32 bits (§V-C): every
    // tenant heap must sit below 32 GiB of shared address space.
    fatal_if(config_.hwgc.compressRefs &&
                 config_.tenantStride * tenants.size() > (1ULL << 35),
             "compressed refs cap the fleet address space at 32 GiB "
             "(%zu tenants x %llu stride exceeds it)",
             tenants.size(),
             (unsigned long long)config_.tenantStride);

    // The devices join the shared System at construction, so kernel
    // mode must be selected first (their BSP partition setup keys on
    // it).
    sys_.setMode(config_.hwgc.kernel);

    // Tenant heaps: disjoint addrBase strides of one shared PhysMem,
    // so N runtimes coexist behind one DRAM backend.
    tenants_.resize(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        Tenant &ten = tenants_[t];
        ten.params = tenants[t];
        runtime::HeapParams hp = config_.heap;
        hp.addrBase = Addr(config_.tenantStride * t);
        ten.heap = std::make_unique<runtime::Heap>(mem_, hp);
        ten.builder = std::make_unique<workload::GraphBuilder>(
            *ten.heap, ten.params.graph);
        ten.builder->build();
        ten.rng = Rng(ten.params.seed);
        // Stagger the first triggers so the fleet does not start in
        // lockstep.
        ten.nextTriggerAt = Tick(std::max(
            1.0, double(ten.params.gcPeriodCycles) *
                     (0.25 + 0.75 * ten.rng.uniform())));
    }

    // Shared memory side, created before the devices (they hold
    // references) but registered with the System after them, so the
    // registration order matches the classic device: units first,
    // then bus, then memory.
    if (config_.hwgc.memModel == core::MemModel::Ddr3) {
        auto dram = std::make_unique<mem::Dram>("dram",
                                                config_.hwgc.dram, mem_);
        dramPtr_ = dram.get();
        memory_ = std::move(dram);
    } else {
        memory_ = std::make_unique<mem::IdealMem>(
            "idealmem", config_.hwgc.ideal, mem_);
    }
    bus_ = std::make_unique<mem::Interconnect>("bus", config_.hwgc.bus,
                                               *memory_);

    auto &registry = telemetry::StatsRegistry::global();
    devices_.resize(config_.devices);
    for (unsigned d = 0; d < config_.devices; ++d) {
        Device &dev = devices_[d];
        dev.firstClient = bus_->numClients();
        core::SocContext soc;
        soc.system = &sys_;
        soc.bus = bus_.get();
        soc.memory = memory_.get();
        soc.dram = dramPtr_;
        soc.namePrefix = "hwgc" + std::to_string(d) + ".";
        soc.statsPrefix = registry.indexedPrefix("system.hwgc", d);
        soc.unitPartition = d;
        dev.device = std::make_unique<core::HwgcDevice>(
            mem_, tenants_[0].heap->pageTable(), config_.hwgc, soc);
        dev.numClients = bus_->numClients() - dev.firstClient;
    }

    sys_.add(bus_.get());
    sys_.add(memory_.get());
    sys_.declareWakeupInputs(bus_.get(), {memory_.get()});
    sys_.declareWakeupInputs(memory_.get(), {});
    for (Device &dev : devices_) {
        dev.device->declareSharedBusEdges();
    }

    if (config_.hwgc.kernel == KernelMode::ParallelBsp) {
        // Device d's units live in partition d (set by the device
        // constructor); the shared bus and memory get their own, as
        // in the classic affinity heuristic.
        sys_.setPartition(bus_.get(), config_.devices);
        sys_.setPartition(memory_.get(), config_.devices + 1);
        unsigned threads = config_.hwgc.hostThreads;
        if (threads == 0) {
            threads = telemetry::options().hostThreads;
        }
        if (threads == 0) {
            if (const char *env = std::getenv("HWGC_HOST_THREADS")) {
                threads = telemetry::parseHostThreads(
                    env, "HWGC_HOST_THREADS", 0);
            }
        }
        sys_.setHostThreads(threads);
    }

    // Per-tenant pacing: all of device d's bus clients are charged to
    // budget group d; dispatch programs the group's rate to the
    // running tenant's budget and completion disables it again.
    for (unsigned d = 0; d < config_.devices; ++d) {
        const Device &dev = devices_[d];
        for (unsigned c = 0; c < dev.numClients; ++c) {
            bus_->setClientGroup(dev.firstClient + c, d);
        }
    }

    // Shared bus/memory stats belong to the fleet, not to any device.
    const std::string prefix = registry.uniquePrefix("system.fleet");
    auto addGroup = [&](const std::string &sub) -> stats::Group & {
        statGroups_.push_back(std::make_unique<stats::Group>(sub));
        statPaths_.push_back(registry.add(prefix + "." + sub,
                                          statGroups_.back().get()));
        return *statGroups_.back();
    };
    bus_->addStats(addGroup("bus"));
    memory_->addStats(addGroup("memory"));

    stats_.resize(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        stats_[t].name = tenants_[t].params.name;
    }

    const double watchdog = telemetry::options().watchdogSecs;
    if (watchdog > 0.0) {
        sys_.setWatchdog(watchdog);
    }
}

FleetLab::~FleetLab()
{
    auto &registry = telemetry::StatsRegistry::global();
    for (const std::string &path : statPaths_) {
        registry.remove(path);
    }
}

bool
FleetLab::done() const
{
    for (const Tenant &t : tenants_) {
        if (t.gcsDone < config_.gcsPerTenant) {
            return false;
        }
    }
    return true;
}

std::uint64_t
FleetLab::totalGcs() const
{
    std::uint64_t sum = 0;
    for (const Tenant &t : tenants_) {
        sum += t.gcsDone;
    }
    return sum;
}

Tick
FleetLab::drawPeriod(Tenant &t)
{
    return Tick(std::max(1.0, double(t.params.gcPeriodCycles) *
                                  (0.75 + 0.5 * t.rng.uniform())));
}

bool
FleetLab::anyPhaseInFlight() const
{
    for (const Device &dev : devices_) {
        if (dev.phase != 0) {
            return true;
        }
    }
    return false;
}

Tick
FleetLab::nextTriggerTime() const
{
    Tick next = maxTick;
    for (const Tenant &t : tenants_) {
        if (!t.queued && !t.running &&
            t.gcsDone < config_.gcsPerTenant) {
            next = std::min(next, t.nextTriggerAt);
        }
    }
    return next;
}

void
FleetLab::pollCompletions()
{
    const Tick now = sys_.now();
    for (Device &dev : devices_) {
        if (dev.phase == 1 && dev.device->markDone() &&
            unitsIdle(*dev.device)) {
            dev.device->finishMark();
            dev.device->startSweep();
            dev.phase = 2;
            dev.sweepStartAt = now;
        }
        if (dev.phase == 2 && dev.device->sweepDone() &&
            unitsIdle(*dev.device)) {
            completeGc(dev);
        }
    }
}

void
FleetLab::enqueueTriggers()
{
    const Tick now = sys_.now();
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        Tenant &ten = tenants_[t];
        if (ten.queued || ten.running ||
            ten.gcsDone >= config_.gcsPerTenant ||
            now < ten.nextTriggerAt) {
            continue;
        }
        GcRequest req;
        req.tenant = unsigned(t);
        req.triggerAt = ten.nextTriggerAt;
        req.deadline =
            ten.nextTriggerAt + cyclesFromMs(ten.params.deadlineMs);
        pending_.push_back(req);
        ten.queued = true;
    }
}

void
FleetLab::dispatchIdle()
{
    for (;;) {
        if (pending_.empty()) {
            return;
        }
        Device *idle = nullptr;
        for (Device &dev : devices_) {
            if (dev.phase == 0) {
                idle = &dev;
                break;
            }
        }
        if (idle == nullptr) {
            return;
        }
        const std::size_t pick =
            scheduler_->pick(pending_, sys_.now());
        panic_if(pick >= pending_.size(),
                 "scheduler picked out of range");
        const GcRequest req = pending_[pick];
        pending_.erase(pending_.begin() + std::ptrdiff_t(pick));
        tenants_[req.tenant].queued = false;
        dispatch(*idle, req);
    }
}

void
FleetLab::dispatch(Device &dev, const GcRequest &req)
{
    const Tick now = sys_.now();
    Tenant &ten = tenants_[req.tenant];
    ten.running = true;

    // The runtime half of the pause: clear marks, publish roots, then
    // program the device at this tenant's heap — the §VII context
    // switch (resetPhaseState flushes unit TLBs/caches/filters).
    ten.heap->clearAllMarks();
    ten.heap->publishRoots();
    dev.device->resetPhaseState();
    dev.device->configure(*ten.heap);

    const unsigned d = unsigned(&dev - devices_.data());
    bus_->setGroupThrottle(d, ten.params.paceBytesPerCycle);

    dev.device->startMark();
    dev.tenant = req.tenant;
    dev.phase = 1;
    dev.triggerAt = req.triggerAt;
    dev.dispatchAt = now;
    dev.sweepStartAt = 0;
    stats_[req.tenant].queueCycles +=
        now >= req.triggerAt ? now - req.triggerAt : 0;
}

void
FleetLab::completeGc(Device &dev)
{
    const Tick now = sys_.now();
    Tenant &ten = tenants_[dev.tenant];
    dev.device->finishSweep();

    const unsigned d = unsigned(&dev - devices_.data());
    bus_->setGroupThrottle(d, 0.0);

    // The mutator resumes from the collected heap and churns it.
    ten.heap->onAfterSweep();
    ten.builder->mutate(ten.params.churnPerGC);
    ten.gcsDone += 1;
    ten.running = false;
    ten.nextTriggerAt = now + drawPeriod(ten);

    // Stop-the-world accounting: a synchronous pause spans from the
    // trigger (the allocating thread stalls on the full heap, queueing
    // delay included) to completion; with concurrent mark only the
    // sweep handoff stops the world.
    const Tick stw_start = scheduler_->concurrentMark()
        ? dev.sweepStartAt
        : dev.triggerAt;
    ten.pauseCycles.emplace_back(stw_start, now);
    TenantStats &s = stats_[dev.tenant];
    s.gcs = ten.gcsDone;
    s.stwCycles += now - stw_start;

    dev.tenant = noTenant;
    dev.phase = 0;
}

void
FleetLab::runUntilCycle(Tick stop_at)
{
    // Decision points must be independent of where earlier slices
    // stopped, or a split run diverges from an uninterrupted one. The
    // quantum grid is therefore anchored at absolute cycle 0, and a
    // requested stop cycle is rounded up onto that grid so resuming
    // never introduces an off-grid decision point.
    if (stop_at < maxTick - config_.quantum) {
        stop_at = (stop_at + config_.quantum - 1) / config_.quantum *
            config_.quantum;
    }
    unsigned stalls = 0;
    while (!done() && sys_.now() < stop_at) {
        pollCompletions();
        enqueueTriggers();
        dispatchIdle();
        if (done()) {
            return;
        }

        if (!anyPhaseInFlight()) {
            // Nothing in flight: jump the shared clock straight to
            // the next trigger (or the stop boundary).
            panic_if(!pending_.empty(),
                     "fleet idle with pending requests");
            const Tick next = nextTriggerTime();
            panic_if(next == maxTick,
                     "fleet idle with no future trigger");
            const Tick target = std::min(next, stop_at);
            if (target > sys_.now()) {
                sys_.run(target - sys_.now());
            }
            stalls = 0;
            continue;
        }

        const Tick before = sys_.now();
        const Tick boundary =
            (sys_.now() / config_.quantum + 1) * config_.quantum;
        const Tick target = std::min(boundary, stop_at);
        const System::StopReason reason =
            sys_.runUntilIdleStop(target);
        panic_if(reason == System::StopReason::Budget,
                 "fleet wedged: cycle budget elapsed with phases in "
                 "flight");
        if (reason == System::StopReason::Idle &&
            sys_.now() == before) {
            // The system was already idle at this boundary. One such
            // pass is legal — the phase drained exactly at the
            // quantum edge and the next pollCompletions() retires it
            // (a mark->sweep handoff makes the system busy again).
            // Repeats mean a phase that will never report done.
            panic_if(++stalls > 2,
                     "fleet wedged: system idle with a phase in "
                     "flight that never completes");
        } else {
            stalls = 0;
        }
    }
}

void
FleetLab::run()
{
    runUntilCycle(maxTick);
}

const std::vector<TenantStats> &
FleetLab::measure()
{
    const double horizon_ms = double(sys_.now()) / 1e6;
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        const Tenant &ten = tenants_[t];
        TenantStats &s = stats_[t];
        s.pausesMs.clear();
        s.pausesMs.reserve(ten.pauseCycles.size());
        for (const auto &w : ten.pauseCycles) {
            s.pausesMs.push_back(
                {double(w.first) / 1e6, double(w.second) / 1e6});
        }
        s.latency = workload::runLatencyTimeline(ten.params.latency,
                                                 s.pausesMs, horizon_ms);
        std::vector<double> sorted;
        sorted.reserve(s.latency.samples.size());
        s.sloViolations = 0;
        for (const auto &sample : s.latency.samples) {
            sorted.push_back(sample.latencyMs);
            if (sample.latencyMs > ten.params.sloMs) {
                s.sloViolations += 1;
            }
        }
        std::sort(sorted.begin(), sorted.end());
        s.p50Ms = workload::quantileSorted(sorted, 0.50);
        s.p99Ms = workload::quantileSorted(sorted, 0.99);
        s.p999Ms = workload::quantileSorted(sorted, 0.999);
        s.maxMs = sorted.back();
    }
    measured_ = true;
    return stats_;
}

std::string
FleetLab::configSignature() const
{
    std::ostringstream os;
    os << "fleet{devices=" << config_.devices
       << ",tenants=" << tenants_.size()
       << ",policy=" << gcPolicyName(config_.policy)
       << ",quantum=" << config_.quantum
       << ",gcs=" << config_.gcsPerTenant
       << ",stride=" << config_.tenantStride << ",dev{"
       << devices_[0].device->configSignature() << "}";
    for (const Tenant &t : tenants_) {
        os << ",t{" << t.params.name << ":" << t.params.seed << ":"
           << t.params.gcPeriodCycles << ":" << t.params.deadlineMs
           << ":" << t.params.paceBytesPerCycle << "}";
    }
    os << "}";
    return os.str();
}

void
FleetLab::saveCheckpoint(checkpoint::Serializer &ser) const
{
    ser.beginChunk("fleetcfg");
    ser.putString(configSignature());
    ser.endChunk();

    ser.beginChunk("driver");
    ser.putU64(pending_.size());
    for (const GcRequest &req : pending_) {
        ser.putU64(req.tenant);
        ser.putU64(req.triggerAt);
        ser.putU64(req.deadline);
    }
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        const Tenant &ten = tenants_[t];
        checkpoint::putRng(ser, ten.rng);
        ser.putU64(ten.nextTriggerAt);
        ser.putU64(ten.gcsDone);
        ser.putBool(ten.queued);
        ser.putU64(ten.pauseCycles.size());
        for (const auto &w : ten.pauseCycles) {
            ser.putU64(w.first);
            ser.putU64(w.second);
        }
        ser.putU64(stats_[t].stwCycles);
        ser.putU64(stats_[t].queueCycles);
    }
    for (const Device &dev : devices_) {
        ser.putU64(dev.tenant);
        ser.putU64(dev.phase);
        ser.putU64(dev.triggerAt);
        ser.putU64(dev.dispatchAt);
        ser.putU64(dev.sweepStartAt);
        const core::MmioRegs &regs =
            const_cast<core::HwgcDevice &>(*dev.device).regs();
        ser.putU64(regs.pageTableBase);
        ser.putU64(regs.hwgcSpaceBase);
        ser.putU64(regs.rootCount);
        ser.putU64(regs.blockTableBase);
        ser.putU64(regs.blockCount);
        ser.putU64(regs.spillBase);
        ser.putU64(regs.spillBytes);
        ser.putU64(regs.status);
    }
    ser.endChunk();

    ser.beginChunk("kernel");
    sys_.save(ser);
    ser.endChunk();

    for (const Clocked *c : sys_.components()) {
        ser.beginChunk(c->name());
        c->save(ser);
        ser.endChunk();
    }

    for (std::size_t d = 0; d < devices_.size(); ++d) {
        ser.beginChunk("hwgc" + std::to_string(d) + ".traceQueue");
        const_cast<core::HwgcDevice &>(*devices_[d].device)
            .traceQueue()
            .save(ser);
        ser.endChunk();
    }

    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        ser.beginChunk("heap" + std::to_string(t));
        tenants_[t].heap->save(ser);
        ser.endChunk();
        ser.beginChunk("builder" + std::to_string(t));
        tenants_[t].builder->save(ser);
        ser.endChunk();
    }

    ser.beginChunk("physmem");
    checkpoint::putPhysMem(ser, mem_);
    ser.endChunk();
}

void
FleetLab::restoreCheckpoint(checkpoint::Deserializer &des)
{
    des.beginChunk("fleetcfg");
    const std::string sig = des.getString();
    des.endChunk();
    fatal_if(sig != configSignature(),
             "fleet checkpoint '%s' was written by a different "
             "configuration\n  file: %s\n  this: %s",
             des.origin().c_str(), sig.c_str(),
             configSignature().c_str());

    des.beginChunk("driver");
    pending_.clear();
    const std::uint64_t num_pending = des.getU64();
    for (std::uint64_t i = 0; i < num_pending; ++i) {
        GcRequest req;
        req.tenant = unsigned(des.getU64());
        req.triggerAt = des.getU64();
        req.deadline = des.getU64();
        pending_.push_back(req);
    }
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        Tenant &ten = tenants_[t];
        checkpoint::getRng(des, ten.rng);
        ten.nextTriggerAt = des.getU64();
        ten.gcsDone = unsigned(des.getU64());
        ten.queued = des.getBool();
        ten.running = false;
        ten.pauseCycles.clear();
        const std::uint64_t num_pauses = des.getU64();
        for (std::uint64_t i = 0; i < num_pauses; ++i) {
            const Tick start = des.getU64();
            const Tick end = des.getU64();
            ten.pauseCycles.emplace_back(start, end);
        }
        stats_[t].gcs = ten.gcsDone;
        stats_[t].stwCycles = des.getU64();
        stats_[t].queueCycles = des.getU64();
    }
    std::vector<core::MmioRegs> saved_regs(devices_.size());
    for (Device &dev : devices_) {
        dev.tenant = unsigned(des.getU64());
        dev.phase = unsigned(des.getU64());
        dev.triggerAt = des.getU64();
        dev.dispatchAt = des.getU64();
        dev.sweepStartAt = des.getU64();
        core::MmioRegs &regs =
            saved_regs[std::size_t(&dev - devices_.data())];
        regs.pageTableBase = des.getU64();
        regs.hwgcSpaceBase = des.getU64();
        regs.rootCount = des.getU64();
        regs.blockTableBase = des.getU64();
        regs.blockCount = des.getU64();
        regs.spillBase = des.getU64();
        regs.spillBytes = des.getU64();
        regs.status = des.getU64();
    }
    des.endChunk();

    // Retarget every serving device at its tenant's heap *before*
    // restoring component state: the PTW page-table pointer and the
    // mark queue's spill region are configure()-time wiring, not
    // serialized state, and both retarget calls insist on empty
    // queues (true on a freshly constructed fleet, not after the
    // chunks below load a mid-phase image).
    for (Device &dev : devices_) {
        if (dev.tenant != noTenant) {
            dev.device->configure(*tenants_[dev.tenant].heap);
            tenants_[dev.tenant].running = true;
        }
    }

    des.beginChunk("kernel");
    sys_.restore(des);
    des.endChunk();

    for (Clocked *c : sys_.components()) {
        des.beginChunk(c->name());
        c->restore(des);
        des.endChunk();
    }

    for (std::size_t d = 0; d < devices_.size(); ++d) {
        des.beginChunk("hwgc" + std::to_string(d) + ".traceQueue");
        devices_[d].device->traceQueue().restore(des);
        des.endChunk();
    }

    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        des.beginChunk("heap" + std::to_string(t));
        tenants_[t].heap->restore(des);
        des.endChunk();
        des.beginChunk("builder" + std::to_string(t));
        tenants_[t].builder->restore(des);
        des.endChunk();
    }

    des.beginChunk("physmem");
    checkpoint::getPhysMem(des, mem_);
    des.endChunk();

    fatal_if(!des.atEnd(),
             "fleet checkpoint '%s': trailing data after the last "
             "expected chunk — the saving and restoring "
             "configurations differ",
             des.origin().c_str());

    // The interim configure() above recomputed registers from
    // pre-restore heap state; the saved values are authoritative.
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        devices_[d].device->regs() = saved_regs[d];
    }
    measured_ = false;
}

bool
FleetLab::writeCheckpoint(const std::string &path) const
{
    checkpoint::Serializer ser;
    saveCheckpoint(ser);
    return ser.writeFile(path);
}

void
FleetLab::restoreCheckpoint(const std::string &path)
{
    checkpoint::Deserializer des =
        checkpoint::Deserializer::fromFile(path);
    restoreCheckpoint(des);
}

} // namespace hwgc::driver
