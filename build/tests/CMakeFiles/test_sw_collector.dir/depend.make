# Empty dependencies file for test_sw_collector.
# This may be replaced when dependencies are built.
