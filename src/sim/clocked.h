/**
 * @file
 * The cycle-stepped simulation kernel.
 *
 * All timing models are Clocked components registered with a System.
 * The System advances one cycle at a time, calling tick() on every
 * component in registration order; a component that has nothing to do
 * reports idle so runUntilIdle() can terminate. One cycle of simulated
 * time is one core clock at 1 GHz (paper Table I).
 */

#ifndef HWGC_SIM_CLOCKED_H
#define HWGC_SIM_CLOCKED_H

#include <string>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc
{

class System;

/** Base class for anything evaluated once per clock cycle. */
class Clocked
{
  public:
    /** @param name A unique, human-readable instance name. */
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Evaluates one clock cycle at time @p now. */
    virtual void tick(Tick now) = 0;

    /**
     * Reports whether the component could still make progress.
     * runUntilIdle() stops once every component is idle for a cycle.
     */
    virtual bool busy() const = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * Owns the global clock and the component list. Components are
 * registered by raw pointer and must outlive the System (they are
 * typically members of the owning simulation object).
 */
class System
{
  public:
    System() = default;

    /** Registers a component; evaluation order is registration order. */
    void
    add(Clocked *c)
    {
        panic_if(c == nullptr, "System::add(nullptr)");
        components_.push_back(c);
    }

    /** Current simulated time in cycles. */
    Tick now() const { return now_; }

    /** Advances the clock by exactly one cycle. */
    void
    step()
    {
        for (auto *c : components_) {
            c->tick(now_);
        }
        ++now_;
    }

    /**
     * Runs until every component reports idle, or @p max_cycles have
     * elapsed since the call.
     *
     * @return true if the system went idle, false if the cycle budget
     *         was exhausted (which callers treat as a deadlock bug).
     */
    bool
    runUntilIdle(Tick max_cycles = 2'000'000'000ULL)
    {
        const Tick limit = now_ + max_cycles;
        while (now_ < limit) {
            bool any_busy = false;
            for (auto *c : components_) {
                if (c->busy()) {
                    any_busy = true;
                    break;
                }
            }
            if (!any_busy) {
                return true;
            }
            step();
        }
        return false;
    }

    /** Runs for exactly @p cycles cycles. */
    void
    run(Tick cycles)
    {
        for (Tick i = 0; i < cycles; ++i) {
            step();
        }
    }

  private:
    Tick now_ = 0;
    std::vector<Clocked *> components_;
};

} // namespace hwgc

#endif // HWGC_SIM_CLOCKED_H
