# Empty compiler generated dependencies file for concurrent_gc.
# This may be replaced when dependencies are built.
