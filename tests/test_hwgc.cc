/**
 * @file
 * End-to-end tests of the GC accelerator: functional equivalence with
 * the oracle and the software collector across the whole design space
 * (compression, mark-bit cache, shared cache, layouts, coupled/tagged
 * tracer, sweeper counts, memory models), plus unit-level behaviours
 * like the paper's transfer-size example.
 */

#include <gtest/gtest.h>

#include "core/hwgc_device.h"
#include "core/tracer.h"
#include "cpu/core_model.h"
#include "gc/sw_collector.h"
#include "gc/verifier.h"
#include "runtime/heap_layout.h"
#include "workload/graph_gen.h"

namespace hwgc
{
namespace
{

using core::HwgcConfig;
using runtime::HeapLayout;

TEST(Tracer, PaperTransferSizeExample)
{
    // Paper Fig 14: "If we need to copy 15 references (15x8 B) at
    // 0x1a18, we therefore issue requests of transfer sizes
    // 8, 32, 64, 16 (in this order)".
    Addr addr = 0x1a18;
    std::uint64_t remaining = 15 * 8;
    std::vector<unsigned> sizes;
    while (remaining > 0) {
        const unsigned size = core::Tracer::nextTransferSize(
            addr, remaining);
        sizes.push_back(size);
        addr += size;
        remaining -= size;
    }
    EXPECT_EQ(sizes, (std::vector<unsigned>{8, 32, 64, 16}));
}

TEST(Tracer, TransferSizesAlwaysTileExactly)
{
    for (Addr base : {0x1000ull, 0x1008ull, 0x1010ull, 0x1038ull}) {
        for (unsigned n = 1; n <= 64; ++n) {
            Addr addr = base;
            std::uint64_t remaining = std::uint64_t(n) * 8;
            unsigned guard = 0;
            while (remaining > 0) {
                const unsigned size = core::Tracer::nextTransferSize(
                    addr, remaining);
                ASSERT_TRUE(mem::validTransfer(addr, size));
                ASSERT_LE(size, remaining);
                addr += size;
                remaining -= size;
                ASSERT_LT(++guard, 100u);
            }
        }
    }
}

/** A heap + both collectors, built for one shape/seed. */
struct Rig
{
    Rig(const workload::GraphParams &graph, const HwgcConfig &config,
        runtime::Layout layout = runtime::Layout::Bidirectional)
        : heap(mem, makeHeapParams(layout)), builder(heap, graph)
    {
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
        device = std::make_unique<core::HwgcDevice>(
            mem, heap.pageTable(), config);
        device->configure(heap);
    }

    static runtime::HeapParams
    makeHeapParams(runtime::Layout layout)
    {
        runtime::HeapParams params;
        params.layout = layout;
        return params;
    }

    mem::PhysMem mem;
    runtime::Heap heap;
    workload::GraphBuilder builder;
    std::unique_ptr<core::HwgcDevice> device;
};

workload::GraphParams
testGraph(std::uint64_t seed, std::uint64_t live = 900)
{
    workload::GraphParams p;
    p.liveObjects = live;
    p.garbageObjects = live / 2;
    p.numRoots = 8;
    p.arrayFraction = 0.15;
    p.seed = seed;
    return p;
}

/**
 * Compares two physical-memory snapshots over heap state only,
 * ignoring each collector's private scratch (the CPU's in-memory mark
 * queue and the unit's spill region).
 */
bool
heapStateEqual(const mem::PhysMem::Snapshot &a,
               const mem::PhysMem::Snapshot &b, std::string *why)
{
    auto excluded = [](std::uint64_t page_idx) {
        const Addr addr = page_idx * pageBytes;
        const bool sw_queue = addr >= HeapLayout::swQueueBase &&
            addr < HeapLayout::swQueueBase + HeapLayout::swQueueSize;
        const bool spill = addr >= HeapLayout::spillBase &&
            addr < HeapLayout::spillBase + HeapLayout::spillSize;
        return sw_queue || spill;
    };
    const std::vector<std::uint8_t> zero(pageBytes, 0);
    auto page_of = [&zero](const mem::PhysMem::Snapshot &snap,
                           std::uint64_t idx)
        -> const std::vector<std::uint8_t> & {
        const auto it = snap.pages.find(idx);
        return it == snap.pages.end() ? zero : it->second;
    };
    std::set<std::uint64_t> keys;
    for (const auto &[idx, data] : a.pages) {
        keys.insert(idx);
    }
    for (const auto &[idx, data] : b.pages) {
        keys.insert(idx);
    }
    for (const auto idx : keys) {
        if (excluded(idx)) {
            continue;
        }
        if (page_of(a, idx) != page_of(b, idx)) {
            if (why != nullptr) {
                *why = "page at 0x" + [idx] {
                    std::ostringstream os;
                    os << std::hex << idx * pageBytes;
                    return os.str();
                }();
            }
            return false;
        }
    }
    return true;
}

/** Configurations spanning the design space. */
HwgcConfig
configFor(unsigned variant)
{
    HwgcConfig config;
    switch (variant) {
      case 0: // Baseline.
        break;
      case 1: // Compression (Fig 19 "Comp.").
        config.compressRefs = true;
        break;
      case 2: // Mark-bit cache (Fig 21).
        config.markBitCacheEntries = 64;
        break;
      case 3: // Tiny mark queue: heavy spilling (Fig 19).
        config.markQueueEntries = 32;
        break;
      case 4: // Shared-cache design (Fig 18a).
        config.sharedCache = true;
        break;
      case 5: // Ideal memory (Fig 17).
        config.memModel = core::MemModel::Ideal;
        break;
      case 6: // Coupled tracer ablation.
        config.decoupledTracer = false;
        break;
      case 7: // Tagged tracer ablation.
        config.tracerTagSlots = 4;
        break;
      case 8: // Four sweepers (Fig 20).
        config.numSweepers = 4;
        break;
      case 9: // FIFO memory scheduler ablation (§VI-A).
        config.dram.scheduler = mem::DramParams::Scheduler::Fifo;
        break;
      default:
        panic("unknown variant");
    }
    return config;
}

class HwgcProperty
    : public testing::TestWithParam<std::tuple<unsigned, std::uint64_t>>
{
};

TEST_P(HwgcProperty, MarksEqualOracleAndSweepIsSound)
{
    const auto [variant, seed] = GetParam();
    Rig rig(testGraph(seed), configFor(variant));
    rig.device->collect();
    const auto marks = gc::verifyMarks(rig.heap);
    EXPECT_TRUE(marks.ok) << marks.error;
    const auto swept = gc::verifySweptHeap(rig.heap);
    EXPECT_TRUE(swept.ok) << swept.error;
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, HwgcProperty,
    testing::Combine(testing::Range(0u, 10u),
                     testing::Values(101ull, 202ull)));

TEST(Hwgc, FinalMemoryMatchesSoftwareCollector)
{
    // Run the same pause through both engines; the heap images must
    // be bit-identical (marks, free lists, block summaries).
    const auto graph = testGraph(42);

    Rig rig(graph, configFor(0));
    const auto before = rig.mem.snapshot();

    mem::Dram dram("cpu.dram", mem::DramParams{}, rig.mem);
    cpu::CoreModel core("core", cpu::CoreParams{}, rig.mem,
                        rig.heap.pageTable(), dram);
    gc::SwCollector sw(rig.heap, core);
    sw.collect();
    const auto after_sw = rig.mem.snapshot();

    rig.mem.restore(before);
    rig.device->collect();
    const auto after_hw = rig.mem.snapshot();

    std::string why;
    EXPECT_TRUE(heapStateEqual(after_sw, after_hw, &why)) << why;
}

TEST(Hwgc, SweeperCountDoesNotChangeResults)
{
    const auto graph = testGraph(77);
    std::optional<mem::PhysMem::Snapshot> reference;
    for (unsigned sweepers : {1u, 2u, 5u, 8u}) {
        HwgcConfig config;
        config.numSweepers = sweepers;
        Rig rig(graph, config);
        rig.device->collect();
        const auto snap = rig.mem.snapshot();
        if (!reference) {
            reference = snap;
        } else {
            std::string why;
            EXPECT_TRUE(heapStateEqual(*reference, snap, &why))
                << sweepers << " sweepers: " << why;
        }
    }
}

TEST(Hwgc, CompressionDoesNotChangeResults)
{
    const auto graph = testGraph(88);
    Rig plain(graph, configFor(0));
    plain.device->collect();
    const auto plain_snap = plain.mem.snapshot();

    Rig comp(graph, configFor(1));
    comp.device->collect();
    std::string why;
    EXPECT_TRUE(heapStateEqual(plain_snap, comp.mem.snapshot(), &why))
        << why;
}

TEST(Hwgc, SpillStressStillCorrect)
{
    // A 32-entry queue against a 3000-object live set forces heavy
    // spill traffic.
    Rig rig(testGraph(3, 3000), configFor(3));
    rig.device->runMark();
    EXPECT_GT(rig.device->markQueue().spillWriteRequests(), 10u);
    const auto marks = gc::verifyMarks(rig.heap);
    EXPECT_TRUE(marks.ok) << marks.error;
}

TEST(Hwgc, MarkBitCacheFiltersRepeats)
{
    workload::GraphParams graph = testGraph(5);
    graph.hotObjects = 16;
    graph.hotRefFraction = 0.4;

    Rig without(graph, configFor(0));
    without.device->runMark();
    const auto issued_without = without.device->marker().marksIssued();

    Rig with(graph, configFor(2));
    with.device->runMark();
    EXPECT_GT(with.device->marker().markCacheHits(), 0u);
    EXPECT_LT(with.device->marker().marksIssued(), issued_without);
    const auto marks = gc::verifyMarks(with.heap);
    EXPECT_TRUE(marks.ok) << marks.error;
}

TEST(Hwgc, TibLayoutCostsExtraReads)
{
    const auto graph = testGraph(7);
    HwgcConfig bidir_config;
    Rig bidir(graph, bidir_config);
    bidir.device->runMark();

    HwgcConfig tib_config;
    tib_config.layout = runtime::Layout::Tib;
    Rig tib(graph, tib_config, runtime::Layout::Tib);
    tib.device->runMark();

    EXPECT_GT(tib.device->tracer().tibExtraReads(), 0u);
    EXPECT_GT(tib.device->tracer().requestsIssued(),
              bidir.device->tracer().requestsIssued());
    // Both still compute correct marks.
    const auto marks = gc::verifyMarks(tib.heap);
    EXPECT_TRUE(marks.ok) << marks.error;
}

TEST(Hwgc, DecouplingSpeedsUpTheMark)
{
    const auto graph = testGraph(9, 1500);
    Rig decoupled(graph, configFor(0));
    const auto fast = decoupled.device->runMark();
    Rig coupled(graph, configFor(6));
    const auto slow = coupled.device->runMark();
    EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(Hwgc, UntaggedTracerBeatsTaggedTracer)
{
    const auto graph = testGraph(10, 1500);
    Rig untagged(graph, configFor(0));
    const auto fast = untagged.device->runMark();
    Rig tagged(graph, configFor(7));
    const auto slow = tagged.device->runMark();
    EXPECT_LE(fast.cycles, slow.cycles);
}

TEST(Hwgc, FrFcfsBeatsFifo)
{
    // §VI-A: "performance was significantly improved changing from
    // FIFO MAS to FR-FCFS".
    const auto graph = testGraph(11, 1500);
    Rig frfcfs(graph, configFor(0));
    const auto fast = frfcfs.device->runMark();
    Rig fifo(graph, configFor(9));
    const auto slow = fifo.device->runMark();
    EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(Hwgc, StatusRegisterTransitions)
{
    Rig rig(testGraph(12, 300), configFor(0));
    EXPECT_EQ(rig.device->regs().status, core::MmioRegs::Idle);
    rig.device->runMark();
    EXPECT_EQ(rig.device->regs().status, core::MmioRegs::Idle);
    rig.device->runSweep();
    EXPECT_EQ(rig.device->regs().status, core::MmioRegs::Idle);
}

TEST(Hwgc, ConfigureProgramsRegistersFromHeap)
{
    Rig rig(testGraph(13, 300), configFor(0));
    const auto &regs = rig.device->regs();
    EXPECT_EQ(regs.pageTableBase, rig.heap.pageTable().root());
    EXPECT_EQ(regs.hwgcSpaceBase, HeapLayout::hwgcSpaceBase);
    EXPECT_EQ(regs.rootCount, rig.heap.publishedRootCount());
    EXPECT_EQ(regs.blockCount, rig.heap.blocks().size());
    EXPECT_EQ(regs.spillBase, HeapLayout::spillBase);
}

TEST(Hwgc, MarkedCountMatchesDevice)
{
    Rig rig(testGraph(14), configFor(0));
    const auto result = rig.device->runMark();
    // The marker can observe the same unmarked header from two
    // in-flight reads (a benign race the write-back scheme allows),
    // so its newly-marked count may exceed — never undercount — the
    // unique reachable set.
    EXPECT_GE(result.objectsMarked, rig.heap.countMarked());
    EXPECT_LE(result.objectsMarked,
              rig.heap.countMarked() + rig.heap.countMarked() / 10);
    EXPECT_EQ(rig.heap.countMarked(),
              rig.heap.computeReachable().size());
}

TEST(Hwgc, SweepCountsFreedCells)
{
    Rig rig(testGraph(15), configFor(0));
    rig.device->runMark();
    const auto sweep = rig.device->runSweep();
    EXPECT_GT(sweep.cellsFreed, 0u);
    // cellsFreed counts all cells placed on free lists (garbage plus
    // never-allocated cells of partially used blocks).
    std::uint64_t total_cells = 0;
    for (const auto &block : rig.heap.blocks()) {
        total_cells += runtime::blockBytes / block.cellBytes;
    }
    EXPECT_LT(sweep.cellsFreed, total_cells);
}

TEST(Hwgc, SecondPauseAfterChurnStillCorrect)
{
    Rig rig(testGraph(16), configFor(0));
    rig.device->collect();
    rig.heap.onAfterSweep();
    rig.builder.mutate(0.4);
    rig.heap.clearAllMarks();
    rig.heap.publishRoots();
    rig.device->resetPhaseState();
    rig.device->resetStats();
    rig.device->configure(rig.heap);
    rig.device->collect();
    const auto marks = gc::verifyMarks(rig.heap);
    EXPECT_TRUE(marks.ok) << marks.error;
    const auto swept = gc::verifySweptHeap(rig.heap);
    EXPECT_TRUE(swept.ok) << swept.error;
}

TEST(Hwgc, RootReaderFeedsAllRoots)
{
    Rig rig(testGraph(17, 400), configFor(0));
    rig.device->runMark();
    std::uint64_t nonnull_roots = 0;
    for (const auto root : rig.heap.roots()) {
        nonnull_roots += root != runtime::nullRef;
    }
    EXPECT_EQ(rig.device->rootReader().rootsRead(), nonnull_roots);
}

TEST(Hwgc, BandwidthSeriesRecordsTraffic)
{
    Rig rig(testGraph(18), configFor(0));
    rig.device->collect();
    std::uint64_t bytes = 0;
    for (const auto b : rig.device->dram()->bandwidth().buckets()) {
        bytes += b;
    }
    EXPECT_GT(bytes, 0u);
    EXPECT_EQ(bytes, rig.device->dram()->bytesRead().value() +
              rig.device->dram()->bytesWritten().value());
}

} // namespace
} // namespace hwgc
