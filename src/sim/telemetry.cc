/**
 * @file
 * Telemetry layer implementation: registry, JSON export, Chrome
 * trace emission, kernel observation, CLI/env option parsing.
 */

#include "telemetry.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/logging.h"

namespace hwgc::telemetry
{

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

unsigned
parseHostThreads(const char *text, const char *source,
                 unsigned fallback)
{
    if (text == nullptr || *text == '\0') {
        warn("%s: empty thread count ignored", source);
        return fallback;
    }
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(text, &end, 10);
    // strtoul silently wraps negatives and stops at the first
    // non-digit — both used to yield a surprise thread count.
    if (end == text || *end != '\0' || errno == ERANGE ||
        text[0] == '-') {
        warn("%s: unparseable thread count '%s' ignored", source,
             text);
        return fallback;
    }
    if (v == 0) {
        warn("%s: thread count 0 clamped to 1 (omit the option for "
             "auto-sizing)", source);
        return 1;
    }
    constexpr unsigned long cap = 1UL << 16;
    if (v > cap) {
        warn("%s: thread count %lu clamped to %lu", source, v, cap);
        return unsigned(cap);
    }
    return unsigned(v);
}

namespace
{

/**
 * Strict u64 option parse: a value strtoull would silently truncate
 * (trailing junk, a negative sign, overflow) keeps @p fallback with a
 * warning instead of becoming a surprise cycle count.
 */
std::uint64_t
parseU64Option(const char *text, const char *source,
               std::uint64_t fallback)
{
    if (text == nullptr || *text == '\0') {
        warn("%s: empty value ignored", source);
        return fallback;
    }
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        text[0] == '-') {
        warn("%s: unparseable value '%s' ignored", source, text);
        return fallback;
    }
    return v;
}

/** Strict non-negative double parse (same contract as the u64 one). */
double
parseDoubleOption(const char *text, const char *source, double fallback)
{
    if (text == nullptr || *text == '\0') {
        warn("%s: empty value ignored", source);
        return fallback;
    }
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE || v < 0.0) {
        warn("%s: unparseable value '%s' ignored", source, text);
        return fallback;
    }
    return v;
}

/** Boolean env convention: set and not "0" means on. */
bool
envFlag(const char *text)
{
    return text != nullptr && std::strcmp(text, "0") != 0;
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    out += jsonEscape(s);
    out += '"';
    return out;
}

/** Formats a double without locale surprises. */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/**
 * Renders one group's JSON object body ({"scalars": ...}). Shared by
 * the live exporter and value retirement, so retired groups read
 * identically to live ones.
 */
std::string
renderGroupJson(const stats::Group &group)
{
    std::ostringstream os;
    os << "{";

    os << "\"scalars\": {";
    bool first = true;
    for (const auto *s : group.scalars()) {
        os << (first ? "" : ", ") << quoted(s->name()) << ": "
           << s->value();
        first = false;
    }
    os << "}";

    os << ", \"vectors\": {";
    first = true;
    for (const auto *v : group.vectors()) {
        os << (first ? "" : ", ") << quoted(v->name())
           << ": {\"labels\": {";
        for (std::size_t i = 0; i < v->size(); ++i) {
            os << (i != 0 ? ", " : "") << quoted(v->label(i)) << ": "
               << v->value(i);
        }
        os << "}, \"total\": " << v->total() << "}";
        first = false;
    }
    os << "}";

    os << ", \"histograms\": {";
    first = true;
    for (const auto *h : group.histograms()) {
        os << (first ? "" : ", ") << quoted(h->name())
           << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
           << ", \"min\": " << h->minValue()
           << ", \"max\": " << h->maxValue()
           << ", \"mean\": " << jsonNumber(h->mean())
           << ", \"buckets\": [";
        for (std::size_t i = 0; i < h->buckets().size(); ++i) {
            os << (i != 0 ? ", " : "") << h->buckets()[i];
        }
        os << "]}";
        first = false;
    }
    os << "}";

    os << ", \"timeseries\": {";
    first = true;
    for (const auto *t : group.timeSeries()) {
        os << (first ? "" : ", ") << quoted(t->name())
           << ": {\"bucketWidth\": " << t->bucketWidth()
           << ", \"buckets\": [";
        for (std::size_t i = 0; i < t->buckets().size(); ++i) {
            os << (i != 0 ? ", " : "") << t->buckets()[i];
        }
        os << "]}";
        first = false;
    }
    os << "}";

    os << "}";
    return os.str();
}

double
hostSecondsNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// ---------------------------------------------------------------------
// Options (CLI + environment).
// ---------------------------------------------------------------------

Options &
options()
{
    static Options opts;
    return opts;
}

void
applyEnv()
{
    Options &opts = options();
    if (const char *v = std::getenv("HWGC_STATS_JSON")) {
        opts.statsJson = v;
    }
    if (const char *v = std::getenv("HWGC_TRACE_OUT")) {
        opts.traceOut = v;
    }
    if (const char *v = std::getenv("HWGC_STATS_INTERVAL")) {
        opts.statsInterval = parseU64Option(v, "HWGC_STATS_INTERVAL",
                                            opts.statsInterval);
    }
    if (const char *v = std::getenv("HWGC_KERNEL")) {
        opts.kernel = v;
    }
    if (const char *v = std::getenv("HWGC_HOST_THREADS")) {
        opts.hostThreads =
            parseHostThreads(v, "HWGC_HOST_THREADS", opts.hostThreads);
    }
    if (const char *v = std::getenv("HWGC_HOST_PARTITION")) {
        opts.hostPartition = v;
    }
    if (const char *v = std::getenv("HWGC_SUPERSTEP_MAX")) {
        opts.superstepMax = unsigned(parseU64Option(
            v, "HWGC_SUPERSTEP_MAX", opts.superstepMax));
    }
    if (const char *v = std::getenv("HWGC_CHECKPOINT_IN")) {
        opts.checkpointIn = v;
    }
    if (const char *v = std::getenv("HWGC_CHECKPOINT_OUT")) {
        opts.checkpointOut = v;
    }
    if (const char *v = std::getenv("HWGC_CHECKPOINT_AT")) {
        opts.checkpointAt = parseU64Option(v, "HWGC_CHECKPOINT_AT",
                                           opts.checkpointAt);
    }
    if (const char *v = std::getenv("HWGC_PROFILE")) {
        opts.profile = envFlag(v);
    }
    if (const char *v = std::getenv("HWGC_WATCHDOG_SECS")) {
        opts.watchdogSecs = parseDoubleOption(v, "HWGC_WATCHDOG_SECS",
                                              opts.watchdogSecs);
    }
    if (const char *v = std::getenv("HWGC_BENCH_OUT")) {
        opts.benchOut = v;
    }
    // HWGC_DEBUG is applied by a static initializer in logging.cc.
}

void
parseArgs(int &argc, char **argv)
{
    auto valueOf = [](const char *arg,
                      const char *key) -> const char * {
        const std::size_t n = std::strlen(key);
        return std::strncmp(arg, key, n) == 0 ? arg + n : nullptr;
    };

    Options &opts = options();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = valueOf(argv[i], "--stats-json=")) {
            opts.statsJson = v;
        } else if (const char *v = valueOf(argv[i], "--trace-out=")) {
            opts.traceOut = v;
        } else if (const char *v =
                       valueOf(argv[i], "--stats-interval=")) {
            opts.statsInterval = parseU64Option(v, "--stats-interval",
                                                opts.statsInterval);
        } else if (const char *v = valueOf(argv[i], "--debug-flags=")) {
            Debug::parseFlagList(v);
        } else if (const char *v = valueOf(argv[i], "--kernel=")) {
            opts.kernel = v;
        } else if (const char *v = valueOf(argv[i], "--host-threads=")) {
            opts.hostThreads =
                parseHostThreads(v, "--host-threads", opts.hostThreads);
        } else if (const char *v =
                       valueOf(argv[i], "--host-partition=")) {
            opts.hostPartition = v;
        } else if (const char *v =
                       valueOf(argv[i], "--superstep-max=")) {
            opts.superstepMax = unsigned(parseU64Option(
                v, "--superstep-max", opts.superstepMax));
        } else if (const char *v = valueOf(argv[i], "--checkpoint-in=")) {
            opts.checkpointIn = v;
        } else if (const char *v =
                       valueOf(argv[i], "--checkpoint-out=")) {
            opts.checkpointOut = v;
        } else if (const char *v =
                       valueOf(argv[i], "--checkpoint-at=")) {
            opts.checkpointAt = parseU64Option(v, "--checkpoint-at",
                                               opts.checkpointAt);
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            opts.profile = true;
        } else if (const char *v =
                       valueOf(argv[i], "--watchdog-secs=")) {
            opts.watchdogSecs = parseDoubleOption(v, "--watchdog-secs",
                                                  opts.watchdogSecs);
        } else if (const char *v = valueOf(argv[i], "--bench-out=")) {
            opts.benchOut = v;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

// ---------------------------------------------------------------------
// StatsRegistry.
// ---------------------------------------------------------------------

StatsRegistry &
StatsRegistry::global()
{
    static StatsRegistry registry;
    return registry;
}

std::string
StatsRegistry::add(const std::string &path, const stats::Group *group)
{
    panic_if(group == nullptr, "StatsRegistry::add(nullptr)");
    std::string actual = path;
    unsigned suffix = 1;
    // Only *live* groups force a "#N" suffix. A retired entry at the
    // same path is superseded instead: under device churn the path
    // names a slot whose occupants come and go, and keeping every
    // dead occupant's values would grow the export without bound
    // while pushing the live one onto an ever-changing "#N" path.
    while (groups_.count(actual) != 0) {
        actual = path + "#" + std::to_string(suffix++);
    }
    retired_.erase(actual);
    dropSnapshotBaselines(actual);
    groups_.emplace(actual, group);
    return actual;
}

void
StatsRegistry::remove(const std::string &path)
{
    const auto it = groups_.find(path);
    if (it == groups_.end()) {
        return;
    }
    // Retire the final values so later exports still cover this
    // component even though its stats objects are about to die.
    retired_[path] = RetiredGroup{renderGroupJson(*it->second)};
    groups_.erase(it);
    // Drop the interval-delta baselines with the group: its values are
    // frozen now, and if another component re-registers this path its
    // first delta must be measured from zero, not from the dead
    // component's totals (cur - old reads as a huge negative delta).
    dropSnapshotBaselines(path);
}

void
StatsRegistry::dropSnapshotBaselines(const std::string &path)
{
    const std::string prefix = path + ".";
    auto it = snapshotPrev_.lower_bound(prefix);
    while (it != snapshotPrev_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0) {
        it = snapshotPrev_.erase(it);
    }
}

std::string
StatsRegistry::uniquePrefix(const std::string &base)
{
    return base + std::to_string(prefixCounters_[base]++);
}

std::string
StatsRegistry::indexedPrefix(const std::string &base, unsigned n)
{
    unsigned &counter = prefixCounters_[base];
    counter = std::max(counter, n + 1);
    return base + std::to_string(n);
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &[path, group] : groups_) {
        os << "========== " << path << " ==========\n";
        group->dump(os);
    }
}

void
StatsRegistry::snapshot(Tick now)
{
    SnapshotRow row;
    row.tick = now;
    for (const auto &[path, group] : groups_) {
        for (const auto *s : group->scalars()) {
            const std::string key = path + "." + s->name();
            const std::uint64_t cur = s->value();
            auto [it, inserted] = snapshotPrev_.try_emplace(key, 0);
            const std::int64_t delta =
                static_cast<std::int64_t>(cur - it->second);
            it->second = cur;
            if (delta != 0) {
                row.deltas.emplace_back(key, delta);
            }
        }
    }
    snapshots_.push_back(std::move(row));
}

void
StatsRegistry::clearSnapshots()
{
    snapshots_.clear();
    snapshotPrev_.clear();
}

void
StatsRegistry::exportJson(std::ostream &os,
                          const RunMetadata &meta) const
{
    os << "{\n  \"meta\": {";
    os << "\"binary\": " << quoted(meta.binary);
    os << ", \"kernel\": " << quoted(meta.kernel);
    os << ", \"config\": " << quoted(meta.config);
    os << ", \"seed\": " << meta.seed;
    os << ", \"sim_cycles\": " << meta.simCycles;
    os << ", \"host_seconds\": " << jsonNumber(meta.hostSeconds);
    for (const auto &[key, value] : meta.extra) {
        os << ", " << quoted(key) << ": " << quoted(value);
    }
    os << "},\n  \"groups\": {";

    // Live and retired groups, merged in path order (std::map keeps
    // both sorted; paths are unique across the two).
    bool first = true;
    auto live = groups_.begin();
    auto dead = retired_.begin();
    while (live != groups_.end() || dead != retired_.end()) {
        const bool takeLive =
            dead == retired_.end() ||
            (live != groups_.end() && live->first < dead->first);
        os << (first ? "" : ",") << "\n    ";
        if (takeLive) {
            os << quoted(live->first) << ": "
               << renderGroupJson(*live->second);
            ++live;
        } else {
            os << quoted(dead->first) << ": " << dead->second.json;
            ++dead;
        }
        first = false;
    }
    os << "\n  },\n  \"intervals\": [";
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        const auto &row = snapshots_[i];
        os << (i != 0 ? "," : "") << "\n    {\"cycle\": " << row.tick
           << ", \"deltas\": {";
        for (std::size_t j = 0; j < row.deltas.size(); ++j) {
            os << (j != 0 ? ", " : "") << quoted(row.deltas[j].first)
               << ": " << row.deltas[j].second;
        }
        os << "}}";
    }
    os << "\n  ]\n}\n";
}

void
StatsRegistry::exportJsonFile(const std::string &path,
                              const RunMetadata &meta) const
{
    std::ostringstream buffer;
    exportJson(buffer, meta);
    const std::string text = buffer.str();
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    fatal_if(f == nullptr,
             "telemetry: cannot write stats JSON to '%s': %s",
             path.c_str(), std::strerror(errno));
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool bad = written != text.size() || std::fflush(f) != 0 ||
                     std::ferror(f) != 0;
    const int close_err = std::fclose(f);
    fatal_if(bad || close_err != 0,
             "telemetry: error writing stats JSON to '%s': %s",
             path.c_str(), std::strerror(errno));
}

void
StatsRegistry::clearRetired()
{
    retired_.clear();
    clearSnapshots();
}

// ---------------------------------------------------------------------
// TraceWriter.
// ---------------------------------------------------------------------

TraceWriter &
TraceWriter::global()
{
    static TraceWriter writer;
    return writer;
}

void
TraceWriter::open(const std::string &path)
{
    close();
    out_ = std::fopen(path.c_str(), "w");
    fatal_if(out_ == nullptr,
             "telemetry: cannot open trace file '%s': %s",
             path.c_str(), std::strerror(errno));
    path_ = path;
    events_ = 0;
    tracks_.clear();
    std::fputs("[\n", out_);
}

void
TraceWriter::close()
{
    if (out_ == nullptr) {
        return;
    }
    // A full disk surfaces here, not as a silently truncated trace:
    // emits are unchecked for speed, so the stream error flag plus a
    // final flush carry the verdict for the whole file.
    std::fputs("\n]\n", out_);
    const bool bad = std::fflush(out_) != 0 || std::ferror(out_) != 0;
    const int close_err = std::fclose(out_);
    out_ = nullptr;
    fatal_if(bad || close_err != 0,
             "telemetry: error writing trace file '%s': %s",
             path_.c_str(), std::strerror(errno));
}

void
TraceWriter::emitPrefix()
{
    if (events_ != 0) {
        std::fputs(",\n", out_);
    }
    ++events_;
}

unsigned
TraceWriter::trackId(const std::string &track)
{
    const auto it = tracks_.find(track);
    if (it != tracks_.end()) {
        return it->second;
    }
    const unsigned tid = unsigned(tracks_.size()) + 1;
    tracks_.emplace(track, tid);
    emitPrefix();
    std::fprintf(out_,
                 "{\"ph\": \"M\", \"pid\": 0, \"tid\": %u, "
                 "\"name\": \"thread_name\", "
                 "\"args\": {\"name\": \"%s\"}}",
                 tid, jsonEscape(track).c_str());
    return tid;
}

void
TraceWriter::completeSpan(const std::string &track,
                          const std::string &name, Tick begin, Tick end)
{
    if (!enabled() || end <= begin) {
        return;
    }
    const unsigned tid = trackId(track);
    emitPrefix();
    // 1 cycle = 1 ns at the 1 GHz core clock; ts is in microseconds.
    std::fprintf(out_,
                 "{\"ph\": \"X\", \"pid\": 0, \"tid\": %u, "
                 "\"name\": \"%s\", \"ts\": %.3f, \"dur\": %.3f}",
                 tid, jsonEscape(name).c_str(), double(begin) / 1000.0,
                 double(end - begin) / 1000.0);
}

void
TraceWriter::counter(const std::string &name, Tick when, double value)
{
    if (!enabled()) {
        return;
    }
    emitPrefix();
    std::fprintf(out_,
                 "{\"ph\": \"C\", \"pid\": 0, \"name\": \"%s\", "
                 "\"ts\": %.3f, \"args\": {\"value\": %s}}",
                 jsonEscape(name).c_str(), double(when) / 1000.0,
                 jsonNumber(value).c_str());
}

void
TraceWriter::instant(const std::string &track, const std::string &name,
                     Tick when)
{
    if (!enabled()) {
        return;
    }
    const unsigned tid = trackId(track);
    emitPrefix();
    std::fprintf(out_,
                 "{\"ph\": \"i\", \"pid\": 0, \"tid\": %u, "
                 "\"name\": \"%s\", \"ts\": %.3f, \"s\": \"t\"}",
                 tid, jsonEscape(name).c_str(), double(when) / 1000.0);
}

// ---------------------------------------------------------------------
// SystemTracer.
// ---------------------------------------------------------------------

SystemTracer::SystemTracer(std::vector<std::string> component_names,
                           std::string track_prefix)
    : names_(std::move(component_names)), prefix_(std::move(track_prefix)),
      spans_(names_.size())
{
    snapshotInterval_ = options().statsInterval;
    // Counter tracks default to 1k-cycle sampling when no interval was
    // requested; snapshots stay off unless explicitly enabled.
    counterInterval_ =
        snapshotInterval_ != 0 ? snapshotInterval_ : 1000;
    nextSample_ = counterInterval_;
    nextSnapshot_ = snapshotInterval_;
}

void
SystemTracer::addCounter(std::string name,
                         std::function<double()> sample)
{
    counters_.push_back({std::move(name), std::move(sample), false,
                         0.0, 0});
}

void
SystemTracer::addRateCounter(std::string name,
                             std::function<double()> cumulative)
{
    counters_.push_back({std::move(name), std::move(cumulative), true,
                         0.0, 0});
}

void
SystemTracer::sampleCounters(Tick now)
{
    TraceWriter &tw = TraceWriter::global();
    if (!tw.enabled()) {
        return;
    }
    for (auto &c : counters_) {
        const double cur = c.sample();
        double value = cur;
        if (c.rate) {
            const Tick dt = now - c.prevTick;
            value = dt > 0 ? std::max(0.0, (cur - c.prev) / double(dt))
                           : 0.0;
            c.prev = cur;
            c.prevTick = now;
        }
        tw.counter(prefix_ + c.name, now, value);
    }
}

void
SystemTracer::maybeSample(Tick now)
{
    if (!counters_.empty() && now >= nextSample_) {
        sampleCounters(now);
        nextSample_ = now - (now % counterInterval_) + counterInterval_;
    }
    if (snapshotInterval_ != 0 && now >= nextSnapshot_) {
        StatsRegistry::global().snapshot(now);
        nextSnapshot_ =
            now - (now % snapshotInterval_) + snapshotInterval_;
    }
}

void
SystemTracer::cycleExecuted(Tick now, std::uint64_t active_mask)
{
    TraceWriter &tw = TraceWriter::global();
    if (tw.enabled()) {
        for (std::size_t i = 0; i < spans_.size(); ++i) {
            if ((active_mask & (std::uint64_t(1) << i)) == 0) {
                continue;
            }
            Span &span = spans_[i];
            if (span.open && now - span.lastActive <= mergeGap) {
                span.lastActive = now;
                continue;
            }
            if (span.open) {
                tw.completeSpan(prefix_ + names_[i], "active",
                                span.start, span.lastActive + 1);
            }
            span.open = true;
            span.start = now;
            span.lastActive = now;
        }
    }
    maybeSample(now);
}

void
SystemTracer::fastForwarded(Tick from, Tick to)
{
    // No component ticks during a gap, so counters and scalar stats
    // are frozen: one sample/snapshot at the gap entry is exact, and
    // the due marks just advance past the gap.
    if (!counters_.empty() && nextSample_ < to) {
        sampleCounters(from);
        nextSample_ = to - (to % counterInterval_) + counterInterval_;
    }
    if (snapshotInterval_ != 0 && nextSnapshot_ < to) {
        StatsRegistry::global().snapshot(from);
        nextSnapshot_ =
            to - (to % snapshotInterval_) + snapshotInterval_;
    }
}

void
SystemTracer::flush(Tick now)
{
    TraceWriter &tw = TraceWriter::global();
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        Span &span = spans_[i];
        if (span.open) {
            tw.completeSpan(prefix_ + names_[i], "active", span.start,
                            std::min(now, span.lastActive + 1));
            span.open = false;
        }
    }
    sampleCounters(now);
}

// ---------------------------------------------------------------------
// Session.
// ---------------------------------------------------------------------

Session::Session(int &argc, char **argv)
{
    meta_.binary = argc > 0 ? argv[0] : "";
    applyEnv();
    parseArgs(argc, argv);
    start();
}

Session::Session(std::string binary_name)
{
    meta_.binary = std::move(binary_name);
    applyEnv();
    start();
}

void
Session::start()
{
    startSeconds_ = hostSecondsNow();
    if (!options().traceOut.empty()) {
        TraceWriter::global().open(options().traceOut);
    }
    const std::string &stats_path = options().statsJson;
    if (!stats_path.empty() && stats_path != "-") {
        // An unwritable --stats-json= path must fail before the run,
        // not lose the results after hours of simulation.
        std::FILE *probe = std::fopen(stats_path.c_str(), "w");
        fatal_if(probe == nullptr,
                 "telemetry: cannot write stats JSON to '%s': %s",
                 stats_path.c_str(), std::strerror(errno));
        std::fclose(probe);
    }
}

Session::~Session()
{
    finish();
}

void
Session::finish()
{
    if (finished_) {
        return;
    }
    finished_ = true;
    meta_.hostSeconds = hostSecondsNow() - startSeconds_;
    if (!options().statsJson.empty()) {
        StatsRegistry::global().exportJsonFile(options().statsJson,
                                               meta_);
    }
    TraceWriter::global().close();
}

} // namespace hwgc::telemetry
