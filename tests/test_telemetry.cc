/**
 * @file
 * Telemetry-layer tests. The load-bearing guarantee is the A/B runs:
 * turning every telemetry sink on (trace file, counter tracks,
 * interval snapshots) must leave simulated cycles and statistics
 * bit-identical to a run with telemetry off, on both kernels —
 * telemetry is observational, never part of the model.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/gc_lab.h"

namespace hwgc
{
namespace
{

// ---------------------------------------------------------------------
// Registry mechanics.
// ---------------------------------------------------------------------

TEST(StatsRegistry, CollidingPathsAreUniquified)
{
    auto &registry = telemetry::StatsRegistry::global();
    stats::Group a("a"), b("b");
    const std::string first = registry.add("test.collide", &a);
    const std::string second = registry.add("test.collide", &b);
    EXPECT_EQ(first, "test.collide");
    EXPECT_EQ(second, "test.collide#1");
    EXPECT_NE(registry.groups().find(second), registry.groups().end());
    registry.remove(first);
    registry.remove(second);
    registry.clearRetired();
}

TEST(StatsRegistry, UniquePrefixNeverRepeats)
{
    auto &registry = telemetry::StatsRegistry::global();
    const std::string p0 = registry.uniquePrefix("test.unit");
    const std::string p1 = registry.uniquePrefix("test.unit");
    EXPECT_EQ(p0, "test.unit0");
    EXPECT_EQ(p1, "test.unit1");
}

TEST(StatsRegistry, DeviceRegistersItsComponentTree)
{
    mem::PhysMem phys_mem;
    runtime::Heap heap(phys_mem);
    core::HwgcConfig config;
    const std::size_t before =
        telemetry::StatsRegistry::global().groups().size();
    {
        core::HwgcDevice device(phys_mem, heap.pageTable(), config);
        const auto &groups =
            telemetry::StatsRegistry::global().groups();
        EXPECT_GT(groups.size(), before + 10); // marker, tracer, ...
        const std::string &prefix = device.statsPrefix();
        for (const char *sub :
             {".marker", ".tracer", ".markQueue", ".rootReader",
              ".reclamation", ".ptw", ".bus", ".memory"}) {
            EXPECT_NE(groups.find(prefix + sub), groups.end())
                << "missing group " << prefix << sub;
        }
    }
    // Destruction unregisters every path (values move to retired).
    EXPECT_EQ(telemetry::StatsRegistry::global().groups().size(),
              before);
    telemetry::StatsRegistry::global().clearRetired();
}

// ---------------------------------------------------------------------
// Perturbation A/B: telemetry on vs off, both kernels.
// ---------------------------------------------------------------------

struct RunSignature
{
    Tick hwMark = 0;
    Tick hwSweep = 0;
    std::uint64_t marked = 0;
    std::uint64_t freed = 0;
    std::uint64_t tracerRequests = 0;
    std::uint64_t spilled = 0;
    std::uint64_t ptwWalks = 0;
    std::uint64_t busBusyCycles = 0;
    std::uint64_t busCycles = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;

    bool
    operator==(const RunSignature &o) const
    {
        return hwMark == o.hwMark && hwSweep == o.hwSweep &&
               marked == o.marked && freed == o.freed &&
               tracerRequests == o.tracerRequests &&
               spilled == o.spilled && ptwWalks == o.ptwWalks &&
               busBusyCycles == o.busBusyCycles &&
               busCycles == o.busCycles && dramBytes == o.dramBytes &&
               dramReads == o.dramReads && dramWrites == o.dramWrites;
    }
};

RunSignature
runLab(KernelMode kernel)
{
    core::HwgcConfig config;
    config.kernel = kernel;
    driver::LabConfig lab_config;
    lab_config.runSw = false;
    lab_config.hwgc = config;
    driver::GcLab lab(workload::smokeProfile(), lab_config);
    lab.run();

    RunSignature sig;
    for (const auto &pause : lab.results()) {
        sig.hwMark += pause.hwMarkCycles;
        sig.hwSweep += pause.hwSweepCycles;
        sig.marked += pause.objectsMarked;
        sig.freed += pause.cellsFreed;
        sig.tracerRequests += pause.hw.tracerRequests;
        sig.spilled += pause.hw.entriesSpilled;
        sig.ptwWalks += pause.hw.ptwWalks;
        sig.busBusyCycles += pause.hw.busBusyCycles;
        sig.busCycles += pause.hw.busCycles;
        sig.dramBytes += pause.hw.dramBytes;
        sig.dramReads += pause.hw.dramReads;
        sig.dramWrites += pause.hw.dramWrites;
    }
    return sig;
}

void
expectTelemetryDoesNotPerturb(KernelMode kernel, const char *trace_path)
{
    // Baseline: everything off.
    telemetry::options().statsInterval = 0;
    ASSERT_FALSE(telemetry::TraceWriter::global().enabled());
    const RunSignature off = runLab(kernel);

    // Instrumented: trace file, counter tracks, interval snapshots.
    auto &registry = telemetry::StatsRegistry::global();
    registry.clearSnapshots();
    telemetry::options().statsInterval = 512;
    telemetry::TraceWriter::global().open(trace_path);
    ASSERT_TRUE(telemetry::TraceWriter::global().enabled());
    const RunSignature on = runLab(kernel);
    const std::uint64_t events =
        telemetry::TraceWriter::global().eventsWritten();
    const std::size_t snapshots = registry.numSnapshots();
    telemetry::TraceWriter::global().close();
    telemetry::options().statsInterval = 0;
    registry.clearRetired();

    // The sinks actually observed the run...
    EXPECT_GT(events, 0u);
    EXPECT_GT(snapshots, 0u);
    // ...and changed nothing.
    EXPECT_TRUE(off == on) << "telemetry perturbed the simulation";
    EXPECT_EQ(off.hwMark, on.hwMark);
    EXPECT_EQ(off.hwSweep, on.hwSweep);
    EXPECT_EQ(off.busCycles, on.busCycles);
    EXPECT_EQ(off.dramBytes, on.dramBytes);
}

TEST(TelemetryPerturbation, DenseKernelRunsAreBitIdentical)
{
    expectTelemetryDoesNotPerturb(KernelMode::Dense,
                                  "test_telemetry_dense_trace.json");
    std::remove("test_telemetry_dense_trace.json");
}

TEST(TelemetryPerturbation, EventKernelRunsAreBitIdentical)
{
    expectTelemetryDoesNotPerturb(KernelMode::Event,
                                  "test_telemetry_event_trace.json");
    std::remove("test_telemetry_event_trace.json");
}

// ---------------------------------------------------------------------
// Trace file shape: a JSON array carrying the GC phase spans.
// ---------------------------------------------------------------------

TEST(TraceWriter, EmitsPhaseSpansActivityAndCounters)
{
    const char *path = "test_telemetry_shape_trace.json";
    telemetry::options().statsInterval = 0;
    telemetry::TraceWriter::global().open(path);
    runLab(KernelMode::Event);
    telemetry::TraceWriter::global().close();
    telemetry::StatsRegistry::global().clearRetired();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::remove(path);

    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.substr(text.size() - 2), "]\n");
    // Phase spans...
    EXPECT_NE(text.find("\"rootScan\""), std::string::npos);
    EXPECT_NE(text.find("\"mark\""), std::string::npos);
    EXPECT_NE(text.find("\"sweep\""), std::string::npos);
    // ...component activity spans with named tracks...
    EXPECT_NE(text.find("\"active\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    // ...and counter tracks ("C" events).
    EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(text.find("markQueue.depth"), std::string::npos);
}

} // namespace
} // namespace hwgc
