/**
 * @file
 * GC scheduling policy implementations.
 */

#include "gc_scheduler.h"

#include "sim/logging.h"

namespace hwgc::driver
{

namespace
{

class FifoScheduler : public GcScheduler
{
  public:
    std::size_t
    pick(const std::vector<GcRequest> &pending, Tick) const override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < pending.size(); ++i) {
            if (pending[i].triggerAt < pending[best].triggerAt ||
                (pending[i].triggerAt == pending[best].triggerAt &&
                 pending[i].tenant < pending[best].tenant)) {
                best = i;
            }
        }
        return best;
    }

    GcPolicy policy() const override { return GcPolicy::Fifo; }
    const char *name() const override { return "fifo"; }
};

/** EDF pick, shared by Deadline and ConcurrentOverlap. */
std::size_t
pickEarliestDeadline(const std::vector<GcRequest> &pending)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
        const GcRequest &a = pending[i];
        const GcRequest &b = pending[best];
        if (a.deadline < b.deadline ||
            (a.deadline == b.deadline &&
             (a.triggerAt < b.triggerAt ||
              (a.triggerAt == b.triggerAt && a.tenant < b.tenant)))) {
            best = i;
        }
    }
    return best;
}

class DeadlineScheduler : public GcScheduler
{
  public:
    std::size_t
    pick(const std::vector<GcRequest> &pending, Tick) const override
    {
        return pickEarliestDeadline(pending);
    }

    GcPolicy policy() const override { return GcPolicy::Deadline; }
    const char *name() const override { return "deadline"; }
};

class OverlapScheduler : public GcScheduler
{
  public:
    std::size_t
    pick(const std::vector<GcRequest> &pending, Tick) const override
    {
        return pickEarliestDeadline(pending);
    }

    bool concurrentMark() const override { return true; }

    GcPolicy
    policy() const override
    {
        return GcPolicy::ConcurrentOverlap;
    }

    const char *name() const override { return "overlap"; }
};

} // namespace

std::unique_ptr<GcScheduler>
makeScheduler(GcPolicy policy)
{
    switch (policy) {
      case GcPolicy::Fifo:
        return std::make_unique<FifoScheduler>();
      case GcPolicy::Deadline:
        return std::make_unique<DeadlineScheduler>();
      case GcPolicy::ConcurrentOverlap:
        return std::make_unique<OverlapScheduler>();
    }
    panic("unknown GcPolicy %d", int(policy));
}

GcPolicy
parseGcPolicy(const std::string &text)
{
    if (text == "fifo") {
        return GcPolicy::Fifo;
    }
    if (text == "deadline") {
        return GcPolicy::Deadline;
    }
    if (text == "overlap") {
        return GcPolicy::ConcurrentOverlap;
    }
    fatal("unknown GC policy '%s' (expected fifo|deadline|overlap)",
          text.c_str());
}

const char *
gcPolicyName(GcPolicy policy)
{
    switch (policy) {
      case GcPolicy::Fifo:
        return "fifo";
      case GcPolicy::Deadline:
        return "deadline";
      case GcPolicy::ConcurrentOverlap:
        return "overlap";
    }
    panic("unknown GcPolicy %d", int(policy));
}

} // namespace hwgc::driver
