/**
 * @file
 * Segregated free-list size classes (paper §V-A: "Jikes's Mark &
 * Sweep plan uses a segregated free list allocator. Memory is divided
 * into blocks, and each block is assigned a size class, which
 * determines the size of the cells that the block is divided into").
 */

#ifndef HWGC_RUNTIME_SIZE_CLASS_H
#define HWGC_RUNTIME_SIZE_CLASS_H

#include <array>
#include <cstdint>

#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc::runtime
{

/** The size-class table. */
class SizeClasses
{
  public:
    /** Cell sizes in bytes, ascending; the allocator's "available
     *  size classes" configuration parameter (paper §IV-C). */
    static constexpr std::array<std::uint32_t, 15> cellBytes = {
        16, 32, 48, 64, 96, 128, 192, 256,
        384, 512, 768, 1024, 2048, 4096, 8192,
    };

    static constexpr unsigned count = unsigned(cellBytes.size());

    /** Largest cell size; bigger objects go to the large object space. */
    static constexpr std::uint32_t maxCellBytes = cellBytes.back();

    /** Smallest class whose cells fit @p bytes; count if none does. */
    static unsigned
    classFor(std::uint64_t bytes)
    {
        for (unsigned i = 0; i < count; ++i) {
            if (cellBytes[i] >= bytes) {
                return i;
            }
        }
        return count;
    }

    /** Cell size of class @p idx. */
    static std::uint32_t
    bytesFor(unsigned idx)
    {
        panic_if(idx >= count, "size class %u out of range", idx);
        return cellBytes[idx];
    }
};

} // namespace hwgc::runtime

#endif // HWGC_RUNTIME_SIZE_CLASS_H
