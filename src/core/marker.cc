/**
 * @file
 * Marker implementation.
 */

#include "marker.h"

#include "runtime/object_model.h"

namespace hwgc::core
{

using runtime::StatusWord;

Marker::Marker(std::string name, const HwgcConfig &config,
               MarkQueue &mark_queue, TraceQueue &trace_queue,
               mem::MemPort *port, mem::Ptw &ptw)
    : Clocked(std::move(name)), config_(config), markQueue_(mark_queue),
      traceQueue_(trace_queue), port_(port), ptw_(ptw),
      tlb_(this->name() + ".tlb", config.unitTlbEntries),
      markBitCache_(config.markBitCacheEntries),
      slots_(config.markerSlots),
      waiters_(std::max(1u, config.markerWalkWaiters))
{
    panic_if(port_ == nullptr, "marker needs a memory port");
    panic_if(config_.markerSlots == 0, "marker needs request slots");
}

bool
Marker::idle() const
{
    if (waitersActive_ != 0) {
        return false;
    }
    for (const auto &slot : slots_) {
        if (slot.state != SlotState::Free) {
            return false;
        }
    }
    return true;
}

int
Marker::findFreeSlot() const
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].state == SlotState::Free) {
            return int(i);
        }
    }
    return -1;
}

void
Marker::onResponse(const mem::MemResponse &resp, Tick now)
{
    (void)now;
    if (resp.req.isWrite()) {
        return; // Write-back ack; the slot was already released.
    }
    panic_if(resp.req.tag >= slots_.size(), "bad marker tag");
    Slot &slot = slots_[resp.req.tag];
    panic_if(slot.state != SlotState::AwaitRead,
             "marker response for idle slot");
    panic_if(inFlightReads_ == 0, "marker in-flight underflow");
    --inFlightReads_;

    const Word old_header = resp.rdata[0];
    panic_if(!StatusWord::live(old_header),
             "marker read a non-live header at %#llx",
             (unsigned long long)slot.ref);

    if (StatusWord::marked(old_header)) {
        // Already marked: elide the write-back, free the slot. Still
        // remember the reference — the cache filters *recently
        // accessed* objects (paper §V-C), and hot objects are mostly
        // seen via repeat accesses.
        markBitCache_.insert(slot.ref);
        ++alreadyMarked_;
        ++writebacksElided_;
        slot.state = SlotState::Free;
        return;
    }

    ++newlyMarked_;
    slot.newHeader = old_header | StatusWord::markBit;
    slot.needWriteback = true;
    slot.numRefs = StatusWord::numRefs(old_header);
    slot.needTracePush = slot.numRefs > 0;
    slot.state = SlotState::Finish;
    markBitCache_.insert(slot.ref);
}

void
Marker::finishSlots(Tick now)
{
    for (auto &slot : slots_) {
        if (slot.state != SlotState::Finish) {
            continue;
        }
        if (slot.needWriteback) {
            mem::MemRequest wb;
            wb.paddr = slot.paddr;
            wb.size = wordBytes;
            wb.op = mem::Op::Write;
            wb.wdata[0] = slot.newHeader;
            wb.tag = std::uint64_t(&slot - slots_.data());
            if (!port_->canSend(wb)) {
                continue;
            }
            port_->send(wb, now);
            slot.needWriteback = false;
        }
        if (slot.needTracePush) {
            if (!traceQueue_.canPush()) {
                continue;
            }
            traceQueue_.push({slot.ref, slot.numRefs});
            slot.needTracePush = false;
        }
        slot.state = SlotState::Free;
    }
}

bool
Marker::issueRead(Addr ref, Addr pa, Tick now)
{
    const int idx = findFreeSlot();
    if (idx < 0) {
        return false;
    }
    mem::MemRequest req;
    req.paddr = pa;
    req.size = wordBytes;
    req.op = mem::Op::Read;
    req.tag = std::uint64_t(idx);
    if (!port_->canSend(req)) {
        return false;
    }
    Slot &slot = slots_[idx];
    slot.state = SlotState::AwaitRead;
    slot.ref = ref;
    slot.paddr = pa;
    port_->send(req, now);
    ++inFlightReads_;
    ++marksIssued_;
    return true;
}

void
Marker::issue(Tick now)
{
    // Ready walk waiters have priority (their references are oldest).
    for (auto &waiter : waiters_) {
        if (waiter.valid && waiter.ready) {
            if (issueRead(waiter.ref, waiter.pa, now)) {
                waiter.valid = false;
                --waitersActive_;
            }
            return; // One issue per cycle.
        }
    }

    if (!markQueue_.canDequeue()) {
        return;
    }
    // Hit-under-miss: keep issuing TLB hits while up to N misses walk;
    // a full waiter station stalls the marker (the Fig 17/§VI-A TLB
    // serialization bottleneck).
    if (waitersActive_ >= waiters_.size()) {
        ++tlbMissStalls_;
        return;
    }
    if (findFreeSlot() < 0) {
        return;
    }
    mem::MemRequest probe;
    probe.size = wordBytes;
    if (!port_->canSend(probe)) {
        return;
    }

    const Addr ref = markQueue_.dequeue();
    if (profileTargets_) {
        ++targetProfile_[ref];
    }
    if (markBitCache_.enabled() && markBitCache_.contains(ref)) {
        ++markCacheHits_;
        return; // Filtered: known recently marked.
    }

    if (const auto pa = tlb_.lookup(ref)) {
        const bool sent = issueRead(ref, *pa, now);
        panic_if(!sent, "marker issue failed after resource check");
        return;
    }

    // TLB miss: park the reference and request a (serialized) walk.
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
        WalkWaiter &waiter = waiters_[i];
        if (waiter.valid) {
            continue;
        }
        waiter.valid = true;
        waiter.walkRequested = false;
        waiter.ready = false;
        waiter.ref = ref;
        ++waitersActive_;
        break;
    }
}

void
Marker::tick(Tick now)
{
    finishSlots(now);

    // Launch walks for parked references as the PTW frees up.
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
        WalkWaiter &waiter = waiters_[i];
        if (!waiter.valid || waiter.walkRequested || waiter.ready ||
            !ptw_.canRequest()) {
            continue;
        }
        waiter.walkRequested = true;
        ptw_.requestWalk(waiter.ref,
                         [this, i](bool valid, Addr va, Addr pa,
                                   unsigned page_bits) {
            fatal_if(!valid, "GC unit touched unmapped VA %#llx",
                     (unsigned long long)va);
            tlb_.insert(va, pa, page_bits);
            WalkWaiter &w = waiters_[i];
            panic_if(!w.valid || w.ready, "stale marker walk callback");
            w.pa = pa;
            w.ready = true;
        });
    }

    issue(now);
}

void
Marker::reset()
{
    panic_if(!idle(), "marker reset while active");
    tlb_.flush();
    markBitCache_.clear();
    targetProfile_.clear();
}

void
Marker::resetStats()
{
    marksIssued_.reset();
    alreadyMarked_.reset();
    newlyMarked_.reset();
    writebacksElided_.reset();
    markCacheHits_.reset();
    tlbMissStalls_.reset();
    tlb_.resetStats();
}

} // namespace hwgc::core
