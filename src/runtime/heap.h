/**
 * @file
 * The managed heap: spaces, segregated free-list allocation, roots,
 * and the verification oracle.
 *
 * This is the language-runtime substrate the paper co-designs with
 * the accelerator (§V-A): a MarkSweep space of size-classed blocks,
 * a large object space and an immortal space, all using the
 * bidirectional object layout, plus the hwgc-space region through
 * which roots are published to the GC unit.
 *
 * All heap state lives functionally in simulated physical memory; the
 * Heap class is the runtime system's (JikesRVM's) view of it. The
 * collectors — software and hardware — mutate memory directly, and
 * the Heap re-synchronizes from memory afterwards (free-list heads,
 * registry pruning), exactly as the paper's runtime consumes the free
 * lists the reclamation unit "places into main memory for the
 * application on the CPU to use during allocation".
 */

#ifndef HWGC_RUNTIME_HEAP_H
#define HWGC_RUNTIME_HEAP_H

#include <unordered_set>
#include <vector>

#include "mem/page_table.h"
#include "mem/phys_mem.h"
#include "runtime/heap_layout.h"
#include "runtime/object_model.h"
#include "runtime/size_class.h"
#include "sim/checkpoint.h"

namespace hwgc::runtime
{

/** Identifies which space an object lives in. */
enum class Space : std::uint8_t
{
    MarkSweep, //!< Reclaimed by the sweep phase.
    Los,       //!< Large objects; traced but not reclaimed.
    Immortal,  //!< Statics / VM structures; traced, never freed.
};

/** Heap configuration. */
struct HeapParams
{
    std::uint64_t markSweepReserve = 256ULL << 20;
    std::uint64_t losReserve = 64ULL << 20;
    std::uint64_t immortalReserve = 8ULL << 20;
    Layout layout = Layout::Bidirectional;

    /**
     * Base address this heap's whole region layout is offset by.
     * Zero reproduces the classic single-tenant HeapLayout addresses;
     * fleet mode gives each tenant a disjoint stride (e.g. 2 GiB) of
     * one shared PhysMem so N heaps coexist behind one DRAM backend.
     */
    Addr addrBase = 0;

    /**
     * Map heap regions with 2 MiB superpages instead of 4 KiB pages
     * (the paper's §VII scalability suggestion): multiplies TLB reach
     * by 512 and removes most of the blocking-PTW serialization.
     */
    bool useSuperpages = false;
};

/** The managed heap. */
class Heap
{
  public:
    Heap(mem::PhysMem &mem, const HeapParams &params = {});

    /** @name Functional word access (identity VA map) @{ */
    Word read(Addr va) const { return mem_.readWord(va); }
    void write(Addr va, Word v) { mem_.writeWord(va, v); }
    /** @} */

    /**
     * Allocates an object with @p num_refs reference slots and
     * @p payload_words non-reference words.
     * @return The object reference (address of its status word).
     */
    ObjRef allocate(std::uint32_t num_refs, std::uint32_t payload_words,
                    Space space = Space::MarkSweep,
                    std::uint16_t type_id = 0, bool is_array = false);

    /** Stores @p target into reference slot @p slot of @p obj. */
    void setRef(ObjRef obj, std::uint32_t slot, ObjRef target);

    /** Loads reference slot @p slot of @p obj. */
    ObjRef getRef(ObjRef obj, std::uint32_t slot) const;

    /** Reference-slot count of @p obj (from its status word). */
    std::uint32_t numRefs(ObjRef obj) const;

    /** @name Root management (hwgc-space, §V-A "Root Scanning") @{ */
    void addRoot(ObjRef ref);
    void clearRoots();
    const std::vector<ObjRef> &roots() const { return roots_; }

    /**
     * Writes the root set into the hwgc-space region where the GC
     * unit (and the software collector) will read it.
     */
    void publishRoots();

    Addr hwgcSpaceBase() const
    {
        return params_.addrBase + HeapLayout::hwgcSpaceBase;
    }
    std::uint64_t publishedRootCount() const { return publishedRoots_; }
    /** @} */

    /** @name Region bases for this instance (addrBase-shifted) @{ */
    Addr addrBase() const { return params_.addrBase; }
    Addr pageTableBase() const
    {
        return params_.addrBase + HeapLayout::pageTableBase;
    }
    Addr swQueueBase() const
    {
        return params_.addrBase + HeapLayout::swQueueBase;
    }
    std::uint64_t swQueueSize() const { return HeapLayout::swQueueSize; }
    Addr markSweepBase() const
    {
        return params_.addrBase + HeapLayout::markSweepBase;
    }
    Addr losBase() const
    {
        return params_.addrBase + HeapLayout::losBase;
    }
    Addr immortalBase() const
    {
        return params_.addrBase + HeapLayout::immortalBase;
    }
    Addr spillBase() const
    {
        return params_.addrBase + HeapLayout::spillBase;
    }
    std::uint64_t spillBytes() const { return HeapLayout::spillSize; }
    /** @} */

    /** @name Block inventory (consumed by the sweepers) @{ */
    struct BlockInfo
    {
        Addr base = 0;
        std::uint32_t cellBytes = 0;
        unsigned sizeClass = 0;
    };

    const std::vector<BlockInfo> &blocks() const { return blocks_; }
    Addr blockTableBase() const
    {
        return params_.addrBase + HeapLayout::blockTableBase;
    }

    /** Address of block @p idx's descriptor in the in-memory table. */
    Addr blockTableEntryAddr(std::size_t idx) const;
    /** @} */

    /** @name Object registry & verification oracle @{ */
    struct ObjInfo
    {
        ObjRef ref = nullRef;
        Addr cell = 0;
        std::uint32_t numRefs = 0;
        std::uint32_t payloadWords = 0;
        Space space = Space::MarkSweep;
    };

    /** All objects currently known live to the runtime. */
    const std::vector<ObjInfo> &objects() const { return objects_; }

    /**
     * Computes the reachable set by BFS over functional memory —
     * the oracle both collectors are tested against.
     */
    std::unordered_set<ObjRef> computeReachable() const;

    /** Clears every registered object's mark bit (pre-GC). */
    void clearAllMarks();

    /** Number of registered objects whose mark bit is set. */
    std::uint64_t countMarked() const;
    /** @} */

    /**
     * Re-synchronizes the runtime with memory after a sweep: reloads
     * free-list heads from the block table and drops freed objects
     * from the registry.
     * @return Number of objects reclaimed.
     */
    std::uint64_t onAfterSweep();

    const mem::PageTable &pageTable() const { return pageTable_; }
    mem::PhysMem &physMem() { return mem_; }
    Layout layout() const { return params_.layout; }

    /** @name Occupancy telemetry @{ */
    std::uint64_t bytesAllocated() const { return bytesAllocated_; }
    std::uint64_t liveObjects() const { return objects_.size(); }
    /** @} */

    /** Total object size in bytes for the given shape (layout-aware). */
    std::uint64_t objectBytes(std::uint32_t num_refs,
                              std::uint32_t payload_words) const;

    /**
     * Black allocation for concurrent collection: objects allocated
     * while a concurrent mark runs are born with their mark bit set,
     * so the sweep cannot reclaim them (the standard allocate-black
     * policy of snapshot-style concurrent collectors).
     */
    void setAllocateBlack(bool on) { allocateBlack_ = on; }
    bool allocateBlack() const { return allocateBlack_; }

    /**
     * @name Runtime-view serialization (farm snapshots, DESIGN.md §11)
     *
     * Unlike a device checkpoint — which captures mid-phase
     * architectural state and is bound to one accelerator
     * configuration — this pair serializes only the runtime's view of
     * the heap (block registry, allocation cursors, roots, object
     * table). Together with the PhysMem image it reconstructs a warm
     * heap into a *freshly built* simulation of any configuration,
     * which is what lets the what-if farm fork one snapshot across a
     * config grid. The caller restores the PhysMem image separately;
     * restore() must run on a Heap constructed with identical
     * HeapParams (fingerprint-checked).
     * @{
     */
    void save(checkpoint::Serializer &ser) const;
    void restore(checkpoint::Deserializer &des);
    /** @} */

  private:
    /** Per-size-class allocation state. */
    struct ClassState
    {
        std::vector<std::size_t> blockIdx; //!< Blocks of this class.
        std::size_t cursor = 0; //!< Next block to look for free cells.
    };

    /** Carves and formats a fresh block for size class @p cls. */
    std::size_t newBlock(unsigned cls);

    /** Pops a free cell for @p cls; formats a new block if needed. */
    Addr popFreeCell(unsigned cls);

    /** Writes a fresh object image into @p cell. */
    ObjRef formatObject(Addr cell, std::uint32_t num_refs,
                        std::uint32_t payload_words,
                        std::uint16_t type_id, bool is_array);

    /** Maps @p len bytes at identity VA==PA. */
    void mapIdentity(Addr base, std::uint64_t len);

    mem::PhysMem &mem_;
    HeapParams params_;
    mem::PageTable pageTable_;

    std::vector<BlockInfo> blocks_;
    std::array<ClassState, SizeClasses::count> classes_;
    Addr msBump_;        //!< Next un-carved block address.
    Addr losBump_;       //!< LOS bump pointer.
    Addr immortalBump_;  //!< Immortal bump pointer.

    std::vector<ObjRef> roots_;
    std::uint64_t publishedRoots_ = 0;

    std::vector<ObjInfo> objects_;
    std::uint64_t bytesAllocated_ = 0;
    bool allocateBlack_ = false;
};

} // namespace hwgc::runtime

#endif // HWGC_RUNTIME_HEAP_H
