file(REMOVE_RECURSE
  "CMakeFiles/test_mark_queue.dir/test_mark_queue.cc.o"
  "CMakeFiles/test_mark_queue.dir/test_mark_queue.cc.o.d"
  "test_mark_queue"
  "test_mark_queue.pdb"
  "test_mark_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mark_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
