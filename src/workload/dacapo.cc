/**
 * @file
 * The DaCapo-inspired profile table.
 *
 * Parameters are calibrated once, here, and shared by every bench and
 * test; no experiment tunes them individually.
 */

#include "dacapo.h"

#include "sim/logging.h"

namespace hwgc::workload
{

std::vector<BenchmarkProfile>
dacapoSuite()
{
    std::vector<BenchmarkProfile> suite;

    // avrora: AVR microcontroller simulation. Small live set, lots of
    // small event/state objects, modest churn; lightest GC load.
    {
        BenchmarkProfile p;
        p.name = "avrora";
        p.graph.liveObjects = 30000;
        p.graph.garbageObjects = 18000;
        p.graph.avgRefs = 2.6;
        p.graph.avgPayloadWords = 3.0;
        p.graph.arrayFraction = 0.06;
        p.graph.shareProb = 0.22;
        p.graph.seed = 0xa17a01;
        p.numGCs = 5;
        p.churnPerGC = 0.25;
        p.mutatorMsPerGC = 85.0;
        suite.push_back(p);
    }

    // luindex: Lucene indexing. Medium live set with a pronounced hot
    // set of analyzer/term metadata objects (the Fig 21 phenomenon).
    {
        BenchmarkProfile p;
        p.name = "luindex";
        p.graph.liveObjects = 42000;
        p.graph.garbageObjects = 26000;
        p.graph.avgRefs = 3.0;
        p.graph.avgPayloadWords = 4.0;
        p.graph.arrayFraction = 0.10;
        p.graph.shareProb = 0.30;
        p.graph.hotObjects = 56;
        p.graph.hotRefFraction = 0.32;
        p.graph.seed = 0x10da11;
        p.numGCs = 8;
        p.churnPerGC = 0.30;
        p.mutatorMsPerGC = 82.0;
        suite.push_back(p);
    }

    // lusearch: Lucene search; allocation-heavy query processing with
    // high churn (the paper's latency workload, Fig 1b).
    {
        BenchmarkProfile p;
        p.name = "lusearch";
        p.graph.liveObjects = 52000;
        p.graph.garbageObjects = 48000;
        p.graph.avgRefs = 2.8;
        p.graph.avgPayloadWords = 5.0;
        p.graph.arrayFraction = 0.12;
        p.graph.shareProb = 0.24;
        p.graph.seed = 0x105ea;
        p.numGCs = 8;
        p.churnPerGC = 0.45;
        p.mutatorMsPerGC = 57.0;
        suite.push_back(p);
    }

    // pmd: source-code analysis; big AST-shaped heaps, deep pointer
    // chains, large live set — one of the two heaviest benchmarks.
    {
        BenchmarkProfile p;
        p.name = "pmd";
        p.graph.liveObjects = 95000;
        p.graph.garbageObjects = 55000;
        p.graph.avgRefs = 3.6;
        p.graph.avgPayloadWords = 3.0;
        p.graph.arrayFraction = 0.08;
        p.graph.shareProb = 0.34;
        p.graph.seed = 0x9319d;
        p.numGCs = 5;
        p.churnPerGC = 0.30;
        p.mutatorMsPerGC = 150.0;
        suite.push_back(p);
    }

    // sunflow: ray tracing; float-array heavy, relatively few
    // references per object, light GC load.
    {
        BenchmarkProfile p;
        p.name = "sunflow";
        p.graph.liveObjects = 34000;
        p.graph.garbageObjects = 30000;
        p.graph.avgRefs = 2.0;
        p.graph.avgPayloadWords = 8.0;
        p.graph.arrayFraction = 0.18;
        p.graph.avgArrayLen = 40.0;
        p.graph.largeFraction = 0.02;
        p.graph.shareProb = 0.18;
        p.graph.seed = 0x50f107;
        p.numGCs = 5;
        p.churnPerGC = 0.35;
        p.mutatorMsPerGC = 270.0;
        suite.push_back(p);
    }

    // xalan: XSLT processing; the heaviest benchmark — large live
    // set, high sharing (DOM nodes), heavy churn.
    {
        BenchmarkProfile p;
        p.name = "xalan";
        p.graph.liveObjects = 115000;
        p.graph.garbageObjects = 70000;
        p.graph.avgRefs = 3.4;
        p.graph.avgPayloadWords = 3.0;
        p.graph.arrayFraction = 0.10;
        p.graph.shareProb = 0.36;
        p.graph.seed = 0xa1a9;
        p.numGCs = 6;
        p.churnPerGC = 0.40;
        p.mutatorMsPerGC = 120.0;
        suite.push_back(p);
    }

    return suite;
}

BenchmarkProfile
dacapoProfile(const std::string &name)
{
    for (const auto &p : dacapoSuite()) {
        if (p.name == name) {
            return p;
        }
    }
    fatal("unknown benchmark profile '%s'", name.c_str());
}

BenchmarkProfile
smokeProfile()
{
    BenchmarkProfile p;
    p.name = "smoke";
    p.graph.liveObjects = 2000;
    p.graph.garbageObjects = 1200;
    p.graph.numRoots = 16;
    p.graph.seed = 42;
    p.numGCs = 2;
    p.churnPerGC = 0.3;
    p.mutatorMsPerGC = 5.0;
    return p;
}

} // namespace hwgc::workload
