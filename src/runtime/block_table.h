/**
 * @file
 * Encoding of the in-memory block descriptor table.
 *
 * The reclamation unit "iterates through a list of blocks" (paper
 * §IV-B); that list is this table, written by the runtime when blocks
 * are carved and updated by whichever sweep implementation ran last.
 * Both the software sweep and the hardware block sweepers read and
 * write exactly this format, which is what lets tests assert their
 * results are bit-identical.
 *
 * Entry layout (4 words):
 *   word0  block base VA
 *   word1  geometry: cellBytes | (sizeClass << 32)
 *   word2  free-list head (cell VA, 0 = empty)
 *   word3  sweep summary: (freeCells << 1) | hasLive
 */

#ifndef HWGC_RUNTIME_BLOCK_TABLE_H
#define HWGC_RUNTIME_BLOCK_TABLE_H

#include "sim/types.h"

namespace hwgc::runtime
{

/** Helpers for reading/writing block descriptor entries. */
struct BlockTableEntry
{
    static constexpr unsigned words = 4;

    /** Address of entry @p idx in a table based at @p table_base. */
    static Addr
    addr(Addr table_base, std::uint64_t idx)
    {
        return table_base + idx * words * wordBytes;
    }

    static Word
    makeGeometry(std::uint32_t cell_bytes, unsigned size_class)
    {
        return Word(cell_bytes) | (Word(size_class) << 32);
    }

    static std::uint32_t
    cellBytes(Word geometry)
    {
        return std::uint32_t(geometry & 0xffffffffULL);
    }

    static unsigned
    sizeClass(Word geometry)
    {
        return unsigned(geometry >> 32);
    }

    static Word
    makeSummary(std::uint32_t free_cells, bool has_live)
    {
        return (Word(free_cells) << 1) | (has_live ? 1 : 0);
    }

    static std::uint32_t
    freeCells(Word summary)
    {
        return std::uint32_t(summary >> 1);
    }

    static bool
    hasLive(Word summary)
    {
        return (summary & 1ULL) != 0;
    }
};

} // namespace hwgc::runtime

#endif // HWGC_RUNTIME_BLOCK_TABLE_H
