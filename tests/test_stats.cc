/**
 * @file
 * Statistics-framework unit tests: Histogram bucket-edge behaviour,
 * TimeSeries bucket growth, Vector bounds checking, and a JSON
 * round-trip of the telemetry exporter through a minimal parser.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "sim/telemetry.h"

namespace hwgc
{
namespace
{

// ---------------------------------------------------------------------
// Histogram: power-of-two buckets, edges, saturation.
// ---------------------------------------------------------------------

TEST(Histogram, BucketEdgesArePowersOfTwo)
{
    stats::Histogram h("lat");
    // Bucket b holds v where 2^b <= v+1 < 2^(b+1):
    //   bucket 0: {0}, bucket 1: {1, 2}, bucket 2: {3..6}, ...
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(6);
    h.sample(7);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 6 + 7);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 19.0 / 6.0);
}

TEST(Histogram, LargeSamplesSaturateTheLastBucket)
{
    stats::Histogram h("lat", 4); // Buckets cover {0}, {1,2}, {3..6}...
    h.sample(6);                  // Last in-range value for bucket 2.
    h.sample(7);                  // First value of the catch-all.
    h.sample(1'000'000);          // Way past the top edge.
    EXPECT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_EQ(h.maxValue(), 1'000'000u);
}

TEST(Histogram, ResetClearsEverything)
{
    stats::Histogram h("lat", 8);
    h.sample(5);
    h.sample(100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    for (const auto b : h.buckets()) {
        EXPECT_EQ(b, 0u);
    }
    h.sample(3); // min_ must re-seed after the reset.
    EXPECT_EQ(h.minValue(), 3u);
}

// ---------------------------------------------------------------------
// TimeSeries: bucket growth and accumulation.
// ---------------------------------------------------------------------

TEST(TimeSeries, GrowsToCoverTheLatestSampleOnly)
{
    stats::TimeSeries ts("bw", 100);
    EXPECT_TRUE(ts.buckets().empty());
    ts.record(0, 7);
    EXPECT_EQ(ts.buckets().size(), 1u);
    ts.record(499, 1); // Tick 499 lands in bucket 4 -> 5 buckets.
    ASSERT_EQ(ts.buckets().size(), 5u);
    EXPECT_EQ(ts.buckets()[0], 7u);
    EXPECT_EQ(ts.buckets()[1], 0u);
    EXPECT_EQ(ts.buckets()[4], 1u);

    ts.record(99, 3); // Back-fill: same bucket as tick 0.
    EXPECT_EQ(ts.buckets()[0], 10u);
    EXPECT_EQ(ts.buckets().size(), 5u); // No further growth.
    EXPECT_EQ(ts.bucketWidth(), 100u);

    ts.reset();
    EXPECT_TRUE(ts.buckets().empty());
}

// ---------------------------------------------------------------------
// Vector: labelled sub-counters with hard bounds.
// ---------------------------------------------------------------------

TEST(Vector, AccumulatesPerLabelAndTotals)
{
    stats::Vector v("reqs", {"marker", "tracer", "sweeper"});
    v.add(0);
    v.add(1, 10);
    v.add(1);
    EXPECT_EQ(v.value(0), 1u);
    EXPECT_EQ(v.value(1), 11u);
    EXPECT_EQ(v.value(2), 0u);
    EXPECT_EQ(v.total(), 12u);
    EXPECT_EQ(v.label(1), "tracer");
}

TEST(VectorDeathTest, OutOfRangeIndexPanics)
{
    stats::Vector v("reqs", {"a", "b"});
    EXPECT_DEATH(v.add(2), "out of range");
}

// ---------------------------------------------------------------------
// JSON round-trip: a minimal recursive-descent parser, just enough to
// re-read what StatsRegistry::exportJson writes.
// ---------------------------------------------------------------------

struct Json
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> items;
    std::map<std::string, Json> fields;

    const Json &
    at(const std::string &key) const
    {
        const auto it = fields.find(key);
        if (it == fields.end()) {
            throw std::runtime_error("missing key: " + key);
        }
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return fields.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : s_(std::move(text)) {}

    Json
    parse()
    {
        const Json v = value();
        skipWs();
        if (pos_ != s_.size()) {
            fail("trailing characters");
        }
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            fail("unexpected end of input");
        }
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size()) {
                    fail("bad escape");
                }
                const char e = s_[pos_++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'u':
                    // The exporter only emits \u00XX control codes.
                    if (pos_ + 4 > s_.size()) {
                        fail("bad \\u escape");
                    }
                    c = char(std::strtol(s_.substr(pos_, 4).c_str(),
                                         nullptr, 16));
                    pos_ += 4;
                    break;
                  default: c = e; break; // \" \\ \/
                }
            }
            out += c;
        }
        expect('"');
        return out;
    }

    Json
    value()
    {
        Json v;
        const char c = peek();
        if (c == '{') {
            ++pos_;
            v.kind = Json::Kind::Object;
            if (!consumeIf('}')) {
                do {
                    std::string key = string();
                    expect(':');
                    v.fields.emplace(std::move(key), value());
                } while (consumeIf(','));
                expect('}');
            }
        } else if (c == '[') {
            ++pos_;
            v.kind = Json::Kind::Array;
            if (!consumeIf(']')) {
                do {
                    v.items.push_back(value());
                } while (consumeIf(','));
                expect(']');
            }
        } else if (c == '"') {
            v.kind = Json::Kind::String;
            v.str = string();
        } else if (s_.compare(pos_, 4, "true") == 0) {
            v.kind = Json::Kind::Bool;
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v.kind = Json::Kind::Bool;
            pos_ += 5;
        } else if (s_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
        } else {
            char *end = nullptr;
            v.kind = Json::Kind::Number;
            v.number = std::strtod(s_.c_str() + pos_, &end);
            if (end == s_.c_str() + pos_) {
                fail("bad number");
            }
            pos_ = std::size_t(end - s_.c_str());
        }
        return v;
    }

    std::string s_;
    std::size_t pos_ = 0;
};

/** A group carrying one of each stat kind, with known values. */
class ExportRig
{
  public:
    ExportRig()
        : scalar_("requests"), vector_("perClient", {"cpu", "gc"}),
          histogram_("latency", 8), series_("bandwidth", 100),
          group_("rig")
    {
        scalar_ += 42;
        vector_.add(0, 5);
        vector_.add(1, 7);
        histogram_.sample(3);
        histogram_.sample(4);
        series_.record(0, 11);
        series_.record(250, 22);
        group_.add(&scalar_);
        group_.add(&vector_);
        group_.add(&histogram_);
        group_.add(&series_);
    }

    stats::Scalar scalar_;
    stats::Vector vector_;
    stats::Histogram histogram_;
    stats::TimeSeries series_;
    stats::Group group_;
};

void
expectRigValues(const Json &g)
{
    EXPECT_DOUBLE_EQ(g.at("scalars").at("requests").number, 42.0);

    const Json &vec = g.at("vectors").at("perClient");
    EXPECT_DOUBLE_EQ(vec.at("labels").at("cpu").number, 5.0);
    EXPECT_DOUBLE_EQ(vec.at("labels").at("gc").number, 7.0);
    EXPECT_DOUBLE_EQ(vec.at("total").number, 12.0);

    const Json &hist = g.at("histograms").at("latency");
    EXPECT_DOUBLE_EQ(hist.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(hist.at("sum").number, 7.0);
    EXPECT_DOUBLE_EQ(hist.at("min").number, 3.0);
    EXPECT_DOUBLE_EQ(hist.at("max").number, 4.0);
    EXPECT_DOUBLE_EQ(hist.at("mean").number, 3.5);
    ASSERT_EQ(hist.at("buckets").items.size(), 8u);
    EXPECT_DOUBLE_EQ(hist.at("buckets").items[2].number, 2.0);

    const Json &ts = g.at("timeseries").at("bandwidth");
    EXPECT_DOUBLE_EQ(ts.at("bucketWidth").number, 100.0);
    ASSERT_EQ(ts.at("buckets").items.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.at("buckets").items[0].number, 11.0);
    EXPECT_DOUBLE_EQ(ts.at("buckets").items[2].number, 22.0);
}

TEST(StatsJson, ExportRoundTripsThroughAParser)
{
    auto &registry = telemetry::StatsRegistry::global();
    ExportRig rig;
    const std::string path =
        registry.add("test.jsonRoundTrip", &rig.group_);

    telemetry::RunMetadata meta;
    meta.binary = "test_stats";
    meta.kernel = "event";
    meta.config = "round \"trip\"\n"; // Exercise string escaping.
    meta.simCycles = 1234;
    meta.extra.emplace_back("note", "hello");

    std::ostringstream os;
    registry.exportJson(os, meta);
    const Json root = JsonParser(os.str()).parse();

    EXPECT_EQ(root.at("meta").at("binary").str, "test_stats");
    EXPECT_EQ(root.at("meta").at("kernel").str, "event");
    EXPECT_EQ(root.at("meta").at("config").str, "round \"trip\"\n");
    EXPECT_DOUBLE_EQ(root.at("meta").at("sim_cycles").number, 1234.0);
    EXPECT_EQ(root.at("meta").at("note").str, "hello");
    EXPECT_EQ(root.at("intervals").kind, Json::Kind::Array);

    ASSERT_TRUE(root.at("groups").has(path));
    expectRigValues(root.at("groups").at(path));

    registry.remove(path);
    registry.clearRetired();
}

TEST(StatsJson, RetiredGroupsSurviveRemovalWithFinalValues)
{
    auto &registry = telemetry::StatsRegistry::global();
    std::string path;
    {
        ExportRig rig;
        path = registry.add("test.retired", &rig.group_);
        registry.remove(path); // Rig dies after this scope...
    }
    telemetry::RunMetadata meta;
    std::ostringstream os;
    registry.exportJson(os, meta); // ...but its values must persist.
    const Json root = JsonParser(os.str()).parse();
    ASSERT_TRUE(root.at("groups").has(path));
    expectRigValues(root.at("groups").at(path));
    registry.clearRetired();
}

TEST(StatsJson, IntervalSnapshotsRecordNonZeroDeltasOnly)
{
    auto &registry = telemetry::StatsRegistry::global();
    registry.clearSnapshots();

    stats::Scalar busy("busy");
    stats::Scalar idle("idle");
    stats::Group group("snap");
    group.add(&busy);
    group.add(&idle);
    const std::string path = registry.add("test.snap", &group);

    busy += 10;
    registry.snapshot(1000);
    busy += 5;
    registry.snapshot(2000);
    registry.snapshot(3000); // Nothing moved: empty delta row.
    EXPECT_EQ(registry.numSnapshots(), 3u);

    telemetry::RunMetadata meta;
    std::ostringstream os;
    registry.exportJson(os, meta);
    const Json root = JsonParser(os.str()).parse();
    const auto &rows = root.at("intervals").items;
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_DOUBLE_EQ(rows[0].at("cycle").number, 1000.0);
    EXPECT_DOUBLE_EQ(rows[0].at("deltas").at(path + ".busy").number,
                     10.0);
    EXPECT_FALSE(rows[0].at("deltas").has(path + ".idle"));
    EXPECT_DOUBLE_EQ(rows[1].at("deltas").at(path + ".busy").number,
                     5.0);
    EXPECT_TRUE(rows[2].at("deltas").fields.empty());

    registry.remove(path);
    registry.clearRetired();
}

// ---------------------------------------------------------------------
// Device churn: fleet mode registers and retires "system.hwgcN" style
// groups over and over as devices context-switch between tenants.
// ---------------------------------------------------------------------

TEST(StatsJson, DeviceChurnDoesNotLeakRetiredTwins)
{
    auto &registry = telemetry::StatsRegistry::global();

    stats::Scalar first_ctr("requests");
    stats::Group first("gen1");
    first.add(&first_ctr);
    first_ctr += 111;
    const std::string path = registry.add("test.churn.dev", &first);
    EXPECT_EQ(path, "test.churn.dev");
    registry.remove(path);

    // The slot's next occupant supersedes the retired values: the
    // export must carry exactly one group at this path (the live
    // one), not an ever-growing stack of "#N" twins.
    stats::Scalar second_ctr("requests");
    stats::Group second("gen2");
    second.add(&second_ctr);
    second_ctr += 7;
    const std::string path2 = registry.add("test.churn.dev", &second);
    EXPECT_EQ(path2, path);

    telemetry::RunMetadata meta;
    std::ostringstream os;
    registry.exportJson(os, meta);
    const Json root = JsonParser(os.str()).parse();
    ASSERT_TRUE(root.at("groups").has(path));
    EXPECT_FALSE(root.at("groups").has(path + "#1"));
    EXPECT_DOUBLE_EQ(
        root.at("groups").at(path).at("scalars").at("requests").number,
        7.0);

    registry.remove(path2);
    registry.clearRetired();
}

TEST(StatsJson, ReRegistrationStartsIntervalDeltasFresh)
{
    auto &registry = telemetry::StatsRegistry::global();
    registry.clearSnapshots();

    stats::Scalar first_ctr("requests");
    stats::Group first("gen1");
    first.add(&first_ctr);
    const std::string path = registry.add("test.churn.delta", &first);
    first_ctr += 100;
    registry.snapshot(1000);
    registry.remove(path);

    // The new occupant's counter starts far below the dead one's
    // running total; its first delta must be its own +3, not the
    // -97 the stale baseline used to produce.
    stats::Scalar second_ctr("requests");
    stats::Group second("gen2");
    second.add(&second_ctr);
    ASSERT_EQ(registry.add("test.churn.delta", &second), path);
    second_ctr += 3;
    registry.snapshot(2000);

    telemetry::RunMetadata meta;
    std::ostringstream os;
    registry.exportJson(os, meta);
    const Json root = JsonParser(os.str()).parse();
    const auto &rows = root.at("intervals").items;
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(
        rows[0].at("deltas").at(path + ".requests").number, 100.0);
    EXPECT_DOUBLE_EQ(
        rows[1].at("deltas").at(path + ".requests").number, 3.0);

    registry.remove(path);
    registry.clearRetired();
    registry.clearSnapshots();
}

TEST(StatsRegistry, IndexedPrefixPinsTheSlotAndBumpsTheCounter)
{
    auto &registry = telemetry::StatsRegistry::global();
    // Restore pins a device to the index the image was saved under...
    EXPECT_EQ(registry.indexedPrefix("test.churn.idx", 5),
              "test.churn.idx5");
    // ...and later fresh devices must not be handed the same slot.
    EXPECT_EQ(registry.uniquePrefix("test.churn.idx"),
              "test.churn.idx6");
    // Re-pinning a low index is stable and does not rewind the
    // counter.
    EXPECT_EQ(registry.indexedPrefix("test.churn.idx", 2),
              "test.churn.idx2");
    EXPECT_EQ(registry.uniquePrefix("test.churn.idx"),
              "test.churn.idx7");
}

} // namespace
} // namespace hwgc
