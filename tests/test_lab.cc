/**
 * @file
 * Tests for the GcLab experiment harness (the §VI-A methodology).
 */

#include <gtest/gtest.h>

#include "driver/gc_lab.h"

namespace hwgc::driver
{
namespace
{

workload::BenchmarkProfile
tinyProfile(unsigned gcs = 3)
{
    auto p = workload::smokeProfile();
    p.numGCs = gcs;
    p.graph.liveObjects = 1200;
    p.graph.garbageObjects = 700;
    return p;
}

TEST(GcLab, BothEnginesSeeTheSamePause)
{
    GcLab lab(tinyProfile());
    const auto &results = lab.run();
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        // objectsMarked is set by whichever engine ran last but must
        // agree with the workload: both engines saw identical input.
        EXPECT_GT(r.objectsMarked, 0u);
        EXPECT_GT(r.cellsFreed, 0u);
        EXPECT_GT(r.swMarkCycles, r.hwMarkCycles);
        EXPECT_GT(r.liveObjects, 0u);
        EXPECT_GT(r.blocks, 0u);
    }
}

TEST(GcLab, SwOnlyMode)
{
    LabConfig config;
    config.runHw = false;
    GcLab lab(tinyProfile(2), config);
    const auto &results = lab.run();
    for (const auto &r : results) {
        EXPECT_GT(r.swMarkCycles, 0u);
        EXPECT_EQ(r.hwMarkCycles, 0u);
    }
}

TEST(GcLab, HwOnlyMode)
{
    LabConfig config;
    config.runSw = false;
    GcLab lab(tinyProfile(2), config);
    const auto &results = lab.run();
    for (const auto &r : results) {
        EXPECT_EQ(r.swMarkCycles, 0u);
        EXPECT_GT(r.hwMarkCycles, 0u);
    }
}

TEST(GcLab, VerifyModePassesOnHealthyHeaps)
{
    LabConfig config;
    config.verify = true;
    GcLab lab(tinyProfile(2), config);
    lab.run(); // Verification panics on any violation.
    SUCCEED();
}

TEST(GcLab, AveragesMatchResults)
{
    GcLab lab(tinyProfile(2));
    const auto &results = lab.run();
    double sw = 0, hw = 0;
    for (const auto &r : results) {
        sw += double(r.swMarkCycles);
        hw += double(r.hwMarkCycles);
    }
    EXPECT_DOUBLE_EQ(lab.avgSwMarkCycles(), sw / results.size());
    EXPECT_DOUBLE_EQ(lab.avgHwMarkCycles(), hw / results.size());
}

TEST(GcLab, HwCountersPopulated)
{
    GcLab lab(tinyProfile(1));
    const auto &results = lab.run();
    const HwCounters &hw = results[0].hw;
    EXPECT_GT(hw.tracerRequests, 0u);
    EXPECT_GT(hw.dramBytes, 0u);
    EXPECT_GT(hw.busCycles, 0u);
    EXPECT_GT(hw.busBusyCycles, 0u);
}

TEST(GcLab, PausesEvolveWithChurn)
{
    GcLab lab(tinyProfile(3));
    const auto &results = lab.run();
    // Churn changes the live set; later pauses should differ from the
    // first (not byte-for-byte identical workloads).
    EXPECT_NE(results[0].objectsMarked, results[2].objectsMarked);
}

TEST(GcLab, DeterministicAcrossConstructions)
{
    auto run = [] {
        GcLab lab(tinyProfile(2));
        lab.run();
        return std::pair{lab.avgSwMarkCycles(), lab.avgHwMarkCycles()};
    };
    EXPECT_EQ(run(), run());
}

TEST(GcLab, IdealMemoryConfigRuns)
{
    LabConfig config;
    config.hwgc.memModel = core::MemModel::Ideal;
    GcLab lab(tinyProfile(1), config);
    const auto &results = lab.run();
    EXPECT_GT(results[0].hwMarkCycles, 0u);
    EXPECT_EQ(lab.cpuDram(), nullptr); // CPU uses the pipe as well.
}

} // namespace
} // namespace hwgc::driver
