file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_superpages.dir/bench_ext_superpages.cc.o"
  "CMakeFiles/bench_ext_superpages.dir/bench_ext_superpages.cc.o.d"
  "bench_ext_superpages"
  "bench_ext_superpages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_superpages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
