/**
 * @file
 * Ablation — bidirectional vs conventional (TIB) object layout on
 * the traversal unit (paper §IV-A idea I / Fig 6).
 *
 * The paper: the conventional layout "adds two additional memory
 * accesses per object in a cacheless system", while the bidirectional
 * layout "identifies reference fields without any extra accesses" and
 * trades scattered reads for a unit-stride copy.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Ablation: bidirectional vs TIB layout",
                  "TIB layout costs extra dependent reads per object");

    std::printf("  %-10s %12s %12s %8s %14s\n", "benchmark",
                "bidir mark", "TIB mark", "slowdown", "extra reads");
    for (const auto &profile : workload::dacapoSuite()) {
        driver::LabConfig bidir;
        bidir.runSw = false;
        driver::GcLab bidir_lab(profile, bidir);
        bidir_lab.run(2);

        driver::LabConfig tib;
        tib.runSw = false;
        tib.hwgc.layout = runtime::Layout::Tib;
        tib.heap.layout = runtime::Layout::Tib;
        driver::GcLab tib_lab(profile, tib);
        tib_lab.run(2);

        const double fast = bidir_lab.avgHwMarkCycles();
        const double slow = tib_lab.avgHwMarkCycles();
        std::printf("  %-10s %9.3f ms %9.3f ms %7.2fx %14llu\n",
                    profile.name.c_str(), bench::msFromCycles(fast),
                    bench::msFromCycles(slow), slow / fast,
                    (unsigned long long)
                        tib_lab.device().tracer().tibExtraReads());
    }
    return 0;
}
