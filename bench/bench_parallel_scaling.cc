/**
 * @file
 * ParallelBsp scaling sweep: threads x partition-scheme x workload.
 *
 * For each workload the event kernel sets the single-thread baseline,
 * then the parallel kernel runs every combination of host thread
 * count {1, 2, 4} and partition scheme {legacy, fine, cost}. Every
 * run must produce the same simulated cycle count and mark total as
 * the event baseline (the kernels are bit-identical by contract), so
 * the host wall clock is the only thing the sweep varies.
 *
 * Beyond cycles-per-host-second, the sweep records the superstep
 * counters that attribute where the parallel kernel's overhead goes:
 * fan-out/join rounds (barriers), batched cycles (cycles executed
 * without a commit round under the no-staged-events proof), staged
 * cross-partition events (ring traffic), and worker handshakes.
 * All of those are deterministic, so they land in the canonical
 * BENCH_parallel_scaling.json record and scripts/bench_compare.py
 * diffs them exactly against bench/baseline/ — a change to the
 * dispatch or batching logic shows up in review as a readable diff
 * of superstep counts, not just a wall-clock blur.
 *
 * --min-speedup=T:R exits nonzero unless, at T threads, the best
 * scheme reaches at least R x the event kernel's throughput on at
 * least one workload. CI uses this as the scaling smoke; it is off
 * by default because a loaded single-core host cannot honestly pass.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/hwgc_device.h"
#include "runtime/heap.h"
#include "workload/graph_gen.h"

namespace
{

using namespace hwgc;

struct Run
{
    double hostSeconds = 0.0;
    Tick simCycles = 0;
    std::uint64_t marked = 0;
    std::uint64_t supersteps = 0;
    std::uint64_t batchedCycles = 0;
    std::uint64_t stagedEvents = 0;
    std::uint64_t handshakes = 0;
};

Run
runOne(const workload::GraphParams &graph, KernelMode kernel,
       unsigned threads, const char *scheme)
{
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    workload::GraphBuilder builder(heap, graph);
    builder.build();
    heap.clearAllMarks();
    heap.publishRoots();
    core::HwgcConfig config;
    config.kernel = kernel;
    config.hostThreads = threads;
    config.hostPartition = scheme;
    core::HwgcDevice device(mem, heap.pageTable(), config);
    device.configure(heap);
    bench::HostTimer timer;
    const core::HwPhaseResult result = device.collect();
    Run r;
    r.hostSeconds = timer.seconds();
    r.simCycles = result.cycles;
    r.marked = result.objectsMarked;
    r.supersteps = device.system().bspSupersteps();
    r.batchedCycles = device.system().bspBatchedCycles();
    r.stagedEvents = device.system().bspStagedEvents();
    r.handshakes = device.system().bspHandshakes();
    return r;
}

Run
bestOf(const workload::GraphParams &graph, KernelMode kernel,
       unsigned threads, const char *scheme, int reps)
{
    Run best = runOne(graph, kernel, threads, scheme);
    for (int i = 1; i < reps; ++i) {
        const Run r = runOne(graph, kernel, threads, scheme);
        fatal_if(r.simCycles != best.simCycles ||
                     r.marked != best.marked,
                 "bench_parallel_scaling: nondeterministic rerun "
                 "(%s, %u threads)",
                 scheme, threads);
        if (r.hostSeconds < best.hostSeconds) {
            best = r;
        }
    }
    return best;
}

struct SchemeDef
{
    const char *spec;  //!< --host-partition= value.
    const char *label; //!< Metric/report name.
};

constexpr SchemeDef kSchemes[] = {
    {"", "legacy"},
    {"fine", "fine"},
    {"cost", "cost"},
};

constexpr unsigned kThreads[] = {1, 2, 4};

/**
 * Runs one workload through the full sweep. Returns, indexed by
 * position in kThreads, the best event-relative speedup any scheme
 * reached at that thread count.
 */
std::vector<double>
runWorkload(const char *name, const workload::GraphParams &graph,
            bench::BenchRecord &record)
{
    const std::string label =
        std::string("bench_parallel_scaling/") + name;
    const Run event = bestOf(graph, KernelMode::Event, 0, "", 2);
    record.metric(std::string(name) + ".sim_cycles",
                  std::uint64_t(event.simCycles));
    record.metric(std::string(name) + ".marked", event.marked);
    bench::printKernelSpeed(label.c_str(), "event", event.hostSeconds,
                            double(event.simCycles));

    std::vector<double> best(std::size(kThreads), 0.0);
    for (const SchemeDef &scheme : kSchemes) {
        // The dispatch/batching counters depend only on the partition
        // scheme, never on the worker count: the commit thread decides
        // what runs each superstep before any work is handed out.
        // The sweep checks that invariant instead of assuming it.
        std::uint64_t supersteps = 0;
        std::uint64_t batched = 0;
        std::uint64_t staged = 0;
        bool first = true;
        for (std::size_t t = 0; t < std::size(kThreads); ++t) {
            const unsigned threads = kThreads[t];
            const Run r = bestOf(graph, KernelMode::ParallelBsp,
                                 threads, scheme.spec, 2);
            fatal_if(r.simCycles != event.simCycles ||
                         r.marked != event.marked,
                     "bench_parallel_scaling: %s/%s@%u diverged from "
                     "event kernel (%llu vs %llu cycles)",
                     name, scheme.label, threads,
                     (unsigned long long)r.simCycles,
                     (unsigned long long)event.simCycles);
            if (first) {
                supersteps = r.supersteps;
                batched = r.batchedCycles;
                staged = r.stagedEvents;
                first = false;
            } else {
                fatal_if(r.supersteps != supersteps ||
                             r.batchedCycles != batched ||
                             r.stagedEvents != staged,
                         "bench_parallel_scaling: %s/%s dispatch "
                         "counters vary with thread count",
                         name, scheme.label);
            }
            const std::string kern =
                std::string("parallel-") + scheme.label;
            bench::printKernelSpeed(label.c_str(), kern.c_str(),
                                    r.hostSeconds,
                                    double(r.simCycles), threads);
            std::printf("%s: %s@%u handshakes %llu\n", label.c_str(),
                        scheme.label, threads,
                        (unsigned long long)r.handshakes);
            record.metric(std::string(name) + "." + scheme.label +
                              ".handshakes.t" +
                              std::to_string(threads),
                          r.handshakes);
            const double speedup = event.hostSeconds / r.hostSeconds;
            if (speedup > best[t]) {
                best[t] = speedup;
            }
        }
        const std::string key =
            std::string(name) + "." + scheme.label;
        record.metric(key + ".supersteps", supersteps);
        record.metric(key + ".batched_cycles", batched);
        record.metric(key + ".staged_events", staged);
        std::printf("%s: %s supersteps %llu, batched cycles %llu "
                    "(%.1f%% of %llu executed), staged events %llu\n",
                    label.c_str(), scheme.label,
                    (unsigned long long)supersteps,
                    (unsigned long long)batched,
                    100.0 * double(batched) /
                        double(event.simCycles ? event.simCycles : 1),
                    (unsigned long long)event.simCycles,
                    (unsigned long long)staged);
    }
    for (std::size_t t = 0; t < std::size(kThreads); ++t) {
        std::printf("%s: best parallel@%u speedup vs event: %.2fx\n",
                    label.c_str(), kThreads[t], best[t]);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    unsigned assertThreads = 0;
    double assertRatio = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
            if (std::sscanf(argv[i] + 14, "%u:%lf", &assertThreads,
                            &assertRatio) != 2) {
                std::fprintf(stderr,
                             "usage: --min-speedup=THREADS:RATIO\n");
                return 2;
            }
        }
    }

    bench::banner("parallel-kernel scaling sweep",
                  "threads x partition scheme x workload; "
                  "cycles are checked identical across all runs");
    std::printf("host cores: %u\n",
                std::thread::hardware_concurrency());

    bench::BenchRecord record("parallel_scaling");
    bench::HostTimer suite_timer;

    // Wide mark-dominated graph: the Fig 15 shape, enough MLP that
    // every unit has work each cycle.
    workload::GraphParams wide;
    wide.liveObjects = 30000;
    wide.garbageObjects = 15000;
    wide.numRoots = 32;
    wide.seed = 13;
    const std::vector<double> wideBest =
        runWorkload("wide", wide, record);

    // Large heap: the parallel kernel's target shape — enough live
    // work per simulated cycle to amortize the fan-out/join cost
    // (same shape as bench_micro/large-heap).
    workload::GraphParams large;
    large.liveObjects = 120000;
    large.garbageObjects = 60000;
    large.numRoots = 64;
    large.seed = 29;
    const std::vector<double> largeBest =
        runWorkload("large-heap", large, record);

    record.write(suite_timer.seconds());

    if (assertThreads != 0) {
        double best = 0.0;
        for (std::size_t t = 0; t < std::size(kThreads); ++t) {
            if (kThreads[t] == assertThreads) {
                best = std::max(wideBest[t], largeBest[t]);
            }
        }
        if (best < assertRatio) {
            std::fprintf(stderr,
                         "parallel scaling smoke FAILED: best "
                         "parallel@%u speedup %.2fx < required "
                         "%.2fx\n",
                         assertThreads, best, assertRatio);
            return 1;
        }
        std::printf("parallel scaling smoke passed: parallel@%u "
                    "best %.2fx >= %.2fx\n",
                    assertThreads, best, assertRatio);
    }
    return 0;
}
