/**
 * @file
 * Differential fuzz runner implementation.
 */

#include "differ.h"

#include <memory>
#include <sstream>

#include "core/hwgc_device.h"
#include "cpu/core_model.h"
#include "gc/sw_collector.h"
#include "gc/verifier.h"
#include "mem/dram.h"
#include "mem/ideal_mem.h"
#include "mem/interconnect.h"
#include "runtime/object_model.h"
#include "sim/checkpoint.h"
#include "sim/telemetry.h"

namespace hwgc::fuzz
{

namespace
{

/** Everything one collection produces that must agree somewhere. */
struct CollectDigest
{
    /** Bit-identical across kernels within one configuration. */
    Tick markCycles = 0;
    Tick sweepCycles = 0;
    std::uint64_t objectsMarked = 0; //!< Device counter (may overcount).
    std::uint64_t refsTraced = 0;
    std::uint64_t cellsFreed = 0;

    /** Functional outcome: identical across *every* configuration. */
    std::uint64_t markedCount = 0; //!< Distinct marked objects.
    std::uint64_t markDigest = 0;  //!< gc::markSetDigest.
    std::uint64_t freedObjects = 0;
    std::uint64_t liveAfter = 0;
};

/** Witness digest from the software-collector universe. */
struct SwDigest
{
    std::uint64_t markedCount = 0;
    std::uint64_t markDigest = 0;
    std::uint64_t freedObjects = 0;
    std::uint64_t liveAfter = 0;
};

/** One hardware leg: its own heap image and device — or, when the
 *  config asks for `devices=N` with N > 1, a fleet-shaped array of N
 *  devices behind one shared System + interconnect + memory, with the
 *  schedule's collections round-robined across the array. Every
 *  device retargets the same heap, so the functional digests must
 *  match the single-device legs exactly. */
class HwUniverse
{
  public:
    HwUniverse(const Schedule &schedule, const core::HwgcConfig &config)
        : heap_(mem_), builder_(heap_, graphParams(schedule))
    {
        builder_.build();
        heap_.clearAllMarks();
        heap_.publishRoots();
        if (config.devices <= 1) {
            device_ = std::make_unique<core::HwgcDevice>(
                mem_, heap_.pageTable(), config);
            return;
        }

        // Fleet shape: mirror FleetLab's SoC wiring (kernel mode
        // first, units registered before bus before memory, partition
        // d for device d's units).
        sys_ = std::make_unique<System>();
        sys_->setMode(config.kernel);
        if (config.memModel == core::MemModel::Ddr3) {
            auto dram =
                std::make_unique<mem::Dram>("dram", config.dram, mem_);
            dram_ = dram.get();
            memory_ = std::move(dram);
        } else {
            memory_ = std::make_unique<mem::IdealMem>("idealmem",
                                                      config.ideal, mem_);
        }
        bus_ = std::make_unique<mem::Interconnect>("bus", config.bus,
                                                   *memory_);
        auto &registry = telemetry::StatsRegistry::global();
        for (unsigned d = 0; d < config.devices; ++d) {
            core::SocContext soc;
            soc.system = sys_.get();
            soc.bus = bus_.get();
            soc.memory = memory_.get();
            soc.dram = dram_;
            soc.namePrefix = "hwgc" + std::to_string(d) + ".";
            soc.statsPrefix = registry.indexedPrefix("system.hwgc", d);
            soc.unitPartition = d;
            fleet_.push_back(std::make_unique<core::HwgcDevice>(
                mem_, heap_.pageTable(), config, soc));
        }
        sys_->add(bus_.get());
        sys_->add(memory_.get());
        sys_->declareWakeupInputs(bus_.get(), {memory_.get()});
        sys_->declareWakeupInputs(memory_.get(), {});
        for (auto &dev : fleet_) {
            dev->declareSharedBusEdges();
        }
        if (config.kernel == KernelMode::ParallelBsp) {
            sys_->setPartition(bus_.get(), config.devices);
            sys_->setPartition(memory_.get(), config.devices + 1);
            sys_->setHostThreads(
                config.hostThreads != 0 ? config.hostThreads : 1);
        }
    }

    void mutate(double churn) { builder_.mutate(churn); }

    /**
     * Runs one full pause, filling @p digest. Returns false with a
     * message when a within-universe oracle (mark set vs closure,
     * swept-heap invariants) fails.
     */
    bool
    collect(bool inject_mark_bug, CollectDigest &digest,
            std::string &error)
    {
        heap_.clearAllMarks();
        heap_.publishRoots();
        core::HwgcDevice &dev = fleet_.empty()
            ? *device_
            : *fleet_[collectIdx_++ % fleet_.size()];
        dev.resetPhaseState();
        dev.resetStats();
        dev.configure(heap_);

        const auto mark = fleet_.empty() ? dev.runMark()
                                         : runFleetPhase(dev, true);
        if (inject_mark_bug) {
            injectMarkBug();
        }
        digest.markCycles = mark.cycles;
        digest.objectsMarked = mark.objectsMarked;
        digest.refsTraced = mark.refsTraced;
        digest.markedCount = heap_.countMarked();
        digest.markDigest = gc::markSetDigest(heap_);

        const auto marks_ok = gc::verifyMarks(heap_);
        if (!marks_ok.ok) {
            error = "hw mark set != reachability closure: " +
                marks_ok.error;
            return false;
        }

        const auto sweep = fleet_.empty() ? dev.runSweep()
                                          : runFleetPhase(dev, false);
        digest.sweepCycles = sweep.cycles;
        digest.cellsFreed = sweep.cellsFreed;

        const auto swept_ok = gc::verifySweptHeap(heap_);
        if (!swept_ok.ok) {
            error = "swept-heap invariant: " + swept_ok.error;
            return false;
        }
        const auto lists_ok = gc::verifyFreeLists(heap_);
        if (!lists_ok.ok) {
            error = "free-list invariant: " + lists_ok.error;
            return false;
        }

        digest.freedObjects = heap_.onAfterSweep();
        digest.liveAfter = heap_.liveObjects();
        return true;
    }

    /**
     * The device to crash-checkpoint on divergence, or nullptr for
     * fleet shapes: fleet-mode devices are checkpointed by their
     * driver, not per device, so the artifact writer skips the
     * architectural snapshot there (the schedule + repro line still
     * reproduce the universe exactly).
     */
    core::HwgcDevice *checkpointDevice()
    {
        return device_.get();
    }

  private:
    /**
     * Drives the shared System in fixed quanta until the launched
     * phase reports done AND the device's own components drained
     * (FleetLab's completion rule). Decisions at quantum boundaries
     * keep the fleet legs bit-identical across kernels.
     */
    core::HwPhaseResult
    runFleetPhase(core::HwgcDevice &dev, bool mark)
    {
        const Tick start = sys_->now();
        if (mark) {
            dev.startMark();
        } else {
            dev.startSweep();
        }
        const auto drained = [&] {
            if (mark ? !dev.markDone() : !dev.sweepDone()) {
                return false;
            }
            for (const Clocked *c : dev.ownComponents()) {
                if (c->busy()) {
                    return false;
                }
            }
            return true;
        };
        std::uint64_t quanta = 0;
        while (!drained()) {
            sys_->run(256);
            panic_if(++quanta > (1ULL << 24),
                     "fuzz fleet universe wedged: %s phase never "
                     "drained", mark ? "mark" : "sweep");
        }
        core::HwPhaseResult result =
            mark ? dev.finishMark() : dev.finishSweep();
        result.cycles = sys_->now() - start;
        return result;
    }

    /** The deliberate bug: lose the last marked object's mark bit. */
    void
    injectMarkBug()
    {
        for (auto it = heap_.objects().rbegin();
             it != heap_.objects().rend(); ++it) {
            const Word hdr = heap_.read(it->ref);
            if (runtime::StatusWord::marked(hdr)) {
                heap_.write(it->ref,
                            hdr & ~runtime::StatusWord::markBit);
                return;
            }
        }
    }

    mem::PhysMem mem_;
    runtime::Heap heap_;
    workload::GraphBuilder builder_;
    std::unique_ptr<core::HwgcDevice> device_; //!< devices <= 1.

    /** Fleet shape (devices > 1): shared SoC + device array. @{ */
    std::unique_ptr<System> sys_;
    std::unique_ptr<mem::MemDevice> memory_;
    mem::Dram *dram_ = nullptr;
    std::unique_ptr<mem::Interconnect> bus_;
    std::vector<std::unique_ptr<core::HwgcDevice>> fleet_;
    std::size_t collectIdx_ = 0; //!< Round-robin dispatch counter.
    /** @} */
};

/** The software-collector witness leg. */
class SwUniverse
{
  public:
    explicit SwUniverse(const Schedule &schedule)
        : heap_(mem_), builder_(heap_, graphParams(schedule)),
          swMem_("cpu.idealmem", {}, mem_),
          core_("rocket", {}, mem_, heap_.pageTable(), swMem_),
          collector_(heap_, core_)
    {
        builder_.build();
        heap_.clearAllMarks();
        heap_.publishRoots();
    }

    void mutate(double churn) { builder_.mutate(churn); }

    bool
    collect(SwDigest &digest, std::string &error)
    {
        heap_.clearAllMarks();
        heap_.publishRoots();
        collector_.mark();
        digest.markedCount = heap_.countMarked();
        digest.markDigest = gc::markSetDigest(heap_);
        const auto marks_ok = gc::verifyMarks(heap_);
        if (!marks_ok.ok) {
            error = "sw mark set != reachability closure: " +
                marks_ok.error;
            return false;
        }
        collector_.sweep();
        digest.freedObjects = heap_.onAfterSweep();
        digest.liveAfter = heap_.liveObjects();
        return true;
    }

  private:
    mem::PhysMem mem_;
    runtime::Heap heap_;
    workload::GraphBuilder builder_;
    mem::IdealMem swMem_;
    cpu::CoreModel core_;
    gc::SwCollector collector_;
};

/** Compares @p got against @p want, naming the first differing field. */
bool
compareKernelDigest(const CollectDigest &want, const CollectDigest &got,
                    std::string &error)
{
    const struct
    {
        const char *name;
        std::uint64_t want, got;
    } fields[] = {
        {"markCycles", want.markCycles, got.markCycles},
        {"sweepCycles", want.sweepCycles, got.sweepCycles},
        {"objectsMarked", want.objectsMarked, got.objectsMarked},
        {"refsTraced", want.refsTraced, got.refsTraced},
        {"cellsFreed", want.cellsFreed, got.cellsFreed},
        {"markedCount", want.markedCount, got.markedCount},
        {"markDigest", want.markDigest, got.markDigest},
        {"freedObjects", want.freedObjects, got.freedObjects},
        {"liveAfter", want.liveAfter, got.liveAfter},
    };
    for (const auto &field : fields) {
        if (field.want != field.got) {
            std::ostringstream os;
            os << "cross-kernel divergence: " << field.name << " "
               << field.got << " != reference kernel's " << field.want;
            error = os.str();
            return false;
        }
    }
    return true;
}

/** Functional-outcome compare across configurations. */
bool
compareFunctional(const CollectDigest &want, const CollectDigest &got,
                  std::string &error)
{
    const struct
    {
        const char *name;
        std::uint64_t want, got;
    } fields[] = {
        {"markedCount", want.markedCount, got.markedCount},
        {"markDigest", want.markDigest, got.markDigest},
        {"freedObjects", want.freedObjects, got.freedObjects},
        {"liveAfter", want.liveAfter, got.liveAfter},
    };
    for (const auto &field : fields) {
        if (field.want != field.got) {
            std::ostringstream os;
            os << "cross-config divergence: " << field.name << " "
               << field.got << " != reference config's " << field.want;
            error = os.str();
            return false;
        }
    }
    return true;
}

} // namespace

std::vector<KernelCase>
kernelMatrix()
{
    return {
        {KernelMode::Dense, 0, "dense"},
        {KernelMode::Event, 0, "event"},
        {KernelMode::ParallelBsp, 1, "parallel@1"},
        {KernelMode::ParallelBsp, 4, "parallel@4"},
    };
}

bool
kernelCaseFromName(const std::string &name, KernelCase &out)
{
    if (name == "dense") {
        out = {KernelMode::Dense, 0, name};
        return true;
    }
    if (name == "event") {
        out = {KernelMode::Event, 0, name};
        return true;
    }
    const std::string parallel = "parallel";
    if (name.rfind(parallel, 0) == 0) {
        unsigned threads = 1;
        if (name.size() > parallel.size()) {
            if (name[parallel.size()] != '@') {
                return false;
            }
            const std::string n = name.substr(parallel.size() + 1);
            if (n.empty() ||
                n.find_first_not_of("0123456789") != std::string::npos) {
                return false;
            }
            threads = unsigned(std::stoul(n));
        }
        out = {KernelMode::ParallelBsp, threads, name};
        return true;
    }
    return false;
}

FuzzResult
runSchedule(const Schedule &schedule, const FuzzOptions &options)
{
    const std::vector<ConfigPoint> grid =
        options.grid.empty() ? quickGrid() : options.grid;
    const std::vector<KernelCase> kernels =
        options.kernels.empty() ? kernelMatrix() : options.kernels;

    FuzzResult result;
    const std::string seed_tag =
        "seed" + std::to_string(schedule.seed);

    const auto fail = [&](const std::string &config,
                          const std::string &kernel, int op,
                          const std::string &what,
                          core::HwgcDevice *device) {
        result.ok = false;
        result.configName = config;
        result.kernelName = kernel;
        result.failedOp = op;
        result.error = "[" + seed_tag + " config=" + config +
            " kernel=" + kernel + " op=" + std::to_string(op) + "] " +
            what;
        if (!options.writeArtifacts) {
            return result;
        }
        // Divergence artifacts: the schedule, a crash checkpoint of
        // the diverged universe (collision-safe pid-suffixed path),
        // and a replay line that reproduces this exact universe.
        const std::string dir =
            options.artifactDir.empty() ? "." : options.artifactDir;
        result.schedulePath = dir + "/fuzz-" + seed_tag + ".sched";
        saveFile(result.schedulePath, schedule);
        if (device != nullptr) {
            result.crashPath = checkpoint::crashArtifactBase(
                dir + "/fuzz-" + seed_tag + ".ckpt");
            device->writeCheckpoint(result.crashPath);
        }
        std::string spec;
        for (const ConfigPoint &point : grid) {
            if (point.name == config) {
                spec = point.spec;
            }
        }
        result.reproLine = options.driverName +
            " --schedule=" + result.schedulePath +
            " --config=" + (spec.empty() ? std::string("default")
                                         : spec) +
            " --kernel=" + kernel +
            (options.injectMarkBug ? " --inject-mark-bug" : "");
        return result;
    };

    // The software witness replays the schedule once; its per-collect
    // digests are the reference every hardware leg must match.
    std::vector<SwDigest> sw_ref;
    {
        SwUniverse sw(schedule);
        for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
            const Op &op = schedule.ops[i];
            if (op.kind == Op::Kind::Mutate) {
                sw.mutate(double(op.churnPermille) / 1000.0);
                continue;
            }
            SwDigest digest;
            std::string error;
            if (!sw.collect(digest, error)) {
                return fail("-", "sw", int(i), error, nullptr);
            }
            sw_ref.push_back(digest);
        }
    }

    // Functional reference across configurations (filled by the first
    // config's first kernel leg).
    std::vector<CollectDigest> func_ref;

    for (std::size_t ci = 0; ci < grid.size(); ++ci) {
        const ConfigPoint &point = grid[ci];
        core::HwgcConfig base;
        std::string spec_err;
        if (!applyConfigSpec(base, point.spec, &spec_err)) {
            return fail(point.name, "-", -1,
                        "bad config spec: " + spec_err, nullptr);
        }

        // Cycle/stat reference across kernels within this config.
        std::vector<CollectDigest> kernel_ref;

        for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
            const KernelCase &kc = kernels[ki];
            core::HwgcConfig config = base;
            config.kernel = kc.mode;
            if (kc.threads != 0) {
                config.hostThreads = kc.threads;
            }
            const bool inject_here = options.injectMarkBug &&
                ci + 1 == grid.size() && ki + 1 == kernels.size();

            HwUniverse universe(schedule, config);
            std::size_t collect_idx = 0;
            for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
                const Op &op = schedule.ops[i];
                if (op.kind == Op::Kind::Mutate) {
                    universe.mutate(double(op.churnPermille) / 1000.0);
                    continue;
                }
                CollectDigest digest;
                std::string error;
                const bool inject = inject_here && collect_idx == 0;
                if (!universe.collect(inject, digest, error)) {
                    return fail(point.name, kc.name, int(i), error,
                                universe.checkpointDevice());
                }

                // (b) HW vs the software-collector witness.
                const SwDigest &sw = sw_ref[collect_idx];
                if (digest.markedCount != sw.markedCount ||
                    digest.markDigest != sw.markDigest ||
                    digest.freedObjects != sw.freedObjects ||
                    digest.liveAfter != sw.liveAfter) {
                    std::ostringstream os;
                    os << "hw/sw witness divergence: marked "
                       << digest.markedCount << "/sw " << sw.markedCount
                       << ", freed " << digest.freedObjects << "/sw "
                       << sw.freedObjects << ", live " << digest.liveAfter
                       << "/sw " << sw.liveAfter;
                    return fail(point.name, kc.name, int(i), os.str(),
                                universe.checkpointDevice());
                }

                // (a) bit-identical across kernels within the config...
                if (ki == 0) {
                    kernel_ref.push_back(digest);
                } else if (!compareKernelDigest(kernel_ref[collect_idx],
                                                digest, error)) {
                    return fail(point.name, kc.name, int(i), error,
                                universe.checkpointDevice());
                }

                // ...and functionally identical across configs.
                if (ci == 0 && ki == 0) {
                    func_ref.push_back(digest);
                } else if (!compareFunctional(func_ref[collect_idx],
                                              digest, error)) {
                    return fail(point.name, kc.name, int(i), error,
                                universe.checkpointDevice());
                }

                ++collect_idx;
                ++result.collectsRun;
            }
        }
    }
    return result;
}

} // namespace hwgc::fuzz
