/**
 * @file
 * Extension bench — bandwidth throttling (paper §VII: "This
 * interference could be reduced by communicating with the memory
 * controller to only use residual bandwidth" and "Switching these
 * units on and off would allow a concurrent GC to throttle or boost
 * tracing"). Sweeps a token-bucket cap on the unit's bus and reports
 * the mark-time / bandwidth trade-off.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Extension: bandwidth throttling (Sec VII)",
                  "graceful GC pacing against a bytes/cycle budget");

    const auto profile = workload::dacapoProfile("avrora");

    std::printf("  %-12s %12s %14s %14s\n", "cap (GB/s)", "mark",
                "DRAM GB/s", "stall grants");
    for (const double cap : {0.0, 8.0, 4.0, 2.0, 1.0, 0.5}) {
        driver::LabConfig config;
        config.runSw = false;
        config.hwgc.bus.throttleBytesPerCycle = cap; // 1 B/cyc = 1 GB/s.
        driver::GcLab lab(profile, config);
        lab.run(2);
        const auto &r = lab.results().back();
        const double seconds =
            double(r.hwMarkCycles + r.hwSweepCycles) / coreClockHz;
        const double gbps = double(r.hw.dramBytes) / seconds / 1e9;
        if (cap == 0.0) {
            std::printf("  %-12s", "unlimited");
        } else {
            std::printf("  %-12.1f", cap);
        }
        std::printf(" %9.3f ms %11.3f GB/s %14llu\n",
                    bench::msFromCycles(lab.avgHwMarkCycles()), gbps,
                    (unsigned long long)
                        lab.device().bus().throttledGrants());
    }
    std::printf("\n  (measured DRAM bandwidth stays under each cap; "
                "mark time degrades smoothly)\n");
    return 0;
}
