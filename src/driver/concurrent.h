/**
 * @file
 * Concurrent marking on the GC unit (paper §IV-D).
 *
 * The paper's concurrent design needs no CPU changes: mutators apply
 * a snapshot-style write barrier that appends every overwritten
 * reference "into the same region in memory that is used to
 * communicate the roots", and the traversal unit streams that region
 * into the mark queue while mutators keep running. Objects allocated
 * during the mark are born black. Under these two rules every object
 * reachable when the mark began is guaranteed to be marked (the
 * snapshot-at-the-beginning invariant), which is exactly what rules
 * out the Fig 3 hidden-object race.
 *
 * ConcurrentMarkLab interleaves a mutator (modeled as functional heap
 * mutations on other cores, with the barrier's log appends) with the
 * ticking traversal unit, then quiesces and reports whether the
 * invariant held, how much barrier traffic was generated, and how
 * much floating garbage the snapshot retained.
 */

#ifndef HWGC_DRIVER_CONCURRENT_H
#define HWGC_DRIVER_CONCURRENT_H

#include <unordered_set>

#include "core/hwgc_device.h"
#include "sim/random.h"
#include "workload/graph_gen.h"

namespace hwgc::driver
{

/** Concurrent-mark experiment configuration. */
struct ConcurrentParams
{
    /** Mutator actions applied per epoch (between unit epochs). */
    unsigned mutationsPerEpoch = 2;

    /** Unit cycles per mutator epoch (mutator speed knob). */
    Tick epochCycles = 400;

    /** Total mutator actions before the mutator quiesces. */
    std::uint64_t totalMutations = 1500;

    /** Apply the §IV-D write barrier (off shows the Fig 3 race). */
    bool useWriteBarrier = true;

    /** Allocate new objects black during the mark. */
    bool allocateBlack = true;

    /** Fraction of mutations that allocate a new object. */
    double allocFraction = 0.3;

    std::uint64_t seed = 99;
};

/** Outcome of one concurrent mark. */
struct ConcurrentResult
{
    Tick markCycles = 0;
    std::uint64_t mutations = 0;
    std::uint64_t barrierEntries = 0;
    std::uint64_t startReachable = 0;  //!< |snapshot| at mark start.
    std::uint64_t lostObjects = 0;     //!< Snapshot objects unmarked
                                       //!< at the end (must be 0 with
                                       //!< the barrier).
    std::uint64_t markedAtEnd = 0;
    std::uint64_t floatingGarbage = 0; //!< Marked but unreachable at
                                       //!< the end (snapshot slack).
};

/** Runs one concurrent mark with an interleaved mutator. */
class ConcurrentMarkLab
{
  public:
    ConcurrentMarkLab(runtime::Heap &heap,
                      workload::GraphBuilder &builder,
                      core::HwgcDevice &device,
                      const ConcurrentParams &params);

    /** Executes the concurrent mark to completion. */
    ConcurrentResult run();

  private:
    /** One mutator action: overwrite an edge or allocate black. */
    void mutateOnce();

    /** Appends @p ref to the barrier log in hwgc-space. */
    void logBarrier(runtime::ObjRef ref);

    runtime::Heap &heap_;
    workload::GraphBuilder &builder_;
    core::HwgcDevice &device_;
    ConcurrentParams params_;
    Rng rng_;

    std::uint64_t regionCount_ = 0; //!< Entries in hwgc-space.
    std::uint64_t barrierEntries_ = 0;
    std::vector<runtime::ObjRef> mutatorView_; //!< Objects it may touch.
};

} // namespace hwgc::driver

#endif // HWGC_DRIVER_CONCURRENT_H
