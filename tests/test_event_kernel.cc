/**
 * @file
 * Event-kernel equivalence tests: the event-driven kernel must be a
 * cycle-exact, stat-exact drop-in for the dense reference kernel on
 * every configuration we model, and System::schedule() must never
 * lose a cycle no matter how a wakeup is requested.
 */

#include <gtest/gtest.h>

#include "driver/gc_lab.h"

namespace hwgc
{
namespace
{

// ---------------------------------------------------------------------
// Device-level A/B: run the same pause sequence under both kernels and
// require every cycle count and statistic to match bit for bit.
// ---------------------------------------------------------------------

struct KernelSignature
{
    Tick hwMark = 0;
    Tick hwSweep = 0;
    std::uint64_t marked = 0;
    std::uint64_t freed = 0;
    std::uint64_t tracerRequests = 0;
    std::uint64_t spillWrites = 0;
    std::uint64_t spillReads = 0;
    std::uint64_t spilled = 0;
    std::uint64_t markerTlbMisses = 0;
    std::uint64_t tracerTlbMisses = 0;
    std::uint64_t ptwWalks = 0;
    std::uint64_t busBusyCycles = 0;
    std::uint64_t busCycles = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
};

KernelSignature
runWithKernel(core::HwgcConfig config, KernelMode kernel,
              const workload::BenchmarkProfile &profile)
{
    config.kernel = kernel;
    driver::LabConfig lab_config;
    lab_config.runSw = false;
    lab_config.verify = true; // Oracle-check marks and the swept heap.
    lab_config.hwgc = config;
    lab_config.heap.layout = config.layout; // Heap must match device.
    driver::GcLab lab(profile, lab_config);
    lab.run();

    // Fold every pause in, so divergence in any pause is caught even
    // if a later pause happens to compensate.
    KernelSignature sig;
    for (const auto &pause : lab.results()) {
        sig.hwMark += pause.hwMarkCycles;
        sig.hwSweep += pause.hwSweepCycles;
        sig.marked += pause.objectsMarked;
        sig.freed += pause.cellsFreed;
        sig.tracerRequests += pause.hw.tracerRequests;
        sig.spillWrites += pause.hw.spillWrites;
        sig.spillReads += pause.hw.spillReads;
        sig.spilled += pause.hw.entriesSpilled;
        sig.markerTlbMisses += pause.hw.markerTlbMisses;
        sig.tracerTlbMisses += pause.hw.tracerTlbMisses;
        sig.ptwWalks += pause.hw.ptwWalks;
        sig.busBusyCycles += pause.hw.busBusyCycles;
        sig.busCycles += pause.hw.busCycles;
        sig.dramBytes += pause.hw.dramBytes;
        sig.dramReads += pause.hw.dramReads;
        sig.dramWrites += pause.hw.dramWrites;
    }
    return sig;
}

void
expectKernelsAgree(const core::HwgcConfig &config,
                   const workload::BenchmarkProfile &profile)
{
    const auto dense =
        runWithKernel(config, KernelMode::Dense, profile);
    const auto event =
        runWithKernel(config, KernelMode::Event, profile);
    EXPECT_EQ(dense.hwMark, event.hwMark);
    EXPECT_EQ(dense.hwSweep, event.hwSweep);
    EXPECT_EQ(dense.marked, event.marked);
    EXPECT_EQ(dense.freed, event.freed);
    EXPECT_EQ(dense.tracerRequests, event.tracerRequests);
    EXPECT_EQ(dense.spillWrites, event.spillWrites);
    EXPECT_EQ(dense.spillReads, event.spillReads);
    EXPECT_EQ(dense.spilled, event.spilled);
    EXPECT_EQ(dense.markerTlbMisses, event.markerTlbMisses);
    EXPECT_EQ(dense.tracerTlbMisses, event.tracerTlbMisses);
    EXPECT_EQ(dense.ptwWalks, event.ptwWalks);
    EXPECT_EQ(dense.busBusyCycles, event.busBusyCycles);
    EXPECT_EQ(dense.busCycles, event.busCycles);
    EXPECT_EQ(dense.dramBytes, event.dramBytes);
    EXPECT_EQ(dense.dramReads, event.dramReads);
    EXPECT_EQ(dense.dramWrites, event.dramWrites);
}

TEST(EventKernel, MatchesDenseOnBaselineDdr3)
{
    expectKernelsAgree(core::HwgcConfig{}, workload::smokeProfile());
}

TEST(EventKernel, MatchesDenseWithSharedCache)
{
    core::HwgcConfig config;
    config.sharedCache = true;
    expectKernelsAgree(config, workload::smokeProfile());
}

TEST(EventKernel, MatchesDenseOnIdealMemory)
{
    core::HwgcConfig config;
    config.memModel = core::MemModel::Ideal;
    expectKernelsAgree(config, workload::smokeProfile());
}

TEST(EventKernel, MatchesDenseUnderSpillPressure)
{
    core::HwgcConfig config;
    config.markQueueEntries = 32; // Force mark-queue spills.
    expectKernelsAgree(config, workload::smokeProfile());
}

TEST(EventKernel, MatchesDenseUnderBandwidthThrottle)
{
    core::HwgcConfig config;
    config.bus.throttleBytesPerCycle = 1.0;
    expectKernelsAgree(config, workload::smokeProfile());
}

TEST(EventKernel, MatchesDenseOnTibLayout)
{
    core::HwgcConfig config;
    config.layout = runtime::Layout::Tib;
    expectKernelsAgree(config, workload::smokeProfile());
}

TEST(EventKernel, MatchesDenseOnFig15Workload)
{
    // The bench_fig15 configuration is the default HwgcConfig; run it
    // on one DaCapo-profile heap (scaled to one pause to keep the
    // dense reference run affordable in a unit test).
    auto profile = workload::dacapoProfile("avrora");
    profile.numGCs = 1;
    expectKernelsAgree(core::HwgcConfig{}, profile);
}

// ---------------------------------------------------------------------
// Kernel-level scheduling semantics.
// ---------------------------------------------------------------------

/**
 * Drives itself purely through System::schedule(), deliberately
 * requesting wakeups at the current cycle and in the past: the kernel
 * must clamp those to "next evaluated cycle" and tick on consecutive
 * cycles with no gap and no lost cycle.
 */
class Rescheduler : public Clocked
{
  public:
    Rescheduler(System &sys, unsigned total)
        : Clocked("resched"), sys_(sys), total_(total)
    {
    }

    void
    tick(Tick now) override
    {
        ticks.push_back(now);
        if (ticks.size() < total_) {
            // At now, or 5 cycles in the past — both must behave as
            // "tick me on the very next cycle".
            sys_.schedule(this, now >= 5 ? now - 5 : now);
        }
    }

    bool busy() const override { return ticks.size() < total_; }
    Tick nextWakeup(Tick) const override { return maxTick; }

    std::vector<Tick> ticks;

  private:
    System &sys_;
    unsigned total_;
};

TEST(EventKernel, PastAndPresentSchedulesLoseNoCycle)
{
    System sys;
    sys.setMode(KernelMode::Event);
    Rescheduler r(sys, 8);
    sys.add(&r);
    sys.schedule(&r, 0);
    EXPECT_TRUE(sys.runUntilIdle(100));
    ASSERT_EQ(r.ticks.size(), 8u);
    for (std::size_t i = 0; i < r.ticks.size(); ++i) {
        EXPECT_EQ(r.ticks[i], Tick(i)); // Consecutive, starting at 0.
    }
    EXPECT_EQ(sys.now(), 8u);
}

TEST(EventKernel, FutureScheduleFiresExactlyOnTime)
{
    System sys;
    sys.setMode(KernelMode::Event);
    Rescheduler r(sys, 1);
    sys.add(&r);
    sys.schedule(&r, 7);
    sys.run(10);
    ASSERT_EQ(r.ticks.size(), 1u);
    EXPECT_EQ(r.ticks[0], 7u);
    EXPECT_EQ(sys.now(), 10u); // run() still covers the full span.
}

// ---------------------------------------------------------------------
// Skipping really happens, and skipped spans are still accounted.
// ---------------------------------------------------------------------

/** Does one unit of work every @p period cycles, for five pulses. */
class Pulse : public Clocked
{
  public:
    explicit Pulse(Tick period) : Clocked("pulse"), period_(period) {}

    void
    tick(Tick now) override
    {
        ++tickCalls;
        if (now % period_ == 0 && work < 5) {
            ++work;
        }
    }

    bool busy() const override { return work < 5; }

    Tick
    nextWakeup(Tick now) const override
    {
        if (work >= 5) {
            return maxTick;
        }
        return now % period_ == 0 ? now
                                  : now + (period_ - now % period_);
    }

    Tick period_;
    unsigned work = 0;
    std::uint64_t tickCalls = 0;
};

/** Counts elapsed cycles through tick() and fastForward() alike. */
class CycleLedger : public Clocked
{
  public:
    CycleLedger() : Clocked("ledger") { hasFastForward_ = true; }
    void tick(Tick) override { ++cycles; }
    bool busy() const override { return false; }
    void fastForward(Tick from, Tick to) override
    {
        cycles += to - from;
    }
    std::uint64_t cycles = 0;
};

TEST(EventKernel, SkipsIdleCyclesButKeepsTimeAndStateExact)
{
    auto run = [](KernelMode mode) {
        System sys;
        sys.setMode(mode);
        Pulse pulse(100);
        CycleLedger ledger;
        sys.add(&pulse);
        sys.add(&ledger);
        EXPECT_TRUE(sys.runUntilIdle(10'000));
        EXPECT_EQ(ledger.cycles, sys.now());
        return std::tuple{sys.now(), pulse.work, pulse.tickCalls};
    };
    const auto [dense_now, dense_work, dense_ticks] =
        run(KernelMode::Dense);
    const auto [event_now, event_work, event_ticks] =
        run(KernelMode::Event);

    EXPECT_EQ(dense_now, event_now);   // Same simulated time...
    EXPECT_EQ(dense_work, event_work); // ...same state...
    EXPECT_EQ(event_ticks, 5u);        // ...but only 5 real ticks
    EXPECT_GT(dense_ticks, 100u);      // vs one per cycle densely.
}

} // namespace
} // namespace hwgc
