/**
 * @file
 * Quickstart: build a managed heap, publish roots, run one collection
 * on the GC accelerator, and verify the result against the software
 * collector and the reachability oracle.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "core/hwgc_device.h"
#include "cpu/core_model.h"
#include "gc/sw_collector.h"
#include "gc/verifier.h"
#include "mem/dram.h"
#include "workload/graph_gen.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;

    // 1. A simulated machine: physical memory + a managed heap.
    mem::PhysMem phys_mem;
    runtime::Heap heap(phys_mem);

    // 2. Populate it: either allocate objects by hand...
    const runtime::ObjRef root = heap.allocate(/*num_refs=*/2,
                                               /*payload_words=*/4);
    const runtime::ObjRef child = heap.allocate(1, 2);
    const runtime::ObjRef garbage = heap.allocate(0, 8);
    heap.setRef(root, 0, child);
    heap.addRoot(root);
    (void)garbage; // Unreachable: the GC should free it.

    // ...or synthesize a realistic object graph.
    workload::GraphParams shape;
    shape.liveObjects = 5000;
    shape.garbageObjects = 3000;
    shape.seed = 2026;
    workload::GraphBuilder builder(heap, shape);
    builder.build();

    std::printf("heap: %llu objects across %zu blocks "
                "(%llu KiB allocated)\n",
                (unsigned long long)heap.liveObjects(),
                heap.blocks().size(),
                (unsigned long long)(heap.bytesAllocated() / 1024));

    // 3. Instantiate the accelerator and let the "driver" program its
    //    MMIO registers from the process state (paper Fig 10).
    core::HwgcConfig config; // The paper's baseline design point.
    core::HwgcDevice device(phys_mem, heap.pageTable(), config);
    device.configure(heap);

    // 4. Run a stop-the-world collection on the unit. (Snapshot the
    //    heap image first so step 6 can replay the identical pause.)
    const mem::PhysMem::Snapshot pause_image = phys_mem.snapshot();
    const core::HwPhaseResult mark = device.runMark();
    const core::HwPhaseResult sweep = device.runSweep();
    std::printf("hardware GC: mark %.3f ms (%llu objects), "
                "sweep %.3f ms (%llu cells freed)\n",
                double(mark.cycles) / 1e6,
                (unsigned long long)mark.objectsMarked,
                double(sweep.cycles) / 1e6,
                (unsigned long long)sweep.cellsFreed);

    // 5. Verify against the oracle.
    const auto marks_ok = gc::verifyMarks(heap);
    const auto swept_ok = gc::verifySweptHeap(heap);
    std::printf("verification: marks %s, swept heap %s\n",
                marks_ok.ok ? "OK" : marks_ok.error.c_str(),
                swept_ok.ok ? "OK" : swept_ok.error.c_str());

    // 6. Compare with the CPU baseline on the same pause: replay the
    //    identical heap image through the software collector.
    const mem::PhysMem::Snapshot hw_result = phys_mem.snapshot();
    phys_mem.restore(pause_image);
    mem::Dram cpu_dram("cpu.dram", config.dram, phys_mem);
    cpu::CoreModel core("rocket", cpu::CoreParams{}, phys_mem,
                        heap.pageTable(), cpu_dram);
    gc::SwCollector sw(heap, core);
    const gc::GcResult sw_result = sw.collect();
    std::printf("software GC: mark %.3f ms, sweep %.3f ms "
                "-> unit speedup %.2fx (mark)\n",
                double(sw_result.markCycles) / 1e6,
                double(sw_result.sweepCycles) / 1e6,
                double(sw_result.markCycles) / double(mark.cycles));

    // 7. Hand the unit's free lists back to the runtime and keep
    //    allocating.
    phys_mem.restore(hw_result);
    const std::uint64_t reclaimed = heap.onAfterSweep();
    std::printf("runtime resynced: %llu objects reclaimed; "
                "allocating into recycled cells works: %s\n",
                (unsigned long long)reclaimed,
                heap.allocate(1, 1) != runtime::nullRef ? "yes" : "no");
    return 0;
}
