/**
 * @file
 * Extension bench — superpages (paper §VII: "As discussed in Section
 * VI-A, the TLB is currently a bottleneck, but large heaps could use
 * superpages instead of 4KB pages"). Compares mark time and
 * translation traffic with 4 KiB pages vs 2 MiB superpages.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Extension: 2 MiB superpages (Sec VII)",
                  "superpages remove the blocking-PTW serialization");

    std::printf("  %-10s | %12s %10s | %12s %10s | %8s\n", "benchmark",
                "4K mark", "walks", "2M mark", "walks", "speedup");
    for (const auto &profile : workload::dacapoSuite()) {
        double mark_ms[2];
        std::uint64_t walks[2];
        for (const bool super : {false, true}) {
            driver::LabConfig config;
            config.runSw = false;
            config.heap.useSuperpages = super;
            driver::GcLab lab(profile, config);
            lab.run(2);
            mark_ms[super] =
                bench::msFromCycles(lab.avgHwMarkCycles());
            walks[super] = lab.device().ptw().walksStarted();
        }
        std::printf("  %-10s | %9.3f ms %10llu | %9.3f ms %10llu | "
                    "%7.2fx\n",
                    profile.name.c_str(), mark_ms[0],
                    (unsigned long long)walks[0], mark_ms[1],
                    (unsigned long long)walks[1],
                    mark_ms[0] / mark_ms[1]);
    }
    std::printf("\n  (the unit's TLB reach grows 512x; the paper's "
                "Fig 17 ideal-memory gap closes)\n");
    return 0;
}
