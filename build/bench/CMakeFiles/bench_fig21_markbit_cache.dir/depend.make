# Empty dependencies file for bench_fig21_markbit_cache.
# This may be replaced when dependencies are built.
