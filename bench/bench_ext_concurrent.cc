/**
 * @file
 * Extension bench — concurrent marking (paper §IV-D, proposed but not
 * prototyped in the paper): barrier traffic, mark-time dilation and
 * floating garbage as functions of mutator churn.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/concurrent.h"
#include "workload/dacapo.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Extension: concurrent marking (Sec IV-D)",
                  "write barrier via the root region; snapshot "
                  "invariant; floating garbage vs churn");

    const auto profile = workload::dacapoProfile("avrora");

    std::printf("  %-12s %10s %10s %10s %12s %10s\n", "mutations",
                "mark", "barrier", "lost", "floating", "marked");
    for (const std::uint64_t mutations : {0ull, 500ull, 2000ull,
                                          8000ull}) {
        mem::PhysMem phys_mem;
        runtime::Heap heap(phys_mem);
        workload::GraphBuilder builder(heap, profile.graph);
        builder.build();
        heap.clearAllMarks();
        core::HwgcDevice device(phys_mem, heap.pageTable(),
                                core::HwgcConfig{});

        driver::ConcurrentParams params;
        params.totalMutations = mutations;
        params.seed = 4242;
        driver::ConcurrentMarkLab lab(heap, builder, device, params);
        const auto result = lab.run();
        std::printf("  %-12llu %7.3f ms %10llu %10llu %12llu %10llu\n",
                    (unsigned long long)mutations,
                    bench::msFromCycles(double(result.markCycles)),
                    (unsigned long long)result.barrierEntries,
                    (unsigned long long)result.lostObjects,
                    (unsigned long long)result.floatingGarbage,
                    (unsigned long long)result.markedAtEnd);
    }
    std::printf("\n  (lost must be 0 at every churn level: the "
                "snapshot invariant)\n");
    return 0;
}
