# Empty dependencies file for test_unit_components.
# This may be replaced when dependencies are built.
