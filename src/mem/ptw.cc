/**
 * @file
 * Blocking page-table walker implementation.
 */

#include "ptw.h"

#include "sim/checkpoint.h"

namespace hwgc::mem
{

Ptw::Ptw(std::string name, const PtwParams &params,
         const PageTable &page_table, MemPort *port)
    : Clocked(std::move(name)), params_(params), pageTable_(&page_table),
      port_(port), l2Tlb_(this->name() + ".l2tlb", params.l2TlbEntries)
{
    panic_if(port_ == nullptr, "PTW needs a memory port");
}

void
Ptw::requestWalk(Addr va, WalkCallback cb, std::string owner,
                 std::uint64_t token)
{
    pokeWakeup(); // A queued walk can start on the next cycle.
    panic_if(!canRequest(), "PTW queue overflow");
    queue_.push_back({va, std::move(cb), std::move(owner), token});
}

void
Ptw::issueLevel(Tick now)
{
    MemRequest req;
    req.paddr = alignDown(walkPlan_.pteAddr[level_], wordBytes);
    req.size = wordBytes;
    req.op = Op::Read;
    req.tag = level_;
    if (port_->canSend(req)) {
        port_->send(req, now);
        ++pteFetches_;
        awaitingResponse_ = true;
    }
}

void
Ptw::finishWalk(bool valid, Addr pa, unsigned page_bits, Tick now)
{
    if (valid) {
        l2Tlb_.insert(current_.va, pa, page_bits);
    }
    pendingCallbacks_.push_back({now + 1, valid, current_.va, pa,
                                 page_bits, std::move(current_.cb),
                                 std::move(current_.owner),
                                 current_.token});
    walking_ = false;
    awaitingResponse_ = false;
}

void
Ptw::onResponse(const MemResponse &resp, Tick now)
{
    pokeWakeup();
    panic_if(!walking_ || !awaitingResponse_,
             "PTW response without a walk in progress");
    panic_if(resp.req.tag != level_, "PTW response level mismatch");
    awaitingResponse_ = false;
    ++level_;
    if (level_ >= walkPlan_.levels) {
        finishWalk(walkPlan_.valid, walkPlan_.pa, walkPlan_.pageBits,
                   now);
    }
}

void
Ptw::tick(Tick now)
{
    // Fire due callbacks.
    while (!pendingCallbacks_.empty() &&
           pendingCallbacks_.front().readyAt <= now) {
        PendingCallback pc = std::move(pendingCallbacks_.front());
        pendingCallbacks_.pop_front();
        pc.cb(pc.valid, pc.va, pc.pa, pc.pageBits);
    }

    if (walking_) {
        if (!awaitingResponse_ && level_ < walkPlan_.levels) {
            issueLevel(now); // Retry if the port was full last cycle.
        }
        return;
    }

    if (queue_.empty()) {
        return;
    }

    // Start the next walk; the L2 TLB shortcuts the full walk.
    current_ = std::move(queue_.front());
    queue_.pop_front();
    if (const auto hit = l2Tlb_.lookupEntry(current_.va)) {
        ++l2Hits_;
        pendingCallbacks_.push_back({now + params_.l2TlbLatency, true,
                                     current_.va, hit->first,
                                     hit->second,
                                     std::move(current_.cb),
                                     std::move(current_.owner),
                                     current_.token});
        return;
    }
    ++walks_;
    DPRINTF(now, "PTW", "%s: walk va=%#llx", name().c_str(),
            (unsigned long long)current_.va);
    walkPlan_ = pageTable_->walk(current_.va);
    level_ = 0;
    walking_ = true;
    issueLevel(now);
}

bool
Ptw::busy() const
{
    return walking_ || !queue_.empty() || !pendingCallbacks_.empty();
}

Tick
Ptw::nextWakeup(Tick now) const
{
    Tick next = maxTick;
    if (!pendingCallbacks_.empty()) {
        next = pendingCallbacks_.front().readyAt;
    }
    if (walking_) {
        if (!awaitingResponse_ && level_ < walkPlan_.levels) {
            return now; // Port-full retry of the current level.
        }
        return next; // Waiting on a PTE fetch response.
    }
    if (!queue_.empty()) {
        return now; // A new walk can start.
    }
    return next;
}

CycleClass
Ptw::cycleClass(Tick now) const
{
    (void)now;
    if (!busy()) {
        return CycleClass::Idle;
    }
    if (walking_) {
        if (awaitingResponse_) {
            return CycleClass::StallDram; // PTE fetch in flight.
        }
        if (level_ < walkPlan_.levels) {
            MemRequest probe;
            probe.size = wordBytes;
            return port_->canSend(probe) ? CycleClass::Busy
                                         : CycleClass::StallBus;
        }
    }
    // Starting a queued walk, or delivering completion callbacks after
    // their modeled latency: the walker itself is doing the work.
    return CycleClass::Busy;
}

Ptw::WalkCallback
Ptw::resolveCallback(const std::string &owner, std::uint64_t token,
                     const std::string &origin) const
{
    fatal_if(!resolver_,
             "checkpoint '%s': PTW '%s' has in-flight walks but no "
             "callback resolver is installed",
             origin.c_str(), name().c_str());
    WalkCallback cb = resolver_(owner, token);
    fatal_if(!cb,
             "checkpoint '%s': PTW '%s' cannot re-create the walk "
             "callback for owner '%s' token %llu",
             origin.c_str(), name().c_str(), owner.c_str(),
             (unsigned long long)token);
    return cb;
}

void
Ptw::save(checkpoint::Serializer &ser) const
{
    ser.putU64(queue_.size());
    for (const auto &r : queue_) {
        panic_if(r.owner.empty(),
                 "PTW '%s': cannot checkpoint a walk request issued "
                 "without an owner identity",
                 name().c_str());
        ser.putU64(r.va);
        ser.putString(r.owner);
        ser.putU64(r.token);
    }
    ser.putU64(pendingCallbacks_.size());
    for (const auto &pc : pendingCallbacks_) {
        panic_if(pc.owner.empty(),
                 "PTW '%s': cannot checkpoint a walk callback issued "
                 "without an owner identity",
                 name().c_str());
        ser.putU64(pc.readyAt);
        ser.putBool(pc.valid);
        ser.putU64(pc.va);
        ser.putU64(pc.pa);
        ser.putU64(pc.pageBits);
        ser.putString(pc.owner);
        ser.putU64(pc.token);
    }
    ser.putBool(walking_);
    ser.putBool(awaitingResponse_);
    if (walking_) {
        panic_if(current_.owner.empty(),
                 "PTW '%s': cannot checkpoint the current walk: it was "
                 "issued without an owner identity",
                 name().c_str());
        ser.putU64(current_.va);
        ser.putString(current_.owner);
        ser.putU64(current_.token);
        ser.putBool(walkPlan_.valid);
        ser.putU64(walkPlan_.pa);
        for (const Addr a : walkPlan_.pteAddr) {
            ser.putU64(a);
        }
        ser.putU64(walkPlan_.levels);
        ser.putU64(walkPlan_.pageBits);
        ser.putU64(level_);
    }
    checkpoint::putStat(ser, walks_);
    checkpoint::putStat(ser, l2Hits_);
    checkpoint::putStat(ser, pteFetches_);
    l2Tlb_.save(ser);
}

void
Ptw::restore(checkpoint::Deserializer &des)
{
    queue_.clear();
    const std::uint64_t num_queued = des.getU64();
    for (std::uint64_t i = 0; i < num_queued; ++i) {
        WalkRequest r;
        r.va = des.getU64();
        r.owner = des.getString();
        r.token = des.getU64();
        r.cb = resolveCallback(r.owner, r.token, des.origin());
        queue_.push_back(std::move(r));
    }
    pendingCallbacks_.clear();
    const std::uint64_t num_pending = des.getU64();
    for (std::uint64_t i = 0; i < num_pending; ++i) {
        PendingCallback pc;
        pc.readyAt = des.getU64();
        pc.valid = des.getBool();
        pc.va = des.getU64();
        pc.pa = des.getU64();
        pc.pageBits = unsigned(des.getU64());
        pc.owner = des.getString();
        pc.token = des.getU64();
        pc.cb = resolveCallback(pc.owner, pc.token, des.origin());
        pendingCallbacks_.push_back(std::move(pc));
    }
    walking_ = des.getBool();
    awaitingResponse_ = des.getBool();
    current_ = {};
    walkPlan_ = {};
    level_ = 0;
    if (walking_) {
        current_.va = des.getU64();
        current_.owner = des.getString();
        current_.token = des.getU64();
        current_.cb = resolveCallback(current_.owner, current_.token,
                                      des.origin());
        walkPlan_.valid = des.getBool();
        walkPlan_.pa = des.getU64();
        for (auto &a : walkPlan_.pteAddr) {
            a = des.getU64();
        }
        walkPlan_.levels = unsigned(des.getU64());
        walkPlan_.pageBits = unsigned(des.getU64());
        level_ = unsigned(des.getU64());
    }
    checkpoint::getStat(des, walks_);
    checkpoint::getStat(des, l2Hits_);
    checkpoint::getStat(des, pteFetches_);
    l2Tlb_.restore(des);
}

void
Ptw::resetStats()
{
    walks_.reset();
    l2Hits_.reset();
    pteFetches_.reset();
    l2Tlb_.resetStats();
}

} // namespace hwgc::mem
