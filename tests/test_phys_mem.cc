/**
 * @file
 * Unit tests for the functional physical memory.
 */

#include <gtest/gtest.h>

#include "mem/phys_mem.h"

namespace hwgc::mem
{
namespace
{

TEST(PhysMem, ZeroFilledOnFirstTouch)
{
    PhysMem mem;
    EXPECT_EQ(mem.readWord(0x1000), 0u);
    EXPECT_EQ(mem.pagesTouched(), 0u); // Reads do not allocate.
}

TEST(PhysMem, WordRoundTrip)
{
    PhysMem mem;
    mem.writeWord(0x2000, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.readWord(0x2000), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.readWord(0x2008), 0u);
    EXPECT_EQ(mem.pagesTouched(), 1u);
}

TEST(PhysMem, FetchOrReturnsOldValue)
{
    PhysMem mem;
    mem.writeWord(0x3000, 0xf0);
    EXPECT_EQ(mem.fetchOrWord(0x3000, 0x0f), 0xf0u);
    EXPECT_EQ(mem.readWord(0x3000), 0xffu);
}

TEST(PhysMem, BytesAcrossPageBoundary)
{
    PhysMem mem;
    std::vector<std::uint8_t> src(100);
    for (std::size_t i = 0; i < src.size(); ++i) {
        src[i] = std::uint8_t(i);
    }
    const Addr addr = pageBytes - 50; // Straddles the first page.
    mem.writeBytes(addr, src.data(), src.size());
    std::vector<std::uint8_t> dst(100);
    mem.readBytes(addr, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
    EXPECT_EQ(mem.pagesTouched(), 2u);
}

TEST(PhysMem, ZeroRange)
{
    PhysMem mem;
    mem.writeWord(0x4000, ~0ULL);
    mem.writeWord(0x4008, ~0ULL);
    mem.zero(0x4000, 8);
    EXPECT_EQ(mem.readWord(0x4000), 0u);
    EXPECT_EQ(mem.readWord(0x4008), ~0ULL);
}

TEST(PhysMem, ExecuteRead)
{
    PhysMem mem;
    for (unsigned i = 0; i < 8; ++i) {
        mem.writeWord(0x5000 + i * 8, 100 + i);
    }
    MemRequest req;
    req.paddr = 0x5000;
    req.size = 64;
    req.op = Op::Read;
    std::array<Word, maxReqWords> rdata{};
    mem.execute(req, rdata);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(rdata[i], 100 + i);
    }
}

TEST(PhysMem, ExecuteWrite)
{
    PhysMem mem;
    MemRequest req;
    req.paddr = 0x6000;
    req.size = 16;
    req.op = Op::Write;
    req.wdata[0] = 1;
    req.wdata[1] = 2;
    std::array<Word, maxReqWords> rdata{};
    mem.execute(req, rdata);
    EXPECT_EQ(mem.readWord(0x6000), 1u);
    EXPECT_EQ(mem.readWord(0x6008), 2u);
}

TEST(PhysMem, ExecuteFetchOr)
{
    PhysMem mem;
    mem.writeWord(0x7000, 0x10);
    MemRequest req;
    req.paddr = 0x7000;
    req.size = 8;
    req.op = Op::FetchOr;
    req.wdata[0] = 0x1;
    std::array<Word, maxReqWords> rdata{};
    mem.execute(req, rdata);
    EXPECT_EQ(rdata[0], 0x10u);
    EXPECT_EQ(mem.readWord(0x7000), 0x11u);
}

TEST(PhysMem, SnapshotRestore)
{
    PhysMem mem;
    mem.writeWord(0x8000, 11);
    mem.writeWord(0x9000, 22);
    const PhysMem::Snapshot snap = mem.snapshot();
    mem.writeWord(0x8000, 99);
    mem.writeWord(0xa000, 33);
    mem.restore(snap);
    EXPECT_EQ(mem.readWord(0x8000), 11u);
    EXPECT_EQ(mem.readWord(0x9000), 22u);
    EXPECT_EQ(mem.readWord(0xa000), 0u);
}

TEST(PhysMem, ValidTransferRules)
{
    EXPECT_TRUE(validTransfer(0x1000, 8));
    EXPECT_TRUE(validTransfer(0x1a20, 32));
    EXPECT_TRUE(validTransfer(0x1a40, 64));
    EXPECT_FALSE(validTransfer(0x1a18, 16)); // Misaligned for size.
    EXPECT_FALSE(validTransfer(0x1000, 24)); // Not a legal size.
    EXPECT_FALSE(validTransfer(0x1004, 8));  // Sub-word aligned.
}

TEST(PhysMemDeathTest, OutOfRangePanics)
{
    PhysMem mem(1 << 20);
    EXPECT_DEATH(mem.readWord(2 << 20), "out of range");
}

TEST(PhysMemDeathTest, MisalignedWordPanics)
{
    PhysMem mem;
    EXPECT_DEATH(mem.readWord(0x1001), "misaligned");
}

} // namespace
} // namespace hwgc::mem
