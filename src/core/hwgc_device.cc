/**
 * @file
 * Device assembly: memory side, ports, units, and phase control.
 */

#include "hwgc_device.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "runtime/heap_layout.h"

namespace hwgc::core
{

namespace
{

/**
 * Warm-up observer for --host-partition=cost: counts, per component,
 * the executed cycles it both ticked and classified as Busy — the
 * measured per-component load the kernel's LPT re-pack bins by
 * (System::rebalancePartitionWorkers). Purely observational (reads
 * cycleClass() only), chained in front of any profiler/tracer, and
 * detached after the warm-up window so steady-state cycles pay
 * nothing for it.
 */
class PartitionCostSampler : public KernelObserver
{
  public:
    explicit PartitionCostSampler(System &sys)
        : sys_(sys), busy_(sys.components().size(), 0)
    {
    }

    void setChain(KernelObserver *chain) { chain_ = chain; }
    KernelObserver *chain() const { return chain_; }

    void
    cycleExecuted(Tick now, std::uint64_t active_mask) override
    {
        const auto &comps = sys_.components();
        for (std::size_t i = 0; i < comps.size(); ++i) {
            if (((active_mask >> i) & 1) != 0 &&
                comps[i]->cycleClass(now) == CycleClass::Busy) {
                ++busy_[i];
            }
        }
        if (chain_ != nullptr) {
            chain_->cycleExecuted(now, active_mask);
        }
    }

    void
    fastForwarded(Tick from, Tick to) override
    {
        if (chain_ != nullptr) {
            chain_->fastForwarded(from, to);
        }
    }

    const std::vector<std::uint64_t> &busy() const { return busy_; }

  private:
    System &sys_;
    KernelObserver *chain_ = nullptr;
    std::vector<std::uint64_t> busy_; //!< By registration index.
};

} // namespace

HwgcDevice::HwgcDevice(mem::PhysMem &mem,
                       const mem::PageTable &page_table,
                       const HwgcConfig &config)
    : HwgcDevice(mem, page_table, config, nullptr)
{
}

HwgcDevice::HwgcDevice(mem::PhysMem &mem,
                       const mem::PageTable &page_table,
                       const HwgcConfig &config, const SocContext &soc)
    : HwgcDevice(mem, page_table, config, &soc)
{
}

HwgcDevice::HwgcDevice(mem::PhysMem &mem,
                       const mem::PageTable &page_table,
                       const HwgcConfig &config, const SocContext *soc)
    : config_(config), mem_(mem), pageTable_(page_table)
{
    external_ = soc != nullptr;
    if (external_) {
        panic_if(soc->system == nullptr || soc->bus == nullptr ||
                 soc->memory == nullptr,
                 "fleet device needs a shared system, bus and memory");
        sys_ = soc->system;
        busPtr_ = soc->bus;
        memPtr_ = soc->memory;
        dramPtr_ = soc->dram;
        namePrefix_ = soc->namePrefix;
        statsPrefix_ = soc->statsPrefix;
        unitPartition_ = soc->unitPartition;
    } else {
        ownSystem_ = std::make_unique<System>();
        sys_ = ownSystem_.get();
        // --kernel= / HWGC_KERNEL overrides the configured kernel so
        // binaries without their own kernel plumbing (examples,
        // benches) can run any of the three bit-identical kernels.
        KernelMode mode = config_.kernel;
        std::string kernel_opt = telemetry::options().kernel;
        if (kernel_opt.empty()) {
            // Direct env fallback for binaries that never construct a
            // telemetry::Session (matches configurePartitions).
            if (const char *env = std::getenv("HWGC_KERNEL")) {
                kernel_opt = env;
            }
        }
        if (!kernel_opt.empty()) {
            if (kernel_opt == "dense") {
                mode = KernelMode::Dense;
            } else if (kernel_opt == "event") {
                mode = KernelMode::Event;
            } else if (kernel_opt.rfind("parallel", 0) == 0) {
                mode = KernelMode::ParallelBsp;
                const std::size_t at = kernel_opt.find('@');
                if (at != std::string::npos) {
                    char *end = nullptr;
                    const unsigned long t = std::strtoul(
                        kernel_opt.c_str() + at + 1, &end, 10);
                    fatal_if(end == nullptr || *end != '\0' ||
                                 at + 1 == kernel_opt.size(),
                             "--kernel=%s: expected parallel@THREADS",
                             kernel_opt.c_str());
                    config_.hostThreads = unsigned(t);
                } else if (kernel_opt != "parallel") {
                    fatal("--kernel: unknown kernel '%s' (want dense, "
                          "event or parallel[@T])", kernel_opt.c_str());
                }
            } else {
                fatal("--kernel: unknown kernel '%s' (want dense, "
                      "event or parallel[@T])", kernel_opt.c_str());
            }
        }
        sys_->setMode(mode);

        // Memory side: DRAM (Table I) or the ideal pipe (Fig 17).
        if (config_.memModel == MemModel::Ddr3) {
            auto dram = std::make_unique<mem::Dram>("dram",
                                                    config_.dram, mem_);
            dramPtr_ = dram.get();
            memory_ = std::move(dram);
        } else {
            memory_ = std::make_unique<mem::IdealMem>(
                "idealmem", config_.ideal, mem_);
        }
        memPtr_ = memory_.get();
        bus_ = std::make_unique<mem::Interconnect>("bus", config_.bus,
                                                   *memory_);
        busPtr_ = bus_.get();
    }

    // Port plumbing. In the shared design every traversal component
    // (and the PTW) competes for one 16 KiB cache (Fig 18a); in the
    // partitioned design the PTW keeps a private 8 KiB cache and the
    // others talk to the interconnect directly (Fig 18b).
    auto make_bus_port = [this](const std::string &label) {
        busPorts_.push_back(std::make_unique<mem::BusPort>(
            *busPtr_, nullptr, namePrefix_ + label));
        return busPorts_.back().get();
    };

    mem::MemPort *ptw_port = nullptr;
    if (config_.sharedCache) {
        sharedCache_ = std::make_unique<mem::TimedCache>(
            namePrefix_ + "unitcache", config_.sharedCacheParams, mem_,
            *busPtr_);
        markerPort_ = sharedCache_->addPort(nullptr, "marker");
        tracerPort_ = sharedCache_->addPort(nullptr, "tracer");
        spillPort_ = sharedCache_->addPort(nullptr, "markQueue");
        readerPort_ = sharedCache_->addPort(nullptr, "reader");
        ptw_port = sharedCache_->addPort(nullptr, "ptw");
    } else {
        ptwCache_ = std::make_unique<mem::TimedCache>(
            namePrefix_ + "ptwcache", config_.ptwCacheParams, mem_,
            *busPtr_);
        markerPort_ = make_bus_port("marker");
        tracerPort_ = make_bus_port("tracer");
        spillPort_ = make_bus_port("markQueue");
        readerPort_ = make_bus_port("reader");
        ptw_port = ptwCache_->addPort(nullptr, "ptw");
    }
    blockReaderPort_ = make_bus_port("blockReader");
    for (unsigned i = 0; i < config_.numSweepers; ++i) {
        sweeperPorts_.push_back(
            make_bus_port("sweeper" + std::to_string(i)));
    }

    ptw_ = std::make_unique<mem::Ptw>(namePrefix_ + "ptw", config_.ptw,
                                      pageTable_, ptw_port);

    // Traversal unit.
    markQueue_ = std::make_unique<MarkQueue>(
        namePrefix_ + "markQueue", config_, spillPort_,
        runtime::HeapLayout::spillBase, runtime::HeapLayout::spillSize);
    traceQueue_ =
        std::make_unique<TraceQueue>(config_.tracerQueueEntries);
    marker_ = std::make_unique<Marker>(namePrefix_ + "marker", config_,
                                       *markQueue_, *traceQueue_,
                                       markerPort_, *ptw_);
    tracer_ = std::make_unique<Tracer>(namePrefix_ + "tracer", config_,
                                       *traceQueue_, *markQueue_,
                                       tracerPort_, *ptw_);
    tracer_->setMarker(marker_.get());
    rootReader_ = std::make_unique<RootReader>(
        namePrefix_ + "rootReader", config_, *markQueue_, readerPort_,
        *ptw_);
    reclamation_ = std::make_unique<ReclamationUnit>(
        namePrefix_ + "reclamation", config_, blockReaderPort_,
        sweeperPorts_, *ptw_);

    // Wire responders now that the units exist.
    auto wire = [this](mem::MemPort *port, mem::MemResponder *responder) {
        if (auto *bp = dynamic_cast<mem::BusPort *>(port)) {
            busPtr_->setClientResponder(bp->clientId(), responder);
        } else if (sharedCache_) {
            sharedCache_->setPortResponder(port, responder);
        } else {
            panic("unknown port kind");
        }
    };
    wire(markerPort_, marker_.get());
    wire(tracerPort_, tracer_.get());
    wire(spillPort_, markQueue_.get());
    wire(readerPort_, rootReader_.get());
    wire(blockReaderPort_, reclamation_.get());
    for (unsigned i = 0; i < config_.numSweepers; ++i) {
        wire(sweeperPorts_[i], reclamation_->sweepers()[i].get());
    }
    if (config_.sharedCache) {
        sharedCache_->setPortResponder(ptw_port, ptw_.get());
    } else {
        ptwCache_->setPortResponder(ptw_port, ptw_.get());
    }

    // Clock everything. Evaluation order: consumers before producers
    // is not required (queues decouple), but memory devices last so
    // same-cycle requests are seen next cycle. A fleet device only
    // registers its unit components; the fleet driver adds the shared
    // bus and memory once, after the last device.
    auto addc = [this](Clocked *c) {
        sys_->add(c);
        ownComponents_.push_back(c);
    };
    addc(rootReader_.get());
    addc(marker_.get());
    addc(tracer_.get());
    addc(markQueue_.get());
    addc(reclamation_.get());
    for (auto &sweeper : reclamation_->sweepers()) {
        addc(sweeper.get());
    }
    addc(ptw_.get());
    if (sharedCache_) {
        addc(sharedCache_.get());
    }
    if (ptwCache_) {
        addc(ptwCache_.get());
    }
    if (!external_) {
        sys_->add(bus_.get());
        sys_->add(memory_.get());
    }

    // Wakeup-caching contract (event kernel): every component above
    // pokes itself from its external entry points (sendRequest,
    // onResponse, enqueue/dequeue, requestWalk, start/extend, assign),
    // and producers poke the specific consumer a hand-off can unblock
    // (the bus/cache poke a port's owner when a pop raises canSend,
    // the mark queue pokes the marker when entries become
    // dequeueable, the tracer pokes the marker when a trace-queue pop
    // raises canPush). What remains to declare are the coarse
    // cross-reads — state a component's nextWakeup() inspects that
    // another component's *tick* mutates without calling into it:
    //  - marker and tracer wait on PTW walk callbacks and launch
    //    slots (ptw.canRequest), and on mark-queue state the queue's
    //    own spill tick shuffles (canDequeue, throttle).
    //  - tracer polls the trace queue and markQueue.throttle, which
    //    the marker's tick feeds and drains.
    //  - rootReader and the sweepers wait on PTW walk callbacks.
    //  - reclamation polls sweeper->idle() and PTW walk callbacks.
    //  - the bus polls memory.canAccept.
    // markQueue, ptw, the caches and memory read only their own
    // state, so their entry-point pokes alone keep them fresh.
    sys_->declareWakeupInputs(marker_.get(),
                              {markQueue_.get(), ptw_.get()});
    sys_->declareWakeupInputs(
        tracer_.get(), {marker_.get(), markQueue_.get(), ptw_.get()});
    if (!config_.decoupledTracer) {
        // Coupled-pipeline ablation: the tracer also polls the
        // marker's in-flight reads, which drop inside the bus/cache
        // tick that delivers the marker's response. A fleet device
        // defers the bus edge to declareSharedBusEdges() — the shared
        // bus is registered after the devices.
        if (!external_) {
            sys_->declareWakeupInputs(
                tracer_.get(), {static_cast<Clocked *>(busPtr_)});
        }
        if (config_.sharedCache) {
            sys_->declareWakeupInputs(
                tracer_.get(),
                {static_cast<Clocked *>(sharedCache_.get())});
        }
    }
    markQueue_->setConsumer(marker_.get());
    if (config_.sharedCache) {
        sharedCache_->setPortOwner(markerPort_, marker_.get());
    } else {
        busPtr_->setClientOwner(
            static_cast<mem::BusPort *>(markerPort_)->clientId(),
            marker_.get());
    }
    sys_->declareWakeupInputs(rootReader_.get(), {ptw_.get()});
    sys_->declareWakeupInputs(reclamation_.get(), {ptw_.get()});
    for (auto &sweeper : reclamation_->sweepers()) {
        sys_->declareWakeupInputs(sweeper.get(), {ptw_.get()});
        sys_->declareWakeupInputs(reclamation_.get(), {sweeper.get()});
    }
    sys_->declareWakeupInputs(markQueue_.get(), {});
    sys_->declareWakeupInputs(ptw_.get(), {});
    if (sharedCache_) {
        sys_->declareWakeupInputs(sharedCache_.get(), {});
    }
    if (ptwCache_) {
        sys_->declareWakeupInputs(ptwCache_.get(), {});
    }
    if (!external_) {
        sys_->declareWakeupInputs(bus_.get(), {memory_.get()});
        sys_->declareWakeupInputs(memory_.get(), {});
    }

    if (sys_->mode() == KernelMode::ParallelBsp) {
        configurePartitions();
    }

    installWalkResolver();
    registerTelemetry();
}

void
HwgcDevice::installWalkResolver()
{
    // Walk-completion callbacks are opaque closures and cannot live in
    // a checkpoint; each in-flight walk instead records its (owner
    // name, token) identity and this factory re-creates the closure on
    // restore (see mem::Ptw::CallbackResolver).
    ptw_->setCallbackResolver(
        [this](const std::string &owner,
               std::uint64_t token) -> mem::Ptw::WalkCallback {
            if (owner == marker_->name()) {
                return marker_->walkCallback(token);
            }
            if (owner == tracer_->name()) {
                return tracer_->walkCallback();
            }
            if (owner == rootReader_->name()) {
                return rootReader_->walkCallback();
            }
            if (owner == reclamation_->name()) {
                return reclamation_->walkCallback();
            }
            for (auto &sweeper : reclamation_->sweepers()) {
                if (owner == sweeper->name()) {
                    return sweeper->walkCallback();
                }
            }
            return nullptr; // Ptw::resolveCallback() fatals.
        });
}

void
HwgcDevice::declareSharedBusEdges()
{
    panic_if(!external_,
             "declareSharedBusEdges is for fleet devices only");
    if (!config_.decoupledTracer) {
        sys_->declareWakeupInputs(
            tracer_.get(), {static_cast<Clocked *>(busPtr_)});
    }
}

void
HwgcDevice::configurePartitions()
{
    // A fleet device's units share one fleet-assigned partition;
    // device-to-device interaction only happens through the shared
    // bus, so each device can evaluate on its own worker. The fleet
    // driver partitions the shared bus/memory and owns the host
    // thread-count and --host-partition overrides.
    if (external_) {
        for (Clocked *c : ownComponents_) {
            sys_->setPartition(c, unitPartition_);
        }
        return;
    }

    std::string spec = config_.hostPartition;
    if (spec.empty()) {
        spec = telemetry::options().hostPartition;
    }
    if (spec.empty()) {
        // Direct env fallback so binaries that never construct a
        // telemetry::Session (the gtest suites under CI's
        // HWGC_HOST_THREADS=4 runs) still honor the variables.
        if (const char *env = std::getenv("HWGC_HOST_PARTITION")) {
            spec = env;
        }
    }

    // The partition atoms (DESIGN.md §8): groups whose members
    // exchange same-cycle state — queue handoffs, the shared trace
    // queue, synchronous cache lookups — and therefore may never
    // split across partitions. Everything between atoms is latched by
    // at least one cycle (bus request/response latency, the PTW's
    // per-requester ports, the sweepers' dispatch inbox), so any
    // assignment of whole atoms to partitions is legal.
    std::vector<std::vector<Clocked *>> atoms;
    {
        std::vector<Clocked *> traversal{rootReader_.get(),
                                         marker_.get(), tracer_.get(),
                                         markQueue_.get()};
        if (config_.sharedCache) {
            // Fig 18a: the units' ports hit the shared cache inside
            // their own ticks, and the PTW's PTE fetches do too — the
            // whole front end collapses into one atom.
            traversal.push_back(ptw_.get());
            traversal.push_back(sharedCache_.get());
        }
        atoms.push_back(std::move(traversal));
        atoms.push_back({reclamation_.get()});
        for (auto &sweeper : reclamation_->sweepers()) {
            atoms.push_back({sweeper.get()});
        }
        if (!config_.sharedCache) {
            // Fig 18b: the PTW owns a private cache it probes
            // synchronously; both ride one atom.
            atoms.push_back({ptw_.get(), ptwCache_.get()});
        }
        atoms.push_back({static_cast<Clocked *>(bus_.get())});
        atoms.push_back({static_cast<Clocked *>(memory_.get())});
    }

    costPartition_ = spec == "cost";
    if (spec == "fine" || spec == "cost") {
        // Finest legal partitioning: one partition per atom. "cost"
        // starts identical and re-packs partitions onto workers from
        // measured busy cycles after the warm-up phases (see
        // rebalanceFromSampler).
        for (unsigned a = 0; a < unsigned(atoms.size()); ++a) {
            for (Clocked *c : atoms[a]) {
                sys_->setPartition(c, a);
            }
        }
    } else {
        // Affinity heuristic: units=0, bus=1, memory=2; explicit
        // "name=P" items then move single components (validated
        // against the atoms below).
        sys_->setPartition(bus_.get(), 1);
        sys_->setPartition(memory_.get(), 2);
        std::size_t pos = 0;
        while (pos < spec.size()) {
            std::size_t comma = spec.find(',', pos);
            if (comma == std::string::npos) {
                comma = spec.size();
            }
            const std::string item = spec.substr(pos, comma - pos);
            pos = comma + 1;
            if (item.empty()) {
                continue;
            }
            const std::size_t eq = item.find('=');
            panic_if(eq == std::string::npos || eq == 0,
                     "--host-partition: '%s' is not name=partition",
                     item.c_str());
            const std::string name = item.substr(0, eq);
            char *end = nullptr;
            const unsigned long part_val =
                std::strtoul(item.c_str() + eq + 1, &end, 10);
            fatal_if(end == item.c_str() + eq + 1 || *end != '\0',
                     "--host-partition: '%s' has a non-numeric "
                     "partition", item.c_str());
            const unsigned part = unsigned(part_val);
            Clocked *target = nullptr;
            for (Clocked *c : sys_->components()) {
                if (c->name() == name) {
                    target = c;
                    break;
                }
            }
            panic_if(target == nullptr,
                     "--host-partition: unknown component '%s'",
                     name.c_str());
            sys_->setPartition(target, part);
        }
    }

    // Cohesion: every atom's members must share one partition.
    for (const auto &atom : atoms) {
        const unsigned part = sys_->partitionOf(*atom.front());
        for (const Clocked *c : atom) {
            panic_if(sys_->partitionOf(*c) != part,
                     "--host-partition: '%s' cannot leave its "
                     "same-cycle-coupled group (with '%s')",
                     c->name().c_str(), atom.front()->name().c_str());
        }
    }

    unsigned batch = config_.superstepMax;
    if (batch == 0) {
        batch = telemetry::options().superstepMax;
    }
    if (batch == 0) {
        if (const char *env = std::getenv("HWGC_SUPERSTEP_MAX")) {
            batch = unsigned(std::strtoul(env, nullptr, 10));
        }
    }
    sys_->setSuperstepMax(batch);

    unsigned threads = config_.hostThreads;
    if (threads == 0) {
        threads = telemetry::options().hostThreads;
    }
    if (threads == 0) {
        if (const char *env = std::getenv("HWGC_HOST_THREADS")) {
            threads = telemetry::parseHostThreads(
                env, "HWGC_HOST_THREADS", 0);
        }
    }
    sys_->setHostThreads(threads);
}

void
HwgcDevice::registerTelemetry()
{
    auto &registry = telemetry::StatsRegistry::global();
    // Fleet devices register under the driver-assigned prefix (stable
    // "system.hwgcN" numbering across checkpoint/restore); owned-SoC
    // devices keep the classic first-free uniquification.
    statsPrefix_ = statsPrefix_.empty()
        ? registry.uniquePrefix("system.hwgc")
        : statsPrefix_;
    auto addGroup = [&](const std::string &sub) -> stats::Group & {
        statGroups_.push_back(std::make_unique<stats::Group>(sub));
        statPaths_.push_back(registry.add(statsPrefix_ + "." + sub,
                                          statGroups_.back().get()));
        return *statGroups_.back();
    };
    rootReader_->addStats(addGroup("rootReader"));
    marker_->addStats(addGroup("marker"));
    marker_->tlb().addStats(addGroup("marker.tlb"));
    tracer_->addStats(addGroup("tracer"));
    tracer_->tlb().addStats(addGroup("tracer.tlb"));
    markQueue_->addStats(addGroup("markQueue"));
    traceQueue_->addStats(addGroup("traceQueue"));
    reclamation_->addStats(addGroup("reclamation"));
    for (std::size_t i = 0; i < reclamation_->sweepers().size(); ++i) {
        reclamation_->sweepers()[i]->addStats(
            addGroup("sweeper" + std::to_string(i)));
    }
    ptw_->addStats(addGroup("ptw"));
    ptw_->l2Tlb().addStats(addGroup("ptw.l2tlb"));
    if (!external_) {
        // Shared bus/memory stats belong to the fleet driver, not to
        // any one device.
        bus_->addStats(addGroup("bus"));
        memory_->addStats(addGroup("memory"));
    }
    if (sharedCache_) {
        sharedCache_->addStats(addGroup("unitcache"));
    }
    if (ptwCache_) {
        ptwCache_->addStats(addGroup("ptwcache"));
    }

    // Attach kernel observers only when a telemetry sink is on, so
    // the default cost is one null-pointer compare per executed cycle.
    // A shared System holds one observer; in fleet mode the driver
    // owns it (the devices only contribute stats groups).
    if (external_) {
        return;
    }
    const telemetry::Options &opts = telemetry::options();
    if (telemetry::TraceWriter::global().enabled() ||
        opts.statsInterval != 0) {
        std::vector<std::string> names;
        for (const Clocked *c : sys_->components()) {
            names.push_back(c->name());
        }
        sysTracer_ = std::make_unique<telemetry::SystemTracer>(
            std::move(names), statsPrefix_ + ".");
        sysTracer_->addCounter("markQueue.depth", [this] {
            return double(markQueue_->depth());
        });
        sysTracer_->addCounter("traceQueue.depth", [this] {
            return double(traceQueue_->size());
        });
        sysTracer_->addRateCounter("bus.utilization", [this] {
            return double(bus_->busBusyCycles());
        });
        if (dramPtr_ != nullptr) {
            sysTracer_->addRateCounter("dram.bytesPerCycle", [this] {
                return double(dramPtr_->bytesRead().value() +
                              dramPtr_->bytesWritten().value());
            });
        }
        if (sharedCache_) {
            sysTracer_->addCounter("unitcache.mshrs", [this] {
                return double(sharedCache_->mshrsInUse());
            });
        }
        if (ptwCache_) {
            sysTracer_->addCounter("ptwcache.mshrs", [this] {
                return double(ptwCache_->mshrsInUse());
            });
        }
    }

    // The System holds one observer pointer; with both sinks active
    // the profiler observes first and forwards to the tracer.
    if (opts.profile) {
        profiler_ = std::make_unique<telemetry::CycleProfiler>(
            *sys_, statsPrefix_);
        profiler_->setChain(sysTracer_.get());
        sys_->setObserver(profiler_.get());
    } else if (sysTracer_) {
        sys_->setObserver(sysTracer_.get());
    }

    // --host-partition=cost: a sampler at the head of the observer
    // chain counts per-component busy cycles during the warm-up
    // phases; rebalanceFromSampler() turns them into a worker
    // re-pack. Observers never touch simulated state, so the sampled
    // run stays bit-identical.
    if (costPartition_ && sys_->mode() == KernelMode::ParallelBsp) {
        auto sampler = std::make_unique<PartitionCostSampler>(*sys_);
        sampler->setChain(sys_->observer());
        sys_->setObserver(sampler.get());
        costSampler_ = std::move(sampler);
    }
}

void
HwgcDevice::rebalanceFromSampler(bool final_phase)
{
    if (!costSampler_) {
        return;
    }
    auto *sampler =
        static_cast<PartitionCostSampler *>(costSampler_.get());
    sys_->rebalancePartitionWorkers(sampler->busy());
    if (final_phase) {
        // Sampling window over: detach, restoring whatever observer
        // chain telemetry installed underneath.
        sys_->setObserver(sampler->chain());
        costSampler_.reset();
    }
}

HwgcDevice::~HwgcDevice()
{
    if (crashHookId_ != 0) {
        removeCrashHook(crashHookId_);
    }
    if (sysTracer_) {
        sysTracer_->flush(sys_->now());
    }
    if (sysTracer_ || profiler_ || costSampler_) {
        sys_->setObserver(nullptr);
    }
    auto &registry = telemetry::StatsRegistry::global();
    for (const std::string &path : statPaths_) {
        registry.remove(path);
    }
}

void
HwgcDevice::configure(const runtime::Heap &heap)
{
    regs_.pageTableBase = heap.pageTable().root();
    regs_.hwgcSpaceBase = heap.hwgcSpaceBase();
    regs_.rootCount = heap.publishedRootCount();
    regs_.blockTableBase = heap.blockTableBase();
    regs_.blockCount = heap.blocks().size();
    regs_.spillBase = heap.spillBase();
    regs_.spillBytes = heap.spillBytes();

    // Retarget the translation and spill plumbing at this heap — the
    // driver-level half of the §VII context switch. For the classic
    // one-device/one-heap setup these re-program the same values.
    ptw_->setPageTable(heap.pageTable());
    markQueue_->setSpillRegion(regs_.spillBase, regs_.spillBytes);

    if (external_) {
        // Checkpoint arming and the watchdog act on the whole shared
        // SoC; the fleet driver owns both.
        return;
    }

    // Driver-level checkpoint wiring (--checkpoint-* / HWGC_CHECKPOINT_*).
    const telemetry::Options &opts = telemetry::options();
    if (!opts.checkpointOut.empty() && checkpointOut_.empty()) {
        armCheckpoint(opts.checkpointOut, opts.checkpointAt);
    }
    if (!opts.checkpointIn.empty()) {
        restoreCheckpoint(opts.checkpointIn);
    }

    // Progress watchdog (--watchdog-secs= / HWGC_WATCHDOG_SECS): a
    // wedged run dumps its live bottleneck report and stats to stderr
    // before aborting; the panic also fires any armed crash hook, so
    // the "<path>.crash.<pid>" post-mortem path is shared with real
    // panics.
    if (opts.watchdogSecs > 0.0) {
        sys_->setWatchdog(opts.watchdogSecs,
                          [this] { writeWatchdogReport(); });
    }
}

Tick
HwgcDevice::runUntil(const char *phase)
{
    const Tick start = sys_->now();
    for (;;) {
        // An armed --checkpoint-at= pauses the kernel at that exact
        // inter-cycle boundary, mid-phase; the split run is
        // bit-identical to an uninterrupted one (see
        // System::runUntilIdleStop).
        Tick stop = maxTick;
        if (!checkpointOut_.empty() && checkpointAt_ != 0 &&
            !checkpointAtDone_) {
            stop = checkpointAt_;
        }
        const System::StopReason reason = sys_->runUntilIdleStop(stop);
        if (reason == System::StopReason::Stopped) {
            checkpointAtDone_ = true;
            if (writeCheckpoint(checkpointOut_)) {
                inform("checkpoint: wrote '%s' at cycle %llu",
                       checkpointOut_.c_str(),
                       (unsigned long long)sys_->now());
            }
            continue;
        }
        panic_if(reason == System::StopReason::Budget,
                 "%s phase deadlocked (cycle budget exhausted)", phase);
        return sys_->now() - start;
    }
}

void
HwgcDevice::startMark()
{
    panic_if(regs_.rootCount == 0 && regs_.hwgcSpaceBase == 0,
             "device not configured");
    // A restored mid-mark checkpoint left the status register at
    // Marking with the units already in flight: resume, don't restart.
    if (regs_.status == MmioRegs::Marking) {
        return;
    }
    regs_.status = MmioRegs::Marking;
    rootReader_->start(regs_.hwgcSpaceBase, regs_.rootCount);
}

bool
HwgcDevice::markDone() const
{
    return markQueue_->empty() && marker_->idle() && tracer_->idle() &&
        rootReader_->done();
}

HwPhaseResult
HwgcDevice::finishMark()
{
    panic_if(!markDone(), "mark phase ended with residual work");
    HwPhaseResult result;
    result.objectsMarked = marker_->newlyMarked();
    result.refsTraced = tracer_->refsEnqueued();
    regs_.status = MmioRegs::Idle;
    return result;
}

HwPhaseResult
HwgcDevice::runMark()
{
    const bool resuming = regs_.status == MmioRegs::Marking;
    const Tick start = sys_->now();
    DPRINTF(start, "Device", "%s: mark phase %s, %llu roots",
            statsPrefix_.c_str(), resuming ? "resume" : "start",
            (unsigned long long)regs_.rootCount);
    startMark();
    if (profiler_) {
        profiler_->beginPhase("mark");
    }

    const Tick cycles = runUntil("mark");
    if (profiler_) {
        profiler_->endPhase();
    }
    HwPhaseResult result = finishMark();
    result.cycles = cycles;
    if (costSampler_ && !costMarkRebalanced_) {
        // First mark phase doubles as the cost-model warm-up window:
        // re-pack workers now so the sweep (and any later cycle)
        // already runs balanced. Keep sampling until the first sweep
        // completes the picture.
        costMarkRebalanced_ = true;
        rebalanceFromSampler(false);
    }

    const Tick end = sys_->now();
    DPRINTF(end, "Device", "%s: mark phase done, %llu marked",
            statsPrefix_.c_str(),
            (unsigned long long)result.objectsMarked);
    if (sysTracer_) {
        sysTracer_->flush(end);
    }
    telemetry::TraceWriter &tw = telemetry::TraceWriter::global();
    if (tw.enabled()) {
        const Tick roots_done = rootReader_->doneAt();
        tw.completeSpan(statsPrefix_, "rootScan", start,
                        roots_done != 0 ? roots_done : end);
        tw.completeSpan(statsPrefix_, "mark", start, end);
    }
    writePhaseCheckpoint();
    return result;
}

void
HwgcDevice::startSweep()
{
    if (regs_.status == MmioRegs::Sweeping) {
        return; // Restored mid-sweep: resume, don't restart.
    }
    regs_.status = MmioRegs::Sweeping;
    reclamation_->start(regs_.blockTableBase, regs_.blockCount);
}

bool
HwgcDevice::sweepDone() const
{
    return reclamation_->done();
}

HwPhaseResult
HwgcDevice::finishSweep()
{
    panic_if(!sweepDone(), "sweep phase ended with residual work");
    HwPhaseResult result;
    result.cellsFreed = reclamation_->cellsFreed();
    regs_.status = MmioRegs::Idle;
    return result;
}

HwPhaseResult
HwgcDevice::runSweep()
{
    const bool resuming = regs_.status == MmioRegs::Sweeping;
    const Tick start = sys_->now();
    DPRINTF(start, "Device", "%s: sweep phase %s, %llu blocks",
            statsPrefix_.c_str(), resuming ? "resume" : "start",
            (unsigned long long)regs_.blockCount);
    startSweep();
    if (profiler_) {
        profiler_->beginPhase("sweep");
    }

    const Tick cycles = runUntil("sweep");
    if (profiler_) {
        profiler_->endPhase();
    }
    HwPhaseResult result = finishSweep();
    result.cycles = cycles;
    rebalanceFromSampler(true);

    const Tick end = sys_->now();
    DPRINTF(end, "Device", "%s: sweep phase done, %llu freed",
            statsPrefix_.c_str(),
            (unsigned long long)result.cellsFreed);
    if (sysTracer_) {
        sysTracer_->flush(end);
    }
    telemetry::TraceWriter &tw = telemetry::TraceWriter::global();
    if (tw.enabled()) {
        tw.completeSpan(statsPrefix_, "sweep", start, end);
    }
    writePhaseCheckpoint();
    return result;
}

HwPhaseResult
HwgcDevice::collect()
{
    HwPhaseResult mark = runMark();
    const HwPhaseResult sweep = runSweep();
    mark.cycles += sweep.cycles;
    mark.cellsFreed = sweep.cellsFreed;
    return mark;
}

void
HwgcDevice::resetPhaseState()
{
    markQueue_->reset();
    marker_->reset();
    tracer_->reset();
    rootReader_->reset();
    reclamation_->reset();
    ptw_->l2Tlb().flush();
    // A shared (fleet) memory backend stays warm: peer devices may be
    // mid-phase, and the context switch only flushes unit state.
    if (!external_) {
        memory_->resetTimingState();
    }
}

void
HwgcDevice::resetStats()
{
    markQueue_->resetStats();
    marker_->resetStats();
    tracer_->resetStats();
    traceQueue_->resetStats();
    reclamation_->resetStats();
    ptw_->resetStats();
    if (!external_) {
        bus_->resetStats();
        memory_->resetStats();
    }
    if (sharedCache_) {
        sharedCache_->resetStats();
    }
    if (ptwCache_) {
        ptwCache_->resetStats();
    }
}

std::string
HwgcDevice::configSignature() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "mq=%u,spill=%u/%u,comp=%d,slots=%u,waiters=%u,mbc=%u,tq=%u,"
        "pend=%u,utlb=%u,layout=%d,dec=%d,tags=%u,sweep=%u,stlb=%u,"
        "shared=%d,mem=%d",
        config_.markQueueEntries, config_.spillQueueEntries,
        config_.spillThrottle, int(config_.compressRefs),
        config_.markerSlots, config_.markerWalkWaiters,
        config_.markBitCacheEntries, config_.tracerQueueEntries,
        config_.tracerPendingRefs, config_.unitTlbEntries,
        int(config_.layout), int(config_.decoupledTracer),
        config_.tracerTagSlots, config_.numSweepers,
        config_.sweeperTlbEntries, int(config_.sharedCache),
        int(config_.memModel));
    return buf;
}

void
HwgcDevice::saveCheckpoint(checkpoint::Serializer &ser) const
{
    panic_if(external_,
             "fleet device state is checkpointed by the fleet driver");
    // The configuration fingerprint goes first so a mismatched file
    // fails with "configurations differ" before any state parsing.
    ser.beginChunk("config");
    ser.putString(configSignature());
    ser.endChunk();

    ser.beginChunk("regs");
    ser.putU64(regs_.pageTableBase);
    ser.putU64(regs_.hwgcSpaceBase);
    ser.putU64(regs_.rootCount);
    ser.putU64(regs_.blockTableBase);
    ser.putU64(regs_.blockCount);
    ser.putU64(regs_.spillBase);
    ser.putU64(regs_.spillBytes);
    ser.putU64(regs_.status);
    ser.endChunk();

    ser.beginChunk("kernel");
    sys_->save(ser);
    ser.endChunk();

    // One chunk per Clocked component, named by instance name, in
    // registration (= evaluation) order.
    for (const Clocked *c : sys_->components()) {
        ser.beginChunk(c->name());
        c->save(ser);
        ser.endChunk();
    }

    // The trace queue is passive (not Clocked) but carries phase state.
    ser.beginChunk("traceQueue");
    traceQueue_->save(ser);
    ser.endChunk();

    // The functional memory image (shared farm-snapshot encoding).
    ser.beginChunk("physmem");
    checkpoint::putPhysMem(ser, mem_);
    ser.endChunk();
}

void
HwgcDevice::restoreCheckpoint(checkpoint::Deserializer &des)
{
    panic_if(external_,
             "fleet device state is restored by the fleet driver");
    des.beginChunk("config");
    const std::string sig = des.getString();
    des.endChunk();
    fatal_if(sig != configSignature(),
             "checkpoint '%s' was written by a different device "
             "configuration\n  file: %s\n  this: %s",
             des.origin().c_str(), sig.c_str(),
             configSignature().c_str());

    des.beginChunk("regs");
    regs_.pageTableBase = des.getU64();
    regs_.hwgcSpaceBase = des.getU64();
    regs_.rootCount = des.getU64();
    regs_.blockTableBase = des.getU64();
    regs_.blockCount = des.getU64();
    regs_.spillBase = des.getU64();
    regs_.spillBytes = des.getU64();
    regs_.status = des.getU64();
    des.endChunk();

    des.beginChunk("kernel");
    sys_->restore(des);
    des.endChunk();

    for (Clocked *c : sys_->components()) {
        des.beginChunk(c->name());
        c->restore(des);
        des.endChunk();
    }

    des.beginChunk("traceQueue");
    traceQueue_->restore(des);
    des.endChunk();

    des.beginChunk("physmem");
    checkpoint::getPhysMem(des, mem_);
    des.endChunk();

    fatal_if(!des.atEnd(),
             "checkpoint '%s': trailing data after the last expected "
             "chunk — the saving and restoring configurations differ",
             des.origin().c_str());

    DPRINTF(sys_->now(), "Device",
            "%s: restored checkpoint '%s' at cycle %llu (status %llu)",
            statsPrefix_.c_str(), des.origin().c_str(),
            (unsigned long long)sys_->now(),
            (unsigned long long)regs_.status);
}

bool
HwgcDevice::writeCheckpoint(const std::string &path) const
{
    checkpoint::Serializer ser;
    saveCheckpoint(ser);
    return ser.writeFile(path);
}

void
HwgcDevice::restoreCheckpoint(const std::string &path)
{
    checkpoint::Deserializer des = checkpoint::Deserializer::fromFile(path);
    restoreCheckpoint(des);
}

void
HwgcDevice::armCheckpoint(const std::string &path, Tick at)
{
    checkpointOut_ = path;
    checkpointAt_ = at;
    checkpointAtDone_ = false;
    if (checkpointOut_.empty()) {
        if (crashHookId_ != 0) {
            removeCrashHook(crashHookId_);
            crashHookId_ = 0;
        }
        return;
    }
    // One registry slot per armed device: a fleet arms several
    // sessions and a panic must dump every one of them, not just the
    // most recently armed (the old single-slot hook's failure mode).
    if (crashHookId_ == 0) {
        crashHookId_ = addCrashHook(&HwgcDevice::crashHook, this);
    }
}

void
HwgcDevice::writePhaseCheckpoint()
{
    // The after-every-pause mode (--checkpoint-out= without
    // --checkpoint-at=): the file always holds the latest post-phase
    // state, so a crashed or aborted multi-pause run can resume from
    // its last completed pause.
    if (checkpointOut_.empty() || checkpointAt_ != 0) {
        return;
    }
    writeCheckpoint(checkpointOut_);
}

void
HwgcDevice::crashHook(void *ctx)
{
    static_cast<HwgcDevice *>(ctx)->writeCrashDump();
}

void
HwgcDevice::writeCrashDump()
{
    // Artifact names carry the pid so parallel fuzz/farm workers (and
    // concurrent --watchdog-secs panics) never clobber each other.
    const std::string base =
        checkpoint::crashArtifactBase(checkpointOut_);
    // The stats dump first: it only reads counters, so it succeeds
    // even when the failure struck mid-tick.
    telemetry::RunMetadata meta;
    meta.binary = "crash-dump";
    meta.config = configSignature();
    meta.simCycles = sys_->now();
    telemetry::StatsRegistry::global().exportJsonFile(
        base + ".stats.json", meta);
    inform("crash dump: wrote '%s.stats.json'", base.c_str());
    // Best-effort architectural snapshot. A mid-tick failure can make
    // component state unserializable (the save() invariants fire); the
    // hook is cleared before it runs, so that second failure cannot
    // recurse — the original diagnostic is already on stderr.
    if (writeCheckpoint(base)) {
        inform("crash dump: wrote '%s'", base.c_str());
    }
}

void
HwgcDevice::writeWatchdogReport()
{
    std::fprintf(stderr,
                 "watchdog: %s made no progress (cycle %llu); live "
                 "state follows\n",
                 statsPrefix_.c_str(),
                 (unsigned long long)sys_->now());
    if (profiler_) {
        profiler_->report(stderr);
    }
    telemetry::RunMetadata meta;
    meta.binary = "watchdog-dump";
    meta.config = configSignature();
    meta.simCycles = sys_->now();
    std::ostringstream os;
    telemetry::StatsRegistry::global().exportJson(os, meta);
    std::fputs(os.str().c_str(), stderr);
}

} // namespace hwgc::core
