/**
 * @file
 * Shared quantile helpers for the latency harnesses and benches.
 *
 * Every bench that reports a tail percentile goes through these
 * functions. The clamping matters: a naive nearest-rank index
 * `size_t(q * n)` reads one past the end for q = 1.0, and rounds to
 * `n` for p99.9 of fewer than 1000 samples — both out-of-range reads
 * that happen to "work" until the allocator shifts. Both entry points
 * clamp the computed rank into [0, n-1] so small sample sets degrade
 * to the max sample instead of to garbage.
 */

#ifndef HWGC_WORKLOAD_QUANTILE_H
#define HWGC_WORKLOAD_QUANTILE_H

#include <vector>

namespace hwgc::workload
{

/**
 * Linearly-interpolated quantile of an ascending-sorted sample set
 * (the "R-7" estimator): position q*(n-1), interpolated between the
 * two neighbouring order statistics. Panics on an empty set or
 * q outside [0, 1].
 */
double quantileSorted(const std::vector<double> &sorted, double q);

/** Sorts a copy of @p values, then quantileSorted(). */
double quantile(std::vector<double> values, double q);

/**
 * Nearest-rank quantile of an ascending-sorted sample set: the
 * smallest sample such that at least q of the set is <= it
 * (rank ceil(q*n), clamped into range). p99.9 of 10 samples is the
 * max sample, not an out-of-range read. Panics on an empty set or
 * q outside [0, 1].
 */
double nearestRankSorted(const std::vector<double> &sorted, double q);

} // namespace hwgc::workload

#endif // HWGC_WORKLOAD_QUANTILE_H
