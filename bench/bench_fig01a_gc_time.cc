/**
 * @file
 * Fig 1a — fraction of CPU time spent in GC pauses per benchmark.
 *
 * The paper: "workloads can spend up to 35% of their time performing
 * garbage collection". We measure software-GC pause durations with
 * the CPU cost model and combine them with each profile's modeled
 * mutator time between pauses.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/gc_lab.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    bench::banner("Fig 1a: CPU time spent in GC pauses",
                  "up to 35% of CPU time goes to stop-the-world GC");

    std::printf("  %-10s %10s %12s %10s\n", "benchmark", "pauses",
                "avg pause", "GC share");
    bench::HostTimer timer;
    double total_sim_cycles = 0.0;
    for (const auto &profile : workload::dacapoSuite()) {
        driver::LabConfig config;
        config.runHw = false;
        driver::GcLab lab(profile, config);
        const auto &results = lab.run();

        double gc_ms = 0.0;
        for (const auto &r : results) {
            gc_ms += bench::msFromCycles(
                double(r.swMarkCycles + r.swSweepCycles));
            total_sim_cycles += double(r.swMarkCycles + r.swSweepCycles);
        }
        const double mutator_ms =
            profile.mutatorMsPerGC * double(results.size());
        const double share = gc_ms / (gc_ms + mutator_ms);
        std::printf("  %-10s %10zu %10.2f ms %9.1f%%\n",
                    profile.name.c_str(), results.size(),
                    gc_ms / double(results.size()), share * 100.0);
    }
    bench::printKernelSpeed("fig01a_gc_time", "sw-atomic",
                            timer.seconds(), total_sim_cycles);
    return 0;
}
