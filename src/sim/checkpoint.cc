/**
 * @file
 * Out-of-line checkpoint pieces: the Clocked save/restore defaults
 * (which panic — every checkpointed component must override them) and
 * the System kernel-state serialization.
 */

#include "checkpoint.h"

#include <algorithm>

#include "sim/clocked.h"

namespace hwgc
{

void
Clocked::save(checkpoint::Serializer &ser) const
{
    (void)ser;
    panic("component '%s' does not support checkpointing",
          name_.c_str());
}

void
Clocked::restore(checkpoint::Deserializer &des)
{
    (void)des;
    panic("component '%s' does not support checkpointing",
          name_.c_str());
}

void
System::save(checkpoint::Serializer &ser) const
{
    ser.putU64(now_);
    ser.putU64(executedCycles_);
    ser.putU64(dueMask_);
    // Drain a copy of the scheduled-wakeup queue into (cycle, index)
    // order; a priority queue over the same pairs rebuilds an
    // equivalent heap on restore.
    auto copy = scheduled_;
    std::vector<ScheduledTick> pending;
    while (!copy.empty()) {
        pending.push_back(copy.top());
        copy.pop();
    }
    ser.putU64(pending.size());
    for (const auto &[at, index] : pending) {
        ser.putU64(at);
        ser.putU64(index);
    }
}

void
System::restore(checkpoint::Deserializer &des)
{
    now_ = des.getU64();
    executedCycles_ = des.getU64();
    dueMask_ = des.getU64();
    scheduled_ = {};
    const std::uint64_t pending = des.getU64();
    for (std::uint64_t i = 0; i < pending; ++i) {
        const Tick at = des.getU64();
        const std::size_t index = des.getU64();
        fatal_if(index >= components_.size(),
                 "checkpoint '%s': scheduled wakeup for component %zu "
                 "but only %zu are registered", des.origin().c_str(),
                 index, components_.size());
        scheduled_.push({at, index});
    }
    // Every cached wakeup is stale; the run entry points also set
    // this, but restoring directly into a paused System must not
    // depend on that.
    dirty_ = ~std::uint64_t(0);
    std::fill(wake_.begin(), wake_.end(), maxTick);
}

} // namespace hwgc
