/**
 * @file
 * One block sweeper of the reclamation unit (paper Fig 8 / §V-D).
 *
 * A sweeper receives a block descriptor, then "steps through the
 * cells linearly": it reads each cell's start word, classifies the
 * cell (free cell / live-but-unreachable / reachable, via the tag and
 * mark bits of the status word), and links every non-reachable cell
 * into the block's free list, finally writing the free-list head and
 * a summary back to the block-table entry. Reads stream through a
 * two-line buffer — the paper's observation that the sweeper "access
 * memory sequentially and therefore only need 2 cache lines".
 */

#ifndef HWGC_CORE_BLOCK_SWEEPER_H
#define HWGC_CORE_BLOCK_SWEEPER_H

#include <array>
#include <optional>

#include "core/hwgc_config.h"
#include "mem/ptw.h"
#include "mem/tlb.h"
#include "sim/spsc_ring.h"
#include "sim/stats.h"

namespace hwgc::core
{

/** A block descriptor handed to a sweeper. */
struct SweepJob
{
    Addr entryVa = 0;   //!< Block-table entry (for the write-back).
    Addr baseVa = 0;    //!< First cell of the block.
    std::uint32_t cellBytes = 0;
};

/** One parallel block sweeper. */
class BlockSweeper : public Clocked, public mem::MemResponder
{
  public:
    BlockSweeper(std::string name, const HwgcConfig &config,
                 mem::MemPort *port, mem::Ptw &ptw);

    /** True if a new job can be assigned. */
    bool idle() const;

    /** True when idle and all issued writes have been acknowledged. */
    bool drained() const;

    /**
     * Assigns a block at cycle @p now; the sweeper must be idle. The
     * job sits in a one-entry dispatch inbox for one cycle before the
     * state machine picks it up — the latch that lets the dispatcher
     * and the sweeper live in different ParallelBsp partitions without
     * changing a single simulated cycle.
     */
    void assign(const SweepJob &job, Tick now);

    /**
     * Names the component that feeds this sweeper jobs (the
     * reclamation dispatcher). Purely observational: the cycle
     * profiler classifies an idle sweeper as starved rather than idle
     * while its upstream is still busy.
     */
    void setUpstream(const Clocked *upstream) { upstream_ = upstream; }

    // MemResponder interface.
    void onResponse(const mem::MemResponse &resp, Tick now) override;

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override { return !drained(); }
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void bspCommit(Tick now) override;
    void bspPublish() override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /** Re-creates the page-walk completion callback (restore path). */
    mem::Ptw::WalkCallback walkCallback();

    void reset();
    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t blocksSwept() const { return blocks_.value(); }
    std::uint64_t cellsScanned() const { return cells_.value(); }
    std::uint64_t cellsFreed() const { return freed_.value(); }
    std::uint64_t lineFetches() const { return lineFetches_.value(); }
    /** @} */

    /** Registers the sweeper's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&blocks_);
        g.add(&cells_);
        g.add(&freed_);
        g.add(&lineFetches_);
    }

  private:
    /** A buffered 64-byte line (the sweeper's two-line buffer). */
    struct LineBuf
    {
        bool valid = false;
        Addr lineVa = 0;
        std::array<Word, mem::maxReqWords> data{};
        std::uint64_t lastUse = 0;
    };

    /**
     * Reads a word through the line buffer.
     * @return The word if buffered; nullopt after issuing (or while
     *         waiting on) the line fill.
     */
    std::optional<Word> readWord(Addr va, Tick now);

    /** Issues an 8-byte fire-and-forget write. */
    bool writeWord(Addr va, Word value, Tick now);

    /** Finishes the block: final link, free head, summary. */
    void finishBlock(Tick now);

    std::optional<Addr> translate(Addr va, Tick now);

    /** Moves the latched inbox job into the state machine. */
    void activate();

    /** An assign staged by a foreign-partition dispatcher. */
    struct StagedAssign
    {
        SweepJob job;
        Tick at = 0;
    };

    HwgcConfig config_;
    mem::MemPort *port_;
    mem::Ptw &ptw_;
    unsigned ptwPort_ = 0; //!< Our requester port on the shared PTW.
    mem::TlbArray tlb_;
    const Clocked *upstream_ = nullptr; //!< Job source (profiling).

    // Job state.
    bool active_ = false;
    SweepJob job_;
    std::uint64_t cellIndex_ = 0;
    std::uint64_t numCells_ = 0;

    // Dispatch inbox (the one-cycle assign latch) and its ParallelBsp
    // staging: the dispatcher is the only producer, so a one-entry
    // SPSC ring plus published idle/drained snapshots reproduce the
    // serial dispatcher-before-sweeper read order exactly.
    bool inboxValid_ = false;
    Tick inboxAt_ = 0;
    SweepJob inboxJob_;
    SpscRing<StagedAssign> stagedAssign_;
    bool publishedIdle_ = true;
    bool publishedDrained_ = true;

    enum class Step : std::uint8_t
    {
        CellStartWord, //!< Fetch/parse the cell's first word.
        HeaderWord,    //!< Fetch/parse the status word.
        FinishLink,    //!< Emit the final free-list stores.
        FinishTable,   //!< Write head + summary to the table entry.
    };
    Step step_ = Step::CellStartWord;
    std::uint32_t curNumRefs_ = 0;

    // Free-list construction (ascending, single store per free cell).
    Addr freeHead_ = 0;
    Addr prevFree_ = 0;
    std::uint32_t freeCells_ = 0;
    bool hasLive_ = false;
    bool pendingLink_ = false; //!< prevFree -> current cell store due.
    Addr pendingLinkTarget_ = 0;

    // Memory machinery.
    std::array<LineBuf, 2> lines_;
    std::uint64_t useCounter_ = 0;
    bool lineFillPending_ = false;
    Addr lineFillVa_ = 0;
    unsigned writesInFlight_ = 0;
    bool walkPending_ = false;

    stats::Scalar blocks_{"blocksSwept"};
    stats::Scalar cells_{"cellsScanned"};
    stats::Scalar freed_{"cellsFreed"};
    stats::Scalar lineFetches_{"lineFetches"};
};

} // namespace hwgc::core

#endif // HWGC_CORE_BLOCK_SWEEPER_H
