/**
 * @file
 * Memory request/response messages exchanged over the TileLink-like
 * interconnect.
 *
 * Transfers are 8..64 bytes, naturally aligned, matching the paper's
 * description of the RocketChip system bus ("Our interconnect supports
 * transfer sizes from 8 to 64B, but they have to be aligned").
 * FetchOr models the atomic fetch-or the marker uses to set the mark
 * bit and read back the status word in a single memory operation.
 */

#ifndef HWGC_MEM_REQUEST_H
#define HWGC_MEM_REQUEST_H

#include <array>
#include <cstdint>

#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc::mem
{

/** Operation carried by a memory request. */
enum class Op : std::uint8_t
{
    Read,     //!< Get: returns size bytes.
    Write,    //!< Put: writes size bytes.
    FetchOr,  //!< 8-byte atomic fetch-or; returns the old word.
};

/** Maximum words per transfer (64 B line / 8 B words). */
constexpr unsigned maxReqWords = lineBytes / wordBytes;

/** Validates a TileLink-like size/alignment combination. */
inline bool
validTransfer(Addr addr, unsigned size)
{
    return (size == 8 || size == 16 || size == 32 || size == 64) &&
        (addr % size) == 0;
}

/**
 * A request message. Write data (and fetch-or operand) travels with
 * the request; responses carry read data. `client` identifies the
 * issuing port on the interconnect, `tag` is opaque to everything but
 * the issuer.
 */
struct MemRequest
{
    Addr paddr = 0;
    unsigned size = 8;
    Op op = Op::Read;
    unsigned client = 0;
    std::uint64_t tag = 0;

    /**
     * Timing-only requests (cache line fills and write-backs issued by
     * tags-only cache models) move bytes for timing purposes but are
     * not executed functionally — the issuing cache performs the
     * functional access against PhysMem itself, exactly once.
     */
    bool timingOnly = false;

    std::array<Word, maxReqWords> wdata{};

    unsigned words() const { return size / wordBytes; }
    bool isWrite() const { return op == Op::Write; }
};

/** A response message; `rdata` is valid for Read and FetchOr. */
struct MemResponse
{
    MemRequest req;
    std::array<Word, maxReqWords> rdata{};
    Tick completed = 0;
};

/** Receiver interface for responses coming back from the memory side. */
class MemResponder
{
  public:
    virtual ~MemResponder() = default;

    /** Delivers one completed response at time @p now. */
    virtual void onResponse(const MemResponse &resp, Tick now) = 0;
};

} // namespace hwgc::mem

#endif // HWGC_MEM_REQUEST_H
