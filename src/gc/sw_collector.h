/**
 * @file
 * The software Mark & Sweep collector — the paper's CPU baseline.
 *
 * This is the equivalent of the paper's "rewrote Jikes's GC in C,
 * compiling it with -O3" baseline (§VI-A methodology): a tight
 * mark/sweep loop whose every memory access and branch is charged
 * against the in-order core cost model while operating functionally
 * on the same heap image the hardware unit runs on. The mark queue
 * is an in-memory ring; roots are consumed from the published
 * hwgc-space so both collectors see the identical root set.
 */

#ifndef HWGC_GC_SW_COLLECTOR_H
#define HWGC_GC_SW_COLLECTOR_H

#include "cpu/core_model.h"
#include "runtime/heap.h"

namespace hwgc::gc
{

/** Counters and timings from one collection. */
struct GcResult
{
    Tick markCycles = 0;
    Tick sweepCycles = 0;
    std::uint64_t objectsMarked = 0;
    std::uint64_t refsTraced = 0;      //!< References examined.
    std::uint64_t cellsFreed = 0;      //!< Cells added to free lists.
    std::uint64_t blocksSwept = 0;

    Tick totalCycles() const { return markCycles + sweepCycles; }
};

/** Stop-the-world software Mark & Sweep on the core model. */
class SwCollector
{
  public:
    SwCollector(runtime::Heap &heap, cpu::CoreModel &core);

    /**
     * Runs a full collection (mark, then sweep) against the published
     * roots. Mark bits must be clear on entry.
     */
    GcResult collect();

    /** Runs only the mark phase (Fig 15a / Fig 17). */
    GcResult mark();

    /** Runs only the sweep phase; requires a completed mark. */
    GcResult sweep();

  private:
    runtime::Heap &heap_;
    cpu::CoreModel &core_;
};

} // namespace hwgc::gc

#endif // HWGC_GC_SW_COLLECTOR_H
