/**
 * @file
 * Unit tests for the interconnect and the ideal memory pipe.
 */

#include <gtest/gtest.h>

#include "mem/ideal_mem.h"
#include "mem/interconnect.h"
#include "mem/port.h"

namespace hwgc::mem
{
namespace
{

class Collector : public MemResponder
{
  public:
    void
    onResponse(const MemResponse &resp, Tick now) override
    {
        responses.push_back(resp);
        lastTick = now;
    }

    std::vector<MemResponse> responses;
    Tick lastTick = 0;
};

MemRequest
read(Addr addr, unsigned size = 8)
{
    MemRequest req;
    req.paddr = addr;
    req.size = size;
    req.op = Op::Read;
    return req;
}

class BusTest : public testing::Test
{
  protected:
    BusTest()
        : mem_(), ideal_("ideal", IdealMemParams{}, mem_),
          bus_("bus", InterconnectParams{}, ideal_)
    {
    }

    void
    run(Tick cycles)
    {
        for (Tick t = 0; t < cycles; ++t) {
            bus_.tick(now_);
            ideal_.tick(now_);
            ++now_;
        }
    }

    PhysMem mem_;
    IdealMem ideal_;
    Interconnect bus_;
    Tick now_ = 0;
};

TEST_F(BusTest, RequestResponseRoundTrip)
{
    Collector c;
    const unsigned id = bus_.registerClient(&c, "c");
    mem_.writeWord(0x100, 42);
    MemRequest req = read(0x100);
    req.client = id;
    req.tag = 7;
    bus_.sendRequest(req, now_);
    run(100);
    ASSERT_EQ(c.responses.size(), 1u);
    EXPECT_EQ(c.responses[0].rdata[0], 42u);
    EXPECT_EQ(c.responses[0].req.tag, 7u);
}

TEST_F(BusTest, ResponsesRoutedByClient)
{
    Collector c1, c2;
    const unsigned id1 = bus_.registerClient(&c1, "c1");
    const unsigned id2 = bus_.registerClient(&c2, "c2");
    MemRequest r1 = read(0x100);
    r1.client = id1;
    MemRequest r2 = read(0x200);
    r2.client = id2;
    bus_.sendRequest(r1, now_);
    bus_.sendRequest(r2, now_);
    run(100);
    EXPECT_EQ(c1.responses.size(), 1u);
    EXPECT_EQ(c2.responses.size(), 1u);
}

TEST_F(BusTest, PerClientQueueBackpressure)
{
    Collector c;
    const unsigned id = bus_.registerClient(&c, "c");
    unsigned sent = 0;
    while (bus_.canAccept(id)) {
        MemRequest req = read(Addr(sent) * 64);
        req.client = id;
        bus_.sendRequest(req, now_);
        ++sent;
    }
    EXPECT_EQ(sent, InterconnectParams{}.clientQueueDepth);
    run(200);
    EXPECT_EQ(c.responses.size(), sent);
    EXPECT_TRUE(bus_.canAccept(id));
}

TEST_F(BusTest, RoundRobinIsFair)
{
    Collector c1, c2;
    const unsigned id1 = bus_.registerClient(&c1, "c1");
    const unsigned id2 = bus_.registerClient(&c2, "c2");
    // Saturate both clients; each should make progress.
    for (int round = 0; round < 20; ++round) {
        if (bus_.canAccept(id1)) {
            MemRequest req = read(0x1000);
            req.client = id1;
            bus_.sendRequest(req, now_);
        }
        if (bus_.canAccept(id2)) {
            MemRequest req = read(0x2000);
            req.client = id2;
            bus_.sendRequest(req, now_);
        }
        run(5);
    }
    run(500);
    EXPECT_GT(c1.responses.size(), 5u);
    EXPECT_GT(c2.responses.size(), 5u);
    const auto diff = std::max(c1.responses.size(), c2.responses.size()) -
        std::min(c1.responses.size(), c2.responses.size());
    EXPECT_LE(diff, 2u);
}

TEST_F(BusTest, PerClientStats)
{
    Collector c;
    const unsigned id = bus_.registerClient(&c, "stats-client");
    MemRequest req = read(0x0, 64);
    req.client = id;
    bus_.sendRequest(req, now_);
    run(100);
    EXPECT_EQ(bus_.clientRequests(id), 1u);
    EXPECT_EQ(bus_.clientBytes(id), 64u);
    EXPECT_EQ(bus_.clientLabel(id), "stats-client");
    bus_.resetStats();
    EXPECT_EQ(bus_.clientRequests(id), 0u);
}

TEST_F(BusTest, BusPortWrapsClient)
{
    Collector c;
    BusPort port(bus_, &c, "port");
    mem_.writeWord(0x300, 9);
    MemRequest req = read(0x300);
    ASSERT_TRUE(port.canSend(req));
    port.send(req, now_);
    run(100);
    ASSERT_EQ(c.responses.size(), 1u);
    EXPECT_EQ(c.responses[0].rdata[0], 9u);
}

TEST_F(BusTest, NullResponderDiscardsResponses)
{
    const unsigned id = bus_.registerClient(nullptr, "writeonly");
    MemRequest req = read(0x100);
    req.client = id;
    bus_.sendRequest(req, now_);
    run(100); // Must not crash.
    EXPECT_FALSE(bus_.busy());
}

TEST_F(BusTest, SetClientResponderRewires)
{
    Collector c;
    const unsigned id = bus_.registerClient(nullptr, "late");
    bus_.setClientResponder(id, &c);
    MemRequest req = read(0x100);
    req.client = id;
    bus_.sendRequest(req, now_);
    run(100);
    EXPECT_EQ(c.responses.size(), 1u);
}

TEST(BusDeathTest, InvalidTransferPanics)
{
    PhysMem mem;
    IdealMem ideal("ideal", IdealMemParams{}, mem);
    Interconnect bus("bus", InterconnectParams{}, ideal);
    Collector c;
    const unsigned id = bus.registerClient(&c, "c");
    MemRequest req;
    req.paddr = 0x1004; // Misaligned.
    req.size = 8;
    req.client = id;
    EXPECT_DEATH(bus.sendRequest(req, 0), "invalid transfer");
}

TEST(IdealMem, LatencyAndBandwidth)
{
    PhysMem mem;
    IdealMemParams params;
    params.perRequestOverhead = 0;
    IdealMem ideal("i", params, mem);
    std::array<Word, maxReqWords> scratch{};
    // 64B at 8 B/cycle: latency 1 + 8 cycles of bus.
    const Tick t = ideal.accessAtomic(read(0x0, 64), 0, scratch);
    EXPECT_EQ(t, 9u);
    // Immediately following request queues behind the bus.
    const Tick t2 = ideal.accessAtomic(read(0x1000, 8), 0, scratch);
    EXPECT_GT(t2, 9u);
}

TEST(IdealMem, PerRequestOverheadSlowsSmallRequests)
{
    PhysMem mem;
    IdealMemParams with;
    with.perRequestOverhead = 4;
    IdealMemParams without;
    without.perRequestOverhead = 0;
    IdealMem a("a", with, mem), b("b", without, mem);
    std::array<Word, maxReqWords> scratch{};
    EXPECT_GT(a.accessAtomic(read(0x0, 8), 0, scratch),
              b.accessAtomic(read(0x0, 8), 0, scratch));
}

} // namespace
} // namespace hwgc::mem
