/**
 * @file
 * Cycle-accounting profiler tests (DESIGN.md §10):
 *
 *  1. The accounting identity `busy + Σstalls + idle == observed
 *     cycles` holds for every component on every modeled
 *     configuration of the determinism matrix, under all three
 *     kernels — classification is a pure function of architectural
 *     state, so no kernel can over- or under-count.
 *  2. Profiling is observational: a profiled run is bit-identical to
 *     an unprofiled run in cycle counts and every core statistic.
 *  3. Attribution tracks the machine: a config whose bottleneck is
 *     known (bandwidth throttle, tiny mark queue) shifts the top
 *     stall class to the matching cause.
 *  4. The progress watchdog dumps diagnostics and aborts instead of
 *     hanging when a run exceeds its host-time budget.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>

#include "driver/gc_lab.h"
#include "sim/cycle_class.h"
#include "sim/profiler.h"
#include "sim/telemetry.h"

namespace hwgc
{
namespace
{

/** Restores the process-global telemetry options on scope exit. */
struct OptionsGuard
{
    telemetry::Options saved = telemetry::options();
    ~OptionsGuard() { telemetry::options() = saved; }
};

/** Runs the smoke profile with the profiler attached and returns the
 *  lab so the caller can interrogate the profiler before teardown. */
std::unique_ptr<driver::GcLab>
profiledRun(core::HwgcConfig config,
            workload::BenchmarkProfile profile = workload::smokeProfile())
{
    driver::LabConfig lab_config;
    lab_config.runSw = false;
    lab_config.hwgc = config;
    lab_config.heap.layout = config.layout;
    telemetry::StatsRegistry::global().clearRetired();
    auto lab = std::make_unique<driver::GcLab>(profile, lab_config);
    lab->run();
    return lab;
}

// ---------------------------------------------------------------------
// (1) The accounting identity, config matrix x kernel matrix.
// ---------------------------------------------------------------------

void
expectIdentityHolds(core::HwgcConfig config)
{
    struct Case
    {
        const char *name;
        KernelMode kernel;
        unsigned threads;
    };
    static constexpr Case cases[] = {
        {"dense", KernelMode::Dense, 0},
        {"event", KernelMode::Event, 0},
        {"parallel-2", KernelMode::ParallelBsp, 2},
    };
    OptionsGuard guard;
    telemetry::options().profile = true;
    for (const auto &c : cases) {
        SCOPED_TRACE(c.name);
        config.kernel = c.kernel;
        config.hostThreads = c.threads;
        const auto lab = profiledRun(config);
        const telemetry::CycleProfiler *prof = lab->device().profiler();
        ASSERT_NE(prof, nullptr);
        ASSERT_GT(prof->observedCycles(), 0u);
        for (std::size_t i = 0; i < prof->numComponents(); ++i) {
            SCOPED_TRACE(prof->componentName(i));
            EXPECT_EQ(prof->accounted(i), prof->observedCycles());
        }
        // Phase attribution never invents cycles: per class, the
        // phase totals are bounded by the run total.
        for (std::size_t c = 0; c < numCycleClasses; ++c) {
            const auto cls = CycleClass(c);
            std::uint64_t phase_sum = 0;
            for (const auto &phase : prof->phases()) {
                phase_sum += prof->phaseAggregate(phase, cls);
            }
            EXPECT_LE(phase_sum, prof->aggregate(cls))
                << cycleClassName(cls);
        }
    }
}

TEST(ProfilerIdentity, BaselineDdr3)
{
    expectIdentityHolds(core::HwgcConfig{});
}

TEST(ProfilerIdentity, SharedCache)
{
    core::HwgcConfig config;
    config.sharedCache = true;
    expectIdentityHolds(config);
}

TEST(ProfilerIdentity, IdealMemory)
{
    core::HwgcConfig config;
    config.memModel = core::MemModel::Ideal;
    expectIdentityHolds(config);
}

TEST(ProfilerIdentity, SpillPressure)
{
    core::HwgcConfig config;
    config.markQueueEntries = 32;
    expectIdentityHolds(config);
}

TEST(ProfilerIdentity, BandwidthThrottle)
{
    core::HwgcConfig config;
    config.bus.throttleBytesPerCycle = 1.0;
    expectIdentityHolds(config);
}

TEST(ProfilerIdentity, TibLayout)
{
    core::HwgcConfig config;
    config.layout = runtime::Layout::Tib;
    expectIdentityHolds(config);
}

// ---------------------------------------------------------------------
// (2) Profiler on/off is bit-identical in cycles and core stats.
// ---------------------------------------------------------------------

/** See test_determinism.cc: strips registry instance numbers so dumps
 *  from different runs compare as strings. */
std::string
normalizeInstanceIds(std::string s)
{
    for (const char *key : {"system.hwgc", "system.cpu"}) {
        const std::size_t klen = std::strlen(key);
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            std::size_t digits = pos + klen;
            std::size_t end = digits;
            while (end < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[end]))) {
                ++end;
            }
            s.replace(digits, end - digits, "#");
            pos = digits + 1;
        }
    }
    return s;
}

/** Drops the "<prefix>.profile.<comp>" sections the profiler itself
 *  registers — they exist only in the profiled run by design; every
 *  *other* stat must match bit for bit. */
std::string
dropProfileSections(const std::string &dump)
{
    std::istringstream in(dump);
    std::ostringstream out;
    std::string line;
    bool skipping = false;
    while (std::getline(in, line)) {
        if (line.rfind("==========", 0) == 0) {
            skipping = line.find(".profile.") != std::string::npos;
        }
        if (!skipping) {
            out << line << '\n';
        }
    }
    return out.str();
}

TEST(ProfilerObservational, OnOffBitIdentical)
{
    struct Result
    {
        Tick hwMark = 0;
        Tick hwSweep = 0;
        std::uint64_t marked = 0;
        std::uint64_t freed = 0;
        std::string stats;
    };
    auto run = [](bool profile_on) {
        OptionsGuard guard;
        telemetry::options().profile = profile_on;
        const auto lab = profiledRun(core::HwgcConfig{});
        EXPECT_EQ(lab->device().profiler() != nullptr, profile_on);
        Result r;
        for (const auto &pause : lab->results()) {
            r.hwMark += pause.hwMarkCycles;
            r.hwSweep += pause.hwSweepCycles;
            r.marked += pause.objectsMarked;
            r.freed += pause.cellsFreed;
        }
        std::ostringstream os;
        telemetry::StatsRegistry::global().dump(os);
        r.stats =
            normalizeInstanceIds(dropProfileSections(os.str()));
        return r;
    };
    const Result off = run(false);
    const Result on = run(true);
    EXPECT_EQ(off.hwMark, on.hwMark);
    EXPECT_EQ(off.hwSweep, on.hwSweep);
    EXPECT_EQ(off.marked, on.marked);
    EXPECT_EQ(off.freed, on.freed);
    EXPECT_EQ(off.stats, on.stats);
}

// ---------------------------------------------------------------------
// (3) Known bottlenecks shift the top attribution.
// ---------------------------------------------------------------------

/** Component @p name's whole-run share of class @p cls. */
double
componentShare(const telemetry::CycleProfiler &prof,
               const std::string &name, CycleClass cls)
{
    for (std::size_t i = 0; i < prof.numComponents(); ++i) {
        if (prof.componentName(i) == name) {
            return double(prof.cycles(i, cls)) /
                   double(prof.accounted(i));
        }
    }
    ADD_FAILURE() << "no component named " << name;
    return 0.0;
}

TEST(ProfilerBottleneck, BandwidthThrottleShiftsMarkToDram)
{
    OptionsGuard guard;
    telemetry::options().profile = true;

    const auto baseline = profiledRun(core::HwgcConfig{});
    const double base_bus = componentShare(
        *baseline->device().profiler(), "bus", CycleClass::StallDram);
    const std::uint64_t base_dram_cycles =
        baseline->device().profiler()->phaseAggregate(
            "mark", CycleClass::StallDram);

    core::HwgcConfig throttled;
    throttled.bus.throttleBytesPerCycle = 0.25; // 0.25 GB/s cap.
    const auto lab = profiledRun(throttled);
    const telemetry::CycleProfiler &prof = *lab->device().profiler();

    // The capped machine is bandwidth-bound: DRAM stalls top the mark
    // phase, the bus spends nearly everything token-starved, and the
    // absolute DRAM-stall cycle count balloons with the longer run.
    EXPECT_EQ(prof.topStallClass("mark"), CycleClass::StallDram);
    EXPECT_GT(componentShare(prof, "bus", CycleClass::StallDram),
              base_bus + 0.2);
    EXPECT_GT(prof.phaseAggregate("mark", CycleClass::StallDram),
              base_dram_cycles);
}

TEST(ProfilerBottleneck, TinyMarkQueueShiftsQueueToSpillDram)
{
    OptionsGuard guard;
    telemetry::options().profile = true;

    auto queue_dram_share = [](core::HwgcConfig config) {
        const auto lab = profiledRun(config);
        return componentShare(*lab->device().profiler(), "markQueue",
                              CycleClass::StallDram);
    };

    core::HwgcConfig tiny;
    tiny.markQueueEntries = 16; // Baseline: 1024.

    // Shrinking the on-chip queue forces constant spill/refill memory
    // round trips: the markQueue's cycles move into StallDram.
    EXPECT_GT(queue_dram_share(tiny),
              queue_dram_share(core::HwgcConfig{}) + 0.05);
}

// ---------------------------------------------------------------------
// (4) The watchdog aborts a wedged run with diagnostics.
// ---------------------------------------------------------------------

using WatchdogDeathTest = ::testing::Test;

TEST(WatchdogDeathTest, AbortsAndReportsWhenBudgetExceeded)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            // A budget no real run can meet: the first 64Ki-cycle
            // check fires, dumps the live report, and panics.
            telemetry::options().watchdogSecs = 1e-9;
            telemetry::options().profile = true;
            driver::LabConfig lab_config;
            lab_config.runSw = false;
            driver::GcLab lab(workload::smokeProfile(), lab_config);
            lab.run();
        },
        "watchdog");
}

} // namespace
} // namespace hwgc
